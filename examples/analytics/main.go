// Analytics: a single-system IVM dashboard scenario — the workload the
// paper's introduction motivates. A stream of telemetry events feeds three
// simultaneously-maintained materialized views (per-service totals,
// per-region error counts with a filter, and a min/max latency summary),
// under eager propagation first and then lazy batched propagation, with
// timings for each regime.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"openivm/internal/engine"
	"openivm/internal/ivmext"
)

func main() {
	db := engine.Open("analytics", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	sess := db.NewSession()
	defer sess.Close()
	must := func(sql string) *engine.Result {
		res, err := sess.ExecScript(sql)
		if err != nil {
			log.Fatalf("%s\n-> %v", sql, err)
		}
		return res
	}

	must(`CREATE TABLE events (service VARCHAR, region VARCHAR,
	        latency_ms INTEGER, is_error INTEGER)`)

	// Three dashboards over one event stream.
	must(`CREATE MATERIALIZED VIEW service_load AS SELECT service,
	        COUNT(*) AS requests, SUM(latency_ms) AS total_latency
	        FROM events GROUP BY service`)
	must(`CREATE MATERIALIZED VIEW region_errors AS SELECT region,
	        COUNT(*) AS errors FROM events WHERE is_error = 1 GROUP BY region`)
	must(`CREATE MATERIALIZED VIEW latency_extremes AS SELECT service,
	        MIN(latency_ms) AS best, MAX(latency_ms) AS worst, COUNT(*) AS n
	        FROM events GROUP BY service`)

	services := []string{"api", "auth", "billing", "search"}
	regions := []string{"eu", "us", "ap"}
	rng := rand.New(rand.NewSource(2024))
	event := func() string {
		return fmt.Sprintf("INSERT INTO events VALUES ('%s', '%s', %d, %d)",
			services[rng.Intn(len(services))], regions[rng.Intn(len(regions))],
			1+rng.Intn(500), rng.Intn(10)/9)
	}

	// Regime 1: eager — every insert propagates immediately.
	must("PRAGMA ivm_mode='eager'")
	start := time.Now()
	for i := 0; i < 2000; i++ {
		must(event())
	}
	eager := time.Since(start)
	fmt.Printf("eager regime: 2000 events in %v (%d propagation runs)\n",
		eager.Round(time.Millisecond), ext.Stats.Propagations)

	// Regime 2: lazy — deltas buffer, views refresh when queried.
	must("PRAGMA ivm_mode='lazy'")
	before := ext.Stats.Propagations
	start = time.Now()
	for i := 0; i < 2000; i++ {
		must(event())
	}
	ingest := time.Since(start)
	start = time.Now()
	res := must(`SELECT service, requests, total_latency FROM service_load ORDER BY service`)
	refresh := time.Since(start)
	fmt.Printf("lazy regime:  2000 events in %v, first dashboard query %v (%d propagation runs)\n\n",
		ingest.Round(time.Millisecond), refresh.Round(time.Millisecond),
		ext.Stats.Propagations-before)

	fmt.Println("== service_load ==")
	fmt.Print(res.Format())
	fmt.Println("\n== region_errors ==")
	fmt.Print(must(`SELECT region, errors FROM region_errors ORDER BY region`).Format())
	fmt.Println("\n== latency_extremes ==")
	fmt.Print(must(`SELECT service, best, worst, n FROM latency_extremes ORDER BY service`).Format())

	// Consistency check against full recomputation.
	check := must(`SELECT service, COUNT(*), SUM(latency_ms) FROM events GROUP BY service ORDER BY service`)
	view := must(`SELECT service, requests, total_latency FROM service_load ORDER BY service`)
	for i := range check.Rows {
		if check.Rows[i].String() != view.Rows[i].String() {
			log.Fatalf("divergence at row %d: %v vs %v", i, check.Rows[i], view.Rows[i])
		}
	}
	fmt.Println("\nverified: all dashboards match full recomputation")
}
