// Strategies: a walk through the compiler's optimization flags — the
// search space §2 of the paper sketches. The same view is compiled under
// each combine strategy and both empty-group detection modes; the emitted
// SQL is shown side by side and each variant is timed on the same update
// stream, including the ART-index ablation.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"openivm/internal/engine"
	"openivm/internal/ivm"
	"openivm/internal/ivmext"
	"openivm/internal/sqlparser"
	"openivm/internal/workload"
)

const viewSQL = `CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
	SUM(group_value) AS total_value FROM groups GROUP BY group_index`

func main() {
	// Part 1: what each strategy compiles to.
	fmt.Println("== part 1: one view, three combine plans ==")
	db := engine.Open("compile-only", engine.DialectDuckDB)
	mustExec(db, "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
	stmt, err := sqlparser.Parse(viewSQL)
	if err != nil {
		log.Fatal(err)
	}
	cv := stmt.(*sqlparser.CreateViewStmt)
	for _, strat := range []ivm.Strategy{
		ivm.StrategyUpsertLeftJoin, ivm.StrategyUnionRegroup, ivm.StrategyFullOuterJoin,
	} {
		opts := ivm.DefaultOptions()
		opts.Strategy = strat
		comp, err := ivm.NewCompiler(db, opts).Compile(cv.Name, cv.Select, cv.SourceSQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n", strat)
		// Show only the combine step (step 2), the part the flag changes.
		for _, line := range strings.Split(comp.PropagateSQL(), ";\n") {
			l := strings.TrimSpace(line)
			if strings.Contains(l, "ivm_cte") || strings.Contains(l, "UNION ALL") {
				fmt.Println(abbrev(l, 160))
			}
		}
	}

	// Part 2: time the strategies on the same stream.
	fmt.Println("\n== part 2: refresh latency under each strategy ==")
	const rows, groups, deltaRows = 50000, 2000, 500
	for _, strat := range []string{"upsert_left_join", "union_regroup", "full_outer_join"} {
		d := runOnce(rows, groups, deltaRows, "PRAGMA ivm_strategy='"+strat+"'")
		fmt.Printf("%-18s refresh of %d deltas over %d rows: %v\n", strat, deltaRows, rows, d.Round(time.Microsecond))
	}

	// Part 3: the ART index ablation (paper: DuckDB needs an index to
	// apply upserts; building it costs once, then accelerates refreshes).
	fmt.Println("\n== part 3: index on vs off (union_regroup needs none) ==")
	for _, pragmas := range [][]string{
		{"PRAGMA ivm_strategy='upsert_left_join'", "PRAGMA ivm_index='on'"},
		{"PRAGMA ivm_strategy='union_regroup'", "PRAGMA ivm_index='off'"},
	} {
		d := runOnce(rows, groups, deltaRows, pragmas...)
		fmt.Printf("%-60s refresh: %v\n", strings.Join(pragmas, "; "), d.Round(time.Microsecond))
	}

	// Part 4: empty-group detection modes on a zero-sum group.
	fmt.Println("\n== part 4: sum_zero (paper Listing 2) vs hidden_count ==")
	for _, mode := range []string{"sum_zero", "hidden_count"} {
		db := engine.Open("empty", engine.DialectDuckDB)
		ivmext.Install(db)
		mustExec(db, "PRAGMA ivm_empty='"+mode+"'")
		mustExec(db, "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
		mustExec(db, "INSERT INTO groups VALUES ('z', 5), ('z', -5)") // legitimate zero sum
		mustExec(db, viewSQL)
		mustExec(db, "INSERT INTO groups VALUES ('a', 1)")
		sess := db.NewSession()
		res, err := sess.Exec("SELECT group_index FROM query_groups ORDER BY group_index")
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, r := range res.Rows {
			names = append(names, r[0].S)
		}
		fmt.Printf("%-13s keeps groups: %v\n", mode, names)
	}
	fmt.Println("\n(sum_zero drops the zero-sum group 'z' — faithful to the paper's")
	fmt.Println(" Listing 2 but unsound for such inputs; hidden_count retains it.)")
}

func runOnce(rows, groups, deltaRows int, pragmas ...string) time.Duration {
	db := engine.Open("strategies", engine.DialectDuckDB)
	ivmext.Install(db)
	for _, p := range pragmas {
		mustExec(db, p)
	}
	w := workload.Groups{Rows: rows, NumGroups: groups, Seed: 99}
	if err := w.Load(db); err != nil {
		log.Fatal(err)
	}
	mustExec(db, viewSQL)
	mustExec(db, w.InsertBatch(deltaRows, 7))
	start := time.Now()
	mustExec(db, "REFRESH MATERIALIZED VIEW query_groups")
	return time.Since(start)
}

func mustExec(db *engine.DB, sql string) {
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(sql); err != nil {
		log.Fatalf("%s\n-> %v", sql, err)
	}
}

func abbrev(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + " …"
}
