// Quickstart: the paper's Listing 1 and Listing 2 end to end in one file.
//
// It creates the groups table, defines a materialized SUM view, inspects
// the SQL the compiler emitted, applies inserts and deletes, and shows the
// view staying consistent through incremental maintenance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"openivm/internal/engine"
	"openivm/internal/ivmext"
)

func main() {
	// An embedded analytical engine with the OpenIVM extension — the
	// "DuckDB with IVM" configuration of the demo.
	db := engine.Open("quickstart", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	// All statements run on an explicit session — the unit of transaction
	// and pragma scope (DB.ExecScript survives only as a deprecated shim).
	sess := db.NewSession()
	defer sess.Close()

	must := func(sql string) *engine.Result {
		res, err := sess.ExecScript(sql)
		if err != nil {
			log.Fatalf("%s\n-> %v", sql, err)
		}
		return res
	}

	// Paper Listing 1: schema + materialized view definition.
	must(`CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)`)
	must(`INSERT INTO groups VALUES ('apple', 5), ('banana', 2)`)
	must(`CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
	        SUM(group_value) AS total_value FROM groups GROUP BY group_index`)

	fmt.Println("== compiled propagation script (paper Listing 2) ==")
	_, prop, err := ext.Scripts("query_groups")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prop)

	// The paper's worked example: ΔV = {apple -> (false, 3), banana ->
	// (true, 1)} over V = {apple -> 5, banana -> 2} yields {apple -> 2,
	// banana -> 3}.
	must(`DELETE FROM groups WHERE group_index = 'apple' AND group_value = 5`)
	must(`INSERT INTO groups VALUES ('apple', 2), ('banana', 1)`)

	fmt.Println("== view after incremental maintenance ==")
	res := must(`SELECT group_index, total_value FROM query_groups ORDER BY group_index`)
	fmt.Print(res.Format())

	fmt.Printf("\ndeltas captured: %d, propagation runs: %d\n",
		ext.Stats.DeltasCaught, ext.Stats.Propagations)
}
