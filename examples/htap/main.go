// HTAP: cross-system IVM over a real TCP connection — the paper's Figure 3
// pipeline as a library consumer would wire it. An order-processing system
// (PostgreSQL-style row store) handles the transactional workload; an
// analytical engine (DuckDB-style) maintains a revenue dashboard
// incrementally from the deltas the OLTP side captures by trigger.
//
//	go run ./examples/htap
package main

import (
	"fmt"
	"log"

	"openivm/internal/oltp"
	"openivm/internal/wire"

	"openivm/internal/htap"
)

func main() {
	// --- OLTP side: the system of record. ---
	store := oltp.New("orders-db")
	admin := store.DB.NewSession()
	defer admin.Close()
	mustStore := func(sql string) {
		if _, err := admin.ExecScript(sql); err != nil {
			log.Fatalf("%s\n-> %v", sql, err)
		}
	}
	mustStore(`CREATE TABLE customers (cid INTEGER PRIMARY KEY, name TEXT, segment TEXT)`)
	mustStore(`CREATE TABLE orders (oid INTEGER PRIMARY KEY, cid INTEGER, amount INTEGER, status TEXT)`)
	mustStore(`INSERT INTO customers VALUES
		(1, 'acme', 'enterprise'), (2, 'globex', 'enterprise'),
		(3, 'initech', 'startup'), (4, 'hooli', 'startup')`)
	mustStore(`INSERT INTO orders VALUES
		(100, 1, 900, 'paid'), (101, 2, 1500, 'paid'),
		(102, 3, 120, 'paid'), (103, 4, 80, 'pending')`)

	srv := wire.NewServer(store.DB)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("OLTP order system listening on", addr)

	// --- OLAP side: connect and define the dashboard. ---
	cl, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	pipe := htap.New(cl)

	if err := pipe.CreateMaterializedView(`CREATE MATERIALIZED VIEW segment_revenue AS
		SELECT customers.segment, SUM(orders.amount) AS revenue, COUNT(*) AS orders
		FROM orders JOIN customers ON orders.cid = customers.cid
		GROUP BY customers.segment`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dashboard view created; %d rows mirrored from the OLTP system\n\n", pipe.Stats.RowsMirrored)

	show := func(label string) {
		res, err := pipe.Query("SELECT segment, revenue, orders FROM segment_revenue ORDER BY segment")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("==", label, "==")
		fmt.Print(res.Format())
		fmt.Println()
	}
	show("initial dashboard")

	// Business happens on the OLTP side only.
	transact := func(sql string) {
		if _, err := cl.Exec(sql); err != nil {
			log.Fatalf("%s\n-> %v", sql, err)
		}
	}
	transact(`INSERT INTO orders VALUES (104, 1, 2500, 'paid')`)
	transact(`INSERT INTO orders VALUES (105, 3, 300, 'paid')`)
	transact(`UPDATE orders SET amount = 200 WHERE oid = 102`)
	show("after two new orders and a correction")

	transact(`DELETE FROM orders WHERE status = 'pending'`)
	transact(`INSERT INTO customers VALUES (5, 'pied piper', 'startup')`)
	transact(`INSERT INTO orders VALUES (106, 5, 50, 'paid')`)
	show("after cancellation and a new customer")

	fmt.Printf("pipeline stats: %d syncs, %d deltas pulled\n",
		pipe.Stats.Syncs, pipe.Stats.DeltasPulled)

	// Cross-check against the system of record.
	remote, err := pipe.RecomputeRemote(`SELECT segment, SUM(amount), COUNT(*)
		FROM orders JOIN customers ON orders.cid = customers.cid GROUP BY segment`)
	if err != nil {
		log.Fatal(err)
	}
	local, err := pipe.OLAP.Exec("SELECT segment, revenue, orders FROM segment_revenue")
	if err != nil {
		log.Fatal(err)
	}
	if len(remote.Rows) != len(local.Rows) {
		log.Fatalf("divergence: %d vs %d groups", len(local.Rows), len(remote.Rows))
	}
	fmt.Println("verified: dashboard matches the OLTP system of record")
}
