// Package openivm's root benchmark suite: one testing.B benchmark per
// experiment in DESIGN.md §3 (E1–E8), regenerating the measurements behind
// every artifact of the paper's demonstration section. cmd/benchivm runs
// the same experiments at full scale with formatted tables.
package openivm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"openivm/internal/engine"
	"openivm/internal/ivm"
	"openivm/internal/ivmext"
	"openivm/internal/oltp"
	"openivm/internal/sqlparser"
	"openivm/internal/storage"
	"openivm/internal/wire"
	"openivm/internal/workload"

	"openivm/internal/htap"
)

const listing1View = `CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
	SUM(group_value) AS total_value FROM groups GROUP BY group_index`

func loadGroups(b *testing.B, rows, groups int, pragmas ...string) *engine.DB {
	b.Helper()
	db := engine.Open("bench", engine.DialectDuckDB)
	ivmext.Install(db)
	// Serial by default so numbers are comparable across machines with
	// different core counts (the executor otherwise fans out per CPU);
	// the *Workers benchmarks override this with their own pragma.
	if _, err := db.Exec("PRAGMA workers = 1"); err != nil {
		b.Fatal(err)
	}
	for _, p := range pragmas {
		if _, err := db.Exec(p); err != nil {
			b.Fatal(err)
		}
	}
	w := workload.Groups{Rows: rows, NumGroups: groups, Seed: 42}
	if err := w.Load(db); err != nil {
		b.Fatal(err)
	}
	return db
}

func mustExecB(b *testing.B, db *engine.DB, sql string) {
	b.Helper()
	if _, err := db.Exec(sql); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE1_Compile measures the SQL-to-SQL compiler itself: parsing,
// planning and emitting the Listing 2 scripts for the Listing 1 view.
func BenchmarkE1_Compile(b *testing.B) {
	db := engine.Open("e1", engine.DialectDuckDB)
	if _, err := db.Exec("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"); err != nil {
		b.Fatal(err)
	}
	stmt, err := sqlparser.Parse(listing1View)
	if err != nil {
		b.Fatal(err)
	}
	cv := stmt.(*sqlparser.CreateViewStmt)
	c := ivm.NewCompiler(db, ivm.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := c.Compile(cv.Name, cv.Select, cv.SourceSQL)
		if err != nil {
			b.Fatal(err)
		}
		_ = comp.PropagateSQL()
	}
}

// BenchmarkE2_IVMRefresh / BenchmarkE2_Recompute sweep delta fraction on a
// fixed base (E2: the core incremental-vs-recompute claim).
func BenchmarkE2_IVMRefresh(b *testing.B) {
	for _, frac := range []float64{0.001, 0.01, 0.1} {
		b.Run(workload.Fraction(frac), func(b *testing.B) {
			const rows, groups = 20000, 256
			db := loadGroups(b, rows, groups)
			mustExecB(b, db, listing1View)
			w := workload.Groups{Rows: rows, NumGroups: groups}
			deltaRows := int(float64(rows) * frac)
			if deltaRows < 1 {
				deltaRows = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mustExecB(b, db, w.InsertBatch(deltaRows, int64(i)))
				b.StartTimer()
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
			}
		})
	}
}

// BenchmarkE2_BatchSize sweeps the vectorized executor's batch size over
// the E2 refresh loop (PRAGMA batch_size), exposing the chunk-size
// trade-off the batch engine introduces.
func BenchmarkE2_BatchSize(b *testing.B) {
	for _, bs := range []int{16, 128, 1024, 8192} {
		b.Run(fmt.Sprintf("bs%d", bs), func(b *testing.B) {
			const rows, groups = 20000, 256
			db := loadGroups(b, rows, groups, fmt.Sprintf("PRAGMA batch_size = %d", bs))
			mustExecB(b, db, listing1View)
			w := workload.Groups{Rows: rows, NumGroups: groups}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mustExecB(b, db, w.InsertBatch(500, int64(i)))
				b.StartTimer()
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
			}
		})
	}
}

// BenchmarkE2_IVMRefreshWAL is the E2 refresh loop with a durable
// backend attached: each delta insert group-commits through the WAL
// before the refresh runs. The gap to BenchmarkE2_IVMRefresh/f10pct is
// the price of durability on the maintenance path (fsync dominated);
// the refresh itself touches only unlogged IVM state and appends
// nothing.
func BenchmarkE2_IVMRefreshWAL(b *testing.B) {
	const rows, groups = 20000, 256
	db := engine.Open("bench", engine.DialectDuckDB)
	ivmext.Install(db)
	bk, err := storage.OpenDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if err := db.AttachBackend(bk); err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	mustExecB(b, db, "PRAGMA workers = 1")
	w := workload.Groups{Rows: rows, NumGroups: groups, Seed: 42}
	if err := w.Load(db); err != nil {
		b.Fatal(err)
	}
	mustExecB(b, db, listing1View)
	deltaRows := rows / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, db, w.InsertBatch(deltaRows, int64(i)))
		mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
	}
}

func BenchmarkE2_Recompute(b *testing.B) {
	const rows, groups = 20000, 256
	db := loadGroups(b, rows, groups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, db, "SELECT group_index, SUM(group_value) FROM groups GROUP BY group_index")
	}
}

// BenchmarkE3_CrossSystem measures one sync+query cycle of the HTAP
// pipeline with and without IVM (E3: the four-way demo comparison; the
// pure-engine arms are BenchmarkE2_Recompute and BenchmarkE3_PureOLTP).
func BenchmarkE3_CrossSystemIVM(b *testing.B) {
	sales := workload.Sales{Customers: 500, Orders: 5000, Regions: 16, Seed: 1}
	store := oltp.New("pg")
	if err := sales.Load(store.DB, true); err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(store.DB)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := wire.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	p := htap.New(cl)
	if err := p.CreateMaterializedView(`CREATE MATERIALIZED VIEW region_totals AS
		SELECT customers.region, SUM(orders.amount) AS total
		FROM orders JOIN customers ON orders.cid = customers.cid
		GROUP BY customers.region`); err != nil {
		b.Fatal(err)
	}
	next := sales.Orders
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := cl.Exec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d)", next, next%500, next%400)); err != nil {
			b.Fatal(err)
		}
		next++
		b.StartTimer()
		if _, err := p.Query("SELECT region, total FROM region_totals"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_CrossSystemRecompute(b *testing.B) {
	sales := workload.Sales{Customers: 500, Orders: 5000, Regions: 16, Seed: 1}
	store := oltp.New("pg")
	if err := sales.Load(store.DB, true); err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(store.DB)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := wire.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Exec(`SELECT region, SUM(amount) FROM orders
			JOIN customers ON orders.cid = customers.cid GROUP BY region`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_PureOLTP(b *testing.B) {
	sales := workload.Sales{Customers: 500, Orders: 5000, Regions: 16, Seed: 1}
	store := oltp.New("pg")
	if err := sales.Load(store.DB, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.DB.Exec(`SELECT region, SUM(amount) FROM orders
			JOIN customers ON orders.cid = customers.cid GROUP BY region`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_* measure ART index construction (view creation) vs the
// refresh it accelerates.
func BenchmarkE4_CreateViewWithIndex(b *testing.B) {
	for _, groups := range []int{100, 10000} {
		b.Run(fmt.Sprintf("G%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := loadGroups(b, 50000, groups)
				b.StartTimer()
				mustExecB(b, db, listing1View)
			}
		})
	}
}

func BenchmarkE4_CreateViewNoIndex(b *testing.B) {
	for _, groups := range []int{100, 10000} {
		b.Run(fmt.Sprintf("G%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := loadGroups(b, 50000, groups, "PRAGMA ivm_strategy='union_regroup'")
				b.StartTimer()
				mustExecB(b, db, listing1View)
			}
		})
	}
}

// BenchmarkE5_Strategy ablates the combine strategies (E5).
func BenchmarkE5_Strategy(b *testing.B) {
	for _, strat := range []string{"upsert_left_join", "union_regroup", "full_outer_join"} {
		b.Run(strat, func(b *testing.B) {
			const rows, groups = 20000, 1024
			db := loadGroups(b, rows, groups, "PRAGMA ivm_strategy='"+strat+"'")
			mustExecB(b, db, listing1View)
			w := workload.Groups{Rows: rows, NumGroups: groups}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mustExecB(b, db, w.InsertBatch(200, int64(i)))
				b.StartTimer()
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
			}
		})
	}
}

// BenchmarkE6_Batch sweeps the propagation batch size (E6: recency vs
// amortization).
func BenchmarkE6_Batch(b *testing.B) {
	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			const rows, groups = 5000, 64
			db := loadGroups(b, rows, groups)
			mustExecB(b, db, listing1View)
			w := workload.Groups{Rows: rows, NumGroups: groups}
			stream := w.UpdateStream(batch, 0.8, 0.1, 13)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, u := range stream {
					mustExecB(b, db, u.SQL)
				}
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "stmts/s")
		})
	}
}

// BenchmarkE7_JoinIVM measures incremental join-view maintenance vs
// recomputing the join (E7).
func BenchmarkE7_JoinIVM(b *testing.B) {
	for _, customers := range []int{16, 2048} {
		b.Run(fmt.Sprintf("C%d", customers), func(b *testing.B) {
			db := engine.Open("e7", engine.DialectDuckDB)
			ivmext.Install(db)
			mustExecB(b, db, "PRAGMA workers = 1") // cross-machine determinism
			sales := workload.Sales{Customers: customers, Orders: 20000, Regions: 8, Seed: 5}
			if err := sales.Load(db, true); err != nil {
				b.Fatal(err)
			}
			mustExecB(b, db, `CREATE MATERIALIZED VIEW region_totals AS
				SELECT customers.region, SUM(orders.amount) AS total, COUNT(*) AS n
				FROM orders JOIN customers ON orders.cid = customers.cid
				GROUP BY customers.region`)
			next := sales.Orders
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < 50; j++ {
					mustExecB(b, db, fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d)",
						next, next%customers, next%300))
					next++
				}
				b.StartTimer()
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW region_totals")
			}
		})
	}
}

func BenchmarkE7_JoinRecompute(b *testing.B) {
	db := engine.Open("e7", engine.DialectDuckDB)
	mustExecB(b, db, "PRAGMA workers = 1") // cross-machine determinism
	sales := workload.Sales{Customers: 2048, Orders: 20000, Regions: 8, Seed: 5}
	if err := sales.Load(db, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, db, `SELECT customers.region, SUM(orders.amount), COUNT(*)
			FROM orders JOIN customers ON orders.cid = customers.cid
			GROUP BY customers.region`)
	}
}

// BenchmarkE9_FusedScan measures the columnar fused Scan→Filter→Project
// pipeline (typed vector kernels, selection vectors, late
// materialization) on a filter+projection query the kernel compiler fully
// vectorizes. BenchmarkE9_UnfusedScan runs the same data volume through an
// ABS projection the compiler rejects (scalar functions other than
// COALESCE stay boxed; searched CASE fuses since PR 4), exercising the
// classic boxed operator chain as the comparison arm.
func BenchmarkE9_FusedScan(b *testing.B) {
	db := loadWide(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, db, "SELECT a + v, v * 2 FROM wide WHERE v % 4 = 0 AND a < 15000")
	}
}

func BenchmarkE9_UnfusedScan(b *testing.B) {
	db := loadWide(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, db, "SELECT ABS(a + v) FROM wide WHERE v % 4 = 0 AND a < 15000")
	}
}

// BenchmarkE9_FusedScanWorkers sweeps PRAGMA workers over the E9 fused
// scan: w1 pins the serial path, w2/w4 force the parallel partitioned
// scan regardless of host core count. On a single-core host the parallel
// arms measure pure fan-out overhead; on multi-core hardware they show
// the scan scaling (the CI acceptance arm for this is w4).
func BenchmarkE9_FusedScanWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			db := loadWide(b)
			mustExecB(b, db, fmt.Sprintf("PRAGMA workers = %d", w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecB(b, db, "SELECT a + v, v * 2 FROM wide WHERE v % 4 = 0 AND a < 15000")
			}
		})
	}
}

// BenchmarkE2_IVMRefreshWorkers runs the E2 10%-delta refresh loop under
// PRAGMA workers, exercising parallel aggregation inside the propagation
// scripts on multi-core hosts.
func BenchmarkE2_IVMRefreshWorkers(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			const rows, groups = 20000, 256
			db := loadGroups(b, rows, groups, fmt.Sprintf("PRAGMA workers = %d", w))
			mustExecB(b, db, listing1View)
			wl := workload.Groups{Rows: rows, NumGroups: groups}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mustExecB(b, db, wl.InsertBatch(rows/10, int64(i)))
				b.StartTimer()
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
			}
		})
	}
}

func loadWide(b *testing.B) *engine.DB {
	b.Helper()
	db := engine.Open("e9", engine.DialectDuckDB)
	mustExecB(b, db, "PRAGMA workers = 1") // cross-machine determinism; sweeps override
	mustExecB(b, db, "CREATE TABLE wide (a INTEGER, v INTEGER)")
	var sb []byte
	for lo := 0; lo < 20000; lo += 2000 {
		sb = append(sb[:0], "INSERT INTO wide VALUES "...)
		for i := lo; i < lo+2000; i++ {
			if i > lo {
				sb = append(sb, ',')
			}
			sb = fmt.Appendf(sb, "(%d, %d)", i, i%37)
		}
		mustExecB(b, db, string(sb))
	}
	return db
}

// BenchmarkE2_ColumnarAgg measures the columnar hash-aggregation path
// (PR 4): group keys and aggregate arguments evaluated as vector kernels
// over a fused filter pipeline, group keys encoded column-wise into the
// byteTable slab — no RowView materialization at the aggregate boundary.
// Serial (workers=1) so the number isolates the columnar path itself.
func BenchmarkE2_ColumnarAgg(b *testing.B) {
	const rows, groups = 50000, 256
	db := loadGroups(b, rows, groups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, db, `SELECT group_index, SUM(group_value), COUNT(*)
			FROM groups WHERE group_value >= 0 GROUP BY group_index`)
	}
}

// BenchmarkE7_JoinBuild measures the hash-join build side at scale: the
// build input (customers) is large enough to clear the parallel-build
// threshold, so w4 exercises the radix-partitioned two-phase build while
// w1 pins the serial single-partition build. On a single-core host the w4
// arm records pure fan-out overhead; multi-core CI shows the scaling.
func BenchmarkE7_JoinBuild(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			db := engine.Open("e7b", engine.DialectDuckDB)
			mustExecB(b, db, fmt.Sprintf("PRAGMA workers = %d", w))
			sales := workload.Sales{Customers: 20000, Orders: 30000, Regions: 8, Seed: 5}
			if err := sales.Load(db, true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecB(b, db, `SELECT customers.region, SUM(orders.amount), COUNT(*)
					FROM orders JOIN customers ON orders.cid = customers.cid
					GROUP BY customers.region`)
			}
		})
	}
}

// BenchmarkE8_AutoStrategy measures the cost-based combine choice (E8:
// PRAGMA ivm_strategy='auto') against the workload it must adapt to.
func BenchmarkE8_AutoStrategy(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		groups int
		delta  int
	}{
		{"smallView", 16, 2000},
		{"largeView", 8192, 50},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			const rows = 20000
			db := loadGroups(b, rows, cfg.groups, "PRAGMA ivm_strategy='auto'")
			mustExecB(b, db, listing1View)
			w := workload.Groups{Rows: rows, NumGroups: cfg.groups}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mustExecB(b, db, w.InsertBatch(cfg.delta, int64(i)))
				b.StartTimer()
				mustExecB(b, db, "REFRESH MATERIALIZED VIEW query_groups")
			}
		})
	}
}

// BenchmarkE10_MultiViewRefresh measures the concurrent refresh
// scheduler (PR 10): K independent materialized views (disjoint base
// tables, so disjoint refresh groups) refreshed concurrently while W
// background writer sessions keep inserting single rows. Each iteration
// queues a delta batch per base (untimed), then refreshes all K views
// from K goroutines and waits (timed). The rw1 arm clamps the scheduler
// pool to one worker — the serial baseline — and rw4 lets the four
// groups propagate in parallel; their ns/op ratio is the scheduler's
// speedup. stall-ns/op reports writer capture-stall time per iteration
// (time writers spent blocked on the generation append lock), the
// non-blocking-capture claim: bounded by generation seals, not by
// propagation duration.
func BenchmarkE10_MultiViewRefresh(b *testing.B) {
	const views, writers, deltaRows = 4, 2, 500
	for _, rw := range []int{1, 4} {
		b.Run(fmt.Sprintf("rw%d", rw), func(b *testing.B) {
			db := engine.Open("e10", engine.DialectDuckDB)
			ext := ivmext.Install(db)
			mustExecB(b, db, "PRAGMA workers = 1") // isolate scheduler parallelism
			mustExecB(b, db, fmt.Sprintf("PRAGMA ivm_refresh_workers = %d", rw))
			insertBatch := func(v, n int, round int64) string {
				sb := fmt.Appendf(nil, "INSERT INTO e10_t%d VALUES ", v)
				for i := 0; i < n; i++ {
					if i > 0 {
						sb = append(sb, ',')
					}
					sb = fmt.Appendf(sb, "('k%d', %d)", i%64, round*int64(n)+int64(i))
				}
				return string(sb)
			}
			for v := 0; v < views; v++ {
				mustExecB(b, db, fmt.Sprintf("CREATE TABLE e10_t%d (k VARCHAR, v INTEGER)", v))
				mustExecB(b, db, insertBatch(v, 2000, -1))
				mustExecB(b, db, fmt.Sprintf(
					"CREATE MATERIALIZED VIEW e10_v%d AS SELECT k, SUM(v) AS sv FROM e10_t%d GROUP BY k", v, v))
			}
			var stop atomic.Bool
			var wwg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(w int) {
					defer wwg.Done()
					s := db.NewSession()
					defer s.Close()
					for j := 0; !stop.Load(); j++ {
						sql := fmt.Sprintf("INSERT INTO e10_t%d VALUES ('w%d', %d)", (w+j)%views, j%64, j)
						if _, err := s.ExecScript(sql); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			stall0 := atomic.LoadInt64(&ext.Stats.CaptureStallNanos)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for v := 0; v < views; v++ {
					mustExecB(b, db, insertBatch(v, deltaRows, int64(i)))
				}
				b.StartTimer()
				var rwg sync.WaitGroup
				for v := 0; v < views; v++ {
					rwg.Add(1)
					go func(v int) {
						defer rwg.Done()
						s := db.NewSession()
						defer s.Close()
						if _, err := s.ExecScript(fmt.Sprintf("REFRESH MATERIALIZED VIEW e10_v%d", v)); err != nil {
							b.Error(err)
						}
					}(v)
				}
				rwg.Wait()
			}
			b.StopTimer()
			stop.Store(true)
			wwg.Wait()
			b.ReportMetric(float64(atomic.LoadInt64(&ext.Stats.CaptureStallNanos)-stall0)/float64(b.N), "stall-ns/op")
		})
	}
}

// startWireBig serves one preloaded engine with a wide 100k-row table
// for the streaming-transport benchmarks.
func startWireBig(b *testing.B, rows int) string {
	b.Helper()
	db := engine.Open("bench", engine.DialectDuckDB)
	mustExecB(b, db, "PRAGMA workers = 1") // cross-machine determinism
	mustExecB(b, db, "CREATE TABLE big (id INTEGER, val INTEGER, tag VARCHAR)")
	var sb []byte
	const chunk = 2000
	for lo := 0; lo < rows; lo += chunk {
		sb = append(sb[:0], "INSERT INTO big VALUES "...)
		for i := lo; i < lo+chunk && i < rows; i++ {
			if i > lo {
				sb = append(sb, ',')
			}
			sb = fmt.Appendf(sb, "(%d, %d, 'tag%d')", i, i*7%1000, i%37)
		}
		mustExecB(b, db, string(sb))
	}
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return addr
}

// BenchmarkWire_Stream compares result transport across the two protocol
// generations on a 100k-row result. v1 materializes the whole result
// server-side, marshals it into one JSON object and parses it back
// client-side; v2 streams binary row-batch frames straight off the live
// operator tree and the consumer visits each batch as it lands — no
// materialization on either end. allocs/op is the headline number.
func BenchmarkWire_Stream(b *testing.B) {
	const rows = 100_000
	const q = "SELECT id, val, tag FROM big"
	b.Run("v1", func(b *testing.B) {
		addr := startWireBig(b, rows)
		cl, err := wire.DialV1(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		if _, err := cl.Exec(q); err != nil { // warm the plan cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := cl.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Rows) != rows {
				b.Fatalf("rows = %d", len(resp.Rows))
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		addr := startWireBig(b, rows)
		cl, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		if _, err := cl.Exec(q); err != nil { // warm the plan cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rs, err := cl.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			got := 0
			for {
				batch, err := rs.Next()
				if err != nil {
					b.Fatal(err)
				}
				if batch == nil {
					break
				}
				got += len(batch)
			}
			if got != rows {
				b.Fatalf("rows = %d", got)
			}
		}
	})
}

// BenchmarkWire_Concurrent measures the multi-client wire server end to
// end: c concurrent connections — one engine.Session each — run the same
// aggregation against one preloaded engine, exercising the framed v2 transport,
// per-session dispatch and the shared SQL-text plan cache under
// contention. Workers stay pinned at 1 (loadGroups) so ns/op is
// comparable across machines; scaling with c measures session/server
// overhead, not executor parallelism.
func BenchmarkWire_Concurrent(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("c%d", clients), func(b *testing.B) {
			db := loadGroups(b, 5000, 50)
			srv := wire.NewServer(db)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			conns := make([]*wire.Client, clients)
			for i := range conns {
				cl, err := wire.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				conns[i] = cl
			}
			const q = "SELECT group_index, SUM(group_value) FROM groups WHERE group_value > 500 GROUP BY group_index"
			// Warm the shared plan cache once so the steady state is measured.
			if _, err := conns[0].Exec(q); err != nil {
				b.Fatal(err)
			}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, cl := range conns {
				wg.Add(1)
				go func(cl *wire.Client) {
					defer wg.Done()
					for remaining.Add(-1) >= 0 {
						if _, err := cl.Exec(q); err != nil {
							b.Error(err)
							return
						}
					}
				}(cl)
			}
			wg.Wait()
		})
	}
}
