// Command minidb is an interactive shell over the embedded analytical
// engine with the OpenIVM extension loaded — the reproduction of the
// demo's "DuckDB shell with IVM": visitors can create materialized views,
// run DML against base tables, inspect the compiled scripts and watch
// the incremental maintenance happen.
//
// Meta-commands:
//
//	\q                quit
//	\tables           list tables
//	\views            list materialized views with their query class
//	\scripts <view>   print the stored setup + propagation SQL
//	\stats            extension counters (captures, refreshes)
//	\load demo        load the paper's Listing 1 schema with sample data
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"openivm/internal/engine"
	"openivm/internal/ivmext"
)

func main() {
	db := engine.Open("minidb", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	fmt.Println("minidb — embedded analytical engine with OpenIVM (type \\q to quit, \\load demo for sample data)")

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "minidb> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(db, ext, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "   ...> "
			continue
		}
		sql := buf.String()
		buf.Reset()
		prompt = "minidb> "
		res, err := db.ExecScript(sql)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if res != nil && len(res.Columns) > 0 {
			fmt.Print(res.Format())
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else if res != nil && res.RowsAffected > 0 {
			fmt.Printf("OK, %d rows affected\n", res.RowsAffected)
		} else {
			fmt.Println("OK")
		}
	}
}

// meta handles backslash commands; returns false to quit.
func meta(db *engine.DB, ext *ivmext.Extension, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\tables":
		for _, t := range db.Catalog().TableNames() {
			fmt.Println(t)
		}
	case "\\views":
		for _, m := range db.Catalog().IVMViews() {
			fmt.Printf("%s  class=%s  bases=%s\n", m.ViewName, m.QueryType, strings.Join(m.BaseTables, ","))
		}
	case "\\scripts":
		if len(fields) < 2 {
			fmt.Println("usage: \\scripts <view>")
			break
		}
		setup, prop, err := ext.Scripts(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("-- setup --")
		fmt.Print(setup)
		fmt.Println("-- propagation --")
		fmt.Print(prop)
	case "\\stats":
		fmt.Printf("deltas captured:   %d\n", ext.Stats.DeltasCaught)
		fmt.Printf("propagation runs:  %d\n", ext.Stats.Propagations)
		fmt.Printf("eager refreshes:   %d\n", ext.Stats.EagerRefreshes)
		fmt.Printf("lazy refreshes:    %d\n", ext.Stats.LazyRefreshes)
	case "\\load":
		if len(fields) < 2 || fields[1] != "demo" {
			fmt.Println("usage: \\load demo")
			break
		}
		script := `
CREATE TABLE groups (group_index VARCHAR, group_value INTEGER);
INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 10), ('b', 20), ('c', 5);
CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
  SUM(group_value) AS total_value FROM groups GROUP BY group_index;`
		if _, err := db.ExecScript(script); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("loaded Listing 1 demo: table groups + materialized view query_groups")
		fmt.Println("try: INSERT INTO groups VALUES ('a', 100); SELECT * FROM query_groups;")
	default:
		fmt.Println("unknown command", fields[0])
	}
	return true
}
