// Command minidb is an interactive shell over the embedded analytical
// engine with the OpenIVM extension loaded — the reproduction of the
// demo's "DuckDB shell with IVM": visitors can create materialized views,
// run DML against base tables, inspect the compiled scripts and watch
// the incremental maintenance happen.
//
// Modes:
//
//	minidb                      embedded REPL (default)
//	minidb -listen :5433        serve the engine over the wire protocol
//	minidb -connect host:5433   REPL against a remote server; results
//	                            stream in and print batch by batch
//
// -data-dir <dir> (embedded and -listen modes) makes the database
// durable: committed work goes to a write-ahead log in that directory,
// checkpoints compact it, and reopening the same directory recovers
// tables, indexes, and materialized views.
//
// With -connect, -cancel-after=2s arms an out-of-band cancellation for
// every statement: a second connection holds the session's token and
// interrupts any statement still running after the duration — the
// session survives and the shell keeps going.
//
// Meta-commands:
//
//	\q                quit
//	\tables           list tables
//	\views            list materialized views with their query class
//	\scripts <view>   print the stored setup + propagation SQL
//	\stats            extension counters (captures, refreshes); with
//	                  -connect, the server's wire counters instead
//	\timing           toggle per-statement elapsed time
//	\load demo        load the paper's Listing 1 schema with sample data
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"openivm/internal/engine"
	"openivm/internal/ivmext"
	"openivm/internal/storage"
	"openivm/internal/wire"
)

var (
	listenAddr  = flag.String("listen", "", "serve the engine over TCP on this address instead of running a REPL")
	connectAddr = flag.String("connect", "", "connect the REPL to a remote wire server (streamed results)")
	cancelAfter = flag.Duration("cancel-after", 0, "with -connect: cancel any statement still running after this duration")
	dataDir     = flag.String("data-dir", "", "durable mode: WAL + checkpoints in this directory (created if missing)")
)

// openDB builds the engine for embedded/serve modes: extension first
// (recovery re-executes CREATE MATERIALIZED VIEW through its hook), then
// the disk backend when -data-dir is set.
func openDB() (*engine.DB, *ivmext.Extension) {
	db := engine.Open("minidb", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	if *dataDir != "" {
		b, err := storage.OpenDisk(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := db.AttachBackend(b); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	return db, ext
}

func main() {
	flag.Parse()
	switch {
	case *listenAddr != "":
		serve(*listenAddr)
	case *connectAddr != "":
		remoteREPL(*connectAddr, *cancelAfter)
	default:
		localREPL()
	}
}

// serve hosts the engine behind the wire protocol until interrupted.
// The first interrupt drains gracefully: no new connections, in-flight
// statements run to a 10s deadline, then stragglers are interrupted
// through their per-statement contexts and streaming clients receive a
// clean trailer. A second interrupt cuts the drain short.
func serve(addr string) {
	db, _ := openDB()
	defer db.Close()
	srv := wire.NewServer(db)
	bound, err := srv.Listen(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println("minidb serving on", bound, "(ctrl-c to stop)")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("minidb draining (ctrl-c again to stop now)")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown: interrupted in-flight statements:", err)
	}
}

// repl drives the shared line-reading loop. onSQL runs a complete
// statement; onMeta handles a backslash command and returns false to
// quit.
func repl(onSQL func(sql string), onMeta func(cmd string) bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "minidb> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !onMeta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "   ...> "
			continue
		}
		sql := buf.String()
		buf.Reset()
		prompt = "minidb> "
		onSQL(sql)
	}
}

func localREPL() {
	db, ext := openDB()
	defer db.Close()
	sess := db.NewSession()
	defer sess.Close()
	banner := "minidb — embedded analytical engine with OpenIVM (type \\q to quit, \\load demo for sample data)"
	if *dataDir != "" {
		banner += "\ndurable: " + *dataDir
	}
	fmt.Println(banner)
	timing := false
	repl(func(sql string) {
		start := time.Now()
		res, err := sess.ExecScript(sql)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if res != nil && len(res.Columns) > 0 {
			fmt.Print(res.Format())
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else if res != nil && res.RowsAffected > 0 {
			fmt.Printf("OK, %d rows affected\n", res.RowsAffected)
		} else {
			fmt.Println("OK")
		}
		if timing {
			fmt.Printf("Time: %v\n", elapsed)
		}
	}, func(cmd string) bool {
		if strings.Fields(cmd)[0] == "\\timing" {
			timing = !timing
			fmt.Println("timing:", onOff(timing))
			return true
		}
		return meta(sess, ext, cmd)
	})
}

// remoteREPL speaks the streamed wire protocol: rows print as their
// batches arrive, so a long result renders incrementally instead of
// after full materialization. cancelAfter > 0 arms the out-of-band
// cancellation example: a second connection interrupts any statement
// still in flight after that duration.
func remoteREPL(addr string, cancelAfter time.Duration) {
	cl, err := wire.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer cl.Close()
	var canceller *wire.Client
	var token string
	if cancelAfter > 0 {
		if token, err = cl.Token(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if canceller, err = wire.Dial(addr); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer canceller.Close()
	}
	fmt.Println("minidb — connected to", addr, "(type \\q to quit)")
	timing := false
	repl(func(sql string) {
		start := time.Now()
		if canceller != nil {
			timer := time.AfterFunc(cancelAfter, func() { canceller.Cancel(token) })
			defer timer.Stop()
		}
		rows, err := cl.Query(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printed := 0
		if len(rows.Columns) > 0 {
			fmt.Println(strings.Join(rows.Columns, " | "))
		}
		for {
			batch, err := rows.Next()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if batch == nil {
				break
			}
			for _, r := range batch {
				cells := make([]string, len(r))
				for i, v := range r {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, " | "))
				printed++
			}
		}
		if len(rows.Columns) > 0 {
			fmt.Printf("(%d rows)\n", printed)
		} else if rows.RowsAffected() > 0 {
			fmt.Printf("OK, %d rows affected\n", rows.RowsAffected())
		} else if rows.Err() == nil {
			fmt.Println("OK")
		}
		if timing {
			fmt.Printf("Time: %v\n", time.Since(start))
		}
	}, func(cmd string) bool {
		switch strings.Fields(cmd)[0] {
		case "\\q", "\\quit", "\\exit":
			return false
		case "\\tables":
			tables, err := cl.Tables()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for _, t := range tables {
				fmt.Println(t)
			}
		case "\\stats":
			st, err := cl.StatsV2()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			sv := st.Server
			fmt.Printf("connections:       %d active / %d total / %d rejected\n", sv.ActiveConns, sv.TotalConns, sv.RejectedConns)
			fmt.Printf("plan cache:        %d entries, %d hits / %d misses, %d prepared\n", sv.PlanCacheSize, sv.PlanCacheHits, sv.PlanCacheMiss, sv.PreparedMarked)
			fmt.Printf("streamed:          %d batches / %d rows\n", sv.StreamedBatches, sv.StreamedRows)
			fmt.Printf("kills:             %d governor / %d timeout / %d cancel\n", sv.GovernorKills, sv.TimeoutKills, sv.Cancels)
			fmt.Printf("txns:              %d active / %d commits / %d conflict aborts\n", st.Txn.ActiveTxns, st.Txn.Commits, st.Txn.ConflictAborts)
			if st.Storage.Durable {
				fmt.Printf("wal:               %d records / %d bytes, %d fsyncs, %d group batches\n",
					st.Storage.WALRecords, st.Storage.WALBytes, st.Storage.Fsyncs, st.Storage.GroupCommitBatches)
				fmt.Printf("checkpoints:       %d taken, last %dms ago, %d records replayed at open\n",
					st.Storage.Checkpoints, st.Storage.LastCheckpointMS, st.Storage.RecoveryReplayedRecords)
			} else {
				fmt.Printf("storage:           in-memory (no WAL)\n")
			}
		case "\\timing":
			timing = !timing
			fmt.Println("timing:", onOff(timing))
		default:
			fmt.Println("unknown command", strings.Fields(cmd)[0])
		}
		return true
	})
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// meta handles backslash commands in embedded mode; returns false to
// quit.
func meta(sess *engine.Session, ext *ivmext.Extension, cmd string) bool {
	db := sess.DB()
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\tables":
		for _, t := range db.Catalog().TableNames() {
			fmt.Println(t)
		}
	case "\\views":
		for _, m := range db.Catalog().IVMViews() {
			fmt.Printf("%s  class=%s  bases=%s\n", m.ViewName, m.QueryType, strings.Join(m.BaseTables, ","))
		}
	case "\\scripts":
		if len(fields) < 2 {
			fmt.Println("usage: \\scripts <view>")
			break
		}
		setup, prop, err := ext.Scripts(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("-- setup --")
		fmt.Print(setup)
		fmt.Println("-- propagation --")
		fmt.Print(prop)
	case "\\stats":
		fmt.Printf("deltas captured:   %d\n", ext.Stats.DeltasCaught)
		fmt.Printf("propagation runs:  %d\n", ext.Stats.Propagations)
		fmt.Printf("eager refreshes:   %d\n", ext.Stats.EagerRefreshes)
		fmt.Printf("lazy refreshes:    %d\n", ext.Stats.LazyRefreshes)
		if ss := db.StorageStats(); ss.Durable {
			fmt.Printf("wal:               %d records / %d bytes, %d fsyncs\n", ss.WALRecords, ss.WALBytes, ss.Fsyncs)
			fmt.Printf("checkpoints:       %d taken, %d records replayed at open\n", ss.Checkpoints, ss.ReplayedRecords)
		}
	case "\\load":
		if len(fields) < 2 || fields[1] != "demo" {
			fmt.Println("usage: \\load demo")
			break
		}
		script := `
CREATE TABLE groups (group_index VARCHAR, group_value INTEGER);
INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 10), ('b', 20), ('c', 5);
CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
  SUM(group_value) AS total_value FROM groups GROUP BY group_index;`
		if _, err := sess.ExecScript(script); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("loaded Listing 1 demo: table groups + materialized view query_groups")
		fmt.Println("try: INSERT INTO groups VALUES ('a', 100); SELECT * FROM query_groups;")
	default:
		fmt.Println("unknown command", fields[0])
	}
	return true
}
