// Command openivm is the standalone SQL-to-SQL compiler: it reads a
// database schema and a CREATE MATERIALIZED VIEW definition and prints
// the generated delta DDL, initial population script and 4-step
// propagation script — the paper's compiler used as a command-line tool.
//
// Usage:
//
//	openivm -schema schema.sql -view view.sql [flags]
//	openivm -demo                     # compile the paper's Listing 1
//
// Flags mirror the paper's compiler switches:
//
//	-dialect duckdb|postgres   target SQL dialect for emission
//	-strategy upsert_left_join|union_regroup|full_outer_join
//	-empty sum_zero|hidden_count
//	-no-index                  skip the ART group-key index
package main

import (
	"flag"
	"fmt"
	"os"

	"openivm/internal/duckast"
	"openivm/internal/engine"
	"openivm/internal/ivm"
	"openivm/internal/sqlparser"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "path to a SQL file with CREATE TABLE statements")
		viewPath   = flag.String("view", "", "path to a SQL file with one CREATE MATERIALIZED VIEW")
		dialect    = flag.String("dialect", "duckdb", "emission dialect: duckdb | postgres")
		strategy   = flag.String("strategy", "upsert_left_join", "combine strategy: upsert_left_join | union_regroup | full_outer_join")
		empty      = flag.String("empty", "sum_zero", "empty-group detection: sum_zero | hidden_count")
		noIndex    = flag.Bool("no-index", false, "do not create the ART group-key index")
		demo       = flag.Bool("demo", false, "compile the paper's Listing 1 example")
	)
	flag.Parse()

	if err := run(*schemaPath, *viewPath, *dialect, *strategy, *empty, *noIndex, *demo); err != nil {
		fmt.Fprintln(os.Stderr, "openivm:", err)
		os.Exit(1)
	}
}

func run(schemaPath, viewPath, dialect, strategy, empty string, noIndex, demo bool) error {
	var schemaSQL, viewSQL string
	switch {
	case demo:
		schemaSQL = "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
		viewSQL = `CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
			SUM(group_value) AS total_value FROM groups GROUP BY group_index`
	case schemaPath != "" && viewPath != "":
		sb, err := os.ReadFile(schemaPath)
		if err != nil {
			return err
		}
		vb, err := os.ReadFile(viewPath)
		if err != nil {
			return err
		}
		schemaSQL, viewSQL = string(sb), string(vb)
	default:
		return fmt.Errorf("need -schema and -view, or -demo (see -h)")
	}

	opts := ivm.DefaultOptions()
	var err error
	if opts.Dialect, err = duckast.ParseDialect(dialect); err != nil {
		return err
	}
	if opts.Strategy, err = ivm.ParseStrategy(strategy); err != nil {
		return err
	}
	if opts.Empty, err = ivm.ParseEmptyDetection(empty); err != nil {
		return err
	}
	opts.CreateIndex = !noIndex

	// "DuckDB inside OpenIVM": an embedded engine instance provides the
	// parser, binder and planner the compiler needs.
	db := engine.Open("openivm", engine.DialectDuckDB)
	sess := db.NewSession()
	defer sess.Close()
	if _, err := sess.ExecScript(schemaSQL); err != nil {
		return fmt.Errorf("loading schema: %w", err)
	}

	stmt, err := sqlparser.Parse(viewSQL)
	if err != nil {
		return fmt.Errorf("parsing view: %w", err)
	}
	cv, ok := stmt.(*sqlparser.CreateViewStmt)
	if !ok || !cv.Materialized {
		return fmt.Errorf("the view file must contain one CREATE MATERIALIZED VIEW statement")
	}

	comp, err := ivm.NewCompiler(db, opts).Compile(cv.Name, cv.Select, cv.SourceSQL)
	if err != nil {
		return err
	}

	fmt.Printf("-- OpenIVM compilation of view %q (class: %s, dialect: %s, strategy: %s)\n",
		comp.ViewName, comp.Class, opts.Dialect, opts.Strategy)
	fmt.Println("\n-- === setup DDL (delta tables, view table, indexes) ===")
	fmt.Print(comp.SetupSQL())
	fmt.Println("\n-- === initial population ===")
	fmt.Print(comp.PopulateSQLText())
	fmt.Println("\n-- === propagation script (run after filling the delta tables) ===")
	fmt.Print(comp.PropagateSQL())
	return nil
}
