// Command benchivm regenerates every experiment table from DESIGN.md §3
// (E1–E8), covering each measurable artifact of the paper's demonstration
// section: the Listing 1/2 compilation, incremental-vs-recompute sweeps,
// the cross-system four-way comparison, ART index overhead, the combine-
// strategy ablation, batch-size/recency trade-off, join maintenance, and
// the cost-based auto-strategy extension.
//
// Usage:
//
//	benchivm              # run everything at full scale
//	benchivm -e 2,5       # run selected experiments
//	benchivm -small       # quick pass (test-scale parameters)
//	benchivm -sql         # also print the E1 compiled SQL scripts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"openivm/internal/bench"
)

func main() {
	var (
		expts    = flag.String("e", "1,2,3,4,5,6,7,8", "comma-separated experiment ids to run")
		small    = flag.Bool("small", false, "use small (test) scale parameters")
		printSQL = flag.Bool("sql", false, "print the compiled SQL for E1")
	)
	flag.Parse()

	scale := bench.FullScale()
	if *small {
		scale = bench.SmallScale()
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*expts, ",") {
		selected[strings.TrimSpace(id)] = true
	}

	type experiment struct {
		id  string
		run func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"1", func() (*bench.Table, error) {
			t, sql, err := bench.E1Compile()
			if err == nil && *printSQL {
				fmt.Println(sql)
			}
			return t, err
		}},
		{"2", func() (*bench.Table, error) { return bench.E2IncrementalVsRecompute(scale) }},
		{"3", func() (*bench.Table, error) { return bench.E3CrossSystem(scale) }},
		{"4", func() (*bench.Table, error) { return bench.E4IndexOverhead(scale) }},
		{"5", func() (*bench.Table, error) { return bench.E5Strategies(scale) }},
		{"6", func() (*bench.Table, error) { return bench.E6Batching(scale) }},
		{"7", func() (*bench.Table, error) { return bench.E7JoinIVM(scale) }},
		{"8", func() (*bench.Table, error) { return bench.E8AutoStrategy(scale) }},
	}

	failed := false
	for _, e := range experiments {
		if !selected[e.id] {
			continue
		}
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchivm: E%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		t.Print(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
