// Command htapdemo runs the paper's Figure 3 demonstration end to end:
// an OLTP (PostgreSQL-style) server receives a transactional order
// stream over TCP; a local OLAP (DuckDB-style) engine hosts an
// incrementally-maintained materialized view over that remote data; the
// pipeline pulls captured deltas across and folds them in. It prints a
// narrated transcript plus the same four-way comparison the demo shows.
package main

import (
	"flag"
	"fmt"
	"os"

	"openivm/internal/bench"
	"openivm/internal/oltp"
	"openivm/internal/wire"
	"openivm/internal/workload"

	"openivm/internal/htap"
)

func main() {
	var (
		orders    = flag.Int("orders", 20000, "base order count on the OLTP side")
		customers = flag.Int("customers", 2000, "customer count")
		stream    = flag.Int("stream", 500, "update-stream length")
	)
	flag.Parse()
	if err := run(*orders, *customers, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "htapdemo:", err)
		os.Exit(1)
	}
}

func run(orders, customers, stream int) error {
	fmt.Println("== cross-system IVM demo (paper Figure 3) ==")

	// 1. The OLTP side: a PostgreSQL-style store served over TCP.
	store := oltp.New("pg")
	sales := workload.Sales{Customers: customers, Orders: orders, Regions: 12, Seed: 1}
	if err := sales.Load(store.DB, true); err != nil {
		return err
	}
	srv := wire.NewServer(store.DB)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("1. OLTP server (postgres dialect) listening on %s with %d orders / %d customers\n",
		addr, orders, customers)

	// 2. The OLAP side connects and creates a materialized view over the
	// remote tables.
	cl, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	p := htap.New(cl)
	viewSQL := `CREATE MATERIALIZED VIEW region_totals AS
		SELECT customers.region, SUM(orders.amount) AS total, COUNT(*) AS n
		FROM orders JOIN customers ON orders.cid = customers.cid
		GROUP BY customers.region`
	if err := p.CreateMaterializedView(viewSQL); err != nil {
		return err
	}
	fmt.Printf("2. OLAP engine mirrored %d rows and compiled the view (remote delta capture installed)\n",
		p.Stats.RowsMirrored)

	// 3. Transactional stream hits the OLTP side only.
	updates := sales.OrderStream(stream, 3)
	applyTime := bench.MustTime(func() error {
		for _, u := range updates {
			if _, err := cl.Exec(u.SQL); err != nil {
				return err
			}
		}
		return nil
	})
	fmt.Printf("3. applied %d-statement order stream on OLTP in %s (deltas buffered remotely)\n",
		stream, bench.FormatDuration(applyTime))

	// 4. An analytical query on the OLAP side pulls + folds the deltas.
	var nrows int
	queryTime := bench.MustTime(func() error {
		res, err := p.Query("SELECT region, total, n FROM region_totals ORDER BY region")
		if err != nil {
			return err
		}
		nrows = len(res.Rows)
		return nil
	})
	fmt.Printf("4. analytic query (incl. delta sync of %d rows) answered %d regions in %s\n",
		p.Stats.DeltasPulled, nrows, bench.FormatDuration(queryTime))

	// 5. Verify against remote recomputation.
	remote, err := p.RecomputeRemote(`SELECT region, SUM(amount), COUNT(*) FROM orders
		JOIN customers ON orders.cid = customers.cid GROUP BY region`)
	if err != nil {
		return err
	}
	local, err := p.OLAP.Exec("SELECT region, total, n FROM region_totals")
	if err != nil {
		return err
	}
	if len(remote.Rows) != len(local.Rows) {
		return fmt.Errorf("DIVERGENCE: olap=%d rows, oltp=%d rows", len(local.Rows), len(remote.Rows))
	}
	fmt.Printf("5. verified: view matches remote recomputation (%d groups)\n", len(local.Rows))

	// 6. The four-way comparison table.
	fmt.Println("\n6. four-way comparison (E3):")
	tbl, err := bench.E3CrossSystem(bench.Scale{
		Rows: []int{orders}, Stream: stream,
		Deltas: []float64{0.01}, Groups: []int{customers}, Batch: []int{1},
	})
	if err != nil {
		return err
	}
	tbl.Print(os.Stdout)
	return nil
}
