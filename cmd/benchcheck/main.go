// Command benchcheck is the CI benchmark-regression gate: it parses
// `go test -bench` output, reduces repeated runs (-count N) to the
// per-benchmark minimum — the least noise-contaminated observation — and
// compares ns/op and allocs/op against a committed baseline JSON, failing
// the build when either regresses beyond its threshold.
//
// Usage:
//
//	go test -run '^$' -bench 'E2_IVMRefresh|E2_ColumnarAgg|E7_JoinIVM|E7_JoinBuild|E9_|E10_|Wire_' -benchmem -count 3 . | \
//	    go run ./cmd/benchcheck -baseline BENCH_BASELINE.json
//
// Refresh the baseline after an intentional performance change:
//
//	go test ... -benchmem -count 3 . | go run ./cmd/benchcheck -baseline BENCH_BASELINE.json -update
//
// allocs/op is machine-independent and enforced strictly; ns/op is
// compared at the same threshold by default but can be relaxed (or set to
// a negative value to skip) when baseline and CI hardware differ wildly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// entry is one benchmark's baseline record.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baseline is the committed BENCH_BASELINE.json shape.
type baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// BenchmarkE7_JoinIVM/C16-4  4418  264546 ns/op  133685 B/op  681 allocs/op
// The trailing -N GOMAXPROCS suffix is stripped so results are comparable
// across machines with different core counts. allocs/op is picked out by
// its own pattern so custom ReportMetric columns between ns/op and the
// -benchmem pair (e.g. E10's stall-ns/op) don't hide it.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	allocsStat = regexp.MustCompile(`\s([\d.]+) allocs/op`)
)

func parseBench(r io.Reader) (map[string]entry, error) {
	out := map[string]entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		// Missing allocs/op (run without -benchmem) is recorded as -1, not
		// 0: a zero would satisfy every threshold and silently disarm the
		// alloc gate for that benchmark.
		allocs := -1.0
		if am := allocsStat.FindStringSubmatch(sc.Text()); am != nil {
			allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		// -count N repeats a benchmark; keep the per-metric minimum.
		if prev, ok := out[m[1]]; ok {
			if prev.NsPerOp < ns {
				ns = prev.NsPerOp
			}
			if prev.AllocsPerOp >= 0 && (allocs < 0 || prev.AllocsPerOp < allocs) {
				allocs = prev.AllocsPerOp
			}
		}
		out[m[1]] = entry{NsPerOp: ns, AllocsPerOp: allocs}
	}
	return out, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline JSON")
	input := flag.String("input", "-", "benchmark output file (- = stdin)")
	maxNs := flag.Float64("max-ns-regress", 0.25, "fail when ns/op exceeds baseline by this fraction (negative = skip ns check)")
	maxAllocs := flag.Float64("max-allocs-regress", 0.25, "fail when allocs/op exceeds baseline by this fraction (negative = skip allocs check)")
	update := flag.Bool("update", false, "rewrite the baseline from the measured results instead of comparing")
	flag.Parse()

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	if *update {
		base := baseline{Note: "Regenerate with: go test -run '^$' -bench 'E2_IVMRefresh|E2_ColumnarAgg|E7_JoinIVM|E7_JoinBuild|E9_|E10_|Wire_' -benchmem -count 3 . | go run ./cmd/benchcheck -update"}
		base.Benchmarks = got
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return
	}

	buf, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in results (gate silently shrank?)", name))
			continue
		}
		status := "ok"
		if *maxNs >= 0 && want.NsPerOp > 0 && have.NsPerOp > want.NsPerOp*(1+*maxNs) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f by more than %.0f%%",
				name, have.NsPerOp, want.NsPerOp, *maxNs*100))
			status = "NS REGRESSION"
		}
		if *maxAllocs >= 0 && want.AllocsPerOp > 0 {
			if have.AllocsPerOp < 0 {
				failures = append(failures, fmt.Sprintf("%s: no allocs/op in results (run with -benchmem) but baseline has %.0f",
					name, want.AllocsPerOp))
				status = "NO ALLOC DATA"
			} else if have.AllocsPerOp > want.AllocsPerOp*(1+*maxAllocs) {
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f by more than %.0f%%",
					name, have.AllocsPerOp, want.AllocsPerOp, *maxAllocs*100))
				status = "ALLOC REGRESSION"
			}
		}
		fmt.Printf("%-60s ns/op %10.0f (base %10.0f)  allocs/op %7.0f (base %7.0f)  %s\n",
			name, have.NsPerOp, want.NsPerOp, have.AllocsPerOp, want.AllocsPerOp, status)
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("%-60s new benchmark, not in baseline (add with -update)\n", name)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchcheck: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchcheck: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
