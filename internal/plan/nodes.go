// Package plan defines the logical query plan and the binder that resolves
// parser ASTs against the catalog — the planner stage of the embedded
// engine, mirroring the role the DuckDB planner plays inside OpenIVM.
package plan

import (
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/expr"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// ColumnInfo describes one output column of a plan node.
type ColumnInfo struct {
	Table string // binding alias ("" for computed columns)
	Name  string
	Type  sqltypes.Type
}

// Node is a logical plan operator.
type Node interface {
	// Schema returns the output columns.
	Schema() []ColumnInfo
	// Children returns input operators (for rewrites and display).
	Children() []Node
	// Describe returns a one-line operator description for EXPLAIN.
	Describe() string
}

// Scan reads a base table.
type Scan struct {
	Table *catalog.Table
	Alias string
	// Projection is the set of column positions to emit (nil = all); filled
	// by the projection-pruning optimizer rule.
	Projection []int
	// Filter is a pushed-down predicate evaluated against the full table
	// row (before Projection); nil when absent.
	Filter expr.Expr
	schema []ColumnInfo
}

// NewScan builds a scan node over a catalog table.
func NewScan(t *catalog.Table, alias string) *Scan {
	if alias == "" {
		alias = t.Name
	}
	s := &Scan{Table: t, Alias: alias}
	for _, c := range t.Columns {
		s.schema = append(s.schema, ColumnInfo{Table: alias, Name: c.Name, Type: c.Type})
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema() []ColumnInfo {
	if s.Projection == nil {
		return s.schema
	}
	out := make([]ColumnInfo, len(s.Projection))
	for i, p := range s.Projection {
		out[i] = s.schema[p]
	}
	return out
}

// FullSchema returns the schema before projection pruning.
func (s *Scan) FullSchema() []ColumnInfo { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	d := "Scan " + s.Table.Name
	if s.Alias != s.Table.Name {
		d += " AS " + s.Alias
	}
	if s.Filter != nil {
		d += " [filter: " + s.Filter.String() + "]"
	}
	return d
}

// Values produces literal rows (VALUES lists, SELECT without FROM).
type Values struct {
	Rows    [][]expr.Expr
	Columns []ColumnInfo
}

// Schema implements Node.
func (v *Values) Schema() []ColumnInfo { return v.Columns }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// Describe implements Node.
func (v *Values) Describe() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// Filter keeps rows where Pred evaluates to TRUE.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() []ColumnInfo { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *Filter) Describe() string { return "Filter " + f.Pred.String() }

// Project computes output expressions.
type Project struct {
	Input Node
	Exprs []expr.Expr
	Cols  []ColumnInfo
}

// Schema implements Node.
func (p *Project) Schema() []ColumnInfo { return p.Cols }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Aggregate groups by GroupBy and computes Aggs. Output schema: group
// columns first, aggregate results after.
type Aggregate struct {
	Input   Node
	GroupBy []expr.Expr
	Aggs    []*expr.Aggregate
	Cols    []ColumnInfo
}

// Schema implements Node.
func (a *Aggregate) Schema() []ColumnInfo { return a.Cols }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, ag := range a.Aggs {
		parts = append(parts, ag.String())
	}
	return "HashAggregate " + strings.Join(parts, ", ")
}

// Join combines two inputs. On is evaluated over the concatenation of the
// left and right schemas. EquiLeft/EquiRight hold the positions of
// equality key pairs extracted from On (enabling hash join); the residual
// non-equi condition remains in On.
type Join struct {
	Kind        sqlparser.JoinKind
	Left, Right Node
	On          expr.Expr // residual predicate (may be nil)
	EquiLeft    []int     // key positions in Left schema
	EquiRight   []int     // key positions in Right schema
}

// Schema implements Node.
func (j *Join) Schema() []ColumnInfo {
	l, r := j.Left.Schema(), j.Right.Schema()
	out := make([]ColumnInfo, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	d := "Hash" + j.Kind.String()
	if len(j.EquiLeft) > 0 {
		d += fmt.Sprintf(" (keys: %v=%v)", j.EquiLeft, j.EquiRight)
	}
	if j.On != nil {
		d += " [residual: " + j.On.String() + "]"
	}
	return d
}

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// Schema implements Node.
func (d *Distinct) Schema() []ColumnInfo { return d.Input.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Describe implements Node.
func (d *Distinct) Describe() string { return "Distinct" }

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() []ColumnInfo { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit truncates the row stream.
type Limit struct {
	Input  Node
	Limit  int64 // -1 = unlimited
	Offset int64
}

// Schema implements Node.
func (l *Limit) Schema() []ColumnInfo { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d OFFSET %d", l.Limit, l.Offset) }

// SetOp applies UNION/EXCEPT/INTERSECT.
type SetOp struct {
	Op          sqlparser.SetOp
	Left, Right Node
}

// Schema implements Node.
func (s *SetOp) Schema() []ColumnInfo { return s.Left.Schema() }

// Children implements Node.
func (s *SetOp) Children() []Node { return []Node{s.Left, s.Right} }

// Describe implements Node.
func (s *SetOp) Describe() string {
	switch s.Op {
	case sqlparser.SetUnion:
		return "Union"
	case sqlparser.SetUnionAll:
		return "UnionAll"
	case sqlparser.SetExcept:
		return "Except"
	case sqlparser.SetExceptAll:
		return "ExceptAll"
	case sqlparser.SetIntersect:
		return "Intersect"
	}
	return "SetOp"
}

// ScanPipeline matches the fusible Project? → Filter* → Scan chain at the
// root of a plan subtree. When ok, scan is the base table access, filters
// holds the predicates of any Filter nodes stacked above it (bottom-up,
// bound against the scan's output schema — the scan's own pushed-down
// Filter is not included since it is bound against the full row), and proj
// is the optional projection on top. The executor uses the match to
// collapse the chain into a single fused pass over each batch.
//
// A bare Scan (no stacked Filter, no Project) is not reported as a
// pipeline: there is nothing to fuse.
func ScanPipeline(n Node) (scan *Scan, filters []expr.Expr, proj *Project, ok bool) {
	if p, isProj := n.(*Project); isProj {
		proj = p
		n = p.Input
	}
	for {
		f, isFilter := n.(*Filter)
		if !isFilter {
			break
		}
		filters = append(filters, f.Pred)
		n = f.Input
	}
	scan, isScan := n.(*Scan)
	if !isScan {
		return nil, nil, nil, false
	}
	if proj == nil && len(filters) == 0 && scan.Filter == nil {
		return nil, nil, nil, false
	}
	return scan, filters, proj, true
}

// Explain renders a plan tree as an indented string.
func Explain(n Node) string {
	var sb strings.Builder
	explain(&sb, n, 0)
	return sb.String()
}

func explain(sb *strings.Builder, n Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Describe())
	sb.WriteByte('\n')
	for _, c := range n.Children() {
		explain(sb, c, depth+1)
	}
}

// Walk visits the plan tree depth-first, parents before children.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
