package plan

import (
	"strings"
	"testing"

	"openivm/internal/catalog"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("t", []catalog.Column{
		{Name: "a", Type: sqltypes.TypeInt},
		{Name: "b", Type: sqltypes.TypeString},
		{Name: "c", Type: sqltypes.TypeFloat},
	}, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("u", []catalog.Column{
		{Name: "a", Type: sqltypes.TypeInt},
		{Name: "d", Type: sqltypes.TypeString},
	}, nil, false); err != nil {
		t.Fatal(err)
	}
	return c
}

func bind(t *testing.T, c *catalog.Catalog, sql string) Node {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewBinder(c).BindSelect(stmt.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return n
}

func bindErr(t *testing.T, c *catalog.Catalog, sql string) error {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewBinder(c).BindSelect(stmt.(*sqlparser.SelectStmt))
	if err == nil {
		t.Fatalf("bind %q should fail", sql)
	}
	return err
}

func TestBindSchemaNamesAndTypes(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT a, b AS label, a * c AS prod FROM t")
	s := n.Schema()
	if len(s) != 3 {
		t.Fatalf("schema = %v", s)
	}
	if s[0].Name != "a" || s[0].Type != sqltypes.TypeInt {
		t.Errorf("col0 = %+v", s[0])
	}
	if s[1].Name != "label" {
		t.Errorf("col1 = %+v", s[1])
	}
	if s[2].Name != "prod" || s[2].Type != sqltypes.TypeFloat {
		t.Errorf("col2 = %+v", s[2])
	}
}

func TestBindStarExpansion(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT * FROM t")
	if len(n.Schema()) != 3 {
		t.Fatalf("schema = %v", n.Schema())
	}
	n2 := bind(t, c, "SELECT t.*, u.d FROM t JOIN u ON t.a = u.a")
	if len(n2.Schema()) != 4 {
		t.Fatalf("schema = %v", n2.Schema())
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	c := testCatalog(t)
	err := bindErr(t, c, "SELECT a FROM t JOIN u ON t.a = u.a")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("err = %v", err)
	}
}

func TestBindUnknownColumn(t *testing.T) {
	c := testCatalog(t)
	err := bindErr(t, c, "SELECT zzz FROM t")
	if !strings.Contains(err.Error(), "not found") {
		t.Errorf("err = %v", err)
	}
}

func TestBindQualifiedResolution(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT x.a FROM t AS x")
	if n.Schema()[0].Name != "a" {
		t.Fatalf("schema = %v", n.Schema())
	}
	bindErr(t, c, "SELECT t.a FROM t AS x") // original name hidden by alias? DuckDB allows; we require alias
}

func TestBindAggregateSchema(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT b, SUM(a) AS s, COUNT(*) FROM t GROUP BY b")
	s := n.Schema()
	if s[1].Name != "s" || s[1].Type != sqltypes.TypeInt {
		t.Errorf("sum col = %+v", s[1])
	}
	if s[2].Name != "count(*)" {
		t.Errorf("count col = %+v", s[2])
	}
}

func TestBindGroupByOrdinalAndAlias(t *testing.T) {
	c := testCatalog(t)
	bind(t, c, "SELECT b AS grp, SUM(a) FROM t GROUP BY 1")
	bind(t, c, "SELECT b AS grp, SUM(a) FROM t GROUP BY grp")
	err := bindErr(t, c, "SELECT b, SUM(a) FROM t GROUP BY 9")
	if !strings.Contains(err.Error(), "ordinal") {
		t.Errorf("err = %v", err)
	}
}

func TestBindNonGroupedColumnRejected(t *testing.T) {
	c := testCatalog(t)
	err := bindErr(t, c, "SELECT b, c, SUM(a) FROM t GROUP BY b")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("err = %v", err)
	}
}

func TestBindHavingWithoutSelect(t *testing.T) {
	c := testCatalog(t)
	// HAVING may reference an aggregate that is not in the select list.
	bind(t, c, "SELECT b FROM t GROUP BY b HAVING SUM(a) > 10")
}

func TestBindJoinEquiKeyExtraction(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT t.a FROM t JOIN u ON t.a = u.a AND t.b = u.d")
	var j *Join
	Walk(n, func(x Node) bool {
		if jj, ok := x.(*Join); ok {
			j = jj
		}
		return true
	})
	if j == nil {
		t.Fatal("no join")
	}
	if len(j.EquiLeft) != 2 || j.On != nil {
		t.Errorf("keys = %v/%v residual = %v", j.EquiLeft, j.EquiRight, j.On)
	}
}

func TestBindJoinResidualKept(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT t.a FROM t JOIN u ON t.a = u.a AND t.c > 1.5")
	var j *Join
	Walk(n, func(x Node) bool {
		if jj, ok := x.(*Join); ok {
			j = jj
		}
		return true
	})
	if len(j.EquiLeft) != 1 || j.On == nil {
		t.Errorf("keys = %v residual = %v", j.EquiLeft, j.On)
	}
}

func TestBindSetOpArityMismatch(t *testing.T) {
	c := testCatalog(t)
	err := bindErr(t, c, "SELECT a FROM t UNION SELECT a, d FROM u")
	if !strings.Contains(err.Error(), "column counts") {
		t.Errorf("err = %v", err)
	}
}

func TestBindCTEShadowing(t *testing.T) {
	c := testCatalog(t)
	// A CTE named t shadows the base table t.
	n := bind(t, c, "WITH t AS (SELECT 1 AS one) SELECT one FROM t")
	if n.Schema()[0].Name != "one" {
		t.Fatalf("schema = %v", n.Schema())
	}
}

func TestBindNestedCTE(t *testing.T) {
	c := testCatalog(t)
	bind(t, c, `WITH x AS (SELECT a FROM t), y AS (SELECT a FROM x) SELECT a FROM y`)
}

func TestBindValuesWidths(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "VALUES (1, 'a'), (2, 'b')")
	if len(n.Schema()) != 2 {
		t.Fatalf("schema = %v", n.Schema())
	}
	bindErr(t, c, "VALUES (1), (2, 3)")
}

func TestBindLimitMustBeConst(t *testing.T) {
	c := testCatalog(t)
	err := bindErr(t, c, "SELECT a FROM t LIMIT a")
	if !strings.Contains(err.Error(), "LIMIT") {
		t.Errorf("err = %v", err)
	}
}

func TestBindSubqueryUnsupportedWithoutHook(t *testing.T) {
	c := testCatalog(t)
	err := bindErr(t, c, "SELECT (SELECT 1) FROM t")
	if !strings.Contains(err.Error(), "subquer") {
		t.Errorf("err = %v", err)
	}
}

func TestExplainTree(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT b, SUM(a) FROM t WHERE a > 0 GROUP BY b ORDER BY b LIMIT 2")
	ex := Explain(n)
	for _, want := range []string{"Limit", "Sort", "Project", "HashAggregate", "Filter", "Scan t"} {
		if !strings.Contains(ex, want) {
			t.Errorf("explain missing %q:\n%s", want, ex)
		}
	}
	// Indentation reflects tree depth.
	if !strings.Contains(ex, "  Sort") {
		t.Errorf("no indentation:\n%s", ex)
	}
}

func TestDescribeMethods(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT DISTINCT t.a FROM t JOIN u USING (a) UNION ALL SELECT a FROM u")
	var descs []string
	Walk(n, func(x Node) bool {
		descs = append(descs, x.Describe())
		return true
	})
	joined := strings.Join(descs, "\n")
	for _, want := range []string{"UnionAll", "Distinct", "HashJOIN"} {
		if !strings.Contains(joined, want) {
			t.Errorf("descriptions missing %q:\n%s", want, joined)
		}
	}
}

func TestBindExprSchemaHelper(t *testing.T) {
	c := testCatalog(t)
	b := NewBinder(c)
	e, err := sqlparser.ParseExpr("x + 1")
	if err != nil {
		t.Fatal(err)
	}
	be, err := b.BindExprSchema(e, []ColumnInfo{{Name: "x", Type: sqltypes.TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := be.Eval(sqltypes.Row{sqltypes.NewInt(41)})
	if err != nil || v.I != 42 {
		t.Fatalf("v = %v, %v", v, err)
	}
}

func TestBindOrderByHiddenColumn(t *testing.T) {
	c := testCatalog(t)
	n := bind(t, c, "SELECT b FROM t ORDER BY a")
	// Output schema must still be just b.
	if len(n.Schema()) != 1 || n.Schema()[0].Name != "b" {
		t.Fatalf("schema = %v", n.Schema())
	}
}
