package plan

import (
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/expr"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// Binder resolves parsed statements against a catalog, producing logical
// plans with bound (position-resolved) expressions.
type Binder struct {
	Catalog *catalog.Catalog
	// SubqueryFn turns an uncorrelated scalar subquery into a bound
	// expression (typically: plan + execute lazily, caching the result).
	// nil disables subquery support.
	SubqueryFn func(sel *sqlparser.SelectStmt) (expr.Expr, error)
	// SubqueryRowsFn turns an uncorrelated subquery into a lazy fetch of
	// its first-column values, used for IN (SELECT ...). nil disables.
	SubqueryRowsFn func(sel *sqlparser.SelectStmt) (func() ([]sqltypes.Value, error), error)
	// Params is the value binding $N parameters resolve against (the
	// engine wires each session's binding in). nil rejects parameters.
	Params *expr.ParamBinding

	ctes map[string]Node // CTEs currently in scope
}

// NewBinder returns a binder over cat.
func NewBinder(cat *catalog.Catalog) *Binder {
	return &Binder{Catalog: cat}
}

// BindSelect binds a full SELECT statement (CTEs, set ops, ORDER BY/LIMIT).
func (b *Binder) BindSelect(sel *sqlparser.SelectStmt) (Node, error) {
	// Push CTEs into scope (shadowing outer ones of the same name).
	saved := b.ctes
	if len(sel.CTEs) > 0 {
		b.ctes = make(map[string]Node, len(saved)+len(sel.CTEs))
		for k, v := range saved {
			b.ctes[k] = v
		}
		for _, cte := range sel.CTEs {
			n, err := b.BindSelect(cte.Select)
			if err != nil {
				return nil, fmt.Errorf("binding CTE %q: %w", cte.Name, err)
			}
			b.ctes[strings.ToLower(cte.Name)] = renameBinding(n, cte.Name)
		}
		defer func() { b.ctes = saved }()
	}

	node, err := b.bindSelectBody(sel)
	if err != nil {
		return nil, err
	}

	// Set-operation chain.
	for cur := sel; cur.Next != nil; cur = cur.Next {
		rhs, err := b.bindSelectBody(cur.Next)
		if err != nil {
			return nil, err
		}
		if len(rhs.Schema()) != len(node.Schema()) {
			return nil, fmt.Errorf("plan: set operation arms have different column counts (%d vs %d)",
				len(node.Schema()), len(rhs.Schema()))
		}
		node = &SetOp{Op: cur.NextOp, Left: node, Right: rhs}
	}

	// ORDER BY / LIMIT attach to the whole chain.
	node, err = b.bindOrderLimit(node, sel)
	if err != nil {
		return nil, err
	}
	return node, nil
}

// bindSelectBody binds one SELECT term without its ORDER BY/LIMIT (those are
// bound by BindSelect so they apply after set operations).
func (b *Binder) bindSelectBody(sel *sqlparser.SelectStmt) (Node, error) {
	if sel.Values != nil {
		return b.bindValues(sel)
	}

	// FROM
	var input Node
	if sel.From != nil {
		n, err := b.bindTableRef(sel.From)
		if err != nil {
			return nil, err
		}
		input = n
	} else {
		// SELECT without FROM: a single empty row.
		input = &Values{Rows: [][]expr.Expr{{}}, Columns: nil}
	}

	inSchema := input.Schema()

	// WHERE
	if sel.Where != nil {
		pred, err := b.bindExpr(sel.Where, inSchema, false)
		if err != nil {
			return nil, err
		}
		input = &Filter{Input: input, Pred: pred}
	}

	// Expand stars in the select list.
	items, err := expandStars(sel.Items, inSchema)
	if err != nil {
		return nil, err
	}

	// Aggregate context?
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if containsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}

	var node Node
	if hasAgg {
		node, err = b.bindAggregate(input, items, sel)
		if err != nil {
			return nil, err
		}
	} else {
		exprs := make([]expr.Expr, len(items))
		cols := make([]ColumnInfo, len(items))
		for i, it := range items {
			e, err := b.bindExpr(it.Expr, inSchema, false)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			cols[i] = ColumnInfo{Name: itemName(it), Type: e.Type()}
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok && it.Alias == "" {
				cols[i].Table = cr.Table
			}
		}
		node = &Project{Input: input, Exprs: exprs, Cols: cols}
	}

	if sel.Distinct {
		node = &Distinct{Input: node}
	}
	return node, nil
}

func itemName(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return sqlparser.DisplayName(it.Expr)
}

func expandStars(items []sqlparser.SelectItem, schema []ColumnInfo) ([]sqlparser.SelectItem, error) {
	var out []sqlparser.SelectItem
	for _, it := range items {
		cr, ok := it.Expr.(*sqlparser.ColumnRef)
		if !ok || !cr.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema {
			if cr.Table == "" || strings.EqualFold(cr.Table, c.Table) {
				out = append(out, sqlparser.SelectItem{
					Expr: &sqlparser.ColumnRef{Table: c.Table, Column: c.Name},
				})
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("plan: %s.* matches no columns", cr.Table)
		}
	}
	return out, nil
}

func containsAggregate(e sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if f, ok := x.(*sqlparser.FuncExpr); ok && expr.IsAggregateName(f.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// bindValues binds a VALUES list.
func (b *Binder) bindValues(sel *sqlparser.SelectStmt) (Node, error) {
	v := &Values{}
	width := -1
	for _, prow := range sel.Values {
		if width == -1 {
			width = len(prow)
		} else if len(prow) != width {
			return nil, fmt.Errorf("plan: VALUES rows have varying widths")
		}
		row := make([]expr.Expr, len(prow))
		for i, pe := range prow {
			e, err := b.bindExpr(pe, nil, false)
			if err != nil {
				return nil, err
			}
			row[i] = e
		}
		v.Rows = append(v.Rows, row)
	}
	for i := 0; i < width; i++ {
		t := sqltypes.TypeAny
		if len(v.Rows) > 0 {
			t = v.Rows[0][i].Type()
		}
		v.Columns = append(v.Columns, ColumnInfo{Name: fmt.Sprintf("col%d", i), Type: t})
	}
	return v, nil
}

// bindTableRef binds a FROM element.
func (b *Binder) bindTableRef(tr sqlparser.TableRef) (Node, error) {
	switch t := tr.(type) {
	case *sqlparser.NamedTable:
		return b.bindNamedTable(t)
	case *sqlparser.SubqueryTable:
		n, err := b.BindSelect(t.Select)
		if err != nil {
			return nil, err
		}
		alias := t.Alias
		if alias == "" {
			alias = "subquery"
		}
		return renameBinding(n, alias), nil
	case *sqlparser.JoinTable:
		return b.bindJoin(t)
	}
	return nil, fmt.Errorf("plan: unsupported table reference %T", tr)
}

func (b *Binder) bindNamedTable(t *sqlparser.NamedTable) (Node, error) {
	key := strings.ToLower(t.Name)
	// CTE in scope?
	if b.ctes != nil {
		if n, ok := b.ctes[key]; ok {
			if t.Alias != "" {
				return renameBinding(n, t.Alias), nil
			}
			return n, nil
		}
	}
	// Plain view?
	if v, ok := b.Catalog.View(t.Name); ok {
		sel, err := sqlparser.Parse(v.SourceSQL)
		if err != nil {
			return nil, fmt.Errorf("plan: view %q: %w", t.Name, err)
		}
		ss, ok := sel.(*sqlparser.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("plan: view %q is not a SELECT", t.Name)
		}
		n, err := b.BindSelect(ss)
		if err != nil {
			return nil, err
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		return renameBinding(n, alias), nil
	}
	tbl, err := b.Catalog.Table(t.Name)
	if err != nil {
		return nil, err
	}
	return NewScan(tbl, t.Alias), nil
}

func (b *Binder) bindJoin(jt *sqlparser.JoinTable) (Node, error) {
	left, err := b.bindTableRef(jt.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.bindTableRef(jt.Right)
	if err != nil {
		return nil, err
	}
	j := &Join{Kind: jt.Kind, Left: left, Right: right}
	combined := j.Schema()
	if len(jt.Using) > 0 {
		// USING(a, b) => l.a = r.a AND l.b = r.b
		for _, col := range jt.Using {
			li, err := resolveIn(left.Schema(), "", col)
			if err != nil {
				return nil, fmt.Errorf("plan: USING column %q: %w", col, err)
			}
			ri, err := resolveIn(right.Schema(), "", col)
			if err != nil {
				return nil, fmt.Errorf("plan: USING column %q: %w", col, err)
			}
			j.EquiLeft = append(j.EquiLeft, li)
			j.EquiRight = append(j.EquiRight, ri)
		}
		return j, nil
	}
	if jt.On != nil {
		pred, err := b.bindExpr(jt.On, combined, false)
		if err != nil {
			return nil, err
		}
		extractEquiKeys(j, pred, len(left.Schema()))
	}
	return j, nil
}

// extractEquiKeys pulls top-level AND-ed equality conditions between the two
// sides out of pred into hash-join keys, leaving the residual in j.On.
func extractEquiKeys(j *Join, pred expr.Expr, leftWidth int) {
	var residual []expr.Expr
	var visit func(e expr.Expr)
	visit = func(e expr.Expr) {
		if bin, ok := e.(*expr.Binary); ok {
			if bin.Op == "AND" {
				visit(bin.Left)
				visit(bin.Right)
				return
			}
			if bin.Op == "=" {
				lc, lok := bin.Left.(*expr.Column)
				rc, rok := bin.Right.(*expr.Column)
				if lok && rok {
					switch {
					case lc.Idx < leftWidth && rc.Idx >= leftWidth:
						j.EquiLeft = append(j.EquiLeft, lc.Idx)
						j.EquiRight = append(j.EquiRight, rc.Idx-leftWidth)
						return
					case rc.Idx < leftWidth && lc.Idx >= leftWidth:
						j.EquiLeft = append(j.EquiLeft, rc.Idx)
						j.EquiRight = append(j.EquiRight, lc.Idx-leftWidth)
						return
					}
				}
			}
		}
		residual = append(residual, e)
	}
	visit(pred)
	var on expr.Expr
	for _, r := range residual {
		if on == nil {
			on = r
		} else {
			on = &expr.Binary{Op: "AND", Left: on, Right: r}
		}
	}
	j.On = on
}

// renameBinding relabels the schema's table alias (wrapping in an identity
// Project so downstream positional references are unaffected).
func renameBinding(n Node, alias string) Node {
	in := n.Schema()
	exprs := make([]expr.Expr, len(in))
	cols := make([]ColumnInfo, len(in))
	for i, c := range in {
		exprs[i] = &expr.Column{Idx: i, Name: c.Name, Typ: c.Type}
		cols[i] = ColumnInfo{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &Project{Input: n, Exprs: exprs, Cols: cols}
}

// --- aggregate binding ---

func (b *Binder) bindAggregate(input Node, items []sqlparser.SelectItem, sel *sqlparser.SelectStmt) (Node, error) {
	inSchema := input.Schema()

	// Resolve GROUP BY expressions: ordinals and aliases refer to items.
	var groups []groupExpr
	for _, g := range sel.GroupBy {
		pe := g
		// Ordinal: GROUP BY 1.
		if lit, ok := g.(*sqlparser.Literal); ok && lit.Value.T == sqltypes.TypeInt {
			idx := int(lit.Value.I)
			if idx < 1 || idx > len(items) {
				return nil, fmt.Errorf("plan: GROUP BY ordinal %d out of range", idx)
			}
			pe = items[idx-1].Expr
		}
		// Alias: GROUP BY total — matches a select-item alias.
		if cr, ok := pe.(*sqlparser.ColumnRef); ok && cr.Table == "" && !cr.Star {
			if _, err := resolveIn(inSchema, "", cr.Column); err != nil {
				for _, it := range items {
					if strings.EqualFold(it.Alias, cr.Column) {
						pe = it.Expr
						break
					}
				}
			}
		}
		be, err := b.bindExpr(pe, inSchema, false)
		if err != nil {
			return nil, err
		}
		ge := groupExpr{parser: pe, bound: be, name: sqlparser.DisplayName(pe)}
		if cr, ok := pe.(*sqlparser.ColumnRef); ok {
			ge.table = cr.Table
		}
		groups = append(groups, ge)
	}

	// Collect aggregates from select items and HAVING, dedup by rendering.
	aggKeys := map[string]int{}
	var aggs []*expr.Aggregate
	var parserAggs []*sqlparser.FuncExpr
	collect := func(e sqlparser.Expr) error {
		var werr error
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			f, ok := x.(*sqlparser.FuncExpr)
			if !ok || !expr.IsAggregateName(f.Name) {
				return true
			}
			key := sqlparser.ExprString(f)
			if _, seen := aggKeys[key]; seen {
				return false
			}
			kind, _ := expr.ParseAggKind(f.Name, f.Star)
			ag := &expr.Aggregate{Kind: kind, Distinct: f.Distinct}
			if !f.Star {
				if len(f.Args) != 1 {
					werr = fmt.Errorf("plan: aggregate %s takes one argument", f.Name)
					return false
				}
				arg, err := b.bindExpr(f.Args[0], inSchema, false)
				if err != nil {
					werr = err
					return false
				}
				ag.Arg = arg
			}
			aggKeys[key] = len(aggs)
			aggs = append(aggs, ag)
			parserAggs = append(parserAggs, f)
			return false // don't descend into aggregate args
		})
		return werr
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, err
		}
	}

	// Aggregate node output schema: groups then aggregates.
	agg := &Aggregate{Input: input}
	for _, g := range groups {
		agg.GroupBy = append(agg.GroupBy, g.bound)
		agg.Cols = append(agg.Cols, ColumnInfo{Table: g.table, Name: g.name, Type: g.bound.Type()})
	}
	for i, a := range aggs {
		agg.Cols = append(agg.Cols, ColumnInfo{
			Name: strings.ToLower(sqlparser.ExprString(parserAggs[i])),
			Type: a.ResultType(),
		})
	}
	agg.Aggs = aggs

	// Rebind an expression over the aggregate's output: aggregate calls and
	// group expressions become column references.
	rebind := func(e sqlparser.Expr) (expr.Expr, error) {
		return b.bindPostAgg(e, groupsAsPost(groups), aggKeys, agg.Cols, len(groups))
	}

	var node Node = agg

	// HAVING.
	if sel.Having != nil {
		pred, err := rebind(sel.Having)
		if err != nil {
			return nil, err
		}
		node = &Filter{Input: node, Pred: pred}
	}

	// Final projection.
	exprs := make([]expr.Expr, len(items))
	cols := make([]ColumnInfo, len(items))
	for i, it := range items {
		e, err := rebind(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		cols[i] = ColumnInfo{Name: itemName(it), Type: e.Type()}
		if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok && it.Alias == "" {
			cols[i].Table = cr.Table
		}
	}
	return &Project{Input: node, Exprs: exprs, Cols: cols}, nil
}

// groupExpr carries one resolved GROUP BY expression through aggregate
// binding.
type groupExpr struct {
	parser sqlparser.Expr
	bound  expr.Expr
	name   string
	table  string
}

type postGroup struct {
	key   string // ExprString of the group's parser expression
	table string
	name  string
}

func groupsAsPost(groups []groupExpr) []postGroup {
	out := make([]postGroup, len(groups))
	for i, g := range groups {
		out[i] = postGroup{key: sqlparser.ExprString(g.parser), table: g.table, name: g.name}
	}
	return out
}

// bindPostAgg binds an expression over the aggregate output schema:
// aggregate function calls resolve to their output column, group expressions
// (matched syntactically) resolve to the group column, and anything else
// containing a raw column reference is rejected.
func (b *Binder) bindPostAgg(e sqlparser.Expr, groups []postGroup, aggKeys map[string]int, cols []ColumnInfo, nGroups int) (expr.Expr, error) {
	// Exact group-expression match?
	key := sqlparser.ExprString(e)
	for i, g := range groups {
		if g.key == key {
			return &expr.Column{Idx: i, Name: g.name, Typ: cols[i].Type}, nil
		}
	}
	switch x := e.(type) {
	case *sqlparser.FuncExpr:
		if expr.IsAggregateName(x.Name) {
			if idx, ok := aggKeys[key]; ok {
				return &expr.Column{Idx: nGroups + idx, Name: cols[nGroups+idx].Name, Typ: cols[nGroups+idx].Type}, nil
			}
			return nil, fmt.Errorf("plan: aggregate %s not collected", key)
		}
		// Scalar function over post-aggregate values.
		args := make([]expr.Expr, len(x.Args))
		types := make([]sqltypes.Type, len(x.Args))
		for i, a := range x.Args {
			ba, err := b.bindPostAgg(a, groups, aggKeys, cols, nGroups)
			if err != nil {
				return nil, err
			}
			args[i] = ba
			types[i] = ba.Type()
		}
		mk, ok := expr.ScalarFuncs[x.Name]
		if !ok {
			return nil, fmt.Errorf("plan: unknown function %s", x.Name)
		}
		fn, typ, err := mk(types)
		if err != nil {
			return nil, err
		}
		return &expr.ScalarFunc{Name: x.Name, Args: args, Fn: fn, Typ: typ}, nil
	case *sqlparser.ColumnRef:
		// Group column referenced by bare name or alias.
		for i, g := range groups {
			if strings.EqualFold(g.name, x.Column) && (x.Table == "" || strings.EqualFold(g.table, x.Table)) {
				return &expr.Column{Idx: i, Name: g.name, Typ: cols[i].Type}, nil
			}
		}
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or be used in an aggregate", sqlparser.ExprString(x))
	case *sqlparser.Literal:
		return &expr.Literal{Val: x.Value}, nil
	case *sqlparser.BinaryExpr:
		l, err := b.bindPostAgg(x.Left, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		r, err := b.bindPostAgg(x.Right, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: x.Op, Left: l, Right: r}, nil
	case *sqlparser.UnaryExpr:
		o, err := b.bindPostAgg(x.Operand, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: x.Op, Operand: o}, nil
	case *sqlparser.IsNullExpr:
		o, err := b.bindPostAgg(x.Operand, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Operand: o, Negate: x.Negate}, nil
	case *sqlparser.CaseExpr:
		ce := &expr.Case{}
		var err error
		if x.Operand != nil {
			ce.Operand, err = b.bindPostAgg(x.Operand, groups, aggKeys, cols, nGroups)
			if err != nil {
				return nil, err
			}
		}
		for _, w := range x.Whens {
			wb, err := b.bindPostAgg(w.When, groups, aggKeys, cols, nGroups)
			if err != nil {
				return nil, err
			}
			tb, err := b.bindPostAgg(w.Then, groups, aggKeys, cols, nGroups)
			if err != nil {
				return nil, err
			}
			ce.Whens = append(ce.Whens, expr.CaseWhen{When: wb, Then: tb})
		}
		if x.Else != nil {
			ce.Else, err = b.bindPostAgg(x.Else, groups, aggKeys, cols, nGroups)
			if err != nil {
				return nil, err
			}
		}
		return ce, nil
	case *sqlparser.CastExpr:
		o, err := b.bindPostAgg(x.Operand, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		t, err := sqltypes.ParseType(x.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{Operand: o, Target: t}, nil
	case *sqlparser.BetweenExpr:
		o, err := b.bindPostAgg(x.Operand, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindPostAgg(x.Lo, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindPostAgg(x.Hi, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		return &expr.Between{Operand: o, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case *sqlparser.InExpr:
		o, err := b.bindPostAgg(x.Operand, groups, aggKeys, cols, nGroups)
		if err != nil {
			return nil, err
		}
		ie := &expr.In{Operand: o, Negate: x.Negate}
		for _, item := range x.List {
			bi, err := b.bindPostAgg(item, groups, aggKeys, cols, nGroups)
			if err != nil {
				return nil, err
			}
			ie.List = append(ie.List, bi)
		}
		return ie, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T after aggregation", e)
}

// --- ORDER BY / LIMIT ---

func (b *Binder) bindOrderLimit(node Node, sel *sqlparser.SelectStmt) (Node, error) {
	schema := node.Schema()
	if len(sel.OrderBy) > 0 {
		var keys []SortKey
		// Hidden sort columns: ORDER BY may reference input columns that are
		// not projected (SELECT v FROM t ORDER BY k). When direct binding
		// fails and the plan root is a simple projection, bind against the
		// projection's input and append the key as a hidden column, removed
		// again after the sort.
		proj, _ := node.(*Project)
		var hidden []expr.Expr
		visibleWidth := len(schema)
		for _, oi := range sel.OrderBy {
			var e expr.Expr
			// Ordinal.
			if lit, ok := oi.Expr.(*sqlparser.Literal); ok && lit.Value.T == sqltypes.TypeInt {
				idx := int(lit.Value.I)
				if idx < 1 || idx > visibleWidth {
					return nil, fmt.Errorf("plan: ORDER BY ordinal %d out of range", idx)
				}
				e = &expr.Column{Idx: idx - 1, Name: schema[idx-1].Name, Typ: schema[idx-1].Type}
			} else {
				be, err := b.bindExpr(oi.Expr, schema, false)
				if err != nil {
					if proj == nil {
						return nil, err
					}
					inner, ierr := b.bindExpr(oi.Expr, proj.Input.Schema(), false)
					if ierr != nil {
						return nil, err // report the original error
					}
					e = &expr.Column{Idx: visibleWidth + len(hidden), Typ: inner.Type()}
					hidden = append(hidden, inner)
				} else {
					e = be
				}
			}
			keys = append(keys, SortKey{Expr: e, Desc: oi.Desc})
		}
		if len(hidden) > 0 {
			wide := &Project{Input: proj.Input}
			wide.Exprs = append(append([]expr.Expr{}, proj.Exprs...), hidden...)
			wide.Cols = append([]ColumnInfo{}, proj.Cols...)
			for i, h := range hidden {
				wide.Cols = append(wide.Cols, ColumnInfo{Name: fmt.Sprintf("__sort%d", i), Type: h.Type()})
			}
			var narrowExprs []expr.Expr
			for i, c := range proj.Cols {
				narrowExprs = append(narrowExprs, &expr.Column{Idx: i, Name: c.Name, Typ: c.Type})
			}
			node = &Project{
				Input: &Sort{Input: wide, Keys: keys},
				Exprs: narrowExprs,
				Cols:  proj.Cols,
			}
		} else {
			node = &Sort{Input: node, Keys: keys}
		}
	}
	if sel.Limit != nil || sel.Offset != nil {
		lim := &Limit{Input: node, Limit: -1}
		if sel.Limit != nil {
			v, err := constInt(sel.Limit)
			if err != nil {
				return nil, fmt.Errorf("plan: LIMIT: %w", err)
			}
			lim.Limit = v
		}
		if sel.Offset != nil {
			v, err := constInt(sel.Offset)
			if err != nil {
				return nil, fmt.Errorf("plan: OFFSET: %w", err)
			}
			lim.Offset = v
		}
		node = lim
	}
	return node, nil
}

func constInt(e sqlparser.Expr) (int64, error) {
	lit, ok := e.(*sqlparser.Literal)
	if !ok || lit.Value.T != sqltypes.TypeInt {
		return 0, fmt.Errorf("expected integer constant")
	}
	return lit.Value.I, nil
}

// BindExprSchema binds a scalar expression against an explicit schema
// (used by the engine's DML paths, which evaluate predicates against base
// table rows directly).
func (b *Binder) BindExprSchema(e sqlparser.Expr, schema []ColumnInfo) (expr.Expr, error) {
	return b.bindExpr(e, schema, false)
}

// BindExprNoInput binds an expression with no input columns (constants,
// e.g. DEFAULT clauses).
func (b *Binder) BindExprNoInput(e sqlparser.Expr) (expr.Expr, error) {
	return b.bindExpr(e, nil, false)
}

// --- scalar expression binding ---

// resolveIn finds (table, name) in schema; table may be empty. Errors on
// ambiguity or absence.
func resolveIn(schema []ColumnInfo, table, name string) (int, error) {
	found := -1
	for i, c := range schema {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		q := name
		if table != "" {
			q = table + "." + name
		}
		return 0, fmt.Errorf("column %q not found", q)
	}
	return found, nil
}

// bindExpr binds a parser expression against a schema. allowAgg permits
// aggregate function calls to bind as plain scalar errors (false rejects).
func (b *Binder) bindExpr(e sqlparser.Expr, schema []ColumnInfo, allowAgg bool) (expr.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return &expr.Literal{Val: x.Value}, nil
	case *sqlparser.ColumnRef:
		if x.Star {
			return nil, fmt.Errorf("plan: * not allowed in this context")
		}
		idx, err := resolveIn(schema, x.Table, x.Column)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		return &expr.Column{Idx: idx, Name: x.Column, Typ: schema[idx].Type}, nil
	case *sqlparser.BinaryExpr:
		l, err := b.bindExpr(x.Left, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.Right, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: x.Op, Left: l, Right: r}, nil
	case *sqlparser.UnaryExpr:
		o, err := b.bindExpr(x.Operand, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: x.Op, Operand: o}, nil
	case *sqlparser.IsNullExpr:
		o, err := b.bindExpr(x.Operand, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Operand: o, Negate: x.Negate}, nil
	case *sqlparser.InExpr:
		o, err := b.bindExpr(x.Operand, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		// IN (SELECT ...) binds to a lazy subquery fetch.
		if len(x.List) == 1 {
			if sq, ok := x.List[0].(*sqlparser.SubqueryExpr); ok {
				if b.SubqueryRowsFn == nil {
					return nil, fmt.Errorf("plan: IN subqueries not supported in this context")
				}
				fetch, err := b.SubqueryRowsFn(sq.Select)
				if err != nil {
					return nil, err
				}
				return &expr.InQuery{Operand: o, Fetch: fetch, Negate: x.Negate}, nil
			}
		}
		ie := &expr.In{Operand: o, Negate: x.Negate}
		for _, item := range x.List {
			bi, err := b.bindExpr(item, schema, allowAgg)
			if err != nil {
				return nil, err
			}
			ie.List = append(ie.List, bi)
		}
		return ie, nil
	case *sqlparser.BetweenExpr:
		o, err := b.bindExpr(x.Operand, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(x.Lo, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(x.Hi, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		return &expr.Between{Operand: o, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case *sqlparser.CaseExpr:
		ce := &expr.Case{}
		var err error
		if x.Operand != nil {
			ce.Operand, err = b.bindExpr(x.Operand, schema, allowAgg)
			if err != nil {
				return nil, err
			}
		}
		for _, w := range x.Whens {
			wb, err := b.bindExpr(w.When, schema, allowAgg)
			if err != nil {
				return nil, err
			}
			tb, err := b.bindExpr(w.Then, schema, allowAgg)
			if err != nil {
				return nil, err
			}
			ce.Whens = append(ce.Whens, expr.CaseWhen{When: wb, Then: tb})
		}
		if x.Else != nil {
			ce.Else, err = b.bindExpr(x.Else, schema, allowAgg)
			if err != nil {
				return nil, err
			}
		}
		return ce, nil
	case *sqlparser.CastExpr:
		o, err := b.bindExpr(x.Operand, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		t, err := sqltypes.ParseType(x.TypeName)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		return &expr.Cast{Operand: o, Target: t}, nil
	case *sqlparser.FuncExpr:
		if expr.IsAggregateName(x.Name) {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", x.Name)
		}
		args := make([]expr.Expr, len(x.Args))
		types := make([]sqltypes.Type, len(x.Args))
		for i, a := range x.Args {
			ba, err := b.bindExpr(a, schema, allowAgg)
			if err != nil {
				return nil, err
			}
			args[i] = ba
			types[i] = ba.Type()
		}
		mk, ok := expr.ScalarFuncs[x.Name]
		if !ok {
			return nil, fmt.Errorf("plan: unknown function %s", x.Name)
		}
		fn, typ, err := mk(types)
		if err != nil {
			return nil, err
		}
		return &expr.ScalarFunc{Name: x.Name, Args: args, Fn: fn, Typ: typ}, nil
	case *sqlparser.SubqueryExpr:
		if b.SubqueryFn == nil {
			return nil, fmt.Errorf("plan: scalar subqueries not supported in this context")
		}
		return b.SubqueryFn(x.Select)
	case *sqlparser.ParamExpr:
		if b.Params == nil {
			return nil, fmt.Errorf("plan: statement parameters ($%d) not supported in this context", x.Index)
		}
		return &expr.Param{Index: x.Index, Binding: b.Params}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", e)
}
