package plan

import "fmt"

// Hint is a semantics-preserving pass-through node carrying executor
// tuning knobs resolved at plan time — the batch size selected by PRAGMA
// batch_size and the scan parallelism selected by PRAGMA workers. The
// engine wraps the optimized plan root with it; the executor unwraps it
// and applies the knobs to the whole subtree.
type Hint struct {
	Input Node
	// BatchSize is the target rows-per-batch for the subtree (0 = executor
	// default).
	BatchSize int
	// Workers is the parallel-scan worker count for the subtree (0 =
	// executor default, one worker per CPU; 1 = serial).
	Workers int
}

// Schema implements Node.
func (h *Hint) Schema() []ColumnInfo { return h.Input.Schema() }

// Children implements Node.
func (h *Hint) Children() []Node { return []Node{h.Input} }

// Describe implements Node.
func (h *Hint) Describe() string {
	d := "Hint"
	if h.BatchSize > 0 {
		d += fmt.Sprintf(" batch_size=%d", h.BatchSize)
	}
	if h.Workers > 0 {
		d += fmt.Sprintf(" workers=%d", h.Workers)
	}
	return d
}

// BuildOnLeft reports whether a hash join over j should build its hash
// table on the left input and probe with the right one, instead of the
// default right-side build. Building on the smaller input wins twice: the
// table is cheaper to construct (fewer inserts, fewer key-string
// allocations) and it stays resident while the larger side streams through
// probe-only lookups. The common IVM shape — a tiny delta table joined
// against a large base table — is exactly the case where the default
// right-side build is maximally wrong.
func BuildOnLeft(j *Join) bool {
	return EstimateRows(j.Left) < EstimateRows(j.Right)
}

// EstimateRows returns a coarse output-cardinality estimate for the node —
// exact for scans and values, heuristic elsewhere. The executor uses it to
// pre-size hash tables and output buffers; it must be cheap, not precise.
func EstimateRows(n Node) int {
	switch x := n.(type) {
	case *Scan:
		return x.Table.RowCount()
	case *Values:
		return len(x.Rows)
	case *Filter:
		// Selectivity guess: keep a third.
		return EstimateRows(x.Input)/3 + 1
	case *Project:
		return EstimateRows(x.Input)
	case *Hint:
		return EstimateRows(x.Input)
	case *Sort:
		return EstimateRows(x.Input)
	case *Distinct:
		return EstimateRows(x.Input)
	case *Aggregate:
		// Output is one row per group, bounded by the input.
		return EstimateRows(x.Input)
	case *Limit:
		est := EstimateRows(x.Input)
		if x.Limit >= 0 && int(x.Limit) < est {
			est = int(x.Limit)
		}
		return est
	case *Join:
		l, r := EstimateRows(x.Left), EstimateRows(x.Right)
		if len(x.EquiLeft) > 0 {
			// Equi join: assume roughly foreign-key shape.
			if l > r {
				return l
			}
			return r
		}
		// Cross/theta join, with overflow guarding.
		if l > 0 && r > (1<<30)/l {
			return 1 << 30
		}
		return l * r
	case *SetOp:
		return EstimateRows(x.Left) + EstimateRows(x.Right)
	}
	return 0
}
