package expr

import (
	"fmt"

	"openivm/internal/sqltypes"
)

// AggKind enumerates the supported aggregate functions — the paper's
// shipped set (SUM, COUNT) plus its announced extensions (MIN, MAX) and
// AVG (maintained as SUM/COUNT).
type AggKind uint8

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggCountStar
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggCount, AggCountStar:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return "AGG"
}

// ParseAggKind maps a function name to an AggKind; star selects COUNT(*).
func ParseAggKind(name string, star bool) (AggKind, bool) {
	switch name {
	case "SUM":
		return AggSum, true
	case "COUNT":
		if star {
			return AggCountStar, true
		}
		return AggCount, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	case "AVG":
		return AggAvg, true
	}
	return AggSum, false
}

// IsAggregateName reports whether name is an aggregate function.
func IsAggregateName(name string) bool {
	switch name {
	case "SUM", "COUNT", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// Aggregate describes one aggregate computation: kind plus its (bound)
// argument expression (nil for COUNT(*)), and whether DISTINCT applies.
type Aggregate struct {
	Kind     AggKind
	Arg      Expr
	Distinct bool
}

// ResultType returns the aggregate's output type given its input.
func (a *Aggregate) ResultType() sqltypes.Type {
	switch a.Kind {
	case AggCount, AggCountStar:
		return sqltypes.TypeInt
	case AggAvg:
		return sqltypes.TypeFloat
	case AggSum:
		if a.Arg != nil && a.Arg.Type() == sqltypes.TypeFloat {
			return sqltypes.TypeFloat
		}
		return sqltypes.TypeInt
	case AggMin, AggMax:
		if a.Arg != nil {
			return a.Arg.Type()
		}
	}
	return sqltypes.TypeAny
}

// String renders the aggregate for display.
func (a *Aggregate) String() string {
	if a.Kind == AggCountStar {
		return "COUNT(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Kind, d, a.Arg)
}

// AggState accumulates one aggregate over one group.
type AggState interface {
	// Add folds one input row into the state.
	Add(row sqltypes.Row) error
	// AddVec folds cell i of the aggregate's pre-evaluated argument vector
	// into the state — the columnar input path: the executor evaluates the
	// argument expression once per batch as a vector kernel and feeds each
	// row's cell to its group's accumulator, skipping per-row Eval dispatch.
	// arg is nil only for COUNT(*), which consumes no argument.
	AddVec(arg *sqltypes.Vector, i int) error
	// Merge folds another accumulator of the same aggregate into this one —
	// the combine step of two-phase parallel aggregation, where each worker
	// aggregates its partition into thread-local states and the partials
	// are merged afterwards. other must come from the same *Aggregate.
	Merge(other AggState) error
	// Result produces the aggregate value.
	Result() sqltypes.Value
}

// Mergeable reports whether the aggregate's partial states can be combined
// with AggState.Merge. DISTINCT aggregates cannot: a value deduplicated
// inside two partitions would be double-counted by merging the inner
// states, so they must be evaluated on a single goroutine.
func (a *Aggregate) Mergeable() bool { return !a.Distinct }

// NewState returns a fresh accumulator for the aggregate.
func (a *Aggregate) NewState() AggState {
	var inner AggState
	switch a.Kind {
	case AggSum:
		inner = &sumState{arg: a.Arg}
	case AggCount:
		inner = &countState{arg: a.Arg}
	case AggCountStar:
		inner = &countState{}
	case AggMin:
		inner = &minmaxState{arg: a.Arg, isMin: true}
	case AggMax:
		inner = &minmaxState{arg: a.Arg}
	case AggAvg:
		inner = &avgState{arg: a.Arg}
	}
	if a.Distinct {
		return &distinctState{arg: a.Arg, inner: inner, seen: map[string]struct{}{}}
	}
	return inner
}

// FillStates populates dst with independent fresh accumulators, using one
// backing allocation for the whole block instead of one per state — the
// hash aggregation operator hands these out as groups appear, so a
// grouped aggregate costs O(1) allocations per block of groups rather than
// O(aggs) per group. DISTINCT aggregates still allocate individually
// (each carries its own dedup map).
func (a *Aggregate) FillStates(dst []AggState) {
	if a.Distinct {
		for i := range dst {
			dst[i] = a.NewState()
		}
		return
	}
	switch a.Kind {
	case AggSum:
		block := make([]sumState, len(dst))
		for i := range dst {
			block[i].arg = a.Arg
			dst[i] = &block[i]
		}
	case AggCount, AggCountStar:
		block := make([]countState, len(dst))
		for i := range dst {
			if a.Kind == AggCount {
				block[i].arg = a.Arg
			}
			dst[i] = &block[i]
		}
	case AggMin, AggMax:
		block := make([]minmaxState, len(dst))
		for i := range dst {
			block[i] = minmaxState{arg: a.Arg, isMin: a.Kind == AggMin}
			dst[i] = &block[i]
		}
	case AggAvg:
		block := make([]avgState, len(dst))
		for i := range dst {
			block[i].arg = a.Arg
			dst[i] = &block[i]
		}
	default:
		for i := range dst {
			dst[i] = a.NewState()
		}
	}
}

type sumState struct {
	arg Expr
	sum sqltypes.Value // NULL until first non-null input
}

func (s *sumState) Add(row sqltypes.Row) error {
	v, err := s.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if s.sum.IsNull() {
		s.sum = v
		return nil
	}
	sum, err := sqltypes.Arith('+', s.sum, v)
	if err != nil {
		return err
	}
	s.sum = sum
	return nil
}

func (s *sumState) AddVec(arg *sqltypes.Vector, i int) error {
	if !arg.Valid(i) {
		return nil
	}
	// Unboxed accumulation on the matching payload; mixed int/float input
	// across batches falls back to the same Arith promotion Add performs.
	switch {
	case arg.T == sqltypes.TypeInt && s.sum.T == sqltypes.TypeInt:
		s.sum.I += arg.Ints[i]
		return nil
	case arg.T == sqltypes.TypeFloat && s.sum.T == sqltypes.TypeFloat:
		s.sum.F += arg.Floats[i]
		return nil
	case s.sum.IsNull():
		s.sum = arg.ValueAt(i)
		return nil
	}
	sum, err := sqltypes.Arith('+', s.sum, arg.ValueAt(i))
	if err != nil {
		return err
	}
	s.sum = sum
	return nil
}

func (s *sumState) Merge(other AggState) error {
	o, ok := other.(*sumState)
	if !ok {
		return fmt.Errorf("expr: cannot merge %T into SUM state", other)
	}
	if o.sum.IsNull() {
		return nil
	}
	if s.sum.IsNull() {
		s.sum = o.sum
		return nil
	}
	sum, err := sqltypes.Arith('+', s.sum, o.sum)
	if err != nil {
		return err
	}
	s.sum = sum
	return nil
}

func (s *sumState) Result() sqltypes.Value { return s.sum }

type countState struct {
	arg Expr // nil for COUNT(*)
	n   int64
}

func (s *countState) Add(row sqltypes.Row) error {
	if s.arg == nil {
		s.n++
		return nil
	}
	v, err := s.arg.Eval(row)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		s.n++
	}
	return nil
}

func (s *countState) AddVec(arg *sqltypes.Vector, i int) error {
	if arg == nil || arg.Valid(i) { // nil arg = COUNT(*)
		s.n++
	}
	return nil
}

func (s *countState) Merge(other AggState) error {
	o, ok := other.(*countState)
	if !ok {
		return fmt.Errorf("expr: cannot merge %T into COUNT state", other)
	}
	s.n += o.n
	return nil
}

func (s *countState) Result() sqltypes.Value { return sqltypes.NewInt(s.n) }

type minmaxState struct {
	arg   Expr
	best  sqltypes.Value
	isMin bool
}

func (s *minmaxState) Add(row sqltypes.Row) error {
	v, err := s.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if s.best.IsNull() {
		s.best = v
		return nil
	}
	c := sqltypes.Compare(v, s.best)
	if (s.isMin && c < 0) || (!s.isMin && c > 0) {
		s.best = v
	}
	return nil
}

func (s *minmaxState) AddVec(arg *sqltypes.Vector, i int) error {
	if !arg.Valid(i) {
		return nil
	}
	v := arg.ValueAt(i)
	if s.best.IsNull() {
		s.best = v
		return nil
	}
	c := sqltypes.Compare(v, s.best)
	if (s.isMin && c < 0) || (!s.isMin && c > 0) {
		s.best = v
	}
	return nil
}

func (s *minmaxState) Merge(other AggState) error {
	o, ok := other.(*minmaxState)
	if !ok {
		return fmt.Errorf("expr: cannot merge %T into MIN/MAX state", other)
	}
	if o.best.IsNull() {
		return nil
	}
	if s.best.IsNull() {
		s.best = o.best
		return nil
	}
	c := sqltypes.Compare(o.best, s.best)
	if (s.isMin && c < 0) || (!s.isMin && c > 0) {
		s.best = o.best
	}
	return nil
}

func (s *minmaxState) Result() sqltypes.Value { return s.best }

type avgState struct {
	arg Expr
	sum float64
	n   int64
}

func (s *avgState) Add(row sqltypes.Row) error {
	v, err := s.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	s.sum += v.AsFloat()
	s.n++
	return nil
}

func (s *avgState) AddVec(arg *sqltypes.Vector, i int) error {
	switch {
	case !arg.Valid(i):
	case arg.T == sqltypes.TypeFloat:
		s.sum += arg.Floats[i]
		s.n++
	case arg.T == sqltypes.TypeInt:
		s.sum += float64(arg.Ints[i])
		s.n++
	default:
		s.sum += arg.ValueAt(i).AsFloat()
		s.n++
	}
	return nil
}

func (s *avgState) Merge(other AggState) error {
	o, ok := other.(*avgState)
	if !ok {
		return fmt.Errorf("expr: cannot merge %T into AVG state", other)
	}
	s.sum += o.sum
	s.n += o.n
	return nil
}

func (s *avgState) Result() sqltypes.Value {
	if s.n == 0 {
		return sqltypes.Null
	}
	return sqltypes.NewFloat(s.sum / float64(s.n))
}

type distinctState struct {
	arg   Expr
	inner AggState
	seen  map[string]struct{}
	buf   []byte // reusable key scratch
}

func (s *distinctState) Add(row sqltypes.Row) error {
	v, err := s.arg.Eval(row)
	if err != nil {
		return err
	}
	s.buf = sqltypes.EncodeKey(s.buf[:0], v)
	if _, ok := s.seen[string(s.buf)]; ok {
		return nil
	}
	s.seen[string(s.buf)] = struct{}{}
	return s.inner.Add(row)
}

func (s *distinctState) AddVec(arg *sqltypes.Vector, i int) error {
	s.buf = arg.EncodeCell(s.buf[:0], i)
	if _, ok := s.seen[string(s.buf)]; ok {
		return nil
	}
	s.seen[string(s.buf)] = struct{}{}
	return s.inner.AddVec(arg, i)
}

// Merge is unsupported: each partial deduplicates independently, so
// merging inner states would double-count values seen in two partitions.
// The executor checks Aggregate.Mergeable before parallelizing.
func (s *distinctState) Merge(other AggState) error {
	return fmt.Errorf("expr: DISTINCT aggregate states cannot be merged")
}

func (s *distinctState) Result() sqltypes.Value { return s.inner.Result() }
