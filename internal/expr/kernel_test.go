package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"openivm/internal/sqltypes"
)

// kernelFixture builds three typed input vectors (int, float, string) with
// interleaved NULLs plus the equivalent boxed rows, so kernels and the
// row evaluator can be compared cell for cell.
func kernelFixture(n int, seed int64) ([]*sqltypes.Vector, []sqltypes.Row) {
	rng := rand.New(rand.NewSource(seed))
	iv := sqltypes.NewVector(sqltypes.TypeInt, n)
	fv := sqltypes.NewVector(sqltypes.TypeFloat, n)
	sv := sqltypes.NewVector(sqltypes.TypeString, n)
	rows := make([]sqltypes.Row, n)
	for i := 0; i < n; i++ {
		row := make(sqltypes.Row, 3)
		if rng.Intn(4) == 0 {
			iv.AppendNull()
		} else {
			x := int64(rng.Intn(11) - 5)
			iv.AppendInt(x)
			row[0] = sqltypes.NewInt(x)
		}
		if rng.Intn(4) == 0 {
			fv.AppendNull()
		} else {
			x := float64(rng.Intn(40)) / 8
			fv.AppendFloat(x)
			row[1] = sqltypes.NewFloat(x)
		}
		if rng.Intn(4) == 0 {
			sv.AppendNull()
		} else {
			x := fmt.Sprintf("v%d", rng.Intn(5))
			sv.AppendString(x)
			row[2] = sqltypes.NewString(x)
		}
		rows[i] = row
	}
	return []*sqltypes.Vector{iv, fv, sv}, rows
}

func fixtureResolve(c int) (int, sqltypes.Type, bool) {
	switch c {
	case 0:
		return 0, sqltypes.TypeInt, true
	case 1:
		return 1, sqltypes.TypeFloat, true
	case 2:
		return 2, sqltypes.TypeString, true
	}
	return 0, 0, false
}

func kcol(i int, t sqltypes.Type) *Column { return &Column{Idx: i, Typ: t} }

func klit(v sqltypes.Value) *Literal { return &Literal{Val: v} }

// coalesceFn / absFn are the boxed implementations from the ScalarFuncs
// registry, so test expressions Eval like bound ones.
func coalesceFn(args []sqltypes.Value) (sqltypes.Value, error) {
	for _, a := range args {
		if !a.IsNull() {
			return a, nil
		}
	}
	return sqltypes.Null, nil
}

func absFn(args []sqltypes.Value) (sqltypes.Value, error) {
	v := args[0]
	if v.T == sqltypes.TypeInt && v.I < 0 {
		return sqltypes.NewInt(-v.I), nil
	}
	return v, nil
}

// TestKernelMatchesEval compiles a spread of expressions and checks the
// vector result against per-row boxed evaluation, NULLs included.
func TestKernelMatchesEval(t *testing.T) {
	ic, fc, sc := kcol(0, sqltypes.TypeInt), kcol(1, sqltypes.TypeFloat), kcol(2, sqltypes.TypeString)
	exprs := []Expr{
		ic,
		klit(sqltypes.NewInt(42)),
		&Binary{Op: "+", Left: ic, Right: klit(sqltypes.NewInt(3))},
		&Binary{Op: "*", Left: ic, Right: ic},
		&Binary{Op: "/", Left: ic, Right: ic},                         // division by zero -> NULL
		&Binary{Op: "%", Left: ic, Right: klit(sqltypes.NewInt(0))},   // modulo zero -> NULL
		&Binary{Op: "+", Left: ic, Right: fc},                         // int/float promotion
		&Binary{Op: "/", Left: fc, Right: klit(sqltypes.NewFloat(0))}, // float div zero -> NULL
		&Unary{Op: "-", Operand: ic},
		&Unary{Op: "-", Operand: fc},
		&Binary{Op: "=", Left: ic, Right: klit(sqltypes.NewInt(2))},
		&Binary{Op: "<>", Left: ic, Right: klit(sqltypes.NewInt(0))},
		&Binary{Op: "<", Left: ic, Right: fc},
		&Binary{Op: ">=", Left: sc, Right: klit(sqltypes.NewString("v2"))},
		&Binary{Op: "LIKE", Left: sc, Right: klit(sqltypes.NewString("v%"))},
		&Binary{Op: "LIKE", Left: sc, Right: klit(sqltypes.NewString("_3"))},
		&IsNull{Operand: ic},
		&IsNull{Operand: sc, Negate: true},
		&Unary{Op: "NOT", Operand: &Binary{Op: ">", Left: ic, Right: klit(sqltypes.NewInt(0))}},
		&Binary{Op: "AND",
			Left:  &Binary{Op: ">", Left: ic, Right: klit(sqltypes.NewInt(-2))},
			Right: &Binary{Op: "<", Left: fc, Right: klit(sqltypes.NewFloat(3))}},
		&Binary{Op: "OR",
			Left:  &IsNull{Operand: ic},
			Right: &Binary{Op: "=", Left: sc, Right: klit(sqltypes.NewString("v1"))}},
		&Cast{Operand: ic, Target: sqltypes.TypeFloat},
		&Cast{Operand: fc, Target: sqltypes.TypeInt}, // truncation toward zero
		&Cast{Operand: ic, Target: sqltypes.TypeInt}, // identity
		&ScalarFunc{Name: "COALESCE", Typ: sqltypes.TypeInt,
			Args: []Expr{ic, klit(sqltypes.NewInt(0))},
			Fn:   coalesceFn},
		&ScalarFunc{Name: "COALESCE", Typ: sqltypes.TypeString,
			Args: []Expr{sc, sc, klit(sqltypes.NewString("dflt"))},
			Fn:   coalesceFn},
		// The IVM multiplicity shape: searched CASE, negated branch.
		&Case{Whens: []CaseWhen{{
			When: &Binary{Op: "<", Left: ic, Right: klit(sqltypes.NewInt(0))},
			Then: &Unary{Op: "-", Operand: ic}}},
			Else: ic},
		// No ELSE -> NULL; NULL condition is not matched.
		&Case{Whens: []CaseWhen{{
			When: &Binary{Op: ">", Left: fc, Right: klit(sqltypes.NewFloat(2))},
			Then: fc}}},
		// Multiple arms, first match wins.
		&Case{Whens: []CaseWhen{
			{When: &Binary{Op: "=", Left: ic, Right: klit(sqltypes.NewInt(1))}, Then: klit(sqltypes.NewInt(100))},
			{When: &Binary{Op: ">", Left: ic, Right: klit(sqltypes.NewInt(1))}, Then: ic},
		}, Else: klit(sqltypes.NewInt(-100))},
		// Simple CASE (with operand) rewrites to searched form: NULL
		// operands match nothing, first equal arm wins.
		&Case{Operand: ic, Whens: []CaseWhen{
			{When: klit(sqltypes.NewInt(1)), Then: klit(sqltypes.NewInt(10))},
			{When: klit(sqltypes.NewInt(2)), Then: klit(sqltypes.NewInt(20))},
		}, Else: klit(sqltypes.NewInt(0))},
		// Operand equality under int/float promotion; no ELSE -> NULL.
		&Case{Operand: ic, Whens: []CaseWhen{{When: fc, Then: ic}}},
		// String operand.
		&Case{Operand: sc, Whens: []CaseWhen{{When: klit(sqltypes.NewString("v1")), Then: klit(sqltypes.NewInt(1))}},
			Else: klit(sqltypes.NewInt(0))},
	}
	for _, seed := range []int64{1, 2, 3} {
		cols, rows := kernelFixture(333, seed)
		for _, e := range exprs {
			k, ok := CompileKernel(e, fixtureResolve)
			if !ok {
				t.Fatalf("did not compile: %s", e)
			}
			out := k.EvalVec(cols, len(rows))
			for i, r := range rows {
				want, err := e.Eval(r)
				if err != nil {
					t.Fatalf("%s: boxed eval error %v", e, err)
				}
				got := out.ValueAt(i)
				if !sqltypes.Equal(got, want) {
					t.Fatalf("%s row %d (%v): kernel %v, eval %v", e, i, r, got, want)
				}
			}
		}
	}
}

// TestKernelThreeValuedLogic pins the AND/OR truth tables over every
// combination of TRUE/FALSE/NULL.
func TestKernelThreeValuedLogic(t *testing.T) {
	vals := []sqltypes.Value{sqltypes.NewBool(true), sqltypes.NewBool(false), sqltypes.Null}
	bv := func(pick []int) *sqltypes.Vector {
		v := sqltypes.NewVector(sqltypes.TypeBool, len(pick))
		for _, p := range pick {
			v.AppendValue(vals[p])
		}
		return v
	}
	var lp, rp []int
	var rows []sqltypes.Row
	for l := 0; l < 3; l++ {
		for r := 0; r < 3; r++ {
			lp, rp = append(lp, l), append(rp, r)
			rows = append(rows, sqltypes.Row{vals[l], vals[r]})
		}
	}
	cols := []*sqltypes.Vector{bv(lp), bv(rp)}
	resolve := func(c int) (int, sqltypes.Type, bool) { return c, sqltypes.TypeBool, c < 2 }
	for _, op := range []string{"AND", "OR"} {
		e := &Binary{Op: op, Left: kcol(0, sqltypes.TypeBool), Right: kcol(1, sqltypes.TypeBool)}
		k, ok := CompileKernel(e, resolve)
		if !ok {
			t.Fatal("logic kernel did not compile")
		}
		out := k.EvalVec(cols, len(rows))
		for i, r := range rows {
			want, _ := e.Eval(r)
			if got := out.ValueAt(i); !sqltypes.Equal(got, want) {
				t.Fatalf("%v %s %v: kernel %v, eval %v", r[0], op, r[1], got, want)
			}
		}
	}
}

// TestKernelUnsupportedFallback ensures the compiler refuses what it cannot
// faithfully vectorize.
func TestKernelUnsupportedFallback(t *testing.T) {
	ic := kcol(0, sqltypes.TypeInt)
	sc := kcol(2, sqltypes.TypeString)
	unsupported := []Expr{
		// Simple CASE whose operand/arm equality cannot compile (string vs
		// int never vectorizes) stays boxed even after the searched rewrite.
		&Case{Operand: sc, Whens: []CaseWhen{{When: klit(sqltypes.NewInt(1)), Then: klit(sqltypes.NewInt(0))}}},
		// Mixed branch types would change result types row by row.
		&Case{Whens: []CaseWhen{{When: &IsNull{Operand: ic}, Then: klit(sqltypes.NewInt(0))}},
			Else: klit(sqltypes.NewFloat(0.5))},
		&Between{Operand: ic, Lo: klit(sqltypes.NewInt(0)), Hi: klit(sqltypes.NewInt(5))},
		&In{Operand: ic, List: []Expr{klit(sqltypes.NewInt(1))}},
		&Cast{Operand: ic, Target: sqltypes.TypeString},
		// COALESCE over mixed types keeps the boxed first-non-NULL semantics.
		&ScalarFunc{Name: "COALESCE", Typ: sqltypes.TypeFloat,
			Args: []Expr{kcol(1, sqltypes.TypeFloat), klit(sqltypes.NewInt(0))}, Fn: coalesceFn},
		// Other scalar functions stay boxed.
		&ScalarFunc{Name: "ABS", Typ: sqltypes.TypeInt, Args: []Expr{ic}, Fn: absFn},
		&Binary{Op: "+", Left: sc, Right: sc},  // string concat
		&Binary{Op: "||", Left: sc, Right: sc}, // concat operator
		&Binary{Op: "=", Left: ic, Right: sc},  // mismatched types
		klit(sqltypes.Null),                    // untyped NULL literal
	}
	for _, e := range unsupported {
		if _, ok := CompileKernel(e, fixtureResolve); ok {
			t.Fatalf("%s should not compile to a kernel", e)
		}
	}
}
