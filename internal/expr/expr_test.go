package expr

import (
	"testing"

	"openivm/internal/sqltypes"
)

func lit(v sqltypes.Value) Expr { return &Literal{Val: v} }
func intv(i int64) Expr         { return lit(sqltypes.NewInt(i)) }
func strv(s string) Expr        { return lit(sqltypes.NewString(s)) }
func boolv(b bool) Expr         { return lit(sqltypes.NewBool(b)) }
func nullv() Expr               { return lit(sqltypes.Null) }
func col(i int) Expr            { return &Column{Idx: i} }

func eval(t *testing.T, e Expr, row sqltypes.Row) sqltypes.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColumnEval(t *testing.T) {
	row := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("x")}
	if v := eval(t, col(1), row); v.S != "x" {
		t.Errorf("got %v", v)
	}
	if _, err := col(5).Eval(row); err == nil {
		t.Error("out of range should error")
	}
}

func TestBinaryArith(t *testing.T) {
	v := eval(t, &Binary{Op: "+", Left: intv(2), Right: intv(3)}, nil)
	if v.I != 5 {
		t.Errorf("got %v", v)
	}
	v = eval(t, &Binary{Op: "*", Left: intv(2), Right: lit(sqltypes.NewFloat(1.5))}, nil)
	if v.F != 3 {
		t.Errorf("got %v", v)
	}
}

func TestBinaryComparisons(t *testing.T) {
	cases := []struct {
		op   string
		want bool
	}{
		{"=", false}, {"<>", true}, {"<", true}, {"<=", true}, {">", false}, {">=", false},
	}
	for _, c := range cases {
		v := eval(t, &Binary{Op: c.op, Left: intv(1), Right: intv(2)}, nil)
		if v.B != c.want {
			t.Errorf("1 %s 2 = %v, want %v", c.op, v.B, c.want)
		}
	}
}

func TestBinaryNullComparison(t *testing.T) {
	v := eval(t, &Binary{Op: "=", Left: nullv(), Right: intv(1)}, nil)
	if !v.IsNull() {
		t.Errorf("NULL = 1 should be NULL, got %v", v)
	}
}

func TestThreeValuedAndOr(t *testing.T) {
	// FALSE AND NULL = FALSE; TRUE AND NULL = NULL
	v := eval(t, &Binary{Op: "AND", Left: boolv(false), Right: nullv()}, nil)
	if v.IsNull() || v.B {
		t.Errorf("FALSE AND NULL = %v", v)
	}
	v = eval(t, &Binary{Op: "AND", Left: boolv(true), Right: nullv()}, nil)
	if !v.IsNull() {
		t.Errorf("TRUE AND NULL = %v", v)
	}
	// TRUE OR NULL = TRUE; FALSE OR NULL = NULL
	v = eval(t, &Binary{Op: "OR", Left: boolv(true), Right: nullv()}, nil)
	if !v.IsTrue() {
		t.Errorf("TRUE OR NULL = %v", v)
	}
	v = eval(t, &Binary{Op: "OR", Left: boolv(false), Right: nullv()}, nil)
	if !v.IsNull() {
		t.Errorf("FALSE OR NULL = %v", v)
	}
}

func TestAndShortCircuit(t *testing.T) {
	// Right side errors, but left FALSE short-circuits.
	bad := &Column{Idx: 99}
	v, err := (&Binary{Op: "AND", Left: boolv(false), Right: bad}).Eval(sqltypes.Row{})
	if err != nil || v.IsTrue() {
		t.Errorf("short circuit failed: %v %v", v, err)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true}, {"hello", "h%", true}, {"hello", "%lo", true},
		{"hello", "h_llo", true}, {"hello", "x%", false}, {"hello", "%", true},
		{"", "%", true}, {"", "_", false}, {"abc", "%b%", true},
		{"abc", "a%c%", true}, {"abc", "a_c", true}, {"ab", "a_c", false},
	}
	for _, c := range cases {
		v := eval(t, &Binary{Op: "LIKE", Left: strv(c.s), Right: strv(c.p)}, nil)
		if v.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, v.B, c.want)
		}
	}
}

func TestUnaryNot(t *testing.T) {
	if v := eval(t, &Unary{Op: "NOT", Operand: boolv(true)}, nil); v.B {
		t.Error("NOT TRUE")
	}
	if v := eval(t, &Unary{Op: "NOT", Operand: nullv()}, nil); !v.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
}

func TestUnaryNeg(t *testing.T) {
	if v := eval(t, &Unary{Op: "-", Operand: intv(5)}, nil); v.I != -5 {
		t.Errorf("got %v", v)
	}
}

func TestIsNull(t *testing.T) {
	if v := eval(t, &IsNull{Operand: nullv()}, nil); !v.B {
		t.Error("NULL IS NULL")
	}
	if v := eval(t, &IsNull{Operand: intv(1), Negate: true}, nil); !v.B {
		t.Error("1 IS NOT NULL")
	}
}

func TestIn(t *testing.T) {
	e := &In{Operand: intv(2), List: []Expr{intv(1), intv(2)}}
	if v := eval(t, e, nil); !v.B {
		t.Error("2 IN (1,2)")
	}
	e2 := &In{Operand: intv(3), List: []Expr{intv(1), nullv()}}
	if v := eval(t, e2, nil); !v.IsNull() {
		t.Error("3 IN (1, NULL) should be NULL")
	}
	e3 := &In{Operand: intv(3), List: []Expr{intv(1), intv(2)}, Negate: true}
	if v := eval(t, e3, nil); !v.B {
		t.Error("3 NOT IN (1,2)")
	}
}

func TestBetween(t *testing.T) {
	e := &Between{Operand: intv(5), Lo: intv(1), Hi: intv(10)}
	if v := eval(t, e, nil); !v.B {
		t.Error("5 BETWEEN 1 AND 10")
	}
	e2 := &Between{Operand: intv(0), Lo: intv(1), Hi: intv(10), Negate: true}
	if v := eval(t, e2, nil); !v.B {
		t.Error("0 NOT BETWEEN 1 AND 10")
	}
	e3 := &Between{Operand: intv(5), Lo: nullv(), Hi: intv(10)}
	if v := eval(t, e3, nil); !v.IsNull() {
		t.Error("NULL bound should give NULL")
	}
}

func TestCaseSearched(t *testing.T) {
	// CASE WHEN col0 = FALSE THEN -col1 ELSE col1 END — the multiplicity
	// pattern the IVM compiler emits.
	e := &Case{
		Whens: []CaseWhen{{
			When: &Binary{Op: "=", Left: col(0), Right: boolv(false)},
			Then: &Unary{Op: "-", Operand: col(1)},
		}},
		Else: col(1),
	}
	row := sqltypes.Row{sqltypes.NewBool(false), sqltypes.NewInt(10)}
	if v := eval(t, e, row); v.I != -10 {
		t.Errorf("deletion arm = %v", v)
	}
	row[0] = sqltypes.NewBool(true)
	if v := eval(t, e, row); v.I != 10 {
		t.Errorf("insertion arm = %v", v)
	}
}

func TestCaseOperand(t *testing.T) {
	e := &Case{
		Operand: col(0),
		Whens:   []CaseWhen{{When: intv(1), Then: strv("one")}, {When: intv(2), Then: strv("two")}},
	}
	if v := eval(t, e, sqltypes.Row{sqltypes.NewInt(2)}); v.S != "two" {
		t.Errorf("got %v", v)
	}
	if v := eval(t, e, sqltypes.Row{sqltypes.NewInt(9)}); !v.IsNull() {
		t.Errorf("no match without ELSE should be NULL, got %v", v)
	}
}

func TestCast(t *testing.T) {
	e := &Cast{Operand: strv("42"), Target: sqltypes.TypeInt}
	if v := eval(t, e, nil); v.I != 42 {
		t.Errorf("got %v", v)
	}
}

func TestCoalesce(t *testing.T) {
	mk, typ, err := ScalarFuncs["COALESCE"]([]sqltypes.Type{sqltypes.TypeNull, sqltypes.TypeInt})
	if err != nil {
		t.Fatal(err)
	}
	if typ != sqltypes.TypeInt {
		t.Errorf("type = %v", typ)
	}
	e := &ScalarFunc{Name: "COALESCE", Args: []Expr{nullv(), intv(7)}, Fn: mk, Typ: typ}
	if v := eval(t, e, nil); v.I != 7 {
		t.Errorf("got %v", v)
	}
}

func TestScalarFuncs(t *testing.T) {
	cases := []struct {
		name string
		args []Expr
		want sqltypes.Value
	}{
		{"ABS", []Expr{intv(-5)}, sqltypes.NewInt(5)},
		{"LENGTH", []Expr{strv("abc")}, sqltypes.NewInt(3)},
		{"LOWER", []Expr{strv("ABC")}, sqltypes.NewString("abc")},
		{"UPPER", []Expr{strv("abc")}, sqltypes.NewString("ABC")},
		{"GREATEST", []Expr{intv(1), intv(9), intv(4)}, sqltypes.NewInt(9)},
		{"LEAST", []Expr{intv(1), intv(9), intv(4)}, sqltypes.NewInt(1)},
	}
	for _, c := range cases {
		var types []sqltypes.Type
		for _, a := range c.args {
			types = append(types, a.Type())
		}
		fn, typ, err := ScalarFuncs[c.name](types)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		e := &ScalarFunc{Name: c.name, Args: c.args, Fn: fn, Typ: typ}
		if v := eval(t, e, nil); !sqltypes.Equal(v, c.want) {
			t.Errorf("%s = %v, want %v", c.name, v, c.want)
		}
	}
}

func addRows(t *testing.T, st AggState, vals ...sqltypes.Value) {
	t.Helper()
	for _, v := range vals {
		if err := st.Add(sqltypes.Row{v}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAggSum(t *testing.T) {
	a := &Aggregate{Kind: AggSum, Arg: col(0)}
	st := a.NewState()
	addRows(t, st, sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.Null, sqltypes.NewInt(3))
	if v := st.Result(); v.I != 6 {
		t.Errorf("SUM = %v", v)
	}
	// Empty SUM is NULL.
	if v := a.NewState().Result(); !v.IsNull() {
		t.Errorf("empty SUM = %v", v)
	}
}

func TestAggCount(t *testing.T) {
	a := &Aggregate{Kind: AggCount, Arg: col(0)}
	st := a.NewState()
	addRows(t, st, sqltypes.NewInt(1), sqltypes.Null, sqltypes.NewInt(3))
	if v := st.Result(); v.I != 2 {
		t.Errorf("COUNT = %v; NULLs must not count", v)
	}
	aStar := &Aggregate{Kind: AggCountStar}
	st2 := aStar.NewState()
	addRows(t, st2, sqltypes.NewInt(1), sqltypes.Null)
	if v := st2.Result(); v.I != 2 {
		t.Errorf("COUNT(*) = %v", v)
	}
}

func TestAggMinMax(t *testing.T) {
	mn := (&Aggregate{Kind: AggMin, Arg: col(0)}).NewState()
	mx := (&Aggregate{Kind: AggMax, Arg: col(0)}).NewState()
	for _, v := range []sqltypes.Value{sqltypes.NewInt(5), sqltypes.NewInt(1), sqltypes.Null, sqltypes.NewInt(9)} {
		mn.Add(sqltypes.Row{v})
		mx.Add(sqltypes.Row{v})
	}
	if v := mn.Result(); v.I != 1 {
		t.Errorf("MIN = %v", v)
	}
	if v := mx.Result(); v.I != 9 {
		t.Errorf("MAX = %v", v)
	}
}

func TestAggAvg(t *testing.T) {
	st := (&Aggregate{Kind: AggAvg, Arg: col(0)}).NewState()
	addRows(t, st, sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewInt(3), sqltypes.Null)
	if v := st.Result(); v.F != 2 {
		t.Errorf("AVG = %v", v)
	}
	if v := (&Aggregate{Kind: AggAvg, Arg: col(0)}).NewState().Result(); !v.IsNull() {
		t.Errorf("empty AVG = %v", v)
	}
}

func TestAggDistinct(t *testing.T) {
	a := &Aggregate{Kind: AggCount, Arg: col(0), Distinct: true}
	st := a.NewState()
	addRows(t, st, sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewInt(2))
	if v := st.Result(); v.I != 2 {
		t.Errorf("COUNT(DISTINCT) = %v", v)
	}
	s := &Aggregate{Kind: AggSum, Arg: col(0), Distinct: true}
	st2 := s.NewState()
	addRows(t, st2, sqltypes.NewInt(5), sqltypes.NewInt(5), sqltypes.NewInt(3))
	if v := st2.Result(); v.I != 8 {
		t.Errorf("SUM(DISTINCT) = %v", v)
	}
}

func TestParseAggKind(t *testing.T) {
	if k, ok := ParseAggKind("SUM", false); !ok || k != AggSum {
		t.Error("SUM")
	}
	if k, ok := ParseAggKind("COUNT", true); !ok || k != AggCountStar {
		t.Error("COUNT(*)")
	}
	if _, ok := ParseAggKind("NOPE", false); ok {
		t.Error("NOPE should not parse")
	}
	if !IsAggregateName("MIN") || IsAggregateName("COALESCE") {
		t.Error("IsAggregateName")
	}
}

func TestAggResultTypes(t *testing.T) {
	if (&Aggregate{Kind: AggCountStar}).ResultType() != sqltypes.TypeInt {
		t.Error("COUNT(*) type")
	}
	if (&Aggregate{Kind: AggAvg, Arg: col(0)}).ResultType() != sqltypes.TypeFloat {
		t.Error("AVG type")
	}
	fcol := &Column{Idx: 0, Typ: sqltypes.TypeFloat}
	if (&Aggregate{Kind: AggSum, Arg: fcol}).ResultType() != sqltypes.TypeFloat {
		t.Error("SUM(float) type")
	}
}
