package expr

// ParallelSafe reports whether e may be evaluated concurrently from
// multiple goroutines. Almost every bound expression is read-only at Eval
// time; the exceptions carry shared mutable state — InQuery's Fetch
// closure populates a lazy result cache, and Param reads a per-session
// value binding that the driver mutates between executions — so a tree
// containing one must stay on a single goroutine. (ScalarFunc used to be
// in this set for its argument scratch buffer; the buffer now moves
// between evaluators by atomic swap, so COALESCE/ABS-shaped plans are
// admitted to the shared statement cache and to parallel scans.) Unknown
// node kinds refuse, keeping the default conservative if new Expr types
// appear.
//
// A nil expression (absent filter, COUNT(*) argument) is trivially safe.
func ParallelSafe(e Expr) bool {
	return exprSafe(e, false)
}

// Reusable reports whether e may be evaluated again on a later execution
// of the same plan — the gate for the engine's prepared-statement plan
// cache. It is weaker than ParallelSafe: statement parameters (Param) are
// fine across sequential executions — re-binding values between runs is
// exactly the prepared-statement contract — but expressions that cache
// query RESULTS lazily (InQuery's subquery rows, the engine's scalar
// subqueries, which arrive here as unknown node kinds) would replay stale
// data and must force a re-plan.
func Reusable(e Expr) bool {
	return exprSafe(e, true)
}

func exprSafe(e Expr, allowScratch bool) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *Column, *Literal:
		return true
	case *Binary:
		return exprSafe(x.Left, allowScratch) && exprSafe(x.Right, allowScratch)
	case *Unary:
		return exprSafe(x.Operand, allowScratch)
	case *IsNull:
		return exprSafe(x.Operand, allowScratch)
	case *In:
		if !exprSafe(x.Operand, allowScratch) {
			return false
		}
		for _, item := range x.List {
			if !exprSafe(item, allowScratch) {
				return false
			}
		}
		return true
	case *Between:
		return exprSafe(x.Operand, allowScratch) && exprSafe(x.Lo, allowScratch) && exprSafe(x.Hi, allowScratch)
	case *Case:
		if x.Operand != nil && !exprSafe(x.Operand, allowScratch) {
			return false
		}
		for _, w := range x.Whens {
			if !exprSafe(w.When, allowScratch) || !exprSafe(w.Then, allowScratch) {
				return false
			}
		}
		return x.Else == nil || exprSafe(x.Else, allowScratch)
	case *Cast:
		return exprSafe(x.Operand, allowScratch)
	case *ScalarFunc:
		// The argument scratch is handed off by atomic swap (see
		// ScalarFunc.Eval), so the node is safe both across executions and
		// across goroutines; only the arguments can disqualify the tree.
		for _, a := range x.Args {
			if !exprSafe(a, allowScratch) {
				return false
			}
		}
		return true
	case *Param:
		// A parameter reads its session's mutable value binding: fine to
		// re-execute sequentially after re-binding (the prepared-statement
		// contract), never safe to share across sessions or goroutines.
		return allowScratch
	}
	return false
}
