package expr

// ParallelSafe reports whether e may be evaluated concurrently from
// multiple goroutines. Almost every bound expression is read-only at Eval
// time; the exceptions carry per-node mutable state — ScalarFunc reuses an
// argument scratch buffer across calls, and InQuery's Fetch closure
// populates a lazy result cache — so a tree containing one must stay on a
// single goroutine. Unknown node kinds refuse, keeping the default
// conservative if new Expr types appear.
//
// A nil expression (absent filter, COUNT(*) argument) is trivially safe.
func ParallelSafe(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *Column, *Literal:
		return true
	case *Binary:
		return ParallelSafe(x.Left) && ParallelSafe(x.Right)
	case *Unary:
		return ParallelSafe(x.Operand)
	case *IsNull:
		return ParallelSafe(x.Operand)
	case *In:
		if !ParallelSafe(x.Operand) {
			return false
		}
		for _, item := range x.List {
			if !ParallelSafe(item) {
				return false
			}
		}
		return true
	case *Between:
		return ParallelSafe(x.Operand) && ParallelSafe(x.Lo) && ParallelSafe(x.Hi)
	case *Case:
		if x.Operand != nil && !ParallelSafe(x.Operand) {
			return false
		}
		for _, w := range x.Whens {
			if !ParallelSafe(w.When) || !ParallelSafe(w.Then) {
				return false
			}
		}
		return x.Else == nil || ParallelSafe(x.Else)
	case *Cast:
		return ParallelSafe(x.Operand)
	}
	return false
}
