package expr

import (
	"math"

	"openivm/internal/sqltypes"
)

// Kernel is a bound scalar expression compiled down to a vector program:
// one EvalVec call computes the expression over a whole batch of rows in
// tight unboxed loops, instead of per-row interface dispatch through Eval.
//
// Kernels are produced by CompileKernel and consumed by the fused scan
// pipeline in internal/exec. A kernel owns its output vector and reuses it
// across calls (a Column kernel returns the input vector itself), so the
// result is only valid until the next EvalVec call and must not be
// retained. Kernels never fail: every SQL evaluation error the supported
// operators can hit (division by zero) is defined to yield NULL, matching
// the boxed evaluator.
type Kernel interface {
	// EvalVec computes the expression over n rows whose input columns are
	// cols, indexed by the slots the kernel was compiled with.
	EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector
}

// CompileKernel compiles a bound expression into a vector kernel. resolve
// maps an expression column index to the input-vector slot and column type
// the kernel will see at run time (ok=false for unresolvable columns).
//
// Compilation is best-effort: expressions outside the supported set —
// integer/float arithmetic, comparisons, AND/OR/NOT three-valued logic,
// IS [NOT] NULL, numeric negation and LIKE — return ok=false, and the
// caller falls back to the boxed row-at-a-time evaluator. The compiled
// kernel agrees exactly with Expr.Eval on every input, NULLs included;
// that equivalence is what lets the executor pick either path per plan.
func CompileKernel(e Expr, resolve func(colIdx int) (slot int, t sqltypes.Type, ok bool)) (Kernel, bool) {
	k, _, ok := compileKernel(e, resolve)
	return k, ok
}

// CompilePredicate is CompileKernel restricted to expressions whose vector
// result type is BOOLEAN — the WHERE-clause form consumers turn into
// selection vectors. A non-boolean expression (SQL tolerates `WHERE 1`;
// the boxed evaluator treats it as never-true) refuses to compile so the
// caller falls back rather than misreading a numeric vector as booleans.
func CompilePredicate(e Expr, resolve func(colIdx int) (slot int, t sqltypes.Type, ok bool)) (Kernel, bool) {
	k, t, ok := compileKernel(e, resolve)
	if !ok || t != sqltypes.TypeBool {
		return nil, false
	}
	return k, true
}

func compileKernel(e Expr, resolve func(int) (int, sqltypes.Type, bool)) (Kernel, sqltypes.Type, bool) {
	switch x := e.(type) {
	case *Column:
		slot, t, ok := resolve(x.Idx)
		if !ok || !vectorizableType(t) {
			return nil, 0, false
		}
		return &colKernel{slot: slot}, t, true
	case *Literal:
		if !vectorizableType(x.Val.T) {
			return nil, 0, false
		}
		return &litKernel{val: x.Val, out: &sqltypes.Vector{T: x.Val.T}}, x.Val.T, true
	case *Binary:
		return compileBinary(x, resolve)
	case *Unary:
		in, t, ok := compileKernel(x.Operand, resolve)
		if !ok {
			return nil, 0, false
		}
		switch x.Op {
		case "NOT":
			if t != sqltypes.TypeBool {
				return nil, 0, false
			}
			return &notKernel{in: in, out: &sqltypes.Vector{T: sqltypes.TypeBool}}, sqltypes.TypeBool, true
		case "-":
			if t != sqltypes.TypeInt && t != sqltypes.TypeFloat {
				return nil, 0, false
			}
			return &negKernel{in: in, out: &sqltypes.Vector{T: t}}, t, true
		}
		return nil, 0, false
	case *IsNull:
		in, _, ok := compileKernel(x.Operand, resolve)
		if !ok {
			return nil, 0, false
		}
		return &isNullKernel{in: in, negate: x.Negate, out: &sqltypes.Vector{T: sqltypes.TypeBool}}, sqltypes.TypeBool, true
	case *Cast:
		return compileCast(x, resolve)
	case *ScalarFunc:
		if x.Name == "COALESCE" {
			return compileCoalesce(x, resolve)
		}
		return nil, 0, false
	case *Case:
		return compileCase(x, resolve)
	}
	return nil, 0, false
}

// compileCast handles the numeric CAST pair (int↔float) — the conversions
// the IVM AVG decomposition emits (CAST(sum AS DOUBLE) / cnt). Casts
// between identical types pass the operand through; anything outside the
// numeric pair (string parses, bool coercions) keeps the boxed evaluator.
func compileCast(c *Cast, resolve func(int) (int, sqltypes.Type, bool)) (Kernel, sqltypes.Type, bool) {
	in, t, ok := compileKernel(c.Operand, resolve)
	if !ok {
		return nil, 0, false
	}
	switch {
	case t == c.Target:
		return in, t, true
	case t == sqltypes.TypeInt && c.Target == sqltypes.TypeFloat:
		return &intToFloatKernel{in: in, out: &sqltypes.Vector{T: sqltypes.TypeFloat}}, sqltypes.TypeFloat, true
	case t == sqltypes.TypeFloat && c.Target == sqltypes.TypeInt:
		return &floatToIntKernel{in: in, out: &sqltypes.Vector{T: sqltypes.TypeInt}}, sqltypes.TypeInt, true
	}
	return nil, 0, false
}

// compileCoalesce handles COALESCE over same-typed arguments. Mixed types
// refuse: the boxed evaluator returns the first non-NULL value unconverted,
// so a promoting kernel would change result types row by row.
func compileCoalesce(f *ScalarFunc, resolve func(int) (int, sqltypes.Type, bool)) (Kernel, sqltypes.Type, bool) {
	if len(f.Args) == 0 {
		return nil, 0, false
	}
	args := make([]Kernel, len(f.Args))
	var t sqltypes.Type
	for i, a := range f.Args {
		k, at, ok := compileKernel(a, resolve)
		if !ok || (i > 0 && at != t) {
			return nil, 0, false
		}
		args[i], t = k, at
	}
	if len(args) == 1 {
		return args[0], t, true
	}
	return &coalesceKernel{args: args, out: &sqltypes.Vector{T: t}}, t, true
}

// compileCase handles CASE whose conditions are boolean and whose
// branches share one type — the shape the IVM multiplicity projections
// use (CASE WHEN mult = FALSE THEN -v ELSE v END). Simple CASE (with an
// operand) compiles each arm's condition as an equality against a shared,
// memoized operand kernel — semantically CASE x WHEN v ... becomes
// CASE WHEN x = v ..., which matches the boxed evaluator exactly (the arm
// matches iff CompareSQL(x, v) == 0, so a NULL operand or arm value
// matches nothing, and int/float compare under numeric promotion), while
// the operand itself is evaluated once per batch, not once per arm. A
// missing ELSE contributes NULL. Every branch is evaluated eagerly over
// the whole vector; that is invisible because kernels never fail (errors
// are defined to yield NULL), and per row the value is taken only from
// the first matching branch.
func compileCase(c *Case, resolve func(int) (int, sqltypes.Type, bool)) (Kernel, sqltypes.Type, bool) {
	if len(c.Whens) == 0 {
		return nil, 0, false
	}
	// Simple CASE: compile the operand ONCE behind a memo so each arm's
	// equality reads the same per-batch result vector instead of
	// re-evaluating the operand once per arm; the memo is reset by the
	// enclosing caseKernel at the start of every batch.
	var memo *memoKernel
	if c.Operand != nil {
		opK, opT, ok := compileKernel(c.Operand, resolve)
		if !ok {
			return nil, 0, false
		}
		memo = &memoKernel{in: opK, t: opT}
	}
	whens := make([]Kernel, len(c.Whens))
	thens := make([]Kernel, len(c.Whens))
	var t sqltypes.Type
	for i, w := range c.Whens {
		if memo != nil {
			wk, wt, ok := compileKernel(w.When, resolve)
			if !ok {
				return nil, 0, false
			}
			eq, ok := buildCmpKernel("=", memo, memo.t, wk, wt)
			if !ok {
				return nil, 0, false
			}
			whens[i] = eq
		} else {
			k, wt, ok := compileKernel(w.When, resolve)
			if !ok || wt != sqltypes.TypeBool {
				return nil, 0, false
			}
			whens[i] = k
		}
		k, tt, ok := compileKernel(w.Then, resolve)
		if !ok || (i > 0 && tt != t) {
			return nil, 0, false
		}
		thens[i], t = k, tt
	}
	var els Kernel
	if c.Else != nil {
		k, et, ok := compileKernel(c.Else, resolve)
		if !ok || et != t {
			return nil, 0, false
		}
		els = k
	}
	return &caseKernel{whens: whens, thens: thens, els: els, memo: memo, out: &sqltypes.Vector{T: t}}, t, true
}

// memoKernel caches its input's output for the duration of one enclosing
// caseKernel batch evaluation: the simple-CASE operand is shared by every
// arm's equality kernel, so it is computed once per batch, not once per
// arm. The owner resets it between batches.
type memoKernel struct {
	in Kernel
	t  sqltypes.Type
	v  *sqltypes.Vector
}

func (m *memoKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	if m.v == nil {
		m.v = m.in.EvalVec(cols, n)
	}
	return m.v
}

func (m *memoKernel) reset() { m.v = nil }

func vectorizableType(t sqltypes.Type) bool {
	switch t {
	case sqltypes.TypeInt, sqltypes.TypeFloat, sqltypes.TypeBool, sqltypes.TypeString:
		return true
	}
	return false
}

func compileBinary(b *Binary, resolve func(int) (int, sqltypes.Type, bool)) (Kernel, sqltypes.Type, bool) {
	l, lt, ok := compileKernel(b.Left, resolve)
	if !ok {
		return nil, 0, false
	}
	r, rt, ok := compileKernel(b.Right, resolve)
	if !ok {
		return nil, 0, false
	}
	switch b.Op {
	case "AND", "OR":
		if lt != sqltypes.TypeBool || rt != sqltypes.TypeBool {
			return nil, 0, false
		}
		return &logicKernel{or: b.Op == "OR", l: l, r: r, out: &sqltypes.Vector{T: sqltypes.TypeBool}}, sqltypes.TypeBool, true
	case "+", "-", "*", "/", "%":
		if !numericType(lt) || !numericType(rt) {
			return nil, 0, false
		}
		if lt == sqltypes.TypeInt && rt == sqltypes.TypeInt {
			return &intArithKernel{op: b.Op[0], l: l, r: r, out: &sqltypes.Vector{T: sqltypes.TypeInt}}, sqltypes.TypeInt, true
		}
		return &floatArithKernel{op: b.Op[0], l: toFloat(l, lt), r: toFloat(r, rt), out: &sqltypes.Vector{T: sqltypes.TypeFloat}}, sqltypes.TypeFloat, true
	case "=", "<>", "<", "<=", ">", ">=":
		k, ok := buildCmpKernel(b.Op, l, lt, r, rt)
		if !ok {
			return nil, 0, false
		}
		return k, sqltypes.TypeBool, true
	case "LIKE":
		if lt != sqltypes.TypeString || rt != sqltypes.TypeString {
			return nil, 0, false
		}
		return &likeKernel{l: l, r: r, out: &sqltypes.Vector{T: sqltypes.TypeBool}}, sqltypes.TypeBool, true
	}
	return nil, 0, false
}

// buildCmpKernel assembles a typed comparison kernel over two compiled
// inputs (with int→float promotion) — shared by compileBinary and the
// simple-CASE operand rewrite, which compares a memoized operand kernel
// against each arm.
func buildCmpKernel(op string, l Kernel, lt sqltypes.Type, r Kernel, rt sqltypes.Type) (Kernel, bool) {
	out := &sqltypes.Vector{T: sqltypes.TypeBool}
	switch {
	case lt == sqltypes.TypeInt && rt == sqltypes.TypeInt:
		return &cmpIntKernel{op: op, l: l, r: r, out: out}, true
	case numericType(lt) && numericType(rt):
		return &cmpFloatKernel{op: op, l: toFloat(l, lt), r: toFloat(r, rt), out: out}, true
	case lt == sqltypes.TypeString && rt == sqltypes.TypeString:
		return &cmpStringKernel{op: op, l: l, r: r, out: out}, true
	case lt == sqltypes.TypeBool && rt == sqltypes.TypeBool:
		return &cmpBoolKernel{op: op, l: l, r: r, out: out}, true
	}
	return nil, false
}

func numericType(t sqltypes.Type) bool {
	return t == sqltypes.TypeInt || t == sqltypes.TypeFloat
}

func toFloat(k Kernel, t sqltypes.Type) Kernel {
	if t == sqltypes.TypeFloat {
		return k
	}
	return &intToFloatKernel{in: k, out: &sqltypes.Vector{T: sqltypes.TypeFloat}}
}

// --- leaf kernels ---

type colKernel struct{ slot int }

func (k *colKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector { return cols[k.slot] }

type litKernel struct {
	val sqltypes.Value
	out *sqltypes.Vector
}

func (k *litKernel) EvalVec(_ []*sqltypes.Vector, n int) *sqltypes.Vector {
	if k.out.Len() != n {
		k.out.Reset()
		for i := 0; i < n; i++ {
			k.out.AppendValue(k.val)
		}
	}
	return k.out
}

// --- conversion ---

type intToFloatKernel struct {
	in  Kernel
	out *sqltypes.Vector
}

func (k *intToFloatKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	in := k.in.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	for i, x := range in.Ints[:n] {
		out.Floats[i] = float64(x)
	}
	copyNulls(out, in, n)
	return out
}

type floatToIntKernel struct {
	in  Kernel
	out *sqltypes.Vector
}

func (k *floatToIntKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	in := k.in.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	// Truncation toward zero, matching sqltypes.Cast's int64(f).
	for i, x := range in.Floats[:n] {
		out.Ints[i] = int64(x)
	}
	copyNulls(out, in, n)
	return out
}

// copyNulls clears out's validity bit wherever in's is cleared (out must
// have been Resized to all-valid).
func copyNulls(out, in *sqltypes.Vector, n int) {
	if in.AllValid() {
		return
	}
	for i := 0; i < n; i++ {
		if !in.Valid(i) {
			out.SetNull(i)
		}
	}
}

// --- arithmetic ---

type intArithKernel struct {
	op   byte
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *intArithKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Ints[:n], r.Ints[:n], out.Ints[:n]
	switch k.op {
	case '+':
		for i := range os {
			os[i] = ls[i] + rs[i]
		}
	case '-':
		for i := range os {
			os[i] = ls[i] - rs[i]
		}
	case '*':
		for i := range os {
			os[i] = ls[i] * rs[i]
		}
	case '/':
		for i := range os {
			if rs[i] == 0 {
				out.SetNull(i) // SQL: division by zero yields NULL
			} else {
				os[i] = ls[i] / rs[i]
			}
		}
	case '%':
		for i := range os {
			if rs[i] == 0 {
				out.SetNull(i)
			} else {
				os[i] = ls[i] % rs[i]
			}
		}
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

type floatArithKernel struct {
	op   byte
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *floatArithKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Floats[:n], r.Floats[:n], out.Floats[:n]
	switch k.op {
	case '+':
		for i := range os {
			os[i] = ls[i] + rs[i]
		}
	case '-':
		for i := range os {
			os[i] = ls[i] - rs[i]
		}
	case '*':
		for i := range os {
			os[i] = ls[i] * rs[i]
		}
	case '/':
		for i := range os {
			if rs[i] == 0 {
				out.SetNull(i)
			} else {
				os[i] = ls[i] / rs[i]
			}
		}
	case '%':
		for i := range os {
			if rs[i] == 0 {
				out.SetNull(i)
			} else {
				os[i] = math.Mod(ls[i], rs[i])
			}
		}
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

// --- negation ---

type negKernel struct {
	in  Kernel
	out *sqltypes.Vector
}

func (k *negKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	in := k.in.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	if out.T == sqltypes.TypeInt {
		for i, x := range in.Ints[:n] {
			out.Ints[i] = -x
		}
	} else {
		for i, x := range in.Floats[:n] {
			out.Floats[i] = -x
		}
	}
	copyNulls(out, in, n)
	return out
}

// --- comparisons ---

// cmpHolds reports whether comparison outcome c (<0, 0, >0) satisfies op.
func cmpHolds(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

type cmpIntKernel struct {
	op   string
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *cmpIntKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Ints[:n], r.Ints[:n], out.Bools[:n]
	// One branch-light loop per operator: the comparison itself compiles
	// to straight-line code over the int64 payload arrays.
	switch k.op {
	case "=":
		for i := range os {
			os[i] = ls[i] == rs[i]
		}
	case "<>":
		for i := range os {
			os[i] = ls[i] != rs[i]
		}
	case "<":
		for i := range os {
			os[i] = ls[i] < rs[i]
		}
	case "<=":
		for i := range os {
			os[i] = ls[i] <= rs[i]
		}
	case ">":
		for i := range os {
			os[i] = ls[i] > rs[i]
		}
	case ">=":
		for i := range os {
			os[i] = ls[i] >= rs[i]
		}
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

type cmpFloatKernel struct {
	op   string
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *cmpFloatKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Floats[:n], r.Floats[:n], out.Bools[:n]
	switch k.op {
	case "=":
		for i := range os {
			os[i] = ls[i] == rs[i]
		}
	case "<>":
		for i := range os {
			os[i] = ls[i] != rs[i]
		}
	case "<":
		for i := range os {
			os[i] = ls[i] < rs[i]
		}
	case "<=":
		for i := range os {
			os[i] = ls[i] <= rs[i]
		}
	case ">":
		for i := range os {
			os[i] = ls[i] > rs[i]
		}
	case ">=":
		for i := range os {
			os[i] = ls[i] >= rs[i]
		}
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

type cmpStringKernel struct {
	op   string
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *cmpStringKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Strs[:n], r.Strs[:n], out.Bools[:n]
	switch k.op {
	case "=":
		for i := range os {
			os[i] = ls[i] == rs[i]
		}
	case "<>":
		for i := range os {
			os[i] = ls[i] != rs[i]
		}
	case "<":
		for i := range os {
			os[i] = ls[i] < rs[i]
		}
	case "<=":
		for i := range os {
			os[i] = ls[i] <= rs[i]
		}
	case ">":
		for i := range os {
			os[i] = ls[i] > rs[i]
		}
	case ">=":
		for i := range os {
			os[i] = ls[i] >= rs[i]
		}
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

type cmpBoolKernel struct {
	op   string
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *cmpBoolKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Bools[:n], r.Bools[:n], out.Bools[:n]
	for i := range os {
		c := 0
		switch {
		case ls[i] == rs[i]:
		case rs[i]: // false < true
			c = -1
		default:
			c = 1
		}
		os[i] = cmpHolds(k.op, c)
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

// --- LIKE ---

type likeKernel struct {
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *likeKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Strs[:n], r.Strs[:n], out.Bools[:n]
	for i := range os {
		os[i] = likeMatch(ls[i], rs[i])
	}
	copyNulls(out, l, n)
	copyNulls(out, r, n)
	return out
}

// --- three-valued logic ---

type logicKernel struct {
	or   bool
	l, r Kernel
	out  *sqltypes.Vector
}

func (k *logicKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	l, r := k.l.EvalVec(cols, n), k.r.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	ls, rs, os := l.Bools[:n], r.Bools[:n], out.Bools[:n]
	if l.AllValid() && r.AllValid() {
		if k.or {
			for i := range os {
				os[i] = ls[i] || rs[i]
			}
		} else {
			for i := range os {
				os[i] = ls[i] && rs[i]
			}
		}
		return out
	}
	// SQL three-valued logic: AND is FALSE if either side is FALSE (even
	// when the other is NULL), NULL if undecided; OR mirrors with TRUE.
	for i := range os {
		lv, rv := l.Valid(i), r.Valid(i)
		if k.or {
			switch {
			case lv && ls[i], rv && rs[i]:
				os[i] = true
			case lv && rv:
				os[i] = false
			default:
				out.SetNull(i)
			}
		} else {
			switch {
			case lv && !ls[i], rv && !rs[i]:
				os[i] = false
			case lv && rv:
				os[i] = ls[i] && rs[i]
			default:
				out.SetNull(i)
			}
		}
	}
	return out
}

type notKernel struct {
	in  Kernel
	out *sqltypes.Vector
}

func (k *notKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	in := k.in.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	is, os := in.Bools[:n], out.Bools[:n]
	for i := range os {
		os[i] = !is[i]
	}
	copyNulls(out, in, n)
	return out
}

// --- COALESCE / CASE ---

// setCell copies src's cell i into out's cell i (same element type); a NULL
// src cell clears out's validity bit. out must have been Resized.
func setCell(out, src *sqltypes.Vector, i int) {
	if !src.Valid(i) {
		out.SetNull(i)
		return
	}
	switch out.T {
	case sqltypes.TypeInt:
		out.Ints[i] = src.Ints[i]
	case sqltypes.TypeFloat:
		out.Floats[i] = src.Floats[i]
	case sqltypes.TypeBool:
		out.Bools[i] = src.Bools[i]
	case sqltypes.TypeString:
		out.Strs[i] = src.Strs[i]
	}
}

type coalesceKernel struct {
	args []Kernel
	out  *sqltypes.Vector
	vecs []*sqltypes.Vector // per-call scratch
}

func (k *coalesceKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	vecs := k.vecs[:0]
	for _, a := range k.args {
		vecs = append(vecs, a.EvalVec(cols, n))
	}
	k.vecs = vecs
	out := k.out
	out.Resize(n)
rows:
	for i := 0; i < n; i++ {
		for _, v := range vecs {
			if v.Valid(i) {
				setCell(out, v, i)
				continue rows
			}
		}
		out.SetNull(i)
	}
	return out
}

type caseKernel struct {
	whens []Kernel
	thens []Kernel
	els   Kernel      // nil = NULL
	memo  *memoKernel // simple-CASE operand shared by the arms (nil = searched)
	out   *sqltypes.Vector

	whenVecs, thenVecs []*sqltypes.Vector // per-call scratch
}

func (k *caseKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	if k.memo != nil {
		k.memo.reset() // new batch: the arms share one fresh operand eval
	}
	wv, tv := k.whenVecs[:0], k.thenVecs[:0]
	for i := range k.whens {
		wv = append(wv, k.whens[i].EvalVec(cols, n))
		tv = append(tv, k.thens[i].EvalVec(cols, n))
	}
	k.whenVecs, k.thenVecs = wv, tv
	var ev *sqltypes.Vector
	if k.els != nil {
		ev = k.els.EvalVec(cols, n)
	}
	out := k.out
	out.Resize(n)
rows:
	for i := 0; i < n; i++ {
		for a, w := range wv {
			// SQL CASE: a NULL condition is simply not matched.
			if w.Valid(i) && w.Bools[i] {
				setCell(out, tv[a], i)
				continue rows
			}
		}
		if ev != nil {
			setCell(out, ev, i)
		} else {
			out.SetNull(i)
		}
	}
	return out
}

type isNullKernel struct {
	in     Kernel
	negate bool
	out    *sqltypes.Vector
}

func (k *isNullKernel) EvalVec(cols []*sqltypes.Vector, n int) *sqltypes.Vector {
	in := k.in.EvalVec(cols, n)
	out := k.out
	out.Resize(n)
	os := out.Bools[:n]
	if in.AllValid() {
		for i := range os {
			os[i] = k.negate
		}
		return out
	}
	for i := range os {
		os[i] = in.Valid(i) == k.negate
	}
	return out
}
