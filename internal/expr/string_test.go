package expr

import (
	"strings"
	"testing"

	"openivm/internal/sqltypes"
)

// Coverage for the display/typing surface used by EXPLAIN and the binder.

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Column{Idx: 2}, "#2"},
		{&Column{Idx: 0, Name: "a"}, "a"},
		{&Literal{Val: sqltypes.NewInt(5)}, "5"},
		{&Binary{Op: "+", Left: intv(1), Right: intv(2)}, "(1 + 2)"},
		{&Unary{Op: "NOT", Operand: boolv(true)}, "(NOT TRUE)"},
		{&IsNull{Operand: intv(1)}, "(1 IS NULL)"},
		{&IsNull{Operand: intv(1), Negate: true}, "(1 IS NOT NULL)"},
		{&In{Operand: intv(1), List: []Expr{intv(2), intv(3)}}, "(1 IN (2, 3))"},
		{&In{Operand: intv(1), List: []Expr{intv(2)}, Negate: true}, "(1 NOT IN (2))"},
		{&Between{Operand: intv(2), Lo: intv(1), Hi: intv(3)}, "(2 BETWEEN 1 AND 3)"},
		{&Cast{Operand: intv(1), Target: sqltypes.TypeString}, "CAST(1 AS VARCHAR)"},
		{&InQuery{Operand: intv(1)}, "(1 IN (<subquery>))"},
		{&InQuery{Operand: intv(1), Negate: true}, "(1 NOT IN (<subquery>))"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCaseString(t *testing.T) {
	e := &Case{
		Operand: intv(1),
		Whens:   []CaseWhen{{When: intv(1), Then: strv("one")}},
		Else:    strv("other"),
	}
	s := e.String()
	for _, want := range []string{"CASE 1", "WHEN 1 THEN 'one'", "ELSE 'other'", "END"} {
		if !strings.Contains(s, want) {
			t.Errorf("Case.String() = %q missing %q", s, want)
		}
	}
}

func TestScalarFuncString(t *testing.T) {
	fn, typ, _ := ScalarFuncs["COALESCE"]([]sqltypes.Type{sqltypes.TypeInt, sqltypes.TypeInt})
	e := &ScalarFunc{Name: "COALESCE", Args: []Expr{intv(1), intv(2)}, Fn: fn, Typ: typ}
	if e.String() != "COALESCE(1, 2)" {
		t.Errorf("got %q", e.String())
	}
}

func TestExprTypes(t *testing.T) {
	fcol := &Column{Idx: 0, Typ: sqltypes.TypeFloat}
	icol := &Column{Idx: 1, Typ: sqltypes.TypeInt}
	scol := &Column{Idx: 2, Typ: sqltypes.TypeString}
	cases := []struct {
		e    Expr
		want sqltypes.Type
	}{
		{&Binary{Op: "=", Left: icol, Right: icol}, sqltypes.TypeBool},
		{&Binary{Op: "+", Left: icol, Right: icol}, sqltypes.TypeInt},
		{&Binary{Op: "+", Left: icol, Right: fcol}, sqltypes.TypeFloat},
		{&Binary{Op: "+", Left: scol, Right: scol}, sqltypes.TypeString},
		{&Binary{Op: "||", Left: scol, Right: icol}, sqltypes.TypeString},
		{&Unary{Op: "NOT", Operand: icol}, sqltypes.TypeBool},
		{&Unary{Op: "-", Operand: fcol}, sqltypes.TypeFloat},
		{&IsNull{Operand: icol}, sqltypes.TypeBool},
		{&In{Operand: icol}, sqltypes.TypeBool},
		{&InQuery{Operand: icol}, sqltypes.TypeBool},
		{&Between{Operand: icol, Lo: icol, Hi: icol}, sqltypes.TypeBool},
		{&Cast{Operand: icol, Target: sqltypes.TypeString}, sqltypes.TypeString},
		{&Case{Whens: []CaseWhen{{When: icol, Then: fcol}}}, sqltypes.TypeFloat},
		{&Case{}, sqltypes.TypeAny},
	}
	for _, c := range cases {
		if got := c.e.Type(); got != c.want {
			t.Errorf("%s.Type() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestInQueryEval(t *testing.T) {
	fetch := func() ([]sqltypes.Value, error) {
		return []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2)}, nil
	}
	e := &InQuery{Operand: &Column{Idx: 0}, Fetch: fetch}
	v, err := e.Eval(sqltypes.Row{sqltypes.NewInt(2)})
	if err != nil || !v.IsTrue() {
		t.Fatalf("2 IN (1,2) = %v, %v", v, err)
	}
	v, _ = e.Eval(sqltypes.Row{sqltypes.NewInt(9)})
	if v.IsTrue() {
		t.Fatal("9 IN (1,2) should be false")
	}
	v, _ = e.Eval(sqltypes.Row{sqltypes.Null})
	if !v.IsNull() {
		t.Fatal("NULL IN (...) should be NULL")
	}
	// NULL in list + no match -> NULL.
	e2 := &InQuery{Operand: &Column{Idx: 0}, Fetch: func() ([]sqltypes.Value, error) {
		return []sqltypes.Value{sqltypes.Null}, nil
	}}
	v, _ = e2.Eval(sqltypes.Row{sqltypes.NewInt(1)})
	if !v.IsNull() {
		t.Fatal("1 IN (NULL) should be NULL")
	}
}

func TestAggKindStrings(t *testing.T) {
	cases := map[AggKind]string{
		AggSum: "SUM", AggCount: "COUNT", AggCountStar: "COUNT",
		AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	a := &Aggregate{Kind: AggCountStar}
	if a.String() != "COUNT(*)" {
		t.Errorf("got %q", a.String())
	}
	d := &Aggregate{Kind: AggSum, Arg: &Column{Idx: 0, Name: "x"}, Distinct: true}
	if d.String() != "SUM(DISTINCT x)" {
		t.Errorf("got %q", d.String())
	}
}
