// Package expr defines bound (resolved) scalar expressions and their
// evaluator, plus the aggregate-function machinery used by the hash
// aggregation operator and the IVM delta-combination logic.
//
// Bound expressions reference input columns by position; the binder in
// internal/plan resolves parser ASTs against an operator's input schema.
package expr

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"openivm/internal/sqltypes"
)

// Expr is a bound scalar expression evaluable against a row.
type Expr interface {
	// Eval computes the expression over the input row.
	Eval(row sqltypes.Row) (sqltypes.Value, error)
	// Type returns the static result type (TypeAny when unknown).
	Type() sqltypes.Type
	// String renders the expression for EXPLAIN output.
	String() string
}

// Column references an input column by position.
type Column struct {
	Idx  int
	Name string
	Typ  sqltypes.Type
}

// Eval implements Expr.
func (c *Column) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return sqltypes.Null, fmt.Errorf("expr: column index %d out of range (row width %d)", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

// Type implements Expr.
func (c *Column) Type() sqltypes.Type { return c.Typ }

// String implements Expr.
func (c *Column) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// Literal is a constant.
type Literal struct{ Val sqltypes.Value }

// Eval implements Expr.
func (l *Literal) Eval(sqltypes.Row) (sqltypes.Value, error) { return l.Val, nil }

// Type implements Expr.
func (l *Literal) Type() sqltypes.Type { return l.Val.T }

// String implements Expr.
func (l *Literal) String() string { return l.Val.SQLLiteral() }

// Binary applies a binary operator. Op: + - * / % = <> < <= > >= AND OR LIKE ||.
type Binary struct {
	Op          string
	Left, Right Expr
}

// Eval implements Expr with SQL three-valued logic for comparisons and
// AND/OR, and NULL propagation for arithmetic.
func (b *Binary) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	switch b.Op {
	case "AND":
		l, err := b.Left.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if l.T == sqltypes.TypeBool && !l.B {
			return sqltypes.NewBool(false), nil
		}
		r, err := b.Right.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if r.T == sqltypes.TypeBool && !r.B {
			return sqltypes.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(l.B && r.B), nil
	case "OR":
		l, err := b.Left.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if l.T == sqltypes.TypeBool && l.B {
			return sqltypes.NewBool(true), nil
		}
		r, err := b.Right.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if r.T == sqltypes.TypeBool && r.B {
			return sqltypes.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(l.B || r.B), nil
	}
	l, err := b.Left.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := b.Right.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	switch b.Op {
	case "+", "-", "*", "/", "%":
		return sqltypes.Arith(b.Op[0], l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(l.String() + r.String()), nil
	case "=", "<>", "<", "<=", ">", ">=":
		cmp, ok := sqltypes.CompareSQL(l, r)
		if !ok {
			return sqltypes.Null, nil
		}
		var res bool
		switch b.Op {
		case "=":
			res = cmp == 0
		case "<>":
			res = cmp != 0
		case "<":
			res = cmp < 0
		case "<=":
			res = cmp <= 0
		case ">":
			res = cmp > 0
		case ">=":
			res = cmp >= 0
		}
		return sqltypes.NewBool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(likeMatch(l.String(), r.String())), nil
	}
	return sqltypes.Null, fmt.Errorf("expr: unknown operator %q", b.Op)
}

// Type implements Expr.
func (b *Binary) Type() sqltypes.Type {
	switch b.Op {
	case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
		return sqltypes.TypeBool
	case "||":
		return sqltypes.TypeString
	}
	lt, rt := b.Left.Type(), b.Right.Type()
	if lt == sqltypes.TypeFloat || rt == sqltypes.TypeFloat {
		return sqltypes.TypeFloat
	}
	if lt == sqltypes.TypeInt && rt == sqltypes.TypeInt {
		return sqltypes.TypeInt
	}
	if lt == sqltypes.TypeString && rt == sqltypes.TypeString && b.Op == "+" {
		return sqltypes.TypeString
	}
	return sqltypes.TypeAny
}

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// Unary is NOT x or -x.
type Unary struct {
	Op      string // "NOT" or "-"
	Operand Expr
}

// Eval implements Expr.
func (u *Unary) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := u.Operand.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	switch u.Op {
	case "NOT":
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(!v.IsTrue()), nil
	case "-":
		return sqltypes.Neg(v)
	}
	return sqltypes.Null, fmt.Errorf("expr: unknown unary %q", u.Op)
}

// Type implements Expr.
func (u *Unary) Type() sqltypes.Type {
	if u.Op == "NOT" {
		return sqltypes.TypeBool
	}
	return u.Operand.Type()
}

// String implements Expr.
func (u *Unary) String() string { return "(" + u.Op + " " + u.Operand.String() + ")" }

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	Operand Expr
	Negate  bool
}

// Eval implements Expr.
func (e *IsNull) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.Operand.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(v.IsNull() != e.Negate), nil
}

// Type implements Expr.
func (e *IsNull) Type() sqltypes.Type { return sqltypes.TypeBool }

// String implements Expr.
func (e *IsNull) String() string {
	if e.Negate {
		return "(" + e.Operand.String() + " IS NOT NULL)"
	}
	return "(" + e.Operand.String() + " IS NULL)"
}

// In is x [NOT] IN (list).
type In struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

// Eval implements Expr with SQL NULL semantics: NULL operand yields NULL;
// a non-matching list containing NULL yields NULL.
func (e *In) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.Operand.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	sawNull := false
	for _, item := range e.List {
		iv, err := item.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if cmp, ok := sqltypes.CompareSQL(v, iv); ok && cmp == 0 {
			return sqltypes.NewBool(!e.Negate), nil
		}
	}
	if sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(e.Negate), nil
}

// Type implements Expr.
func (e *In) Type() sqltypes.Type { return sqltypes.TypeBool }

// String implements Expr.
func (e *In) String() string {
	var sb strings.Builder
	sb.WriteString("(" + e.Operand.String())
	if e.Negate {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, it := range e.List {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString("))")
	return sb.String()
}

// InQuery is x [NOT] IN (SELECT ...). Fetch returns the subquery's column
// values; providers should evaluate lazily and cache.
type InQuery struct {
	Operand Expr
	Fetch   func() ([]sqltypes.Value, error)
	Negate  bool
}

// Eval implements Expr with the same NULL semantics as In.
func (e *InQuery) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.Operand.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	list, err := e.Fetch()
	if err != nil {
		return sqltypes.Null, err
	}
	sawNull := false
	for _, iv := range list {
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if cmp, ok := sqltypes.CompareSQL(v, iv); ok && cmp == 0 {
			return sqltypes.NewBool(!e.Negate), nil
		}
	}
	if sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(e.Negate), nil
}

// Type implements Expr.
func (e *InQuery) Type() sqltypes.Type { return sqltypes.TypeBool }

// String implements Expr.
func (e *InQuery) String() string {
	neg := ""
	if e.Negate {
		neg = " NOT"
	}
	return "(" + e.Operand.String() + neg + " IN (<subquery>))"
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	Operand, Lo, Hi Expr
	Negate          bool
}

// Eval implements Expr.
func (e *Between) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.Operand.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	lo, err := e.Lo.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	hi, err := e.Hi.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	c1, ok1 := sqltypes.CompareSQL(v, lo)
	c2, ok2 := sqltypes.CompareSQL(v, hi)
	if !ok1 || !ok2 {
		return sqltypes.Null, nil
	}
	res := c1 >= 0 && c2 <= 0
	return sqltypes.NewBool(res != e.Negate), nil
}

// Type implements Expr.
func (e *Between) Type() sqltypes.Type { return sqltypes.TypeBool }

// String implements Expr.
func (e *Between) String() string {
	neg := ""
	if e.Negate {
		neg = " NOT"
	}
	return "(" + e.Operand.String() + neg + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// Case is CASE [operand] WHEN .. THEN .. ELSE .. END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // nil -> NULL
}

// CaseWhen is one arm.
type CaseWhen struct{ When, Then Expr }

// Eval implements Expr.
func (e *Case) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	var base sqltypes.Value
	hasBase := e.Operand != nil
	if hasBase {
		var err error
		base, err = e.Operand.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
	}
	for _, w := range e.Whens {
		wv, err := w.When.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		match := false
		if hasBase {
			if cmp, ok := sqltypes.CompareSQL(base, wv); ok && cmp == 0 {
				match = true
			}
		} else {
			match = wv.IsTrue()
		}
		if match {
			return w.Then.Eval(row)
		}
	}
	if e.Else != nil {
		return e.Else.Eval(row)
	}
	return sqltypes.Null, nil
}

// Type implements Expr.
func (e *Case) Type() sqltypes.Type {
	if len(e.Whens) > 0 {
		return e.Whens[0].Then.Type()
	}
	return sqltypes.TypeAny
}

// String implements Expr.
func (e *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if e.Operand != nil {
		sb.WriteString(" " + e.Operand.String())
	}
	for _, w := range e.Whens {
		sb.WriteString(" WHEN " + w.When.String() + " THEN " + w.Then.String())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast converts to a target type.
type Cast struct {
	Operand Expr
	Target  sqltypes.Type
}

// Eval implements Expr.
func (e *Cast) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.Operand.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.Cast(v, e.Target)
}

// Type implements Expr.
func (e *Cast) Type() sqltypes.Type { return e.Target }

// String implements Expr.
func (e *Cast) String() string {
	return "CAST(" + e.Operand.String() + " AS " + e.Target.String() + ")"
}

// ScalarFunc is a non-aggregate function call (COALESCE, ABS, ...).
type ScalarFunc struct {
	Name string
	Args []Expr
	Fn   func(args []sqltypes.Value) (sqltypes.Value, error)
	Typ  sqltypes.Type

	// scratch holds the reusable argument buffer behind an atomic swap so a
	// compiled plan containing this node stays both Reusable and
	// ParallelSafe (the shared statement cache re-executes one plan from
	// many sessions at once): each Eval takes exclusive ownership of the
	// buffer via Swap(nil) and returns it when done. Concurrent evaluators
	// that lose the swap allocate a private buffer — correctness never
	// depends on winning, only the steady-state alloc count does.
	scratch atomic.Pointer[[]sqltypes.Value]
}

// Eval implements Expr. A registered Fn must not retain its args slice
// past the call — the buffer is recycled across evaluations.
func (e *ScalarFunc) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	p := e.scratch.Swap(nil)
	if p == nil {
		p = new([]sqltypes.Value)
		*p = make([]sqltypes.Value, 0, len(e.Args))
	}
	args := (*p)[:0]
	for _, a := range e.Args {
		v, err := a.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		args = append(args, v)
	}
	*p = args
	v, err := e.Fn(args)
	e.scratch.Store(p)
	return v, err
}

// Type implements Expr.
func (e *ScalarFunc) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *ScalarFunc) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name + "(")
	for i, a := range e.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// ParamBinding holds the current values of a statement's $N parameters.
// One binding belongs to one execution context (an engine session): the
// driver sets Vals before executing a plan whose Param nodes point here.
// Because the binding is shared mutable state, plans containing Param
// nodes are Reusable (re-executed sequentially by their owning session —
// the wire prepared-statement model) but never ParallelSafe, so they stay
// out of the cross-session shared statement cache.
type ParamBinding struct {
	Vals []sqltypes.Value
}

// Param is a positional statement parameter ($1, $2, ...) bound per
// execution through its session's ParamBinding.
type Param struct {
	Index   int // 1-based
	Binding *ParamBinding
}

// Eval implements Expr.
func (e *Param) Eval(sqltypes.Row) (sqltypes.Value, error) {
	if e.Binding == nil || e.Index < 1 || e.Index > len(e.Binding.Vals) {
		return sqltypes.Null, fmt.Errorf("expr: parameter $%d not bound (%d values supplied)", e.Index, e.boundCount())
	}
	return e.Binding.Vals[e.Index-1], nil
}

func (e *Param) boundCount() int {
	if e.Binding == nil {
		return 0
	}
	return len(e.Binding.Vals)
}

// Type implements Expr. Parameter types are unknown until execution.
func (e *Param) Type() sqltypes.Type { return sqltypes.TypeAny }

// String implements Expr.
func (e *Param) String() string { return "$" + strconv.Itoa(e.Index) }

// ScalarFuncs is the registry of built-in scalar functions. Each entry
// returns the implementation and static result type for an arg count.
var ScalarFuncs = map[string]func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error){
	"COALESCE": func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
		if len(argTypes) == 0 {
			return nil, sqltypes.TypeAny, fmt.Errorf("COALESCE requires at least one argument")
		}
		t := sqltypes.TypeAny
		for _, at := range argTypes {
			if at != sqltypes.TypeNull && at != sqltypes.TypeAny {
				t = at
				break
			}
		}
		return func(args []sqltypes.Value) (sqltypes.Value, error) {
			for _, a := range args {
				if !a.IsNull() {
					return a, nil
				}
			}
			return sqltypes.Null, nil
		}, t, nil
	},
	"ABS": func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
		if len(argTypes) != 1 {
			return nil, sqltypes.TypeAny, fmt.Errorf("ABS requires one argument")
		}
		return func(args []sqltypes.Value) (sqltypes.Value, error) {
			v := args[0]
			switch v.T {
			case sqltypes.TypeNull:
				return sqltypes.Null, nil
			case sqltypes.TypeInt:
				if v.I < 0 {
					return sqltypes.NewInt(-v.I), nil
				}
				return v, nil
			case sqltypes.TypeFloat:
				if v.F < 0 {
					return sqltypes.NewFloat(-v.F), nil
				}
				return v, nil
			}
			return sqltypes.Null, fmt.Errorf("ABS: non-numeric argument %s", v.T)
		}, argTypes[0], nil
	},
	"LENGTH": func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
		if len(argTypes) != 1 {
			return nil, sqltypes.TypeAny, fmt.Errorf("LENGTH requires one argument")
		}
		return func(args []sqltypes.Value) (sqltypes.Value, error) {
			if args[0].IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewInt(int64(len(args[0].String()))), nil
		}, sqltypes.TypeInt, nil
	},
	"LOWER": stringFunc(strings.ToLower),
	"UPPER": stringFunc(strings.ToUpper),
	"GREATEST": func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
		if len(argTypes) == 0 {
			return nil, sqltypes.TypeAny, fmt.Errorf("GREATEST requires arguments")
		}
		return func(args []sqltypes.Value) (sqltypes.Value, error) {
			best := sqltypes.Null
			for _, a := range args {
				if a.IsNull() {
					return sqltypes.Null, nil
				}
				if best.IsNull() || sqltypes.Compare(a, best) > 0 {
					best = a
				}
			}
			return best, nil
		}, argTypes[0], nil
	},
	"LEAST": func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
		if len(argTypes) == 0 {
			return nil, sqltypes.TypeAny, fmt.Errorf("LEAST requires arguments")
		}
		return func(args []sqltypes.Value) (sqltypes.Value, error) {
			best := sqltypes.Null
			for _, a := range args {
				if a.IsNull() {
					return sqltypes.Null, nil
				}
				if best.IsNull() || sqltypes.Compare(a, best) < 0 {
					best = a
				}
			}
			return best, nil
		}, argTypes[0], nil
	},
}

func stringFunc(fn func(string) string) func([]sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
	return func(argTypes []sqltypes.Type) (func([]sqltypes.Value) (sqltypes.Value, error), sqltypes.Type, error) {
		if len(argTypes) != 1 {
			return nil, sqltypes.TypeAny, fmt.Errorf("function requires one argument")
		}
		return func(args []sqltypes.Value) (sqltypes.Value, error) {
			if args[0].IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewString(fn(args[0].String())), nil
		}, sqltypes.TypeString, nil
	}
}
