package expr

import "openivm/internal/sqltypes"

// EvalBatch evaluates e over every row of rows, appending the results to
// dst (pass dst[:0] to reuse a scratch buffer across batches). It is the
// row-major batch-evaluation entry point: one expression over a whole
// chunk, with fast paths for plain columns and literals. Expressions that
// compile to vector kernels (CompileKernel) run faster still on columnar
// batches; EvalBatch remains the fallback for everything the kernel
// compiler rejects and for row-major inputs.
func EvalBatch(e Expr, rows []sqltypes.Row, dst []sqltypes.Value) ([]sqltypes.Value, error) {
	switch x := e.(type) {
	case *Column:
		// Hot path: plain column reference copies values directly.
		for _, r := range rows {
			if x.Idx < 0 || x.Idx >= len(r) {
				v, err := x.Eval(r) // surface the standard error
				if err != nil {
					return dst, err
				}
				dst = append(dst, v)
				continue
			}
			dst = append(dst, r[x.Idx])
		}
		return dst, nil
	case *Literal:
		for range rows {
			dst = append(dst, x.Val)
		}
		return dst, nil
	}
	for _, r := range rows {
		v, err := e.Eval(r)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}
