package storage

import (
	"os"
	"path/filepath"
	"testing"

	"openivm/internal/enginerr"
	"openivm/internal/sqltypes"
)

// memHandler replays records into an in-memory key/value model so the
// backend can be tested without an engine on top.
type memHandler struct {
	rows map[int64]int64 // k -> v for table "kv"
	snap *CheckpointData
}

func newMemHandler() *memHandler { return &memHandler{rows: map[int64]int64{}} }

func (h *memHandler) Checkpoint(s *CheckpointData) error {
	h.snap = s
	for _, t := range s.Tables {
		if t.Name != "kv" {
			continue
		}
		for _, r := range t.Rows {
			h.rows[r[0].I] = r[1].I
		}
	}
	return nil
}

func (h *memHandler) Commit(rec *CommitRecord) error {
	for _, op := range rec.Ops {
		switch op.Kind {
		case OpInsert, OpUpsert:
			h.rows[op.Row[0].I] = op.Row[1].I
		case OpDelete:
			delete(h.rows, op.Row[0].I)
		case OpTruncate:
			h.rows = map[int64]int64{}
		}
	}
	return nil
}

func (h *memHandler) DDL(*DDLRecord) error { return nil }

func kvCommit(ts uint64, k, v int64) *CommitRecord {
	return &CommitRecord{CommitTS: ts, Ops: []RedoOp{{
		Table: "kv", Kind: OpUpsert,
		Row: sqltypes.Row{sqltypes.NewInt(k), sqltypes.NewInt(v)},
	}}}
}

func TestDiskBackendReplay(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recover(newMemHandler()); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := int64(1); i <= 20; i++ {
		lsn, err := b.AppendCommit(kvCommit(uint64(i), i%5, i))
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if err := b.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	h := newMemHandler()
	if err := b2.Recover(h); err != nil {
		t.Fatal(err)
	}
	// k -> latest v with that k: k = i%5, v = i; latest i per residue.
	want := map[int64]int64{0: 20, 1: 16, 2: 17, 3: 18, 4: 19}
	for k, v := range want {
		if h.rows[k] != v {
			t.Fatalf("replayed rows = %v, want %v", h.rows, want)
		}
	}
	if st := b2.Stats(); st.ReplayedRecords != 20 {
		t.Fatalf("ReplayedRecords = %d, want 20", st.ReplayedRecords)
	}
	// Appends continue with fresh LSNs after recovery.
	lsn, err := b2.AppendCommit(kvCommit(21, 9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != last+1 {
		t.Fatalf("post-recovery LSN = %d, want %d", lsn, last+1)
	}
	if err := b2.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
}

func TestDiskBackendCheckpointPrunesLog(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recover(newMemHandler()); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if _, err := b.AppendCommit(kvCommit(uint64(i), i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	lastLSN, err := b.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if lastLSN != 10 {
		t.Fatalf("BeginCheckpoint lastLSN = %d, want 10", lastLSN)
	}
	snap := &CheckpointData{
		LastLSN: lastLSN,
		LastTS:  10,
		Tables: []TableSnap{{
			Name:    "kv",
			Columns: []ColumnDef{{Name: "k", Type: sqltypes.TypeInt}, {Name: "v", Type: sqltypes.TypeInt}},
			Rows:    []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(10)}},
		}},
	}
	if err := b.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in a fresh segment.
	lsn, err := b.AppendCommit(kvCommit(11, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	h := newMemHandler()
	if err := b2.Recover(h); err != nil {
		t.Fatal(err)
	}
	if h.snap == nil || h.snap.LastLSN != 10 {
		t.Fatalf("checkpoint not loaded on recovery: %+v", h.snap)
	}
	if st := b2.Stats(); st.ReplayedRecords != 1 {
		t.Fatalf("ReplayedRecords = %d, want only the post-checkpoint record", st.ReplayedRecords)
	}
	if h.rows[1] != 10 || h.rows[2] != 20 {
		t.Fatalf("recovered rows = %v", h.rows)
	}
}

func TestDiskBackendTornTail(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recover(newMemHandler()); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := int64(1); i <= 5; i++ {
		if last, err = b.AppendCommit(kvCommit(uint64(i), i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _, err := scanDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("scanDir: %v %v", segs, err)
	}
	seg := segmentPath(dir, segs[len(segs)-1])
	img, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record's frame in half: replay must stop cleanly at
	// record 4 and stay writable.
	if err := os.Truncate(seg, int64(len(img)-10)); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	h := newMemHandler()
	if err := b2.Recover(h); err != nil {
		t.Fatal(err)
	}
	if len(h.rows) != 4 {
		t.Fatalf("recovered rows = %v, want 4 intact commits", h.rows)
	}
	if lsn, err := b2.AppendCommit(kvCommit(9, 9, 9)); err != nil || lsn != 5 {
		t.Fatalf("append after torn tail: lsn=%d err=%v", lsn, err)
	}
}

func TestDiskBackendCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recover(newMemHandler()); err != nil {
		t.Fatal(err)
	}
	// Force tiny segments so multiple get written.
	b.SegmentBytes = 64
	var last uint64
	for i := int64(1); i <= 12; i++ {
		if last, err = b.AppendCommit(kvCommit(uint64(i), i, i)); err != nil {
			t.Fatal(err)
		}
		if err := b.WaitDurable(last); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	// Flip a byte in the middle segment: damage before the tail is
	// corruption, not a torn tail.
	mid := segmentPath(dir, segs[len(segs)/2])
	img, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-3] ^= 0xff
	if err := os.WriteFile(mid, img, 0o644); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	rerr := b2.Recover(newMemHandler())
	if rerr == nil {
		t.Fatal("corrupt middle segment recovered without error")
	}
	if enginerr.CodeOf(rerr) != enginerr.CodeRecoveryCorruption {
		t.Fatalf("corruption error code = %q, want %q", enginerr.CodeOf(rerr), enginerr.CodeRecoveryCorruption)
	}
}

func TestScanDirRemovesStrayTmp(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "checkpoint-00000001.owc.tmp")
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scanDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray .tmp checkpoint survived scanDir")
	}
}
