package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"openivm/internal/fault"
)

// On-disk layout of a data directory:
//
//	wal-<seq>.owl        log segments (8-byte magic, then framed records)
//	checkpoint-<seq>.owc snapshot files (magic, body, trailing CRC)
//
// Sequence numbers are monotonically increasing; recovery uses the
// newest valid checkpoint and replays segments in ascending order.

const (
	walMagic   = "OIVMWAL1"
	walExt     = ".owl"
	ckptExt    = ".owc"
	walPrefix  = "wal-"
	ckptPrefix = "checkpoint-"
	tmpSuffix  = ".tmp"
)

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", walPrefix, seq, walExt))
}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", ckptPrefix, seq, ckptExt))
}

// parseSeq extracts the sequence number from a segment or checkpoint
// file name, returning ok=false for files that don't match the scheme.
func parseSeq(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(ext)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scanDir lists segment and checkpoint sequence numbers in dir, each
// sorted ascending. Stray .tmp files (crashed checkpoint writes) are
// removed.
func scanDir(dir string) (segs, ckpts []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if n, ok := parseSeq(name, walPrefix, walExt); ok {
			segs = append(segs, n)
		} else if n, ok := parseSeq(name, ckptPrefix, ckptExt); ok {
			ckpts = append(ckpts, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, nil
}

// createSegment creates and opens a fresh log segment with its magic
// header written and synced.
func createSegment(dir string, seq uint64) (*os.File, error) {
	f, err := os.OpenFile(segmentPath(dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// segmentRecords reads every intact framed record payload from a
// segment image (after the magic header). torn reports whether the
// segment ended with a partial or corrupt frame rather than cleanly.
func segmentRecords(b []byte) (payloads [][]byte, torn bool, err error) {
	if len(b) < len(walMagic) || string(b[:len(walMagic)]) != walMagic {
		return nil, false, fmt.Errorf("storage: bad segment magic")
	}
	rest := b[len(walMagic):]
	for len(rest) > 0 {
		payload, r, ok := readFrame(rest)
		if !ok {
			return payloads, true, nil
		}
		payloads = append(payloads, payload)
		rest = r
	}
	return payloads, false, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Errors are returned for the caller to judge; on platforms
// where directories can't be fsynced this is best-effort.
func syncDir(dir string) error {
	if err := fault.Inject(fault.DirSync); err != nil {
		return wrapIO(err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return wrapIO(err)
	}
	defer d.Close()
	return wrapIO(d.Sync())
}
