package storage

import (
	"bytes"
	"reflect"
	"testing"

	"openivm/internal/sqltypes"
)

func sampleRow() sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(42),
		sqltypes.NewString("hello"),
		sqltypes.NewFloat(3.5),
		sqltypes.NewBool(true),
		sqltypes.Null,
	}
}

func TestCommitRecordRoundTrip(t *testing.T) {
	rec := &CommitRecord{
		CommitTS: 77,
		Ops: []RedoOp{
			{Table: "t", Kind: OpInsert, Row: sampleRow()},
			{Table: "t", Kind: OpDelete, Row: sampleRow()},
			{Table: "u", Kind: OpUpsert, Row: sqltypes.Row{sqltypes.NewInt(-9)}},
			{Table: "u", Kind: OpTruncate},
		},
	}
	payload := appendCommitPayload(nil, 12, rec, false)
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 12 || got.Instant || got.Commit == nil || got.DDL != nil {
		t.Fatalf("decoded frame header wrong: %+v", got)
	}
	if !reflect.DeepEqual(got.Commit, rec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Commit, rec)
	}

	inst := appendCommitPayload(nil, 13, rec, true)
	got, err = DecodeRecord(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Instant {
		t.Fatal("instant flag lost in round trip")
	}
}

func TestDDLRecordRoundTrip(t *testing.T) {
	recs := []*DDLRecord{
		{
			Kind: DDLCreateTable, Name: "t",
			Columns: []ColumnDef{
				{Name: "a", Type: sqltypes.TypeInt, NotNull: true},
				{Name: "b", Type: sqltypes.TypeString, HasDefault: true, Default: sqltypes.NewString("x")},
			},
			PrimaryKey: []string{"a"},
			Rows:       []sqltypes.Row{sampleRow()},
		},
		{Kind: DDLCreateIndex, Name: "idx", Table: "t", IdxColumns: []string{"b", "a"}, Unique: true},
		{Kind: DDLCreateView, Name: "v", SQL: "SELECT a FROM t"},
		{Kind: DDLCreateMatView, Name: "mv", SQL: "SELECT a, COUNT(*) FROM t GROUP BY a"},
		{Kind: DDLDrop, Name: "t", ObjectKind: "TABLE"},
	}
	for _, rec := range recs {
		payload := appendDDLPayload(nil, 5, rec)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("%v: %v", rec.Kind, err)
		}
		if got.DDL == nil || got.Commit != nil {
			t.Fatalf("%v: wrong record shape", rec.Kind)
		}
		if !reflect.DeepEqual(got.DDL, rec) {
			t.Fatalf("%v round trip mismatch:\n got %+v\nwant %+v", rec.Kind, got.DDL, rec)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	payload := appendCommitPayload(nil, 1, &CommitRecord{CommitTS: 1}, false)
	frame := frameRecord(nil, payload)

	// Clean read first.
	got, rest, ok := readFrame(frame)
	if !ok || len(rest) != 0 || !bytes.Equal(got, payload) {
		t.Fatal("clean frame did not read back")
	}
	// Any single-byte flip must fail the CRC (or the length prefix).
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if p, _, ok := readFrame(bad); ok && bytes.Equal(p, payload) {
			t.Fatalf("byte flip at %d went undetected", i)
		}
	}
	// Truncation at every prefix must read as torn, never panic.
	for i := 0; i < len(frame); i++ {
		if _, _, ok := readFrame(frame[:i]); ok {
			t.Fatalf("truncated frame of %d bytes accepted", i)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xff},
		{9, 9, 9, 9, 9, 9, 9, 9, 9},
		bytes.Repeat([]byte{0x80}, 40), // unterminated varints
	}
	for _, c := range cases {
		if _, err := DecodeRecord(c); err == nil {
			t.Fatalf("garbage payload %v decoded without error", c)
		}
	}
	// Truncations of a valid payload must error, not panic.
	payload := appendCommitPayload(nil, 3, &CommitRecord{
		CommitTS: 9,
		Ops:      []RedoOp{{Table: "t", Kind: OpInsert, Row: sampleRow()}},
	}, false)
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeRecord(payload[:i]); err == nil {
			t.Fatalf("truncated payload of %d bytes decoded without error", i)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	snap := &CheckpointData{
		LastLSN: 99,
		LastTS:  1234,
		Tables: []TableSnap{
			{
				Name: "t",
				Columns: []ColumnDef{
					{Name: "a", Type: sqltypes.TypeInt, NotNull: true},
					{Name: "b", Type: sqltypes.TypeString},
				},
				PrimaryKey: []string{"a"},
				Indexes:    []IndexDef{{Name: "i", Columns: []string{"b"}, Unique: false}},
				Rows: []sqltypes.Row{
					{sqltypes.NewInt(1), sqltypes.NewString("x")},
					{sqltypes.NewInt(2), sqltypes.Null},
				},
			},
			{Name: "empty", Columns: []ColumnDef{{Name: "c", Type: sqltypes.TypeInt}}},
		},
		Views:    []ViewSnap{{Name: "v", SQL: "SELECT a FROM t"}},
		MatViews: []ViewSnap{{Name: "mv", SQL: "SELECT b FROM t"}},
	}
	img := encodeCheckpoint(snap)
	got, err := decodeCheckpoint(img)
	if err != nil {
		t.Fatal(err)
	}
	// nil-vs-empty slice differences are irrelevant on disk: compare by
	// canonical re-encoding plus spot checks.
	if !bytes.Equal(encodeCheckpoint(got), img) {
		t.Fatalf("checkpoint re-encode differs:\n got %+v\nwant %+v", got, snap)
	}
	if got.LastLSN != 99 || got.LastTS != 1234 || len(got.Tables) != 2 ||
		len(got.Tables[0].Rows) != 2 || got.Tables[0].Rows[1][1] != sqltypes.Null ||
		len(got.Views) != 1 || len(got.MatViews) != 1 {
		t.Fatalf("checkpoint content mismatch: %+v", got)
	}
	// Every single-byte flip must be rejected by CRC or structure checks.
	for i := range img {
		bad := append([]byte(nil), img...)
		bad[i] ^= 0x01
		if _, err := decodeCheckpoint(bad); err == nil {
			t.Fatalf("checkpoint byte flip at %d went undetected", i)
		}
	}
	for i := 0; i < len(img); i++ {
		if _, err := decodeCheckpoint(img[:i]); err == nil {
			t.Fatalf("truncated checkpoint of %d bytes accepted", i)
		}
	}
}

// FuzzWALDecode drives the record decoder with arbitrary payloads: it
// must never panic, and anything it accepts must survive an
// encode/decode round trip (re-encoding is a fixed point — the decoder
// tolerates non-minimal varints, so byte equality with the original
// input is not required).
func FuzzWALDecode(f *testing.F) {
	f.Add(appendCommitPayload(nil, 1, &CommitRecord{
		CommitTS: 7,
		Ops: []RedoOp{
			{Table: "kv", Kind: OpInsert, Row: sampleRow()},
			{Table: "kv", Kind: OpTruncate},
		},
	}, false))
	f.Add(appendCommitPayload(nil, 2, &CommitRecord{CommitTS: 8}, true))
	f.Add(appendDDLPayload(nil, 3, &DDLRecord{
		Kind: DDLCreateTable, Name: "t",
		Columns:    []ColumnDef{{Name: "a", Type: sqltypes.TypeInt}},
		PrimaryKey: []string{"a"},
	}))
	f.Add(appendDDLPayload(nil, 4, &DDLRecord{Kind: DDLDrop, Name: "x", ObjectKind: "VIEW"}))
	f.Add([]byte{})
	encode := func(rec *Record) []byte {
		switch {
		case rec.Commit != nil:
			return appendCommitPayload(nil, rec.LSN, rec.Commit, rec.Instant)
		case rec.DDL != nil:
			return appendDDLPayload(nil, rec.LSN, rec.DDL)
		}
		return nil
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		reenc := encode(rec)
		if reenc == nil {
			t.Fatalf("decoded record with no body: %+v", rec)
		}
		rec2, err := DecodeRecord(reenc)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v\n in  %x\n out %x", err, payload, reenc)
		}
		if !bytes.Equal(encode(rec2), reenc) {
			t.Fatalf("re-encoding is not a fixed point:\n in  %x\n out %x\n out2 %x", payload, reenc, encode(rec2))
		}
	})
}
