package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"openivm/internal/enginerr"
	"openivm/internal/fault"
)

// wrapIO classifies a physical I/O failure (write, fsync, rename,
// directory sync — or an injected stand-in) as SQLSTATE 58030 so it
// surfaces over the wire as a class clients can act on, not a raw
// *os.PathError string. The engine keys its read-only degradation on
// this class. Wrapping nil returns nil.
func wrapIO(err error) error {
	return enginerr.Wrap(enginerr.CodeIOFailure, err)
}

// DiskBackend is the durable Backend: a write-ahead log of framed redo
// records plus columnar checkpoint files in a single data directory.
//
// Locking: mu is the append lock — it orders staging, segment rotation
// and checkpoints. flushMu serializes fsync batches: the first waiter
// through it becomes the group-commit leader and flushes everything
// staged so far; commits that queued behind it find their LSN already
// durable and return without touching the disk.
type DiskBackend struct {
	dir string

	mu        sync.Mutex // append lock: stage buffer, segment, LSN counter
	file      *os.File   // active segment
	fileBytes int64      // bytes written to the active segment
	seq       uint64     // active segment sequence number
	ckptSeq   uint64     // newest checkpoint sequence number
	nextLSN   uint64     // LSN the next record will receive
	stage     []byte     // framed records staged but not yet written
	stagedLSN uint64     // LSN of the last staged record
	recovered bool       // Recover has run; appends are legal
	closed    bool

	flushMu    sync.Mutex // group-commit leader election
	durableLSN atomic.Uint64
	flushErr   error // sticky: a failed fsync poisons the backend

	// CheckpointBytes is the log-volume threshold NeedCheckpoint trips
	// at. Set before use; defaults to 4 MiB.
	CheckpointBytes int64

	// SegmentBytes bounds one log segment; the log rotates to a fresh
	// segment past it. Defaults to 16 MiB.
	SegmentBytes int64

	lastCkptAt     time.Time
	bytesSinceCkpt int64

	// counters (atomic: Stats races with appenders)
	walBytes    atomic.Int64
	walRecords  atomic.Int64
	fsyncs      atomic.Int64
	batches     atomic.Int64
	checkpoints atomic.Int64
	replayedRec atomic.Int64
	replayedB   atomic.Int64
}

var _ Backend = (*DiskBackend)(nil)

// OpenDisk opens (creating if needed) a durable backend rooted at dir.
// Call Recover before any append.
func OpenDisk(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskBackend{
		dir:             dir,
		CheckpointBytes: 4 << 20,
		SegmentBytes:    16 << 20,
	}, nil
}

// Durable reports true: this backend persists.
func (b *DiskBackend) Durable() bool { return true }

// stageRecord frames payload into the stage buffer and assigns the
// next LSN. Caller holds mu.
func (b *DiskBackend) stageRecord(payload []byte) uint64 {
	lsn := b.nextLSN
	b.nextLSN++
	before := len(b.stage)
	b.stage = frameRecord(b.stage, payload)
	b.stagedLSN = lsn
	n := int64(len(b.stage) - before)
	b.walBytes.Add(n)
	b.walRecords.Add(1)
	b.bytesSinceCkpt += n
	return lsn
}

// AppendCommit stages one transaction's redo record. Called under the
// MVCC commit lock, so records enter in commit order.
func (b *DiskBackend) AppendCommit(rec *CommitRecord) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.appendableLocked(); err != nil {
		return 0, err
	}
	if err := fault.Inject(fault.WALAppend); err != nil {
		return 0, wrapIO(err)
	}
	lsn := b.nextLSN
	payload := appendCommitPayload(make([]byte, 0, 256), lsn, rec, false)
	return b.stageRecord(payload), nil
}

// AppendDDL stages a schema-change record and syncs it before
// returning — DDL is rare and pays its own fsync.
func (b *DiskBackend) AppendDDL(rec *DDLRecord) error {
	b.mu.Lock()
	if err := b.appendableLocked(); err != nil {
		b.mu.Unlock()
		return err
	}
	payload := appendDDLPayload(make([]byte, 0, 256), b.nextLSN, rec)
	lsn := b.stageRecord(payload)
	b.mu.Unlock()
	return b.WaitDurable(lsn)
}

// AppendInstant stages a legacy instant-write record and syncs it.
func (b *DiskBackend) AppendInstant(rec *CommitRecord) error {
	b.mu.Lock()
	if err := b.appendableLocked(); err != nil {
		b.mu.Unlock()
		return err
	}
	payload := appendCommitPayload(make([]byte, 0, 128), b.nextLSN, rec, true)
	lsn := b.stageRecord(payload)
	b.mu.Unlock()
	return b.WaitDurable(lsn)
}

func (b *DiskBackend) appendableLocked() error {
	if b.closed {
		return fmt.Errorf("storage: backend closed")
	}
	if !b.recovered {
		return fmt.Errorf("storage: append before Recover")
	}
	return nil
}

// WaitDurable blocks until every record with LSN <= lsn is on disk.
// Concurrent callers batch behind one leader's write+fsync.
func (b *DiskBackend) WaitDurable(lsn uint64) error {
	if b.durableLSN.Load() >= lsn {
		return nil
	}
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	if b.flushErr != nil {
		return b.flushErr
	}
	if b.durableLSN.Load() >= lsn {
		// A leader that ran while we queued covered our record.
		return nil
	}
	if err := b.flush(); err != nil {
		b.flushErr = err
		return err
	}
	if b.durableLSN.Load() < lsn {
		return fmt.Errorf("storage: flush did not cover lsn %d", lsn)
	}
	return nil
}

// flush writes and fsyncs everything staged. Caller holds flushMu.
func (b *DiskBackend) flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

// flushLocked is flush with mu already held (the checkpoint path).
func (b *DiskBackend) flushLocked() error {
	if len(b.stage) == 0 {
		return nil
	}
	if b.file == nil {
		return fmt.Errorf("storage: no active segment")
	}
	if err := fault.Inject(fault.WALWrite); err != nil {
		if errors.Is(err, fault.ErrShortWrite) {
			// Simulate a torn write: a prefix of the batch reaches the
			// segment before the failure, exactly like a crash mid-write.
			// Recovery must treat the partial frame as a torn tail.
			b.file.Write(b.stage[:len(b.stage)/2])
		}
		return wrapIO(err)
	}
	if _, err := b.file.Write(b.stage); err != nil {
		return wrapIO(err)
	}
	if err := fault.Inject(fault.WALFsync); err != nil {
		return wrapIO(err)
	}
	if err := b.file.Sync(); err != nil {
		return wrapIO(err)
	}
	b.fileBytes += int64(len(b.stage))
	b.stage = b.stage[:0]
	b.fsyncs.Add(1)
	b.batches.Add(1)
	b.durableLSN.Store(b.stagedLSN)
	if b.fileBytes >= b.SegmentBytes {
		if err := b.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked closes the active segment and opens the next one.
func (b *DiskBackend) rotateLocked() error {
	if err := fault.Inject(fault.WALRotate); err != nil {
		return wrapIO(err)
	}
	if b.file != nil {
		if err := b.file.Close(); err != nil {
			return wrapIO(err)
		}
	}
	b.seq++
	f, err := createSegment(b.dir, b.seq)
	if err != nil {
		return wrapIO(err)
	}
	b.file = f
	b.fileBytes = 0
	return syncDir(b.dir)
}

// BeginCheckpoint freezes the log: the append lock is held until
// Checkpoint or EndCheckpoint, so the engine can assemble a snapshot
// that is consistent with the log position returned here.
func (b *DiskBackend) BeginCheckpoint() (uint64, error) {
	b.mu.Lock()
	if b.closed || !b.recovered {
		b.mu.Unlock()
		return 0, fmt.Errorf("storage: checkpoint on unready backend")
	}
	return b.nextLSN - 1, nil
}

// Checkpoint durably writes snap, discards the log prefix it covers,
// and releases the freeze taken by BeginCheckpoint.
func (b *DiskBackend) Checkpoint(snap *CheckpointData) error {
	defer b.mu.Unlock()
	img := encodeCheckpoint(snap)
	b.ckptSeq++
	final := checkpointPath(b.dir, b.ckptSeq)
	tmp := final + tmpSuffix
	if err := fault.Inject(fault.CkptWrite); err != nil {
		return wrapIO(err)
	}
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return wrapIO(err)
	}
	if f, err := os.Open(tmp); err == nil {
		serr := f.Sync()
		f.Close()
		if serr != nil {
			return wrapIO(serr)
		}
	} else {
		return wrapIO(err)
	}
	if err := fault.Inject(fault.CkptRename); err != nil {
		return wrapIO(err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return wrapIO(err)
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	// Every staged and written record has LSN <= snap.LastLSN (the log
	// was frozen while the snapshot was assembled), so the whole log
	// prefix is covered: drop the stage buffer, delete old segments and
	// checkpoints, and start a fresh segment.
	b.stage = b.stage[:0]
	b.durableLSN.Store(b.nextLSN - 1)
	if b.file != nil {
		b.file.Close()
		b.file = nil
	}
	segs, ckpts, err := scanDir(b.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(segmentPath(b.dir, s)); err != nil {
			return wrapIO(err)
		}
	}
	for _, c := range ckpts {
		if c < b.ckptSeq {
			os.Remove(checkpointPath(b.dir, c))
		}
	}
	if err := b.rotateLocked(); err != nil {
		return err
	}
	b.checkpoints.Add(1)
	b.lastCkptAt = time.Now()
	b.bytesSinceCkpt = 0
	return nil
}

// EndCheckpoint abandons a checkpoint attempt, releasing the freeze.
func (b *DiskBackend) EndCheckpoint() { b.mu.Unlock() }

// NeedCheckpoint reports whether log volume since the last checkpoint
// crossed the threshold.
func (b *DiskBackend) NeedCheckpoint() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytesSinceCkpt >= b.CheckpointBytes
}

// Recover loads the newest valid checkpoint and replays every log
// record after it into h, in LSN order. A torn tail (crash mid-write)
// ends replay cleanly; damage before the tail is CodeRecoveryCorruption.
// After Recover returns the backend is ready for appends.
func (b *DiskBackend) Recover(h RecoveryHandler) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.recovered {
		return fmt.Errorf("storage: Recover called twice")
	}
	segs, ckpts, err := scanDir(b.dir)
	if err != nil {
		return err
	}

	// Newest checkpoint that decodes cleanly wins; an unreadable newest
	// checkpoint falls back to the previous one (its covered log
	// segments were deleted only after the newer one was durable, so
	// falling back is safe only when the newer write never completed —
	// which is exactly when its CRC fails).
	var snap *CheckpointData
	for i := len(ckpts) - 1; i >= 0; i-- {
		img, rerr := os.ReadFile(checkpointPath(b.dir, ckpts[i]))
		if rerr != nil {
			return rerr
		}
		s, derr := decodeCheckpoint(img)
		if derr != nil {
			continue
		}
		snap = s
		b.ckptSeq = ckpts[i]
		break
	}
	if len(ckpts) > 0 && b.ckptSeq < ckpts[len(ckpts)-1] {
		b.ckptSeq = ckpts[len(ckpts)-1] // never reuse a damaged file's seq
	}

	maxLSN := uint64(0)
	if snap != nil {
		maxLSN = snap.LastLSN
		if err := h.Checkpoint(snap); err != nil {
			return err
		}
	}

	for i, seg := range segs {
		img, rerr := os.ReadFile(segmentPath(b.dir, seg))
		if rerr != nil {
			return rerr
		}
		last := i == len(segs)-1
		payloads, torn, serr := segmentRecords(img)
		if serr != nil {
			if last {
				// A crash can tear even the magic header of a freshly
				// rotated tail segment; no intact record can follow it,
				// so replay simply stops here.
				if seg > b.seq {
					b.seq = seg
				}
				break
			}
			return enginerr.Wrap(enginerr.CodeRecoveryCorruption, serr)
		}
		for _, p := range payloads {
			rec, derr := DecodeRecord(p)
			if derr != nil {
				if last {
					// Undetected torn write at the tail: stop replay here.
					torn = true
					break
				}
				return derr
			}
			if rec.LSN <= maxLSN {
				continue // covered by the checkpoint
			}
			if rec.LSN != maxLSN+1 && maxLSN != 0 {
				return enginerr.Newf(enginerr.CodeRecoveryCorruption,
					"storage: log gap: record %d follows %d", rec.LSN, maxLSN)
			}
			maxLSN = rec.LSN
			switch {
			case rec.Commit != nil:
				err = h.Commit(rec.Commit)
			case rec.DDL != nil:
				err = h.DDL(rec.DDL)
			}
			if err != nil {
				return err
			}
			b.replayedRec.Add(1)
			b.replayedB.Add(int64(len(p)) + 8)
		}
		if torn && !last {
			return enginerr.Newf(enginerr.CodeRecoveryCorruption,
				"storage: torn record in non-final segment %d", seg)
		}
		if seg > b.seq {
			b.seq = seg
		}
	}

	// Appends continue in a fresh segment past any torn tail.
	b.nextLSN = maxLSN + 1
	b.durableLSN.Store(maxLSN)
	b.recovered = true
	b.lastCkptAt = time.Now()
	return b.rotateLocked()
}

// Stats returns the backend's counters.
func (b *DiskBackend) Stats() Stats {
	s := Stats{
		Durable:            true,
		WALBytes:           b.walBytes.Load(),
		WALRecords:         b.walRecords.Load(),
		Fsyncs:             b.fsyncs.Load(),
		GroupCommitBatches: b.batches.Load(),
		Checkpoints:        b.checkpoints.Load(),
		LastCheckpointMS:   -1,
		ReplayedRecords:    b.replayedRec.Load(),
		ReplayedBytes:      b.replayedB.Load(),
	}
	b.mu.Lock()
	if !b.lastCkptAt.IsZero() {
		s.LastCheckpointMS = time.Since(b.lastCkptAt).Milliseconds()
	}
	b.mu.Unlock()
	return s
}

// Close flushes staged records and releases the backend.
func (b *DiskBackend) Close() error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	var ferr error
	if b.recovered {
		ferr = b.flushLocked()
	}
	if b.file != nil {
		if cerr := b.file.Close(); ferr == nil {
			ferr = cerr
		}
		b.file = nil
	}
	b.closed = true
	return ferr
}
