// Package storage defines the engine's pluggable storage API — the
// boundary the paper's demo engine needed to cross to go from
// cache-scale to durable: a Backend that owns the write-ahead log,
// columnar checkpoints and recovery, and a Table contract that the
// in-memory columnar form (internal/catalog) implements as the default.
//
// # The Backend contract
//
// A Backend persists two things: a totally ordered redo log and
// periodic full snapshots (checkpoints). The engine drives it:
//
//   - AppendCommit is called from inside the MVCC commit critical
//     section, so records enter the log in commit-timestamp order.
//     It only stages the record; WaitDurable blocks until an fsync
//     covers it, letting concurrent commits share one fsync (group
//     commit).
//   - AppendDDL and AppendInstant stage schema changes and
//     legacy instant (non-transactional) writes under the same append
//     lock, keeping the log totally ordered.
//   - Checkpoint atomically replaces the log prefix with a snapshot.
//     The engine assembles the CheckpointData while holding the
//     backend's append lock (via BeginCheckpoint/EndCheckpoint), so a
//     record is either covered by the snapshot or positioned after it
//     — never both.
//   - Recover replays the newest valid checkpoint and every decodable
//     log record after it, stopping cleanly at a torn tail (a crash
//     mid-write) and returning CodeRecoveryCorruption for damage
//     before the tail.
//
// MemBackend is the default: nothing persists, every call is a no-op,
// and the engine's hot paths stay exactly as fast as before durability
// existed.
//
// # The Table contract
//
// Table is the data-plane interface the engine's DML layer and the
// MVCC restamping protocol require from a table implementation:
// transactional writes, the quiescent fast paths (TruncateQuiescent's
// physical reset, UpsertBatchTxn's in-place replace), snapshot scans,
// and the ApplyCommit/ApplyAbort restamping hooks. internal/catalog's
// columnar Table is the default implementation; an embedded-KV backend
// can slot in by implementing the same contract.
package storage

import (
	"openivm/internal/mvcc"
	"openivm/internal/sqltypes"
)

// Table is the storage contract between the engine/MVCC layers and a
// table implementation. catalog.Table implements it (asserted there at
// compile time); the engine's DML paths operate against this interface
// so the concrete snapshot arrays stay an implementation detail.
type Table interface {
	// mvcc.Store: commit restamps the write log's slots with the commit
	// timestamp, abort reverts them — the MVCC publication protocol.
	mvcc.Store

	// TableName returns the table's name (the identifier redo records
	// carry).
	TableName() string

	// Transactional writes. A nil transaction is a legacy instant write
	// (immediately visible at the latest committed timestamp).
	InsertTxn(tx *mvcc.Txn, row sqltypes.Row) error
	InsertBatchTxn(tx *mvcc.Txn, rows []sqltypes.Row) (int, error)
	InsertVecsTxn(tx *mvcc.Txn, cols []*sqltypes.Vector, n int) ([]sqltypes.Row, int, error)
	UpsertTxn(tx *mvcc.Txn, row sqltypes.Row) error
	UpsertBatchTxn(tx *mvcc.Txn, rows []sqltypes.Row) (inserted, replacedOld, replacedNew []sqltypes.Row, err error)
	UpdateTxn(tx *mvcc.Txn, pred func(sqltypes.Row) (bool, error), set func(sqltypes.Row) (sqltypes.Row, error)) (old, new []sqltypes.Row, err error)
	DeleteTxn(tx *mvcc.Txn, pred func(sqltypes.Row) (bool, error)) ([]sqltypes.Row, error)
	DeleteOne(row sqltypes.Row) bool

	// TruncateQuiescent is the O(1) physical truncate fast path, legal
	// only when no concurrent snapshot could observe the difference.
	TruncateQuiescent(tx *mvcc.Txn, wantRows bool) ([]sqltypes.Row, int, bool)
	Truncate()

	// Snapshot reads.
	RowsSnap(sn mvcc.Snapshot) []sqltypes.Row
	RowCount() int

	// RowAt returns the row stored in a write-log slot — how redo
	// records recover the payload of an insert/replace/delete op from
	// the undo log's slot references.
	RowAt(slot int32) sqltypes.Row

	// Unlogged reports whether the table is excluded from the WAL and
	// checkpoints (IVM-derived state, rebuilt on recovery).
	Unlogged() bool
}

// OpKind enumerates logical redo operations.
type OpKind uint8

const (
	// OpInsert appends a row.
	OpInsert OpKind = 1
	// OpDelete removes exactly one row equal to the payload.
	OpDelete OpKind = 2
	// OpUpsert inserts or replaces by primary key.
	OpUpsert OpKind = 3
	// OpTruncate clears the table (payload row is nil).
	OpTruncate OpKind = 4
)

// RedoOp is one logical redo operation against a named table. Rows
// carry computed values (never expressions), so replaying a committed
// prefix in log order reproduces the exact committed state regardless
// of the original snapshot interleaving.
type RedoOp struct {
	Table string
	Kind  OpKind
	Row   sqltypes.Row // nil for OpTruncate
}

// CommitRecord is the redo payload of one committed transaction (or
// one legacy instant write, CommitTS 0).
type CommitRecord struct {
	CommitTS uint64
	Ops      []RedoOp
}

// DDLKind enumerates logged schema changes.
type DDLKind uint8

const (
	DDLCreateTable DDLKind = 1
	DDLCreateIndex DDLKind = 2
	DDLCreateView  DDLKind = 3
	// DDLCreateMatView records a materialized view by its defining
	// SELECT; recovery re-executes the CREATE through the IVM extension
	// after base state is restored, which rebuilds the view's storage,
	// delta tables and capture triggers in one stroke.
	DDLCreateMatView DDLKind = 4
	DDLDrop          DDLKind = 5
)

// ColumnDef is the durable form of a column definition.
type ColumnDef struct {
	Name       string
	Type       sqltypes.Type
	NotNull    bool
	HasDefault bool
	Default    sqltypes.Value
}

// IndexDef is the durable form of a secondary index definition.
type IndexDef struct {
	Name    string
	Columns []string
	Unique  bool
}

// DDLRecord is one logged schema change. Fields are populated by kind:
// create-table carries Columns/PrimaryKey (+ Rows for CREATE TABLE AS
// SELECT, whose population is not transactional DML); create-index
// carries Table/Columns/Unique; views carry SQL (the defining SELECT);
// drop carries ObjectKind ("TABLE" or "VIEW").
type DDLRecord struct {
	Kind       DDLKind
	Name       string
	Table      string
	ObjectKind string
	Columns    []ColumnDef
	PrimaryKey []string
	IdxColumns []string
	Unique     bool
	SQL        string
	Rows       []sqltypes.Row
}

// TableSnap is one logged table's schema and visible rows inside a
// checkpoint. Rows are stored column-major in the file (columnar
// checkpoint of the snapshot arrays) but decode back to rows.
type TableSnap struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
	Indexes    []IndexDef
	Rows       []sqltypes.Row
}

// ViewSnap is a (materialized or plain) view's name and defining SQL.
type ViewSnap struct {
	Name string
	SQL  string
}

// CheckpointData is a full engine snapshot: every logged table at one
// consistent MVCC read timestamp, plus view definitions. Materialized
// views are recorded by definition only — recovery rebuilds them from
// base state, which also re-arms their capture triggers.
type CheckpointData struct {
	LastLSN  uint64 // log records with LSN <= LastLSN are covered
	LastTS   uint64 // MVCC timestamp of the snapshot (informational)
	Tables   []TableSnap
	Views    []ViewSnap
	MatViews []ViewSnap
}

// RecoveryHandler receives the durable history during Recover, in
// order: at most one Checkpoint call first, then each log record.
type RecoveryHandler interface {
	Checkpoint(snap *CheckpointData) error
	Commit(rec *CommitRecord) error
	DDL(rec *DDLRecord) error
}

// Stats is a backend's counter snapshot, surfaced through the wire
// stats op's storage.* namespace.
type Stats struct {
	Durable            bool
	WALBytes           int64 // bytes appended to the log since open
	WALRecords         int64 // records appended since open
	Fsyncs             int64 // log fsync calls
	GroupCommitBatches int64 // log flushes that covered >= 1 record
	Checkpoints        int64 // checkpoints written since open
	LastCheckpointMS   int64 // ms since the last checkpoint (-1: never)
	ReplayedRecords    int64 // log records replayed by Recover
	ReplayedBytes      int64 // log bytes replayed by Recover
}

// Backend owns durability for one engine instance. Implementations
// must allow concurrent WaitDurable callers; Append* calls are
// externally serialized by the engine (MVCC commit lock or the
// backend's own append locking via the engine's instant/DDL paths).
type Backend interface {
	// Durable reports whether the backend persists anything. The
	// engine skips redo capture entirely when false.
	Durable() bool

	// AppendCommit stages a commit record, returning its log sequence
	// number. Called in commit order under the MVCC commit lock.
	AppendCommit(rec *CommitRecord) (lsn uint64, err error)

	// WaitDurable blocks until every record with sequence <= lsn is on
	// stable storage, batching concurrent waiters behind one fsync.
	WaitDurable(lsn uint64) error

	// AppendDDL stages a schema change and makes it durable before
	// returning (DDL is rare; it pays its own fsync).
	AppendDDL(rec *DDLRecord) error

	// AppendInstant stages a legacy instant write record and makes it
	// durable before returning.
	AppendInstant(rec *CommitRecord) error

	// BeginCheckpoint freezes the log (append lock held) and returns
	// the LSN of the last staged record. The engine assembles the
	// snapshot while the log is frozen, then calls Checkpoint (which
	// releases the freeze) or EndCheckpoint to abandon it.
	BeginCheckpoint() (lastLSN uint64, err error)

	// Checkpoint durably writes snap, rotates the log, discards
	// segments the snapshot covers, and releases the freeze taken by
	// BeginCheckpoint.
	Checkpoint(snap *CheckpointData) error

	// EndCheckpoint releases the freeze without writing a snapshot.
	EndCheckpoint()

	// NeedCheckpoint reports whether enough log has accumulated since
	// the last checkpoint that the engine should take one.
	NeedCheckpoint() bool

	// Recover replays the newest valid checkpoint and the log into h.
	// It must be called once, before any Append.
	Recover(h RecoveryHandler) error

	// Stats returns the backend's counters.
	Stats() Stats

	// Close flushes and releases the backend.
	Close() error
}

// MemBackend is the default in-memory backend: nothing persists and
// every operation is a no-op, so an engine without a data directory
// pays nothing for the durability API.
type MemBackend struct{}

var _ Backend = MemBackend{}

func (MemBackend) Durable() bool                              { return false }
func (MemBackend) AppendCommit(*CommitRecord) (uint64, error) { return 0, nil }
func (MemBackend) WaitDurable(uint64) error                   { return nil }
func (MemBackend) AppendDDL(*DDLRecord) error                 { return nil }
func (MemBackend) AppendInstant(*CommitRecord) error          { return nil }
func (MemBackend) BeginCheckpoint() (uint64, error)           { return 0, nil }
func (MemBackend) Checkpoint(*CheckpointData) error           { return nil }
func (MemBackend) EndCheckpoint()                             {}
func (MemBackend) NeedCheckpoint() bool                       { return false }
func (MemBackend) Recover(RecoveryHandler) error              { return nil }
func (MemBackend) Stats() Stats                               { return Stats{LastCheckpointMS: -1} }
func (MemBackend) Close() error                               { return nil }
