// Binary codec for WAL records and checkpoint payloads. Everything is
// length-prefixed little-endian with varints; each WAL record and each
// checkpoint file carries a CRC32-Castagnoli so a torn or corrupted
// write is detected rather than replayed.
package storage

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"openivm/internal/enginerr"
	"openivm/internal/sqltypes"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record types inside a WAL record payload.
const (
	recCommit  byte = 1
	recDDL     byte = 2
	recInstant byte = 3
)

// Record is one decoded WAL record: exactly one of Commit and DDL is
// set (an instant write decodes as a Commit with CommitTS 0).
type Record struct {
	LSN     uint64
	Instant bool
	Commit  *CommitRecord
	DDL     *DDLRecord
}

// --- primitive appenders ---

func appendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v sqltypes.Value) []byte {
	dst = append(dst, byte(v.T))
	switch v.T {
	case sqltypes.TypeBool:
		if v.B {
			return append(dst, 1)
		}
		return append(dst, 0)
	case sqltypes.TypeInt:
		return binary.AppendVarint(dst, v.I)
	case sqltypes.TypeFloat:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case sqltypes.TypeString:
		return appendString(dst, v.S)
	}
	return dst // NULL and ANY carry no payload
}

func appendRow(dst []byte, r sqltypes.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = appendValue(dst, v)
	}
	return dst
}

// --- primitive readers ---

// reader is a bounds-checked cursor over a record payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) fail(what string) error {
	return enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: truncated %s at offset %d", what, r.off)
}

func (r *reader) byteVal(what string) (byte, error) {
	if r.off >= len(r.b) {
		return 0, r.fail(what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.off) {
		return "", r.fail(what)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) value() (sqltypes.Value, error) {
	t, err := r.byteVal("value tag")
	if err != nil {
		return sqltypes.Null, err
	}
	switch sqltypes.Type(t) {
	case sqltypes.TypeNull, sqltypes.TypeAny:
		return sqltypes.Null, nil
	case sqltypes.TypeBool:
		b, err := r.byteVal("bool")
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(b != 0), nil
	case sqltypes.TypeInt:
		i, err := r.varint("int")
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(i), nil
	case sqltypes.TypeFloat:
		if len(r.b)-r.off < 8 {
			return sqltypes.Null, r.fail("float")
		}
		bits := binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
		return sqltypes.NewFloat(math.Float64frombits(bits)), nil
	case sqltypes.TypeString:
		s, err := r.str("string")
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewString(s), nil
	}
	return sqltypes.Null, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: unknown value tag %d at offset %d", t, r.off)
}

// maxDecode caps decoded collection sizes so a corrupted length prefix
// cannot drive a giant allocation before the bounds checks catch it.
const maxDecode = 1 << 24

func (r *reader) count(what string) (int, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if n > maxDecode {
		return 0, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: implausible %s count %d", what, n)
	}
	return int(n), nil
}

func (r *reader) row() (sqltypes.Row, error) {
	n, err := r.count("row cells")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	row := make(sqltypes.Row, n)
	for i := range row {
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// --- record encode/decode ---

// appendCommitPayload encodes a commit/instant record payload.
func appendCommitPayload(dst []byte, lsn uint64, rec *CommitRecord, instant bool) []byte {
	typ := recCommit
	if instant {
		typ = recInstant
	}
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, lsn)
	dst = binary.AppendUvarint(dst, rec.CommitTS)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		dst = append(dst, byte(op.Kind))
		dst = appendString(dst, op.Table)
		if op.Kind != OpTruncate {
			dst = appendRow(dst, op.Row)
		}
	}
	return dst
}

// appendDDLPayload encodes a DDL record payload.
func appendDDLPayload(dst []byte, lsn uint64, rec *DDLRecord) []byte {
	dst = append(dst, recDDL)
	dst = binary.AppendUvarint(dst, lsn)
	dst = append(dst, byte(rec.Kind))
	dst = appendString(dst, rec.Name)
	dst = appendString(dst, rec.Table)
	dst = appendString(dst, rec.ObjectKind)
	dst = appendString(dst, rec.SQL)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Columns)))
	for _, c := range rec.Columns {
		dst = appendColumnDef(dst, c)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rec.PrimaryKey)))
	for _, s := range rec.PrimaryKey {
		dst = appendString(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rec.IdxColumns)))
	for _, s := range rec.IdxColumns {
		dst = appendString(dst, s)
	}
	if rec.Unique {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rec.Rows)))
	for _, r := range rec.Rows {
		dst = appendRow(dst, r)
	}
	return dst
}

func appendColumnDef(dst []byte, c ColumnDef) []byte {
	dst = appendString(dst, c.Name)
	dst = append(dst, byte(c.Type))
	var flags byte
	if c.NotNull {
		flags |= 1
	}
	if c.HasDefault {
		flags |= 2
	}
	dst = append(dst, flags)
	if c.HasDefault {
		dst = appendValue(dst, c.Default)
	}
	return dst
}

func (r *reader) columnDef() (ColumnDef, error) {
	var c ColumnDef
	var err error
	if c.Name, err = r.str("column name"); err != nil {
		return c, err
	}
	t, err := r.byteVal("column type")
	if err != nil {
		return c, err
	}
	c.Type = sqltypes.Type(t)
	flags, err := r.byteVal("column flags")
	if err != nil {
		return c, err
	}
	c.NotNull = flags&1 != 0
	c.HasDefault = flags&2 != 0
	if c.HasDefault {
		if c.Default, err = r.value(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// DecodeRecord decodes one WAL record payload (the bytes inside the
// length+CRC framing). It is exported for the WAL fuzz target: on any
// input it must either return a well-formed Record or an error — never
// panic.
func DecodeRecord(payload []byte) (*Record, error) {
	r := &reader{b: payload}
	typ, err := r.byteVal("record type")
	if err != nil {
		return nil, err
	}
	lsn, err := r.uvarint("lsn")
	if err != nil {
		return nil, err
	}
	out := &Record{LSN: lsn}
	switch typ {
	case recCommit, recInstant:
		out.Instant = typ == recInstant
		cr := &CommitRecord{}
		if cr.CommitTS, err = r.uvarint("commit ts"); err != nil {
			return nil, err
		}
		nops, err := r.count("ops")
		if err != nil {
			return nil, err
		}
		cr.Ops = make([]RedoOp, 0, min(nops, 4096))
		for i := 0; i < nops; i++ {
			var op RedoOp
			k, err := r.byteVal("op kind")
			if err != nil {
				return nil, err
			}
			op.Kind = OpKind(k)
			if op.Kind < OpInsert || op.Kind > OpTruncate {
				return nil, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: unknown redo op kind %d", k)
			}
			if op.Table, err = r.str("op table"); err != nil {
				return nil, err
			}
			if op.Kind != OpTruncate {
				if op.Row, err = r.row(); err != nil {
					return nil, err
				}
			}
			cr.Ops = append(cr.Ops, op)
		}
		out.Commit = cr
	case recDDL:
		dr := &DDLRecord{}
		k, err := r.byteVal("ddl kind")
		if err != nil {
			return nil, err
		}
		dr.Kind = DDLKind(k)
		if dr.Kind < DDLCreateTable || dr.Kind > DDLDrop {
			return nil, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: unknown ddl kind %d", k)
		}
		if dr.Name, err = r.str("ddl name"); err != nil {
			return nil, err
		}
		if dr.Table, err = r.str("ddl table"); err != nil {
			return nil, err
		}
		if dr.ObjectKind, err = r.str("ddl object kind"); err != nil {
			return nil, err
		}
		if dr.SQL, err = r.str("ddl sql"); err != nil {
			return nil, err
		}
		ncols, err := r.count("ddl columns")
		if err != nil {
			return nil, err
		}
		for i := 0; i < ncols; i++ {
			c, err := r.columnDef()
			if err != nil {
				return nil, err
			}
			dr.Columns = append(dr.Columns, c)
		}
		npk, err := r.count("ddl pk")
		if err != nil {
			return nil, err
		}
		for i := 0; i < npk; i++ {
			s, err := r.str("pk column")
			if err != nil {
				return nil, err
			}
			dr.PrimaryKey = append(dr.PrimaryKey, s)
		}
		nidx, err := r.count("ddl index columns")
		if err != nil {
			return nil, err
		}
		for i := 0; i < nidx; i++ {
			s, err := r.str("index column")
			if err != nil {
				return nil, err
			}
			dr.IdxColumns = append(dr.IdxColumns, s)
		}
		u, err := r.byteVal("unique flag")
		if err != nil {
			return nil, err
		}
		dr.Unique = u != 0
		nrows, err := r.count("ddl rows")
		if err != nil {
			return nil, err
		}
		for i := 0; i < nrows; i++ {
			row, err := r.row()
			if err != nil {
				return nil, err
			}
			dr.Rows = append(dr.Rows, row)
		}
		out.DDL = dr
	default:
		return nil, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: unknown record type %d", typ)
	}
	if r.off != len(payload) {
		return nil, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: %d trailing bytes after record", len(payload)-r.off)
	}
	return out, nil
}

// frameRecord wraps an encoded payload with the on-disk framing:
// 4-byte little-endian length, 4-byte CRC32-C, payload.
func frameRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// readFrame extracts the next framed payload from b. It returns the
// payload, the remaining bytes, and ok=false at a clean or torn tail
// (not enough bytes for the frame, or a CRC mismatch — the crash
// boundary).
func readFrame(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < 8 {
		return nil, b, false
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxRecordBytes || uint64(len(b)-8) < uint64(n) {
		return nil, b, false
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	payload = b[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, b, false
	}
	return payload, b[8+n:], true
}

// maxRecordBytes bounds one WAL record (64 MiB) — larger length
// prefixes are treated as corruption/torn writes.
const maxRecordBytes = 64 << 20

// --- checkpoint encode/decode ---

var ckptMagic = [8]byte{'O', 'I', 'V', 'M', 'C', 'K', 'P', '1'}

// encodeCheckpoint serializes snap: magic, payload, trailing CRC32-C.
// Table rows are laid out column-major — the columnar checkpoint of
// the snapshot arrays.
func encodeCheckpoint(snap *CheckpointData) []byte {
	dst := append([]byte(nil), ckptMagic[:]...)
	body := make([]byte, 0, 4096)
	body = binary.AppendUvarint(body, snap.LastLSN)
	body = binary.AppendUvarint(body, snap.LastTS)
	body = binary.AppendUvarint(body, uint64(len(snap.Tables)))
	for _, t := range snap.Tables {
		body = appendString(body, t.Name)
		body = binary.AppendUvarint(body, uint64(len(t.Columns)))
		for _, c := range t.Columns {
			body = appendColumnDef(body, c)
		}
		body = binary.AppendUvarint(body, uint64(len(t.PrimaryKey)))
		for _, s := range t.PrimaryKey {
			body = appendString(body, s)
		}
		body = binary.AppendUvarint(body, uint64(len(t.Indexes)))
		for _, ix := range t.Indexes {
			body = appendString(body, ix.Name)
			body = binary.AppendUvarint(body, uint64(len(ix.Columns)))
			for _, s := range ix.Columns {
				body = appendString(body, s)
			}
			if ix.Unique {
				body = append(body, 1)
			} else {
				body = append(body, 0)
			}
		}
		body = binary.AppendUvarint(body, uint64(len(t.Rows)))
		// Column-major cell layout.
		for col := range t.Columns {
			for _, row := range t.Rows {
				if col < len(row) {
					body = appendValue(body, row[col])
				} else {
					body = appendValue(body, sqltypes.Null)
				}
			}
		}
	}
	body = binary.AppendUvarint(body, uint64(len(snap.Views)))
	for _, v := range snap.Views {
		body = appendString(body, v.Name)
		body = appendString(body, v.SQL)
	}
	body = binary.AppendUvarint(body, uint64(len(snap.MatViews)))
	for _, v := range snap.MatViews {
		body = appendString(body, v.Name)
		body = appendString(body, v.SQL)
	}
	dst = append(dst, body...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
}

// decodeCheckpoint parses and verifies a checkpoint file image.
func decodeCheckpoint(b []byte) (*CheckpointData, error) {
	if len(b) < len(ckptMagic)+4 || string(b[:len(ckptMagic)]) != string(ckptMagic[:]) {
		return nil, enginerr.New(enginerr.CodeRecoveryCorruption, "storage: not a checkpoint file")
	}
	body := b[len(ckptMagic) : len(b)-4]
	sum := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, enginerr.New(enginerr.CodeRecoveryCorruption, "storage: checkpoint checksum mismatch")
	}
	r := &reader{b: body}
	snap := &CheckpointData{}
	var err error
	if snap.LastLSN, err = r.uvarint("checkpoint lsn"); err != nil {
		return nil, err
	}
	if snap.LastTS, err = r.uvarint("checkpoint ts"); err != nil {
		return nil, err
	}
	ntables, err := r.count("tables")
	if err != nil {
		return nil, err
	}
	for i := 0; i < ntables; i++ {
		var t TableSnap
		if t.Name, err = r.str("table name"); err != nil {
			return nil, err
		}
		ncols, err := r.count("columns")
		if err != nil {
			return nil, err
		}
		for j := 0; j < ncols; j++ {
			c, err := r.columnDef()
			if err != nil {
				return nil, err
			}
			t.Columns = append(t.Columns, c)
		}
		npk, err := r.count("pk")
		if err != nil {
			return nil, err
		}
		for j := 0; j < npk; j++ {
			s, err := r.str("pk column")
			if err != nil {
				return nil, err
			}
			t.PrimaryKey = append(t.PrimaryKey, s)
		}
		nidx, err := r.count("indexes")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nidx; j++ {
			var ix IndexDef
			if ix.Name, err = r.str("index name"); err != nil {
				return nil, err
			}
			nic, err := r.count("index columns")
			if err != nil {
				return nil, err
			}
			for k := 0; k < nic; k++ {
				s, err := r.str("index column")
				if err != nil {
					return nil, err
				}
				ix.Columns = append(ix.Columns, s)
			}
			u, err := r.byteVal("index unique")
			if err != nil {
				return nil, err
			}
			ix.Unique = u != 0
			t.Indexes = append(t.Indexes, ix)
		}
		nrows, err := r.count("rows")
		if err != nil {
			return nil, err
		}
		t.Rows = make([]sqltypes.Row, nrows)
		for j := range t.Rows {
			t.Rows[j] = make(sqltypes.Row, ncols)
		}
		for col := 0; col < ncols; col++ {
			for j := 0; j < nrows; j++ {
				v, err := r.value()
				if err != nil {
					return nil, err
				}
				t.Rows[j][col] = v
			}
		}
		snap.Tables = append(snap.Tables, t)
	}
	nviews, err := r.count("views")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nviews; i++ {
		var v ViewSnap
		if v.Name, err = r.str("view name"); err != nil {
			return nil, err
		}
		if v.SQL, err = r.str("view sql"); err != nil {
			return nil, err
		}
		snap.Views = append(snap.Views, v)
	}
	nmv, err := r.count("matviews")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nmv; i++ {
		var v ViewSnap
		if v.Name, err = r.str("matview name"); err != nil {
			return nil, err
		}
		if v.SQL, err = r.str("matview sql"); err != nil {
			return nil, err
		}
		snap.MatViews = append(snap.MatViews, v)
	}
	if r.off != len(body) {
		return nil, enginerr.Newf(enginerr.CodeRecoveryCorruption, "storage: %d trailing bytes after checkpoint", len(body)-r.off)
	}
	return snap, nil
}
