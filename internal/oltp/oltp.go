// Package oltp implements the PostgreSQL stand-in of the paper's
// cross-system demo: a row-store SQL engine speaking the PostgreSQL
// dialect (ON CONFLICT upserts, TEXT/DOUBLE PRECISION types) with
// row-level triggers for update capture. Following the paper, the OLTP
// side carries no IVM logic of its own — "for PostgreSQL (or any
// alternative system), users are required to configure these triggers
// independently" — so this package provides exactly that configuration:
// a generic `ivm_capture` trigger handler that appends (row,
// multiplicity) pairs to delta tables, plus a helper that creates the
// delta table and trigger for a base table in one call.
package oltp

import (
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/engine"
	"openivm/internal/ivm"
	"openivm/internal/sqltypes"
)

// Store is a PostgreSQL-like transactional store.
type Store struct {
	DB *engine.DB
}

// New creates a store with the generic delta-capture trigger handler
// registered under the name "ivm_capture", so that plain SQL can attach
// capture to any table:
//
//	CREATE TRIGGER cap AFTER INSERT OR DELETE OR UPDATE ON orders
//	FOR EACH ROW EXECUTE 'ivm_capture'
func New(name string) *Store {
	db := engine.Open(name, engine.DialectPostgres)
	s := &Store{DB: db}
	db.RegisterTriggerHandler("ivm_capture", s.capture)
	return s
}

// deltaName derives the delta table fed by a capture trigger on table.
func deltaName(table string) string { return "delta_" + strings.ToLower(table) }

// capture is the trigger body: append affected rows to delta_<table> with
// the boolean multiplicity column (insert=TRUE, delete=FALSE; updates are
// a FALSE/TRUE pair).
func (s *Store) capture(db *engine.DB, table string, ev engine.TriggerEvent, oldRows, newRows []sqltypes.Row) error {
	dt, err := db.Catalog().Table(deltaName(table))
	if err != nil {
		return fmt.Errorf("oltp: capture on %s: %w (create the delta table first)", table, err)
	}
	add := func(rows []sqltypes.Row, mult bool) error {
		for _, r := range rows {
			dr := make(sqltypes.Row, 0, len(r)+1)
			dr = append(dr, r...)
			dr = append(dr, sqltypes.NewBool(mult))
			if err := dt.Insert(dr); err != nil {
				return err
			}
		}
		return nil
	}
	switch ev {
	case engine.TrigInsert:
		return add(newRows, true)
	case engine.TrigDelete:
		return add(oldRows, false)
	case engine.TrigUpdate:
		if err := add(oldRows, false); err != nil {
			return err
		}
		return add(newRows, true)
	}
	return nil
}

// EnableCapture creates the delta table for a base table and attaches the
// capture trigger — the per-table configuration the paper leaves to the
// PostgreSQL user.
func (s *Store) EnableCapture(table string) error {
	tbl, err := s.DB.Catalog().Table(table)
	if err != nil {
		return err
	}
	var cols []string
	for _, c := range tbl.Columns {
		cols = append(cols, fmt.Sprintf("%s %s", c.Name, pgType(c.Type)))
	}
	cols = append(cols, ivm.MultiplicityColumn+" BOOLEAN")
	ddl := fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s (%s)", deltaName(table), strings.Join(cols, ", "))
	if _, err := s.DB.Exec(ddl); err != nil {
		return err
	}
	trig := fmt.Sprintf(
		"CREATE TRIGGER ivm_capture_%s AFTER INSERT OR DELETE OR UPDATE ON %s FOR EACH ROW EXECUTE 'ivm_capture'",
		table, table)
	_, err = s.DB.Exec(trig)
	return err
}

// DeltaTable returns the delta table name for a base table.
func (s *Store) DeltaTable(table string) string { return deltaName(table) }

// DrainDeltas returns the buffered delta rows for a table and clears them
// (the pull step of cross-system propagation).
func (s *Store) DrainDeltas(table string) ([]sqltypes.Row, error) {
	dt, err := s.DB.Catalog().Table(deltaName(table))
	if err != nil {
		return nil, err
	}
	rows := dt.Rows()
	out := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	dt.Truncate()
	return out, nil
}

// PendingDeltas reports the number of buffered delta rows for a table.
func (s *Store) PendingDeltas(table string) int {
	dt, err := s.DB.Catalog().Table(deltaName(table))
	if err != nil {
		return 0
	}
	return dt.RowCount()
}

// TableColumns exposes a table's schema for remote mirroring.
func (s *Store) TableColumns(table string) ([]catalog.Column, error) {
	tbl, err := s.DB.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	return tbl.Columns, nil
}

func pgType(t sqltypes.Type) string {
	switch t {
	case sqltypes.TypeString:
		return "TEXT"
	case sqltypes.TypeFloat:
		return "DOUBLE PRECISION"
	case sqltypes.TypeBool:
		return "BOOLEAN"
	default:
		return "INTEGER"
	}
}
