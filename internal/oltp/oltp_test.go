package oltp

import (
	"testing"

	"openivm/internal/sqltypes"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s := New("pg")
	if _, err := s.DB.Exec("CREATE TABLE orders (oid INTEGER PRIMARY KEY, amount INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableCapture("orders"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCaptureInsert(t *testing.T) {
	s := newStore(t)
	if _, err := s.DB.Exec("INSERT INTO orders VALUES (1, 10), (2, 20)"); err != nil {
		t.Fatal(err)
	}
	if n := s.PendingDeltas("orders"); n != 2 {
		t.Fatalf("pending = %d", n)
	}
	rows, err := s.DrainDeltas("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !rows[0][2].IsTrue() {
		t.Fatalf("rows = %v", rows)
	}
	if s.PendingDeltas("orders") != 0 {
		t.Error("drain did not clear")
	}
}

func TestCaptureDeleteUpdate(t *testing.T) {
	s := newStore(t)
	s.DB.Exec("INSERT INTO orders VALUES (1, 10)")
	s.DrainDeltas("orders")

	s.DB.Exec("UPDATE orders SET amount = 15 WHERE oid = 1")
	rows, _ := s.DrainDeltas("orders")
	if len(rows) != 2 {
		t.Fatalf("update should capture 2 rows, got %d", len(rows))
	}
	var sawOld, sawNew bool
	for _, r := range rows {
		if !r[2].IsTrue() && r[1].I == 10 {
			sawOld = true
		}
		if r[2].IsTrue() && r[1].I == 15 {
			sawNew = true
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("update pair wrong: %v", rows)
	}

	s.DB.Exec("DELETE FROM orders WHERE oid = 1")
	rows, _ = s.DrainDeltas("orders")
	if len(rows) != 1 || rows[0][2].IsTrue() {
		t.Fatalf("delete capture wrong: %v", rows)
	}
}

func TestPostgresDialectUpsert(t *testing.T) {
	s := newStore(t)
	s.DB.Exec("INSERT INTO orders VALUES (1, 10)")
	if _, err := s.DB.Exec("INSERT INTO orders VALUES (1, 99) ON CONFLICT (oid) DO UPDATE SET amount = EXCLUDED.amount"); err != nil {
		t.Fatal(err)
	}
	r, _ := s.DB.Exec("SELECT amount FROM orders WHERE oid = 1")
	if r.Rows[0][0].I != 99 {
		t.Fatalf("got %v", r.Rows)
	}
}

func TestCaptureWithoutDeltaTableErrors(t *testing.T) {
	s := New("pg")
	s.DB.Exec("CREATE TABLE t (a INTEGER)")
	// Trigger attached manually without creating the delta table.
	if _, err := s.DB.Exec("CREATE TRIGGER bad AFTER INSERT ON t FOR EACH ROW EXECUTE 'ivm_capture'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("capture without delta table should fail loudly")
	}
}

func TestTransactionalWorkload(t *testing.T) {
	s := newStore(t)
	s.DB.Exec("BEGIN")
	s.DB.Exec("INSERT INTO orders VALUES (10, 100)")
	s.DB.Exec("COMMIT")
	r, _ := s.DB.Exec("SELECT COUNT(*) FROM orders")
	if r.Rows[0][0].I != 1 {
		t.Fatalf("got %v", r.Rows)
	}
}

func TestTableColumns(t *testing.T) {
	s := newStore(t)
	cols, err := s.TableColumns("orders")
	if err != nil || len(cols) != 2 || cols[0].Name != "oid" {
		t.Fatalf("cols = %v, %v", cols, err)
	}
	if _, err := s.TableColumns("missing"); err == nil {
		t.Error("missing table should error")
	}
}

func TestPGTypeMapping(t *testing.T) {
	cases := map[sqltypes.Type]string{
		sqltypes.TypeString: "TEXT",
		sqltypes.TypeFloat:  "DOUBLE PRECISION",
		sqltypes.TypeBool:   "BOOLEAN",
		sqltypes.TypeInt:    "INTEGER",
	}
	for ty, want := range cases {
		if got := pgType(ty); got != want {
			t.Errorf("pgType(%v) = %q, want %q", ty, got, want)
		}
	}
}
