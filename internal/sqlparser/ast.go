package sqlparser

import (
	"strconv"
	"strings"

	"openivm/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed scalar expression.
type Expr interface{ expr() }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ColumnRef is a possibly qualified column reference (t.a or a), or a star
// (t.* or *) when Star is set.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
	Star   bool
}

// Literal is a constant value.
type Literal struct{ Value sqltypes.Value }

// BinaryExpr is a binary operation. Op is one of:
// + - * / % = <> < <= > >= AND OR LIKE || .
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr is NOT x or -x (Op "NOT" or "-").
type UnaryExpr struct {
	Op      string
	Operand Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Operand, Lo, Hi Expr
	Negate          bool
}

// CaseExpr is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // nil -> NULL
}

// CaseWhen is one WHEN/THEN arm of a CaseExpr.
type CaseWhen struct{ When, Then Expr }

// FuncExpr is a function call: aggregates (SUM, COUNT, MIN, MAX, AVG) and
// scalar functions (COALESCE, ABS, ...). Name is upper-cased.
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// CastExpr is CAST(e AS type) or e::type.
type CastExpr struct {
	Operand  Expr
	TypeName string
}

// SubqueryExpr is a scalar subquery (SELECT ...) used as an expression.
type SubqueryExpr struct{ Select *SelectStmt }

// ParamExpr is a positional statement parameter ($1, $2, ...) bound with a
// value per execution (wire prepared statements). Index is 1-based.
type ParamExpr struct{ Index int }

func (*ColumnRef) expr()    {}
func (*Literal) expr()      {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*IsNullExpr) expr()   {}
func (*InExpr) expr()       {}
func (*BetweenExpr) expr()  {}
func (*CaseExpr) expr()     {}
func (*FuncExpr) expr()     {}
func (*CastExpr) expr()     {}
func (*SubqueryExpr) expr() {}
func (*ParamExpr) expr()    {}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// TableRef is an element of the FROM clause.
type TableRef interface{ tableRef() }

// NamedTable references a catalog table or view, optionally aliased.
type NamedTable struct {
	Schema string // optional, e.g. pg.public
	Name   string
	Alias  string
}

// SubqueryTable is a derived table (SELECT ...) AS alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

// JoinTable is an explicit join between two table refs.
type JoinTable struct {
	Kind  JoinKind
	Left  TableRef
	Right TableRef
	On    Expr     // nil for CROSS or USING
	Using []string // non-empty for USING(...)
}

// JoinKind enumerates join flavours.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

// String returns the SQL spelling of the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "JOIN"
}

func (*NamedTable) tableRef()    {}
func (*SubqueryTable) tableRef() {}
func (*JoinTable) tableRef()     {}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CTE is one WITH-clause entry.
type CTE struct {
	Name   string
	Select *SelectStmt
}

// SetOp connects a SelectStmt to the next term of a set operation chain.
type SetOp uint8

// Set operations.
const (
	SetNone SetOp = iota
	SetUnion
	SetUnionAll
	SetExcept
	SetExceptAll
	SetIntersect
)

// SelectStmt is a SELECT query, possibly a VALUES list, possibly the head
// of a set-operation chain (Next/NextOp).
type SelectStmt struct {
	CTEs     []CTE
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil = SELECT without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr
	// Values is set for a VALUES (...),(...) "select"; Items/From unused.
	Values [][]Expr
	// Set-operation chain: this SELECT <NextOp> Next.
	NextOp SetOp
	Next   *SelectStmt
}

func (*SelectStmt) stmt() {}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// ColumnDef is a column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	TypeName   string
	Type       sqltypes.Type
	NotNull    bool
	PrimaryKey bool
	Default    Expr
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols..., [PRIMARY KEY(...)]).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // table-level primary key columns
	AsSelect    *SelectStmt
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table(cols).
type CreateIndexStmt struct {
	Name        string
	Table       string
	Columns     []string
	Unique      bool
	IfNotExists bool
}

// CreateViewStmt is CREATE [MATERIALIZED] VIEW name AS select.
type CreateViewStmt struct {
	Name         string
	Materialized bool
	Select       *SelectStmt
	// SourceSQL preserves the original view definition text so the IVM
	// compiler can store it in metadata.
	SourceSQL string
}

// DropStmt is DROP TABLE|VIEW|INDEX [IF EXISTS] name.
type DropStmt struct {
	Kind     string // "TABLE", "VIEW", "INDEX"
	Name     string
	IfExists bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*CreateViewStmt) stmt()  {}
func (*DropStmt) stmt()        {}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// OnConflict describes the PostgreSQL-dialect conflict clause.
type OnConflict struct {
	Columns   []string // conflict target
	DoNothing bool
	// Set assignments for DO UPDATE SET col = expr (EXCLUDED.col allowed).
	Set []Assignment
}

// Assignment is col = expr in UPDATE / DO UPDATE SET.
type Assignment struct {
	Column string
	Value  Expr
}

// InsertStmt is INSERT [OR REPLACE] INTO t [(cols)] VALUES ... | SELECT ...
// with optional ON CONFLICT (PostgreSQL dialect).
type InsertStmt struct {
	Table     string
	Columns   []string
	Select    *SelectStmt // VALUES lists parse into Select.Values
	OrReplace bool        // DuckDB dialect INSERT OR REPLACE
	Conflict  *OnConflict // PostgreSQL dialect
}

// UpdateStmt is UPDATE t SET a=e, ... [WHERE p].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// DeleteStmt is DELETE FROM t [WHERE p].
type DeleteStmt struct {
	Table string
	Where Expr
}

// TruncateStmt is TRUNCATE [TABLE] t  (also parsed from DELETE FROM t with
// no WHERE by some engines; we keep them distinct).
type TruncateStmt struct{ Table string }

func (*InsertStmt) stmt()   {}
func (*UpdateStmt) stmt()   {}
func (*DeleteStmt) stmt()   {}
func (*TruncateStmt) stmt() {}

// ---------------------------------------------------------------------------
// Misc statements
// ---------------------------------------------------------------------------

// BeginStmt, CommitStmt, RollbackStmt are transaction control.
type BeginStmt struct{}

// CommitStmt commits the current transaction.
type CommitStmt struct{}

// RollbackStmt aborts the current transaction.
type RollbackStmt struct{}

// ExplainStmt wraps another statement for plan display.
type ExplainStmt struct{ Stmt Statement }

// RefreshStmt is REFRESH MATERIALIZED VIEW name — triggers lazy IVM
// propagation.
type RefreshStmt struct{ View string }

// PragmaStmt is PRAGMA name[=value] — engine-specific switches.
type PragmaStmt struct {
	Name  string
	Value string
}

// CreateTriggerStmt is the minimal PostgreSQL-style trigger DDL used by the
// OLTP engine for delta capture:
//
//	CREATE TRIGGER name AFTER INSERT OR DELETE OR UPDATE ON table
//	FOR EACH ROW EXECUTE 'handler'
type CreateTriggerStmt struct {
	Name    string
	Table   string
	Events  []string // subset of INSERT, DELETE, UPDATE
	Handler string   // engine-registered handler key
}

func (*BeginStmt) stmt()         {}
func (*CommitStmt) stmt()        {}
func (*RollbackStmt) stmt()      {}
func (*ExplainStmt) stmt()       {}
func (*RefreshStmt) stmt()       {}
func (*PragmaStmt) stmt()        {}
func (*CreateTriggerStmt) stmt() {}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// WalkExpr visits e and all sub-expressions depth-first; fn returning false
// stops descent into that subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *UnaryExpr:
		WalkExpr(x.Operand, fn)
	case *IsNullExpr:
		WalkExpr(x.Operand, fn)
	case *InExpr:
		WalkExpr(x.Operand, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.Operand, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *CaseExpr:
		WalkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExpr(w.When, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *CastExpr:
		WalkExpr(x.Operand, fn)
	}
}

// ExprString renders an expression back to SQL. It is used for error
// messages, display names of computed columns, and by the duckast emitter.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		sb.WriteString("NULL")
	case *ColumnRef:
		if x.Table != "" {
			sb.WriteString(x.Table)
			sb.WriteByte('.')
		}
		if x.Star {
			sb.WriteByte('*')
		} else {
			sb.WriteString(x.Column)
		}
	case *Literal:
		sb.WriteString(x.Value.SQLLiteral())
	case *BinaryExpr:
		sb.WriteByte('(')
		writeExpr(sb, x.Left)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		writeExpr(sb, x.Right)
		sb.WriteByte(')')
	case *UnaryExpr:
		if x.Op == "NOT" {
			sb.WriteString("(NOT ")
		} else {
			sb.WriteString("(" + x.Op)
		}
		writeExpr(sb, x.Operand)
		sb.WriteByte(')')
	case *IsNullExpr:
		sb.WriteByte('(')
		writeExpr(sb, x.Operand)
		if x.Negate {
			sb.WriteString(" IS NOT NULL)")
		} else {
			sb.WriteString(" IS NULL)")
		}
	case *InExpr:
		sb.WriteByte('(')
		writeExpr(sb, x.Operand)
		if x.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, it := range x.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, it)
		}
		sb.WriteString("))")
	case *BetweenExpr:
		sb.WriteByte('(')
		writeExpr(sb, x.Operand)
		if x.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		writeExpr(sb, x.Lo)
		sb.WriteString(" AND ")
		writeExpr(sb, x.Hi)
		sb.WriteByte(')')
	case *CaseExpr:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteByte(' ')
			writeExpr(sb, x.Operand)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			writeExpr(sb, w.When)
			sb.WriteString(" THEN ")
			writeExpr(sb, w.Then)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			writeExpr(sb, x.Else)
		}
		sb.WriteString(" END")
	case *FuncExpr:
		sb.WriteString(x.Name)
		sb.WriteByte('(')
		if x.Star {
			sb.WriteByte('*')
		} else {
			if x.Distinct {
				sb.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeExpr(sb, a)
			}
		}
		sb.WriteByte(')')
	case *CastExpr:
		sb.WriteString("CAST(")
		writeExpr(sb, x.Operand)
		sb.WriteString(" AS ")
		sb.WriteString(x.TypeName)
		sb.WriteByte(')')
	case *SubqueryExpr:
		sb.WriteString("(<subquery>)")
	case *ParamExpr:
		sb.WriteByte('$')
		sb.WriteString(strconv.Itoa(x.Index))
	default:
		sb.WriteString("<expr>")
	}
}

// DisplayName derives the output column name for an unaliased select item,
// mirroring DuckDB: bare column refs use the column name, everything else
// uses the rendered expression.
func DisplayName(e Expr) string {
	if c, ok := e.(*ColumnRef); ok && !c.Star {
		return c.Column
	}
	if f, ok := e.(*FuncExpr); ok {
		return strings.ToLower(ExprString(f))
	}
	return ExprString(e)
}
