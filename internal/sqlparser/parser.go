package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"openivm/internal/sqltypes"
)

// Parser is a recursive-descent SQL parser with Pratt expression parsing.
type Parser struct {
	src  string
	toks []Token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.skipSemis()
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(sql string) ([]Statement, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		p.skipSemis()
		if p.atEOF() {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

// ParseExpr parses a standalone scalar expression (used in tests and by
// trigger predicates).
func ParseExpr(sql string) (Expr, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return e, nil
}

func newParser(sql string) (*Parser, error) {
	toks, err := Tokenize(sql)
	if err != nil {
		return nil, err
	}
	return &Parser{src: sql, toks: toks}, nil
}

// --- token helpers ---

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) skipSemis() {
	for p.isOp(";") {
		p.pos++
	}
}
func (p *Parser) save() int     { return p.pos }
func (p *Parser) restore(m int) { p.pos = m }

func (p *Parser) isKw(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) isOp(op string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == op
}

func (p *Parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, got %q", op, p.peek().Text)
	}
	return nil
}

// ident accepts an identifier or any keyword usable as an identifier in
// non-reserved position (SQL is permissive here; our emitters only quote
// when required).
func (p *Parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	// Allow soft keywords as identifiers (e.g. a column named "key" or a
	// function named count in expression position is handled elsewhere).
	if t.Kind == TokKeyword {
		switch t.Text {
		case "KEY", "ROW", "OF", "DO", "ALL", "REPLACE", "COUNT", "SUM", "MIN", "MAX", "AVG", "SET", "VALUES", "INDEX", "VIEW", "TABLE", "TRIGGER", "AFTER", "EXECUTE", "COALESCE":
			p.pos++
			return strings.ToLower(t.Text), nil
		}
	}
	return "", p.errorf("expected identifier, got %q", t.Text)
}

func (p *Parser) errorf(format string, args ...any) error {
	pos := p.peek().Pos
	line := 1 + strings.Count(p.src[:min(pos, len(p.src))], "\n")
	return fmt.Errorf("sqlparser: line %d (offset %d): %s", line, pos, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- statements ---

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement, got %q", t.Text)
	}
	switch t.Text {
	case "SELECT", "WITH", "VALUES":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "TRUNCATE":
		p.pos++
		p.acceptKw("TABLE")
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &TruncateStmt{Table: name}, nil
	case "BEGIN":
		p.pos++
		return &BeginStmt{}, nil
	case "COMMIT":
		p.pos++
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.pos++
		return &RollbackStmt{}, nil
	case "EXPLAIN":
		p.pos++
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner}, nil
	case "REFRESH":
		p.pos++
		p.acceptKw("MATERIALIZED")
		if err := p.expectKw("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &RefreshStmt{View: name}, nil
	case "PRAGMA":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &PragmaStmt{Name: name}
		if p.acceptOp("=") {
			v := p.next()
			st.Value = v.Text
		}
		return st, nil
	}
	return nil, p.errorf("unsupported statement %q", t.Text)
}

func (p *Parser) qualifiedName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	for p.acceptOp(".") {
		part, err := p.ident()
		if err != nil {
			return "", err
		}
		name = name + "." + part
	}
	return name, nil
}

// --- CREATE ---

func (p *Parser) parseCreate() (Statement, error) {
	start := p.peek().Pos
	p.pos++ // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		return p.parseCreateTable()
	case p.acceptKw("INDEX"):
		return p.parseCreateIndex(unique)
	case unique:
		return nil, p.errorf("UNIQUE only valid for CREATE INDEX")
	case p.isKw("MATERIALIZED") || p.isKw("VIEW"):
		mat := p.acceptKw("MATERIALIZED")
		if err := p.expectKw("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		selStart := p.peek().Pos
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		end := p.peek().Pos
		if p.atEOF() {
			end = len(p.src)
		}
		return &CreateViewStmt{
			Name: name, Materialized: mat, Select: sel,
			SourceSQL: strings.TrimRight(strings.TrimSpace(p.src[selStart:end]), ";"),
		}, nil
	case p.acceptKw("TRIGGER"):
		return p.parseCreateTrigger()
	}
	_ = start
	return nil, p.errorf("unsupported CREATE %q", p.peek().Text)
}

func (p *Parser) parseCreateTable() (Statement, error) {
	st := &CreateTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if p.acceptKw("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.AsSelect = sel
		return st, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = append(st.PrimaryKey, col)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if col.PrimaryKey {
				st.PrimaryKey = append(st.PrimaryKey, col.Name)
			}
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	tn, err := p.typeName()
	if err != nil {
		return cd, err
	}
	cd.TypeName = tn
	ty, err := sqltypes.ParseType(tn)
	if err != nil {
		return cd, p.errorf("%v", err)
	}
	cd.Type = ty
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		case p.acceptKw("NULL"):
			// explicit nullable; no-op
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
			cd.NotNull = true
		case p.acceptKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return cd, err
			}
			cd.Default = e
		default:
			return cd, nil
		}
	}
}

// typeName consumes a SQL type, tolerating parameterized forms like
// DECIMAL(10,2) and two-word forms like DOUBLE PRECISION.
func (p *Parser) typeName() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent && t.Kind != TokKeyword {
		return "", p.errorf("expected type name, got %q", t.Text)
	}
	p.pos++
	name := t.Text
	if strings.EqualFold(name, "DOUBLE") {
		if p.peek().Kind == TokIdent && strings.EqualFold(p.peek().Text, "PRECISION") {
			p.pos++
		}
		return "DOUBLE", nil
	}
	if p.acceptOp("(") {
		for !p.acceptOp(")") {
			if p.atEOF() {
				return "", p.errorf("unterminated type parameters")
			}
			p.pos++
		}
	}
	return name, nil
}

func (p *Parser) parseCreateIndex(unique bool) (Statement, error) {
	st := &CreateIndexStmt{Unique: unique}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = tbl
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseCreateTrigger() (Statement, error) {
	st := &CreateTriggerStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKw("AFTER"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKw("INSERT"):
			st.Events = append(st.Events, "INSERT")
		case p.acceptKw("DELETE"):
			st.Events = append(st.Events, "DELETE")
		case p.acceptKw("UPDATE"):
			st.Events = append(st.Events, "UPDATE")
		default:
			return nil, p.errorf("expected trigger event, got %q", p.peek().Text)
		}
		if !p.acceptKw("OR") {
			break
		}
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = tbl
	if err := p.expectKw("FOR"); err != nil {
		return nil, err
	}
	if err := p.expectKw("EACH"); err != nil {
		return nil, err
	}
	if err := p.expectKw("ROW"); err != nil {
		return nil, err
	}
	if err := p.expectKw("EXECUTE"); err != nil {
		return nil, err
	}
	h := p.peek()
	if h.Kind != TokString {
		return nil, p.errorf("expected handler string, got %q", h.Text)
	}
	p.pos++
	st.Handler = h.Text
	return st, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	var kind string
	switch {
	case p.acceptKw("TABLE"):
		kind = "TABLE"
	case p.acceptKw("VIEW"):
		kind = "VIEW"
	case p.acceptKw("INDEX"):
		kind = "INDEX"
	case p.acceptKw("MATERIALIZED"):
		if err := p.expectKw("VIEW"); err != nil {
			return nil, err
		}
		kind = "VIEW"
	default:
		return nil, p.errorf("unsupported DROP %q", p.peek().Text)
	}
	st := &DropStmt{Kind: kind}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

// --- DML ---

func (p *Parser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	st := &InsertStmt{}
	if p.acceptKw("OR") {
		if err := p.expectKw("REPLACE"); err != nil {
			return nil, err
		}
		st.OrReplace = true
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.isOp("(") {
		// Could be a column list or a parenthesized SELECT; distinguish by
		// lookahead for SELECT/VALUES/WITH.
		mark := p.save()
		p.pos++
		if p.isKw("SELECT") || p.isKw("VALUES") || p.isKw("WITH") {
			p.restore(mark)
		} else {
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.Columns = append(st.Columns, col)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	st.Select = sel
	if p.acceptKw("ON") {
		if err := p.expectKw("CONFLICT"); err != nil {
			return nil, err
		}
		oc := &OnConflict{}
		if p.acceptOp("(") {
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				oc.Columns = append(oc.Columns, col)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("DO"); err != nil {
			return nil, err
		}
		if p.acceptKw("NOTHING") {
			oc.DoNothing = true
		} else {
			if err := p.expectKw("UPDATE"); err != nil {
				return nil, err
			}
			if err := p.expectKw("SET"); err != nil {
				return nil, err
			}
			for {
				a, err := p.parseAssignment()
				if err != nil {
					return nil, err
				}
				oc.Set = append(oc.Set, a)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		st.Conflict = oc
	}
	return st, nil
}

func (p *Parser) parseAssignment() (Assignment, error) {
	var a Assignment
	col, err := p.ident()
	if err != nil {
		return a, err
	}
	a.Column = col
	if err := p.expectOp("="); err != nil {
		return a, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return a, err
	}
	a.Value = e
	return a, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.pos++ // UPDATE
	st := &UpdateStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		a, err := p.parseAssignment()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.pos++ // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// --- SELECT ---

func (p *Parser) parseSelect() (*SelectStmt, error) {
	var ctes []CTE
	if p.acceptKw("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ctes = append(ctes, CTE{Name: name, Select: sel})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	sel, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	sel.CTEs = ctes

	// set-operation chain
	head := sel
	cur := sel
	for {
		var op SetOp
		switch {
		case p.acceptKw("UNION"):
			if p.acceptKw("ALL") {
				op = SetUnionAll
			} else {
				op = SetUnion
			}
		case p.acceptKw("EXCEPT"):
			if p.acceptKw("ALL") {
				op = SetExceptAll
			} else {
				op = SetExcept
			}
		case p.acceptKw("INTERSECT"):
			op = SetIntersect
		default:
			// ORDER BY / LIMIT after a set chain bind to the whole chain;
			// attach to head for simplicity.
			if err := p.parseOrderLimit(head); err != nil {
				return nil, err
			}
			return head, nil
		}
		rhs, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		cur.NextOp = op
		cur.Next = rhs
		cur = rhs
	}
}

// parseSelectBody parses one SELECT term (no CTEs, no set ops), or a VALUES
// list, or a parenthesized select.
func (p *Parser) parseSelectBody() (*SelectStmt, error) {
	if p.isOp("(") {
		p.pos++
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return sel, nil
	}
	if p.acceptKw("VALUES") {
		sel := &SelectStmt{}
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			sel.Values = append(sel.Values, row)
			if !p.acceptOp(",") {
				break
			}
		}
		return sel, nil
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKw("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if err := p.parseOrderLimit(sel); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *Parser) parseOrderLimit(sel *SelectStmt) error {
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Offset = e
	}
	return nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	var it SelectItem
	// t.* or *
	if p.isOp("*") {
		p.pos++
		it.Expr = &ColumnRef{Star: true}
		return it, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return it, err
	}
	it.Expr = e
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return it, err
		}
		it.Alias = a
	} else if p.peek().Kind == TokIdent {
		it.Alias = p.next().Text
	}
	return it, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.acceptKw("JOIN"):
			kind = JoinInner
		case p.acceptKw("INNER"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinInner
		case p.acceptKw("LEFT"):
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeft
		case p.acceptKw("RIGHT"):
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinRight
		case p.acceptKw("FULL"):
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinFull
		case p.acceptKw("CROSS"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinCross
		case p.isOp(","):
			p.pos++
			kind = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		jt := &JoinTable{Kind: kind, Left: left, Right: right}
		if kind != JoinCross {
			switch {
			case p.acceptKw("ON"):
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jt.On = e
			case p.acceptKw("USING"):
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				for {
					col, err := p.ident()
					if err != nil {
						return nil, err
					}
					jt.Using = append(jt.Using, col)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			default:
				return nil, p.errorf("expected ON or USING after JOIN")
			}
		}
		left = jt
	}
}

func (p *Parser) parseTablePrimary() (TableRef, error) {
	if p.isOp("(") {
		p.pos++
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st := &SubqueryTable{Select: sel}
		p.acceptKw("AS")
		if p.peek().Kind == TokIdent {
			st.Alias = p.next().Text
		}
		return st, nil
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	nt := &NamedTable{}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		nt.Schema, nt.Name = name[:i], name[i+1:]
	} else {
		nt.Name = name
	}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		nt.Alias = a
	} else if p.peek().Kind == TokIdent {
		nt.Alias = p.next().Text
	}
	return nt, nil
}

// --- expressions (Pratt) ---

// binding powers
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
)

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(precOr) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec, ok := p.peekBinaryOp()
		if !ok || prec < minPrec {
			return left, nil
		}
		// postfix-style predicates handled inline
		switch op {
		case "IS":
			p.pos++ // IS
			neg := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Operand: left, Negate: neg}
			continue
		case "NOT": // NOT IN / NOT BETWEEN / NOT LIKE
			p.pos++
			switch {
			case p.isKw("IN"):
				e, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			case p.isKw("BETWEEN"):
				e, err := p.parseBetweenTail(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			case p.isKw("LIKE"):
				p.pos++
				rhs, err := p.parseBinary(precAdd)
				if err != nil {
					return nil, err
				}
				left = &UnaryExpr{Op: "NOT", Operand: &BinaryExpr{Op: "LIKE", Left: left, Right: rhs}}
			default:
				return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
			}
			continue
		case "IN":
			e, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = e
			continue
		case "BETWEEN":
			e, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = e
			continue
		}
		p.pos++
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseInTail(left Expr, neg bool) (Expr, error) {
	if err := p.expectKw("IN"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ie := &InExpr{Operand: left, Negate: neg}
	if p.isKw("SELECT") || p.isKw("WITH") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ie.List = []Expr{&SubqueryExpr{Select: sel}}
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ie.List = append(ie.List, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ie, nil
}

func (p *Parser) parseBetweenTail(left Expr, neg bool) (Expr, error) {
	if err := p.expectKw("BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseBinary(precAdd)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseBinary(precAdd)
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{Operand: left, Lo: lo, Hi: hi, Negate: neg}, nil
}

func (p *Parser) peekBinaryOp() (op string, prec int, ok bool) {
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			return normalizeNe(t.Text), precCmp, true
		case "+", "-", "||":
			return t.Text, precAdd, true
		case "*", "/", "%":
			return t.Text, precMul, true
		}
		return "", 0, false
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "AND":
			return "AND", precAnd, true
		case "OR":
			return "OR", precOr, true
		case "LIKE":
			return "LIKE", precCmp, true
		case "IS", "IN", "BETWEEN":
			return t.Text, precCmp, true
		case "NOT":
			// only binds as NOT IN / NOT BETWEEN / NOT LIKE in infix position
			if p.pos+1 < len(p.toks) {
				nt := p.toks[p.pos+1]
				if nt.Kind == TokKeyword && (nt.Text == "IN" || nt.Text == "BETWEEN" || nt.Text == "LIKE") {
					return "NOT", precCmp, true
				}
			}
		}
	}
	return "", 0, false
}

func normalizeNe(op string) string {
	if op == "!=" {
		return "<>"
	}
	return op
}

func (p *Parser) parseUnary() (Expr, error) {
	switch {
	case p.acceptKw("NOT"):
		e, err := p.parseBinary(precNot)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: e}, nil
	case p.acceptOp("-"):
		e, err := p.parseBinary(precUnary)
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			neg, nerr := sqltypes.Neg(lit.Value)
			if nerr == nil {
				return &Literal{Value: neg}, nil
			}
		}
		return &UnaryExpr{Op: "-", Operand: e}, nil
	case p.acceptOp("+"):
		return p.parseBinary(precUnary)
	}
	return p.parsePostfix()
}

// parsePostfix handles ::type casts after a primary.
func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("::") {
		tn, err := p.typeName()
		if err != nil {
			return nil, err
		}
		e = &CastExpr{Operand: e, TypeName: tn}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: sqltypes.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: sqltypes.NewFloat(f)}, nil
		}
		return &Literal{Value: sqltypes.NewInt(i)}, nil
	case TokString:
		p.pos++
		return &Literal{Value: sqltypes.NewString(t.Text)}, nil
	case TokParam:
		p.pos++
		idx, err := strconv.Atoi(t.Text)
		if err != nil || idx < 1 {
			return nil, p.errorf("bad parameter $%s (parameters are $1, $2, ...)", t.Text)
		}
		return &ParamExpr{Index: idx}, nil
	case TokOp:
		if t.Text == "(" {
			p.pos++
			if p.isKw("SELECT") || p.isKw("WITH") || p.isKw("VALUES") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			p.pos++
			return &ColumnRef{Star: true}, nil
		}
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Value: sqltypes.Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{Value: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Value: sqltypes.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{Operand: e, TypeName: tn}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG", "COALESCE", "REPLACE":
			// function-style keywords
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(" {
				p.pos++
				return p.parseFuncCall(t.Text)
			}
			// else fall through to identifier handling
		case "EXCLUDED":
			// EXCLUDED.col inside ON CONFLICT DO UPDATE
			p.pos++
			if err := p.expectOp("."); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: "excluded", Column: col}, nil
		}
	}
	// identifier: column ref, qualified ref, star-qualified, or function call
	if t.Kind == TokIdent || t.Kind == TokKeyword {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.isOp("(") {
			return p.parseFuncCall(name)
		}
		if p.acceptOp(".") {
			if p.acceptOp("*") {
				return &ColumnRef{Table: name, Star: true}, nil
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fe := &FuncExpr{Name: strings.ToUpper(name)}
	if p.acceptOp("*") {
		fe.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fe, nil
	}
	if p.acceptOp(")") {
		return fe, nil
	}
	if p.acceptKw("DISTINCT") {
		fe.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fe.Args = append(fe.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fe, nil
}

func (p *Parser) parseCase() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	if !p.isKw("WHEN") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = e
	}
	for p.acceptKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{When: w, Then: th})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
