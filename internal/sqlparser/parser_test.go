package sqlparser

import (
	"strings"
	"testing"

	"openivm/internal/sqltypes"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	st := mustParse(t, sql)
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", sql, st)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b AS x FROM t WHERE a > 1")
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "x" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	nt, ok := sel.From.(*NamedTable)
	if !ok || nt.Name != "t" {
		t.Errorf("from = %#v", sel.From)
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != ">" {
		t.Errorf("where = %#v", sel.Where)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	sel := mustSelect(t, "SELECT a x FROM t y")
	if sel.Items[0].Alias != "x" {
		t.Errorf("alias = %q", sel.Items[0].Alias)
	}
	if sel.From.(*NamedTable).Alias != "y" {
		t.Errorf("table alias = %q", sel.From.(*NamedTable).Alias)
	}
}

func TestParseGroupByAggregates(t *testing.T) {
	sel := mustSelect(t, `SELECT group_index, SUM(group_value) AS total_value
		FROM groups GROUP BY group_index`)
	if len(sel.GroupBy) != 1 {
		t.Fatalf("groupby = %d", len(sel.GroupBy))
	}
	fe, ok := sel.Items[1].Expr.(*FuncExpr)
	if !ok || fe.Name != "SUM" {
		t.Fatalf("item 1 = %#v", sel.Items[1].Expr)
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*) FROM t")
	fe := sel.Items[0].Expr.(*FuncExpr)
	if !fe.Star || fe.Name != "COUNT" {
		t.Errorf("got %#v", fe)
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(DISTINCT a) FROM t")
	fe := sel.Items[0].Expr.(*FuncExpr)
	if !fe.Distinct {
		t.Errorf("got %#v", fe)
	}
}

func TestParseJoins(t *testing.T) {
	cases := map[string]JoinKind{
		"SELECT * FROM a JOIN b ON a.x = b.x":            JoinInner,
		"SELECT * FROM a INNER JOIN b ON a.x = b.x":      JoinInner,
		"SELECT * FROM a LEFT JOIN b ON a.x = b.x":       JoinLeft,
		"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x": JoinLeft,
		"SELECT * FROM a RIGHT JOIN b ON a.x = b.x":      JoinRight,
		"SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x": JoinFull,
		"SELECT * FROM a CROSS JOIN b":                   JoinCross,
		"SELECT * FROM a, b":                             JoinCross,
	}
	for sql, kind := range cases {
		sel := mustSelect(t, sql)
		jt, ok := sel.From.(*JoinTable)
		if !ok {
			t.Fatalf("%q: from = %#v", sql, sel.From)
		}
		if jt.Kind != kind {
			t.Errorf("%q: kind = %v, want %v", sql, jt.Kind, kind)
		}
	}
}

func TestParseJoinUsing(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM a JOIN b USING (x, y)")
	jt := sel.From.(*JoinTable)
	if len(jt.Using) != 2 || jt.Using[0] != "x" {
		t.Errorf("using = %v", jt.Using)
	}
}

func TestParseJoinChain(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM a JOIN b ON a.x=b.x LEFT JOIN c ON b.y=c.y")
	outer, ok := sel.From.(*JoinTable)
	if !ok || outer.Kind != JoinLeft {
		t.Fatalf("outer = %#v", sel.From)
	}
	inner, ok := outer.Left.(*JoinTable)
	if !ok || inner.Kind != JoinInner {
		t.Fatalf("inner = %#v", outer.Left)
	}
}

func TestParseCTE(t *testing.T) {
	sel := mustSelect(t, `WITH ivm_cte AS (SELECT a FROM t), two AS (SELECT 2)
		SELECT * FROM ivm_cte`)
	if len(sel.CTEs) != 2 || sel.CTEs[0].Name != "ivm_cte" || sel.CTEs[1].Name != "two" {
		t.Fatalf("ctes = %#v", sel.CTEs)
	}
}

func TestParseSetOps(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 UNION ALL SELECT 2 UNION SELECT 3 EXCEPT SELECT 4")
	if sel.NextOp != SetUnionAll {
		t.Fatalf("op1 = %v", sel.NextOp)
	}
	if sel.Next.NextOp != SetUnion {
		t.Fatalf("op2 = %v", sel.Next.NextOp)
	}
	if sel.Next.Next.NextOp != SetExcept {
		t.Fatalf("op3 = %v", sel.Next.Next.NextOp)
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("orderby = %#v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
}

func TestParseValues(t *testing.T) {
	sel := mustSelect(t, "VALUES (1, 'a'), (2, 'b')")
	if len(sel.Values) != 2 || len(sel.Values[0]) != 2 {
		t.Fatalf("values = %#v", sel.Values)
	}
}

func TestParseSubqueryTable(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM (SELECT a FROM t) AS sub")
	st, ok := sel.From.(*SubqueryTable)
	if !ok || st.Alias != "sub" {
		t.Fatalf("from = %#v", sel.From)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	be := e.(*BinaryExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %q", be.Op)
	}
	if be.Right.(*BinaryExpr).Op != "*" {
		t.Fatalf("rhs = %#v", be.Right)
	}
}

func TestParseExprBoolPrecedence(t *testing.T) {
	e, err := ParseExpr("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	be := e.(*BinaryExpr)
	if be.Op != "OR" {
		t.Fatalf("top = %q", be.Op)
	}
	if be.Right.(*BinaryExpr).Op != "AND" {
		t.Fatalf("rhs = %#v", be.Right)
	}
}

func TestParseExprForms(t *testing.T) {
	for _, sql := range []string{
		"x IS NULL", "x IS NOT NULL", "x IN (1,2,3)", "x NOT IN (1)",
		"x BETWEEN 1 AND 10", "x NOT BETWEEN 1 AND 10",
		"x LIKE 'a%'", "x NOT LIKE 'a%'",
		"CASE WHEN a THEN 1 ELSE 2 END", "CASE x WHEN 1 THEN 'a' END",
		"CAST(a AS INTEGER)", "a::VARCHAR",
		"COALESCE(a, 0)", "-a + 3", "NOT a", "a || b",
		"SUM(CASE WHEN m = FALSE THEN -v ELSE v END)",
	} {
		if _, err := ParseExpr(sql); err != nil {
			t.Errorf("ParseExpr(%q): %v", sql, err)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE groups (
		group_index VARCHAR NOT NULL,
		group_value INTEGER,
		PRIMARY KEY (group_index))`).(*CreateTableStmt)
	if st.Name != "groups" || len(st.Columns) != 2 {
		t.Fatalf("got %#v", st)
	}
	if !st.Columns[0].NotNull || st.Columns[0].Type != sqltypes.TypeString {
		t.Errorf("col0 = %#v", st.Columns[0])
	}
	if len(st.PrimaryKey) != 1 || st.PrimaryKey[0] != "group_index" {
		t.Errorf("pk = %v", st.PrimaryKey)
	}
}

func TestParseCreateTableInlinePK(t *testing.T) {
	st := mustParse(t, "CREATE TABLE t (id INTEGER PRIMARY KEY, v DOUBLE DEFAULT 0)").(*CreateTableStmt)
	if len(st.PrimaryKey) != 1 || st.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", st.PrimaryKey)
	}
	if st.Columns[1].Default == nil {
		t.Error("default missing")
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	st := mustParse(t, "CREATE TABLE IF NOT EXISTS t (a INT)").(*CreateTableStmt)
	if !st.IfNotExists {
		t.Error("IfNotExists not set")
	}
}

func TestParseCreateTableAsSelect(t *testing.T) {
	st := mustParse(t, "CREATE TABLE t AS SELECT a FROM s").(*CreateTableStmt)
	if st.AsSelect == nil {
		t.Error("AsSelect missing")
	}
}

func TestParseCreateMaterializedView(t *testing.T) {
	sql := `CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
		SUM(group_value) AS total_value FROM groups GROUP BY group_index`
	st := mustParse(t, sql).(*CreateViewStmt)
	if !st.Materialized || st.Name != "query_groups" {
		t.Fatalf("got %#v", st)
	}
	if !strings.HasPrefix(st.SourceSQL, "SELECT") {
		t.Errorf("source = %q", st.SourceSQL)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE UNIQUE INDEX idx ON t (a, b)").(*CreateIndexStmt)
	if !st.Unique || st.Table != "t" || len(st.Columns) != 2 {
		t.Fatalf("got %#v", st)
	}
}

func TestParseDrop(t *testing.T) {
	st := mustParse(t, "DROP TABLE IF EXISTS t").(*DropStmt)
	if st.Kind != "TABLE" || !st.IfExists {
		t.Fatalf("got %#v", st)
	}
	st2 := mustParse(t, "DROP MATERIALIZED VIEW v").(*DropStmt)
	if st2.Kind != "VIEW" {
		t.Fatalf("got %#v", st2)
	}
}

func TestParseInsertValues(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if st.Table != "t" || len(st.Columns) != 2 || len(st.Select.Values) != 2 {
		t.Fatalf("got %#v", st)
	}
}

func TestParseInsertSelect(t *testing.T) {
	st := mustParse(t, "INSERT INTO t SELECT * FROM s WHERE a > 0").(*InsertStmt)
	if st.Select.From == nil {
		t.Fatalf("got %#v", st)
	}
}

func TestParseInsertOrReplace(t *testing.T) {
	st := mustParse(t, "INSERT OR REPLACE INTO t VALUES (1)").(*InsertStmt)
	if !st.OrReplace {
		t.Error("OrReplace not set")
	}
}

func TestParseInsertOnConflict(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 2)
		ON CONFLICT (a) DO UPDATE SET b = EXCLUDED.b`).(*InsertStmt)
	if st.Conflict == nil || len(st.Conflict.Columns) != 1 || len(st.Conflict.Set) != 1 {
		t.Fatalf("got %#v", st.Conflict)
	}
	cr := st.Conflict.Set[0].Value.(*ColumnRef)
	if cr.Table != "excluded" || cr.Column != "b" {
		t.Errorf("excluded ref = %#v", cr)
	}
}

func TestParseInsertOnConflictDoNothing(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (1) ON CONFLICT (a) DO NOTHING").(*InsertStmt)
	if st.Conflict == nil || !st.Conflict.DoNothing {
		t.Fatalf("got %#v", st.Conflict)
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").(*UpdateStmt)
	if len(st.Set) != 2 || st.Where == nil {
		t.Fatalf("got %#v", st)
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM t WHERE a < 0").(*DeleteStmt)
	if st.Table != "t" || st.Where == nil {
		t.Fatalf("got %#v", st)
	}
	st2 := mustParse(t, "DELETE FROM t").(*DeleteStmt)
	if st2.Where != nil {
		t.Fatal("unexpected where")
	}
}

func TestParseTruncate(t *testing.T) {
	st := mustParse(t, "TRUNCATE TABLE t").(*TruncateStmt)
	if st.Table != "t" {
		t.Fatalf("got %#v", st)
	}
}

func TestParseTransactionControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParseRefresh(t *testing.T) {
	st := mustParse(t, "REFRESH MATERIALIZED VIEW mv").(*RefreshStmt)
	if st.View != "mv" {
		t.Fatalf("got %#v", st)
	}
}

func TestParsePragma(t *testing.T) {
	st := mustParse(t, "PRAGMA ivm_strategy='union_regroup'").(*PragmaStmt)
	if st.Name != "ivm_strategy" || st.Value != "union_regroup" {
		t.Fatalf("got %#v", st)
	}
}

func TestParseCreateTrigger(t *testing.T) {
	st := mustParse(t, `CREATE TRIGGER cap AFTER INSERT OR DELETE OR UPDATE ON orders
		FOR EACH ROW EXECUTE 'ivm_capture'`).(*CreateTriggerStmt)
	if st.Table != "orders" || len(st.Events) != 3 || st.Handler != "ivm_capture" {
		t.Fatalf("got %#v", st)
	}
}

func TestParseScriptMultiple(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParsePaperListing2(t *testing.T) {
	// The exact shape of SQL the paper's compiler emits (Listing 2) must
	// round-trip through our parser.
	stmts, err := ParseScript(`
INSERT INTO delta_query_groups
SELECT group_index, SUM(group_value) AS total_value, _duckdb_ivm_multiplicity
FROM delta_groups
GROUP BY group_index, _duckdb_ivm_multiplicity;
INSERT OR REPLACE INTO query_groups
WITH ivm_cte AS (
  SELECT group_index,
    SUM(CASE WHEN _duckdb_ivm_multiplicity = FALSE THEN -total_value ELSE total_value END) AS total_value
  FROM delta_query_groups
  GROUP BY group_index)
SELECT query_groups.group_index,
  SUM(COALESCE(query_groups.total_value, 0) + delta_query_groups.total_value)
FROM ivm_cte AS delta_query_groups
LEFT JOIN query_groups ON query_groups.group_index = delta_query_groups.group_index
GROUP BY query_groups.group_index;
DELETE FROM query_groups WHERE total_value = 0;
DELETE FROM delta_query_groups;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements", len(stmts))
	}
	ins, ok := stmts[1].(*InsertStmt)
	if !ok || !ins.OrReplace {
		t.Fatalf("stmt[1] = %#v", stmts[1])
	}
	if len(ins.Select.CTEs) != 1 || ins.Select.CTEs[0].Name != "ivm_cte" {
		t.Fatalf("cte = %#v", ins.Select.CTEs)
	}
}

func TestParseErrorsHaveLineInfo(t *testing.T) {
	_, err := Parse("SELECT a\nFROM")
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT", "SELECT FROM t", "INSERT t VALUES (1)",
		"CREATE TABLE t", "SELECT * FROM t WHERE", "DELETE t",
		"SELECT * FROM a JOIN b", "CASE END", "SELECT 1 2 3 FROM",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestExprString(t *testing.T) {
	e, err := ParseExpr("SUM(CASE WHEN m = FALSE THEN -v ELSE v END)")
	if err != nil {
		t.Fatal(err)
	}
	s := ExprString(e)
	if !strings.Contains(s, "SUM(CASE WHEN") || !strings.Contains(s, "ELSE v END)") {
		t.Errorf("ExprString = %q", s)
	}
	// Must re-parse.
	if _, err := ParseExpr(s); err != nil {
		t.Errorf("ExprString output %q does not re-parse: %v", s, err)
	}
}

func TestExprStringRoundtripMany(t *testing.T) {
	for _, sql := range []string{
		"a + b * c", "(a + b) * c", "a IS NULL AND b IS NOT NULL",
		"x IN (1, 2)", "x BETWEEN 1 AND 2", "COALESCE(a, b, 0)",
		"CAST(x AS INTEGER)", "NOT (a OR b)", "a LIKE 'x%'",
	} {
		e, err := ParseExpr(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		s := ExprString(e)
		e2, err := ParseExpr(s)
		if err != nil {
			t.Fatalf("roundtrip %q -> %q: %v", sql, s, err)
		}
		if ExprString(e2) != s {
			t.Errorf("unstable roundtrip: %q -> %q -> %q", sql, s, ExprString(e2))
		}
	}
}

func TestWalkExpr(t *testing.T) {
	e, _ := ParseExpr("a + SUM(b) * CASE WHEN c THEN d ELSE e END")
	var cols []string
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			cols = append(cols, c.Column)
		}
		return true
	})
	if len(cols) != 5 {
		t.Errorf("cols = %v", cols)
	}
}

func TestDisplayName(t *testing.T) {
	e, _ := ParseExpr("foo")
	if DisplayName(e) != "foo" {
		t.Errorf("got %q", DisplayName(e))
	}
	e2, _ := ParseExpr("SUM(x)")
	if DisplayName(e2) != "sum(x)" {
		t.Errorf("got %q", DisplayName(e2))
	}
}

func TestParseQualifiedTable(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM pg.orders")
	nt := sel.From.(*NamedTable)
	if nt.Schema != "pg" || nt.Name != "orders" {
		t.Fatalf("got %#v", nt)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT (SELECT MAX(a) FROM t) FROM s")
	if _, ok := sel.Items[0].Expr.(*SubqueryExpr); !ok {
		t.Fatalf("got %#v", sel.Items[0].Expr)
	}
}

func TestParseInSubquery(t *testing.T) {
	e, err := ParseExpr("x IN (SELECT a FROM t)")
	if err != nil {
		t.Fatal(err)
	}
	ie := e.(*InExpr)
	if _, ok := ie.List[0].(*SubqueryExpr); !ok {
		t.Fatalf("got %#v", ie.List[0])
	}
}
