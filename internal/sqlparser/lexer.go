// Package sqlparser implements a lexer and recursive-descent parser for the
// SQL subset used throughout OpenIVM-Go: DDL (CREATE TABLE / INDEX /
// [MATERIALIZED] VIEW), DML (INSERT [OR REPLACE] / ON CONFLICT, UPDATE,
// DELETE) and SELECT queries with joins, grouping, aggregates, CTEs and set
// operations. The grammar covers both the DuckDB-flavoured and
// PostgreSQL-flavoured statements the IVM compiler consumes and emits.
package sqlparser

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString // 'single quoted'
	TokOp     // operators and punctuation
	TokParam  // $1, $2, ... positional statement parameter (Text = digits)
)

// Token is a lexical token with its source position (for error messages).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

// keywords is the set of reserved words recognized by the lexer. Words not
// in this set lex as identifiers.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "AS": true, "DISTINCT": true, "ALL": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "BETWEEN": true, "LIKE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CAST": true, "JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"FULL": true, "OUTER": true, "CROSS": true, "ON": true, "USING": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true, "WITH": true,
	"VALUES": true, "INSERT": true, "INTO": true, "DELETE": true,
	"UPDATE": true, "SET": true, "CREATE": true, "TABLE": true,
	"VIEW": true, "MATERIALIZED": true, "INDEX": true, "UNIQUE": true,
	"DROP": true, "IF": true, "EXISTS": true, "PRIMARY": true, "KEY": true,
	"DEFAULT": true, "REPLACE": true, "CONFLICT": true, "DO": true,
	"NOTHING": true, "EXCLUDED": true, "RETURNING": true, "TRUNCATE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "EXPLAIN": true,
	"REFRESH": true, "PRAGMA": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "COALESCE": true, "OF": true, "FOR": true,
	"TRIGGER": true, "AFTER": true, "ROW": true, "EACH": true, "EXECUTE": true,
}

// Lexer tokenizes a SQL string.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c == '"': // quoted identifier
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sqlparser: unterminated quoted identifier at %d", start)
			}
			if l.src[l.pos] == '"' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
					sb.WriteByte('"')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{Kind: TokIdent, Text: sb.String(), Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sqlparser: unterminated string literal at %d", start)
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		seenDot := c == '.'
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d >= '0' && d <= '9' {
				l.pos++
				continue
			}
			if d == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if (d == 'e' || d == 'E') && l.pos+1 < len(l.src) &&
				(isDigit(l.src[l.pos+1]) || ((l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2]))) {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '$' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		// Positional parameter ($1, $2, ...), bound per execution by
		// prepared statements. A bare '$' stays an error (it only appears
		// mid-identifier otherwise, handled by isIdentPart).
		l.pos++
		numStart := l.pos
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokParam, Text: l.src[numStart:l.pos], Pos: start}, nil
	default:
		// multi-char operators first
		for _, op := range []string{"<>", "!=", "<=", ">=", "||", "::"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		if strings.IndexByte("+-*/%(),.;=<>", c) >= 0 {
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sqlparser: unexpected character %q at %d", string(c), start)
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

// Tokenize lexes the whole input; convenience for tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
