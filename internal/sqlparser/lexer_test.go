package sqlparser

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks, err := Tokenize("SELECT a, 42 FROM t WHERE b = 'x''y'")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "a"}, {TokOp, ","}, {TokNumber, "42"},
		{TokKeyword, "FROM"}, {TokIdent, "t"}, {TokKeyword, "WHERE"},
		{TokIdent, "b"}, {TokOp, "="}, {TokString, "x'y"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok[%d] = {%v %q}, want {%v %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []string{"1", "12.5", "0.5", ".5", "1e6", "1.5e-3", "2E+4"}
	for _, c := range cases {
		toks, err := Tokenize(c)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", c, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != c {
			t.Errorf("Tokenize(%q) = %v", c, toks[0])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "1", "+", "2"}
	if len(texts) != len(want) {
		t.Fatalf("got %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("tok %d = %q want %q", i, texts[i], want[i])
		}
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks, err := Tokenize(`"weird ""name"""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != `weird "name"` {
		t.Errorf("got %v", toks[0])
	}
}

func TestLexMultiCharOps(t *testing.T) {
	toks, err := Tokenize("a <> b <= c >= d != e || f :: g")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokOp {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<>", "<=", ">=", "!=", "||", "::"}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q want %q", i, ops[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, "a # b"} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("Tokenize(%q) should fail", bad)
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, _ := Tokenize("select Select SELECT")
	for _, tk := range toks[:3] {
		if tk.Kind != TokKeyword || tk.Text != "SELECT" {
			t.Errorf("got %v", tk)
		}
	}
	if len(kinds(toks)) != 4 {
		t.Errorf("want 4 tokens")
	}
}
