package workload

import (
	"strings"
	"testing"

	"openivm/internal/engine"
)

func TestGroupsLoad(t *testing.T) {
	db := engine.Open("w", engine.DialectDuckDB)
	g := Groups{Rows: 1000, NumGroups: 10, Seed: 1}
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*), COUNT(DISTINCT group_index) FROM groups")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1000 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].I != 10 {
		t.Errorf("groups = %v", res.Rows)
	}
}

func TestGroupsLoadDeterministic(t *testing.T) {
	sum := func() int64 {
		db := engine.Open("w", engine.DialectDuckDB)
		g := Groups{Rows: 500, NumGroups: 5, Seed: 42}
		if err := g.Load(db); err != nil {
			t.Fatal(err)
		}
		res, _ := db.Exec("SELECT SUM(group_value) FROM groups")
		return res.Rows[0][0].I
	}
	if sum() != sum() {
		t.Error("same seed must generate identical data")
	}
}

func TestUpdateStreamMix(t *testing.T) {
	g := Groups{Rows: 100, NumGroups: 10}
	stream := g.UpdateStream(1000, 0.5, 0.3, 7)
	if len(stream) != 1000 {
		t.Fatalf("len = %d", len(stream))
	}
	var ins, del, upd int
	for _, u := range stream {
		switch {
		case strings.HasPrefix(u.SQL, "INSERT"):
			ins++
		case strings.HasPrefix(u.SQL, "DELETE"):
			del++
		case strings.HasPrefix(u.SQL, "UPDATE"):
			upd++
		}
	}
	if ins < 400 || ins > 600 {
		t.Errorf("inserts = %d, want ~500", ins)
	}
	if del < 200 || del > 400 {
		t.Errorf("deletes = %d, want ~300", del)
	}
	if upd == 0 {
		t.Error("no updates generated")
	}
}

func TestUpdateStreamExecutes(t *testing.T) {
	db := engine.Open("w", engine.DialectDuckDB)
	g := Groups{Rows: 100, NumGroups: 10, Seed: 1}
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	for _, u := range g.UpdateStream(100, 0.6, 0.2, 3) {
		if _, err := db.Exec(u.SQL); err != nil {
			t.Fatalf("%s: %v", u.SQL, err)
		}
	}
}

func TestInsertBatch(t *testing.T) {
	db := engine.Open("w", engine.DialectDuckDB)
	g := Groups{Rows: 0, NumGroups: 10, Seed: 1}
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(g.InsertBatch(50, 2)); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT COUNT(*) FROM groups")
	if res.Rows[0][0].I != 50 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSalesLoad(t *testing.T) {
	db := engine.Open("w", engine.DialectDuckDB)
	s := Sales{Customers: 50, Orders: 500, Regions: 5, Seed: 1}
	if err := s.Load(db, true); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].I != 500 {
		t.Errorf("orders = %v", res.Rows)
	}
	// Every order references an existing customer.
	res, _ = db.Exec(`SELECT COUNT(*) FROM orders WHERE cid NOT IN (SELECT cid FROM customers)`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("dangling orders = %v", res.Rows)
	}
}

func TestOrderStreamNoCollisions(t *testing.T) {
	db := engine.Open("w", engine.DialectDuckDB)
	s := Sales{Customers: 10, Orders: 100, Regions: 3, Seed: 1}
	if err := s.Load(db, true); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.OrderStream(50, 2) {
		if _, err := db.Exec(u.SQL); err != nil {
			t.Fatalf("%s: %v", u.SQL, err)
		}
	}
	res, _ := db.Exec("SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].I != 150 {
		t.Errorf("orders = %v", res.Rows)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.5, 1)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 50.
	if counts[0] <= counts[50]*2 {
		t.Errorf("insufficient skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestFraction(t *testing.T) {
	if Fraction(0.1) != "10%" {
		t.Errorf("got %q", Fraction(0.1))
	}
	if Fraction(0.001) != "0.1%" {
		t.Errorf("got %q", Fraction(0.001))
	}
}

func TestGroupKeyStable(t *testing.T) {
	if GroupKey(7) != "g000007" {
		t.Errorf("got %q", GroupKey(7))
	}
}

func TestPow10(t *testing.T) {
	if Pow10(3) != 1000 {
		t.Errorf("got %d", Pow10(3))
	}
}
