// Package workload provides deterministic data and update-stream
// generators for the experiments: the paper's Listing 1 groups table, a
// customers/orders HTAP schema, and Zipf-skewed key distributions. All
// generators are seeded so experiment runs are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"openivm/internal/engine"
	"openivm/internal/sqltypes"
)

// Groups generates the paper's demonstration table:
//
//	CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)
//
// with rows spread over numGroups distinct group_index values.
type Groups struct {
	Rows      int
	NumGroups int
	Seed      int64
}

// Schema returns the Listing 1 DDL.
func (Groups) Schema() string {
	return "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
}

// Load creates and fills the table on db (bypassing triggers: this is the
// base load, not part of the measured update stream).
func (g Groups) Load(db *engine.DB) error {
	if _, err := db.Exec(g.Schema()); err != nil {
		return err
	}
	tbl, err := db.Catalog().Table("groups")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(g.Seed))
	return db.WithoutTriggers(func() error {
		for i := 0; i < g.Rows; i++ {
			row := sqltypes.Row{
				sqltypes.NewString(GroupKey(rng.Intn(g.NumGroups))),
				sqltypes.NewInt(int64(rng.Intn(1000))),
			}
			if err := tbl.Insert(row); err != nil {
				return err
			}
		}
		return nil
	})
}

// GroupKey formats the i-th group key.
func GroupKey(i int) string { return fmt.Sprintf("g%06d", i) }

// Update is one generated base-table change.
type Update struct {
	SQL string
}

// UpdateStream generates a deterministic stream of single-row INSERT,
// DELETE and UPDATE statements against the groups table. insertFrac and
// deleteFrac control the mix (the rest are updates); deletes and updates
// target previously inserted keys.
func (g Groups) UpdateStream(n int, insertFrac, deleteFrac float64, seed int64) []Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		key := GroupKey(rng.Intn(g.NumGroups))
		r := rng.Float64()
		switch {
		case r < insertFrac:
			out = append(out, Update{SQL: fmt.Sprintf(
				"INSERT INTO groups VALUES ('%s', %d)", key, rng.Intn(1000))})
		case r < insertFrac+deleteFrac:
			out = append(out, Update{SQL: fmt.Sprintf(
				"DELETE FROM groups WHERE group_index = '%s' AND group_value < %d", key, rng.Intn(200))})
		default:
			out = append(out, Update{SQL: fmt.Sprintf(
				"UPDATE groups SET group_value = group_value + 1 WHERE group_index = '%s'", key)})
		}
	}
	return out
}

// InsertBatch generates a multi-row INSERT of n rows in one statement.
func (g Groups) InsertBatch(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	sql := "INSERT INTO groups VALUES "
	for i := 0; i < n; i++ {
		if i > 0 {
			sql += ", "
		}
		sql += fmt.Sprintf("('%s', %d)", GroupKey(rng.Intn(g.NumGroups)), rng.Intn(1000))
	}
	return sql
}

// Sales is the HTAP schema for the cross-system experiments: a customers
// dimension and an orders fact stream.
type Sales struct {
	Customers int
	Orders    int
	Regions   int
	Seed      int64
}

// Schema returns the DDL for both tables (dialect-neutral subset).
func (Sales) Schema() []string {
	return []string{
		"CREATE TABLE customers (cid INTEGER PRIMARY KEY, region VARCHAR)",
		"CREATE TABLE orders (oid INTEGER PRIMARY KEY, cid INTEGER, amount INTEGER)",
	}
}

// Load fills both tables through the SQL layer of db (so OLTP-side
// triggers fire if configured); pass loadDirect=true to bypass triggers
// for bulk base loads.
func (s Sales) Load(db *engine.DB, loadDirect bool) error {
	for _, ddl := range s.Schema() {
		if _, err := db.Exec(ddl); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(s.Seed))
	fill := func() error {
		ct, err := db.Catalog().Table("customers")
		if err != nil {
			return err
		}
		ot, err := db.Catalog().Table("orders")
		if err != nil {
			return err
		}
		for i := 0; i < s.Customers; i++ {
			if err := ct.Insert(sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("r%03d", rng.Intn(s.Regions))),
			}); err != nil {
				return err
			}
		}
		for i := 0; i < s.Orders; i++ {
			if err := ot.Insert(sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64(rng.Intn(max(1, s.Customers)))),
				sqltypes.NewInt(int64(rng.Intn(500))),
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if loadDirect {
		return db.WithoutTriggers(fill)
	}
	return fill()
}

// OrderStream generates new-order inserts (the OLTP transaction stream).
// IDs start at s.Orders so they never collide with the base load.
func (s Sales) OrderStream(n int, seed int64) []Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Update{SQL: fmt.Sprintf(
			"INSERT INTO orders VALUES (%d, %d, %d)",
			s.Orders+i, rng.Intn(max(1, s.Customers)), rng.Intn(500))})
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Zipf draws ints in [0, n) with the given skew (s > 1; higher = more
// skew). It is used to model hot groups in the update stream.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over n values.
func NewZipf(n int, skew float64, seed int64) *Zipf {
	if skew <= 1 {
		skew = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(rng, skew, 1, uint64(n-1))}
}

// Next draws the next value.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Fraction formats a float as a percentage label for experiment tables.
func Fraction(f float64) string {
	if f >= 0.01 {
		return fmt.Sprintf("%.0f%%", f*100)
	}
	return fmt.Sprintf("%.2g%%", f*100)
}

// Pow10 is a small helper for parameter sweeps.
func Pow10(exp int) int { return int(math.Pow(10, float64(exp))) }
