// Package sqltypes defines the dynamic value system shared by the parser,
// planner, execution engines and the IVM compiler: SQL scalar types, NULL
// semantics, three-valued comparison, arithmetic, casting and hashing.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the SQL scalar types supported by the engines.
type Type uint8

// Supported SQL types. TypeAny is used by the binder for untyped NULLs and
// parameters before resolution.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt    // 64-bit signed integer (INTEGER, BIGINT)
	TypeFloat  // 64-bit IEEE float (DOUBLE, REAL, DECIMAL approximation)
	TypeString // VARCHAR, TEXT
	TypeAny
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeAny:
		return "ANY"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType maps a SQL type name to a Type. It accepts the common aliases
// used by both the DuckDB and PostgreSQL dialects.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "INT2", "INT4", "INT8", "HUGEINT", "SERIAL":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC", "FLOAT4", "FLOAT8", "DOUBLE PRECISION":
		return TypeFloat, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR", "BPCHAR", "DATE", "TIMESTAMP":
		// Dates/timestamps are carried as strings; ordering on ISO-8601
		// strings matches temporal ordering, which is all the IVM
		// pipeline needs.
		return TypeString, nil
	}
	return TypeNull, fmt.Errorf("sqltypes: unknown type %q", name)
}

// Value is a dynamically typed SQL scalar. The zero Value is SQL NULL.
type Value struct {
	T Type
	B bool
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{T: TypeNull}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value { return Value{T: TypeBool, B: b} }

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{T: TypeInt, I: i} }

// NewFloat returns a DOUBLE value.
func NewFloat(f float64) Value { return Value{T: TypeFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{T: TypeString, S: s} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// AsFloat converts numeric values to float64. NULL converts to 0.
func (v Value) AsFloat() float64 {
	switch v.T {
	case TypeInt:
		return float64(v.I)
	case TypeFloat:
		return v.F
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	}
	return 0
}

// AsInt converts numeric values to int64, truncating floats toward zero.
func (v Value) AsInt() int64 {
	switch v.T {
	case TypeInt:
		return v.I
	case TypeFloat:
		return int64(v.F)
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	}
	return 0
}

// IsTrue reports whether v is the boolean TRUE (NULL and FALSE are not).
func (v Value) IsTrue() bool { return v.T == TypeBool && v.B }

// String renders the value the way the engines print result rows.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal that re-parses to the same
// value; the IVM compiler uses it when inlining delta constants.
func (v Value) SQLLiteral() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return "NULL"
}

// numericPair promotes two numeric values to a common representation.
// ok is false if either side is non-numeric.
func numericPair(a, b Value) (af, bf float64, isInt bool, ok bool) {
	num := func(v Value) (float64, bool, bool) {
		switch v.T {
		case TypeInt:
			return float64(v.I), true, true
		case TypeFloat:
			return v.F, false, true
		}
		return 0, false, false
	}
	av, ai, aok := num(a)
	bv, bi, bok := num(b)
	return av, bv, ai && bi, aok && bok
}

// Compare orders two values. NULL sorts before everything and equals only
// NULL (this is the total order used by ORDER BY and index keys; predicate
// comparison with NULL propagation lives in CompareSQL). Mixed numeric
// types compare numerically; otherwise mismatched types compare by type tag.
func Compare(a, b Value) int {
	if a.T == TypeNull || b.T == TypeNull {
		switch {
		case a.T == TypeNull && b.T == TypeNull:
			return 0
		case a.T == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if af, bf, _, ok := numericPair(a, b); ok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.T != b.T {
		if a.T < b.T {
			return -1
		}
		return 1
	}
	switch a.T {
	case TypeBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	case TypeString:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

// CompareSQL implements SQL three-valued comparison: if either operand is
// NULL the result is unknown (ok=false); otherwise cmp is as Compare.
func CompareSQL(a, b Value) (cmp int, ok bool) {
	if a.T == TypeNull || b.T == TypeNull {
		return 0, false
	}
	return Compare(a, b), true
}

// Equal reports Compare(a,b)==0. NULL equals NULL under this predicate
// (used for grouping and index keys, matching SQL GROUP BY semantics).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Arith applies a binary arithmetic operator (+ - * / %). SQL semantics:
// NULL in, NULL out; integer division truncates; division by zero yields
// NULL (the engines follow DuckDB here rather than erroring).
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.T == TypeString || b.T == TypeString {
		if op == '+' && a.T == TypeString && b.T == TypeString {
			return NewString(a.S + b.S), nil
		}
		return Null, fmt.Errorf("sqltypes: cannot apply %q to %s and %s", string(op), a.T, b.T)
	}
	af, bf, isInt, ok := numericPair(a, b)
	if !ok {
		return Null, fmt.Errorf("sqltypes: cannot apply %q to %s and %s", string(op), a.T, b.T)
	}
	if isInt {
		ai, bi := a.AsInt(), b.AsInt()
		switch op {
		case '+':
			return NewInt(ai + bi), nil
		case '-':
			return NewInt(ai - bi), nil
		case '*':
			return NewInt(ai * bi), nil
		case '/':
			if bi == 0 {
				return Null, nil
			}
			return NewInt(ai / bi), nil
		case '%':
			if bi == 0 {
				return Null, nil
			}
			return NewInt(ai % bi), nil
		}
	}
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, nil
		}
		return NewFloat(af / bf), nil
	case '%':
		if bf == 0 {
			return Null, nil
		}
		return NewFloat(math.Mod(af, bf)), nil
	}
	return Null, fmt.Errorf("sqltypes: unknown operator %q", string(op))
}

// Neg negates a numeric value; NULL in, NULL out.
func Neg(v Value) (Value, error) {
	switch v.T {
	case TypeNull:
		return Null, nil
	case TypeInt:
		return NewInt(-v.I), nil
	case TypeFloat:
		return NewFloat(-v.F), nil
	}
	return Null, fmt.Errorf("sqltypes: cannot negate %s", v.T)
}

// Cast converts v to type t following SQL CAST rules. Casting NULL to any
// type yields NULL. Failed string parses return an error.
func Cast(v Value, t Type) (Value, error) {
	if v.IsNull() || t == TypeAny || v.T == t {
		if v.T == TypeFloat && t == TypeInt {
			return NewInt(int64(v.F)), nil
		}
		return v, nil
	}
	switch t {
	case TypeBool:
		switch v.T {
		case TypeInt:
			return NewBool(v.I != 0), nil
		case TypeFloat:
			return NewBool(v.F != 0), nil
		case TypeString:
			switch strings.ToLower(strings.TrimSpace(v.S)) {
			case "true", "t", "1", "yes":
				return NewBool(true), nil
			case "false", "f", "0", "no":
				return NewBool(false), nil
			}
			return Null, fmt.Errorf("sqltypes: cannot cast %q to BOOLEAN", v.S)
		}
	case TypeInt:
		switch v.T {
		case TypeBool:
			return NewInt(v.AsInt()), nil
		case TypeFloat:
			return NewInt(int64(v.F)), nil
		case TypeString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				f, ferr := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
				if ferr != nil {
					return Null, fmt.Errorf("sqltypes: cannot cast %q to INTEGER", v.S)
				}
				return NewInt(int64(f)), nil
			}
			return NewInt(i), nil
		}
	case TypeFloat:
		switch v.T {
		case TypeBool:
			return NewFloat(v.AsFloat()), nil
		case TypeInt:
			return NewFloat(float64(v.I)), nil
		case TypeString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("sqltypes: cannot cast %q to DOUBLE", v.S)
			}
			return NewFloat(f), nil
		}
	case TypeString:
		return NewString(v.String()), nil
	}
	return Null, fmt.Errorf("sqltypes: unsupported cast %s -> %s", v.T, t)
}

// CoerceToColumn converts v for storage into a column of type t, erroring on
// lossy or nonsensical conversions the way an engine's INSERT path would.
func CoerceToColumn(v Value, t Type) (Value, error) {
	if v.IsNull() || t == TypeAny {
		return v, nil
	}
	if v.T == t {
		return v, nil
	}
	// Numeric widening/narrowing is permitted on ingest.
	if (v.T == TypeInt || v.T == TypeFloat || v.T == TypeBool) &&
		(t == TypeInt || t == TypeFloat || t == TypeBool) {
		return Cast(v, t)
	}
	if t == TypeString {
		return NewString(v.String()), nil
	}
	if v.T == TypeString {
		return Cast(v, t)
	}
	return Null, fmt.Errorf("sqltypes: cannot store %s into %s column", v.T, t)
}
