package sqltypes

import "testing"

func TestVectorAppendAndValueAt(t *testing.T) {
	v := NewVector(TypeInt, 4)
	v.AppendInt(7)
	v.AppendNull()
	v.AppendInt(-3)
	if v.Len() != 3 || v.NullCount() != 1 || v.AllValid() {
		t.Fatalf("len=%d nulls=%d", v.Len(), v.NullCount())
	}
	if got := v.ValueAt(0); got.I != 7 || got.T != TypeInt {
		t.Fatalf("cell 0 = %v", got)
	}
	if !v.ValueAt(1).IsNull() {
		t.Fatal("cell 1 must be NULL")
	}
	if got := v.ValueAt(2); got.I != -3 {
		t.Fatalf("cell 2 = %v", got)
	}
}

func TestVectorGrowPastInitialCapacity(t *testing.T) {
	v := NewVector(TypeString, 1)
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			v.AppendNull()
		} else {
			v.AppendString("x")
		}
	}
	if v.Len() != 200 {
		t.Fatalf("len = %d", v.Len())
	}
	for i := 0; i < 200; i++ {
		if got := v.Valid(i); got != (i%3 != 0) {
			t.Fatalf("validity wrong at %d", i)
		}
	}
}

func TestVectorAppendValuePromotion(t *testing.T) {
	v := NewVector(TypeFloat, 4)
	v.AppendValue(NewInt(3)) // widens into the float vector
	v.AppendValue(NewFloat(1.5))
	v.AppendValue(NewString("no")) // mismatched type degrades to NULL
	v.AppendValue(Null)
	if v.Floats[0] != 3.0 || v.Floats[1] != 1.5 {
		t.Fatalf("payload = %v", v.Floats)
	}
	if v.Valid(2) || v.Valid(3) {
		t.Fatal("cells 2,3 must be NULL")
	}
}

func TestVectorResizeAndSetNull(t *testing.T) {
	v := NewVector(TypeBool, 8)
	v.Resize(5)
	if v.Len() != 5 || !v.AllValid() {
		t.Fatalf("resize: len=%d nulls=%d", v.Len(), v.NullCount())
	}
	v.Bools[3] = true
	v.SetNull(2)
	v.SetNull(2) // idempotent
	if v.NullCount() != 1 || v.Valid(2) || !v.Valid(3) {
		t.Fatalf("nulls=%d", v.NullCount())
	}
	// Reuse after Reset keeps capacity but clears contents.
	v.Reset()
	if v.Len() != 0 || v.NullCount() != 0 {
		t.Fatal("reset failed")
	}
}

func TestVectorLoadRows(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewString("a")},
		{Null, NewString("b")},
		{NewInt(3), Null},
		{NewInt(4), NewString("d")},
	}
	v := &Vector{T: TypeInt}
	v.LoadRows(rows, nil, 0)
	if v.Len() != 4 || v.Ints[0] != 1 || v.Valid(1) || v.Ints[3] != 4 {
		t.Fatalf("full load wrong: %v nulls=%d", v.Ints, v.NullCount())
	}
	// Gather by selection vector.
	v.LoadRows(rows, []int{3, 0}, 0)
	if v.Len() != 2 || v.Ints[0] != 4 || v.Ints[1] != 1 {
		t.Fatalf("gather wrong: %v", v.Ints)
	}
	s := &Vector{T: TypeString}
	s.LoadRows(rows, []int{2}, 1)
	if s.Len() != 1 || s.Valid(0) {
		t.Fatal("NULL string cell must stay NULL")
	}
}

func TestVectorGatherFrom(t *testing.T) {
	src := NewVector(TypeInt, 8)
	for i := 0; i < 8; i++ {
		if i%3 == 1 {
			src.AppendNull()
		} else {
			src.AppendInt(int64(i * 10))
		}
	}
	v := &Vector{T: TypeInt}
	v.GatherFrom(src, []int{5, 1, 0})
	if v.Len() != 3 || v.Ints[0] != 50 || v.Valid(1) || v.Ints[2] != 0 {
		t.Fatalf("gather wrong: %v nulls=%d", v.Ints, v.NullCount())
	}
	// Must agree with LoadRows-style boxing via ValueAt.
	for j, i := range []int{5, 1, 0} {
		if !Equal(v.ValueAt(j), src.ValueAt(i)) {
			t.Fatalf("cell %d: %v vs %v", j, v.ValueAt(j), src.ValueAt(i))
		}
	}
}

func TestVectorNullOnlyType(t *testing.T) {
	v := &Vector{T: TypeNull}
	v.AppendNull()
	v.AppendNull()
	if v.Len() != 2 || v.Valid(0) || !v.ValueAt(1).IsNull() {
		t.Fatal("TypeNull vector must be all NULL")
	}
}
