package sqltypes

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull: "NULL", TypeBool: "BOOLEAN", TypeInt: "INTEGER",
		TypeFloat: "DOUBLE", TypeString: "VARCHAR", TypeAny: "ANY",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INTEGER": TypeInt, "int": TypeInt, "BIGINT": TypeInt, "SERIAL": TypeInt,
		"VARCHAR": TypeString, "text": TypeString, "DATE": TypeString,
		"BOOLEAN": TypeBool, "bool": TypeBool,
		"DOUBLE": TypeFloat, "DECIMAL": TypeFloat, "real": TypeFloat,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseType("BLOB7"); err == nil {
		t.Error("ParseType(BLOB7) should fail")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-42), "-42"},
		{NewFloat(1.5), "1.5"},
		{NewFloat(3), "3.0"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteralRoundtripQuotes(t *testing.T) {
	v := NewString("it's a 'test'")
	if got, want := v.SQLLiteral(), "'it''s a ''test'''"; got != want {
		t.Errorf("SQLLiteral = %q, want %q", got, want)
	}
	if got, want := NewBool(true).SQLLiteral(), "TRUE"; got != want {
		t.Errorf("SQLLiteral = %q, want %q", got, want)
	}
	if got, want := Null.SQLLiteral(), "NULL"; got != want {
		t.Errorf("SQLLiteral = %q, want %q", got, want)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// NULL < bool < numbers < strings, numbers compare across int/float.
	ordered := []Value{
		Null, NewBool(false), NewBool(true),
		NewInt(-5), NewFloat(-1.5), NewInt(0), NewFloat(0.5), NewInt(1),
		NewFloat(1.5), NewInt(2), NewString("a"), NewString("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if sign(got) != want {
				t.Errorf("Compare(%v,%v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareMixedNumeric(t *testing.T) {
	if Compare(NewInt(1), NewFloat(1.0)) != 0 {
		t.Error("1 should equal 1.0")
	}
	if Compare(NewInt(2), NewFloat(1.5)) != 1 {
		t.Error("2 > 1.5")
	}
}

func TestCompareSQLNullUnknown(t *testing.T) {
	if _, ok := CompareSQL(Null, NewInt(1)); ok {
		t.Error("NULL comparison must be unknown")
	}
	if _, ok := CompareSQL(NewInt(1), Null); ok {
		t.Error("NULL comparison must be unknown")
	}
	if c, ok := CompareSQL(NewInt(1), NewInt(2)); !ok || c >= 0 {
		t.Error("1 < 2 must be known")
	}
}

func TestArithInt(t *testing.T) {
	cases := []struct {
		op   byte
		a, b int64
		want int64
	}{
		{'+', 2, 3, 5}, {'-', 2, 3, -1}, {'*', 4, 3, 12},
		{'/', 7, 2, 3}, {'%', 7, 2, 1},
	}
	for _, c := range cases {
		got, err := Arith(c.op, NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("Arith(%c): %v", c.op, err)
		}
		if got.T != TypeInt || got.I != c.want {
			t.Errorf("%d %c %d = %v, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithFloatPromotion(t *testing.T) {
	got, err := Arith('+', NewInt(1), NewFloat(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.T != TypeFloat || got.F != 1.5 {
		t.Errorf("1 + 0.5 = %v, want 1.5", got)
	}
}

func TestArithNullPropagation(t *testing.T) {
	for _, op := range []byte{'+', '-', '*', '/', '%'} {
		got, err := Arith(op, Null, NewInt(1))
		if err != nil || !got.IsNull() {
			t.Errorf("NULL %c 1 = %v, %v; want NULL", op, got, err)
		}
	}
}

func TestArithDivZeroIsNull(t *testing.T) {
	for _, b := range []Value{NewInt(0), NewFloat(0)} {
		got, err := Arith('/', NewInt(1), b)
		if err != nil || !got.IsNull() {
			t.Errorf("1 / %v = %v, %v; want NULL", b, got, err)
		}
	}
}

func TestArithStringConcat(t *testing.T) {
	got, err := Arith('+', NewString("a"), NewString("b"))
	if err != nil || got.S != "ab" {
		t.Errorf("'a'+'b' = %v, %v", got, err)
	}
	if _, err := Arith('*', NewString("a"), NewInt(1)); err == nil {
		t.Error("'a' * 1 should error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(5)); v.I != -5 {
		t.Errorf("Neg(5) = %v", v)
	}
	if v, _ := Neg(NewFloat(1.5)); v.F != -1.5 {
		t.Errorf("Neg(1.5) = %v", v)
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Errorf("Neg(NULL) = %v", v)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg(string) should error")
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		want Value
	}{
		{NewString("42"), TypeInt, NewInt(42)},
		{NewString("1.5"), TypeFloat, NewFloat(1.5)},
		{NewString("true"), TypeBool, NewBool(true)},
		{NewInt(1), TypeBool, NewBool(true)},
		{NewInt(0), TypeBool, NewBool(false)},
		{NewFloat(3.7), TypeInt, NewInt(3)},
		{NewInt(3), TypeFloat, NewFloat(3)},
		{NewInt(42), TypeString, NewString("42")},
		{Null, TypeInt, Null},
	}
	for _, c := range cases {
		got, err := Cast(c.v, c.t)
		if err != nil {
			t.Fatalf("Cast(%v, %v): %v", c.v, c.t, err)
		}
		if !Equal(got, c.want) || got.T != c.want.T {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
	if _, err := Cast(NewString("zzz"), TypeInt); err == nil {
		t.Error("Cast('zzz', INT) should error")
	}
}

func TestCoerceToColumn(t *testing.T) {
	if v, err := CoerceToColumn(NewInt(1), TypeFloat); err != nil || v.T != TypeFloat {
		t.Errorf("int->float coerce: %v %v", v, err)
	}
	if v, err := CoerceToColumn(NewString("9"), TypeInt); err != nil || v.I != 9 {
		t.Errorf("string->int coerce: %v %v", v, err)
	}
	if _, err := CoerceToColumn(NewString("x"), TypeInt); err == nil {
		t.Error("bad string->int coerce should error")
	}
}

func TestRowEqualClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a"), Null}
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone must equal original")
	}
	c[0] = NewInt(2)
	if r.Equal(c) {
		t.Error("mutating clone must not affect original")
	}
	if r.Equal(Row{NewInt(1)}) {
		t.Error("rows of different length are unequal")
	}
}

func TestCompareRowsLexicographic(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("c")}
	if CompareRows(a, b) >= 0 {
		t.Error("(1,b) < (1,c)")
	}
	if CompareRows(a, a) != 0 {
		t.Error("row equals itself")
	}
	if CompareRows(Row{NewInt(1)}, a) >= 0 {
		t.Error("prefix row sorts first")
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	vals := []Value{
		Null, NewBool(false), NewBool(true), NewInt(-100), NewFloat(-0.5),
		NewInt(0), NewFloat(0.25), NewInt(7), NewFloat(1e9),
		NewString(""), NewString("a"), NewString("a\x00b"), NewString("ab"), NewString("b"),
	}
	keys := make([]string, len(vals))
	for i, v := range vals {
		keys[i] = KeyString(v)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("encoded keys not in sorted order: %q", keys)
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Adjacent multi-column values must not collide: ("a","b") != ("ab","").
	k1 := KeyString(NewString("a"), NewString("b"))
	k2 := KeyString(NewString("ab"), NewString(""))
	if k1 == k2 {
		t.Error("key encoding not injective across column boundaries")
	}
	// 1 and 1.0 must collide (numeric grouping semantics).
	if KeyString(NewInt(1)) != KeyString(NewFloat(1)) {
		t.Error("1 and 1.0 must encode identically for grouping")
	}
}

func TestEncodeKeyQuickOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := KeyString(NewInt(a)), KeyString(NewInt(b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		}
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyQuickStringOrder(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := KeyString(NewString(a)), KeyString(NewString(b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		}
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyFloatSpecials(t *testing.T) {
	a := KeyString(NewFloat(math.Inf(-1)))
	b := KeyString(NewFloat(-1))
	c := KeyString(NewFloat(1))
	d := KeyString(NewFloat(math.Inf(1)))
	if !(a < b && b < c && c < d) {
		t.Error("float specials out of order")
	}
}

func TestArithQuickAddCommutes(t *testing.T) {
	f := func(a, b int32) bool {
		x, _ := Arith('+', NewInt(int64(a)), NewInt(int64(b)))
		y, _ := Arith('+', NewInt(int64(b)), NewInt(int64(a)))
		return Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
