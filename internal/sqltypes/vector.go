package sqltypes

// Vector is a typed column of values: one flat Go slice per supported
// scalar type plus a validity bitmap, so operator inner loops can run over
// unboxed machine types instead of per-cell Value dispatch. Exactly one of
// the payload slices is active, selected by T; NULL cells keep a zero
// payload slot and a cleared validity bit.
//
// Vectors are the columnar half of the execution engine's Batch: the fused
// scan pipeline loads table columns into Vectors, expression kernels
// (internal/expr) consume and produce them, and row-oriented operators
// materialize rows from them on demand. A Vector is owned by its producer
// and reused across batches; consumers must not retain it.
type Vector struct {
	// T is the element type. TypeNull vectors carry only validity bits
	// (every cell NULL); TypeAny is not a valid vector type.
	T Type

	// Ints holds TypeInt payloads, Floats TypeFloat, Bools TypeBool and
	// Strs TypeString. Only the slice matching T is non-nil after appends.
	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string

	valid []uint64 // validity bitmap, bit i set = cell i non-NULL
	n     int
	nulls int
}

// NewVector returns an empty vector of element type t with room for
// capacity cells.
func NewVector(t Type, capacity int) *Vector {
	v := &Vector{T: t}
	v.grow(capacity)
	return v
}

// grow ensures capacity cells fit without reallocation, preserving the
// current contents. The validity bitmap is kept at full capacity length so
// bit operations never need a bounds extension.
func (v *Vector) grow(capacity int) {
	if capacity <= 0 {
		return
	}
	// Amortize incremental appends: grow to at least double the current
	// capacity (min 16) so per-cell appends stay O(1).
	if c := v.payloadCap(); c < capacity {
		if capacity < 2*c {
			capacity = 2 * c
		}
		if capacity < 16 {
			capacity = 16
		}
	}
	if words := (capacity + 63) / 64; len(v.valid) < words {
		nv := make([]uint64, words)
		copy(nv, v.valid)
		v.valid = nv
	}
	switch v.T {
	case TypeInt:
		if cap(v.Ints) < capacity {
			ns := make([]int64, v.n, capacity)
			copy(ns, v.Ints)
			v.Ints = ns
		}
	case TypeFloat:
		if cap(v.Floats) < capacity {
			ns := make([]float64, v.n, capacity)
			copy(ns, v.Floats)
			v.Floats = ns
		}
	case TypeBool:
		if cap(v.Bools) < capacity {
			ns := make([]bool, v.n, capacity)
			copy(ns, v.Bools)
			v.Bools = ns
		}
	case TypeString:
		if cap(v.Strs) < capacity {
			ns := make([]string, v.n, capacity)
			copy(ns, v.Strs)
			v.Strs = ns
		}
	}
}

func (v *Vector) payloadCap() int {
	switch v.T {
	case TypeInt:
		return cap(v.Ints)
	case TypeFloat:
		return cap(v.Floats)
	case TypeBool:
		return cap(v.Bools)
	case TypeString:
		return cap(v.Strs)
	}
	return len(v.valid) * 64
}

// Len returns the number of cells.
func (v *Vector) Len() int { return v.n }

// NullCount returns how many cells are NULL.
func (v *Vector) NullCount() int { return v.nulls }

// AllValid reports whether no cell is NULL — kernels use it to skip
// per-cell validity checks in the common dense case.
func (v *Vector) AllValid() bool { return v.nulls == 0 }

// Reset empties the vector for refilling, keeping capacity.
func (v *Vector) Reset() {
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Bools = v.Bools[:0]
	v.Strs = v.Strs[:0]
	v.n = 0
	v.nulls = 0
}

// Resize sets the logical length to n with every cell valid and payload
// slots zeroed/stale; kernels that overwrite every slot use it to avoid
// element-wise appends. Callers must then set payloads (and nulls via
// SetNull) for all n cells.
func (v *Vector) Resize(n int) {
	v.Reset()
	v.grow(n)
	v.n = n
	words := (n + 63) / 64
	v.valid = v.valid[:cap(v.valid)]
	for i := 0; i < words; i++ {
		v.valid[i] = ^uint64(0)
	}
	switch v.T {
	case TypeInt:
		v.Ints = v.Ints[:n]
	case TypeFloat:
		v.Floats = v.Floats[:n]
	case TypeBool:
		v.Bools = v.Bools[:n]
	case TypeString:
		v.Strs = v.Strs[:n]
	}
}

// Valid reports whether cell i is non-NULL.
func (v *Vector) Valid(i int) bool {
	if v.T == TypeNull {
		return false
	}
	return v.valid[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetNull marks cell i NULL. The payload slot keeps whatever value it had;
// consumers must consult Valid first.
func (v *Vector) SetNull(i int) {
	if v.Valid(i) {
		v.nulls++
		v.valid[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// AppendInt appends a non-NULL INTEGER cell. The vector must have T ==
// TypeInt.
func (v *Vector) AppendInt(x int64) {
	v.grow(v.n + 1)
	v.setValid(v.n)
	v.Ints = append(v.Ints, x)
	v.n++
}

// AppendFloat appends a non-NULL DOUBLE cell.
func (v *Vector) AppendFloat(x float64) {
	v.grow(v.n + 1)
	v.setValid(v.n)
	v.Floats = append(v.Floats, x)
	v.n++
}

// AppendBool appends a non-NULL BOOLEAN cell.
func (v *Vector) AppendBool(x bool) {
	v.grow(v.n + 1)
	v.setValid(v.n)
	v.Bools = append(v.Bools, x)
	v.n++
}

// AppendString appends a non-NULL VARCHAR cell.
func (v *Vector) AppendString(x string) {
	v.grow(v.n + 1)
	v.setValid(v.n)
	v.Strs = append(v.Strs, x)
	v.n++
}

// AppendNull appends a NULL cell (payload slot zeroed).
func (v *Vector) AppendNull() {
	v.grow(v.n + 1)
	v.valid[v.n>>6] &^= 1 << (uint(v.n) & 63)
	switch v.T {
	case TypeInt:
		v.Ints = append(v.Ints, 0)
	case TypeFloat:
		v.Floats = append(v.Floats, 0)
	case TypeBool:
		v.Bools = append(v.Bools, false)
	case TypeString:
		v.Strs = append(v.Strs, "")
	}
	v.n++
	v.nulls++
}

func (v *Vector) setValid(i int) {
	v.valid[i>>6] |= 1 << (uint(i) & 63)
}

// AppendValue appends a boxed value, converting it to the vector's element
// type with the same numeric promotion the row engine applies (ints widen
// into float vectors; anything else mismatched becomes NULL). It is the
// boxed-to-columnar bridge used when loading row storage into vectors.
func (v *Vector) AppendValue(val Value) {
	if val.IsNull() {
		v.AppendNull()
		return
	}
	switch v.T {
	case TypeInt:
		if val.T == TypeInt {
			v.AppendInt(val.I)
			return
		}
	case TypeFloat:
		switch val.T {
		case TypeFloat:
			v.AppendFloat(val.F)
			return
		case TypeInt:
			v.AppendFloat(float64(val.I))
			return
		}
	case TypeBool:
		if val.T == TypeBool {
			v.AppendBool(val.B)
			return
		}
	case TypeString:
		if val.T == TypeString {
			v.AppendString(val.S)
			return
		}
	}
	v.AppendNull()
}

// ValueAt boxes cell i back into a Value — the row-view bridge used when a
// row-oriented operator consumes a columnar batch.
func (v *Vector) ValueAt(i int) Value {
	if !v.Valid(i) {
		return Null
	}
	switch v.T {
	case TypeInt:
		return Value{T: TypeInt, I: v.Ints[i]}
	case TypeFloat:
		return Value{T: TypeFloat, F: v.Floats[i]}
	case TypeBool:
		return Value{T: TypeBool, B: v.Bools[i]}
	case TypeString:
		return Value{T: TypeString, S: v.Strs[i]}
	}
	return Null
}

// EncodeCell appends cell i's hash/sort key encoding to dst,
// byte-identical to EncodeKey(dst, v.ValueAt(i)) without boxing the cell —
// the columnar group-key path of the hash aggregation operator encodes
// key vectors cell-wise straight into its table's probe buffer.
func (v *Vector) EncodeCell(dst []byte, i int) []byte {
	if !v.Valid(i) {
		return append(dst, 0x00)
	}
	switch v.T {
	case TypeInt:
		return appendKeyNumber(dst, float64(v.Ints[i]))
	case TypeFloat:
		return appendKeyNumber(dst, v.Floats[i])
	case TypeBool:
		return appendKeyBool(dst, v.Bools[i])
	case TypeString:
		return appendKeyString(dst, v.Strs[i])
	}
	return append(dst, 0x00)
}

// GatherFrom fills the vector with src's cells at the sel positions,
// replacing any previous contents. Both vectors must share an element
// type. It is the vector-to-vector sibling of LoadRows: when a column was
// already lifted out of row storage for an earlier pipeline stage, the
// selection is applied with typed copies instead of re-boxing every cell
// from the rows.
func (v *Vector) GatherFrom(src *Vector, sel []int) {
	v.Reset()
	v.grow(len(sel))
	switch v.T {
	case TypeInt:
		for _, i := range sel {
			if src.Valid(i) {
				v.AppendInt(src.Ints[i])
			} else {
				v.AppendNull()
			}
		}
	case TypeFloat:
		for _, i := range sel {
			if src.Valid(i) {
				v.AppendFloat(src.Floats[i])
			} else {
				v.AppendNull()
			}
		}
	case TypeBool:
		for _, i := range sel {
			if src.Valid(i) {
				v.AppendBool(src.Bools[i])
			} else {
				v.AppendNull()
			}
		}
	case TypeString:
		for _, i := range sel {
			if src.Valid(i) {
				v.AppendString(src.Strs[i])
			} else {
				v.AppendNull()
			}
		}
	default:
		for range sel {
			v.AppendNull()
		}
	}
}

// LoadRows fills the vector with column col of the rows selected by sel
// (pass sel == nil for all rows), replacing any previous contents. This is
// the fused scan's late-materialization step: only the columns a pipeline
// actually references are ever lifted out of row storage, and only for the
// rows that survived the filter. Callers must know the cells match the
// vector's element type (base-table columns are validated on insert);
// for untyped sources use LoadRowsChecked.
func (v *Vector) LoadRows(rows []Row, sel []int, col int) {
	v.Reset()
	if sel == nil {
		v.grow(len(rows))
		for _, r := range rows {
			v.AppendValue(r[col])
		}
		return
	}
	v.grow(len(sel))
	for _, i := range sel {
		v.AppendValue(rows[i][col])
	}
}

// LoadRowsChecked is LoadRows that refuses lossy conversions: ok=false
// when any non-NULL cell's type neither equals the vector's element type
// nor widens losslessly into it (int into a float vector — the same
// promotion the row engine applies). Derived columns can carry cells
// whose runtime type diverges from the declared schema type (a CASE with
// mixed branch types reports its first branch), and AppendValue would
// silently turn those cells into NULLs; callers use the refusal to fall
// back to the boxed row path instead. On refusal the vector's contents
// are unspecified.
func (v *Vector) LoadRowsChecked(rows []Row, sel []int, col int) bool {
	v.Reset()
	if sel == nil {
		v.grow(len(rows))
		for _, r := range rows {
			if !v.appendValueChecked(r[col]) {
				return false
			}
		}
		return true
	}
	v.grow(len(sel))
	for _, i := range sel {
		if !v.appendValueChecked(rows[i][col]) {
			return false
		}
	}
	return true
}

func (v *Vector) appendValueChecked(val Value) bool {
	if !val.IsNull() && val.T != v.T && !(v.T == TypeFloat && val.T == TypeInt) {
		return false
	}
	v.AppendValue(val)
	return true
}
