package sqltypes

import (
	"encoding/binary"
	"math"
	"strings"
)

// Row is a tuple of values. Rows are passed by reference through the
// volcano iterators; operators that buffer rows must Clone them.
type Row []Value

// Clone returns a deep copy of the row (values are immutable, so a shallow
// slice copy suffices).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Equal reports element-wise equality under Compare semantics.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !Equal(r[i], o[i]) {
			return false
		}
	}
	return true
}

// CompareRows orders two rows lexicographically.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// String renders the row as a pipe-separated line (shell output format).
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// EncodeKey appends a binary encoding of the values to dst such that
// byte-wise lexicographic comparison of encodings matches CompareRows.
// It is used for hash-table keys and as ART index keys.
//
// Encoding per value: 1 tag byte, then payload.
//
//	NULL   -> 0x00
//	BOOL   -> 0x01, 0x00/0x01
//	number -> 0x02, 8-byte order-preserving float encoding
//	string -> 0x03, escaped bytes (0x00 -> 0x00 0xFF), terminator 0x00 0x00
//
// Ints and floats share tag 0x02 so that 1 and 1.0 group together, matching
// Compare's numeric promotion.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		switch v.T {
		case TypeNull:
			dst = append(dst, 0x00)
		case TypeBool:
			dst = appendKeyBool(dst, v.B)
		case TypeInt, TypeFloat:
			dst = appendKeyNumber(dst, v.AsFloat())
		case TypeString:
			dst = appendKeyString(dst, v.S)
		default:
			dst = append(dst, 0x00)
		}
	}
	return dst
}

func appendKeyBool(dst []byte, b bool) []byte {
	dst = append(dst, 0x01)
	if b {
		return append(dst, 0x01)
	}
	return append(dst, 0x00)
}

func appendKeyNumber(dst []byte, f float64) []byte {
	dst = append(dst, 0x02)
	bits := math.Float64bits(f)
	// Flip so that lexicographic byte order equals numeric order.
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

func appendKeyString(dst []byte, s string) []byte {
	dst = append(dst, 0x03)
	for i := 0; i < len(s); i++ {
		c := s[i]
		dst = append(dst, c)
		if c == 0x00 {
			dst = append(dst, 0xFF)
		}
	}
	return append(dst, 0x00, 0x00)
}

// KeyString returns EncodeKey as a string, suitable as a map key.
func KeyString(vals ...Value) string {
	return string(EncodeKey(nil, vals...))
}

// PartitionRows splits rows into at most parts contiguous, near-equal
// sub-slices — the unit of work of the executor's parallel partitioned
// scan. The partitions alias the input (no row is copied), cover it
// exactly and in order, and are all non-empty; fewer than parts slices
// are returned when there are not enough rows to go around.
func PartitionRows(rows []Row, parts int) [][]Row {
	if parts > len(rows) {
		parts = len(rows)
	}
	if parts <= 1 {
		if len(rows) == 0 {
			return nil
		}
		return [][]Row{rows}
	}
	out := make([][]Row, parts)
	for i := range out {
		lo, hi := i*len(rows)/parts, (i+1)*len(rows)/parts
		out[i] = rows[lo:hi]
	}
	return out
}
