package txntest

import (
	"fmt"
	"math/rand"
	"testing"

	"openivm/internal/engine"
	"openivm/internal/wire"
)

// wireConn adapts a v2 wire client to the harness: the same histories
// that run embedded also run through frames, streams, and the server's
// per-connection sessions.
type wireConn struct{ c *wire.Client }

func (c wireConn) Exec(sql string) ([][]int64, error) {
	resp, err := c.c.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, 0, len(resp.Rows))
	for _, r := range resp.Rows {
		row := make([]int64, len(r))
		for i, v := range r {
			row[i] = v.I
		}
		out = append(out, row)
	}
	return out, nil
}

func (c wireConn) Close() error { return c.c.Close() }

// newWireDB starts a server on a freshly seeded database and returns a
// dialing opener.
func newWireDB(o Options) (func() (Conn, error), func(), error) {
	db := engine.Open("txntest", engine.DialectDuckDB)
	for _, stmt := range SetupSQL(o) {
		if _, err := db.Exec(stmt); err != nil {
			return nil, nil, fmt.Errorf("seed: %w", err)
		}
	}
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	open := func() (Conn, error) {
		c, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		return wireConn{c}, nil
	}
	return open, srv.Close, nil
}

// TestSequentialHistoriesWire replays randomized histories over the v2
// wire protocol — serialization failures must survive the trip as
// SQLSTATE 40001 for the oracle's conflict checks to pass.
func TestSequentialHistoriesWire(t *testing.T) {
	seed, fromEnv := Seed()
	histories := 150
	if testing.Short() {
		histories = 20
	}
	o := Options{Sessions: 3, Keys: 4, Ops: 40}
	for i := 0; i < histories; i++ {
		s := seed + int64(i)
		h := Generate(rand.New(rand.NewSource(s)), o)
		open, teardown, err := newWireDB(o)
		if err != nil {
			t.Fatal(err)
		}
		v, rerr := RunSequential(open, h, wire.IsSerializationError, o)
		teardown()
		if rerr != nil {
			t.Fatalf("TXNTEST_SEED=%d (history %d, from env: %v): harness error: %v", seed, i, fromEnv, rerr)
		}
		if v != nil {
			min := Minimize(func() (func() (Conn, error), func(), error) { return newWireDB(o) }, h, wire.IsSerializationError, o)
			t.Fatalf("TXNTEST_SEED=%d (history %d): %v\nminimized history:\n%s", seed, i, v, Format(min))
		}
	}
}

// TestConcurrentHistoriesWire drives concurrent clients against one
// server, each goroutine on its own connection.
func TestConcurrentHistoriesWire(t *testing.T) {
	seed, _ := Seed()
	rounds := 2
	if testing.Short() {
		rounds = 1
	}
	o := Options{Keys: 4, Ops: 120}
	for round := 0; round < rounds; round++ {
		open, teardown, err := newWireDB(o)
		if err != nil {
			t.Fatal(err)
		}
		streams := GenerateStreams(rand.New(rand.NewSource(seed+int64(round))), 4, o)
		if err := RunConcurrent(open, streams, wire.IsSerializationError); err != nil {
			t.Fatalf("TXNTEST_SEED=%d round %d: %v", seed, round, err)
		}
		teardown()
	}
}
