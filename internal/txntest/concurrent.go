package txntest

import (
	"fmt"
	"math/rand"
	"sync"
)

// readObs is one observed read, audited after the run: a value that no
// successfully committed transaction wrote is a dirty or lost read.
type readObs struct {
	gid, key int
	val      int64
	ownWrite bool // value was the reader's own uncommitted write
}

// RunConcurrent executes one operation stream per goroutine against its
// own connection, with no coordination between streams — the schedule
// is whatever the scheduler produces, so checks are the conservative
// subset of snapshot isolation that holds under every interleaving:
//
//   - own writes read back within the transaction;
//   - snapshot stability: two reads of a key inside one transaction
//     (without an intervening own write) return the same value;
//   - reads only observe seeded or successfully committed values,
//     audited post-hoc once commit outcomes are known;
//   - write and commit failures are serialization errors, nothing else.
//
// Streams are generated with Generate(Options{Sessions: 1, ...}) and
// must use disjoint value ranges per goroutine (see UniqueVals).
func RunConcurrent(open func() (Conn, error), streams []History, isSer func(error) bool) error {
	var mu sync.Mutex
	committedVals := map[int64]bool{}
	var reads []readObs
	errs := make(chan error, len(streams))
	var wg sync.WaitGroup

	for gid, stream := range streams {
		wg.Add(1)
		go func(gid int, h History) {
			defer wg.Done()
			c, err := open()
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			inTxn, doomed := false, false
			ownWrites := map[int]int64{}
			firstSeen := map[int]int64{}
			pending := []int64{} // values awaiting COMMIT
			for i, op := range normalize(h) {
				rows, execErr := c.Exec(op.sql())
				switch op.Kind {
				case OpBegin:
					inTxn, doomed = true, false
					ownWrites = map[int]int64{}
					firstSeen = map[int]int64{}
					pending = pending[:0]
					if execErr != nil {
						errs <- fmt.Errorf("g%d op %d (%s): %v", gid, i, op, execErr)
						return
					}
				case OpCommit:
					if execErr == nil {
						mu.Lock()
						for _, v := range pending {
							committedVals[v] = true
						}
						mu.Unlock()
					} else if !isSer(execErr) {
						errs <- fmt.Errorf("g%d op %d (%s): non-serialization commit failure: %v", gid, i, op, execErr)
						return
					} else if !doomed {
						// A commit may only fail if some statement lost a
						// conflict first (first-updater-wins dooms at
						// statement time).
						errs <- fmt.Errorf("g%d op %d (%s): commit failed without a prior statement conflict", gid, i, op)
						return
					}
					inTxn, doomed = false, false
				case OpRollback:
					if execErr != nil {
						errs <- fmt.Errorf("g%d op %d (%s): %v", gid, i, op, execErr)
						return
					}
					inTxn, doomed = false, false
				case OpRead:
					if execErr != nil {
						errs <- fmt.Errorf("g%d op %d (%s): %v", gid, i, op, execErr)
						return
					}
					if len(rows) != 1 || len(rows[0]) != 1 {
						errs <- fmt.Errorf("g%d op %d (%s): %d rows, want 1 (row vanished)", gid, i, op, len(rows))
						return
					}
					got := rows[0][0]
					own := false
					if inTxn {
						if v, ok := ownWrites[op.Key]; ok {
							own = true
							if got != v {
								errs <- fmt.Errorf("g%d op %d (%s): own write %d not read back, got %d", gid, i, op, v, got)
								return
							}
						} else if v, ok := firstSeen[op.Key]; ok {
							if got != v {
								errs <- fmt.Errorf("g%d op %d (%s): non-repeatable read, %d then %d", gid, i, op, v, got)
								return
							}
						} else {
							firstSeen[op.Key] = got
						}
					}
					mu.Lock()
					reads = append(reads, readObs{gid: gid, key: op.Key, val: got, ownWrite: own})
					mu.Unlock()
				case OpReadAll:
					if execErr != nil {
						errs <- fmt.Errorf("g%d op %d (%s): %v", gid, i, op, execErr)
						return
					}
					for _, r := range rows {
						if len(r) != 2 {
							continue
						}
						k := int(r[0])
						v, own := r[1], false
						if inTxn {
							if ov, ok := ownWrites[k]; ok {
								own = true
								if v != ov {
									errs <- fmt.Errorf("g%d op %d (%s): own write k%d=%d not read back, got %d", gid, i, op, k, ov, v)
									return
								}
							}
						}
						mu.Lock()
						reads = append(reads, readObs{gid: gid, key: k, val: v, ownWrite: own})
						mu.Unlock()
					}
				case OpWrite:
					if execErr != nil {
						if !isSer(execErr) {
							errs <- fmt.Errorf("g%d op %d (%s): non-serialization write failure: %v", gid, i, op, execErr)
							return
						}
						if inTxn {
							doomed = true
						}
						continue
					}
					if inTxn {
						ownWrites[op.Key] = op.Val
						pending = append(pending, op.Val)
					} else {
						mu.Lock()
						committedVals[op.Val] = true
						mu.Unlock()
					}
				}
			}
		}(gid, stream)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	// Post-hoc dirty-read audit: every observed value must be the seed
	// value or a value some successfully committed writer produced.
	for _, r := range reads {
		if r.val == 0 || r.ownWrite {
			continue
		}
		if !committedVals[r.val] {
			return fmt.Errorf("g%d read k%d = %d, a value no committed transaction wrote (dirty or lost read)", r.gid, r.key, r.val)
		}
	}
	return nil
}

// UniqueVals rewrites each stream's written values into a per-goroutine
// range so every write in a concurrent run is globally unique.
func UniqueVals(streams []History) {
	for gid, h := range streams {
		for i := range h {
			if h[i].Kind == OpWrite {
				h[i].Val += int64(gid+1) * 1_000_000
			}
		}
	}
}

// GenerateStreams builds n independent single-session streams for
// RunConcurrent, already value-disjoint.
func GenerateStreams(rnd *rand.Rand, n int, o Options) []History {
	o.Sessions = 1
	streams := make([]History, n)
	for i := range streams {
		streams[i] = Generate(rand.New(rand.NewSource(rnd.Int63())), o)
	}
	UniqueVals(streams)
	return streams
}
