// Package txntest is a reusable concurrency harness for the engine's
// snapshot-isolation guarantees: it generates randomized multi-session
// transaction histories over a small key-value table, executes them
// against any SQL endpoint (an embedded engine session or a wire
// client), and checks the observed reads and commit outcomes against an
// exact snapshot-isolation oracle.
//
// Two execution modes cover different failure classes:
//
//   - Sequential mode interleaves the sessions' operations from a single
//     goroutine in a deterministic order. Because the interleaving is
//     known, the checker predicts every read result and every commit
//     outcome exactly (snapshot stability, first-updater-wins conflicts,
//     lost-update rejection). A failing history is shrunk by delta
//     debugging and printed in replayable form.
//
//   - Concurrent mode runs one operation stream per goroutine with no
//     coordination, under the race detector in CI. The oracle is
//     necessarily conservative — per-transaction snapshot stability,
//     own-writes visibility, and a post-hoc dirty-read audit: no read
//     may observe a value whose writing transaction never committed.
//
// Histories write globally unique values so every observed value maps
// back to exactly one writing operation.
//
// The seed comes from the TXNTEST_SEED environment variable when set,
// making CI failures replayable; otherwise it derives from the clock
// and is printed with any failure.
package txntest

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Conn is one database session executing SQL statements. Integer result
// columns are returned as int64 (the harness only reads integers).
type Conn interface {
	Exec(sql string) ([][]int64, error)
	Close() error
}

// OpKind enumerates history operations.
type OpKind int

const (
	OpBegin OpKind = iota
	OpCommit
	OpRollback
	OpRead    // SELECT v FROM kv WHERE k = Key
	OpReadAll // SELECT k, v FROM kv ORDER BY k
	OpWrite   // UPDATE kv SET v = Val WHERE k = Key
)

func (k OpKind) String() string {
	switch k {
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpRollback:
		return "rollback"
	case OpRead:
		return "read"
	case OpReadAll:
		return "readall"
	case OpWrite:
		return "write"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one step of a history: session Sess performs Kind.
type Op struct {
	Sess int
	Kind OpKind
	Key  int
	Val  int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpRead:
		return fmt.Sprintf("s%d read k%d", o.Sess, o.Key)
	case OpWrite:
		return fmt.Sprintf("s%d write k%d=%d", o.Sess, o.Key, o.Val)
	case OpReadAll:
		return fmt.Sprintf("s%d readall", o.Sess)
	default:
		return fmt.Sprintf("s%d %s", o.Sess, o.Kind)
	}
}

// History is an ordered operation schedule across sessions.
type History []Op

// Format renders a history one op per line for replay in a bug report.
func Format(h History) string {
	var b strings.Builder
	for i, op := range h {
		fmt.Fprintf(&b, "%3d: %s\n", i, op)
	}
	return b.String()
}

// Options sizes a generated history.
type Options struct {
	Sessions int // concurrent sessions (sequentially interleaved)
	Keys     int // distinct keys, all seeded with value 0
	Ops      int // approximate operation count
}

// Seed returns the harness seed: TXNTEST_SEED when set (replayable CI
// runs), otherwise a clock-derived seed. fromEnv reports which.
func Seed() (seed int64, fromEnv bool) {
	if v := os.Getenv("TXNTEST_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n, true
		}
	}
	return time.Now().UnixNano(), false
}

// Generate builds a random well-formed history: BEGIN only outside a
// transaction, COMMIT/ROLLBACK only inside, every open transaction
// closed at the end, and every written value unique within the history.
func Generate(rnd *rand.Rand, o Options) History {
	h := make(History, 0, o.Ops+o.Sessions)
	inTxn := make([]bool, o.Sessions)
	val := int64(1)
	for len(h) < o.Ops {
		s := rnd.Intn(o.Sessions)
		k := rnd.Intn(o.Keys)
		switch r := rnd.Intn(10); {
		case r < 3: // transaction boundary
			if !inTxn[s] {
				h = append(h, Op{Sess: s, Kind: OpBegin})
				inTxn[s] = true
			} else if rnd.Intn(4) == 0 {
				h = append(h, Op{Sess: s, Kind: OpRollback})
				inTxn[s] = false
			} else {
				h = append(h, Op{Sess: s, Kind: OpCommit})
				inTxn[s] = false
			}
		case r < 6:
			h = append(h, Op{Sess: s, Kind: OpRead, Key: k})
		case r < 7:
			h = append(h, Op{Sess: s, Kind: OpReadAll})
		default:
			h = append(h, Op{Sess: s, Kind: OpWrite, Key: k, Val: val})
			val++
		}
	}
	for s, open := range inTxn {
		if open {
			h = append(h, Op{Sess: s, Kind: OpCommit})
		}
	}
	return h
}

// normalize drops operations made invalid by minimization (BEGIN inside
// a transaction, COMMIT/ROLLBACK outside one) so any op subset replays
// as a well-formed history.
func normalize(h History) History {
	out := make(History, 0, len(h))
	inTxn := map[int]bool{}
	for _, op := range h {
		switch op.Kind {
		case OpBegin:
			if inTxn[op.Sess] {
				continue
			}
			inTxn[op.Sess] = true
		case OpCommit, OpRollback:
			if !inTxn[op.Sess] {
				continue
			}
			inTxn[op.Sess] = false
		}
		out = append(out, op)
	}
	return out
}

// SetupSQL returns the statements that seed the kv table for a history
// with o.Keys keys (all value 0).
func SetupSQL(o Options) []string {
	stmts := []string{"CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"}
	for k := 0; k < o.Keys; k++ {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO kv VALUES (%d, 0)", k))
	}
	return stmts
}

func (o Op) sql() string {
	switch o.Kind {
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpRollback:
		return "ROLLBACK"
	case OpRead:
		return fmt.Sprintf("SELECT v FROM kv WHERE k = %d", o.Key)
	case OpReadAll:
		return "SELECT k, v FROM kv ORDER BY k"
	case OpWrite:
		return fmt.Sprintf("UPDATE kv SET v = %d WHERE k = %d", o.Val, o.Key)
	}
	return ""
}

// Violation is a checked snapshot-isolation invariant breach: the
// history is valid, the database's answer was wrong.
type Violation struct {
	OpIndex int
	Op      Op
	Detail  string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("op %d (%s): %s", v.OpIndex, v.Op, v.Detail)
}

// sessModel is the oracle's view of one session during sequential replay.
type sessModel struct {
	inTxn    bool
	doomed   bool
	beginSeq int
	snap     map[int]int64 // committed state captured at BEGIN
	writes   map[int]int64 // own uncommitted writes
}

// RunSequential replays h one operation at a time against fresh
// connections from open, checking every result against the exact
// snapshot-isolation oracle. It returns a Violation for an isolation
// bug, or a non-nil error for a harness failure (connection loss,
// unexpected statement error class).
func RunSequential(open func() (Conn, error), h History, isSer func(error) bool, o Options) (*Violation, error) {
	h = normalize(h)
	conns := map[int]Conn{}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	conn := func(s int) (Conn, error) {
		if c, ok := conns[s]; ok {
			return c, nil
		}
		c, err := open()
		if err != nil {
			return nil, err
		}
		conns[s] = c
		return c, nil
	}

	committed := map[int]int64{}
	commitSeq := map[int]int{}
	for k := 0; k < o.Keys; k++ {
		committed[k] = 0
	}
	seq := 0
	sess := map[int]*sessModel{}
	model := func(s int) *sessModel {
		m, ok := sess[s]
		if !ok {
			m = &sessModel{}
			sess[s] = m
		}
		return m
	}
	// rivalHolds reports whether any other open transaction has an
	// uncommitted write on k — its end stamp makes k unwritable.
	rivalHolds := func(self, k int) bool {
		for id, m := range sess {
			if id == self || !m.inTxn {
				continue
			}
			if _, ok := m.writes[k]; ok {
				return true
			}
		}
		return false
	}

	for i, op := range h {
		c, err := conn(op.Sess)
		if err != nil {
			return nil, fmt.Errorf("open session %d: %w", op.Sess, err)
		}
		m := model(op.Sess)
		rows, execErr := c.Exec(op.sql())
		switch op.Kind {
		case OpBegin:
			if execErr != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op, execErr)
			}
			m.inTxn, m.doomed = true, false
			m.beginSeq = seq
			m.snap = make(map[int]int64, len(committed))
			for k, v := range committed {
				m.snap[k] = v
			}
			m.writes = map[int]int64{}

		case OpCommit:
			if m.doomed {
				if execErr == nil {
					return &Violation{i, op, "COMMIT of a conflict-doomed transaction succeeded (lost update admitted)"}, nil
				}
				if !isSer(execErr) {
					return nil, fmt.Errorf("op %d (%s): doomed commit failed with non-serialization error: %w", i, op, execErr)
				}
			} else {
				if execErr != nil {
					return &Violation{i, op, fmt.Sprintf("conflict-free COMMIT failed: %v", execErr)}, nil
				}
				seq++
				for k, v := range m.writes {
					committed[k] = v
					commitSeq[k] = seq
				}
			}
			m.inTxn, m.doomed, m.snap, m.writes = false, false, nil, nil

		case OpRollback:
			if execErr != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op, execErr)
			}
			m.inTxn, m.doomed, m.snap, m.writes = false, false, nil, nil

		case OpRead:
			if execErr != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op, execErr)
			}
			var want int64
			if m.inTxn {
				if v, ok := m.writes[op.Key]; ok {
					want = v
				} else {
					want = m.snap[op.Key]
				}
			} else {
				want = committed[op.Key]
			}
			if len(rows) != 1 || len(rows[0]) != 1 {
				return &Violation{i, op, fmt.Sprintf("read returned %d rows, want 1", len(rows))}, nil
			}
			if got := rows[0][0]; got != want {
				return &Violation{i, op, fmt.Sprintf("read k%d = %d, oracle says %d", op.Key, got, want)}, nil
			}

		case OpReadAll:
			if execErr != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op, execErr)
			}
			want := make(map[int]int64, len(committed))
			if m.inTxn {
				for k, v := range m.snap {
					want[k] = v
				}
				for k, v := range m.writes {
					want[k] = v
				}
			} else {
				for k, v := range committed {
					want[k] = v
				}
			}
			if len(rows) != len(want) {
				return &Violation{i, op, fmt.Sprintf("readall returned %d rows, want %d", len(rows), len(want))}, nil
			}
			keys := make([]int, 0, len(want))
			for k := range want {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for j, k := range keys {
				if len(rows[j]) != 2 || rows[j][0] != int64(k) || rows[j][1] != want[k] {
					return &Violation{i, op, fmt.Sprintf("readall row %d = %v, oracle says [%d %d]", j, rows[j], k, want[k])}, nil
				}
			}

		case OpWrite:
			conflict := rivalHolds(op.Sess, op.Key)
			if m.inTxn {
				conflict = conflict || commitSeq[op.Key] > m.beginSeq
			}
			if conflict {
				if execErr == nil {
					return &Violation{i, op, "write over a concurrent update succeeded (first-updater-wins not enforced)"}, nil
				}
				if !isSer(execErr) {
					return nil, fmt.Errorf("op %d (%s): conflict failed with non-serialization error: %w", i, op, execErr)
				}
				if m.inTxn {
					m.doomed = true
				}
				continue
			}
			if execErr != nil {
				return &Violation{i, op, fmt.Sprintf("conflict-free write failed: %v", execErr)}, nil
			}
			if m.inTxn {
				m.writes[op.Key] = op.Val
			} else {
				seq++
				committed[op.Key] = op.Val
				commitSeq[op.Key] = seq
			}
		}
	}
	return nil, nil
}

// Minimize shrinks a violating history by delta debugging: repeatedly
// drop chunks of operations (renormalizing each candidate) and keep any
// subset that still produces a violation on a fresh database. newDB
// must hand back an opener onto a freshly seeded database per call.
func Minimize(newDB func() (open func() (Conn, error), teardown func(), err error), h History, isSer func(error) bool, o Options) History {
	fails := func(cand History) bool {
		open, teardown, err := newDB()
		if err != nil {
			return false
		}
		defer teardown()
		v, _ := RunSequential(open, cand, isSer, o)
		return v != nil
	}
	h = normalize(h)
	if !fails(h) {
		return h // not reproducible on replay; report the original
	}
	chunk := len(h) / 2
	for chunk > 0 {
		shrunk := false
		for start := 0; start < len(h); {
			end := start + chunk
			if end > len(h) {
				end = len(h)
			}
			cand := make(History, 0, len(h)-(end-start))
			cand = append(cand, h[:start]...)
			cand = append(cand, h[end:]...)
			cand = normalize(cand)
			if fails(cand) {
				h = cand
				shrunk = true
				// retry same position at this chunk size
			} else {
				start = end
			}
		}
		if !shrunk {
			chunk /= 2
		}
	}
	return h
}
