package txntest

import (
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// naiveDB is a deliberately broken database with no isolation at all:
// writes land in shared state immediately (even inside a "transaction")
// and COMMIT/ROLLBACK are no-ops. The harness must catch it — a checker
// that passes a READ UNCOMMITTED store is not checking snapshot
// isolation.
type naiveDB struct {
	mu   sync.Mutex
	data map[int]int64
}

type naiveConn struct{ db *naiveDB }

var (
	readRe  = regexp.MustCompile(`^SELECT v FROM kv WHERE k = (\d+)$`)
	writeRe = regexp.MustCompile(`^UPDATE kv SET v = (\d+) WHERE k = (\d+)$`)
)

func (c naiveConn) Exec(sql string) ([][]int64, error) {
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	switch {
	case sql == "BEGIN" || sql == "COMMIT" || sql == "ROLLBACK":
		return nil, nil
	case readRe.MatchString(sql):
		k, _ := strconv.Atoi(readRe.FindStringSubmatch(sql)[1])
		return [][]int64{{c.db.data[k]}}, nil
	case writeRe.MatchString(sql):
		m := writeRe.FindStringSubmatch(sql)
		v, _ := strconv.ParseInt(m[1], 10, 64)
		k, _ := strconv.Atoi(m[2])
		c.db.data[k] = v // dirty write: visible before commit
		return nil, nil
	case strings.HasPrefix(sql, "SELECT k, v"):
		out := make([][]int64, 0, len(c.db.data))
		for k := 0; k < len(c.db.data); k++ {
			out = append(out, []int64{int64(k), c.db.data[k]})
		}
		return out, nil
	}
	return nil, fmt.Errorf("naive: unsupported %q", sql)
}

func (c naiveConn) Close() error { return nil }

func newNaiveDB(o Options) (func() (Conn, error), func(), error) {
	db := &naiveDB{data: map[int]int64{}}
	for k := 0; k < o.Keys; k++ {
		db.data[k] = 0
	}
	return func() (Conn, error) { return naiveConn{db}, nil }, func() {}, nil
}

func neverSer(error) bool { return false }

// TestOracleCatchesBrokenIsolation: the sequential checker must flag the
// naive store on a handcrafted dirty-read history and on a large share
// of random histories, and the minimizer must shrink a failure.
func TestOracleCatchesBrokenIsolation(t *testing.T) {
	o := Options{Sessions: 3, Keys: 4, Ops: 40}

	// Handcrafted dirty read: s1's uncommitted write must not be visible
	// to s0, but the naive store shows it immediately.
	dirty := History{
		{Sess: 0, Kind: OpBegin},
		{Sess: 1, Kind: OpBegin},
		{Sess: 1, Kind: OpWrite, Key: 0, Val: 7},
		{Sess: 0, Kind: OpRead, Key: 0},
		{Sess: 1, Kind: OpCommit},
		{Sess: 0, Kind: OpCommit},
	}
	open, teardown, _ := newNaiveDB(o)
	v, err := RunSequential(open, dirty, neverSer, o)
	teardown()
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("checker accepted a dirty read from the naive store")
	}

	// Random histories: most should trip some invariant; a minimized
	// reproduction must still fail and be no longer than the original.
	caught := 0
	var failing History
	for i := 0; i < 50; i++ {
		h := Generate(rand.New(rand.NewSource(int64(1000+i))), o)
		open, teardown, _ := newNaiveDB(o)
		v, err := RunSequential(open, h, neverSer, o)
		teardown()
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			caught++
			failing = h
		}
	}
	if caught < 25 {
		t.Fatalf("checker caught only %d/50 random histories on a store with no isolation", caught)
	}
	min := Minimize(func() (func() (Conn, error), func(), error) { return newNaiveDB(o) }, failing, neverSer, o)
	if len(min) == 0 || len(min) > len(normalize(failing)) {
		t.Fatalf("minimizer produced %d ops from %d", len(min), len(failing))
	}
	open, teardown, _ = newNaiveDB(o)
	v, err = RunSequential(open, min, neverSer, o)
	teardown()
	if err != nil || v == nil {
		t.Fatalf("minimized history does not reproduce: v=%v err=%v\n%s", v, err, Format(min))
	}
}

// TestGenerateWellFormed: generated histories are already normalized and
// write unique values.
func TestGenerateWellFormed(t *testing.T) {
	for i := 0; i < 20; i++ {
		h := Generate(rand.New(rand.NewSource(int64(i))), Options{Sessions: 4, Keys: 3, Ops: 60})
		if got := normalize(h); len(got) != len(h) {
			t.Fatalf("seed %d: generated history not well-formed (%d -> %d ops)", i, len(h), len(got))
		}
		seen := map[int64]bool{}
		for _, op := range h {
			if op.Kind == OpWrite {
				if seen[op.Val] {
					t.Fatalf("seed %d: duplicate written value %d", i, op.Val)
				}
				seen[op.Val] = true
			}
		}
	}
}
