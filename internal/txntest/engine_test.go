package txntest

import (
	"fmt"
	"math/rand"
	"testing"

	"openivm/internal/engine"
)

// engineConn adapts an embedded engine session to the harness.
type engineConn struct{ s *engine.Session }

func (c engineConn) Exec(sql string) ([][]int64, error) {
	res, err := c.s.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		row := make([]int64, len(r))
		for i, v := range r {
			row[i] = v.I
		}
		out = append(out, row)
	}
	return out, nil
}

func (c engineConn) Close() error { return c.s.Close() }

// newEngineDB builds a freshly seeded embedded database and returns a
// per-session opener.
func newEngineDB(o Options) (func() (Conn, error), func(), error) {
	db := engine.Open("txntest", engine.DialectDuckDB)
	for _, stmt := range SetupSQL(o) {
		if _, err := db.Exec(stmt); err != nil {
			return nil, nil, fmt.Errorf("seed: %w", err)
		}
	}
	open := func() (Conn, error) { return engineConn{db.NewSession()}, nil }
	return open, func() {}, nil
}

// TestSequentialHistoriesEngine replays randomized multi-session
// histories against the embedded engine, each checked operation by
// operation against the exact snapshot-isolation oracle. Failures are
// minimized and printed with the seed for replay (set TXNTEST_SEED to
// reproduce a CI run).
func TestSequentialHistoriesEngine(t *testing.T) {
	seed, fromEnv := Seed()
	histories := 400
	if testing.Short() {
		histories = 50
	}
	o := Options{Sessions: 3, Keys: 4, Ops: 40}
	for i := 0; i < histories; i++ {
		s := seed + int64(i)
		h := Generate(rand.New(rand.NewSource(s)), o)
		open, teardown, err := newEngineDB(o)
		if err != nil {
			t.Fatal(err)
		}
		v, rerr := RunSequential(open, h, engine.IsSerializationError, o)
		teardown()
		if rerr != nil {
			t.Fatalf("TXNTEST_SEED=%d (history %d, from env: %v): harness error: %v", seed, i, fromEnv, rerr)
		}
		if v != nil {
			min := Minimize(func() (func() (Conn, error), func(), error) { return newEngineDB(o) }, h, engine.IsSerializationError, o)
			t.Fatalf("TXNTEST_SEED=%d (history %d): %v\nminimized history:\n%s", seed, i, v, Format(min))
		}
	}
}

// TestConcurrentHistoriesEngine runs value-disjoint operation streams
// from concurrent goroutines (own session each) with the conservative
// checker — meant to run under -race in CI.
func TestConcurrentHistoriesEngine(t *testing.T) {
	seed, _ := Seed()
	rounds := 4
	if testing.Short() {
		rounds = 1
	}
	o := Options{Keys: 4, Ops: 150}
	for round := 0; round < rounds; round++ {
		open, teardown, err := newEngineDB(o)
		if err != nil {
			t.Fatal(err)
		}
		streams := GenerateStreams(rand.New(rand.NewSource(seed+int64(round))), 4, o)
		if err := RunConcurrent(open, streams, engine.IsSerializationError); err != nil {
			t.Fatalf("TXNTEST_SEED=%d round %d: %v", seed, round, err)
		}
		teardown()
	}
}
