// Package catalog implements the schema catalog shared by the OLAP and OLTP
// engines: table definitions, row storage, secondary indexes, plain views
// and the IVM metadata the paper stores alongside materialized views
// (query plan, SQL string, query type).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"openivm/internal/index/art"
	"openivm/internal/sqltypes"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    sqltypes.Type
	NotNull bool
	Default sqltypes.Value // zero Value (NULL) when absent
	HasDef  bool
}

// Table is an in-memory heap table with optional primary key (backed by an
// ART index) and secondary ART indexes. All methods are goroutine-safe for
// a single writer / many readers.
type Table struct {
	Name    string
	Columns []Column

	mu   sync.RWMutex
	rows []sqltypes.Row // nil slots are deleted rows (tombstones)
	live int            // number of non-tombstone rows

	// Primary key: column positions and index mapping encoded key -> row slot.
	pkCols  []int
	pkIndex *art.Tree

	// Write-path scratch buffers, guarded by mu (exclusive lock): every
	// writer serializes, so per-row key encoding reuses one buffer instead
	// of allocating.
	keyBuf  []byte
	valsBuf []sqltypes.Value

	// Secondary indexes by name.
	indexes map[string]*Index
}

// Index is a secondary index over one or more columns, backed by an ART.
// Non-unique indexes store a set of row slots per key.
type Index struct {
	Name    string
	Table   string
	Columns []int // column positions
	Unique  bool
	tree    *art.Tree // key -> []int (row slots) or int for unique
}

// View is a non-materialized view: a stored SELECT.
type View struct {
	Name      string
	SourceSQL string
}

// IVMMetadata mirrors the paper's metadata tables: for every materialized
// view we store its defining SQL, query classification, the generated
// propagation script and the associated delta-table names.
type IVMMetadata struct {
	ViewName    string
	SourceSQL   string
	QueryType   string // "projection", "filter", "aggregate", "join", "join_aggregate"
	BaseTables  []string
	DeltaTables []string
	DeltaView   string
	// StorageTable materializes the view ("" means the view name itself;
	// differs under AVG decomposition).
	StorageTable string
	PropagateSQL string // the stored propagation script (paper: saved to disk)
	SetupSQL     string
}

// Catalog is the root namespace of an engine instance.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
	ivm    map[string]*IVMMetadata
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
		ivm:    make(map[string]*IVMMetadata),
	}
}

func norm(name string) string { return strings.ToLower(name) }

// CreateTable adds a table. PK columns (by name) may be empty.
func (c *Catalog) CreateTable(name string, cols []Column, pk []string, ifNotExists bool) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.tables[key]; ok {
		if ifNotExists {
			return c.tables[key], nil
		}
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, ok := c.views[key]; ok {
		return nil, fmt.Errorf("catalog: %q already exists as a view", name)
	}
	t := &Table{Name: name, Columns: cols, indexes: make(map[string]*Index)}
	seen := map[string]bool{}
	for _, col := range cols {
		lc := norm(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lc] = true
	}
	for _, pkc := range pk {
		pos := t.columnPos(pkc)
		if pos < 0 {
			return nil, fmt.Errorf("catalog: primary key column %q not in table %q", pkc, name)
		}
		t.pkCols = append(t.pkCols, pos)
	}
	if len(t.pkCols) > 0 {
		t.pkIndex = art.New()
	}
	c.tables[key] = t
	return t, nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[norm(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether a table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[norm(name)]
	return ok
}

// DropTable removes a table (and its indexes). The bool reports whether
// a table was actually removed — an IF EXISTS no-op returns (false, nil),
// so callers can skip invalidation work when nothing changed.
func (c *Catalog) DropTable(name string, ifExists bool) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.tables[key]; !ok {
		if ifExists {
			return false, nil
		}
		return false, fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	return true, nil
}

// CreateView registers a plain (virtual) view.
func (c *Catalog) CreateView(name, sourceSQL string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("catalog: %q already exists as a table", name)
	}
	c.views[key] = &View{Name: name, SourceSQL: sourceSQL}
	return nil
}

// View looks up a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[norm(name)]
	return v, ok
}

// DropView removes a view. The bool reports whether a view was actually
// removed (see DropTable).
func (c *Catalog) DropView(name string, ifExists bool) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.views[key]; !ok {
		if ifExists {
			return false, nil
		}
		return false, fmt.Errorf("catalog: view %q does not exist", name)
	}
	delete(c.views, key)
	return true, nil
}

// PutIVM stores IVM metadata for a materialized view.
func (c *Catalog) PutIVM(m *IVMMetadata) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ivm[norm(m.ViewName)] = m
}

// IVM returns the IVM metadata for a view, if any.
func (c *Catalog) IVM(view string) (*IVMMetadata, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.ivm[norm(view)]
	return m, ok
}

// DropIVM removes IVM metadata.
func (c *Catalog) DropIVM(view string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.ivm, norm(view))
}

// IVMViews lists registered materialized views sorted by name.
func (c *Catalog) IVMViews() []*IVMMetadata {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*IVMMetadata, 0, len(c.ivm))
	for _, m := range c.ivm {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ViewName < out[j].ViewName })
	return out
}

// IVMForBaseTable returns the materialized views that depend on table name.
func (c *Catalog) IVMForBaseTable(name string) []*IVMMetadata {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IVMMetadata
	key := norm(name)
	for _, m := range c.ivm {
		for _, bt := range m.BaseTables {
			if norm(bt) == key {
				out = append(out, m)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ViewName < out[j].ViewName })
	return out
}

// TableNames returns all table names sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Table data operations
// ---------------------------------------------------------------------------

func (t *Table) columnPos(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnPos returns the position of the named column or -1.
func (t *Table) ColumnPos(name string) int { return t.columnPos(name) }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// HasPrimaryKey reports whether the table has a primary key.
func (t *Table) HasPrimaryKey() bool { return len(t.pkCols) > 0 }

// PrimaryKeyColumns returns the PK column positions.
func (t *Table) PrimaryKeyColumns() []int { return t.pkCols }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// pkKey encodes row's primary-key values into the table's write-path
// scratch buffer; callers must hold mu exclusively and must not retain the
// result past the next pkKey call (the ART copies keys it stores).
func (t *Table) pkKey(row sqltypes.Row) []byte {
	t.valsBuf = t.valsBuf[:0]
	for _, p := range t.pkCols {
		t.valsBuf = append(t.valsBuf, row[p])
	}
	t.keyBuf = sqltypes.EncodeKey(t.keyBuf[:0], t.valsBuf...)
	return t.keyBuf
}

// validate coerces the row to the column types and checks NOT NULL. The
// input row is returned as-is when no value needs coercion (values are
// immutable, so storage can alias the caller's row); a copy is made only
// when a value actually changes.
func (t *Table) validate(row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(row), len(t.Columns))
	}
	out := row
	copied := false
	for i, v := range row {
		cv, err := sqltypes.CoerceToColumn(v, t.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("table %s column %s: %w", t.Name, t.Columns[i].Name, err)
		}
		if cv.IsNull() && t.Columns[i].NotNull {
			return nil, fmt.Errorf("table %s: NOT NULL constraint on %s violated", t.Name, t.Columns[i].Name)
		}
		if cv != v && !copied {
			out = row.Clone()
			copied = true
		}
		if copied {
			out[i] = cv
		}
	}
	return out, nil
}

// Insert appends a row. With a primary key, a duplicate key is an error.
func (t *Table) Insert(row sqltypes.Row) error {
	r, err := t.validate(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pkIndex != nil {
		key := t.pkKey(r)
		if _, ok := t.pkIndex.Get(key); ok {
			return fmt.Errorf("table %s: duplicate primary key %v", t.Name, r)
		}
		t.pkIndex.Put(key, len(t.rows))
	}
	t.insertIndexedLocked(r, len(t.rows))
	t.rows = append(t.rows, r)
	t.live++
	return nil
}

// InsertBatch appends rows under a single lock acquisition — the batched
// DML path. Semantics match calling Insert per row: on the first failing
// row it stops and returns the error, leaving earlier rows inserted. The
// returned count says how many rows landed, so callers can undo-log the
// prefix even on failure.
func (t *Table) InsertBatch(rows []sqltypes.Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, row := range rows {
		r, err := t.validate(row)
		if err != nil {
			return i, err
		}
		if t.pkIndex != nil {
			key := t.pkKey(r)
			if _, ok := t.pkIndex.Get(key); ok {
				return i, fmt.Errorf("table %s: duplicate primary key %v", t.Name, r)
			}
			t.pkIndex.Put(key, len(t.rows))
		}
		t.insertIndexedLocked(r, len(t.rows))
		t.rows = append(t.rows, r)
		t.live++
	}
	return len(rows), nil
}

// InsertVecs appends n rows given as typed column vectors — the columnar
// DML sink INSERT ... SELECT uses when its source pipeline produces
// columnar batches, so rows materialize straight from the vector payloads
// into one row-major slab with no intermediate row view. Validation is
// hoisted out of the row loop: a vector whose type matches its column
// needs no per-value coercion, only a NOT NULL sweep over the validity
// bitmap. Semantics match InsertBatch row for row: the first failing row
// stops the insert, earlier rows stay, and the returned count says how
// many landed. The built rows are returned (durable slab rows) so callers
// can fire triggers and undo-log the inserted prefix without rebuilding.
func (t *Table) InsertVecs(cols []*sqltypes.Vector, n int) ([]sqltypes.Row, int, error) {
	if len(cols) != len(t.Columns) {
		return nil, 0, fmt.Errorf("table %s: batch has %d columns, want %d", t.Name, len(cols), len(t.Columns))
	}
	width := len(t.Columns)
	slab := make([]sqltypes.Value, n*width)
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row(slab[i*width : (i+1)*width : (i+1)*width])
	}

	// Column-wise materialization + validation. A later column's failure
	// must not mask an earlier row's: track the lowest failing row (ties
	// resolved by column order, like the row-at-a-time path).
	badRow, badCol := n, -1
	var badErr error
	note := func(i, j int, err error) {
		if i < badRow || (i == badRow && j < badCol) {
			badRow, badCol, badErr = i, j, err
		}
	}
	for j, vec := range cols {
		col := &t.Columns[j]
		if vec.Len() < n {
			return nil, 0, fmt.Errorf("table %s: column %s vector has %d cells, want %d", t.Name, col.Name, vec.Len(), n)
		}
		direct := vec.T == col.Type || col.Type == sqltypes.TypeAny
		for i := 0; i < n && i <= badRow; i++ {
			v := vec.ValueAt(i)
			if !direct && !v.IsNull() {
				cv, err := sqltypes.CoerceToColumn(v, col.Type)
				if err != nil {
					note(i, j, fmt.Errorf("table %s column %s: %w", t.Name, col.Name, err))
					continue
				}
				v = cv
			}
			if v.IsNull() && col.NotNull {
				note(i, j, fmt.Errorf("table %s: NOT NULL constraint on %s violated", t.Name, col.Name))
				continue
			}
			slab[i*width+j] = v
		}
	}
	if badRow < n {
		n = badRow // rows before the first failure still insert below
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < n; i++ {
		r := rows[i]
		if t.pkIndex != nil {
			key := t.pkKey(r)
			if _, ok := t.pkIndex.Get(key); ok {
				return rows[:i], i, fmt.Errorf("table %s: duplicate primary key %v", t.Name, r)
			}
			t.pkIndex.Put(key, len(t.rows))
		}
		t.insertIndexedLocked(r, len(t.rows))
		t.rows = append(t.rows, r)
		t.live++
	}
	if badErr != nil {
		return rows[:n], n, badErr
	}
	return rows[:n], n, nil
}

// Upsert inserts, or replaces the existing row with the same primary key
// (DuckDB INSERT OR REPLACE). The table must have a primary key.
func (t *Table) Upsert(row sqltypes.Row) error {
	r, err := t.validate(row)
	if err != nil {
		return err
	}
	if t.pkIndex == nil {
		return fmt.Errorf("table %s: INSERT OR REPLACE requires a primary key or unique index", t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.pkKey(r)
	if slot, ok := t.pkIndex.Get(key); ok {
		old := t.rows[slot.(int)]
		t.removeIndexedLocked(old, slot.(int))
		t.rows[slot.(int)] = r
		t.insertIndexedLocked(r, slot.(int))
		return nil
	}
	t.pkIndex.Put(key, len(t.rows))
	t.insertIndexedLocked(r, len(t.rows))
	t.rows = append(t.rows, r)
	t.live++
	return nil
}

// UpsertMerge inserts or, on conflict, replaces only the given column
// positions with values computed by merge(old, new) — used by the
// PostgreSQL-dialect ON CONFLICT DO UPDATE path.
func (t *Table) UpsertMerge(row sqltypes.Row, merge func(old, new sqltypes.Row) (sqltypes.Row, error)) error {
	r, err := t.validate(row)
	if err != nil {
		return err
	}
	if t.pkIndex == nil {
		return fmt.Errorf("table %s: ON CONFLICT requires a primary key", t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.pkKey(r)
	if slot, ok := t.pkIndex.Get(key); ok {
		old := t.rows[slot.(int)]
		merged, err := merge(old, r)
		if err != nil {
			return err
		}
		merged2, err := t.validate(merged)
		if err != nil {
			return err
		}
		t.removeIndexedLocked(old, slot.(int))
		t.rows[slot.(int)] = merged2
		t.insertIndexedLocked(merged2, slot.(int))
		return nil
	}
	t.pkIndex.Put(key, len(t.rows))
	t.insertIndexedLocked(r, len(t.rows))
	t.rows = append(t.rows, r)
	t.live++
	return nil
}

// Delete removes all rows matching pred, returning them.
func (t *Table) Delete(pred func(sqltypes.Row) (bool, error)) ([]sqltypes.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var deleted []sqltypes.Row
	for i, r := range t.rows {
		if r == nil {
			continue
		}
		ok, err := pred(r)
		if err != nil {
			return deleted, err
		}
		if !ok {
			continue
		}
		if t.pkIndex != nil {
			t.pkIndex.Delete(t.pkKey(r))
		}
		t.removeIndexedLocked(r, i)
		deleted = append(deleted, r)
		t.rows[i] = nil
		t.live--
	}
	return deleted, nil
}

// DeleteOne removes at most one row equal to the given row (used by Z-set
// semantics: one deletion cancels one multiplicity unit, so duplicates
// delete one copy at a time). Returns true if a row was removed.
func (t *Table) DeleteOne(row sqltypes.Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rows {
		if r == nil || !r.Equal(row) {
			continue
		}
		if t.pkIndex != nil {
			t.pkIndex.Delete(t.pkKey(r))
		}
		t.removeIndexedLocked(r, i)
		t.rows[i] = nil
		t.live--
		return true
	}
	return false
}

// Update applies set to all rows matching pred, returning (old, new) pairs.
func (t *Table) Update(pred func(sqltypes.Row) (bool, error), set func(sqltypes.Row) (sqltypes.Row, error)) (old, new []sqltypes.Row, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rows {
		if r == nil {
			continue
		}
		ok, perr := pred(r)
		if perr != nil {
			return old, new, perr
		}
		if !ok {
			continue
		}
		nr, serr := set(r)
		if serr != nil {
			return old, new, serr
		}
		nr, serr = t.validate(nr)
		if serr != nil {
			return old, new, serr
		}
		if t.pkIndex != nil {
			// pkKey reuses one scratch buffer; copy the old key before
			// encoding the new one so the comparison sees both.
			oldKey := append([]byte(nil), t.pkKey(r)...)
			newKey := t.pkKey(nr)
			if string(oldKey) != string(newKey) {
				if _, exists := t.pkIndex.Get(newKey); exists {
					return old, new, fmt.Errorf("table %s: update violates primary key", t.Name)
				}
				t.pkIndex.Delete(oldKey)
				t.pkIndex.Put(newKey, i)
			}
		}
		t.removeIndexedLocked(r, i)
		t.rows[i] = nr
		t.insertIndexedLocked(nr, i)
		old = append(old, r)
		new = append(new, nr)
	}
	return old, new, nil
}

// Truncate removes all rows. The backing array is released rather than
// reused so snapshots handed out earlier never observe post-truncate
// writes.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	t.live = 0
	if t.pkIndex != nil {
		t.pkIndex = art.New()
	}
	for _, idx := range t.indexes {
		idx.tree = art.New()
	}
}

// Scan calls fn for every live row. fn must not retain the row without
// cloning. Returning an error stops the scan.
func (t *Table) Scan(fn func(sqltypes.Row) error) error {
	t.mu.RLock()
	// Copy the slice header so concurrent appends don't race; slots already
	// present are immutable rows or tombstones.
	rows := t.rows
	t.mu.RUnlock()
	for _, r := range rows {
		if r == nil {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns a snapshot copy of all live rows.
func (t *Table) Rows() []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]sqltypes.Row, 0, t.live)
	for _, r := range t.rows {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// LookupPK returns the row with the given primary-key values, if present.
func (t *Table) LookupPK(vals ...sqltypes.Value) (sqltypes.Row, bool) {
	if t.pkIndex == nil {
		return nil, false
	}
	// Stack buffer: readers run concurrently under RLock, so the shared
	// write-path scratch is off limits here.
	var buf [64]byte
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkIndex.Get(sqltypes.EncodeKey(buf[:0], vals...))
	if !ok {
		return nil, false
	}
	return t.rows[slot.(int)], true
}

// LookupPKRow is LookupPK with the key values taken from a full-width
// candidate row — the upsert path's per-row existence probe. Stack
// buffers keep the probe allocation-free (the INSERT OR REPLACE loop the
// IVM combine step runs calls this once per source row).
func (t *Table) LookupPKRow(row sqltypes.Row) (sqltypes.Row, bool) {
	if t.pkIndex == nil {
		return nil, false
	}
	var vbuf [8]sqltypes.Value
	vals := vbuf[:0]
	for _, p := range t.pkCols {
		if p >= len(row) {
			return nil, false
		}
		vals = append(vals, row[p])
	}
	var buf [64]byte
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.pkIndex.Get(sqltypes.EncodeKey(buf[:0], vals...))
	if !ok {
		return nil, false
	}
	return t.rows[slot.(int)], true
}

// ---------------------------------------------------------------------------
// Secondary indexes
// ---------------------------------------------------------------------------

// CreateIndex builds a secondary index over the named columns. The build
// follows the paper's observation about ART construction: rows are loaded
// in chunks, each chunk's sorted run is merged into the tree (art.BulkInsert).
func (t *Table) CreateIndex(name string, cols []string, unique bool, ifNotExists bool) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := norm(name)
	if _, ok := t.indexes[key]; ok {
		if ifNotExists {
			return t.indexes[key], nil
		}
		return nil, fmt.Errorf("catalog: index %q already exists on %s", name, t.Name)
	}
	idx := &Index{Name: name, Table: t.Name, Unique: unique, tree: art.New()}
	for _, cn := range cols {
		pos := t.columnPos(cn)
		if pos < 0 {
			return nil, fmt.Errorf("catalog: index column %q not in table %q", cn, t.Name)
		}
		idx.Columns = append(idx.Columns, pos)
	}
	// Chunked bulk build (paper: "more efficient to build small indexes for
	// each chunk and merge them").
	const chunk = 2048
	for lo := 0; lo < len(t.rows); lo += chunk {
		hi := lo + chunk
		if hi > len(t.rows) {
			hi = len(t.rows)
		}
		var pairs []art.KV
		for slot := lo; slot < hi; slot++ {
			r := t.rows[slot]
			if r == nil {
				continue
			}
			pairs = append(pairs, art.KV{Key: idx.keyFor(r), Val: slot})
		}
		if err := idx.mergeChunk(pairs); err != nil {
			return nil, err
		}
	}
	t.indexes[key] = idx
	return idx, nil
}

// Indexes lists the table's secondary indexes sorted by name.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Index returns a secondary index by name.
func (t *Table) Index(name string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[norm(name)]
	return idx, ok
}

func (idx *Index) keyFor(r sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, len(idx.Columns))
	for i, p := range idx.Columns {
		vals[i] = r[p]
	}
	return sqltypes.EncodeKey(nil, vals...)
}

func (idx *Index) mergeChunk(pairs []art.KV) error {
	if idx.Unique {
		for _, kv := range pairs {
			if _, ok := idx.tree.Get(kv.Key); ok {
				return fmt.Errorf("catalog: unique index %q violated", idx.Name)
			}
			idx.tree.Put(kv.Key, []int{kv.Val.(int)})
		}
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return string(pairs[i].Key) < string(pairs[j].Key) })
	for _, kv := range pairs {
		if v, ok := idx.tree.Get(kv.Key); ok {
			idx.tree.Put(kv.Key, append(v.([]int), kv.Val.(int)))
		} else {
			idx.tree.Put(kv.Key, []int{kv.Val.(int)})
		}
	}
	return nil
}

func (t *Table) insertIndexedLocked(r sqltypes.Row, slot int) {
	for _, idx := range t.indexes {
		key := idx.keyFor(r)
		if v, ok := idx.tree.Get(key); ok {
			idx.tree.Put(key, append(v.([]int), slot))
		} else {
			idx.tree.Put(key, []int{slot})
		}
	}
}

func (t *Table) removeIndexedLocked(r sqltypes.Row, slot int) {
	for _, idx := range t.indexes {
		key := idx.keyFor(r)
		if v, ok := idx.tree.Get(key); ok {
			slots := v.([]int)
			for i, s := range slots {
				if s == slot {
					slots = append(slots[:i], slots[i+1:]...)
					break
				}
			}
			if len(slots) == 0 {
				idx.tree.Delete(key)
			} else {
				idx.tree.Put(key, slots)
			}
		}
	}
}

// LookupIndex returns the rows whose indexed columns equal vals.
func (t *Table) LookupIndex(idx *Index, vals ...sqltypes.Value) []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := idx.tree.Get(sqltypes.EncodeKey(nil, vals...))
	if !ok {
		return nil
	}
	slots := v.([]int)
	out := make([]sqltypes.Row, 0, len(slots))
	for _, s := range slots {
		if r := t.rows[s]; r != nil {
			out = append(out, r)
		}
	}
	return out
}
