// Package catalog implements the schema catalog shared by the OLAP and OLTP
// engines: table definitions, row storage, secondary indexes, plain views
// and the IVM metadata the paper stores alongside materialized views
// (query plan, SQL string, query type).
//
// Row storage is multi-versioned: every row slot carries begin/end stamps
// (see internal/mvcc) so concurrent transactions read consistent snapshots
// while writers append new versions instead of mutating shared state.
// Version chains are linked newest-to-oldest through per-slot prev
// pointers; the primary-key index always maps a key to its newest slot.
// Legacy (nil-transaction) writes stamp themselves with the latest
// committed timestamp, making them immediately visible everywhere — the
// pre-MVCC semantics the IVM delta-capture path relies on.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"openivm/internal/enginerr"
	"openivm/internal/index/art"
	"openivm/internal/mvcc"
	"openivm/internal/sqltypes"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    sqltypes.Type
	NotNull bool
	Default sqltypes.Value // zero Value (NULL) when absent
	HasDef  bool
}

// verMeta is the version metadata for one row slot: begin/end stamps (see
// mvcc for the stamp encoding) and the slot of the previous version of the
// same primary key (-1 when none). Stamps are only read or written under
// the table mutex; the write lock is required to change them.
type verMeta struct {
	begin uint64
	end   uint64 // 0 = live (not deleted)
	prev  int32
}

// Table is an in-memory multi-versioned heap table with optional primary
// key (backed by an ART index) and secondary ART indexes. All methods are
// goroutine-safe; writers serialize on the table lock while readers run
// concurrently under the shared lock.
type Table struct {
	Name    string
	Columns []Column

	mu   sync.RWMutex
	rows []sqltypes.Row // nil slots are reclaimed/aborted versions
	vers []verMeta      // parallel to rows
	live int            // live-version count (includes uncommitted inserts)

	unlogged bool // excluded from the WAL and checkpoints (IVM-derived)

	// pinned counts in-flight transactions holding write-log references to
	// slots of this table. While nonzero, GC must not compact (renumber
	// slots) and TRUNCATE must not physically reset the arrays.
	pinned int

	// mv is the catalog-wide transaction manager; set at CreateTable.
	mv *mvcc.Manager

	// Primary key: column positions and index mapping encoded key -> slot
	// of the newest version for that key.
	pkCols  []int
	pkIndex *art.Tree

	// Write-path scratch buffers, guarded by mu (exclusive lock): every
	// writer serializes, so per-row key encoding reuses one buffer instead
	// of allocating.
	keyBuf  []byte
	valsBuf []sqltypes.Value

	// Secondary indexes by name.
	indexes map[string]*Index
}

// Index is a secondary index over one or more columns, backed by an ART.
// Non-unique indexes store a set of row slots per key. Index entries are
// not removed on delete — versions stay indexed until GC reclaims them —
// so lookups filter by snapshot visibility.
type Index struct {
	Name    string
	Table   string
	Columns []int // column positions
	Unique  bool
	tree    *art.Tree // key -> []int (row slots)
}

// View is a non-materialized view: a stored SELECT.
type View struct {
	Name      string
	SourceSQL string
}

// IVMMetadata mirrors the paper's metadata tables: for every materialized
// view we store its defining SQL, query classification, the generated
// propagation script and the associated delta-table names.
type IVMMetadata struct {
	ViewName    string
	SourceSQL   string
	QueryType   string // "projection", "filter", "aggregate", "join", "join_aggregate"
	BaseTables  []string
	DeltaTables []string
	DeltaView   string
	// StorageTable materializes the view ("" means the view name itself;
	// differs under AVG decomposition).
	StorageTable string
	PropagateSQL string // the stored propagation script (paper: saved to disk)
	SetupSQL     string
}

// Catalog is the root namespace of an engine instance.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
	ivm    map[string]*IVMMetadata

	mv *mvcc.Manager
}

// New returns an empty catalog with a fresh transaction manager wired to
// sweep the catalog's tables.
func New() *Catalog {
	c := &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
		ivm:    make(map[string]*IVMMetadata),
		mv:     mvcc.NewManager(),
	}
	c.mv.SetSweeper(c.sweep)
	return c
}

// MVCC returns the catalog's transaction manager.
func (c *Catalog) MVCC() *mvcc.Manager { return c.mv }

// sweep is the storage half of GC: reclaim versions dead at or before the
// watermark in every table. Installed as the manager's sweeper.
func (c *Catalog) sweep(watermark uint64) int {
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.RUnlock()
	n := 0
	for _, t := range tables {
		n += t.gc(watermark)
	}
	return n
}

func norm(name string) string { return strings.ToLower(name) }

// CreateTable adds a table. PK columns (by name) may be empty.
func (c *Catalog) CreateTable(name string, cols []Column, pk []string, ifNotExists bool) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.tables[key]; ok {
		if ifNotExists {
			return c.tables[key], nil
		}
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, ok := c.views[key]; ok {
		return nil, fmt.Errorf("catalog: %q already exists as a view", name)
	}
	t := &Table{Name: name, Columns: cols, indexes: make(map[string]*Index), mv: c.mv}
	seen := map[string]bool{}
	for _, col := range cols {
		lc := norm(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lc] = true
	}
	for _, pkc := range pk {
		pos := t.columnPos(pkc)
		if pos < 0 {
			return nil, fmt.Errorf("catalog: primary key column %q not in table %q", pkc, name)
		}
		t.pkCols = append(t.pkCols, pos)
	}
	if len(t.pkCols) > 0 {
		t.pkIndex = art.New()
	}
	c.tables[key] = t
	return t, nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[norm(name)]
	if !ok {
		return nil, enginerr.Newf(enginerr.CodeUndefinedTable, "catalog: table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether a table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[norm(name)]
	return ok
}

// DropTable removes a table (and its indexes). The bool reports whether
// a table was actually removed — an IF EXISTS no-op returns (false, nil),
// so callers can skip invalidation work when nothing changed.
func (c *Catalog) DropTable(name string, ifExists bool) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.tables[key]; !ok {
		if ifExists {
			return false, nil
		}
		return false, enginerr.Newf(enginerr.CodeUndefinedTable, "catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	return true, nil
}

// CreateView registers a plain (virtual) view.
func (c *Catalog) CreateView(name, sourceSQL string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("catalog: %q already exists as a table", name)
	}
	c.views[key] = &View{Name: name, SourceSQL: sourceSQL}
	return nil
}

// View looks up a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[norm(name)]
	return v, ok
}

// Views lists all plain views sorted by name (checkpoint assembly).
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropView removes a view. The bool reports whether a view was actually
// removed (see DropTable).
func (c *Catalog) DropView(name string, ifExists bool) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.views[key]; !ok {
		if ifExists {
			return false, nil
		}
		return false, enginerr.Newf(enginerr.CodeUndefinedTable, "catalog: view %q does not exist", name)
	}
	delete(c.views, key)
	return true, nil
}

// PutIVM stores IVM metadata for a materialized view.
func (c *Catalog) PutIVM(m *IVMMetadata) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ivm[norm(m.ViewName)] = m
}

// IVM returns the IVM metadata for a view, if any.
func (c *Catalog) IVM(view string) (*IVMMetadata, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.ivm[norm(view)]
	return m, ok
}

// DropIVM removes IVM metadata.
func (c *Catalog) DropIVM(view string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.ivm, norm(view))
}

// IVMViews lists registered materialized views sorted by name.
func (c *Catalog) IVMViews() []*IVMMetadata {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*IVMMetadata, 0, len(c.ivm))
	for _, m := range c.ivm {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ViewName < out[j].ViewName })
	return out
}

// IVMForBaseTable returns the materialized views that depend on table name.
func (c *Catalog) IVMForBaseTable(name string) []*IVMMetadata {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IVMMetadata
	key := norm(name)
	for _, m := range c.ivm {
		for _, bt := range m.BaseTables {
			if norm(bt) == key {
				out = append(out, m)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ViewName < out[j].ViewName })
	return out
}

// TableNames returns all table names sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Table data operations
// ---------------------------------------------------------------------------

func (t *Table) columnPos(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnPos returns the position of the named column or -1.
func (t *Table) ColumnPos(name string) int { return t.columnPos(name) }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// HasPrimaryKey reports whether the table has a primary key.
func (t *Table) HasPrimaryKey() bool { return len(t.pkCols) > 0 }

// PrimaryKeyColumns returns the PK column positions.
func (t *Table) PrimaryKeyColumns() []int { return t.pkCols }

// PrimaryKeyColumnNames returns the PK column names in key order.
func (t *Table) PrimaryKeyColumnNames() []string {
	out := make([]string, len(t.pkCols))
	for i, pos := range t.pkCols {
		out[i] = t.Columns[pos].Name
	}
	return out
}

// TableName returns the table's name (storage.Table).
func (t *Table) TableName() string { return t.Name }

// SetUnlogged marks the table as excluded from the write-ahead log and
// from checkpoints. The IVM extension uses it for delta and view
// storage tables, which recovery rebuilds from base state.
func (t *Table) SetUnlogged() {
	t.mu.Lock()
	t.unlogged = true
	t.mu.Unlock()
}

// Unlogged reports whether the table is excluded from durability.
func (t *Table) Unlogged() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.unlogged
}

// RowAt returns the row stored in a write-log slot. Redo capture uses
// it to resolve an undo-log op's slot reference to the committed row
// payload; the returned slice is the live backing row, so callers must
// finish with it before the commit critical section ends.
func (t *Table) RowAt(slot int32) sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(slot) >= len(t.rows) {
		return nil
	}
	return t.rows[slot]
}

// RowCount returns the number of live row versions. Under concurrent
// transactions this counts uncommitted inserts and excludes uncommitted
// deletes — an estimate, which is all its callers (planning, stats) need.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// pkKey encodes row's primary-key values into the table's write-path
// scratch buffer; callers must hold mu exclusively and must not retain the
// result past the next pkKey call (the ART copies keys it stores).
func (t *Table) pkKey(row sqltypes.Row) []byte {
	t.valsBuf = t.valsBuf[:0]
	for _, p := range t.pkCols {
		t.valsBuf = append(t.valsBuf, row[p])
	}
	t.keyBuf = sqltypes.EncodeKey(t.keyBuf[:0], t.valsBuf...)
	return t.keyBuf
}

// validate coerces the row to the column types and checks NOT NULL. The
// input row is returned as-is when no value needs coercion (values are
// immutable, so storage can alias the caller's row); a copy is made only
// when a value actually changes.
func (t *Table) validate(row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(row), len(t.Columns))
	}
	out := row
	copied := false
	for i, v := range row {
		cv, err := sqltypes.CoerceToColumn(v, t.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("table %s column %s: %w", t.Name, t.Columns[i].Name, err)
		}
		if cv.IsNull() && t.Columns[i].NotNull {
			return nil, fmt.Errorf("table %s: NOT NULL constraint on %s violated", t.Name, t.Columns[i].Name)
		}
		if cv != v && !copied {
			out = row.Clone()
			copied = true
		}
		if copied {
			out[i] = cv
		}
	}
	return out, nil
}

// readSnapLocked resolves the snapshot a write path validates against:
// the transaction's snapshot, or latest-committed for legacy writes.
func (t *Table) readSnapLocked(tx *mvcc.Txn) mvcc.Snapshot {
	if tx != nil {
		return tx.Snapshot()
	}
	return t.mv.Current()
}

// beginStamp is the begin stamp a new version gets: the writer's tagged
// txn id, or — for legacy writes — the latest committed timestamp, which
// makes the version immediately visible to every current snapshot.
func (t *Table) beginStamp(tx *mvcc.Txn) uint64 {
	if tx != nil {
		return tx.StampID()
	}
	return t.mv.LatestTS()
}

// logLocked records a write-log entry and pins the table on the
// transaction's first op against it.
func (t *Table) logLocked(tx *mvcc.Txn, op mvcc.Op) {
	if tx == nil {
		return
	}
	if tx.Log(t, op) {
		t.pinned++
	}
}

// dupVisibleLocked walks the version chain rooted at slot and reports
// whether any version is visible to sn — the duplicate-key test.
func (t *Table) dupVisibleLocked(sn mvcc.Snapshot, slot int32) bool {
	for s := slot; s >= 0; s = t.vers[s].prev {
		if t.rows[s] != nil && sn.Visible(t.vers[s].begin, t.vers[s].end) {
			return true
		}
	}
	return false
}

// appendVersionLocked appends a new version of r begin-stamped by tx with
// the given chain predecessor, updates the pk mapping (key may be nil when
// the table has no primary key) and secondary indexes, and logs the op.
func (t *Table) appendVersionLocked(tx *mvcc.Txn, r sqltypes.Row, key []byte, prev int32) int {
	slot := len(t.rows)
	t.rows = append(t.rows, r)
	t.vers = append(t.vers, verMeta{begin: t.beginStamp(tx), prev: prev})
	if t.pkIndex != nil {
		t.pkIndex.Put(key, slot)
	}
	t.insertIndexedLocked(r, slot)
	t.live++
	t.logLocked(tx, mvcc.Op{Kind: mvcc.OpInsert, Slot: int32(slot), Prev: prev})
	return slot
}

// insertOneLocked inserts a validated row as a new version, enforcing
// primary-key uniqueness against the caller's snapshot and detecting
// write-write conflicts with concurrent transactions.
func (t *Table) insertOneLocked(tx *mvcc.Txn, r sqltypes.Row) error {
	prev := int32(-1)
	var key []byte
	if t.pkIndex != nil {
		key = t.pkKey(r)
		if v, ok := t.pkIndex.Get(key); ok {
			slot := int32(v.(int))
			sn := t.readSnapLocked(tx)
			if t.dupVisibleLocked(sn, slot) {
				return enginerr.Newf(enginerr.CodeDuplicateKey, "table %s: duplicate primary key %v", t.Name, r)
			}
			if t.rows[slot] != nil {
				vm := t.vers[slot]
				if vm.end == 0 {
					// Live but invisible: a concurrent uncommitted insert
					// holds this key.
					if tx == nil {
						return enginerr.Newf(enginerr.CodeDuplicateKey, "table %s: duplicate primary key %v", t.Name, r)
					}
					tx.Doom()
					return fmt.Errorf("%w: primary key inserted by concurrent transaction on table %s", mvcc.ErrSerialization, t.Name)
				}
				if tx != nil {
					if err := t.mv.CheckWritable(tx, vm.end); err != nil {
						tx.Doom()
						return err
					}
				}
			}
			prev = slot
		}
	}
	t.appendVersionLocked(tx, r, key, prev)
	return nil
}

// Insert appends a row. With a primary key, a duplicate key is an error.
func (t *Table) Insert(row sqltypes.Row) error { return t.InsertTxn(nil, row) }

// InsertTxn is Insert within a transaction: the new version stays invisible
// to other snapshots until tx commits.
func (t *Table) InsertTxn(tx *mvcc.Txn, row sqltypes.Row) error {
	r, err := t.validate(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertOneLocked(tx, r)
}

// InsertBatch appends rows under a single lock acquisition — the batched
// DML path. Semantics match calling Insert per row: on the first failing
// row it stops and returns the error, leaving earlier rows inserted. The
// returned count says how many rows landed, so callers can compensate for
// the prefix even on failure.
func (t *Table) InsertBatch(rows []sqltypes.Row) (int, error) {
	return t.InsertBatchTxn(nil, rows)
}

// InsertBatchTxn is InsertBatch within a transaction.
func (t *Table) InsertBatchTxn(tx *mvcc.Txn, rows []sqltypes.Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, row := range rows {
		r, err := t.validate(row)
		if err != nil {
			return i, err
		}
		if err := t.insertOneLocked(tx, r); err != nil {
			return i, err
		}
	}
	return len(rows), nil
}

// InsertVecs appends n rows given as typed column vectors — the columnar
// DML sink INSERT ... SELECT uses when its source pipeline produces
// columnar batches, so rows materialize straight from the vector payloads
// into one row-major slab with no intermediate row view. Validation is
// hoisted out of the row loop: a vector whose type matches its column
// needs no per-value coercion, only a NOT NULL sweep over the validity
// bitmap. Semantics match InsertBatch row for row: the first failing row
// stops the insert, earlier rows stay, and the returned count says how
// many landed. The built rows are returned (durable slab rows) so callers
// can fire triggers and compensate the inserted prefix without rebuilding.
func (t *Table) InsertVecs(cols []*sqltypes.Vector, n int) ([]sqltypes.Row, int, error) {
	return t.InsertVecsTxn(nil, cols, n)
}

// InsertVecsTxn is InsertVecs within a transaction.
func (t *Table) InsertVecsTxn(tx *mvcc.Txn, cols []*sqltypes.Vector, n int) ([]sqltypes.Row, int, error) {
	if len(cols) != len(t.Columns) {
		return nil, 0, fmt.Errorf("table %s: batch has %d columns, want %d", t.Name, len(cols), len(t.Columns))
	}
	width := len(t.Columns)
	slab := make([]sqltypes.Value, n*width)
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row(slab[i*width : (i+1)*width : (i+1)*width])
	}

	// Column-wise materialization + validation. A later column's failure
	// must not mask an earlier row's: track the lowest failing row (ties
	// resolved by column order, like the row-at-a-time path).
	badRow, badCol := n, -1
	var badErr error
	note := func(i, j int, err error) {
		if i < badRow || (i == badRow && j < badCol) {
			badRow, badCol, badErr = i, j, err
		}
	}
	for j, vec := range cols {
		col := &t.Columns[j]
		if vec.Len() < n {
			return nil, 0, fmt.Errorf("table %s: column %s vector has %d cells, want %d", t.Name, col.Name, vec.Len(), n)
		}
		direct := vec.T == col.Type || col.Type == sqltypes.TypeAny
		for i := 0; i < n && i <= badRow; i++ {
			v := vec.ValueAt(i)
			if !direct && !v.IsNull() {
				cv, err := sqltypes.CoerceToColumn(v, col.Type)
				if err != nil {
					note(i, j, fmt.Errorf("table %s column %s: %w", t.Name, col.Name, err))
					continue
				}
				v = cv
			}
			if v.IsNull() && col.NotNull {
				note(i, j, fmt.Errorf("table %s: NOT NULL constraint on %s violated", t.Name, col.Name))
				continue
			}
			slab[i*width+j] = v
		}
	}
	if badRow < n {
		n = badRow // rows before the first failure still insert below
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := t.insertOneLocked(tx, rows[i]); err != nil {
			return rows[:i], i, err
		}
	}
	if badErr != nil {
		return rows[:n], n, badErr
	}
	return rows[:n], n, nil
}

// Upsert inserts, or replaces the existing row with the same primary key
// (DuckDB INSERT OR REPLACE). The table must have a primary key.
func (t *Table) Upsert(row sqltypes.Row) error { return t.UpsertTxn(nil, row) }

// UpsertTxn is Upsert within a transaction: the replaced version is
// end-stamped and a new version appended, so concurrent snapshots keep
// seeing the old row until commit.
func (t *Table) UpsertTxn(tx *mvcc.Txn, row sqltypes.Row) error {
	r, err := t.validate(row)
	if err != nil {
		return err
	}
	if t.pkIndex == nil {
		return fmt.Errorf("table %s: INSERT OR REPLACE requires a primary key or unique index", t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.upsertLocked(tx, r, nil)
}

// UpsertMerge inserts or, on conflict, replaces only the given column
// positions with values computed by merge(old, new) — used by the
// PostgreSQL-dialect ON CONFLICT DO UPDATE path.
func (t *Table) UpsertMerge(row sqltypes.Row, merge func(old, new sqltypes.Row) (sqltypes.Row, error)) error {
	return t.UpsertMergeTxn(nil, row, merge)
}

// UpsertMergeTxn is UpsertMerge within a transaction.
func (t *Table) UpsertMergeTxn(tx *mvcc.Txn, row sqltypes.Row, merge func(old, new sqltypes.Row) (sqltypes.Row, error)) error {
	r, err := t.validate(row)
	if err != nil {
		return err
	}
	if t.pkIndex == nil {
		return fmt.Errorf("table %s: ON CONFLICT requires a primary key", t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.upsertLocked(tx, r, merge)
}

// UpsertBatchTxn applies INSERT OR REPLACE to a batch of rows under one
// lock acquisition — the IVM combine step's hot path. Per-row semantics
// match UpsertTxn, with one addition: when tx is an autocommit statement
// transaction and the sole observer (no other transaction, no registered
// snapshot — the same quiescence test TruncateQuiescent uses), replaced
// rows are updated in place and fresh keys are appended already stamped
// committed, instead of version-churning every group on every refresh.
// The batch stays atomic for later-arriving readers because the table
// lock is held throughout, and the displaced rows ride the write log
// (OpReplace) so the rare doom-abort — only reachable through the
// fallback path below — still reverts cleanly. The sub-statement window
// in which a snapshot taken mid-batch observes the statement's
// uncommitted (but commit-bound) writes is the one TruncateQuiescent
// already accepts. Returns the inserted rows and the replaced old/new
// pairs for trigger delivery; on error the applied prefix stays, like
// InsertBatch.
func (t *Table) UpsertBatchTxn(tx *mvcc.Txn, rows []sqltypes.Row) (inserted, replacedOld, replacedNew []sqltypes.Row, err error) {
	if t.pkIndex == nil {
		return nil, nil, nil, fmt.Errorf("table %s: INSERT OR REPLACE requires a primary key or unique index", t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	quiescent := tx != nil && tx.AutoCommit() && !tx.Doomed() && t.mv.OnlyActive(tx)
	for _, row := range rows {
		r, verr := t.validate(row)
		if verr != nil {
			return inserted, replacedOld, replacedNew, verr
		}
		if quiescent {
			key := t.pkKey(r)
			v, ok := t.pkIndex.Get(key)
			if !ok {
				// Fresh key: append stamped committed at tx's read
				// timestamp (not LatestTS, so the row stays visible to
				// tx's own snapshot even if unrelated commits land
				// mid-batch), logged so an abort still removes it.
				slot := len(t.rows)
				t.rows = append(t.rows, r)
				t.vers = append(t.vers, verMeta{begin: tx.ReadTS, prev: -1})
				t.pkIndex.Put(key, slot)
				t.insertIndexedLocked(r, slot)
				t.live++
				t.logLocked(tx, mvcc.Op{Kind: mvcc.OpInsert, Slot: int32(slot), Prev: -1})
				inserted = append(inserted, r)
				continue
			}
			newest := int32(v.(int))
			vm := t.vers[newest]
			if old := t.rows[newest]; old != nil && vm.begin&mvcc.TxnBit == 0 && vm.begin <= tx.ReadTS && vm.end == 0 {
				t.removeIndexedLocked(old, int(newest))
				t.rows[newest] = r
				t.insertIndexedLocked(r, int(newest))
				t.logLocked(tx, mvcc.Op{Kind: mvcc.OpReplace, Slot: newest, Old: old})
				replacedOld = append(replacedOld, old)
				replacedNew = append(replacedNew, r)
				continue
			}
		}
		// Non-quiescent, or an odd chain state (a key claimed by a
		// version committed after tx's snapshot, uncommitted stamps):
		// the general versioned path, which detects conflicts and dooms
		// tx as usual.
		old, existed := t.lookupPKLocked(t.readSnapLocked(tx), t.pkKey(r))
		if uerr := t.upsertLocked(tx, r, nil); uerr != nil {
			return inserted, replacedOld, replacedNew, uerr
		}
		if existed {
			replacedOld = append(replacedOld, old)
			replacedNew = append(replacedNew, r)
		} else {
			inserted = append(inserted, r)
		}
	}
	return inserted, replacedOld, replacedNew, nil
}

// upsertLocked implements both upsert flavors: replace (merge == nil) or
// merge-on-conflict. The caller validated r and holds the write lock.
func (t *Table) upsertLocked(tx *mvcc.Txn, r sqltypes.Row, merge func(old, new sqltypes.Row) (sqltypes.Row, error)) error {
	key := t.pkKey(r)
	v, ok := t.pkIndex.Get(key)
	if !ok {
		t.appendVersionLocked(tx, r, key, -1)
		return nil
	}
	newest := int32(v.(int))
	sn := t.readSnapLocked(tx)

	// Find the version visible to this snapshot, if any.
	vis := int32(-1)
	for s := newest; s >= 0; s = t.vers[s].prev {
		if t.rows[s] != nil && sn.Visible(t.vers[s].begin, t.vers[s].end) {
			vis = s
			break
		}
	}

	if vis < 0 {
		// No visible version: behaves as an insert, but the key may be
		// claimed by a concurrent writer.
		if t.rows[newest] != nil {
			vm := t.vers[newest]
			if vm.end == 0 {
				if tx != nil {
					tx.Doom()
				}
				return fmt.Errorf("%w: primary key inserted by concurrent transaction on table %s", mvcc.ErrSerialization, t.Name)
			}
			if tx != nil {
				if err := t.mv.CheckWritable(tx, vm.end); err != nil {
					tx.Doom()
					return err
				}
			}
		}
		t.appendVersionLocked(tx, r, key, newest)
		return nil
	}

	old := t.rows[vis]
	nr := r
	if merge != nil {
		merged, err := merge(old, r)
		if err != nil {
			return err
		}
		if nr, err = t.validate(merged); err != nil {
			return err
		}
	}

	if tx == nil {
		// Legacy instant write. When the visible version is a committed
		// live row we replace it in place — the pre-MVCC fast path the IVM
		// combine step depends on (no version churn in upsert loops).
		vm := t.vers[vis]
		if vis == newest && vm.begin&mvcc.TxnBit == 0 && vm.end == 0 {
			t.removeIndexedLocked(old, int(vis))
			t.rows[vis] = nr
			t.insertIndexedLocked(nr, int(vis))
			return nil
		}
		// Visible through an uncommitted delete, or shadowed: append.
		t.vers[vis].end = t.mv.LatestTS()
		t.live--
		t.mv.NoteDead(1)
		t.appendVersionLocked(nil, nr, key, newest)
		return nil
	}

	if err := t.mv.CheckWritable(tx, t.vers[vis].end); err != nil {
		tx.Doom()
		return err
	}
	if t.vers[vis].end == 0 {
		t.vers[vis].end = tx.StampID()
		t.live--
		t.logLocked(tx, mvcc.Op{Kind: mvcc.OpDelete, Slot: vis})
	}
	t.appendVersionLocked(tx, nr, key, newest)
	return nil
}

// Delete removes all rows matching pred, returning them.
func (t *Table) Delete(pred func(sqltypes.Row) (bool, error)) ([]sqltypes.Row, error) {
	return t.DeleteTxn(nil, pred)
}

// DeleteTxn is Delete within a transaction; a nil pred matches every row
// (the unfiltered DELETE FROM path). Deleted versions are end-stamped, not
// removed: concurrent snapshots keep seeing them, and GC reclaims them
// once no snapshot can.
func (t *Table) DeleteTxn(tx *mvcc.Txn, pred func(sqltypes.Row) (bool, error)) ([]sqltypes.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sn := t.readSnapLocked(tx)
	var deleted []sqltypes.Row
	dead := 0
	for i := 0; i < len(t.rows); i++ {
		r := t.rows[i]
		if r == nil {
			continue
		}
		vm := t.vers[i]
		if !sn.Visible(vm.begin, vm.end) {
			continue
		}
		if pred != nil {
			ok, err := pred(r)
			if err != nil {
				t.mv.NoteDead(dead)
				return deleted, err
			}
			if !ok {
				continue
			}
		}
		if tx != nil {
			if err := t.mv.CheckWritable(tx, vm.end); err != nil {
				tx.Doom()
				t.mv.NoteDead(dead)
				return deleted, err
			}
			if t.vers[i].end == 0 {
				t.vers[i].end = tx.StampID()
				t.logLocked(tx, mvcc.Op{Kind: mvcc.OpDelete, Slot: int32(i)})
			}
		} else {
			if vm.end != 0 {
				// Visible only through another transaction's uncommitted
				// delete; clobbering its stamp would resurrect the row if
				// it aborts. Leave it to that transaction.
				continue
			}
			t.vers[i].end = t.mv.LatestTS()
			dead++
		}
		deleted = append(deleted, r)
		t.live--
	}
	t.mv.NoteDead(dead)
	return deleted, nil
}

// DeleteOne removes at most one row equal to the given row (used by Z-set
// semantics: one deletion cancels one multiplicity unit, so duplicates
// delete one copy at a time). Returns true if a row was removed. Legacy
// instant write: the deletion is immediately visible everywhere.
func (t *Table) DeleteOne(row sqltypes.Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	sn := t.mv.Current()
	for i, r := range t.rows {
		if r == nil || !r.Equal(row) {
			continue
		}
		vm := t.vers[i]
		if !sn.Visible(vm.begin, vm.end) || vm.end != 0 {
			continue
		}
		t.vers[i].end = t.mv.LatestTS()
		t.live--
		t.mv.NoteDead(1)
		return true
	}
	return false
}

// Update applies set to all rows matching pred, returning (old, new) pairs.
func (t *Table) Update(pred func(sqltypes.Row) (bool, error), set func(sqltypes.Row) (sqltypes.Row, error)) (old, new []sqltypes.Row, err error) {
	return t.UpdateTxn(nil, pred, set)
}

// UpdateTxn is Update within a transaction: each matching row's current
// version is end-stamped and a new version appended, so the update is
// invisible to other snapshots until commit. Legacy (nil-transaction)
// updates mutate committed rows in place, preserving the pre-MVCC
// zero-allocation behavior.
func (t *Table) UpdateTxn(tx *mvcc.Txn, pred func(sqltypes.Row) (bool, error), set func(sqltypes.Row) (sqltypes.Row, error)) (old, new []sqltypes.Row, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sn := t.readSnapLocked(tx)
	n0 := len(t.rows) // fixed bound: versions appended below must not be revisited
	for i := 0; i < n0; i++ {
		r := t.rows[i]
		if r == nil {
			continue
		}
		vm := t.vers[i]
		if !sn.Visible(vm.begin, vm.end) {
			continue
		}
		ok, perr := pred(r)
		if perr != nil {
			return old, new, perr
		}
		if !ok {
			continue
		}
		nr, serr := set(r)
		if serr != nil {
			return old, new, serr
		}
		nr, serr = t.validate(nr)
		if serr != nil {
			return old, new, serr
		}

		if tx == nil {
			if vm.end != 0 || vm.begin&mvcc.TxnBit != 0 {
				// Row involved in an in-flight transaction; in-place
				// mutation would corrupt its view. Skip (legacy writes
				// never raced real transactions before MVCC either).
				continue
			}
			if t.pkIndex != nil {
				// pkKey reuses one scratch buffer; copy the old key before
				// encoding the new one so the comparison sees both.
				oldKey := append([]byte(nil), t.pkKey(r)...)
				newKey := t.pkKey(nr)
				if string(oldKey) != string(newKey) {
					if slot, exists := t.pkIndex.Get(newKey); exists && t.dupVisibleLocked(sn, int32(slot.(int))) {
						return old, new, enginerr.Newf(enginerr.CodeDuplicateKey, "table %s: update violates primary key", t.Name)
					}
					t.pkIndex.Delete(oldKey)
					t.pkIndex.Put(newKey, i)
				}
			}
			t.removeIndexedLocked(r, i)
			t.rows[i] = nr
			t.insertIndexedLocked(nr, i)
			old = append(old, r)
			new = append(new, nr)
			continue
		}

		if cerr := t.mv.CheckWritable(tx, vm.end); cerr != nil {
			tx.Doom()
			return old, new, cerr
		}

		// Resolve the pk mapping for the new version before stamping.
		var newKey []byte
		prev := int32(i)
		if t.pkIndex != nil {
			oldKey := append([]byte(nil), t.pkKey(r)...)
			newKey = t.pkKey(nr)
			if string(oldKey) != string(newKey) {
				if v, exists := t.pkIndex.Get(newKey); exists {
					ns := int32(v.(int))
					if t.dupVisibleLocked(sn, ns) {
						return old, new, enginerr.Newf(enginerr.CodeDuplicateKey, "table %s: update violates primary key", t.Name)
					}
					if t.rows[ns] != nil {
						nvm := t.vers[ns]
						if nvm.end == 0 {
							tx.Doom()
							return old, new, fmt.Errorf("%w: primary key inserted by concurrent transaction on table %s", mvcc.ErrSerialization, t.Name)
						}
						if cerr := t.mv.CheckWritable(tx, nvm.end); cerr != nil {
							tx.Doom()
							return old, new, cerr
						}
					}
					prev = ns
				} else {
					prev = -1
				}
				// The old key's mapping keeps pointing at the end-stamped
				// version — correct for its chain; GC removes it when the
				// version dies.
			}
		}

		if t.vers[i].end == 0 {
			t.vers[i].end = tx.StampID()
			t.live--
			t.logLocked(tx, mvcc.Op{Kind: mvcc.OpDelete, Slot: int32(i)})
		}
		t.appendVersionLocked(tx, nr, newKey, prev)
		old = append(old, r)
		new = append(new, nr)
	}
	return old, new, nil
}

// Truncate removes all rows. When no transaction or snapshot could observe
// the difference, the backing arrays are released (physical reset);
// otherwise every live version is end-stamped at the latest timestamp so
// concurrent snapshots keep a consistent view.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pinned == 0 && t.mv.OnlyActive(nil) {
		t.resetLocked()
		return
	}
	end := t.mv.LatestTS()
	dead := 0
	for i := range t.vers {
		if t.rows[i] != nil && t.vers[i].end == 0 && t.vers[i].begin&mvcc.TxnBit == 0 {
			t.vers[i].end = end
			t.live--
			dead++
		}
	}
	t.mv.NoteDead(dead)
}

// TruncateQuiescent is the O(1) physical-truncate fast path: it succeeds
// only when tx (which may be nil) is the sole active transaction with no
// ops on this table and no registered snapshots exist — i.e. nobody can
// tell physical reset apart from stamping. Returns the rows it removed
// (when wantRows), the live-row count, and whether the fast path
// applied; on false the caller must fall back to DeleteTxn.
func (t *Table) TruncateQuiescent(tx *mvcc.Txn, wantRows bool) ([]sqltypes.Row, int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pinned != 0 || !t.mv.OnlyActive(tx) {
		return nil, 0, false
	}
	n := t.live
	var rows []sqltypes.Row
	if wantRows {
		rows = make([]sqltypes.Row, 0, t.live)
		for i, r := range t.rows {
			if r != nil && t.vers[i].end == 0 {
				rows = append(rows, r)
			}
		}
	}
	t.resetLocked()
	return rows, n, true
}

// DrainRows atomically removes and returns every committed live row — the
// generation-seal primitive of the IVM refresh scheduler, which moves the
// returned rows into the delta table's sealed twin while writers keep
// appending to this one. When nothing can observe the difference the
// backing arrays are physically reset (Truncate's fast path); otherwise
// the drained versions are end-stamped at the latest timestamp so
// concurrent snapshots keep a consistent view. Uncommitted in-flight
// versions stay in place: they belong to the next generation once their
// transaction commits.
func (t *Table) DrainRows() []sqltypes.Row {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pinned == 0 && t.mv.OnlyActive(nil) {
		rows := make([]sqltypes.Row, 0, t.live)
		for i, r := range t.rows {
			if r != nil && t.vers[i].end == 0 {
				rows = append(rows, r)
			}
		}
		t.resetLocked()
		return rows
	}
	end := t.mv.LatestTS()
	dead := 0
	rows := make([]sqltypes.Row, 0, t.live)
	for i, r := range t.rows {
		if r != nil && t.vers[i].end == 0 && t.vers[i].begin&mvcc.TxnBit == 0 {
			rows = append(rows, r)
			t.vers[i].end = end
			t.live--
			dead++
		}
	}
	t.mv.NoteDead(dead)
	return rows
}

// resetLocked releases the row arrays and rebuilds empty index trees. The
// backing array is released rather than reused so row copies handed out
// earlier never observe post-truncate writes.
func (t *Table) resetLocked() {
	t.rows = nil
	t.vers = nil
	t.live = 0
	if t.pkIndex != nil {
		t.pkIndex = art.New()
	}
	for _, idx := range t.indexes {
		idx.tree = art.New()
	}
}

// Scan calls fn for every row visible to the latest snapshot. fn must not
// retain the row without cloning. Returning an error stops the scan.
func (t *Table) Scan(fn func(sqltypes.Row) error) error {
	for _, r := range t.Rows() {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns a copy of the rows visible to the latest snapshot.
func (t *Table) Rows() []sqltypes.Row {
	return t.RowsSnap(mvcc.Snapshot{})
}

// RowsSnap returns a copy of the rows visible to sn. The zero snapshot
// means latest-committed (resolved under the lock).
func (t *Table) RowsSnap(sn mvcc.Snapshot) []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if sn.M == nil {
		sn = t.mv.Current()
	}
	out := make([]sqltypes.Row, 0, t.live)
	for i, r := range t.rows {
		if r == nil {
			continue
		}
		vm := t.vers[i]
		// Fast path: committed at-or-before the snapshot and not deleted.
		if vm.begin&mvcc.TxnBit == 0 && vm.begin <= sn.ReadTS && vm.end == 0 {
			out = append(out, r)
		} else if sn.Visible(vm.begin, vm.end) {
			out = append(out, r)
		}
	}
	return out
}

// lookupPKLocked resolves a pk key to the version visible to sn, walking
// the chain newest-to-oldest.
func (t *Table) lookupPKLocked(sn mvcc.Snapshot, key []byte) (sqltypes.Row, bool) {
	v, ok := t.pkIndex.Get(key)
	if !ok {
		return nil, false
	}
	for s := int32(v.(int)); s >= 0; s = t.vers[s].prev {
		if r := t.rows[s]; r != nil && sn.Visible(t.vers[s].begin, t.vers[s].end) {
			return r, true
		}
	}
	return nil, false
}

// LookupPK returns the row with the given primary-key values, if present
// under the latest snapshot.
func (t *Table) LookupPK(vals ...sqltypes.Value) (sqltypes.Row, bool) {
	if t.pkIndex == nil {
		return nil, false
	}
	// Stack buffer: readers run concurrently under RLock, so the shared
	// write-path scratch is off limits here.
	var buf [64]byte
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookupPKLocked(t.mv.Current(), sqltypes.EncodeKey(buf[:0], vals...))
}

// LookupPKRow is LookupPK with the key values taken from a full-width
// candidate row — the upsert path's per-row existence probe. Stack
// buffers keep the probe allocation-free (the INSERT OR REPLACE loop the
// IVM combine step runs calls this once per source row).
func (t *Table) LookupPKRow(row sqltypes.Row) (sqltypes.Row, bool) {
	return t.LookupPKRowSnap(mvcc.Snapshot{}, row)
}

// LookupPKRowSnap is LookupPKRow against an explicit snapshot (the zero
// snapshot means latest-committed).
func (t *Table) LookupPKRowSnap(sn mvcc.Snapshot, row sqltypes.Row) (sqltypes.Row, bool) {
	if t.pkIndex == nil {
		return nil, false
	}
	var vbuf [8]sqltypes.Value
	vals := vbuf[:0]
	for _, p := range t.pkCols {
		if p >= len(row) {
			return nil, false
		}
		vals = append(vals, row[p])
	}
	var buf [64]byte
	t.mu.RLock()
	defer t.mu.RUnlock()
	if sn.M == nil {
		sn = t.mv.Current()
	}
	return t.lookupPKLocked(sn, sqltypes.EncodeKey(buf[:0], vals...))
}

// ---------------------------------------------------------------------------
// mvcc.Store: commit/abort application
// ---------------------------------------------------------------------------

// ApplyCommit restamps the transaction's ops with its commit timestamp.
// Called by the transaction manager with the commit mutex held; takes the
// table's write lock so no reader observes a half-restamped transaction on
// this table.
func (t *Table) ApplyCommit(ops []mvcc.Op, commitTS uint64) {
	t.mu.Lock()
	dead := 0
	for _, op := range ops {
		s := int(op.Slot)
		if s < 0 || s >= len(t.vers) {
			continue // defensive: compaction cannot run while pinned
		}
		switch op.Kind {
		case mvcc.OpInsert:
			if t.vers[s].begin&mvcc.TxnBit != 0 {
				t.vers[s].begin = commitTS
			}
		case mvcc.OpDelete:
			if t.vers[s].end&mvcc.TxnBit != 0 {
				t.vers[s].end = commitTS
				dead++
			}
		case mvcc.OpReplace:
			// In-place replacement: the slot already carries the new
			// value under its old committed begin stamp — nothing to
			// restamp, no version died.
		}
	}
	if t.pinned > 0 {
		t.pinned--
	}
	t.mu.Unlock()
	t.mv.NoteDead(dead)
}

// ApplyAbort reverts the transaction's ops in reverse order: inserted
// versions are unlinked (pk mapping restored to the logged predecessor)
// and delete stamps cleared.
func (t *Table) ApplyAbort(ops []mvcc.Op) {
	t.mu.Lock()
	dead := 0
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		s := int(op.Slot)
		if s < 0 || s >= len(t.vers) {
			continue
		}
		switch op.Kind {
		case mvcc.OpInsert:
			r := t.rows[s]
			if r == nil {
				continue
			}
			if t.pkIndex != nil {
				key := t.pkKey(r)
				if v, ok := t.pkIndex.Get(key); ok && v.(int) == s {
					if op.Prev >= 0 {
						t.pkIndex.Put(key, int(op.Prev))
					} else {
						t.pkIndex.Delete(key)
					}
				}
			}
			t.removeIndexedLocked(r, s)
			t.rows[s] = nil
			t.live--
			dead++
		case mvcc.OpDelete:
			if t.vers[s].end&mvcc.TxnBit != 0 {
				t.vers[s].end = 0
				t.live++
			}
		case mvcc.OpReplace:
			// Restore the pre-replace value — unless a later transaction
			// has since stamped the slot: it already read the replaced
			// value, and rewriting the row underneath its chain would
			// corrupt what it based its write on.
			if op.Old != nil && t.vers[s].end == 0 {
				if r := t.rows[s]; r != nil {
					t.removeIndexedLocked(r, s)
				}
				t.rows[s] = op.Old
				t.insertIndexedLocked(op.Old, s)
			}
		}
	}
	if t.pinned > 0 {
		t.pinned--
	}
	t.mu.Unlock()
	t.mv.NoteDead(dead)
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

// gc reclaims versions dead at or before the watermark. With no pinned
// transactions it compacts the arrays (renumbering slots and rebuilding
// indexes) so hot upsert/truncate churn cannot grow the slot array without
// bound; otherwise it nils reclaimable slots in place.
func (t *Table) gc(watermark uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pinned == 0 {
		return t.compactLocked(watermark)
	}
	n := 0
	for i := range t.vers {
		r := t.rows[i]
		if r == nil {
			continue
		}
		e := t.vers[i].end
		if e == 0 || e&mvcc.TxnBit != 0 || e > watermark {
			continue
		}
		if t.pkIndex != nil {
			key := t.pkKey(r)
			if v, ok := t.pkIndex.Get(key); ok && v.(int) == i {
				t.pkIndex.Delete(key)
			}
		}
		t.removeIndexedLocked(r, i)
		t.rows[i] = nil
		n++
	}
	if n > 0 {
		// Path-compress prev pointers through reclaimed (and aborted)
		// slots so chain walks stay short.
		for i := range t.vers {
			p := t.vers[i].prev
			for p >= 0 && t.rows[p] == nil {
				p = t.vers[p].prev
			}
			t.vers[i].prev = p
		}
	}
	return n
}

// compactLocked rebuilds the row/version arrays keeping only versions
// still reachable by some snapshot, remapping slots and rebuilding all
// indexes. Only legal with no pinned transactions (their write logs hold
// slot numbers).
func (t *Table) compactLocked(watermark uint64) int {
	reclaimed, holes, keep := 0, 0, 0
	newSlot := make([]int32, len(t.rows))
	for i, r := range t.rows {
		if r == nil {
			newSlot[i] = -1
			holes++
			continue
		}
		e := t.vers[i].end
		if e != 0 && e&mvcc.TxnBit == 0 && e <= watermark {
			newSlot[i] = -1
			reclaimed++
			continue
		}
		newSlot[i] = int32(keep)
		keep++
	}
	if reclaimed == 0 && holes == 0 {
		return 0
	}
	rows := make([]sqltypes.Row, keep)
	vers := make([]verMeta, keep)
	for i, r := range t.rows {
		ns := newSlot[i]
		if ns < 0 {
			continue
		}
		rows[ns] = r
		vm := t.vers[i]
		p := vm.prev
		for p >= 0 && newSlot[p] < 0 {
			p = t.vers[p].prev
		}
		if p >= 0 {
			vm.prev = newSlot[p]
		} else {
			vm.prev = -1
		}
		vers[ns] = vm
	}
	if t.pkIndex != nil {
		newPK := art.New()
		for i, r := range t.rows {
			if newSlot[i] < 0 {
				continue
			}
			key := t.pkKey(r)
			if v, ok := t.pkIndex.Get(key); ok && v.(int) == i {
				newPK.Put(key, int(newSlot[i]))
			}
		}
		t.pkIndex = newPK
	}
	t.rows = rows
	t.vers = vers
	for _, idx := range t.indexes {
		idx.tree = art.New()
	}
	if len(t.indexes) > 0 {
		for i, r := range rows {
			t.insertIndexedLocked(r, i)
		}
	}
	return reclaimed + holes
}

// ---------------------------------------------------------------------------
// Secondary indexes
// ---------------------------------------------------------------------------

// CreateIndex builds a secondary index over the named columns. The build
// follows the paper's observation about ART construction: rows are loaded
// in chunks, each chunk's sorted run is merged into the tree (art.BulkInsert).
func (t *Table) CreateIndex(name string, cols []string, unique bool, ifNotExists bool) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := norm(name)
	if _, ok := t.indexes[key]; ok {
		if ifNotExists {
			return t.indexes[key], nil
		}
		return nil, fmt.Errorf("catalog: index %q already exists on %s", name, t.Name)
	}
	idx := &Index{Name: name, Table: t.Name, Unique: unique, tree: art.New()}
	for _, cn := range cols {
		pos := t.columnPos(cn)
		if pos < 0 {
			return nil, fmt.Errorf("catalog: index column %q not in table %q", cn, t.Name)
		}
		idx.Columns = append(idx.Columns, pos)
	}
	// Chunked bulk build (paper: "more efficient to build small indexes for
	// each chunk and merge them"). Uniqueness is checked over live versions
	// only; dead versions are indexed but never conflict.
	const chunk = 2048
	for lo := 0; lo < len(t.rows); lo += chunk {
		hi := lo + chunk
		if hi > len(t.rows) {
			hi = len(t.rows)
		}
		var pairs []art.KV
		for slot := lo; slot < hi; slot++ {
			r := t.rows[slot]
			if r == nil || t.vers[slot].end != 0 {
				continue
			}
			pairs = append(pairs, art.KV{Key: idx.keyFor(r), Val: slot})
		}
		if err := idx.mergeChunk(pairs); err != nil {
			return nil, err
		}
	}
	t.indexes[key] = idx
	return idx, nil
}

// Indexes lists the table's secondary indexes sorted by name.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Index returns a secondary index by name.
func (t *Table) Index(name string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[norm(name)]
	return idx, ok
}

func (idx *Index) keyFor(r sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, len(idx.Columns))
	for i, p := range idx.Columns {
		vals[i] = r[p]
	}
	return sqltypes.EncodeKey(nil, vals...)
}

func (idx *Index) mergeChunk(pairs []art.KV) error {
	if idx.Unique {
		for _, kv := range pairs {
			if _, ok := idx.tree.Get(kv.Key); ok {
				return enginerr.Newf(enginerr.CodeDuplicateKey, "catalog: unique index %q violated", idx.Name)
			}
			idx.tree.Put(kv.Key, []int{kv.Val.(int)})
		}
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return string(pairs[i].Key) < string(pairs[j].Key) })
	for _, kv := range pairs {
		if v, ok := idx.tree.Get(kv.Key); ok {
			idx.tree.Put(kv.Key, append(v.([]int), kv.Val.(int)))
		} else {
			idx.tree.Put(kv.Key, []int{kv.Val.(int)})
		}
	}
	return nil
}

func (t *Table) insertIndexedLocked(r sqltypes.Row, slot int) {
	for _, idx := range t.indexes {
		key := idx.keyFor(r)
		if v, ok := idx.tree.Get(key); ok {
			idx.tree.Put(key, append(v.([]int), slot))
		} else {
			idx.tree.Put(key, []int{slot})
		}
	}
}

func (t *Table) removeIndexedLocked(r sqltypes.Row, slot int) {
	for _, idx := range t.indexes {
		key := idx.keyFor(r)
		if v, ok := idx.tree.Get(key); ok {
			slots := v.([]int)
			for i, s := range slots {
				if s == slot {
					slots = append(slots[:i], slots[i+1:]...)
					break
				}
			}
			if len(slots) == 0 {
				idx.tree.Delete(key)
			} else {
				idx.tree.Put(key, slots)
			}
		}
	}
}

// LookupIndex returns the rows whose indexed columns equal vals, filtered
// to the latest snapshot (index entries may reference dead versions until
// GC removes them).
func (t *Table) LookupIndex(idx *Index, vals ...sqltypes.Value) []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := idx.tree.Get(sqltypes.EncodeKey(nil, vals...))
	if !ok {
		return nil
	}
	sn := t.mv.Current()
	slots := v.([]int)
	out := make([]sqltypes.Row, 0, len(slots))
	for _, s := range slots {
		if s < 0 || s >= len(t.rows) {
			continue
		}
		if r := t.rows[s]; r != nil && sn.Visible(t.vers[s].begin, t.vers[s].end) {
			out = append(out, r)
		}
	}
	return out
}
