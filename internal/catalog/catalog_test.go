package catalog

import (
	"fmt"
	"testing"

	"openivm/internal/sqltypes"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	c := New()
	tbl, err := c.CreateTable("t", []Column{
		{Name: "id", Type: sqltypes.TypeInt, NotNull: true},
		{Name: "name", Type: sqltypes.TypeString},
		{Name: "score", Type: sqltypes.TypeFloat},
	}, []string{"id"}, false)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func row(id int64, name string, score float64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewString(name), sqltypes.NewFloat(score)}
}

func TestCreateTableDuplicate(t *testing.T) {
	c := New()
	cols := []Column{{Name: "a", Type: sqltypes.TypeInt}}
	if _, err := c.CreateTable("t", cols, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("T", cols, nil, false); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
	if _, err := c.CreateTable("t", cols, nil, true); err != nil {
		t.Errorf("IF NOT EXISTS should succeed: %v", err)
	}
}

func TestCreateTableBadPK(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.TypeInt}}, []string{"zzz"}, false); err == nil {
		t.Error("unknown PK column should fail")
	}
}

func TestCreateTableDuplicateColumn(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", []Column{
		{Name: "a", Type: sqltypes.TypeInt}, {Name: "A", Type: sqltypes.TypeInt},
	}, nil, false); err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestInsertAndScan(t *testing.T) {
	tbl := testTable(t)
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(row(int64(i), fmt.Sprint("n", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 10 {
		t.Errorf("count = %d", tbl.RowCount())
	}
	n := 0
	tbl.Scan(func(r sqltypes.Row) error { n++; return nil })
	if n != 10 {
		t.Errorf("scanned %d", n)
	}
}

func TestInsertPKViolation(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.Insert(row(1, "a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(row(1, "b", 0)); err == nil {
		t.Error("duplicate PK should fail")
	}
}

func TestInsertNotNull(t *testing.T) {
	tbl := testTable(t)
	err := tbl.Insert(sqltypes.Row{sqltypes.Null, sqltypes.NewString("x"), sqltypes.Null})
	if err == nil {
		t.Error("NULL into NOT NULL should fail")
	}
}

func TestInsertCoercion(t *testing.T) {
	tbl := testTable(t)
	// string id coerced to int; int score coerced to float
	err := tbl.Insert(sqltypes.Row{sqltypes.NewString("7"), sqltypes.NewString("x"), sqltypes.NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tbl.LookupPK(sqltypes.NewInt(7))
	if !ok {
		t.Fatal("lookup failed")
	}
	if r[2].T != sqltypes.TypeFloat {
		t.Errorf("score type = %v", r[2].T)
	}
}

func TestInsertWrongArity(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestUpsert(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.Upsert(row(1, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Upsert(row(1, "b", 2)); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 1 {
		t.Errorf("count = %d", tbl.RowCount())
	}
	r, _ := tbl.LookupPK(sqltypes.NewInt(1))
	if r[1].S != "b" {
		t.Errorf("row = %v", r)
	}
}

func TestUpsertIdempotent(t *testing.T) {
	tbl := testTable(t)
	for i := 0; i < 5; i++ {
		if err := tbl.Upsert(row(9, "same", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 1 {
		t.Errorf("count = %d", tbl.RowCount())
	}
}

func TestUpsertNoPK(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false)
	if err := tbl.Upsert(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("upsert without PK should fail")
	}
}

func TestUpsertMerge(t *testing.T) {
	tbl := testTable(t)
	add := func(old, new sqltypes.Row) (sqltypes.Row, error) {
		m := old.Clone()
		s, err := sqltypes.Arith('+', old[2], new[2])
		if err != nil {
			return nil, err
		}
		m[2] = s
		return m, nil
	}
	if err := tbl.UpsertMerge(row(1, "a", 10), add); err != nil {
		t.Fatal(err)
	}
	if err := tbl.UpsertMerge(row(1, "a", 5), add); err != nil {
		t.Fatal(err)
	}
	r, _ := tbl.LookupPK(sqltypes.NewInt(1))
	if r[2].AsFloat() != 15 {
		t.Errorf("merged = %v", r)
	}
}

func TestDeletePred(t *testing.T) {
	tbl := testTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "x", float64(i)))
	}
	del, err := tbl.Delete(func(r sqltypes.Row) (bool, error) {
		return r[0].I%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(del) != 5 || tbl.RowCount() != 5 {
		t.Errorf("deleted %d, left %d", len(del), tbl.RowCount())
	}
	if _, ok := tbl.LookupPK(sqltypes.NewInt(2)); ok {
		t.Error("deleted row still in PK index")
	}
	if _, ok := tbl.LookupPK(sqltypes.NewInt(3)); !ok {
		t.Error("surviving row lost from PK index")
	}
}

func TestDeleteOne(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false)
	tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	if !tbl.DeleteOne(sqltypes.Row{sqltypes.NewInt(1)}) {
		t.Fatal("DeleteOne failed")
	}
	if tbl.RowCount() != 2 {
		t.Errorf("count = %d; DeleteOne must remove exactly one copy", tbl.RowCount())
	}
	if tbl.DeleteOne(sqltypes.Row{sqltypes.NewInt(9)}) {
		t.Error("DeleteOne on absent row")
	}
}

func TestUpdate(t *testing.T) {
	tbl := testTable(t)
	for i := 0; i < 5; i++ {
		tbl.Insert(row(int64(i), "x", 0))
	}
	old, new_, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) { return r[0].I >= 3, nil },
		func(r sqltypes.Row) (sqltypes.Row, error) {
			n := r.Clone()
			n[1] = sqltypes.NewString("upd")
			return n, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 2 || len(new_) != 2 {
		t.Fatalf("old=%d new=%d", len(old), len(new_))
	}
	r, _ := tbl.LookupPK(sqltypes.NewInt(4))
	if r[1].S != "upd" {
		t.Errorf("row = %v", r)
	}
}

func TestUpdatePKMove(t *testing.T) {
	tbl := testTable(t)
	tbl.Insert(row(1, "a", 0))
	_, _, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) { return true, nil },
		func(r sqltypes.Row) (sqltypes.Row, error) {
			n := r.Clone()
			n[0] = sqltypes.NewInt(99)
			return n, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.LookupPK(sqltypes.NewInt(1)); ok {
		t.Error("old PK still present")
	}
	if _, ok := tbl.LookupPK(sqltypes.NewInt(99)); !ok {
		t.Error("new PK missing")
	}
}

func TestUpdatePKConflict(t *testing.T) {
	tbl := testTable(t)
	tbl.Insert(row(1, "a", 0))
	tbl.Insert(row(2, "b", 0))
	_, _, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) { return r[0].I == 1, nil },
		func(r sqltypes.Row) (sqltypes.Row, error) {
			n := r.Clone()
			n[0] = sqltypes.NewInt(2)
			return n, nil
		})
	if err == nil {
		t.Error("PK conflict on update should fail")
	}
}

func TestTruncate(t *testing.T) {
	tbl := testTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "x", 0))
	}
	tbl.Truncate()
	if tbl.RowCount() != 0 {
		t.Errorf("count = %d", tbl.RowCount())
	}
	if err := tbl.Insert(row(1, "y", 0)); err != nil {
		t.Errorf("insert after truncate: %v", err)
	}
}

func TestSecondaryIndex(t *testing.T) {
	tbl := testTable(t)
	for i := 0; i < 100; i++ {
		tbl.Insert(row(int64(i), fmt.Sprint("g", i%10), float64(i)))
	}
	idx, err := tbl.CreateIndex("idx_name", []string{"name"}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.LookupIndex(idx, sqltypes.NewString("g3"))
	if len(rows) != 10 {
		t.Errorf("lookup = %d rows", len(rows))
	}
	// Index maintained on subsequent DML.
	tbl.Insert(row(1000, "g3", 1))
	rows = tbl.LookupIndex(idx, sqltypes.NewString("g3"))
	if len(rows) != 11 {
		t.Errorf("after insert: %d rows", len(rows))
	}
	tbl.Delete(func(r sqltypes.Row) (bool, error) { return r[0].I == 1000, nil })
	rows = tbl.LookupIndex(idx, sqltypes.NewString("g3"))
	if len(rows) != 10 {
		t.Errorf("after delete: %d rows", len(rows))
	}
}

func TestUniqueIndexViolation(t *testing.T) {
	tbl := testTable(t)
	tbl.Insert(row(1, "same", 0))
	tbl.Insert(row(2, "same", 0))
	if _, err := tbl.CreateIndex("u", []string{"name"}, true, false); err == nil {
		t.Error("unique index over duplicates should fail")
	}
}

func TestIndexIfNotExists(t *testing.T) {
	tbl := testTable(t)
	if _, err := tbl.CreateIndex("i", []string{"name"}, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("i", []string{"name"}, false, false); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := tbl.CreateIndex("i", []string{"name"}, false, true); err != nil {
		t.Errorf("IF NOT EXISTS: %v", err)
	}
}

func TestViews(t *testing.T) {
	c := New()
	if err := c.CreateView("v", "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	v, ok := c.View("V")
	if !ok || v.SourceSQL != "SELECT 1" {
		t.Fatalf("view = %#v, %v", v, ok)
	}
	if err := c.CreateView("v", "SELECT 2"); err == nil {
		t.Error("duplicate view")
	}
	if _, err := c.DropView("v", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DropView("v", false); err == nil {
		t.Error("drop missing view")
	}
	if _, err := c.DropView("v", true); err != nil {
		t.Error("drop IF EXISTS")
	}
}

func TestIVMMetadata(t *testing.T) {
	c := New()
	c.PutIVM(&IVMMetadata{ViewName: "mv1", BaseTables: []string{"groups"}})
	c.PutIVM(&IVMMetadata{ViewName: "mv2", BaseTables: []string{"orders", "groups"}})
	m, ok := c.IVM("MV1")
	if !ok || m.ViewName != "mv1" {
		t.Fatalf("IVM = %#v, %v", m, ok)
	}
	deps := c.IVMForBaseTable("groups")
	if len(deps) != 2 || deps[0].ViewName != "mv1" {
		t.Fatalf("deps = %v", deps)
	}
	if got := c.IVMForBaseTable("none"); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	c.DropIVM("mv1")
	if len(c.IVMViews()) != 1 {
		t.Error("drop failed")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false)
	if !c.HasTable("t") {
		t.Fatal("HasTable")
	}
	if _, err := c.DropTable("t", false); err != nil {
		t.Fatal(err)
	}
	if c.HasTable("t") {
		t.Error("still present")
	}
	if _, err := c.DropTable("t", false); err == nil {
		t.Error("double drop")
	}
	if _, err := c.DropTable("t", true); err != nil {
		t.Error("IF EXISTS drop")
	}
}

func TestTableNames(t *testing.T) {
	c := New()
	c.CreateTable("zeta", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false)
	c.CreateTable("alpha", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false)
	names := c.TableNames()
	if len(names) != 2 || names[0] != "alpha" {
		t.Errorf("names = %v", names)
	}
}

func TestNameCollisionTableView(t *testing.T) {
	c := New()
	c.CreateTable("x", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false)
	if err := c.CreateView("x", "SELECT 1"); err == nil {
		t.Error("view colliding with table should fail")
	}
	c.CreateView("y", "SELECT 1")
	if _, err := c.CreateTable("y", []Column{{Name: "a", Type: sqltypes.TypeInt}}, nil, false); err == nil {
		t.Error("table colliding with view should fail")
	}
}
