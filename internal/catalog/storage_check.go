package catalog

import "openivm/internal/storage"

// The in-memory columnar table is the default implementation of the
// engine's pluggable storage contract.
var _ storage.Table = (*Table)(nil)
