// Package mvcc implements the transaction layer behind the catalog's
// row-version storage: monotonic commit timestamps, per-transaction
// write logs, first-updater-wins write-write conflict detection, read
// snapshots and the garbage-collection watermark behind the oldest
// active snapshot.
//
// # Version stamps
//
// Every row version carries two uint64 stamps, begin and end. A stamp
// is either a commit timestamp (high bit clear) or a transaction id
// tagged with TxnBit (high bit set) while its writer is still in
// flight. An end stamp of zero means the version is live (no deletion).
// At commit the manager restamps every slot in the transaction's write
// log with the allocated commit timestamp — under each table's write
// lock — so readers only ever resolve TxnBit stamps through the status
// table while the owner is uncommitted.
//
// # Visibility
//
// A snapshot is a read timestamp plus (for a writing transaction) the
// reader's own txn id. A version is visible iff its begin stamp is
// committed at or before the read timestamp (or is the reader's own
// uncommitted write) and its end stamp is absent, committed after the
// read timestamp, or owned by a different uncommitted transaction.
//
// # Commit protocol
//
// Commits serialize on commitMu: allocate lastTS+1, publish the commit
// in the status table, restamp the write log table by table, then
// advance lastTS. Readers snapshot lastTS, so a commit becomes visible
// atomically — never half-restamped — and commit visibility is
// monotonic in commit order.
package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openivm/internal/enginerr"
	"openivm/internal/sqltypes"
)

// TxnBit tags a stamp as an in-flight transaction id rather than a
// commit timestamp.
const TxnBit = uint64(1) << 63

// ErrSerialization is the distinct error class for snapshot-isolation
// write-write conflicts. Statements and COMMITs that lose a conflict
// wrap it; clients should ROLLBACK and retry the whole transaction. It
// is a classified sentinel: enginerr.CodeOf resolves it (and anything
// wrapping it) to SQLSTATE 40001 without string matching.
var ErrSerialization error = enginerr.New(enginerr.CodeSerialization, "serialization failure")

// IsSerialization reports whether err is (or wraps) a serialization
// failure.
func IsSerialization(err error) bool { return errors.Is(err, ErrSerialization) }

// Op is one write-log entry: a slot the transaction stamped in some
// store. Prev records the slot the store's primary-key index pointed at
// before an insert (-1 none), so abort can restore the mapping. Old is
// OpReplace's undo payload — the row the slot held before an in-place
// replacement. It is concretely typed (not `any`) so logging a replace
// does not box the slice header: the quiescent upsert path logs one Op
// per combined group, and boxing would put an allocation back on the
// path the fast path exists to flatten.
type Op struct {
	Kind OpKind
	Slot int32
	Prev int32
	Old  sqltypes.Row
}

// OpKind distinguishes write-log entries.
type OpKind uint8

// Write-log entry kinds.
const (
	OpInsert  OpKind = iota // slot holds a new version begin-stamped by the txn
	OpDelete                // slot's end stamp was set by the txn
	OpReplace               // slot's value was replaced in place; Old holds the prior value
)

// Store is the storage-side half of the write log: a table that can
// restamp (commit) or revert (abort) the ops a transaction logged
// against it. Implementations lock themselves; the manager never holds
// its own mutex while calling in.
type Store interface {
	ApplyCommit(ops []Op, commitTS uint64)
	ApplyAbort(ops []Op)
}

// Txn is one in-flight transaction. It is single-goroutine, like the
// session that owns it; only the manager's structures are shared.
type Txn struct {
	ID     uint64 // raw id (without TxnBit)
	ReadTS uint64 // snapshot: commits with ts <= ReadTS are visible

	m      *Manager
	doomed bool // lost a write-write conflict; COMMIT must abort
	auto   bool // single-statement (autocommit) transaction

	// The write log, grouped per store. A transaction touches very few
	// stores (a statement txn usually exactly one), so the group lookup
	// is a linear scan over inline backing arrays — no map, and the
	// first ops of a statement allocate nothing but the op slice.
	stores    []Store
	ops       [][]Op
	storesArr [2]Store
	opsArr    [2][]Op

	// CommitHook, when set, runs inside Manager.Commit while the commit
	// mutex is held, after the transaction's commit timestamp is
	// published. Because commitMu serializes commits, hook invocations
	// across transactions happen in commit-timestamp order — the
	// property the write-ahead log relies on to append redo records in
	// commit order (a crash then truncates a suffix of the commit
	// sequence, never a hole in the middle). The hook must be fast and
	// must not re-enter the manager.
	CommitHook func(commitTS uint64)
}

// SetAutoCommit marks tx as a single-statement transaction: it commits
// the moment its statement ends, barring a conflict doom. Stores use
// this to enable quiescent fast paths whose visibility window must not
// outlive one statement.
func (tx *Txn) SetAutoCommit() { tx.auto = true }

// AutoCommit reports whether tx is a single-statement transaction.
func (tx *Txn) AutoCommit() bool { return tx.auto }

// StampID returns the TxnBit-tagged stamp value writers store while the
// transaction is in flight.
func (tx *Txn) StampID() uint64 { return tx.ID | TxnBit }

// Snapshot returns the transaction's read snapshot.
func (tx *Txn) Snapshot() Snapshot {
	return Snapshot{ReadTS: tx.ReadTS, TxnID: tx.ID, M: tx.m}
}

// Log appends op to the transaction's write log for store, reporting
// whether this is the first op against that store (callers use it to
// pin the store against compaction). Callers hold the store's write
// lock, which is what serializes Log for a given store.
func (tx *Txn) Log(store Store, op Op) (first bool) {
	i := -1
	for j, s := range tx.stores {
		if s == store {
			i = j
			break
		}
	}
	if i < 0 {
		if tx.stores == nil {
			tx.stores = tx.storesArr[:0]
			tx.ops = tx.opsArr[:0]
		}
		i = len(tx.stores)
		tx.stores = append(tx.stores, store)
		tx.ops = append(tx.ops, nil)
		first = true
	}
	tx.ops[i] = append(tx.ops[i], op)
	return first
}

// Writes calls f once per store the transaction has logged ops
// against, in first-touch order. The redo-capture path uses it to
// derive a write-ahead-log record from the undo log at commit time; f
// must not log further ops.
func (tx *Txn) Writes(f func(store Store, ops []Op)) {
	for i, s := range tx.stores {
		f(s, tx.ops[i])
	}
}

// Doom marks the transaction as having lost a conflict: its COMMIT will
// abort with ErrSerialization. Statements that return a serialization
// error doom their transaction so a client ignoring the error cannot
// commit a half-applied statement.
func (tx *Txn) Doom() { tx.doomed = true }

// Doomed reports whether the transaction must abort at commit.
func (tx *Txn) Doomed() bool { return tx.doomed }

// Snapshot is a consistent read view: commits with ts <= ReadTS are
// visible, plus the reader's own uncommitted writes when TxnID != 0.
// The zero Snapshot (M == nil) means "latest": each read resolves the
// current last-committed timestamp at lock time — the legacy
// read-your-writes behavior engine-internal paths rely on.
type Snapshot struct {
	ReadTS uint64
	TxnID  uint64
	M      *Manager
}

// Visible reports whether a version [begin, end) is visible to the
// snapshot. Callers hold the owning table's lock (shared or exclusive),
// which keeps the stamps stable: restamping happens under the write
// lock.
func (sn Snapshot) Visible(begin, end uint64) bool {
	if begin&TxnBit != 0 {
		owner := begin &^ TxnBit
		if owner != sn.TxnID || sn.TxnID == 0 {
			ts, committed := sn.M.commitTS(owner)
			if !committed || ts > sn.ReadTS {
				return false
			}
		}
	} else if begin > sn.ReadTS {
		return false
	}
	if end == 0 {
		return true
	}
	if end&TxnBit != 0 {
		owner := end &^ TxnBit
		if owner == sn.TxnID && sn.TxnID != 0 {
			return false // own delete
		}
		ts, committed := sn.M.commitTS(owner)
		return !committed || ts > sn.ReadTS
	}
	return end > sn.ReadTS
}

// txnStatus tracks one in-flight (or committing) transaction in the
// status table.
type txnStatus struct {
	readTS    uint64
	commitTS  uint64 // nonzero once committed
	committed bool
	born      time.Time
}

// snapStatus tracks one registered read-only statement snapshot.
type snapStatus struct {
	readTS uint64
	born   time.Time
}

// Stats is a point-in-time counter snapshot for monitoring.
type Stats struct {
	ActiveTxns     int64  // open transactions (incl. statement txns)
	Commits        uint64 // successful commits
	ConflictAborts uint64 // aborts of doomed (conflict-losing) txns
	GCVersions     uint64 // dead versions reclaimed by GC
	// OldestSnapshotMS is the age in milliseconds of the oldest active
	// snapshot or transaction (0 when none are active) — the GC
	// watermark's distance into the past.
	OldestSnapshotMS int64
}

// Manager allocates transaction ids and commit timestamps, tracks
// in-flight transactions and registered snapshots, and drives GC.
type Manager struct {
	lastTS atomic.Uint64 // last fully committed timestamp
	nextID atomic.Uint64 // txn id allocator

	// commitMu serializes commits (and legacy instant-stamp allocation):
	// restamp + lastTS advance must be atomic with respect to each other
	// or a reader could observe a half-visible commit across tables.
	commitMu sync.Mutex

	// mu guards status and snaps. Lock order: table mutex before mu —
	// visibility resolution takes mu under a table's lock, so the
	// manager never calls into a Store while holding mu.
	mu      sync.Mutex
	status  map[uint64]*txnStatus
	snaps   map[uint64]*snapStatus
	snapSeq uint64

	activeTxns     atomic.Int64
	commits        atomic.Uint64
	conflictAborts atomic.Uint64
	gcVersions     atomic.Uint64

	// deadVersions estimates reclaimable versions; crossing gcEvery
	// triggers a background sweep. gcStuckAt suppresses re-triggering
	// while the watermark that blocked the last sweep has not advanced.
	deadVersions atomic.Int64
	gcRunning    atomic.Bool
	gcStuckAt    atomic.Uint64
	sweeper      func(watermark uint64) int
}

// gcEvery is the dead-version estimate that triggers a background
// sweep. Low enough that hot upsert loops (IVM combine steps) stay
// compacted, high enough that the sweep amortizes.
const gcEvery = 4096

// NewManager returns a manager with the timestamp clock at 1 (so a zero
// begin stamp, which cannot occur, would read as "committed before
// everything").
func NewManager() *Manager {
	m := &Manager{
		status: make(map[uint64]*txnStatus),
		snaps:  make(map[uint64]*snapStatus),
	}
	m.lastTS.Store(1)
	return m
}

// SetSweeper installs the storage-side GC sweep (the catalog walks its
// tables reclaiming versions dead behind the watermark, returning how
// many it freed). Must be called before concurrent use.
func (m *Manager) SetSweeper(fn func(watermark uint64) int) { m.sweeper = fn }

// LatestTS returns the last committed timestamp — the read timestamp a
// fresh snapshot gets.
func (m *Manager) LatestTS() uint64 { return m.lastTS.Load() }

// Current returns an unregistered latest-state snapshot. Safe for
// single-table reads (the row copy happens under one table lock);
// multi-table statements should use AcquireSnapshot so the GC watermark
// protects versions they have not read yet.
func (m *Manager) Current() Snapshot {
	return Snapshot{ReadTS: m.lastTS.Load(), M: m}
}

// Begin starts a transaction with a fresh read snapshot.
func (m *Manager) Begin() *Txn {
	id := m.nextID.Add(1)
	ts := m.lastTS.Load()
	m.mu.Lock()
	m.status[id] = &txnStatus{readTS: ts, born: time.Now()}
	m.mu.Unlock()
	m.activeTxns.Add(1)
	return &Txn{ID: id, ReadTS: ts, m: m}
}

// AcquireSnapshot registers a read-only statement snapshot and returns
// it with a release func. Registration holds the GC watermark at or
// before the snapshot's read timestamp until release, so a long scan
// (or a multi-table statement) never loses versions it still needs.
func (m *Manager) AcquireSnapshot() (Snapshot, func()) {
	m.mu.Lock()
	m.snapSeq++
	id := m.snapSeq
	ts := m.lastTS.Load()
	m.snaps[id] = &snapStatus{readTS: ts, born: time.Now()}
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		delete(m.snaps, id)
		m.mu.Unlock()
	}
	return Snapshot{ReadTS: ts, M: m}, release
}

// commitTS resolves an in-flight stamp's owner: (ts, true) once the
// owner has committed, (0, false) while it is active or after it
// aborted. A missing status entry reads as aborted — entries are only
// removed after every stamp is restamped (commit) or reverted (abort),
// and stamps are read under table locks that exclude both.
func (m *Manager) commitTS(owner uint64) (uint64, bool) {
	// The status fields must be copied under m.mu: Commit mutates them
	// in place while concurrent readers resolve stamps.
	m.mu.Lock()
	var committed bool
	var ts uint64
	if st, ok := m.status[owner]; ok {
		committed, ts = st.committed, st.commitTS
	}
	m.mu.Unlock()
	if !committed {
		return 0, false
	}
	return ts, true
}

// CheckWritable decides whether tx may end-stamp a version whose
// current end stamp is end. It implements first-updater-wins: a version
// already delete-stamped by a live competitor, or superseded by a
// commit after tx's snapshot, is a write-write conflict. The caller
// holds the table's write lock.
func (m *Manager) CheckWritable(tx *Txn, end uint64) error {
	if end == 0 {
		return nil
	}
	if end&TxnBit != 0 {
		owner := end &^ TxnBit
		if owner == tx.ID {
			return nil // re-stamping our own delete (second update in one txn)
		}
		m.mu.Lock()
		st, ok := m.status[owner]
		var committed bool
		var cts uint64
		if ok {
			committed, cts = st.committed, st.commitTS
		}
		m.mu.Unlock()
		if !ok {
			return nil // owner aborted and reverted; stamp is stale
		}
		if committed && cts <= tx.ReadTS {
			return nil
		}
		return fmt.Errorf("%w: row is write-locked by concurrent transaction", ErrSerialization)
	}
	if end <= tx.ReadTS {
		return nil // deletion visible to tx; version is dead to it anyway
	}
	return fmt.Errorf("%w: row was modified by a transaction committed after this snapshot", ErrSerialization)
}

// Commit atomically publishes the transaction's writes. A doomed
// transaction aborts instead and returns ErrSerialization.
func (m *Manager) Commit(tx *Txn) error {
	if tx.doomed {
		m.Abort(tx)
		return fmt.Errorf("%w: transaction lost a write-write conflict", ErrSerialization)
	}
	m.commitMu.Lock()
	ts := m.lastTS.Load() + 1
	m.mu.Lock()
	if st, ok := m.status[tx.ID]; ok {
		st.committed = true
		st.commitTS = ts
	}
	m.mu.Unlock()
	for i, store := range tx.stores {
		store.ApplyCommit(tx.ops[i], ts)
	}
	if tx.CommitHook != nil {
		tx.CommitHook(ts)
	}
	m.lastTS.Store(ts)
	m.commitMu.Unlock()
	m.mu.Lock()
	delete(m.status, tx.ID)
	m.mu.Unlock()
	m.activeTxns.Add(-1)
	m.commits.Add(1)
	m.maybeGC()
	return nil
}

// WithCommitLock runs f while holding the commit mutex, excluding
// every Commit (including its ApplyCommit publication and CommitHook).
// The checkpoint protocol uses it to dump table state with no commit
// caught between publishing its writes and appending its log record —
// a window that would let a checkpoint double-count the commit. f must
// not commit or abort transactions.
func (m *Manager) WithCommitLock(f func()) {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	f()
}

// Abort reverts the transaction's writes (newest store first, each
// store reverting its ops newest-first) and clears its status.
func (m *Manager) Abort(tx *Txn) {
	for i := len(tx.stores) - 1; i >= 0; i-- {
		tx.stores[i].ApplyAbort(tx.ops[i])
	}
	m.mu.Lock()
	delete(m.status, tx.ID)
	m.mu.Unlock()
	m.activeTxns.Add(-1)
	if tx.doomed {
		m.conflictAborts.Add(1)
	}
	m.maybeGC()
}

// OnlyActive reports whether tx (which may be nil) is the only active
// transaction and no statement snapshots are registered — the condition
// under which storage may take irreversible fast paths (physical
// truncate) without violating any concurrent snapshot. Callers must
// hold the relevant table's write lock so no new reader can slip in
// between the check and the fast path for THAT table; new transactions
// can still start, but they will take their snapshot after the fast
// path's effects and never observe the skipped versions.
func (m *Manager) OnlyActive(tx *Txn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) != 0 {
		return false
	}
	switch len(m.status) {
	case 0:
		return tx == nil
	case 1:
		if tx == nil {
			return false
		}
		_, ok := m.status[tx.ID]
		return ok
	default:
		return false
	}
}

// Watermark returns the oldest read timestamp any active transaction or
// registered snapshot can observe; versions dead at or before it are
// unreachable and reclaimable.
func (m *Manager) Watermark() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.watermarkLocked()
}

func (m *Manager) watermarkLocked() uint64 {
	w := m.lastTS.Load()
	for _, st := range m.status {
		if st.readTS < w {
			w = st.readTS
		}
	}
	for _, sn := range m.snaps {
		if sn.readTS < w {
			w = sn.readTS
		}
	}
	return w
}

// NoteDead adds to the reclaimable-version estimate and triggers a
// background sweep past the threshold.
func (m *Manager) NoteDead(n int) {
	if n <= 0 {
		return
	}
	m.deadVersions.Add(int64(n))
	m.maybeGC()
}

// maybeGC spawns one background sweep when enough dead versions have
// accumulated and the watermark has moved since the last fruitless
// sweep.
func (m *Manager) maybeGC() {
	if m.sweeper == nil || m.deadVersions.Load() < gcEvery {
		return
	}
	w := m.Watermark()
	if w == m.gcStuckAt.Load() {
		return // same watermark that blocked the last sweep
	}
	if !m.gcRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer m.gcRunning.Store(false)
		m.runSweep()
	}()
}

// runSweep performs one sweep at the current watermark.
func (m *Manager) runSweep() {
	w := m.Watermark()
	n := m.sweeper(w)
	if n > 0 {
		m.gcVersions.Add(uint64(n))
		m.deadVersions.Add(int64(-n))
		m.gcStuckAt.Store(0)
	} else {
		m.gcStuckAt.Store(w)
	}
}

// Vacuum runs one synchronous sweep (tests and explicit maintenance).
// It returns the number of versions reclaimed.
func (m *Manager) Vacuum() int {
	if m.sweeper == nil {
		return 0
	}
	w := m.Watermark()
	n := m.sweeper(w)
	if n > 0 {
		m.gcVersions.Add(uint64(n))
		m.deadVersions.Add(int64(-n))
	}
	return n
}

// Stats returns a point-in-time counter snapshot.
func (m *Manager) Stats() Stats {
	s := Stats{
		ActiveTxns:     m.activeTxns.Load(),
		Commits:        m.commits.Load(),
		ConflictAborts: m.conflictAborts.Load(),
		GCVersions:     m.gcVersions.Load(),
	}
	m.mu.Lock()
	var oldest time.Time
	for _, st := range m.status {
		if oldest.IsZero() || st.born.Before(oldest) {
			oldest = st.born
		}
	}
	for _, sn := range m.snaps {
		if oldest.IsZero() || sn.born.Before(oldest) {
			oldest = sn.born
		}
	}
	m.mu.Unlock()
	if !oldest.IsZero() {
		s.OldestSnapshotMS = time.Since(oldest).Milliseconds()
		if s.OldestSnapshotMS < 0 {
			s.OldestSnapshotMS = 0
		}
	}
	return s
}
