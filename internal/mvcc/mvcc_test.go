package mvcc

import (
	"errors"
	"testing"
)

// memStore records ApplyCommit/ApplyAbort calls in order so tests can
// assert the manager's store protocol without a real table.
type memStore struct {
	commits [][]Op
	aborts  [][]Op
	tss     []uint64
	order   *[]string
	name    string
}

func (s *memStore) ApplyCommit(ops []Op, ts uint64) {
	s.commits = append(s.commits, ops)
	s.tss = append(s.tss, ts)
	if s.order != nil {
		*s.order = append(*s.order, "commit:"+s.name)
	}
}

func (s *memStore) ApplyAbort(ops []Op) {
	s.aborts = append(s.aborts, ops)
	if s.order != nil {
		*s.order = append(*s.order, "abort:"+s.name)
	}
}

func TestBeginCommitAdvancesClock(t *testing.T) {
	m := NewManager()
	if got := m.LatestTS(); got != 1 {
		t.Fatalf("fresh clock = %d, want 1", got)
	}
	tx := m.Begin()
	if tx.ReadTS != 1 {
		t.Fatalf("ReadTS = %d, want 1", tx.ReadTS)
	}
	st := &memStore{}
	tx.Log(st, Op{Kind: OpInsert, Slot: 0, Prev: -1})
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if got := m.LatestTS(); got != 2 {
		t.Fatalf("clock after commit = %d, want 2", got)
	}
	if len(st.commits) != 1 || st.tss[0] != 2 {
		t.Fatalf("store commits = %v at %v, want one at ts 2", st.commits, st.tss)
	}
	if s := m.Stats(); s.Commits != 1 || s.ActiveTxns != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestVisibility(t *testing.T) {
	m := NewManager()
	tx := m.Begin() // ReadTS 1
	other := m.Begin()

	snTx := tx.Snapshot()
	snCur := m.Current()

	// In-flight insert by tx: visible to tx, invisible to everyone else.
	begin := tx.StampID()
	if !snTx.Visible(begin, 0) {
		t.Error("own in-flight insert invisible to owner")
	}
	if snCur.Visible(begin, 0) {
		t.Error("in-flight insert visible to a plain snapshot")
	}
	if other.Snapshot().Visible(begin, 0) {
		t.Error("in-flight insert visible to a concurrent transaction")
	}

	// Own delete: invisible to owner, still visible to others.
	if snTx.Visible(1, tx.StampID()) {
		t.Error("own delete still visible to owner")
	}
	if !other.Snapshot().Visible(1, tx.StampID()) {
		t.Error("uncommitted delete hid the row from a concurrent reader")
	}

	// Committed stamps against the read timestamp.
	if !snTx.Visible(1, 0) {
		t.Error("old committed version invisible")
	}
	if snTx.Visible(2, 0) {
		t.Error("future committed version visible")
	}
	if snTx.Visible(1, 1) {
		t.Error("version deleted at ReadTS still visible")
	}
	if !snTx.Visible(1, 2) {
		t.Error("version deleted after ReadTS invisible")
	}
}

func TestCommitPublishesToNewSnapshotsOnly(t *testing.T) {
	m := NewManager()
	writer := m.Begin()
	st := &memStore{}
	writer.Log(st, Op{Kind: OpInsert, Slot: 0, Prev: -1})
	begin := writer.StampID()

	before := m.Current() // snapshot taken before the commit
	if err := m.Commit(writer); err != nil {
		t.Fatal(err)
	}
	// Storage restamps at commit; simulate the restamped version.
	committedAt := m.LatestTS()
	if before.Visible(committedAt, 0) {
		t.Error("pre-commit snapshot sees the new commit (non-repeatable read)")
	}
	if !m.Current().Visible(committedAt, 0) {
		t.Error("post-commit snapshot misses the commit")
	}
	// A TxnBit stamp of a committed-but-not-yet-restamped owner resolves
	// through the status table only while the status entry lives; after
	// Commit returns the entry is gone and the stamp must already be
	// restamped, so Visible treats it as aborted.
	if m.Current().Visible(begin, 0) {
		t.Error("stale TxnBit stamp of a finished txn resolved as visible")
	}
}

func TestCheckWritable(t *testing.T) {
	m := NewManager()
	tx := m.Begin()

	if err := m.CheckWritable(tx, 0); err != nil {
		t.Fatalf("live version not writable: %v", err)
	}
	if err := m.CheckWritable(tx, tx.StampID()); err != nil {
		t.Fatalf("own delete stamp not re-writable: %v", err)
	}
	if err := m.CheckWritable(tx, tx.ReadTS); err != nil {
		t.Fatalf("deletion visible to snapshot should be writable (dead row): %v", err)
	}

	// A live competitor's delete stamp is a conflict.
	rival := m.Begin()
	if err := m.CheckWritable(tx, rival.StampID()); !IsSerialization(err) {
		t.Fatalf("live rival stamp: err = %v, want serialization", err)
	}
	// After the rival commits, its stamp resolves to a timestamp above
	// tx's snapshot: still a conflict (first committer won).
	if err := m.Commit(rival); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckWritable(tx, m.LatestTS()); !IsSerialization(err) {
		t.Fatalf("committed-after-snapshot end stamp: err = %v, want serialization", err)
	}
	// An aborted rival's stamp is stale and writable.
	loser := m.Begin()
	stamp := loser.StampID()
	m.Abort(loser)
	if err := m.CheckWritable(tx, stamp); err != nil {
		t.Fatalf("aborted rival stamp: %v", err)
	}
}

func TestDoomedCommitAborts(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	st := &memStore{}
	tx.Log(st, Op{Kind: OpInsert, Slot: 3, Prev: -1})
	tx.Doom()
	err := m.Commit(tx)
	if !IsSerialization(err) {
		t.Fatalf("commit of doomed txn: %v, want serialization failure", err)
	}
	if len(st.aborts) != 1 || len(st.commits) != 0 {
		t.Fatalf("store saw commits=%d aborts=%d, want 0/1", len(st.commits), len(st.aborts))
	}
	if got := m.LatestTS(); got != 1 {
		t.Fatalf("clock advanced on aborted commit: %d", got)
	}
	s := m.Stats()
	if s.ConflictAborts != 1 || s.ActiveTxns != 0 {
		t.Fatalf("stats = %+v, want 1 conflict abort, 0 active", s)
	}
	if !errors.Is(err, ErrSerialization) {
		t.Fatal("error does not unwrap to ErrSerialization")
	}
}

func TestAbortRevertsNewestStoreFirst(t *testing.T) {
	m := NewManager()
	var order []string
	a := &memStore{name: "a", order: &order}
	b := &memStore{name: "b", order: &order}
	tx := m.Begin()
	tx.Log(a, Op{Kind: OpInsert, Slot: 0, Prev: -1})
	tx.Log(b, Op{Kind: OpDelete, Slot: 1})
	m.Abort(tx)
	if len(order) != 2 || order[0] != "abort:b" || order[1] != "abort:a" {
		t.Fatalf("abort order = %v, want [abort:b abort:a]", order)
	}
}

func TestLogFirstPerStore(t *testing.T) {
	tx := NewManager().Begin()
	a, b := &memStore{}, &memStore{}
	if !tx.Log(a, Op{}) {
		t.Error("first op on store a not flagged")
	}
	if tx.Log(a, Op{}) {
		t.Error("second op on store a flagged as first")
	}
	if !tx.Log(b, Op{}) {
		t.Error("first op on store b not flagged")
	}
}

func TestWatermarkTracksOldestReader(t *testing.T) {
	m := NewManager()
	if w := m.Watermark(); w != 1 {
		t.Fatalf("idle watermark = %d, want 1", w)
	}
	old := m.Begin() // pins watermark at 1

	// Commits advance the clock but not the watermark past old's snapshot.
	for i := 0; i < 3; i++ {
		w := m.Begin()
		w.Log(&memStore{}, Op{})
		if err := m.Commit(w); err != nil {
			t.Fatal(err)
		}
	}
	if w := m.Watermark(); w != 1 {
		t.Fatalf("watermark with old txn active = %d, want 1", w)
	}
	m.Abort(old)
	if w, latest := m.Watermark(), m.LatestTS(); w != latest {
		t.Fatalf("watermark after release = %d, want %d", w, latest)
	}

	sn, release := m.AcquireSnapshot()
	if w := m.Watermark(); w != sn.ReadTS {
		t.Fatalf("watermark ignores registered snapshot: %d vs %d", w, sn.ReadTS)
	}
	next := m.Begin()
	next.Log(&memStore{}, Op{})
	if err := m.Commit(next); err != nil {
		t.Fatal(err)
	}
	if w := m.Watermark(); w != sn.ReadTS {
		t.Fatalf("watermark moved past a pinned snapshot: %d", w)
	}
	release()
	if w := m.Watermark(); w != m.LatestTS() {
		t.Fatalf("watermark stuck after release: %d", w)
	}
}

func TestOnlyActive(t *testing.T) {
	m := NewManager()
	if !m.OnlyActive(nil) {
		t.Error("idle manager: OnlyActive(nil) = false")
	}
	tx := m.Begin()
	if m.OnlyActive(nil) {
		t.Error("active txn invisible to OnlyActive(nil)")
	}
	if !m.OnlyActive(tx) {
		t.Error("sole txn not recognized as only active")
	}
	other := m.Begin()
	if m.OnlyActive(tx) {
		t.Error("two active txns but OnlyActive = true")
	}
	m.Abort(other)
	_, release := m.AcquireSnapshot()
	if m.OnlyActive(tx) {
		t.Error("registered snapshot ignored by OnlyActive")
	}
	release()
	if !m.OnlyActive(tx) {
		t.Error("released snapshot still blocks OnlyActive")
	}
	m.Abort(tx)
}

func TestVacuumRunsSweeper(t *testing.T) {
	m := NewManager()
	var gotW uint64
	m.SetSweeper(func(w uint64) int {
		gotW = w
		return 7
	})
	m.NoteDead(10)
	if n := m.Vacuum(); n != 7 {
		t.Fatalf("Vacuum = %d, want 7", n)
	}
	if gotW != m.LatestTS() {
		t.Fatalf("sweeper watermark = %d, want %d", gotW, m.LatestTS())
	}
	if s := m.Stats(); s.GCVersions != 7 {
		t.Fatalf("GCVersions = %d, want 7", s.GCVersions)
	}
}

func TestStatsOldestSnapshotAge(t *testing.T) {
	m := NewManager()
	if s := m.Stats(); s.OldestSnapshotMS != 0 {
		t.Fatalf("idle OldestSnapshotMS = %d, want 0", s.OldestSnapshotMS)
	}
	tx := m.Begin()
	if s := m.Stats(); s.ActiveTxns != 1 || s.OldestSnapshotMS < 0 {
		t.Fatalf("stats with one txn = %+v", s)
	}
	m.Abort(tx)
}
