package engine

import (
	"context"

	"openivm/internal/exec"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// Stream is a running statement whose result is consumed batch by batch
// instead of materialized — the engine half of the wire protocol's
// streaming exec path. For a planned SELECT it wraps the live operator
// tree: each Next pulls one batch, so a consumer that stops pulling (a
// slow network peer) parks the whole pipeline — natural backpressure all
// the way down to the parallel scan's bounded channels. Statements that
// have no streaming shape (DML, scripts, hook-handled statements such as
// lazily refreshed materialized-view reads) fall back to a materialized
// result served as a single batch.
//
// A Stream must be closed exactly once, drained or not: Close releases
// the operator tree (terminating parallel workers). Like the session that
// produced it, a Stream belongs to one goroutine.
type Stream struct {
	// Columns names the result columns (empty for pure DML).
	Columns []string

	it           exec.BatchIterator // nil when materialized
	rows         []sqltypes.Row     // materialized payload
	rowsAffected int
	served       bool
	closed       bool
	release      func() // statement-snapshot unpin (nil when none)
}

// Next returns the next batch of rows, or nil at end of stream. The
// returned slice is owned by the stream and only valid until the next
// Next or Close call; the rows it references are durable.
func (st *Stream) Next() ([]sqltypes.Row, error) {
	if st.it != nil {
		b, err := st.it.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		return b.RowView(), nil
	}
	if st.served || len(st.rows) == 0 {
		return nil, nil
	}
	st.served = true
	return st.rows, nil
}

// RowsAffected returns the DML row count (0 for streamed SELECTs).
func (st *Stream) RowsAffected() int { return st.rowsAffected }

// Close releases the stream's operator tree and unpins its read
// snapshot from the MVCC GC watermark. Idempotent.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	if st.it != nil {
		st.it.Close()
	}
	if st.release != nil {
		st.release()
	}
}

// materializedStream wraps an already computed result.
func materializedStream(res *Result) *Stream {
	if res == nil {
		return &Stream{}
	}
	return &Stream{Columns: res.Columns, rows: res.Rows, rowsAffected: res.RowsAffected}
}

// ExecStream executes a statement or script with a streamed result: a
// single SELECT (the wire server's hot path) opens the operator tree and
// returns before pulling a single batch, never materializing the result
// set; everything else executes eagerly and the stream serves the
// materialized rows. ctx cancels execution per batch (nil = session
// context); the statement-cache and hook passes run exactly as in
// ExecContext.
func (s *Session) ExecStream(ctx context.Context, sql string) (*Stream, error) {
	if ctx == nil {
		ctx = s.ctx
	}
	if ent, ok := s.lookupStmt(sql); ok {
		return s.streamCachedSelect(ctx, ent)
	}
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		res, ferr := s.execScriptWithFallback(ctx, sql)
		if ferr != nil {
			return nil, ferr
		}
		return materializedStream(res), nil
	}
	if len(stmts) == 1 {
		if sel, isSel := stmts[0].(*sqlparser.SelectStmt); isSel {
			return s.streamSelectText(ctx, sql, sel)
		}
	}
	res, err := s.execStmtsCtx(ctx, stmts)
	if err != nil {
		return nil, err
	}
	return materializedStream(res), nil
}

// ExecPreparedStream executes a previously prepared statement list (see
// PrepareScript) with a streamed result. A single prepared SELECT hits
// the prepared-plan cache and streams; multi-statement scripts execute
// eagerly. Parameters are whatever the session's binding currently holds
// (BindParams).
func (s *Session) ExecPreparedStream(ctx context.Context, stmts []sqlparser.Statement) (*Stream, error) {
	if ctx == nil {
		ctx = s.ctx
	}
	if len(stmts) == 1 {
		if sel, isSel := stmts[0].(*sqlparser.SelectStmt); isSel {
			return s.streamSelect(ctx, sel)
		}
	}
	res, err := s.execStmtsCtx(ctx, stmts)
	if err != nil {
		return nil, err
	}
	return materializedStream(res), nil
}

// streamCachedSelect is runCachedSelect's streaming twin: the hook pass
// still runs (lazy IVM refresh must observe the read), and a schema-epoch
// mismatch replans.
func (s *Session) streamCachedSelect(ctx context.Context, ent *stmtEntry) (*Stream, error) {
	for _, h := range s.db.hooks {
		handled, res, err := h(s, ent.sel)
		if err != nil {
			return nil, err
		}
		if handled {
			return materializedStream(res), nil
		}
	}
	if s.db.epoch() != ent.epoch {
		return s.streamSelect(ctx, ent.sel)
	}
	return s.openStream(ctx, ent.node)
}

// streamSelectText mirrors execSelectText: hook pass, plan, publish in
// the shared statement cache when shareable, then open the tree.
func (s *Session) streamSelectText(ctx context.Context, sql string, sel *sqlparser.SelectStmt) (*Stream, error) {
	for _, h := range s.db.hooks {
		handled, res, err := h(s, sel)
		if err != nil {
			return nil, err
		}
		if handled {
			return materializedStream(res), nil
		}
	}
	epoch := s.db.epoch()
	n, err := s.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	if planShareable(n) && selectShaped(sql) && s.db.epoch() == epoch {
		s.db.stmts.put(s.textKey(sql), &stmtEntry{sel: sel, node: n, epoch: epoch})
	}
	return s.openStream(ctx, n)
}

// streamSelect runs the hook pass, plans (hitting the prepared-plan cache
// for marked statements) and opens the tree.
func (s *Session) streamSelect(ctx context.Context, sel *sqlparser.SelectStmt) (*Stream, error) {
	for _, h := range s.db.hooks {
		handled, res, err := h(s, sel)
		if err != nil {
			return nil, err
		}
		if handled {
			return materializedStream(res), nil
		}
	}
	n, err := s.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	return s.openStream(ctx, n)
}

// openStream opens the operator tree for a planned SELECT without pulling
// any batches. The read snapshot stays pinned until Close — a slow
// consumer must not have its visible versions reclaimed mid-stream.
func (s *Session) openStream(ctx context.Context, n plan.Node) (*Stream, error) {
	opts := s.execOpts(ctx)
	release := s.bindSnap(&opts)
	it, err := exec.OpenBatch(n, opts)
	if err != nil {
		release()
		return nil, err
	}
	st := &Stream{it: it, release: release}
	for _, c := range n.Schema() {
		st.Columns = append(st.Columns, c.Name)
	}
	return st, nil
}
