package engine

import (
	"strings"
	"testing"
)

// TestPragmaBatchSizeRoundTrip checks the knob flows engine → plan → exec:
// the pragma is stored, the planner wraps the root in a Hint node (visible
// in EXPLAIN), and execution at the tiny batch size still returns correct
// results.
func TestPragmaBatchSizeRoundTrip(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE nums (k VARCHAR, v INTEGER)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO nums VALUES ('k', 1)")
	}

	if _, err := db.Exec("PRAGMA batch_size = 3"); err != nil {
		t.Fatal(err)
	}
	if got := db.Pragma("batch_size"); got != "3" {
		t.Fatalf("pragma round-trip = %q", got)
	}

	// Plan layer: the root carries the hint.
	res, err := db.Exec("EXPLAIN SELECT k, SUM(v) FROM nums GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	var explain []string
	for _, r := range res.Rows {
		explain = append(explain, r[0].String())
	}
	if !strings.Contains(strings.Join(explain, "\n"), "Hint batch_size=3") {
		t.Fatalf("EXPLAIN missing batch-size hint:\n%s", strings.Join(explain, "\n"))
	}

	// Exec layer: results are unchanged by the batch size.
	res, err = db.Exec("SELECT k, SUM(v) FROM nums GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].I != 10 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPragmaBatchSizeValidation(t *testing.T) {
	db := Open("t", DialectDuckDB)
	for _, bad := range []string{"PRAGMA batch_size = 0", "PRAGMA batch_size = -5", "PRAGMA batch_size = 'lots'"} {
		if _, err := db.Exec(bad); err == nil {
			t.Fatalf("%s must be rejected", bad)
		}
	}
	if _, err := db.Exec("PRAGMA batch_size = 1024"); err != nil {
		t.Fatal(err)
	}
}
