package engine

import (
	"fmt"
	"strings"
	"testing"

	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open("test", DialectDuckDB)
	mustExec(t, db, `CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)`)
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf(
			"INSERT INTO groups VALUES ('g%d', %d)", i%4, i))
	}
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func queryRows(t *testing.T, db *DB, sql string) []sqltypes.Row {
	t.Helper()
	return mustExec(t, db, sql).Rows
}

func sortedStrings(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT * FROM groups")
	if len(rows) != 20 {
		t.Fatalf("got %d rows", len(rows))
	}
	if len(rows[0]) != 2 {
		t.Fatalf("width = %d", len(rows[0]))
	}
}

func TestSelectWhere(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT group_value FROM groups WHERE group_value >= 15")
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestSelectExpression(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT group_value * 2 + 1 FROM groups WHERE group_value = 3")
	if len(rows) != 1 || rows[0][0].I != 7 {
		t.Fatalf("got %v", rows)
	}
}

func TestGroupBySum(t *testing.T) {
	db := testDB(t)
	r := mustExec(t, db, `SELECT group_index, SUM(group_value) AS total
		FROM groups GROUP BY group_index ORDER BY group_index`)
	if len(r.Rows) != 4 {
		t.Fatalf("got %d groups", len(r.Rows))
	}
	// group g0: 0+4+8+12+16 = 40
	if r.Rows[0][0].S != "g0" || r.Rows[0][1].I != 40 {
		t.Errorf("g0 = %v", r.Rows[0])
	}
	if r.Columns[1] != "total" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestGroupByCountMinMaxAvg(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, `SELECT group_index, COUNT(*), MIN(group_value),
		MAX(group_value), AVG(group_value) FROM groups GROUP BY group_index ORDER BY 1`)
	if len(rows) != 4 {
		t.Fatalf("got %d", len(rows))
	}
	r := rows[1] // g1: 1,5,9,13,17
	if r[1].I != 5 || r[2].I != 1 || r[3].I != 17 || r[4].F != 9 {
		t.Errorf("g1 = %v", r)
	}
}

func TestGlobalAggregate(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT COUNT(*), SUM(group_value) FROM groups")
	if len(rows) != 1 || rows[0][0].I != 20 || rows[0][1].I != 190 {
		t.Fatalf("got %v", rows)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE e (a INTEGER)")
	rows := queryRows(t, db, "SELECT COUNT(*), SUM(a) FROM e")
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Fatalf("got %v", rows)
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, `SELECT group_index, SUM(group_value) AS s FROM groups
		GROUP BY group_index HAVING SUM(group_value) > 45 ORDER BY 1`)
	// sums: g0=40 g1=45 g2=50 g3=55
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
}

func TestAggExprOverAggregate(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, `SELECT group_index, SUM(group_value) / COUNT(*) FROM groups
		GROUP BY group_index ORDER BY 1`)
	if len(rows) != 4 || rows[0][1].I != 8 {
		t.Fatalf("got %v", rows)
	}
}

func TestOrderByDescLimitOffset(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT group_value FROM groups ORDER BY group_value DESC LIMIT 3 OFFSET 1")
	if len(rows) != 3 || rows[0][0].I != 18 || rows[2][0].I != 16 {
		t.Fatalf("got %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT DISTINCT group_index FROM groups")
	if len(rows) != 4 {
		t.Fatalf("got %d", len(rows))
	}
}

func TestJoinInner(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (id INTEGER, v VARCHAR)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER, w VARCHAR)")
	mustExec(t, db, "INSERT INTO a VALUES (1,'x'),(2,'y'),(3,'z')")
	mustExec(t, db, "INSERT INTO b VALUES (2,'Y'),(3,'Z'),(4,'W')")
	rows := queryRows(t, db, "SELECT a.v, b.w FROM a JOIN b ON a.id = b.id ORDER BY a.v")
	if len(rows) != 2 || rows[0][0].S != "y" || rows[0][1].S != "Y" {
		t.Fatalf("got %v", rows)
	}
}

func TestJoinLeft(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (id INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER, w VARCHAR)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, db, "INSERT INTO b VALUES (2,'match')")
	rows := queryRows(t, db, "SELECT a.id, b.w FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id")
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
	if !rows[0][1].IsNull() {
		t.Errorf("unmatched left row should have NULL: %v", rows[0])
	}
	if rows[1][1].S != "match" {
		t.Errorf("matched row: %v", rows[1])
	}
}

func TestJoinRightAndFull(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (id INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, db, "INSERT INTO b VALUES (2),(3)")
	rows := queryRows(t, db, "SELECT a.id, b.id FROM a RIGHT JOIN b ON a.id = b.id")
	if len(rows) != 2 {
		t.Fatalf("right join: %v", rows)
	}
	rows = queryRows(t, db, "SELECT a.id, b.id FROM a FULL OUTER JOIN b ON a.id = b.id")
	if len(rows) != 3 {
		t.Fatalf("full join: %v", rows)
	}
}

func TestJoinCross(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (y INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(2)")
	mustExec(t, db, "INSERT INTO b VALUES (10),(20),(30)")
	rows := queryRows(t, db, "SELECT * FROM a CROSS JOIN b")
	if len(rows) != 6 {
		t.Fatalf("got %d", len(rows))
	}
}

func TestJoinNullKeysDontMatch(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (id INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (NULL),(1)")
	mustExec(t, db, "INSERT INTO b VALUES (NULL),(1)")
	rows := queryRows(t, db, "SELECT * FROM a JOIN b ON a.id = b.id")
	if len(rows) != 1 {
		t.Fatalf("NULL keys must not join: %v", rows)
	}
}

func TestJoinUsing(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (id INTEGER, v INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER, w INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1, 10)")
	mustExec(t, db, "INSERT INTO b VALUES (1, 20)")
	rows := queryRows(t, db, "SELECT v, w FROM a JOIN b USING (id)")
	if len(rows) != 1 || rows[0][0].I != 10 || rows[0][1].I != 20 {
		t.Fatalf("got %v", rows)
	}
}

func TestThetaJoin(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (y INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(5)")
	mustExec(t, db, "INSERT INTO b VALUES (3),(4)")
	rows := queryRows(t, db, "SELECT * FROM a JOIN b ON a.x < b.y")
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
}

func TestCTE(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, `WITH totals AS (
		SELECT group_index, SUM(group_value) AS s FROM groups GROUP BY group_index)
		SELECT COUNT(*) FROM totals WHERE s > 40`)
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("got %v", rows)
	}
}

func TestCTEAliased(t *testing.T) {
	db := testDB(t)
	// The exact alias pattern from paper Listing 2: FROM ivm_cte AS delta_x.
	rows := queryRows(t, db, `WITH ivm_cte AS (SELECT group_index FROM groups)
		SELECT delta_groups.group_index FROM ivm_cte AS delta_groups LIMIT 1`)
	if len(rows) != 1 {
		t.Fatalf("got %v", rows)
	}
}

func TestSetOps(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(2),(2),(3)")
	rows := queryRows(t, db, "SELECT x FROM a UNION SELECT 2")
	if len(rows) != 3 {
		t.Fatalf("UNION: %v", rows)
	}
	rows = queryRows(t, db, "SELECT x FROM a UNION ALL SELECT 2")
	if len(rows) != 5 {
		t.Fatalf("UNION ALL: %v", rows)
	}
	rows = queryRows(t, db, "SELECT x FROM a EXCEPT SELECT 2")
	if len(rows) != 2 {
		t.Fatalf("EXCEPT: %v", rows)
	}
	rows = queryRows(t, db, "SELECT x FROM a INTERSECT SELECT 2")
	if len(rows) != 1 {
		t.Fatalf("INTERSECT: %v", rows)
	}
}

func TestSubqueryTable(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, `SELECT s FROM (SELECT SUM(group_value) AS s FROM groups
		GROUP BY group_index) AS sub WHERE s > 45`)
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, "SELECT group_value FROM groups WHERE group_value = (SELECT MAX(group_value) FROM groups)")
	if len(rows) != 1 || rows[0][0].I != 19 {
		t.Fatalf("got %v", rows)
	}
}

func TestInSubquery(t *testing.T) {
	db := testDB(t)
	rows := queryRows(t, db, `SELECT COUNT(*) FROM groups WHERE group_value IN (SELECT group_value FROM groups WHERE group_value < 3)`)
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("got %v", rows)
	}
}

func TestPlainView(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE VIEW v AS SELECT group_index, SUM(group_value) AS s FROM groups GROUP BY group_index")
	rows := queryRows(t, db, "SELECT * FROM v WHERE s = 40")
	if len(rows) != 1 || rows[0][0].S != "g0" {
		t.Fatalf("got %v", rows)
	}
}

func TestValuesSelect(t *testing.T) {
	db := Open("t", DialectDuckDB)
	rows := queryRows(t, db, "VALUES (1, 'a'), (2, 'b')")
	if len(rows) != 2 || rows[1][1].S != "b" {
		t.Fatalf("got %v", rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := Open("t", DialectDuckDB)
	rows := queryRows(t, db, "SELECT 1 + 1, 'x'")
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Fatalf("got %v", rows)
	}
}

func TestInsertColumnsAndDefaults(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b VARCHAR DEFAULT 'dflt', c DOUBLE)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	rows := queryRows(t, db, "SELECT * FROM t")
	if rows[0][1].S != "dflt" || !rows[0][2].IsNull() {
		t.Fatalf("got %v", rows)
	}
}

func TestInsertSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE copy2 (gi VARCHAR, gv INTEGER)")
	r := mustExec(t, db, "INSERT INTO copy2 SELECT * FROM groups WHERE group_value < 5")
	if r.RowsAffected != 5 {
		t.Fatalf("affected = %d", r.RowsAffected)
	}
}

func TestInsertOrReplace(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1)")
	mustExec(t, db, "INSERT OR REPLACE INTO t VALUES ('a', 2), ('b', 3)")
	rows := queryRows(t, db, "SELECT v FROM t ORDER BY k")
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("got %v", rows)
	}
}

func TestInsertOnConflictDoUpdate(t *testing.T) {
	db := Open("t", DialectPostgres)
	mustExec(t, db, "CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 10) ON CONFLICT (k) DO UPDATE SET v = t.v + EXCLUDED.v")
	rows := queryRows(t, db, "SELECT v FROM t")
	if len(rows) != 1 || rows[0][0].I != 11 {
		t.Fatalf("got %v", rows)
	}
}

func TestInsertOnConflictDoNothing(t *testing.T) {
	db := Open("t", DialectPostgres)
	mustExec(t, db, "CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 99) ON CONFLICT (k) DO NOTHING")
	rows := queryRows(t, db, "SELECT v FROM t")
	if rows[0][0].I != 1 {
		t.Fatalf("got %v", rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	r := mustExec(t, db, "UPDATE groups SET group_value = group_value + 100 WHERE group_index = 'g0'")
	if r.RowsAffected != 5 {
		t.Fatalf("update affected %d", r.RowsAffected)
	}
	rows := queryRows(t, db, "SELECT SUM(group_value) FROM groups WHERE group_index = 'g0'")
	if rows[0][0].I != 540 {
		t.Fatalf("got %v", rows)
	}
	r = mustExec(t, db, "DELETE FROM groups WHERE group_value >= 100")
	if r.RowsAffected != 5 {
		t.Fatalf("delete affected %d", r.RowsAffected)
	}
}

func TestTruncate(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "TRUNCATE TABLE groups")
	rows := queryRows(t, db, "SELECT COUNT(*) FROM groups")
	if rows[0][0].I != 0 {
		t.Fatalf("got %v", rows)
	}
}

func TestTransactionsRollback(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO groups VALUES ('tx', 999)")
	mustExec(t, db, "UPDATE groups SET group_value = 0 WHERE group_index = 'g0'")
	mustExec(t, db, "DELETE FROM groups WHERE group_index = 'g1'")
	mustExec(t, db, "ROLLBACK")
	rows := queryRows(t, db, "SELECT COUNT(*), SUM(group_value) FROM groups")
	if rows[0][0].I != 20 || rows[0][1].I != 190 {
		t.Fatalf("rollback incomplete: %v", rows)
	}
}

func TestTransactionsCommit(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO groups VALUES ('tx', 999)")
	mustExec(t, db, "COMMIT")
	rows := queryRows(t, db, "SELECT COUNT(*) FROM groups")
	if rows[0][0].I != 21 {
		t.Fatalf("got %v", rows)
	}
	if _, err := db.Exec("COMMIT"); err == nil {
		t.Error("COMMIT without BEGIN should fail")
	}
}

func TestTriggers(t *testing.T) {
	db := testDB(t)
	var events []string
	db.AddTrigger("groups", "trc", []TriggerEvent{TrigInsert, TrigDelete, TrigUpdate},
		func(_ *DB, table string, ev TriggerEvent, oldR, newR []sqltypes.Row) error {
			events = append(events, fmt.Sprintf("%s:%d:%d", ev, len(oldR), len(newR)))
			return nil
		})
	mustExec(t, db, "INSERT INTO groups VALUES ('t', 1)")
	mustExec(t, db, "UPDATE groups SET group_value = 2 WHERE group_index = 't'")
	mustExec(t, db, "DELETE FROM groups WHERE group_index = 't'")
	want := []string{"INSERT:0:1", "UPDATE:1:1", "DELETE:1:0"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Fatalf("events = %v", events)
	}
}

func TestTriggerViaSQL(t *testing.T) {
	db := testDB(t)
	n := 0
	db.RegisterTriggerHandler("counter", func(_ *DB, _ string, _ TriggerEvent, _, _ []sqltypes.Row) error {
		n++
		return nil
	})
	mustExec(t, db, "CREATE TRIGGER tg AFTER INSERT ON groups FOR EACH ROW EXECUTE 'counter'")
	mustExec(t, db, "INSERT INTO groups VALUES ('x', 1)")
	if n != 1 {
		t.Fatalf("trigger fired %d times", n)
	}
}

func TestWithoutTriggers(t *testing.T) {
	db := testDB(t)
	n := 0
	db.AddTrigger("groups", "t", []TriggerEvent{TrigInsert},
		func(_ *DB, _ string, _ TriggerEvent, _, _ []sqltypes.Row) error { n++; return nil })
	db.WithoutTriggers(func() error {
		_, err := db.Exec("INSERT INTO groups VALUES ('x', 1)")
		return err
	})
	if n != 0 {
		t.Fatal("trigger fired under WithoutTriggers")
	}
}

func TestFallbackParser(t *testing.T) {
	db := Open("t", DialectDuckDB)
	// A fallback parser that recognizes custom syntax the main parser
	// rejects — the mechanism the IVM extension uses for CREATE
	// MATERIALIZED VIEW in the paper.
	db.RegisterFallbackParser(func(sql string) (sqlparser.Statement, bool, error) {
		if strings.TrimSpace(sql) == "HELLO" {
			st, err := sqlparser.Parse("SELECT 42")
			return st, true, err
		}
		return nil, false, nil
	})
	r, err := db.Exec("HELLO")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 42 {
		t.Fatalf("got %v", r.Rows)
	}
	if _, err := db.Exec("GOODBYE"); err == nil {
		t.Error("unhandled garbage should still fail")
	}
}

func TestPragma(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "PRAGMA ivm_strategy='union_regroup'")
	if db.Pragma("ivm_strategy") != "union_regroup" {
		t.Fatalf("pragma = %q", db.Pragma("ivm_strategy"))
	}
}

func TestExplain(t *testing.T) {
	db := testDB(t)
	r := mustExec(t, db, "EXPLAIN SELECT group_index, SUM(group_value) FROM groups WHERE group_value > 2 GROUP BY group_index")
	text := ""
	for _, row := range r.Rows {
		text += row[0].S + "\n"
	}
	for _, want := range []string{"Project", "HashAggregate", "Scan groups"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
}

func TestExecScript(t *testing.T) {
	db := Open("t", DialectDuckDB)
	r, err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 3 {
		t.Fatalf("got %v", r.Rows)
	}
}

func TestSplitStatements(t *testing.T) {
	parts := SplitStatements("SELECT 'a;b'; SELECT 2; ")
	if len(parts) != 2 || !strings.Contains(parts[0], "a;b") {
		t.Fatalf("got %v", parts)
	}
}

func TestMaterializedViewWithoutExtension(t *testing.T) {
	db := testDB(t)
	_, err := db.Exec("CREATE MATERIALIZED VIEW mv AS SELECT group_index FROM groups")
	if err == nil || !strings.Contains(err.Error(), "IVM extension") {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateTableAsSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE summary AS SELECT group_index, SUM(group_value) AS s FROM groups GROUP BY group_index")
	rows := queryRows(t, db, "SELECT COUNT(*) FROM summary")
	if rows[0][0].I != 4 {
		t.Fatalf("got %v", rows)
	}
}

func TestErrorsSurface(t *testing.T) {
	db := testDB(t)
	for _, bad := range []string{
		"SELECT nope FROM groups",
		"SELECT * FROM missing",
		"INSERT INTO groups VALUES (1)",
		"SELECT group_index FROM groups GROUP BY group_value",
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("Exec(%q) should fail", bad)
		}
	}
}

func TestResultFormat(t *testing.T) {
	db := testDB(t)
	r := mustExec(t, db, "SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index ORDER BY 1 LIMIT 1")
	s := r.Format()
	if !strings.Contains(s, "group_index") || !strings.Contains(s, "g0") {
		t.Fatalf("format:\n%s", s)
	}
}

func TestCaseCoalesceEndToEnd(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE m (mult BOOLEAN, v INTEGER)")
	mustExec(t, db, "INSERT INTO m VALUES (TRUE, 10), (FALSE, 3), (TRUE, 5)")
	rows := queryRows(t, db, `SELECT SUM(CASE WHEN mult = FALSE THEN -v ELSE v END) FROM m`)
	if rows[0][0].I != 12 {
		t.Fatalf("got %v", rows)
	}
	rows = queryRows(t, db, "SELECT COALESCE(NULL, 7)")
	if rows[0][0].I != 7 {
		t.Fatalf("got %v", rows)
	}
}
