package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openivm/internal/exec"
	"openivm/internal/expr"
	"openivm/internal/mvcc"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// Session is one connection's execution context over a shared DB. All
// per-connection state lives here — the open transaction, trigger
// suppression, execution-pragma overlays (batch_size/workers) and the
// cancellation context — so N sessions can run interleaved DML and
// queries against one DB without sharing any mutable statement state.
//
// A Session is cheap to create (the wire server makes one per accepted
// connection, the IVM extension one per internal script run) and is NOT
// itself safe for concurrent use: one goroutine drives a session at a
// time, exactly like one client drives one connection. Cancel is the one
// exception — it may be called from any goroutine to interrupt the
// session's in-flight query (Close, which also rolls back, belongs to
// the driving goroutine; see its comment).
type Session struct {
	db *DB

	// mu guards the pragma overlay (read per statement, written by PRAGMA).
	mu      sync.Mutex
	pragmas map[string]string

	// ctx is the session's lifetime context: queries started through the
	// plain Exec/Query API run under it, and Cancel/Close cancel it, which
	// stops in-flight scans and parallel workers (see exec.Options.Ctx).
	ctx    context.Context
	cancel context.CancelFunc

	// txn is the session's open transaction (nil outside BEGIN..COMMIT).
	// Deliberately unsynchronized: a session is single-goroutine. The one
	// sanctioned multi-goroutine sharing — legacy callers racing db.Exec
	// on the default session — is supported for NON-transactional
	// statements only (the historical contract: reads and autocommit DML
	// against the thread-safe catalog); goroutines that need BEGIN/COMMIT
	// must take their own NewSession.
	txn *txnState

	// activeWrite is the autocommit write transaction of the statement
	// currently executing (nil otherwise). Tracked so the statement-level
	// panic recovery (robustness.go) can abort it instead of leaking an
	// open MVCC transaction. Same synchronization contract as txn.
	activeWrite *mvcc.Txn

	// trigOff counts nested WithoutTriggers scopes. An atomic because the
	// legacy default session is shared by concurrent callers of db.Exec
	// (see the txn comment for the limits of that sharing).
	trigOff atomic.Int32

	// token identifies this session in the DB's session registry, so an
	// out-of-band actor (another wire connection's cancel op) can find it
	// without holding a *Session.
	token string

	// stmtMu guards stmtCancel, the cancel func of the statement currently
	// running under StartStatement. Interrupt — callable from any
	// goroutine, like Cancel — cancels just that statement; the session
	// survives and serves the next one.
	stmtMu     sync.Mutex
	stmtCancel context.CancelFunc

	// params is the session's $N parameter binding: plans bound by this
	// session resolve Param nodes against it, and BindParams swaps the
	// values in before each prepared execution. Session-private mutable
	// state, which is why parameterized plans are never admitted to the
	// cross-session shared statement cache (see expr.ParallelSafe).
	params expr.ParamBinding

	// walBypass excludes this session's writes and DDL from the
	// write-ahead log. The IVM extension sets it on its internal
	// sessions: delta capture, propagation and matview bookkeeping are
	// derived state that recovery rebuilds from base tables, so logging
	// it would double both the log volume and the replayed effects.
	walBypass bool

	// internal marks extension-internal sessions (IVM propagation and
	// bookkeeping). Statement hooks consult it to skip interception —
	// e.g. the lazy-refresh hook must not re-trigger a refresh for the
	// SELECTs a propagation script itself runs.
	internal bool
}

// SetWALBypass excludes (or re-includes) this session's writes and DDL
// from the write-ahead log. Intended for extension-internal sessions
// whose writes are derived state rebuilt on recovery; user data written
// through a bypassed session is NOT durable.
func (s *Session) SetWALBypass(on bool) { s.walBypass = on }

// SetInternal marks this session as extension-internal; statement hooks
// skip interception on internal sessions. Set before the session runs
// any statements and never changed concurrently with execution.
func (s *Session) SetInternal(on bool) { s.internal = on }

// Internal reports whether the session is extension-internal.
func (s *Session) Internal() bool { return s.internal }

// NewSession creates an independent execution context over the database.
// Sessions share the catalog, triggers, materialized views and the plan
// caches; they do not share transactions, trigger suppression or
// execution pragmas. Every session is entered into the DB's token
// registry until Close, so out-of-band cancellation can address it.
func (db *DB) NewSession() *Session {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{db: db, pragmas: map[string]string{}, ctx: ctx, cancel: cancel, token: newSessionToken()}
	db.registerSession(s)
	return s
}

// DB returns the underlying database.
func (s *Session) DB() *DB { return s.db }

// Token returns the session's registry token — the handle a SECOND
// connection presents to cancel this session's in-flight statement (the
// wire protocol's out-of-band cancel op). Tokens are unguessable random
// identifiers, not small integers, so one client cannot sweep-cancel
// another's queries.
func (s *Session) Token() string { return s.token }

// newSessionToken returns an unguessable session identifier.
func newSessionToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; fall back to
		// a process-unique counter rather than panic in a constructor.
		return fmt.Sprintf("s-%d", sessionSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var sessionSeq atomic.Int64

// StartStatement begins one interruptible statement: it returns a context
// derived from the session's lifetime context — additionally bounded by
// timeout when positive (the wire server's query governor) — and a finish
// func the driving goroutine must call when the statement completes.
// While the statement runs, Interrupt (from any goroutine) cancels it
// without killing the session, which is what distinguishes a wire-level
// "cancel" from connection teardown.
func (s *Session) StartStatement(timeout time.Duration) (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.ctx)
	}
	s.stmtMu.Lock()
	s.stmtCancel = cancel
	s.stmtMu.Unlock()
	finish := func() {
		s.stmtMu.Lock()
		s.stmtCancel = nil
		s.stmtMu.Unlock()
		cancel()
	}
	return ctx, finish
}

// Interrupt cancels the statement currently running under StartStatement
// (a no-op when none is). Unlike Cancel it leaves the session usable: the
// interrupted statement returns context.Canceled and the session serves
// the next statement normally. Safe to call from any goroutine.
func (s *Session) Interrupt() {
	s.stmtMu.Lock()
	c := s.stmtCancel
	s.stmtMu.Unlock()
	if c != nil {
		c()
	}
}

// BindParams sets the session's $N parameter values for subsequent
// executions. The wire server binds parameters per prepared execution;
// values stay bound until the next call, mirroring how the binding is
// read lazily at Eval time.
func (s *Session) BindParams(vals []sqltypes.Value) { s.params.Vals = vals }

// Cancel interrupts the session's in-flight query (if any): scans and
// parallel workers observe the cancelled context and the statement
// returns context.Canceled. The session itself becomes unusable for
// further queries — Cancel is a connection-teardown primitive, not a
// per-statement one (use ExecContext for that).
func (s *Session) Cancel() { s.cancel() }

// Close releases the session: the in-flight query (if any) is cancelled
// and an open transaction is rolled back. Like every other session
// method, Close must be called by the session's driving goroutine once
// it has stopped executing statements (the wire server calls it from the
// connection goroutine's teardown, after the read loop exits) — the
// rollback replays the undo log, which must not race a statement in
// flight. To interrupt a session from ANOTHER goroutine, use Cancel: it
// only cancels the context, which is safe concurrently, and the driver
// then observes the error and closes.
func (s *Session) Close() error {
	s.cancel()
	s.db.dropSession(s)
	if s.txn != nil {
		_, err := s.execRollback()
		return err
	}
	return nil
}

// --- pragmas ---

// Pragma returns the session-effective pragma value: the session overlay
// when set, the engine-global value otherwise.
func (s *Session) Pragma(name string) string {
	key := strings.ToLower(name)
	s.mu.Lock()
	v, ok := s.pragmas[key]
	s.mu.Unlock()
	if ok {
		return v
	}
	return s.db.Pragma(name)
}

// SetPragma sets a pragma for this session. The engine-owned execution
// knobs (batch_size, workers) stay session-local, so two connections can
// run with different parallelism against one DB; every other pragma
// (ivm_mode, ivm_strategy, ...) configures shared engine state — the IVM
// extension is one extension instance per DB — and is therefore written
// through to the global table. The default session always writes through:
// its historical API (db.Exec("PRAGMA ...")) configures the engine.
func (s *Session) SetPragma(name, value string) {
	if s != s.db.def && sessionLocalPragma(name) {
		s.mu.Lock()
		s.pragmas[strings.ToLower(name)] = value
		s.mu.Unlock()
		return
	}
	s.db.SetPragma(name, value)
}

// sessionLocalPragma reports whether a pragma is a per-session execution
// knob rather than shared engine configuration.
func sessionLocalPragma(name string) bool {
	return strings.EqualFold(name, "batch_size") || strings.EqualFold(name, "workers")
}

// setPragmaChecked validates engine-owned pragmas before storing them.
func (s *Session) setPragmaChecked(name, value string) error {
	if strings.EqualFold(name, "batch_size") {
		if n, err := strconv.Atoi(strings.TrimSpace(value)); err != nil || n <= 0 {
			return fmt.Errorf("engine: PRAGMA batch_size requires a positive integer, got %q", value)
		}
	}
	if strings.EqualFold(name, "workers") {
		if n, err := strconv.Atoi(strings.TrimSpace(value)); err != nil || n < 0 {
			return fmt.Errorf("engine: PRAGMA workers requires a non-negative integer (1 = serial, 0 = one per CPU), got %q", value)
		}
	}
	s.SetPragma(name, value)
	return nil
}

// intPragma returns a positive-integer pragma's session-effective value
// (0 when unset or unparsable, meaning the executor default).
func (s *Session) intPragma(name string) int {
	if v := s.Pragma(name); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// batchSize returns the execution batch size selected by PRAGMA
// batch_size (0 when unset, meaning the executor default).
func (s *Session) batchSize() int { return s.intPragma("batch_size") }

// workers returns the scan parallelism selected by PRAGMA workers (0 when
// unset: the executor defaults to one worker per CPU).
func (s *Session) workers() int { return s.intPragma("workers") }

// execOpts assembles the executor options for one statement: the
// session's knobs plus the cancellation context.
func (s *Session) execOpts(ctx context.Context) exec.Options {
	return exec.Options{BatchSize: s.batchSize(), Workers: s.workers(), Ctx: ctx}
}

// execOptsTxn is execOpts with a transaction's read snapshot attached,
// so scans observe the transaction's consistent view (own uncommitted
// writes included). A nil tx means latest-committed reads.
func (s *Session) execOptsTxn(ctx context.Context, tx *mvcc.Txn) exec.Options {
	o := s.execOpts(ctx)
	if tx != nil {
		o.Snap = tx.Snapshot()
	}
	return o
}

// currentTxn returns the session's open explicit transaction, nil in
// autocommit.
func (s *Session) currentTxn() *mvcc.Txn {
	if s.txn != nil {
		return s.txn.mtx
	}
	return nil
}

// bindSnap attaches a statement's read snapshot to opts: the open
// transaction's snapshot (repeatable reads within the transaction), or a
// freshly registered statement snapshot in autocommit. The returned
// release func unpins the autocommit snapshot from the GC watermark once
// the statement is done; it must be called exactly once.
func (s *Session) bindSnap(opts *exec.Options) func() {
	if s.txn != nil {
		opts.Snap = s.txn.mtx.Snapshot()
		return func() {}
	}
	sn, release := s.db.cat.MVCC().AcquireSnapshot()
	opts.Snap = sn
	return release
}

// --- triggers ---

// WithoutTriggers runs fn with this session's trigger firing suppressed —
// the engine's own internal writes (e.g. IVM propagation filling delta
// tables) must not re-enter delta capture. Suppression nests, and it is
// per session: concurrent sessions' DML keeps capturing deltas while one
// session runs an internal script.
func (s *Session) WithoutTriggers(fn func() error) error {
	s.trigOff.Add(1)
	defer s.trigOff.Add(-1)
	return fn()
}

// --- statement execution ---

// Exec parses and executes a single statement under the session context.
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(s.ctx, sql)
}

// Query is Exec restricted to row-returning statements (for readability
// at call sites).
func (s *Session) Query(sql string) (*Result, error) { return s.Exec(sql) }

// ExecContext is Exec with an explicit cancellation context for this
// statement: the statement's own execution — scans, parallel workers,
// filtered UPDATE/DELETE sweeps — observes ctx. (Uncorrelated scalar/IN
// subqueries are bound to the session at plan time and run under the
// session context instead.) Cached plans are consulted first: a SELECT
// whose text (and execution knobs) hit the shared statement cache skips
// parsing, binding and optimization entirely.
func (s *Session) ExecContext(ctx context.Context, sql string) (*Result, error) {
	if ent, ok := s.lookupStmt(sql); ok {
		return s.runCachedSelect(ctx, ent)
	}
	stmt, err := s.db.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, isSel := stmt.(*sqlparser.SelectStmt); isSel {
		return s.execSelectText(ctx, sql, sel)
	}
	return s.execStmt(ctx, stmt)
}

// ExecStmt executes a parsed statement under the session context.
func (s *Session) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	return s.execStmt(s.ctx, stmt)
}

// ExecStmts executes pre-parsed statements in order, returning the last
// result. Statements are bound and planned fresh on every call (unless
// marked by PrepareScript), so a prepared script observes current table
// contents like re-parsed SQL.
func (s *Session) ExecStmts(stmts []sqlparser.Statement) (*Result, error) {
	return s.execStmtsCtx(s.ctx, stmts)
}

// execStmtsCtx is ExecStmts with an explicit per-statement cancellation
// context (the wire server's interruptible exec path).
func (s *Session) execStmtsCtx(ctx context.Context, stmts []sqlparser.Statement) (*Result, error) {
	var last *Result
	for _, st := range stmts {
		r, err := s.execStmt(ctx, st)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// ExecScript executes a semicolon-separated script, returning the last
// statement's result. Single-statement scripts hit the shared statement
// cache like Exec.
func (s *Session) ExecScript(sql string) (*Result, error) {
	return s.ExecScriptContext(s.ctx, sql)
}

// ExecScriptContext is ExecScript with an explicit per-statement
// cancellation context (the wire server's interruptible exec path).
func (s *Session) ExecScriptContext(ctx context.Context, sql string) (*Result, error) {
	if ent, ok := s.lookupStmt(sql); ok {
		return s.runCachedSelect(ctx, ent)
	}
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		// Retry statement-by-statement so fallback parsers get a chance.
		return s.execScriptWithFallback(ctx, sql)
	}
	if len(stmts) == 1 {
		if sel, isSel := stmts[0].(*sqlparser.SelectStmt); isSel {
			return s.execSelectText(ctx, sql, sel)
		}
	}
	return s.execStmtsCtx(ctx, stmts)
}

// execScriptWithFallback splits naively on top-level semicolons and runs
// each piece through ExecContext (which consults fallback parsers).
func (s *Session) execScriptWithFallback(ctx context.Context, sql string) (*Result, error) {
	var last *Result
	for _, piece := range SplitStatements(sql) {
		r, err := s.ExecContext(ctx, piece)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// textKey builds the statement-cache key: the raw SQL plus the session's
// execution knobs, so sessions with different batch_size/workers never
// share a plan whose Hint disagrees with them.
func (s *Session) textKey(sql string) string {
	return sql + "\x00" + strconv.Itoa(s.batchSize()) + "," + strconv.Itoa(s.workers())
}

// lookupStmt probes the shared statement cache — but only for
// SELECT-shaped texts. Only SELECT plans are ever admitted, so probing
// DML would build a key string, take the pragma locks and inflate the
// miss counter on every INSERT of a write-heavy workload for a cache it
// can never hit.
func (s *Session) lookupStmt(sql string) (*stmtEntry, bool) {
	if !selectShaped(sql) {
		return nil, false
	}
	return s.db.stmts.get(s.textKey(sql), s.db.epoch())
}

// selectShaped reports whether the text's first keyword is SELECT or
// WITH (allocation-free; case-insensitive).
func selectShaped(sql string) bool {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r') {
		i++
	}
	rest := sql[i:]
	return keywordPrefix(rest, "SELECT") || keywordPrefix(rest, "WITH")
}

// keywordPrefix reports whether s begins with the (upper-case) keyword
// followed by a non-identifier byte or end of string.
func keywordPrefix(s, kw string) bool {
	if len(s) < len(kw) {
		return false
	}
	for i := 0; i < len(kw); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != kw[i] {
			return false
		}
	}
	if len(s) == len(kw) {
		return true
	}
	c := s[len(kw)]
	return !(c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
}

// runCachedSelect executes a statement-cache hit. The statement hook pass
// still runs over the cached AST — lazy IVM refresh must see the SELECT
// even when planning is skipped — and the epoch is re-checked afterwards
// in case a hook performed DDL.
func (s *Session) runCachedSelect(ctx context.Context, ent *stmtEntry) (*Result, error) {
	for _, h := range s.db.hooks {
		handled, res, err := h(s, ent.sel)
		if err != nil {
			return nil, err
		}
		if handled {
			return res, nil
		}
	}
	if s.db.epoch() != ent.epoch {
		// A hook invalidated the schema mid-statement; replan.
		return s.execSelect(ctx, ent.sel)
	}
	return s.runPlan(ctx, ent.node)
}

// execSelectText runs the hook pass, plans the SELECT, executes it, and —
// when the plan is safe for concurrent re-execution — publishes it in the
// shared statement cache for every session.
func (s *Session) execSelectText(ctx context.Context, sql string, sel *sqlparser.SelectStmt) (*Result, error) {
	for _, h := range s.db.hooks {
		handled, res, err := h(s, sel)
		if err != nil {
			return nil, err
		}
		if handled {
			return res, nil
		}
	}
	epoch := s.db.epoch()
	n, err := s.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	if planShareable(n) && selectShaped(sql) && s.db.epoch() == epoch {
		s.db.stmts.put(s.textKey(sql), &stmtEntry{sel: sel, node: n, epoch: epoch})
	}
	return s.runPlan(ctx, n)
}

// planShareable reports whether a bound plan may be re-executed verbatim
// by MULTIPLE sessions, possibly concurrently. It is strictly stronger
// than planCacheable: besides refusing lazily cached subquery results
// (expr.Reusable), every expression must be expr.ParallelSafe, because
// two sessions executing the shared plan at once evaluate the same
// expression trees from two goroutines (per-node scratch like
// ScalarFunc's argument buffer would race). Unknown node kinds refuse.
func planShareable(n plan.Node) bool {
	return planExprsOK(n, func(e expr.Expr) bool {
		return expr.Reusable(e) && expr.ParallelSafe(e)
	})
}

// PrepareScript delegates to the DB (markers are engine-global; see
// DB.PrepareScript).
func (s *Session) PrepareScript(sql string) ([]sqlparser.Statement, error) {
	return s.db.PrepareScript(sql)
}
