package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"openivm/internal/engine"
	"openivm/internal/enginerr"
	"openivm/internal/fault"
	"openivm/internal/storage"
	"openivm/internal/txntest"
)

// chaosSeed returns the chaos-schedule seed: FAULT_SEED when set
// (replayable CI runs), otherwise clock-derived and printed on failure.
func chaosSeed() (int64, bool) {
	if v := os.Getenv("FAULT_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n, true
		}
	}
	return time.Now().UnixNano(), false
}

// chaosConn adapts an engine session to the txntest harness.
type chaosConn struct{ s *engine.Session }

func (c chaosConn) Exec(sql string) ([][]int64, error) {
	res, err := c.s.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		row := make([]int64, len(r))
		for i, v := range r {
			row[i] = v.I
		}
		out = append(out, row)
	}
	return out, nil
}

func (c chaosConn) Close() error { return c.s.Close() }

// TestStorageChaosSchedules runs randomized storage failpoint schedules
// against a durable engine and checks the full robustness contract on
// every one:
//
//   - the engine never crashes: the first injected I/O failure surfaces
//     as SQLSTATE 58030 and flips read-only degraded mode;
//   - in degraded mode, writes fail fast, reads serve the authoritative
//     in-memory state (every acknowledged write plus the indeterminate
//     statement that observed the failure);
//   - re-attaching a fresh backend restores write service, and a fresh
//     engine recovering the replacement directory sees the exact
//     in-memory state, and still provides snapshot isolation (checked
//     against the txntest oracle);
//   - a fresh engine recovering the FAILED directory (faults off) finds
//     every acknowledged write intact — a torn tail from an injected
//     short write may only cost the unacknowledged statement.
func TestStorageChaosSchedules(t *testing.T) {
	seed, fromEnv := chaosSeed()
	schedules := 10
	if testing.Short() {
		schedules = 3
	}
	sites := []string{fault.WALAppend, fault.WALWrite, fault.WALFsync}
	actions := []string{"error(chaos)", "enospc", "shortwrite"}
	for i := 0; i < schedules; i++ {
		s := seed + int64(i)
		t.Run(fmt.Sprintf("schedule%d", i), func(t *testing.T) {
			if err := runChaosSchedule(t, rand.New(rand.NewSource(s)), sites, actions); err != nil {
				if fromEnv {
					t.Fatalf("FAULT_SEED=%d: %v", s, err)
				}
				t.Fatalf("seed %d (set FAULT_SEED=%d to replay): %v", s, s, err)
			}
		})
	}
}

func runChaosSchedule(t *testing.T, rnd *rand.Rand, sites, actions []string) error {
	defer fault.Reset()
	dir1 := t.TempDir()
	db := openDurable(t, dir1)
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE chaos (k INTEGER PRIMARY KEY, v INTEGER)")

	site := sites[rnd.Intn(len(sites))]
	action := actions[rnd.Intn(len(actions))]
	after := rnd.Intn(25)
	if err := fault.Activate(site, fmt.Sprintf("%s@after%d", action, after)); err != nil {
		return err
	}

	// Drive writes until the fault fires. Acked writes are the durability
	// contract; the one that observes the failure is indeterminate.
	acked := map[int64]int64{}
	maybeKey := int64(-1)
	for k := int64(0); k < 200; k++ {
		_, err := s.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d, %d)", k, k*3+1))
		if err == nil {
			acked[k] = k*3 + 1
			continue
		}
		if code := enginerr.CodeOf(err); code != enginerr.CodeIOFailure {
			return fmt.Errorf("injected %s at %s surfaced as %q, want 58030: %v", action, site, code, err)
		}
		maybeKey = k
		break
	}
	fault.Reset()
	if maybeKey < 0 {
		return fmt.Errorf("fault %s at %s never fired in 200 writes", action, site)
	}
	if !db.Degraded() {
		return fmt.Errorf("engine not degraded after injected %s at %s", action, site)
	}

	// Degraded invariants: writes fail fast, reads serve memory.
	if _, err := s.Exec("INSERT INTO chaos VALUES (900, 900)"); enginerr.CodeOf(err) != enginerr.CodeIOFailure {
		return fmt.Errorf("degraded write not rejected with 58030: %v", err)
	}
	res := mustExec(t, s, "SELECT count(*) FROM chaos")
	if got, want := res.Rows[0][0].I, int64(len(acked)+1); got != want {
		return fmt.Errorf("degraded read count = %d, want %d (acked + indeterminate)", got, want)
	}

	// Operator re-attach; write service resumes.
	dir2 := t.TempDir()
	b2, err := storage.OpenDisk(dir2)
	if err != nil {
		return err
	}
	if err := db.AttachBackend(b2); err != nil {
		return fmt.Errorf("degraded re-attach: %w", err)
	}
	if db.Degraded() {
		return fmt.Errorf("still degraded after re-attach")
	}
	for k := int64(1000); k < 1005; k++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO chaos VALUES (%d, %d)", k, k*3+1))
		acked[k] = k*3 + 1
	}
	memState := chaosState(s)
	s.Close()
	if err := db.Close(); err != nil {
		return err
	}

	// The replacement directory must recover to the exact in-memory
	// state, and the recovered engine must still provide SI.
	db2 := openDurable(t, dir2)
	s2 := db2.NewSession()
	if got := chaosState(s2); got != memState {
		s2.Close()
		db2.Close()
		return fmt.Errorf("recovered(replacement) = %q, want %q", got, memState)
	}
	s2.Close()
	o := txntest.Options{Sessions: 3, Keys: 4, Ops: 30}
	for _, stmt := range txntest.SetupSQL(o) {
		if _, err := db2.Exec(stmt); err != nil {
			db2.Close()
			return fmt.Errorf("seeding SI check: %w", err)
		}
	}
	h := txntest.Generate(rnd, o)
	isSer := func(err error) bool { return enginerr.CodeOf(err) == enginerr.CodeSerialization }
	open := func() (txntest.Conn, error) { return chaosConn{db2.NewSession()}, nil }
	viol, err := txntest.RunSequential(open, h, isSer, o)
	if err != nil {
		db2.Close()
		return fmt.Errorf("SI check on recovered engine: %w", err)
	}
	if viol != nil {
		db2.Close()
		return fmt.Errorf("SI violation on recovered engine:\n%s\n%v", txntest.Format(h), viol)
	}
	if err := db2.Close(); err != nil {
		return err
	}

	// The failed directory must still recover cleanly (faults off): every
	// acked write present, nothing but acked + the indeterminate key.
	db1 := openDurable(t, dir1)
	defer db1.Close()
	s1 := db1.NewSession()
	defer s1.Close()
	res, rerr := s1.Exec("SELECT k, v FROM chaos ORDER BY k")
	if rerr != nil {
		return fmt.Errorf("reading recovered(failed dir): %w", rerr)
	}
	seen := map[int64]int64{}
	for _, r := range res.Rows {
		seen[r[0].I] = r[1].I
	}
	for k, v := range acked {
		if k >= 1000 {
			continue // acked after re-attach, lives in dir2
		}
		got, ok := seen[k]
		if !ok {
			return fmt.Errorf("acked write k=%d lost from failed dir", k)
		}
		if got != v {
			return fmt.Errorf("acked write k=%d recovered as %d, want %d", k, got, v)
		}
	}
	for k := range seen {
		if _, ok := acked[k]; !ok && k != maybeKey {
			return fmt.Errorf("failed dir recovered unexpected key %d", k)
		}
	}
	return nil
}

// chaosState renders the chaos table canonically.
func chaosState(s *engine.Session) string {
	res, err := s.Exec("SELECT k, v FROM chaos ORDER BY k")
	if err != nil {
		return "ERR:" + err.Error()
	}
	out := ""
	for _, r := range res.Rows {
		out += fmt.Sprintf("%d=%d;", r[0].I, r[1].I)
	}
	return out
}
