package engine

import (
	"container/list"
	"sync"

	"openivm/internal/plan"
	"openivm/internal/sqlparser"
)

// stmtCacheSize bounds the shared SQL-text plan cache. LRU eviction keeps
// the working set of a wire server's repeated ad-hoc queries hot while a
// stream of one-off statements cannot grow the cache without limit.
const stmtCacheSize = 512

// stmtEntry is one cached statement: the parsed AST (the hook pass runs
// over it on every hit), the bound+optimized plan, and the schema epoch
// the plan was built under.
type stmtEntry struct {
	sel   *sqlparser.SelectStmt
	node  plan.Node
	epoch int64
}

// stmtCache is the general SQL-text keyed plan cache shared across
// sessions: a bounded LRU whose entries are invalidated by schema-epoch
// mismatch (checked on get, and cleared wholesale on DDL/pragma writes so
// dead plan trees are released rather than retained until eviction).
// Only plans that are safe for concurrent re-execution are admitted — the
// caller gates on planShareable.
type stmtCache struct {
	mu     sync.Mutex
	max    int
	m      map[string]*list.Element // key -> element whose Value is *lruItem
	lru    *list.List               // front = most recently used
	hits   int64
	misses int64
}

type lruItem struct {
	key string
	ent *stmtEntry
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{max: max, m: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached entry for key when present and planned under the
// current epoch. A stale entry is evicted on sight.
func (c *stmtCache) get(key string, epoch int64) (*stmtEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	item := el.Value.(*lruItem)
	if item.ent.epoch != epoch {
		c.lru.Remove(el)
		delete(c.m, key)
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return item.ent, true
}

// put inserts (or replaces) an entry, evicting the least recently used
// one beyond capacity.
func (c *stmtCache) put(key string, ent *stmtEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruItem).ent = ent
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&lruItem{key: key, ent: ent})
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*lruItem).key)
	}
}

// clear drops every entry (schema epoch moved: none could ever hit again).
func (c *stmtCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.m)
	c.lru.Init()
}

// len returns the number of cached entries.
func (c *stmtCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// StmtCacheStats reports the shared statement cache's counters (tests,
// monitoring, the wire server's stats op).
type StmtCacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
}

// StmtCacheStats returns a snapshot of the shared statement cache.
func (db *DB) StmtCacheStats() StmtCacheStats {
	c := db.stmts
	c.mu.Lock()
	defer c.mu.Unlock()
	return StmtCacheStats{Entries: c.lru.Len(), Hits: c.hits, Misses: c.misses}
}
