package engine

import (
	"fmt"
	"sync"
	"testing"
)

// queryInts runs a single-column SELECT and returns the integer column.
func queryInts(t *testing.T, s *Session, sql string) []int64 {
	t.Helper()
	res, err := s.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].I)
	}
	return out
}

// TestMVCCUncommittedInvisible: rows inserted inside an open transaction
// are invisible to a concurrent session until COMMIT, and visible to the
// writer's own reads throughout.
func TestMVCCUncommittedInvisible(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	w, r := db.NewSession(), db.NewSession()

	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"} {
		if _, err := w.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if got := queryInts(t, r, "SELECT a FROM t ORDER BY a"); len(got) != 0 {
		t.Fatalf("reader sees uncommitted rows %v (dirty read)", got)
	}
	if got := queryInts(t, w, "SELECT a FROM t ORDER BY a"); len(got) != 2 {
		t.Fatalf("writer does not see its own writes: %v", got)
	}
	if _, err := w.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if got := queryInts(t, r, "SELECT a FROM t ORDER BY a"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("committed rows not visible: %v", got)
	}
}

// TestMVCCRepeatableSnapshotReads: a transaction's reads are stable — a
// concurrent commit after BEGIN does not change what the open
// transaction sees, and becomes visible only once it starts fresh.
func TestMVCCRepeatableSnapshotReads(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	reader, writer := db.NewSession(), db.NewSession()

	if _, err := reader.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	before := queryInts(t, reader, "SELECT a FROM t")
	if len(before) != 1 {
		t.Fatalf("snapshot missing seed row: %v", before)
	}
	if _, err := writer.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	// Deletes committed after the snapshot are equally invisible.
	if _, err := writer.Exec("DELETE FROM t WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	again := queryInts(t, reader, "SELECT a FROM t")
	if len(again) != 1 || again[0] != 1 {
		t.Fatalf("non-repeatable read: first %v then %v", before, again)
	}
	if _, err := reader.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	after := queryInts(t, reader, "SELECT a FROM t")
	if len(after) != 1 || after[0] != 2 {
		t.Fatalf("post-commit read = %v, want [2]", after)
	}
}

// TestMVCCWriteWriteConflict: two transactions updating the same row —
// the first committer wins, the second aborts with a serialization
// error that IsSerializationError recognizes, and its work is fully
// rolled back.
func TestMVCCWriteWriteConflict(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	mustExec(t, db, "INSERT INTO acct VALUES (1, 100)")
	s1, s2 := db.NewSession(), db.NewSession()

	for _, s := range []*Session{s1, s2} {
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Exec("UPDATE acct SET bal = 150 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// s2 hits s1's uncommitted end stamp: first-updater-wins dooms it at
	// statement time or at COMMIT — either way COMMIT must fail.
	_, stmtErr := s2.Exec("UPDATE acct SET bal = 50 WHERE id = 1")
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	_, commitErr := s2.Exec("COMMIT")
	err := stmtErr
	if err == nil {
		err = commitErr
	}
	if err == nil {
		t.Fatal("second writer committed over a concurrent update (lost update)")
	}
	if !IsSerializationError(err) {
		t.Fatalf("conflict error %v is not a serialization error", err)
	}
	if got := queryInts(t, db.def, "SELECT bal FROM acct"); len(got) != 1 || got[0] != 150 {
		t.Fatalf("balance = %v, want [150] (loser's write leaked)", got)
	}

	// The losing session is usable again after the abort.
	if _, err := s2.Exec("UPDATE acct SET bal = 50 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if got := queryInts(t, db.def, "SELECT bal FROM acct"); got[0] != 50 {
		t.Fatalf("retry did not land: %v", got)
	}
}

// TestMVCCConflictAfterSnapshot: the rival commits BEFORE the loser's
// write statement runs — the loser's snapshot predates the commit, so
// its update targets a superseded version and must fail rather than
// silently clobber.
func TestMVCCConflictAfterSnapshot(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	mustExec(t, db, "INSERT INTO acct VALUES (1, 100)")
	s1, s2 := db.NewSession(), db.NewSession()

	for _, s := range []*Session{s1, s2} {
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
	}
	// Pin both snapshots with a read, then let s1 commit first.
	queryInts(t, s1, "SELECT bal FROM acct")
	queryInts(t, s2, "SELECT bal FROM acct")
	if _, err := s1.Exec("UPDATE acct SET bal = bal + 10 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	_, stmtErr := s2.Exec("UPDATE acct SET bal = bal + 1 WHERE id = 1")
	_, commitErr := s2.Exec("COMMIT")
	err := stmtErr
	if err == nil {
		err = commitErr
	}
	if !IsSerializationError(err) {
		t.Fatalf("stale-snapshot update: err = %v, want serialization", err)
	}
	if got := queryInts(t, db.def, "SELECT bal FROM acct"); got[0] != 110 {
		t.Fatalf("balance = %v, want [110]", got)
	}
}

// TestMVCCMonotonicVisibility: once any reader observes a commit, every
// later-started reader observes it too. A counter is bumped serially by
// one writer while readers continuously poll; observed values must be
// non-decreasing per reader.
func TestMVCCMonotonicVisibility(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE c (id INTEGER PRIMARY KEY, n INTEGER)")
	mustExec(t, db, "INSERT INTO c VALUES (1, 0)")

	const bumps = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			last := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query("SELECT n FROM c WHERE id = 1")
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("counter row missing: %d rows", len(res.Rows))
					return
				}
				n := res.Rows[0][0].I
				if n < last {
					errs <- fmt.Errorf("visibility went backwards: saw %d after %d", n, last)
					return
				}
				last = n
			}
		}()
	}
	w := db.NewSession()
	for i := 1; i <= bumps; i++ {
		if _, err := w.Exec(fmt.Sprintf("UPDATE c SET n = %d WHERE id = 1", i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	w.Close()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := queryInts(t, db.def, "SELECT n FROM c"); got[0] != bumps {
		t.Fatalf("final counter = %v, want [%d]", got, bumps)
	}
}

// TestMVCCInsertPKConflict: two transactions inserting the same primary
// key — the second committer must not produce a duplicate; it fails
// with a serialization (or duplicate-key) error.
func TestMVCCInsertPKConflict(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)")
	s1, s2 := db.NewSession(), db.NewSession()

	for _, s := range []*Session{s1, s2} {
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Exec("INSERT INTO u VALUES (7, 1)"); err != nil {
		t.Fatal(err)
	}
	_, stmtErr := s2.Exec("INSERT INTO u VALUES (7, 2)")
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	_, commitErr := s2.Exec("COMMIT")
	if stmtErr == nil && commitErr == nil {
		t.Fatal("duplicate-PK insert pair both committed")
	}
	got := queryInts(t, db.def, "SELECT v FROM u WHERE id = 7")
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("row = %v, want first committer's [1]", got)
	}
}

// TestMVCCTxnStats: the engine surfaces transaction counters.
func TestMVCCTxnStats(t *testing.T) {
	db := Open("mvcc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	s := db.NewSession()
	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (1)"} {
		if _, err := s.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	st := db.TxnStats()
	if st.ActiveTxns != 1 {
		t.Fatalf("ActiveTxns = %d, want 1", st.ActiveTxns)
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	st = db.TxnStats()
	if st.ActiveTxns != 0 || st.Commits == 0 {
		t.Fatalf("stats after commit = %+v", st)
	}
}
