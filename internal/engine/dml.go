package engine

import (
	"context"
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/exec"
	"openivm/internal/expr"
	"openivm/internal/fault"
	"openivm/internal/mvcc"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
	"openivm/internal/storage"
)

// execInsert handles INSERT, INSERT OR REPLACE (DuckDB dialect) and
// INSERT ... ON CONFLICT (PostgreSQL dialect).
func (s *Session) execInsert(ctx context.Context, st *sqlparser.InsertStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Conflict != nil && !st.Conflict.DoNothing && !tbl.HasPrimaryKey() {
		return nil, fmt.Errorf("engine: ON CONFLICT DO UPDATE requires a primary key on %s", st.Table)
	}

	// Source plan (rows are pulled after the column mapping is known: the
	// plain-INSERT path streams batches instead of materializing them).
	n, err := s.PlanSelect(st.Select)
	if err != nil {
		return nil, err
	}

	// Column mapping: named columns or positional.
	colPos := make([]int, 0, len(tbl.Columns))
	if len(st.Columns) > 0 {
		for _, cn := range st.Columns {
			p := tbl.ColumnPos(cn)
			if p < 0 {
				return nil, fmt.Errorf("engine: column %q not in table %q", cn, st.Table)
			}
			colPos = append(colPos, p)
		}
	} else {
		for i := range tbl.Columns {
			colPos = append(colPos, i)
		}
	}

	// Identity mapping — every column, in table order — is the shape of
	// generated DML (IVM propagation scripts name the full column list).
	// Source rows are durable and values immutable, so storage can adopt
	// them without the per-row rebuild (the same aliasing contract
	// catalog.Table.validate documents).
	identity := len(colPos) == len(tbl.Columns)
	for i, p := range colPos {
		if p != i {
			identity = false
			break
		}
	}
	buildRow := func(src sqltypes.Row) (sqltypes.Row, error) {
		if len(src) != len(colPos) {
			return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(src), len(colPos))
		}
		if identity {
			return src, nil
		}
		row := make(sqltypes.Row, len(tbl.Columns))
		filled := make([]bool, len(tbl.Columns))
		for i, p := range colPos {
			row[p] = src[i]
			filled[p] = true
		}
		for i := range row {
			if !filled[i] {
				if tbl.Columns[i].HasDef {
					row[i] = tbl.Columns[i].Default
				} else {
					row[i] = sqltypes.Null
				}
			}
		}
		return row, nil
	}

	// Plain INSERT: stream source batches straight into storage, one lock
	// acquisition per batch — the batched DML path IVM delta application
	// runs on. Columnar batches (fused scan pipelines) sink through
	// Table.InsertVecs without ever boxing through the batch's RowView.
	if !st.OrReplace && st.Conflict == nil {
		return s.insertStream(ctx, n, tbl, st, colPos, identity, buildRow)
	}

	tx, _, done := s.beginWrite()
	srcRows, err := exec.RunOpts(n, s.execOptsTxn(ctx, tx))
	if err != nil {
		return nil, done(err)
	}
	var inserted, replacedOld, replacedNew []sqltypes.Row
	if st.OrReplace {
		// One batched storage call: the whole REPLACE set lands under a
		// single table-lock acquisition, which lets storage take its
		// quiescent in-place path (no version churn in the IVM combine
		// loop) while keeping the batch atomic for concurrent readers.
		built := make([]sqltypes.Row, 0, len(srcRows))
		for _, src := range srcRows {
			row, err := buildRow(src)
			if err != nil {
				return nil, done(err)
			}
			built = append(built, row)
		}
		inserted, replacedOld, replacedNew, err = tbl.UpsertBatchTxn(tx, built)
		if err != nil {
			return nil, done(err)
		}
		if err := done(nil); err != nil {
			return nil, err
		}
		if err := s.fireTxn(st.Table, TrigInsert, nil, inserted); err != nil {
			return nil, err
		}
		if err := s.fireTxn(st.Table, TrigUpdate, replacedOld, replacedNew); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: len(inserted) + len(replacedNew)}, nil
	}
	for _, src := range srcRows {
		row, err := buildRow(src)
		if err != nil {
			return nil, done(err)
		}
		switch {
		case st.Conflict != nil:
			old, existed := lookupByPK(tbl, tx, row)
			if existed && st.Conflict.DoNothing {
				continue
			}
			if existed {
				merged, err := s.applyConflictSet(tbl, st.Conflict, old, row)
				if err != nil {
					return nil, done(err)
				}
				if err := tbl.UpsertTxn(tx, merged); err != nil {
					return nil, done(err)
				}
				replacedOld = append(replacedOld, old)
				replacedNew = append(replacedNew, merged)
			} else {
				if err := tbl.InsertTxn(tx, row); err != nil {
					return nil, done(err)
				}
				inserted = append(inserted, row)
			}
		}
	}

	if err := done(nil); err != nil {
		return nil, err
	}
	if err := s.fireTxn(st.Table, TrigInsert, nil, inserted); err != nil {
		return nil, err
	}
	if err := s.fireTxn(st.Table, TrigUpdate, replacedOld, replacedNew); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(inserted) + len(replacedNew)}, nil
}

// insertStream executes the plain-INSERT sink over a batch pipeline. Each
// batch lands under one table lock; a columnar identity-mapped batch goes
// through the vectorized InsertVecs path (typed column loops, hoisted
// validation), anything else builds rows and uses InsertBatch. Error
// semantics per batch match InsertBatch: the first failing row stops the
// statement with every earlier row (including earlier batches) kept in
// place — committed by the autocommit bracket, or carried by the open
// transaction until COMMIT/ROLLBACK settles it.
func (s *Session) insertStream(ctx context.Context, n plan.Node, tbl *catalog.Table, st *sqlparser.InsertStmt,
	colPos []int, identity bool, buildRow func(sqltypes.Row) (sqltypes.Row, error)) (*Result, error) {
	tx, _, done := s.beginWrite()
	it, err := exec.OpenBatch(n, s.execOptsTxn(ctx, tx))
	if err != nil {
		return nil, done(err)
	}
	defer it.Close()
	total := 0
	collect := s.wantsTriggerRows(st.Table, TrigInsert)
	var all []sqltypes.Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, done(err)
		}
		if b == nil {
			break
		}
		var rows []sqltypes.Row
		var landed int
		var insErr error
		if identity && b.Cols != nil && len(b.Cols) == len(colPos) {
			rows, landed, insErr = tbl.InsertVecsTxn(tx, b.Cols, b.Len())
		} else if b.Cols != nil && len(b.Cols) != len(colPos) {
			return nil, done(fmt.Errorf("engine: INSERT has %d values for %d columns", len(b.Cols), len(colPos)))
		} else {
			src := b.RowView()
			built := make([]sqltypes.Row, len(src))
			for i, r := range src {
				row, berr := buildRow(r)
				if berr != nil {
					return nil, done(berr)
				}
				built[i] = row
			}
			landed, insErr = tbl.InsertBatchTxn(tx, built)
			rows = built
		}
		total += landed
		if collect && landed > 0 {
			all = append(all, rows[:landed]...)
		}
		if insErr != nil {
			return nil, done(insErr)
		}
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	if err := s.fireTxn(st.Table, TrigInsert, nil, all); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: total}, nil
}

// lookupByPK fetches the row matching row's primary key as seen by the
// writing transaction's snapshot (own uncommitted writes included).
func lookupByPK(tbl *catalog.Table, tx *mvcc.Txn, row sqltypes.Row) (sqltypes.Row, bool) {
	if !tbl.HasPrimaryKey() {
		return nil, false
	}
	return tbl.LookupPKRowSnap(tx.Snapshot(), row)
}

// applyConflictSet computes the merged row for ON CONFLICT DO UPDATE.
// Assignment expressions see the schema [table columns..., excluded.*].
func (s *Session) applyConflictSet(tbl *catalog.Table, oc *sqlparser.OnConflict, old, new sqltypes.Row) (sqltypes.Row, error) {
	schema := make([]plan.ColumnInfo, 0, 2*len(tbl.Columns))
	for _, c := range tbl.Columns {
		schema = append(schema, plan.ColumnInfo{Table: tbl.Name, Name: c.Name, Type: c.Type})
	}
	for _, c := range tbl.Columns {
		schema = append(schema, plan.ColumnInfo{Table: "excluded", Name: c.Name, Type: c.Type})
	}
	env := make(sqltypes.Row, 0, 2*len(old))
	env = append(env, old...)
	env = append(env, new...)

	merged := old.Clone()
	b := s.newBinder()
	for _, a := range oc.Set {
		p := tbl.ColumnPos(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: ON CONFLICT SET column %q unknown", a.Column)
		}
		e, err := b.BindExprSchema(a.Value, schema)
		if err != nil {
			return nil, err
		}
		v, err := e.Eval(env)
		if err != nil {
			return nil, err
		}
		merged[p] = v
	}
	return merged, nil
}

func (s *Session) execUpdate(ctx context.Context, st *sqlparser.UpdateStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tableSchema(tbl)
	b := s.newBinder()

	var pred expr.Expr
	if st.Where != nil {
		pred, err = b.BindExprSchema(st.Where, schema)
		if err != nil {
			return nil, err
		}
	}
	type setOp struct {
		pos int
		e   expr.Expr
	}
	var sets []setOp
	for _, a := range st.Set {
		p := tbl.ColumnPos(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: SET column %q unknown", a.Column)
		}
		e, err := b.BindExprSchema(a.Value, schema)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{pos: p, e: e})
	}

	tx, _, done := s.beginWrite()
	check := ctxChecker(ctx)
	old, new_, err := tbl.UpdateTxn(tx,
		func(r sqltypes.Row) (bool, error) {
			if err := check(); err != nil {
				return false, err
			}
			if pred == nil {
				return true, nil
			}
			v, err := pred.Eval(r)
			if err != nil {
				return false, err
			}
			return v.IsTrue(), nil
		},
		func(r sqltypes.Row) (sqltypes.Row, error) {
			nr := r.Clone()
			for _, s := range sets {
				v, err := s.e.Eval(r)
				if err != nil {
					return nil, err
				}
				nr[s.pos] = v
			}
			return nr, nil
		})
	if err != nil {
		return nil, done(err)
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	if err := s.fireTxn(st.Table, TrigUpdate, old, new_); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(new_)}, nil
}

func (s *Session) execDelete(ctx context.Context, st *sqlparser.DeleteStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	var pred expr.Expr
	if st.Where != nil {
		pred, err = s.newBinder().BindExprSchema(st.Where, tableSchema(tbl))
		if err != nil {
			return nil, err
		}
	}
	tx, wp, done := s.beginWrite()
	var deleted []sqltypes.Row
	affected := 0
	fast := false
	if pred == nil && s.txn == nil {
		// Unfiltered DELETE clears the whole table in one shot when nobody
		// could observe the difference (IVM truncates its delta tables on
		// every refresh; the IVM path runs with triggers suppressed, so it
		// also skips the row copy). Concurrent snapshots force the stamped
		// per-version path below instead.
		if rows, n, ok := tbl.TruncateQuiescent(tx, s.wantsTriggerRows(st.Table, TrigDelete)); ok {
			deleted, affected, fast = rows, n, true
			// The physical reset leaves no write-log ops; record the
			// truncate explicitly so redo replays it.
			wp.truncate(tbl)
		}
	}
	if !fast {
		var dpred func(sqltypes.Row) (bool, error)
		if pred != nil {
			check := ctxChecker(ctx)
			dpred = func(r sqltypes.Row) (bool, error) {
				if err := check(); err != nil {
					return false, err
				}
				v, err := pred.Eval(r)
				if err != nil {
					return false, err
				}
				return v.IsTrue(), nil
			}
		}
		deleted, err = tbl.DeleteTxn(tx, dpred)
		if err != nil {
			return nil, done(err)
		}
		affected = len(deleted)
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	if err := s.fireTxn(st.Table, TrigDelete, deleted, nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

func (s *Session) execTruncate(st *sqlparser.TruncateStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	tx, wp, done := s.beginWrite()
	want := s.wantsTriggerRows(st.Table, TrigDelete)
	var rows []sqltypes.Row
	affected := 0
	fast := false
	if s.txn == nil {
		if r, n, ok := tbl.TruncateQuiescent(tx, want); ok {
			rows, affected, fast = r, n, true
			wp.truncate(tbl) // see execDelete: the fast path logs no ops
		}
	}
	if !fast {
		rows, err = tbl.DeleteTxn(tx, nil)
		if err != nil {
			return nil, done(err)
		}
		affected = len(rows)
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	if err := s.fireTxn(st.Table, TrigDelete, rows, nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

func tableSchema(tbl *catalog.Table) []plan.ColumnInfo {
	out := make([]plan.ColumnInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		out[i] = plan.ColumnInfo{Table: tbl.Name, Name: c.Name, Type: c.Type}
	}
	return out
}

// ApplyDeltaRow replays one captured delta row against a table: an
// insertion (mult=true) inserts the row, a deletion (mult=false) removes
// exactly one matching copy (Z-set semantics). Row-level triggers fire, so
// IVM delta capture observes the replayed change — this is the primitive
// the cross-system HTAP pipeline uses to mirror remote deltas locally.
func (s *Session) ApplyDeltaRow(table string, row sqltypes.Row, mult bool) error {
	tbl, err := s.db.cat.Table(table)
	if err != nil {
		return err
	}
	if mult {
		if err := s.walInstant(tbl, storage.OpInsert, row); err != nil {
			return err
		}
		if err := tbl.Insert(row); err != nil {
			return err
		}
		return s.fire(table, TrigInsert, nil, []sqltypes.Row{row})
	}
	if err := s.walInstant(tbl, storage.OpDelete, row); err != nil {
		return err
	}
	if !tbl.DeleteOne(row) {
		return fmt.Errorf("engine: delta deletion found no matching row in %s", table)
	}
	return s.fire(table, TrigDelete, []sqltypes.Row{row}, nil)
}

// ctxChecker returns a per-row cancellation probe for filtered
// UPDATE/DELETE loops: the context is consulted every 1024 rows, so a
// long predicate sweep over a huge table observes cancellation promptly
// without paying a context check per row.
func ctxChecker(ctx context.Context) func() error {
	if ctx == nil {
		return func() error { return nil }
	}
	n := 0
	return func() error {
		n++
		if n&1023 != 0 {
			return nil
		}
		return ctx.Err()
	}
}

// --- transactions ---

// pendingFire is a trigger event queued inside an explicit transaction
// and delivered after COMMIT publishes the writes: IVM delta capture and
// eager propagation must read committed state, and a ROLLBACK must leave
// no trace in the captured deltas.
type pendingFire struct {
	table    string
	ev       TriggerEvent
	old, new []sqltypes.Row
}

// txnState is an open explicit transaction: the MVCC transaction that
// carries the write set and consistent read snapshot, plus the deferred
// trigger events. ROLLBACK aborts the MVCC transaction (storage restamps
// the logged versions) and drops the queued events — nothing was
// captured, so nothing needs compensating.
type txnState struct {
	mtx   *mvcc.Txn
	wal   *walPending // staged redo record state (nil when not logging)
	fires []pendingFire
}

// beginWrite returns the transaction a DML statement writes under and a
// completion func. Inside an explicit transaction the statement joins it
// and completion defers to COMMIT. In autocommit the statement runs as
// its own transaction, committed by the completion func BEFORE triggers
// fire so propagation reads the published state. Autocommit commits even
// when the statement failed partway: the landed prefix stays in place,
// matching the historical no-transaction semantics (a doomed conflicting
// statement aborts inside Commit instead and keeps nothing).
func (s *Session) beginWrite() (*mvcc.Txn, *walPending, func(error) error) {
	if s.txn != nil {
		return s.txn.mtx, s.txn.wal, func(err error) error { return err }
	}
	mgr := s.db.cat.MVCC()
	tx := mgr.Begin()
	tx.SetAutoCommit()
	wp := s.walArm(tx)
	s.activeWrite = tx // panic cleanup target until completion runs
	settled := false
	return tx, wp, func(err error) error {
		if settled {
			return err
		}
		settled = true
		if err == nil {
			// Injected while activeWrite is still set: a panic-action fire
			// unwinds into recoverStatement, which aborts the transaction.
			if ferr := fault.Inject(fault.EngineCommit); ferr != nil {
				s.activeWrite = nil
				mgr.Abort(tx)
				return ferr
			}
		}
		s.activeWrite = nil
		if cerr := mgr.Commit(tx); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil {
			// Group commit: block until the staged redo record's fsync.
			// On a statement error the landed prefix stays committed in
			// memory (historical autocommit semantics) and its staged
			// record rides the next flush.
			err = wp.wait(s.db)
		}
		return err
	}
}

// fireTxn delivers a DML trigger event: immediately in autocommit (the
// statement's own transaction has already committed), queued until COMMIT
// inside an explicit transaction. The suppression decision is taken now,
// at DML time, so it matches the rows the statement collected.
func (s *Session) fireTxn(table string, ev TriggerEvent, oldRows, newRows []sqltypes.Row) error {
	if len(oldRows)+len(newRows) == 0 || s.trigOff.Load() > 0 {
		return nil
	}
	if s.txn != nil {
		s.txn.fires = append(s.txn.fires, pendingFire{table: table, ev: ev, old: oldRows, new: newRows})
		return nil
	}
	return s.fireForce(table, ev, oldRows, newRows)
}

func (s *Session) execBegin() (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("engine: transaction already in progress")
	}
	tx := s.db.cat.MVCC().Begin()
	s.txn = &txnState{mtx: tx, wal: s.walArm(tx)}
	return &Result{}, nil
}

func (s *Session) execCommit() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	tx := s.txn
	// Injected while s.txn is still set: a panic-action fire unwinds into
	// recoverStatement, which aborts the whole transaction.
	if ferr := fault.Inject(fault.EngineCommit); ferr != nil {
		s.txn = nil
		s.db.cat.MVCC().Abort(tx.mtx)
		return nil, ferr
	}
	s.txn = nil // deferred fires below run in autocommit, not re-queued
	if err := s.db.cat.MVCC().Commit(tx.mtx); err != nil {
		// First-committer-wins conflict: the manager has already aborted
		// and restamped the write set; surface the serialization failure.
		return nil, err
	}
	if err := tx.wal.wait(s.db); err != nil {
		// Committed in memory but not confirmed durable: surface the
		// failure before the client treats the COMMIT as acknowledged.
		return nil, err
	}
	for _, f := range tx.fires {
		if err := s.fireForce(f.table, f.ev, f.old, f.new); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

func (s *Session) execRollback() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	tx := s.txn
	s.txn = nil
	s.db.cat.MVCC().Abort(tx.mtx)
	return &Result{}, nil
}

// --- lazy scalar subquery ---

// lazySubquery evaluates an uncorrelated scalar subquery on first use and
// caches the result. It is bound to the session that planned it: the
// subquery runs with that session's execution options and cancellation
// context. Plans holding one are never cached or shared (expr.Reusable
// refuses unknown node kinds).
type lazySubquery struct {
	s      *Session
	sel    *sqlparser.SelectStmt
	done   bool
	cached sqltypes.Value
	typ    sqltypes.Type
}

func newLazySubquery(s *Session, sel *sqlparser.SelectStmt) *lazySubquery {
	return &lazySubquery{s: s, sel: sel, typ: sqltypes.TypeAny}
}

// Eval implements expr.Expr.
func (l *lazySubquery) Eval(sqltypes.Row) (sqltypes.Value, error) {
	if l.done {
		return l.cached, nil
	}
	n, err := l.s.PlanSelect(l.sel)
	if err != nil {
		return sqltypes.Null, err
	}
	rows, err := exec.RunOpts(n, l.s.execOptsTxn(l.s.ctx, l.s.currentTxn()))
	if err != nil {
		return sqltypes.Null, err
	}
	switch {
	case len(rows) == 0:
		l.cached = sqltypes.Null
	case len(rows) == 1 && len(rows[0]) == 1:
		l.cached = rows[0][0]
	default:
		return sqltypes.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(rows))
	}
	l.done = true
	return l.cached, nil
}

// Type implements expr.Expr.
func (l *lazySubquery) Type() sqltypes.Type { return l.typ }

// String implements expr.Expr.
func (l *lazySubquery) String() string { return "(<subquery>)" }

// --- result formatting ---

// Format renders a result as an aligned text table (shell output).
func (r *Result) Format() string {
	var sb strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v)
			if w := widths[i] - len(v); w > 0 && i < len(vals)-1 {
				sb.WriteString(strings.Repeat(" ", w))
			}
		}
		sb.WriteByte('\n')
	}
	if len(r.Columns) > 0 {
		writeRow(r.Columns)
		total := 0
		for _, w := range widths {
			total += w + 3
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}
