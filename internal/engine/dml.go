package engine

import (
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/exec"
	"openivm/internal/expr"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// execInsert handles INSERT, INSERT OR REPLACE (DuckDB dialect) and
// INSERT ... ON CONFLICT (PostgreSQL dialect).
func (db *DB) execInsert(st *sqlparser.InsertStmt) (*Result, error) {
	tbl, err := db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Conflict != nil && !st.Conflict.DoNothing && !tbl.HasPrimaryKey() {
		return nil, fmt.Errorf("engine: ON CONFLICT DO UPDATE requires a primary key on %s", st.Table)
	}

	// Source rows.
	n, err := db.PlanSelect(st.Select)
	if err != nil {
		return nil, err
	}
	srcRows, err := exec.Run(n)
	if err != nil {
		return nil, err
	}

	// Column mapping: named columns or positional.
	colPos := make([]int, 0, len(tbl.Columns))
	if len(st.Columns) > 0 {
		for _, cn := range st.Columns {
			p := tbl.ColumnPos(cn)
			if p < 0 {
				return nil, fmt.Errorf("engine: column %q not in table %q", cn, st.Table)
			}
			colPos = append(colPos, p)
		}
	} else {
		for i := range tbl.Columns {
			colPos = append(colPos, i)
		}
	}

	// Identity mapping — every column, in table order — is the shape of
	// generated DML (IVM propagation scripts name the full column list).
	// Source rows are durable and values immutable, so storage can adopt
	// them without the per-row rebuild (the same aliasing contract
	// catalog.Table.validate documents).
	identity := len(colPos) == len(tbl.Columns)
	for i, p := range colPos {
		if p != i {
			identity = false
			break
		}
	}
	buildRow := func(src sqltypes.Row) (sqltypes.Row, error) {
		if len(src) != len(colPos) {
			return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(src), len(colPos))
		}
		if identity {
			return src, nil
		}
		row := make(sqltypes.Row, len(tbl.Columns))
		filled := make([]bool, len(tbl.Columns))
		for i, p := range colPos {
			row[p] = src[i]
			filled[p] = true
		}
		for i := range row {
			if !filled[i] {
				if tbl.Columns[i].HasDef {
					row[i] = tbl.Columns[i].Default
				} else {
					row[i] = sqltypes.Null
				}
			}
		}
		return row, nil
	}

	// Plain INSERT: build all rows first, then append under one table
	// lock — the batched DML path IVM delta application runs on.
	if !st.OrReplace && st.Conflict == nil {
		rows := make([]sqltypes.Row, len(srcRows))
		for i, src := range srcRows {
			row, err := buildRow(src)
			if err != nil {
				return nil, err
			}
			rows[i] = row
		}
		n, insErr := tbl.InsertBatch(rows)
		if db.txn != nil && n > 0 {
			// Undo-log the inserted prefix even when a later row failed, so
			// ROLLBACK removes it (matching the old per-row Insert path).
			prefix := rows[:n]
			db.logUndo(func() error {
				for _, r := range prefix {
					if err := undoInsert(tbl, r); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if insErr != nil {
			return nil, insErr
		}
		if err := db.fire(st.Table, TrigInsert, nil, rows); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: len(rows)}, nil
	}

	var inserted, replacedOld, replacedNew []sqltypes.Row
	for _, src := range srcRows {
		row, err := buildRow(src)
		if err != nil {
			return nil, err
		}
		switch {
		case st.OrReplace:
			old, existed := lookupByPK(tbl, row)
			if err := tbl.Upsert(row); err != nil {
				return nil, err
			}
			if existed {
				replacedOld = append(replacedOld, old)
				replacedNew = append(replacedNew, row)
				if db.txn != nil {
					db.logUndo(func() error { return tbl.Upsert(old) })
				}
			} else {
				inserted = append(inserted, row)
				if db.txn != nil {
					db.logUndo(func() error {
						_, derr := tbl.Delete(matchPK(tbl, row))
						return derr
					})
				}
			}
		case st.Conflict != nil:
			old, existed := lookupByPK(tbl, row)
			if existed && st.Conflict.DoNothing {
				continue
			}
			if existed {
				merged, err := db.applyConflictSet(tbl, st.Conflict, old, row)
				if err != nil {
					return nil, err
				}
				if err := tbl.Upsert(merged); err != nil {
					return nil, err
				}
				replacedOld = append(replacedOld, old)
				replacedNew = append(replacedNew, merged)
				if db.txn != nil {
					db.logUndo(func() error { return tbl.Upsert(old) })
				}
			} else {
				if err := tbl.Insert(row); err != nil {
					return nil, err
				}
				inserted = append(inserted, row)
				if db.txn != nil {
					db.logUndo(func() error {
						_, derr := tbl.Delete(matchPK(tbl, row))
						return derr
					})
				}
			}
		}
	}

	if err := db.fire(st.Table, TrigInsert, nil, inserted); err != nil {
		return nil, err
	}
	if err := db.fire(st.Table, TrigUpdate, replacedOld, replacedNew); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(inserted) + len(replacedNew)}, nil
}

func undoInsert(tbl *catalog.Table, row sqltypes.Row) error {
	if !tbl.DeleteOne(row) {
		return fmt.Errorf("engine: rollback failed to remove inserted row")
	}
	return nil
}

// lookupByPK fetches the current row matching row's primary key.
func lookupByPK(tbl *catalog.Table, row sqltypes.Row) (sqltypes.Row, bool) {
	if !tbl.HasPrimaryKey() {
		return nil, false
	}
	return tbl.LookupPKRow(row)
}

func matchPK(tbl *catalog.Table, row sqltypes.Row) func(sqltypes.Row) (bool, error) {
	pk := tbl.PrimaryKeyColumns()
	return func(r sqltypes.Row) (bool, error) {
		for _, p := range pk {
			if !sqltypes.Equal(r[p], row[p]) {
				return false, nil
			}
		}
		return true, nil
	}
}

// applyConflictSet computes the merged row for ON CONFLICT DO UPDATE.
// Assignment expressions see the schema [table columns..., excluded.*].
func (db *DB) applyConflictSet(tbl *catalog.Table, oc *sqlparser.OnConflict, old, new sqltypes.Row) (sqltypes.Row, error) {
	schema := make([]plan.ColumnInfo, 0, 2*len(tbl.Columns))
	for _, c := range tbl.Columns {
		schema = append(schema, plan.ColumnInfo{Table: tbl.Name, Name: c.Name, Type: c.Type})
	}
	for _, c := range tbl.Columns {
		schema = append(schema, plan.ColumnInfo{Table: "excluded", Name: c.Name, Type: c.Type})
	}
	env := make(sqltypes.Row, 0, 2*len(old))
	env = append(env, old...)
	env = append(env, new...)

	merged := old.Clone()
	b := db.newBinder()
	for _, a := range oc.Set {
		p := tbl.ColumnPos(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: ON CONFLICT SET column %q unknown", a.Column)
		}
		e, err := b.BindExprSchema(a.Value, schema)
		if err != nil {
			return nil, err
		}
		v, err := e.Eval(env)
		if err != nil {
			return nil, err
		}
		merged[p] = v
	}
	return merged, nil
}

func (db *DB) execUpdate(st *sqlparser.UpdateStmt) (*Result, error) {
	tbl, err := db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tableSchema(tbl)
	b := db.newBinder()

	var pred expr.Expr
	if st.Where != nil {
		pred, err = b.BindExprSchema(st.Where, schema)
		if err != nil {
			return nil, err
		}
	}
	type setOp struct {
		pos int
		e   expr.Expr
	}
	var sets []setOp
	for _, a := range st.Set {
		p := tbl.ColumnPos(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: SET column %q unknown", a.Column)
		}
		e, err := b.BindExprSchema(a.Value, schema)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{pos: p, e: e})
	}

	old, new_, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) {
			if pred == nil {
				return true, nil
			}
			v, err := pred.Eval(r)
			if err != nil {
				return false, err
			}
			return v.IsTrue(), nil
		},
		func(r sqltypes.Row) (sqltypes.Row, error) {
			nr := r.Clone()
			for _, s := range sets {
				v, err := s.e.Eval(r)
				if err != nil {
					return nil, err
				}
				nr[s.pos] = v
			}
			return nr, nil
		})
	if err != nil {
		return nil, err
	}
	for i := range old {
		if db.txn == nil {
			break // undo closures are only needed inside a transaction
		}
		o, n := old[i], new_[i]
		db.logUndo(func() error {
			// Restore exactly one matching row (duplicates must each be
			// reverted by their own undo entry).
			done := false
			_, _, uerr := tbl.Update(
				func(r sqltypes.Row) (bool, error) { return !done && r.Equal(n), nil },
				func(sqltypes.Row) (sqltypes.Row, error) { done = true; return o, nil })
			return uerr
		})
	}
	if err := db.fire(st.Table, TrigUpdate, old, new_); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(new_)}, nil
}

func (db *DB) execDelete(st *sqlparser.DeleteStmt) (*Result, error) {
	tbl, err := db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	var pred expr.Expr
	if st.Where != nil {
		pred, err = db.newBinder().BindExprSchema(st.Where, tableSchema(tbl))
		if err != nil {
			return nil, err
		}
	}
	var deleted []sqltypes.Row
	affected := 0
	if pred == nil {
		// Unfiltered DELETE clears the whole table in one shot instead of
		// tombstoning row by row (IVM truncates its delta tables on every
		// refresh). The row snapshot is only taken when undo or a trigger
		// will actually consume it — the IVM truncation path runs with
		// triggers suppressed and no transaction, so it skips the copy.
		affected = tbl.RowCount()
		if db.txn != nil || db.wantsTriggerRows(st.Table, TrigDelete) {
			deleted = tbl.Rows()
		}
		tbl.Truncate()
	} else {
		deleted, err = tbl.Delete(func(r sqltypes.Row) (bool, error) {
			v, err := pred.Eval(r)
			if err != nil {
				return false, err
			}
			return v.IsTrue(), nil
		})
		if err != nil {
			return nil, err
		}
		affected = len(deleted)
	}
	if db.txn != nil {
		rows := deleted
		db.logUndo(func() error {
			for _, r := range rows {
				if err := tbl.Insert(r); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := db.fire(st.Table, TrigDelete, deleted, nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

func (db *DB) execTruncate(st *sqlparser.TruncateStmt) (*Result, error) {
	tbl, err := db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	rows := tbl.Rows()
	tbl.Truncate()
	db.logUndo(func() error {
		for _, r := range rows {
			if err := tbl.Insert(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err := db.fire(st.Table, TrigDelete, rows, nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(rows)}, nil
}

func tableSchema(tbl *catalog.Table) []plan.ColumnInfo {
	out := make([]plan.ColumnInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		out[i] = plan.ColumnInfo{Table: tbl.Name, Name: c.Name, Type: c.Type}
	}
	return out
}

// ApplyDeltaRow replays one captured delta row against a table: an
// insertion (mult=true) inserts the row, a deletion (mult=false) removes
// exactly one matching copy (Z-set semantics). Row-level triggers fire, so
// IVM delta capture observes the replayed change — this is the primitive
// the cross-system HTAP pipeline uses to mirror remote deltas locally.
func (db *DB) ApplyDeltaRow(table string, row sqltypes.Row, mult bool) error {
	tbl, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if mult {
		if err := tbl.Insert(row); err != nil {
			return err
		}
		return db.fire(table, TrigInsert, nil, []sqltypes.Row{row})
	}
	if !tbl.DeleteOne(row) {
		return fmt.Errorf("engine: delta deletion found no matching row in %s", table)
	}
	return db.fire(table, TrigDelete, []sqltypes.Row{row}, nil)
}

// --- transactions ---

// txnState is a simple undo-log transaction: single writer, no isolation
// levels (the engine holds a global lock per statement anyway); ROLLBACK
// replays the undo log in reverse.
type txnState struct {
	undo []func() error
}

func (db *DB) logUndo(fn func() error) {
	if db.txn != nil {
		db.txn.undo = append(db.txn.undo, fn)
	}
}

func (db *DB) execBegin() (*Result, error) {
	if db.txn != nil {
		return nil, fmt.Errorf("engine: transaction already in progress")
	}
	db.txn = &txnState{}
	return &Result{}, nil
}

func (db *DB) execCommit() (*Result, error) {
	if db.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	db.txn = nil
	return &Result{}, nil
}

func (db *DB) execRollback() (*Result, error) {
	if db.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	undo := db.txn.undo
	db.txn = nil // undo actions must not re-log
	var firstErr error
	for i := len(undo) - 1; i >= 0; i-- {
		if err := undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return &Result{}, firstErr
}

// --- lazy scalar subquery ---

// lazySubquery evaluates an uncorrelated scalar subquery on first use and
// caches the result.
type lazySubquery struct {
	db     *DB
	sel    *sqlparser.SelectStmt
	done   bool
	cached sqltypes.Value
	typ    sqltypes.Type
}

func newLazySubquery(db *DB, sel *sqlparser.SelectStmt) *lazySubquery {
	return &lazySubquery{db: db, sel: sel, typ: sqltypes.TypeAny}
}

// Eval implements expr.Expr.
func (l *lazySubquery) Eval(sqltypes.Row) (sqltypes.Value, error) {
	if l.done {
		return l.cached, nil
	}
	n, err := l.db.PlanSelect(l.sel)
	if err != nil {
		return sqltypes.Null, err
	}
	rows, err := exec.Run(n)
	if err != nil {
		return sqltypes.Null, err
	}
	switch {
	case len(rows) == 0:
		l.cached = sqltypes.Null
	case len(rows) == 1 && len(rows[0]) == 1:
		l.cached = rows[0][0]
	default:
		return sqltypes.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(rows))
	}
	l.done = true
	return l.cached, nil
}

// Type implements expr.Expr.
func (l *lazySubquery) Type() sqltypes.Type { return l.typ }

// String implements expr.Expr.
func (l *lazySubquery) String() string { return "(<subquery>)" }

// --- result formatting ---

// Format renders a result as an aligned text table (shell output).
func (r *Result) Format() string {
	var sb strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v)
			if w := widths[i] - len(v); w > 0 && i < len(vals)-1 {
				sb.WriteString(strings.Repeat(" ", w))
			}
		}
		sb.WriteByte('\n')
	}
	if len(r.Columns) > 0 {
		writeRow(r.Columns)
		total := 0
		for _, w := range widths {
			total += w + 3
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}
