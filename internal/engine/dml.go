package engine

import (
	"context"
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/exec"
	"openivm/internal/expr"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// execInsert handles INSERT, INSERT OR REPLACE (DuckDB dialect) and
// INSERT ... ON CONFLICT (PostgreSQL dialect).
func (s *Session) execInsert(ctx context.Context, st *sqlparser.InsertStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Conflict != nil && !st.Conflict.DoNothing && !tbl.HasPrimaryKey() {
		return nil, fmt.Errorf("engine: ON CONFLICT DO UPDATE requires a primary key on %s", st.Table)
	}

	// Source plan (rows are pulled after the column mapping is known: the
	// plain-INSERT path streams batches instead of materializing them).
	n, err := s.PlanSelect(st.Select)
	if err != nil {
		return nil, err
	}

	// Column mapping: named columns or positional.
	colPos := make([]int, 0, len(tbl.Columns))
	if len(st.Columns) > 0 {
		for _, cn := range st.Columns {
			p := tbl.ColumnPos(cn)
			if p < 0 {
				return nil, fmt.Errorf("engine: column %q not in table %q", cn, st.Table)
			}
			colPos = append(colPos, p)
		}
	} else {
		for i := range tbl.Columns {
			colPos = append(colPos, i)
		}
	}

	// Identity mapping — every column, in table order — is the shape of
	// generated DML (IVM propagation scripts name the full column list).
	// Source rows are durable and values immutable, so storage can adopt
	// them without the per-row rebuild (the same aliasing contract
	// catalog.Table.validate documents).
	identity := len(colPos) == len(tbl.Columns)
	for i, p := range colPos {
		if p != i {
			identity = false
			break
		}
	}
	buildRow := func(src sqltypes.Row) (sqltypes.Row, error) {
		if len(src) != len(colPos) {
			return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(src), len(colPos))
		}
		if identity {
			return src, nil
		}
		row := make(sqltypes.Row, len(tbl.Columns))
		filled := make([]bool, len(tbl.Columns))
		for i, p := range colPos {
			row[p] = src[i]
			filled[p] = true
		}
		for i := range row {
			if !filled[i] {
				if tbl.Columns[i].HasDef {
					row[i] = tbl.Columns[i].Default
				} else {
					row[i] = sqltypes.Null
				}
			}
		}
		return row, nil
	}

	// Plain INSERT: stream source batches straight into storage, one lock
	// acquisition per batch — the batched DML path IVM delta application
	// runs on. Columnar batches (fused scan pipelines) sink through
	// Table.InsertVecs without ever boxing through the batch's RowView.
	if !st.OrReplace && st.Conflict == nil {
		return s.insertStream(ctx, n, tbl, st, colPos, identity, buildRow)
	}

	srcRows, err := exec.RunOpts(n, s.execOpts(ctx))
	if err != nil {
		return nil, err
	}
	var inserted, replacedOld, replacedNew []sqltypes.Row
	for _, src := range srcRows {
		row, err := buildRow(src)
		if err != nil {
			return nil, err
		}
		switch {
		case st.OrReplace:
			old, existed := lookupByPK(tbl, row)
			if err := tbl.Upsert(row); err != nil {
				return nil, err
			}
			if existed {
				replacedOld = append(replacedOld, old)
				replacedNew = append(replacedNew, row)
				if s.txn != nil {
					comp := s.undoFire(st.Table, TrigUpdate)
					s.logUndo(func() error {
						if err := tbl.Upsert(old); err != nil {
							return err
						}
						return comp([]sqltypes.Row{row}, []sqltypes.Row{old})
					})
				}
			} else {
				inserted = append(inserted, row)
				if s.txn != nil {
					comp := s.undoFire(st.Table, TrigDelete)
					s.logUndo(func() error {
						if _, derr := tbl.Delete(matchPK(tbl, row)); derr != nil {
							return derr
						}
						return comp([]sqltypes.Row{row}, nil)
					})
				}
			}
		case st.Conflict != nil:
			old, existed := lookupByPK(tbl, row)
			if existed && st.Conflict.DoNothing {
				continue
			}
			if existed {
				merged, err := s.applyConflictSet(tbl, st.Conflict, old, row)
				if err != nil {
					return nil, err
				}
				if err := tbl.Upsert(merged); err != nil {
					return nil, err
				}
				replacedOld = append(replacedOld, old)
				replacedNew = append(replacedNew, merged)
				if s.txn != nil {
					comp := s.undoFire(st.Table, TrigUpdate)
					s.logUndo(func() error {
						if err := tbl.Upsert(old); err != nil {
							return err
						}
						return comp([]sqltypes.Row{merged}, []sqltypes.Row{old})
					})
				}
			} else {
				if err := tbl.Insert(row); err != nil {
					return nil, err
				}
				inserted = append(inserted, row)
				if s.txn != nil {
					comp := s.undoFire(st.Table, TrigDelete)
					s.logUndo(func() error {
						if _, derr := tbl.Delete(matchPK(tbl, row)); derr != nil {
							return derr
						}
						return comp([]sqltypes.Row{row}, nil)
					})
				}
			}
		}
	}

	if err := s.fire(st.Table, TrigInsert, nil, inserted); err != nil {
		return nil, err
	}
	if err := s.fire(st.Table, TrigUpdate, replacedOld, replacedNew); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(inserted) + len(replacedNew)}, nil
}

// insertStream executes the plain-INSERT sink over a batch pipeline. Each
// batch lands under one table lock; a columnar identity-mapped batch goes
// through the vectorized InsertVecs path (typed column loops, hoisted
// validation), anything else builds rows and uses InsertBatch. Error
// semantics per batch match InsertBatch: the first failing row stops the
// statement with every earlier row (including earlier batches) inserted
// and undo-logged — identical to the historical all-rows-first path,
// which also left the prefix in place on failure.
func (s *Session) insertStream(ctx context.Context, n plan.Node, tbl *catalog.Table, st *sqlparser.InsertStmt,
	colPos []int, identity bool, buildRow func(sqltypes.Row) (sqltypes.Row, error)) (*Result, error) {
	it, err := exec.OpenBatch(n, s.execOpts(ctx))
	if err != nil {
		return nil, err
	}
	defer it.Close()
	total := 0
	collect := s.wantsTriggerRows(st.Table, TrigInsert)
	var all []sqltypes.Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		var rows []sqltypes.Row
		var landed int
		var insErr error
		if identity && b.Cols != nil && len(b.Cols) == len(colPos) {
			rows, landed, insErr = tbl.InsertVecs(b.Cols, b.Len())
		} else if b.Cols != nil && len(b.Cols) != len(colPos) {
			return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(b.Cols), len(colPos))
		} else {
			src := b.RowView()
			built := make([]sqltypes.Row, len(src))
			for i, r := range src {
				row, berr := buildRow(r)
				if berr != nil {
					return nil, berr
				}
				built[i] = row
			}
			landed, insErr = tbl.InsertBatch(built)
			rows = built
		}
		if s.txn != nil && landed > 0 {
			// Undo-log the inserted prefix even when a later row failed, so
			// ROLLBACK removes it (matching the old per-row Insert path).
			prefix := rows[:landed]
			// Compensating trigger, decided at DML time: IVM delta capture
			// must observe the rollback iff it observed the insert.
			comp := s.undoFire(st.Table, TrigDelete)
			s.logUndo(func() error {
				for _, r := range prefix {
					if err := undoInsert(tbl, r); err != nil {
						return err
					}
				}
				return comp(prefix, nil)
			})
		}
		if insErr != nil {
			return nil, insErr
		}
		total += landed
		if collect && landed > 0 {
			all = append(all, rows[:landed]...)
		}
	}
	if err := s.fire(st.Table, TrigInsert, nil, all); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: total}, nil
}

func undoInsert(tbl *catalog.Table, row sqltypes.Row) error {
	if !tbl.DeleteOne(row) {
		return fmt.Errorf("engine: rollback failed to remove inserted row")
	}
	return nil
}

// lookupByPK fetches the current row matching row's primary key.
func lookupByPK(tbl *catalog.Table, row sqltypes.Row) (sqltypes.Row, bool) {
	if !tbl.HasPrimaryKey() {
		return nil, false
	}
	return tbl.LookupPKRow(row)
}

func matchPK(tbl *catalog.Table, row sqltypes.Row) func(sqltypes.Row) (bool, error) {
	pk := tbl.PrimaryKeyColumns()
	return func(r sqltypes.Row) (bool, error) {
		for _, p := range pk {
			if !sqltypes.Equal(r[p], row[p]) {
				return false, nil
			}
		}
		return true, nil
	}
}

// applyConflictSet computes the merged row for ON CONFLICT DO UPDATE.
// Assignment expressions see the schema [table columns..., excluded.*].
func (s *Session) applyConflictSet(tbl *catalog.Table, oc *sqlparser.OnConflict, old, new sqltypes.Row) (sqltypes.Row, error) {
	schema := make([]plan.ColumnInfo, 0, 2*len(tbl.Columns))
	for _, c := range tbl.Columns {
		schema = append(schema, plan.ColumnInfo{Table: tbl.Name, Name: c.Name, Type: c.Type})
	}
	for _, c := range tbl.Columns {
		schema = append(schema, plan.ColumnInfo{Table: "excluded", Name: c.Name, Type: c.Type})
	}
	env := make(sqltypes.Row, 0, 2*len(old))
	env = append(env, old...)
	env = append(env, new...)

	merged := old.Clone()
	b := s.newBinder()
	for _, a := range oc.Set {
		p := tbl.ColumnPos(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: ON CONFLICT SET column %q unknown", a.Column)
		}
		e, err := b.BindExprSchema(a.Value, schema)
		if err != nil {
			return nil, err
		}
		v, err := e.Eval(env)
		if err != nil {
			return nil, err
		}
		merged[p] = v
	}
	return merged, nil
}

func (s *Session) execUpdate(ctx context.Context, st *sqlparser.UpdateStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tableSchema(tbl)
	b := s.newBinder()

	var pred expr.Expr
	if st.Where != nil {
		pred, err = b.BindExprSchema(st.Where, schema)
		if err != nil {
			return nil, err
		}
	}
	type setOp struct {
		pos int
		e   expr.Expr
	}
	var sets []setOp
	for _, a := range st.Set {
		p := tbl.ColumnPos(a.Column)
		if p < 0 {
			return nil, fmt.Errorf("engine: SET column %q unknown", a.Column)
		}
		e, err := b.BindExprSchema(a.Value, schema)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{pos: p, e: e})
	}

	check := ctxChecker(ctx)
	old, new_, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) {
			if err := check(); err != nil {
				return false, err
			}
			if pred == nil {
				return true, nil
			}
			v, err := pred.Eval(r)
			if err != nil {
				return false, err
			}
			return v.IsTrue(), nil
		},
		func(r sqltypes.Row) (sqltypes.Row, error) {
			nr := r.Clone()
			for _, s := range sets {
				v, err := s.e.Eval(r)
				if err != nil {
					return nil, err
				}
				nr[s.pos] = v
			}
			return nr, nil
		})
	if err != nil {
		return nil, err
	}
	for i := range old {
		if s.txn == nil {
			break // undo closures are only needed inside a transaction
		}
		o, n := old[i], new_[i]
		comp := s.undoFire(st.Table, TrigUpdate)
		s.logUndo(func() error {
			// Restore exactly one matching row (duplicates must each be
			// reverted by their own undo entry).
			done := false
			_, _, uerr := tbl.Update(
				func(r sqltypes.Row) (bool, error) { return !done && r.Equal(n), nil },
				func(sqltypes.Row) (sqltypes.Row, error) { done = true; return o, nil })
			if uerr != nil {
				return uerr
			}
			return comp([]sqltypes.Row{n}, []sqltypes.Row{o})
		})
	}
	if err := s.fire(st.Table, TrigUpdate, old, new_); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(new_)}, nil
}

func (s *Session) execDelete(ctx context.Context, st *sqlparser.DeleteStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	var pred expr.Expr
	if st.Where != nil {
		pred, err = s.newBinder().BindExprSchema(st.Where, tableSchema(tbl))
		if err != nil {
			return nil, err
		}
	}
	var deleted []sqltypes.Row
	affected := 0
	if pred == nil {
		// Unfiltered DELETE clears the whole table in one shot instead of
		// tombstoning row by row (IVM truncates its delta tables on every
		// refresh). The row snapshot is only taken when undo or a trigger
		// will actually consume it — the IVM truncation path runs with
		// triggers suppressed and no transaction, so it skips the copy.
		affected = tbl.RowCount()
		if s.txn != nil || s.wantsTriggerRows(st.Table, TrigDelete) {
			deleted = tbl.Rows()
		}
		tbl.Truncate()
	} else {
		check := ctxChecker(ctx)
		deleted, err = tbl.Delete(func(r sqltypes.Row) (bool, error) {
			if err := check(); err != nil {
				return false, err
			}
			v, err := pred.Eval(r)
			if err != nil {
				return false, err
			}
			return v.IsTrue(), nil
		})
		if err != nil {
			return nil, err
		}
		affected = len(deleted)
	}
	if s.txn != nil {
		rows := deleted
		comp := s.undoFire(st.Table, TrigInsert)
		s.logUndo(func() error {
			for _, r := range rows {
				if err := tbl.Insert(r); err != nil {
					return err
				}
			}
			return comp(nil, rows)
		})
	}
	if err := s.fire(st.Table, TrigDelete, deleted, nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

func (s *Session) execTruncate(st *sqlparser.TruncateStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	rows := tbl.Rows()
	tbl.Truncate()
	comp := s.undoFire(st.Table, TrigInsert)
	s.logUndo(func() error {
		for _, r := range rows {
			if err := tbl.Insert(r); err != nil {
				return err
			}
		}
		return comp(nil, rows)
	})
	if err := s.fire(st.Table, TrigDelete, rows, nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(rows)}, nil
}

func tableSchema(tbl *catalog.Table) []plan.ColumnInfo {
	out := make([]plan.ColumnInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		out[i] = plan.ColumnInfo{Table: tbl.Name, Name: c.Name, Type: c.Type}
	}
	return out
}

// ApplyDeltaRow replays one captured delta row against a table: an
// insertion (mult=true) inserts the row, a deletion (mult=false) removes
// exactly one matching copy (Z-set semantics). Row-level triggers fire, so
// IVM delta capture observes the replayed change — this is the primitive
// the cross-system HTAP pipeline uses to mirror remote deltas locally.
func (s *Session) ApplyDeltaRow(table string, row sqltypes.Row, mult bool) error {
	tbl, err := s.db.cat.Table(table)
	if err != nil {
		return err
	}
	if mult {
		if err := tbl.Insert(row); err != nil {
			return err
		}
		return s.fire(table, TrigInsert, nil, []sqltypes.Row{row})
	}
	if !tbl.DeleteOne(row) {
		return fmt.Errorf("engine: delta deletion found no matching row in %s", table)
	}
	return s.fire(table, TrigDelete, []sqltypes.Row{row}, nil)
}

// ctxChecker returns a per-row cancellation probe for filtered
// UPDATE/DELETE loops: the context is consulted every 1024 rows, so a
// long predicate sweep over a huge table observes cancellation promptly
// without paying a context check per row.
func ctxChecker(ctx context.Context) func() error {
	if ctx == nil {
		return func() error { return nil }
	}
	n := 0
	return func() error {
		n++
		if n&1023 != 0 {
			return nil
		}
		return ctx.Err()
	}
}

// --- transactions ---

// txnState is a simple undo-log transaction: single writer, no isolation
// levels (the engine holds a global lock per statement anyway); ROLLBACK
// replays the undo log in reverse.
type txnState struct {
	undo []func() error
}

func (s *Session) logUndo(fn func() error) {
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, fn)
	}
}

func (s *Session) execBegin() (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("engine: transaction already in progress")
	}
	s.txn = &txnState{}
	return &Result{}, nil
}

func (s *Session) execCommit() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	s.txn = nil
	return &Result{}, nil
}

func (s *Session) execRollback() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	undo := s.txn.undo
	s.txn = nil // undo actions must not re-log
	var firstErr error
	for i := len(undo) - 1; i >= 0; i-- {
		if err := undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return &Result{}, firstErr
}

// --- lazy scalar subquery ---

// lazySubquery evaluates an uncorrelated scalar subquery on first use and
// caches the result. It is bound to the session that planned it: the
// subquery runs with that session's execution options and cancellation
// context. Plans holding one are never cached or shared (expr.Reusable
// refuses unknown node kinds).
type lazySubquery struct {
	s      *Session
	sel    *sqlparser.SelectStmt
	done   bool
	cached sqltypes.Value
	typ    sqltypes.Type
}

func newLazySubquery(s *Session, sel *sqlparser.SelectStmt) *lazySubquery {
	return &lazySubquery{s: s, sel: sel, typ: sqltypes.TypeAny}
}

// Eval implements expr.Expr.
func (l *lazySubquery) Eval(sqltypes.Row) (sqltypes.Value, error) {
	if l.done {
		return l.cached, nil
	}
	n, err := l.s.PlanSelect(l.sel)
	if err != nil {
		return sqltypes.Null, err
	}
	rows, err := exec.RunOpts(n, l.s.execOpts(l.s.ctx))
	if err != nil {
		return sqltypes.Null, err
	}
	switch {
	case len(rows) == 0:
		l.cached = sqltypes.Null
	case len(rows) == 1 && len(rows[0]) == 1:
		l.cached = rows[0][0]
	default:
		return sqltypes.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(rows))
	}
	l.done = true
	return l.cached, nil
}

// Type implements expr.Expr.
func (l *lazySubquery) Type() sqltypes.Type { return l.typ }

// String implements expr.Expr.
func (l *lazySubquery) String() string { return "(<subquery>)" }

// --- result formatting ---

// Format renders a result as an aligned text table (shell output).
func (r *Result) Format() string {
	var sb strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v)
			if w := widths[i] - len(v); w > 0 && i < len(vals)-1 {
				sb.WriteString(strings.Repeat(" ", w))
			}
		}
		sb.WriteByte('\n')
	}
	if len(r.Columns) > 0 {
		writeRow(r.Columns)
		total := 0
		for _, w := range widths {
			total += w + 3
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}
