// Robustness: graceful degradation to read-only after a sticky storage
// failure, and per-statement panic isolation.
//
// # Degraded mode
//
// A durable backend that fails an I/O operation (write, fsync, rename,
// dir-sync — classified SQLSTATE 58030 by the storage layer) is
// poisoned: its sticky flushErr refuses all further appends, so every
// subsequent commit would fail anyway, just with a confusing per-commit
// error. Instead the engine notes the first 58030 it sees on a
// durability path and flips into READ-ONLY DEGRADED MODE:
//
//   - write statements (DML and DDL) fail fast with SQLSTATE 58030 and
//     a message naming the root cause — no partial commits pile up
//     against a dead disk;
//   - reads, EXPLAIN, PRAGMA, BEGIN/COMMIT/ROLLBACK of read-only
//     transactions, and the stats op keep serving: the in-memory MVCC
//     state is intact and remains authoritative;
//   - the IVM extension's internal sessions (WAL-bypassed) keep
//     maintaining derived state for the reads that still run.
//
// Service is restored by operator intervention: AttachBackend with a
// fresh, EMPTY durable backend reseeds durability via a full checkpoint
// of the authoritative in-memory state, then re-enables writes. (The
// old backend's directory is recovery input for a post-mortem, not for
// this process: its log may have lost its tail, so re-attaching
// non-empty state would silently fork history.)
//
// # Panic isolation
//
// execStmt runs every statement under a recover(): a panic anywhere in
// the statement path — binder, optimizer, kernels, triggers, extension
// hooks — is converted into a SQLSTATE XX000 internal error carrying
// the panic value and stack. The statement's transaction is rolled
// back (the undo log makes this exact), the session survives, and no
// other connection observes anything but its own consistent snapshot.
// The executor's parallel workers route their panics to the statement
// goroutine (see internal/exec), so this one boundary covers them too.
package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"openivm/internal/enginerr"
	"openivm/internal/sqlparser"
	"openivm/internal/storage"
)

// degradedState is the DB's read-only-mode flag and its root cause.
type degradedState struct {
	flag   atomic.Bool
	mu     sync.Mutex
	reason error
}

// Degraded reports whether the engine is in read-only degraded mode.
func (db *DB) Degraded() bool { return db.degr.flag.Load() }

// DegradedReason returns the storage failure that triggered degraded
// mode (nil when healthy).
func (db *DB) DegradedReason() error {
	db.degr.mu.Lock()
	defer db.degr.mu.Unlock()
	return db.degr.reason
}

// RecoveredPanics returns how many statement-level panics this DB has
// converted into XX000 errors.
func (db *DB) RecoveredPanics() int64 { return db.panicsRecovered.Load() }

// enterDegraded flips the engine into read-only mode, keeping the first
// cause (later failures are consequences of the same dead disk).
func (db *DB) enterDegraded(cause error) {
	db.degr.mu.Lock()
	if db.degr.reason == nil {
		db.degr.reason = cause
	}
	db.degr.mu.Unlock()
	db.degr.flag.Store(true)
}

// clearDegraded restores write service (degraded re-attach succeeded).
func (db *DB) clearDegraded() {
	db.degr.mu.Lock()
	db.degr.reason = nil
	db.degr.mu.Unlock()
	db.degr.flag.Store(false)
}

// degradedErr builds the fail-fast write rejection: SQLSTATE 58030
// carrying the root cause.
func (db *DB) degradedErr() error {
	db.degr.mu.Lock()
	cause := db.degr.reason
	db.degr.mu.Unlock()
	return enginerr.Newf(enginerr.CodeIOFailure,
		"engine: database is in read-only degraded mode after a storage failure; writes are rejected until an operator re-attaches a healthy backend (cause: %v)", cause)
}

// noteStorageErr inspects a durability-path error and degrades the
// engine on an I/O-classified (58030) failure. Returns err unchanged.
func (db *DB) noteStorageErr(err error) error {
	if err != nil && enginerr.HasCode(err, enginerr.CodeIOFailure) {
		db.enterDegraded(err)
	}
	return err
}

// isWriteStmt reports whether a statement mutates database state — the
// set rejected in degraded mode. Transaction control, pragmas, EXPLAIN
// and SELECT pass.
func isWriteStmt(stmt sqlparser.Statement) bool {
	switch stmt.(type) {
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt,
		*sqlparser.TruncateStmt, *sqlparser.CreateTableStmt,
		*sqlparser.CreateIndexStmt, *sqlparser.CreateViewStmt,
		*sqlparser.DropStmt, *sqlparser.CreateTriggerStmt,
		*sqlparser.RefreshStmt:
		return true
	}
	return false
}

// execStmt is the single statement dispatch point: it enforces
// read-only degraded mode, isolates panics to the statement, and then
// delegates to execStmtInner (the hook pass and type switch).
func (s *Session) execStmt(ctx context.Context, stmt sqlparser.Statement) (res *Result, err error) {
	if s.db.degr.flag.Load() && !s.walBypass && isWriteStmt(stmt) {
		return nil, s.db.degradedErr()
	}
	defer func() {
		if r := recover(); r != nil {
			s.db.panicsRecovered.Add(1)
			s.recoverStatement()
			res = nil
			err = enginerr.Newf(enginerr.CodeInternal,
				"engine: internal error executing statement (the statement's transaction was rolled back; the session remains usable): %v\n%s",
				r, debug.Stack())
		}
	}()
	return s.execStmtInner(ctx, stmt)
}

// recoverStatement rolls back whatever transaction a panicking
// statement left dangling: the autocommit write transaction it opened
// (tracked in s.activeWrite), or the session's explicit transaction —
// a panic mid-transaction aborts the whole transaction, because the
// statement may have applied part of its writes.
func (s *Session) recoverStatement() {
	mgr := s.db.cat.MVCC()
	if tx := s.activeWrite; tx != nil {
		s.activeWrite = nil
		mgr.Abort(tx)
	}
	if s.txn != nil {
		tx := s.txn
		s.txn = nil
		mgr.Abort(tx.mtx)
	}
}

// --- degraded re-attach ---

// recoveryProbe counts what a backend's Recover would replay, without
// applying any of it — the emptiness check behind degraded re-attach.
type recoveryProbe struct{ records int }

func (p *recoveryProbe) Checkpoint(*storage.CheckpointData) error { p.records++; return nil }
func (p *recoveryProbe) Commit(*storage.CommitRecord) error       { p.records++; return nil }
func (p *recoveryProbe) DDL(*storage.DDLRecord) error             { p.records++; return nil }

// reattachDegraded restores write service after degradation. The
// in-memory committed state is authoritative — the failed backend's log
// may have lost its tail — so the replacement backend must be EMPTY;
// its durable state is seeded with a full checkpoint of memory, and
// writes re-enable only once that checkpoint is durable.
func (db *DB) reattachDegraded(b storage.Backend) error {
	if !b.Durable() {
		return fmt.Errorf("engine: degraded re-attach requires a durable backend")
	}
	probe := &recoveryProbe{}
	if err := b.Recover(probe); err != nil {
		return err
	}
	if probe.records > 0 {
		return fmt.Errorf("engine: degraded re-attach requires an empty data directory: the in-memory state is authoritative and the target already holds durable state (%d recovered records); recover that directory in a fresh instance instead", probe.records)
	}
	old := db.be()
	db.setBackend(b)
	if err := db.Checkpoint(); err != nil {
		// The replacement backend failed too: stay degraded (the
		// checkpoint path re-noted the failure), keep the new backend
		// for the operator's next attempt.
		return err
	}
	db.clearDegraded()
	old.Close()
	return nil
}
