package engine

import (
	"strings"
	"testing"

	"openivm/internal/sqltypes"
)

// Additional engine coverage: DDL paths, error paths, dialect behaviour.

func TestCreateIndexViaSQL(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE INDEX gi ON groups (group_index)")
	tbl, _ := db.Catalog().Table("groups")
	idx, ok := tbl.Index("gi")
	if !ok {
		t.Fatal("index missing")
	}
	rows := tbl.LookupIndex(idx, sqltypes.NewString("g1"))
	if len(rows) != 5 {
		t.Fatalf("lookup = %d rows", len(rows))
	}
}

func TestCreateUniqueIndexViolationViaSQL(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE UNIQUE INDEX gu ON groups (group_index)"); err == nil {
		t.Fatal("unique index over duplicate values should fail")
	}
}

func TestCreateIndexUnknownTable(t *testing.T) {
	db := Open("t", DialectDuckDB)
	if _, err := db.Exec("CREATE INDEX i ON missing (a)"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestExplainNonSelect(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("EXPLAIN INSERT INTO groups VALUES ('x', 1)"); err == nil {
		t.Fatal("EXPLAIN of DML should report unsupported")
	}
}

func TestUpsertWithoutPKFails(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Exec("INSERT OR REPLACE INTO t VALUES (1)"); err == nil {
		t.Fatal("INSERT OR REPLACE without a primary key must fail")
	}
}

func TestOnConflictWithoutPKFails(t *testing.T) {
	db := Open("t", DialectPostgres)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Exec("INSERT INTO t VALUES (1) ON CONFLICT (a) DO NOTHING"); err == nil {
		// DO NOTHING without PK: no conflict possible, plain insert; this
		// is acceptable behaviour, but DO UPDATE must fail.
		if _, err := db.Exec("INSERT INTO t VALUES (1) ON CONFLICT (a) DO UPDATE SET a = 2"); err == nil {
			t.Fatal("ON CONFLICT DO UPDATE without PK must fail")
		}
	}
}

func TestRefreshWithoutExtension(t *testing.T) {
	db := Open("t", DialectDuckDB)
	if _, err := db.Exec("REFRESH MATERIALIZED VIEW v"); err == nil ||
		!strings.Contains(err.Error(), "IVM extension") {
		t.Fatalf("err = %v", err)
	}
}

func TestScalarSubqueryMultiRowErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT (SELECT group_value FROM groups) FROM groups"); err == nil {
		t.Fatal("multi-row scalar subquery must error")
	}
}

func TestApplyDeltaRow(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	var events int
	db.AddTrigger("t", "tr", []TriggerEvent{TrigInsert, TrigDelete},
		func(_ *DB, _ string, _ TriggerEvent, _, _ []sqltypes.Row) error {
			events++
			return nil
		})
	row := sqltypes.Row{sqltypes.NewInt(7)}
	if err := db.ApplyDeltaRow("t", row, true); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyDeltaRow("t", row, false); err != nil {
		t.Fatal(err)
	}
	if events != 2 {
		t.Fatalf("trigger events = %d", events)
	}
	if err := db.ApplyDeltaRow("t", row, false); err == nil {
		t.Fatal("deleting a missing row must error")
	}
	tbl, _ := db.Catalog().Table("t")
	if tbl.RowCount() != 0 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
}

func TestSplitStatementsNested(t *testing.T) {
	parts := SplitStatements(`INSERT INTO v WITH c AS (SELECT 1; ) SELECT * FROM c; DELETE FROM v`)
	// The semicolon inside parens must not split.
	if len(parts) != 2 {
		t.Fatalf("parts = %q", parts)
	}
}

func TestFormatEmptyResult(t *testing.T) {
	r := &Result{}
	if out := r.Format(); out != "" {
		t.Fatalf("empty format = %q", out)
	}
}

func TestDialectString(t *testing.T) {
	if DialectDuckDB.String() != "duckdb" || DialectPostgres.String() != "postgres" {
		t.Fatal("dialect names")
	}
}

func TestUpdateUnknownColumn(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("UPDATE groups SET nope = 1"); err == nil {
		t.Fatal("unknown SET column must fail")
	}
}

func TestDeleteUnknownTable(t *testing.T) {
	db := Open("t", DialectDuckDB)
	if _, err := db.Exec("DELETE FROM missing"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestBareDoubleRollback(t *testing.T) {
	db := Open("t", DialectDuckDB)
	if _, err := db.Exec("ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK without BEGIN must fail")
	}
	if _, err := db.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN must fail")
	}
}

func TestTriggerErrorAborts(t *testing.T) {
	db := testDB(t)
	db.AddTrigger("groups", "boom", []TriggerEvent{TrigInsert},
		func(_ *DB, _ string, _ TriggerEvent, _, _ []sqltypes.Row) error {
			return errBoom
		})
	if _, err := db.Exec("INSERT INTO groups VALUES ('x', 1)"); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

var errBoom = &boomErr{}

type boomErr struct{}

func (*boomErr) Error() string { return "boom" }

func TestRollbackUpsertRestoresOld(t *testing.T) {
	db := Open("t", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1)")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT OR REPLACE INTO t VALUES ('a', 99), ('b', 2)")
	mustExec(t, db, "ROLLBACK")
	rows := queryRows(t, db, "SELECT k, v FROM t ORDER BY k")
	if len(rows) != 1 || rows[0][1].I != 1 {
		t.Fatalf("rollback of upsert failed: %v", rows)
	}
}
