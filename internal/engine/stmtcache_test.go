package engine

import (
	"fmt"
	"sync"
	"testing"

	"openivm/internal/sqltypes"
)

// TestStmtCacheHit: repeating an ad-hoc SELECT through a session must
// plan once and hit the shared text cache afterwards, still observing
// current table contents (plans snapshot rows at open, not at plan).
func TestStmtCacheHit(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20)")
	s := db.NewSession()

	const q = "SELECT k, v FROM t WHERE v > 5"
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("first run: %d rows", len(res.Rows))
	}
	before := db.StmtCacheStats()
	if before.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", before.Entries)
	}
	mustExec(t, db, "INSERT INTO t VALUES (3, 30)")
	res, err = s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("cached run misses new rows: %d", len(res.Rows))
	}
	after := db.StmtCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("no cache hit recorded: %+v -> %+v", before, after)
	}
}

// TestStmtCacheSharedAcrossSessions: one session's planned SELECT serves
// another session's identical text.
func TestStmtCacheSharedAcrossSessions(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	s1, s2 := db.NewSession(), db.NewSession()
	const q = "SELECT k FROM t"
	if _, err := s1.Query(q); err != nil {
		t.Fatal(err)
	}
	before := db.StmtCacheStats()
	if _, err := s2.Query(q); err != nil {
		t.Fatal(err)
	}
	after := db.StmtCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("cross-session hit not recorded: %+v -> %+v", before, after)
	}
}

// TestStmtCacheInvalidation: DDL must invalidate cached text plans — a
// recreated table would otherwise serve stale snapshots.
func TestStmtCacheInvalidation(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	s := db.NewSession()
	const q = "SELECT k FROM t"
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "DROP TABLE t")
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (7), (8)")
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 7 {
		t.Fatalf("post-DDL rows = %v, want the recreated table's", res.Rows)
	}
}

// TestStmtCacheKnobSeparation: sessions with different batch_size/workers
// must not share a plan (the Hint is baked in at plan time).
func TestStmtCacheKnobSeparation(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	s1, s2 := db.NewSession(), db.NewSession()
	if _, err := s1.Exec("PRAGMA workers = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("PRAGMA workers = 4"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT k FROM t"
	if _, err := s1.Query(q); err != nil {
		t.Fatal(err)
	}
	hitsBefore := db.StmtCacheStats().Hits
	if _, err := s2.Query(q); err != nil {
		t.Fatal(err)
	}
	st := db.StmtCacheStats()
	if st.Hits != hitsBefore {
		t.Fatal("sessions with different workers knobs shared one plan")
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one per knob setting)", st.Entries)
	}
}

// TestStmtCacheRefusesUnshareablePlans: plans with lazily cached subquery
// results or statement parameters must never be shared across sessions —
// replayed stale rows or racing value bindings.
func TestStmtCacheRefusesUnshareablePlans(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (k INTEGER)")
	mustExec(t, db, "CREATE TABLE b (k INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")
	s := db.NewSession()
	defer s.Close()
	s.BindParams([]sqltypes.Value{sqltypes.NewInt(0)})
	for _, q := range []string{
		"SELECT k FROM a WHERE k IN (SELECT k FROM b)", // lazy subquery cache
		"SELECT k FROM a WHERE k > $1",                 // session-bound parameter
	} {
		if _, err := s.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if st := db.StmtCacheStats(); st.Entries != 0 {
		t.Fatalf("unshareable plans entered the cache: %+v", st)
	}
	// The subquery still re-evaluates per execution.
	mustExec(t, db, "INSERT INTO b VALUES (2)")
	res, err := s.Query("SELECT k FROM a WHERE k IN (SELECT k FROM b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("subquery replayed stale rows: %v", res.Rows)
	}
}

// TestStmtCacheAdmitsScalarFuncPlans pins the plan-cache breadth fix:
// COALESCE/ABS-shaped statements — historically the most common cache
// refusal, because ScalarFunc carried a per-execution scratch buffer —
// now pass planShareable (the scratch moves by atomic swap) and hit the
// shared statement cache across sessions.
func TestStmtCacheAdmitsScalarFuncPlans(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (k INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (NULL), (-3)")
	s1, s2 := db.NewSession(), db.NewSession()
	defer s1.Close()
	defer s2.Close()
	const q = "SELECT COALESCE(k, 0), ABS(COALESCE(k, -1)) FROM a"
	if _, err := s1.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := db.StmtCacheStats(); st.Entries != 1 {
		t.Fatalf("ScalarFunc plan refused from the cache: %+v", st)
	}
	hitsBefore := db.StmtCacheStats().Hits
	res, err := s2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if db.StmtCacheStats().Hits != hitsBefore+1 {
		t.Fatalf("second session missed the cached COALESCE plan: %+v", db.StmtCacheStats())
	}
	if len(res.Rows) != 3 || res.Rows[1][0].I != 0 || res.Rows[1][1].I != 1 || res.Rows[2][1].I != 3 {
		t.Fatalf("cached-plan rows = %v", res.Rows)
	}
}

// TestStmtCacheLRUEviction exercises the LRU bound directly: beyond
// capacity the least recently used entry leaves, recently used ones stay.
func TestStmtCacheLRUEviction(t *testing.T) {
	c := newStmtCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("q%d", i), &stmtEntry{epoch: 1})
	}
	if _, ok := c.get("q0", 1); !ok { // refresh q0
		t.Fatal("q0 missing")
	}
	c.put("q3", &stmtEntry{epoch: 1}) // evicts q1 (LRU)
	if _, ok := c.get("q1", 1); ok {
		t.Fatal("LRU entry q1 survived eviction")
	}
	for _, k := range []string{"q0", "q2", "q3"} {
		if _, ok := c.get(k, 1); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	// Epoch mismatch evicts on sight.
	if _, ok := c.get("q3", 2); ok {
		t.Fatal("stale-epoch entry served")
	}
	if c.len() != 2 {
		t.Fatalf("stale entry retained: len = %d", c.len())
	}
}

// TestStmtCacheEngineLRUBound: the engine-integrated cache never exceeds
// its capacity under a stream of distinct one-off statements.
func TestStmtCacheEngineLRUBound(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	s := db.NewSession()
	for i := 0; i < stmtCacheSize+50; i++ {
		if _, err := s.Query(fmt.Sprintf("SELECT k FROM t WHERE k = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.StmtCacheStats(); st.Entries > stmtCacheSize {
		t.Fatalf("cache grew past its bound: %d > %d", st.Entries, stmtCacheSize)
	}
}

// TestStmtCacheConcurrentSharedPlan: many sessions hammer one cached plan
// concurrently — the planShareable gate plus per-execution operator state
// must make this race-free (run under -race in CI).
func TestStmtCacheConcurrentSharedPlan(t *testing.T) {
	db := Open("sc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v INTEGER)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i%5, i))
	}
	const q = "SELECT k, SUM(v) FROM t WHERE v >= 0 GROUP BY k"
	if _, err := db.NewSession().Query(q); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for j := 0; j < 30; j++ {
				res, err := s.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) != 5 {
					t.Errorf("rows = %d, want 5", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := db.StmtCacheStats(); st.Hits < 8*30-1 {
		t.Fatalf("shared plan barely hit: %+v", st)
	}
}
