package engine_test

import (
	"strings"
	"testing"

	"openivm/internal/engine"
	"openivm/internal/enginerr"
	"openivm/internal/fault"
	"openivm/internal/ivmext"
	"openivm/internal/storage"
)

// TestDegradedModeLifecycle walks the full degradation story: a sticky
// WAL failure flips the engine to read-only, writes fail fast with
// SQLSTATE 58030 while reads and stats keep serving, and re-attaching a
// fresh empty backend restores write service with the in-memory state
// reseeded durably.
func TestDegradedModeLifecycle(t *testing.T) {
	defer fault.Reset()
	dir1 := t.TempDir()
	db := openDurable(t, dir1)
	defer db.Close()
	s := db.NewSession()
	defer s.Close()

	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "INSERT INTO kv VALUES (1, 10), (2, 20)")

	// Kill the disk: the next commit's fsync fails and the engine degrades.
	if err := fault.Activate(fault.WALFsync, "error(disk died)"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec("INSERT INTO kv VALUES (3, 30)")
	if err == nil {
		t.Fatal("insert on a dead disk succeeded")
	}
	if code := enginerr.CodeOf(err); code != enginerr.CodeIOFailure {
		t.Fatalf("insert error code = %q, want %q (err: %v)", code, enginerr.CodeIOFailure, err)
	}
	if !db.Degraded() {
		t.Fatal("engine did not enter degraded mode after a WAL fsync failure")
	}
	if db.DegradedReason() == nil {
		t.Fatal("degraded mode has no recorded reason")
	}

	// The failpoint is gone, but the backend's sticky flushErr — and the
	// engine's degraded flag — keep writes failing fast.
	fault.Reset()
	if _, err := s.Exec("INSERT INTO kv VALUES (4, 40)"); enginerr.CodeOf(err) != enginerr.CodeIOFailure {
		t.Fatalf("degraded write not rejected with 58030: %v", err)
	}
	if _, err := s.Exec("CREATE TABLE other (x INTEGER)"); enginerr.CodeOf(err) != enginerr.CodeIOFailure {
		t.Fatalf("degraded DDL not rejected with 58030: %v", err)
	}

	// Reads and stats still serve from the authoritative in-memory state.
	// That state INCLUDES the statement that observed the failure: the
	// MVCC commit published before the fsync failed, so its outcome was
	// indeterminate from the client's view — exactly like an erroring
	// COMMIT — and the engine keeps the committed version.
	res := mustExec(t, s, "SELECT count(*) FROM kv")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("degraded read count = %d, want 3", res.Rows[0][0].I)
	}
	_ = db.StorageStats() // must not panic or block

	// Operator intervention: re-attach a fresh, empty backend.
	dir2 := t.TempDir()
	b2, err := storage.OpenDisk(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachBackend(b2); err != nil {
		t.Fatalf("degraded re-attach: %v", err)
	}
	if db.Degraded() {
		t.Fatal("engine still degraded after a successful re-attach")
	}
	mustExec(t, s, "INSERT INTO kv VALUES (5, 50)")

	// The replacement directory carries the reseeded state: a fresh
	// engine recovering it sees everything.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir2)
	defer db2.Close()
	s2 := db2.NewSession()
	defer s2.Close()
	if got := kvState(s2); got != "1=10;2=20;3=30;5=50;" {
		t.Fatalf("recovered state after re-attach = %q, want %q", got, "1=10;2=20;3=30;5=50;")
	}
}

// TestDegradedReattachRefusesNonEmpty: the in-memory state is
// authoritative after degradation, so a replacement backend that
// already holds durable state must be refused — silently merging two
// histories would fork the database.
func TestDegradedReattachRefusesNonEmpty(t *testing.T) {
	defer fault.Reset()

	// A populated directory to offer as the (bogus) replacement.
	popDir := t.TempDir()
	pop := openDurable(t, popDir)
	ps := pop.NewSession()
	mustExec(t, ps, "CREATE TABLE junk (x INTEGER)")
	ps.Close()
	if err := pop.Close(); err != nil {
		t.Fatal(err)
	}

	db := openDurable(t, t.TempDir())
	defer db.Close()
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")

	if err := fault.Activate(fault.WALFsync, "enospc"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kv VALUES (1, 1)"); err == nil {
		t.Fatal("insert with injected ENOSPC succeeded")
	}
	fault.Reset()
	if !db.Degraded() {
		t.Fatal("engine not degraded")
	}

	b, err := storage.OpenDisk(popDir)
	if err != nil {
		t.Fatal(err)
	}
	err = db.AttachBackend(b)
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("re-attach with a non-empty directory = %v, want empty-directory refusal", err)
	}
	if !db.Degraded() {
		t.Fatal("failed re-attach must leave the engine degraded")
	}
	b.Close()
}

// TestPanicIsolationAutocommit: a panic on the commit path of an
// autocommit statement becomes a SQLSTATE XX000 error, the statement's
// transaction is aborted, and the session keeps serving.
func TestPanicIsolationAutocommit(t *testing.T) {
	defer fault.Reset()
	db := engine.Open("panic-auto", engine.DialectDuckDB)
	ivmext.Install(db)
	defer db.Close()
	s := db.NewSession()
	defer s.Close()

	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "INSERT INTO kv VALUES (1, 10)")

	if err := fault.Activate(fault.EngineCommit, "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec("INSERT INTO kv VALUES (2, 20)")
	fault.Reset()
	if err == nil {
		t.Fatal("statement with injected panic succeeded")
	}
	if code := enginerr.CodeOf(err); code != enginerr.CodeInternal {
		t.Fatalf("panic error code = %q, want %q (err: %v)", code, enginerr.CodeInternal, err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic value lost from the error: %v", err)
	}
	if db.RecoveredPanics() == 0 {
		t.Fatal("RecoveredPanics did not count the recovered panic")
	}

	// The panicking statement's write was aborted; the session survives.
	if got := kvState(s); got != "1=10;" {
		t.Fatalf("state after recovered panic = %q, want %q", got, "1=10;")
	}
	mustExec(t, s, "INSERT INTO kv VALUES (3, 30)")
	if got := kvState(s); got != "1=10;3=30;" {
		t.Fatalf("state after follow-up insert = %q, want %q", got, "1=10;3=30;")
	}
}

// TestPanicIsolationExplicitTxn: a panic while committing an explicit
// transaction aborts the WHOLE transaction (partial application would
// otherwise survive) and leaves the session outside any transaction.
func TestPanicIsolationExplicitTxn(t *testing.T) {
	defer fault.Reset()
	db := engine.Open("panic-txn", engine.DialectDuckDB)
	ivmext.Install(db)
	defer db.Close()
	s := db.NewSession()
	defer s.Close()

	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO kv VALUES (1, 10)")
	mustExec(t, s, "INSERT INTO kv VALUES (2, 20)")

	if err := fault.Activate(fault.EngineCommit, "panic(commit panic)"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec("COMMIT")
	fault.Reset()
	if code := enginerr.CodeOf(err); code != enginerr.CodeInternal {
		t.Fatalf("COMMIT panic error code = %q, want %q (err: %v)", code, enginerr.CodeInternal, err)
	}

	// The transaction is gone: COMMIT reports no transaction, and none of
	// its writes are visible.
	if _, err := s.Exec("COMMIT"); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("second COMMIT after recovered panic = %v, want no-transaction error", err)
	}
	if got := kvState(s); got != "" {
		t.Fatalf("state after aborted transaction = %q, want empty", got)
	}
	mustExec(t, s, "INSERT INTO kv VALUES (9, 90)")
	if got := kvState(s); got != "9=90;" {
		t.Fatalf("state after follow-up insert = %q, want %q", got, "9=90;")
	}
}

// TestDegradedReattachRequiresDurable: degraded re-attach with a
// non-durable backend is refused outright.
func TestDegradedReattachRequiresDurable(t *testing.T) {
	defer fault.Reset()
	db := openDurable(t, t.TempDir())
	defer db.Close()
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
	if err := fault.Activate(fault.WALWrite, "error(dead)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kv VALUES (1, 1)"); err == nil {
		t.Fatal("insert with injected write failure succeeded")
	}
	fault.Reset()
	if !db.Degraded() {
		t.Fatal("engine not degraded")
	}
	if err := db.AttachBackend(storage.MemBackend{}); err == nil {
		t.Fatal("degraded re-attach accepted a non-durable backend")
	}
}
