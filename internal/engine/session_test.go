package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"openivm/internal/sqltypes"
)

// TestSessionTransactionIsolation: transactions are session state — two
// sessions BEGIN concurrently, one commits, one rolls back, and only the
// committed work survives.
func TestSessionTransactionIsolation(t *testing.T) {
	db := Open("s", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	s1, s2 := db.NewSession(), db.NewSession()

	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (1)"} {
		if _, err := s1.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (2)", "COMMIT"} {
		if _, err := s2.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res, err := s1.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v, want [[2]]", res.Rows)
	}

	// The default session's transaction is independent of both.
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t VALUES (3)")
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err) // s1 may BEGIN while def's txn is open
	}
	mustExec(t, db, "ROLLBACK")
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCloseRollsBack: closing a session with an open transaction
// rolls it back (the wire server's disconnect path).
func TestSessionCloseRollsBack(t *testing.T) {
	db := Open("s", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	s1 := db.NewSession()
	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (1)"} {
		if _, err := s1.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("closed session's transaction survived: %v", res.Rows)
	}
}

// TestSessionTriggerSuppressionIsolation: WithoutTriggers on one session
// must not disable another session's trigger firing — the bug class that
// loses IVM deltas under concurrent DML.
func TestSessionTriggerSuppressionIsolation(t *testing.T) {
	db := Open("s", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	var mu sync.Mutex
	fired := 0
	db.AddTrigger("t", "count", []TriggerEvent{TrigInsert}, func(*DB, string, TriggerEvent, []sqltypes.Row, []sqltypes.Row) error {
		mu.Lock()
		fired++
		mu.Unlock()
		return nil
	})
	s1, s2 := db.NewSession(), db.NewSession()
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s1.WithoutTriggers(func() error {
			close(gate)
			if _, err := s1.Exec("INSERT INTO t VALUES (1)"); err != nil {
				t.Error(err)
			}
			<-done2(t, s2) // s2 inserts while s1's suppression is active
			return nil
		})
	}()
	<-gate
	<-done
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (s2 fires, suppressed s1 does not)", fired)
	}
}

func done2(t *testing.T, s2 *Session) chan struct{} {
	t.Helper()
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		if _, err := s2.Exec("INSERT INTO t VALUES (2)"); err != nil {
			t.Error(err)
		}
	}()
	return ch
}

// TestSessionPragmaOverlay: batch_size/workers set on a session stay
// session-local; the default session's writes stay engine-global (the
// historical PRAGMA semantics every benchmark and test relies on).
func TestSessionPragmaOverlay(t *testing.T) {
	db := Open("s", DialectDuckDB)
	s1, s2 := db.NewSession(), db.NewSession()
	if _, err := s1.Exec("PRAGMA workers = 3"); err != nil {
		t.Fatal(err)
	}
	if got := s1.Pragma("workers"); got != "3" {
		t.Fatalf("s1 workers = %q, want 3", got)
	}
	if got := s2.Pragma("workers"); got != "" {
		t.Fatalf("s2 sees s1's overlay: %q", got)
	}
	if got := db.Pragma("workers"); got != "" {
		t.Fatalf("global table polluted: %q", got)
	}
	// Global default flows into sessions without an overlay.
	mustExec(t, db, "PRAGMA workers = 2")
	if got := s2.Pragma("workers"); got != "2" {
		t.Fatalf("s2 misses the global default: %q", got)
	}
	if got := s1.Pragma("workers"); got != "3" {
		t.Fatalf("s1 overlay lost: %q", got)
	}
	// Validation applies on sessions too.
	if _, err := s1.Exec("PRAGMA batch_size = 0"); err == nil {
		t.Fatal("invalid batch_size accepted on a session")
	}
}

// TestSessionContextCancel: a cancelled statement context surfaces
// context.Canceled, and Session.Cancel interrupts the session.
func TestSessionContextCancel(t *testing.T) {
	db := Open("s", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	rows := make([]sqltypes.Row, 0, 8192)
	for i := 0; i < 8192; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i))})
	}
	tbl, _ := db.Catalog().Table("t")
	if _, err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}

	s1 := db.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s1.ExecContext(ctx, "SELECT a FROM t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext after cancel: %v, want context.Canceled", err)
	}
	// The session itself is still usable with a live context.
	if _, err := s1.Exec("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	// Cancel kills the session's own context.
	s1.Cancel()
	if _, err := s1.Exec("SELECT a FROM t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec after Session.Cancel: %v, want context.Canceled", err)
	}
}

// TestMultiSessionConcurrentDML is the engine-level race test: N writer
// sessions and M reader sessions interleave DML (some transactional),
// queries and trigger firing against one DB. Run under -race in CI.
func TestMultiSessionConcurrentDML(t *testing.T) {
	db := Open("s", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (w INTEGER, v INTEGER)")
	mustExec(t, db, "CREATE TABLE audit (w INTEGER)")
	db.AddTrigger("t", "audit", []TriggerEvent{TrigInsert}, func(db *DB, _ string, _ TriggerEvent, _, newRows []sqltypes.Row) error {
		at, err := db.Catalog().Table("audit")
		if err != nil {
			return err
		}
		for _, r := range newRows {
			if err := at.Insert(sqltypes.Row{r[0]}); err != nil {
				return err
			}
		}
		return nil
	})

	const writers, readers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			committed := 0
			for j := 0; j < rounds; j++ {
				switch j % 4 {
				case 0, 1: // plain insert
					if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", w, j)); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					committed++
				case 2: // committed txn
					for _, sql := range []string{"BEGIN", fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", w, j), "COMMIT"} {
						if _, err := s.Exec(sql); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
					committed++
				case 3: // rolled-back txn: must leave no trace in t
					for _, sql := range []string{"BEGIN", fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", w, j), "ROLLBACK"} {
						if _, err := s.Exec(sql); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
				}
			}
			// Every committed row of this writer is present.
			res, err := s.Query(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE w = %d", w))
			if err != nil {
				t.Errorf("writer %d final: %v", w, err)
				return
			}
			if got := res.Rows[0][0].I; got != int64(committed) {
				t.Errorf("writer %d: %d rows committed, table has %d", w, committed, got)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for j := 0; j < rounds; j++ {
				q := "SELECT w, COUNT(*), SUM(v) FROM t GROUP BY w"
				if j%3 == 0 {
					q = "SELECT COUNT(*) FROM audit"
				}
				if _, err := s.Query(q); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
