// Package engine implements the embedded SQL database used throughout this
// reproduction — the stand-in for DuckDB (and, with the Postgres dialect,
// for PostgreSQL) in the paper's architecture. It wires the parser, binder,
// optimizer and executor together and exposes the extension points OpenIVM
// relies on:
//
//   - fallback parsers, tried when the main parser rejects a statement
//     (the paper's CREATE MATERIALIZED VIEW fallback-parser mechanism);
//   - statement hooks, which intercept statements before execution (the
//     paper's optimizer-rule injection used to reroute base-table DML into
//     delta tables and trigger propagation);
//   - row-level triggers, the PostgreSQL-side delta-capture mechanism;
//   - pragmas, the paper's "compiler switches" controlling IVM strategy.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"openivm/internal/catalog"
	"openivm/internal/exec"
	"openivm/internal/expr"
	"openivm/internal/optimizer"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// Dialect selects SQL dialect behaviour for statements whose syntax differs
// across systems.
type Dialect int

// Dialects.
const (
	DialectDuckDB Dialect = iota
	DialectPostgres
)

// String names the dialect.
func (d Dialect) String() string {
	if d == DialectPostgres {
		return "postgres"
	}
	return "duckdb"
}

// Result carries the outcome of a statement.
type Result struct {
	Columns      []string
	Rows         []sqltypes.Row
	RowsAffected int
}

// TriggerEvent identifies the DML kind a trigger fires for.
type TriggerEvent string

// Trigger events.
const (
	TrigInsert TriggerEvent = "INSERT"
	TrigDelete TriggerEvent = "DELETE"
	TrigUpdate TriggerEvent = "UPDATE"
)

// TriggerFunc receives the affected rows after a DML statement commits.
// For UPDATE both oldRows and newRows are set pairwise; for INSERT only
// newRows; for DELETE only oldRows.
type TriggerFunc func(db *DB, table string, event TriggerEvent, oldRows, newRows []sqltypes.Row) error

// StatementHook may intercept a parsed statement before standard execution.
// Returning handled=true short-circuits.
type StatementHook func(db *DB, stmt sqlparser.Statement) (handled bool, res *Result, err error)

// FallbackParser is tried when the primary parser fails, mirroring DuckDB's
// extension parser chain. It returns ok=false to pass to the next parser.
type FallbackParser func(sql string) (stmt sqlparser.Statement, ok bool, err error)

// trigger is a registered row-level trigger.
type trigger struct {
	name    string
	events  map[TriggerEvent]bool
	handler TriggerFunc
}

// DB is an embedded database instance.
type DB struct {
	Name    string
	dialect Dialect

	mu  sync.Mutex
	cat *catalog.Catalog

	pragmas map[string]string

	fallbacks    []FallbackParser
	hooks        []StatementHook
	triggers     map[string][]*trigger // table -> triggers
	trigHandlers map[string]TriggerFunc

	// DisableTriggers suppresses trigger firing (used by internal writes).
	triggersOff bool

	txn *txnState

	// Prepared-statement plan cache. PrepareScript marks its statements'
	// SELECT bodies; PlanSelect then caches their bound+optimized plans so
	// hot prepared scripts (IVM propagation re-runs the same generated
	// statements on every refresh) skip binding and optimization entirely.
	// schemaEpoch invalidates the cache on anything that could change a
	// plan: DDL (tables, views, indexes, triggers) and pragma writes
	// (batch_size/workers become plan.Hint nodes). Plans holding lazily
	// cached query results (scalar/IN subqueries) are never cached — see
	// expr.Reusable.
	schemaEpoch int64
	prepared    map[*sqlparser.SelectStmt]bool
	planCache   map[*sqlparser.SelectStmt]cachedPlan
}

// cachedPlan is one plan-cache entry, valid while the schema epoch holds.
type cachedPlan struct {
	node  plan.Node
	epoch int64
}

// preparedMarkerCap bounds the prepared-statement marker set (and with it
// the plan cache, which only ever holds marked statements): beyond it,
// PrepareScript stops marking new statements rather than grow without
// limit under a caller that re-prepares the same script per request.
// Unmarked statements still execute correctly — they just re-plan.
const preparedMarkerCap = 4096

// Open creates a fresh in-memory database with the given dialect.
func Open(name string, dialect Dialect) *DB {
	return &DB{
		Name:         name,
		dialect:      dialect,
		cat:          catalog.New(),
		pragmas:      map[string]string{},
		triggers:     map[string][]*trigger{},
		trigHandlers: map[string]TriggerFunc{},
		prepared:     map[*sqlparser.SelectStmt]bool{},
		planCache:    map[*sqlparser.SelectStmt]cachedPlan{},
	}
}

// bumpSchemaEpoch invalidates every cached prepared-statement plan. The
// cache map is cleared outright: invalidated entries could never hit
// again (their epoch can't recur), so dropping them frees the dead plan
// trees instead of retaining them for the life of the DB. The prepared
// marker set survives — prepared scripts outlive unrelated DDL and
// re-enter the cache on their next execution.
func (db *DB) bumpSchemaEpoch() {
	db.mu.Lock()
	db.schemaEpoch++
	clear(db.planCache)
	db.mu.Unlock()
}

// Catalog exposes the catalog (used by the IVM compiler and tests).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Dialect returns the database's SQL dialect.
func (db *DB) Dialect() Dialect { return db.dialect }

// Pragma returns a pragma value ("" when unset).
func (db *DB) Pragma(name string) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pragmas[strings.ToLower(name)]
}

// SetPragma sets a pragma programmatically.
func (db *DB) SetPragma(name, value string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pragmas[strings.ToLower(name)] = value
	// Pragmas flow into plans (batch_size/workers as Hint nodes), so any
	// change invalidates cached prepared-statement plans (cleared like
	// bumpSchemaEpoch — dead entries would never hit again).
	db.schemaEpoch++
	clear(db.planCache)
}

// setPragmaChecked validates engine-owned pragmas before storing them.
func (db *DB) setPragmaChecked(name, value string) error {
	if strings.EqualFold(name, "batch_size") {
		if n, err := strconv.Atoi(strings.TrimSpace(value)); err != nil || n <= 0 {
			return fmt.Errorf("engine: PRAGMA batch_size requires a positive integer, got %q", value)
		}
	}
	if strings.EqualFold(name, "workers") {
		if n, err := strconv.Atoi(strings.TrimSpace(value)); err != nil || n < 0 {
			return fmt.Errorf("engine: PRAGMA workers requires a non-negative integer (1 = serial, 0 = one per CPU), got %q", value)
		}
	}
	db.SetPragma(name, value)
	return nil
}

// intPragma returns a positive-integer pragma's value (0 when unset or
// unparsable, meaning the executor default).
func (db *DB) intPragma(name string) int {
	if s := db.Pragma(name); s != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// batchSize returns the execution batch size selected by PRAGMA
// batch_size (0 when unset, meaning the executor default).
func (db *DB) batchSize() int { return db.intPragma("batch_size") }

// workers returns the scan parallelism selected by PRAGMA workers (0 when
// unset: the executor defaults to one worker per CPU).
func (db *DB) workers() int { return db.intPragma("workers") }

// RegisterFallbackParser appends a parser tried when the main parse fails.
func (db *DB) RegisterFallbackParser(p FallbackParser) { db.fallbacks = append(db.fallbacks, p) }

// RegisterStatementHook appends a pre-execution statement hook.
func (db *DB) RegisterStatementHook(h StatementHook) { db.hooks = append(db.hooks, h) }

// RegisterTriggerHandler names a trigger implementation so CREATE TRIGGER
// ... EXECUTE 'name' can reference it.
func (db *DB) RegisterTriggerHandler(name string, fn TriggerFunc) {
	db.trigHandlers[strings.ToLower(name)] = fn
}

// AddTrigger registers a row-level trigger programmatically.
func (db *DB) AddTrigger(table, name string, events []TriggerEvent, fn TriggerFunc) {
	tr := &trigger{name: name, events: map[TriggerEvent]bool{}, handler: fn}
	for _, e := range events {
		tr.events[e] = true
	}
	key := strings.ToLower(table)
	db.triggers[key] = append(db.triggers[key], tr)
}

// WithoutTriggers runs fn with trigger firing suppressed — the engine's own
// internal writes (e.g. IVM propagation filling delta tables) must not
// re-enter delta capture.
func (db *DB) WithoutTriggers(fn func() error) error {
	db.triggersOff = true
	defer func() { db.triggersOff = false }()
	return fn()
}

// wantsTriggerRows reports whether any trigger would currently fire for
// the event — i.e. whether DML must snapshot affected rows it otherwise
// would not need.
func (db *DB) wantsTriggerRows(table string, ev TriggerEvent) bool {
	if db.triggersOff {
		return false
	}
	for _, tr := range db.triggers[strings.ToLower(table)] {
		if tr.events[ev] {
			return true
		}
	}
	return false
}

func (db *DB) fire(table string, ev TriggerEvent, oldRows, newRows []sqltypes.Row) error {
	if db.triggersOff || len(oldRows)+len(newRows) == 0 {
		return nil
	}
	for _, tr := range db.triggers[strings.ToLower(table)] {
		if tr.events[ev] {
			if err := tr.handler(db, table, ev, oldRows, newRows); err != nil {
				return fmt.Errorf("trigger %s: %w", tr.name, err)
			}
		}
	}
	return nil
}

// Parse parses one statement, consulting fallback parsers on failure.
func (db *DB) Parse(sql string) (sqlparser.Statement, error) {
	stmt, err := sqlparser.Parse(sql)
	if err == nil {
		return stmt, nil
	}
	for _, fp := range db.fallbacks {
		if st, ok, ferr := fp(sql); ok {
			return st, ferr
		}
	}
	return nil, err
}

// Exec parses and executes a single statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := db.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// ExecScript executes a semicolon-separated script, returning the last
// statement's result.
func (db *DB) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		// Retry statement-by-statement so fallback parsers get a chance.
		return db.execScriptWithFallback(sql)
	}
	var last *Result
	for _, st := range stmts {
		r, err := db.ExecStmt(st)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// PrepareScript parses a script into its statements once, consulting
// fallback parsers per statement when the main parser rejects the whole
// script. Hot paths (IVM propagation re-runs the same generated script on
// every refresh) cache the result and execute via ExecStmts, skipping the
// per-refresh parse.
func (db *DB) PrepareScript(sql string) ([]sqlparser.Statement, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		stmts = nil
		for _, piece := range SplitStatements(sql) {
			st, perr := db.Parse(piece)
			if perr != nil {
				return nil, perr
			}
			stmts = append(stmts, st)
		}
	}
	// Mark the SELECT bodies so PlanSelect caches their plans across
	// executions. Because cached plans carry per-node evaluation scratch,
	// one prepared statement list must not be executed from multiple
	// goroutines at once (the IVM refresh path serializes on refreshMu).
	db.mu.Lock()
	// The marker set is expected to stay small (one entry per prepared
	// script statement — the IVM extension prepares each propagation
	// script once). A caller that re-prepares per request would grow it
	// without bound, so past a generous cap newly prepared statements
	// simply run uncached (they re-plan per execution, which is the
	// pre-cache behavior); statements already marked keep their caching.
	mark := func(sel *sqlparser.SelectStmt) {
		if len(db.prepared) < preparedMarkerCap {
			db.prepared[sel] = true
		}
	}
	for _, st := range stmts {
		switch x := st.(type) {
		case *sqlparser.SelectStmt:
			mark(x)
		case *sqlparser.InsertStmt:
			if x.Select != nil {
				mark(x.Select)
			}
		}
	}
	db.mu.Unlock()
	return stmts, nil
}

// ExecStmts executes pre-parsed statements in order, returning the last
// result. Statements are bound and planned fresh on every call, so a
// prepared script observes current table contents like re-parsed SQL.
func (db *DB) ExecStmts(stmts []sqlparser.Statement) (*Result, error) {
	var last *Result
	for _, st := range stmts {
		r, err := db.ExecStmt(st)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// execScriptWithFallback splits naively on top-level semicolons and runs
// each piece through Exec (which consults fallback parsers).
func (db *DB) execScriptWithFallback(sql string) (*Result, error) {
	var last *Result
	for _, piece := range SplitStatements(sql) {
		r, err := db.Exec(piece)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// SplitStatements splits a script on semicolons outside quotes.
func SplitStatements(sql string) []string {
	var out []string
	depth := 0
	var sb strings.Builder
	inStr := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case inStr:
			sb.WriteByte(c)
			if c == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					sb.WriteByte(sql[i+1])
					i++
				} else {
					inStr = false
				}
			}
		case c == '\'':
			inStr = true
			sb.WriteByte(c)
		case c == '(':
			depth++
			sb.WriteByte(c)
		case c == ')':
			depth--
			sb.WriteByte(c)
		case c == ';' && depth == 0:
			if s := strings.TrimSpace(sb.String()); s != "" {
				out = append(out, s)
			}
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(sb.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// Query is Exec restricted to row-returning statements (for readability at
// call sites).
func (db *DB) Query(sql string) (*Result, error) { return db.Exec(sql) }

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	// Statement hooks first (IVM interception etc.).
	for _, h := range db.hooks {
		handled, res, err := h(db, stmt)
		if err != nil {
			return nil, err
		}
		if handled {
			return res, nil
		}
	}

	switch st := stmt.(type) {
	case *sqlparser.SelectStmt:
		return db.execSelect(st)
	case *sqlparser.CreateTableStmt:
		return db.execCreateTable(st)
	case *sqlparser.CreateIndexStmt:
		return db.execCreateIndex(st)
	case *sqlparser.CreateViewStmt:
		if st.Materialized {
			return nil, fmt.Errorf("engine: CREATE MATERIALIZED VIEW requires the IVM extension (openivm/internal/ivmext)")
		}
		defer db.bumpSchemaEpoch() // after the mutation; see execCreateTable
		if err := db.cat.CreateView(st.Name, st.SourceSQL); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropStmt:
		return db.execDrop(st)
	case *sqlparser.InsertStmt:
		return db.execInsert(st)
	case *sqlparser.UpdateStmt:
		return db.execUpdate(st)
	case *sqlparser.DeleteStmt:
		return db.execDelete(st)
	case *sqlparser.TruncateStmt:
		return db.execTruncate(st)
	case *sqlparser.BeginStmt:
		return db.execBegin()
	case *sqlparser.CommitStmt:
		return db.execCommit()
	case *sqlparser.RollbackStmt:
		return db.execRollback()
	case *sqlparser.PragmaStmt:
		if err := db.setPragmaChecked(st.Name, st.Value); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.ExplainStmt:
		return db.execExplain(st)
	case *sqlparser.CreateTriggerStmt:
		return db.execCreateTrigger(st)
	case *sqlparser.RefreshStmt:
		return nil, fmt.Errorf("engine: REFRESH MATERIALIZED VIEW requires the IVM extension")
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// newBinder builds a binder with scalar-subquery support wired to this DB.
func (db *DB) newBinder() *plan.Binder {
	b := plan.NewBinder(db.cat)
	b.SubqueryFn = func(sel *sqlparser.SelectStmt) (expr.Expr, error) {
		return newLazySubquery(db, sel), nil
	}
	b.SubqueryRowsFn = func(sel *sqlparser.SelectStmt) (func() ([]sqltypes.Value, error), error) {
		var cached []sqltypes.Value
		done := false
		return func() ([]sqltypes.Value, error) {
			if done {
				return cached, nil
			}
			n, err := db.PlanSelect(sel)
			if err != nil {
				return nil, err
			}
			rows, err := exec.Run(n)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if len(r) != 1 {
					return nil, fmt.Errorf("engine: IN subquery must return one column")
				}
				cached = append(cached, r[0])
			}
			done = true
			return cached, nil
		}, nil
	}
	return b
}

// PlanSelect binds and optimizes a SELECT, returning the logical plan.
// Exposed for the IVM compiler, which rewrites view plans. When PRAGMA
// batch_size or PRAGMA workers is set, the root is wrapped in a plan.Hint
// so the executor runs the whole tree with the requested knobs.
func (db *DB) PlanSelect(sel *sqlparser.SelectStmt) (plan.Node, error) {
	db.mu.Lock()
	if cp, ok := db.planCache[sel]; ok && cp.epoch == db.schemaEpoch {
		db.mu.Unlock()
		return cp.node, nil
	}
	cacheWanted := db.prepared[sel]
	epoch := db.schemaEpoch
	db.mu.Unlock()

	n, err := db.newBinder().BindSelect(sel)
	if err != nil {
		return nil, err
	}
	n = optimizer.Optimize(n)
	if bs, w := db.batchSize(), db.workers(); bs > 0 || w > 0 {
		n = &plan.Hint{Input: n, BatchSize: bs, Workers: w}
	}
	if cacheWanted && planCacheable(n) {
		db.mu.Lock()
		if db.schemaEpoch == epoch { // schema unchanged while planning
			db.planCache[sel] = cachedPlan{node: n, epoch: epoch}
		}
		db.mu.Unlock()
	}
	return n, nil
}

// planCacheable reports whether a bound plan may be re-executed verbatim:
// every expression in every node must be expr.Reusable (no lazily cached
// subquery results — see the field comment on DB.planCache). Unknown node
// kinds refuse, keeping the default conservative if new plan nodes appear.
func planCacheable(n plan.Node) bool {
	ok := true
	plan.Walk(n, func(nd plan.Node) bool {
		switch x := nd.(type) {
		case *plan.Scan:
			ok = ok && expr.Reusable(x.Filter)
		case *plan.Filter:
			ok = ok && expr.Reusable(x.Pred)
		case *plan.Project:
			for _, e := range x.Exprs {
				ok = ok && expr.Reusable(e)
			}
		case *plan.Aggregate:
			for _, g := range x.GroupBy {
				ok = ok && expr.Reusable(g)
			}
			for _, a := range x.Aggs {
				ok = ok && expr.Reusable(a.Arg)
			}
		case *plan.Join:
			ok = ok && expr.Reusable(x.On)
		case *plan.Sort:
			for _, k := range x.Keys {
				ok = ok && expr.Reusable(k.Expr)
			}
		case *plan.Values:
			for _, row := range x.Rows {
				for _, e := range row {
					ok = ok && expr.Reusable(e)
				}
			}
		case *plan.Distinct, *plan.Limit, *plan.SetOp, *plan.Hint:
		default:
			ok = false
		}
		return ok
	})
	return ok
}

func (db *DB) execSelect(sel *sqlparser.SelectStmt) (*Result, error) {
	n, err := db.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Run(n)
	if err != nil {
		return nil, err
	}
	res := &Result{Rows: rows}
	for _, c := range n.Schema() {
		res.Columns = append(res.Columns, c.Name)
	}
	return res, nil
}

func (db *DB) execExplain(st *sqlparser.ExplainStmt) (*Result, error) {
	sel, ok := st.Stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
	}
	n, err := db.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan.Explain(n), "\n"), "\n") {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewString(line)})
	}
	return res, nil
}

func (db *DB) execCreateTable(st *sqlparser.CreateTableStmt) (*Result, error) {
	// Deferred: the epoch must move only after the catalog mutation is
	// visible, or a concurrently-planning prepared statement could cache a
	// pre-DDL plan under the post-DDL epoch and never be invalidated.
	defer db.bumpSchemaEpoch()
	if st.AsSelect != nil {
		n, err := db.PlanSelect(st.AsSelect)
		if err != nil {
			return nil, err
		}
		rows, err := exec.Run(n)
		if err != nil {
			return nil, err
		}
		var cols []catalog.Column
		for _, c := range n.Schema() {
			t := c.Type
			if t == sqltypes.TypeAny || t == sqltypes.TypeNull {
				t = sqltypes.TypeString
			}
			cols = append(cols, catalog.Column{Name: c.Name, Type: t})
		}
		tbl, err := db.cat.CreateTable(st.Name, cols, nil, st.IfNotExists)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := tbl.Insert(r); err != nil {
				return nil, err
			}
		}
		return &Result{RowsAffected: len(rows)}, nil
	}
	var cols []catalog.Column
	for _, cd := range st.Columns {
		col := catalog.Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull}
		if cd.Default != nil {
			b := db.newBinder()
			e, err := b.BindExprNoInput(cd.Default)
			if err != nil {
				return nil, fmt.Errorf("engine: DEFAULT for %s: %w", cd.Name, err)
			}
			v, err := e.Eval(nil)
			if err != nil {
				return nil, err
			}
			col.Default = v
			col.HasDef = true
		}
		cols = append(cols, col)
	}
	if _, err := db.cat.CreateTable(st.Name, cols, st.PrimaryKey, st.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) execCreateIndex(st *sqlparser.CreateIndexStmt) (*Result, error) {
	defer db.bumpSchemaEpoch() // after the mutation; see execCreateTable
	tbl, err := db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if _, err := tbl.CreateIndex(st.Name, st.Columns, st.Unique, st.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) execDrop(st *sqlparser.DropStmt) (*Result, error) {
	defer db.bumpSchemaEpoch() // after the mutation; see execCreateTable
	switch st.Kind {
	case "TABLE":
		if err := db.cat.DropTable(st.Name, st.IfExists); err != nil {
			return nil, err
		}
	case "VIEW":
		// Materialized views are stored as tables + metadata (+ an exposed
		// plain view under AVG decomposition).
		if m, ok := db.cat.IVM(st.Name); ok {
			db.cat.DropIVM(st.Name)
			db.cat.DropView(st.Name, true)
			storage := m.StorageTable
			if storage == "" {
				storage = st.Name
			}
			return &Result{}, db.cat.DropTable(storage, true)
		}
		if err := db.cat.DropView(st.Name, st.IfExists); err != nil {
			return nil, err
		}
	case "INDEX":
		return nil, fmt.Errorf("engine: DROP INDEX not supported")
	}
	return &Result{}, nil
}

func (db *DB) execCreateTrigger(st *sqlparser.CreateTriggerStmt) (*Result, error) {
	defer db.bumpSchemaEpoch() // after the mutation; see execCreateTable
	fn, ok := db.trigHandlers[strings.ToLower(st.Handler)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown trigger handler %q", st.Handler)
	}
	var events []TriggerEvent
	for _, e := range st.Events {
		events = append(events, TriggerEvent(e))
	}
	db.AddTrigger(st.Table, st.Name, events, fn)
	return &Result{}, nil
}
