// Package engine implements the embedded SQL database used throughout this
// reproduction — the stand-in for DuckDB (and, with the Postgres dialect,
// for PostgreSQL) in the paper's architecture. It wires the parser, binder,
// optimizer and executor together and exposes the extension points OpenIVM
// relies on:
//
//   - fallback parsers, tried when the main parser rejects a statement
//     (the paper's CREATE MATERIALIZED VIEW fallback-parser mechanism);
//   - statement hooks, which intercept statements before execution (the
//     paper's optimizer-rule injection used to reroute base-table DML into
//     delta tables and trigger propagation);
//   - row-level triggers, the PostgreSQL-side delta-capture mechanism;
//   - pragmas, the paper's "compiler switches" controlling IVM strategy.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"openivm/internal/catalog"
	"openivm/internal/enginerr"
	"openivm/internal/exec"
	"openivm/internal/expr"
	"openivm/internal/mvcc"
	"openivm/internal/optimizer"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
	"openivm/internal/storage"
)

// Dialect selects SQL dialect behaviour for statements whose syntax differs
// across systems.
type Dialect int

// Dialects.
const (
	DialectDuckDB Dialect = iota
	DialectPostgres
)

// String names the dialect.
func (d Dialect) String() string {
	if d == DialectPostgres {
		return "postgres"
	}
	return "duckdb"
}

// Result carries the outcome of a statement.
type Result struct {
	Columns      []string
	Rows         []sqltypes.Row
	RowsAffected int
}

// TriggerEvent identifies the DML kind a trigger fires for.
type TriggerEvent string

// Trigger events.
const (
	TrigInsert TriggerEvent = "INSERT"
	TrigDelete TriggerEvent = "DELETE"
	TrigUpdate TriggerEvent = "UPDATE"
)

// TriggerFunc receives the affected rows after a DML statement commits.
// For UPDATE both oldRows and newRows are set pairwise; for INSERT only
// newRows; for DELETE only oldRows.
type TriggerFunc func(db *DB, table string, event TriggerEvent, oldRows, newRows []sqltypes.Row) error

// StatementHook may intercept a parsed statement before standard execution.
// Returning handled=true short-circuits. The hook receives the executing
// session, so it can distinguish extension-internal sessions (see
// Session.SetInternal) from user connections.
type StatementHook func(s *Session, stmt sqlparser.Statement) (handled bool, res *Result, err error)

// FallbackParser is tried when the primary parser fails, mirroring DuckDB's
// extension parser chain. It returns ok=false to pass to the next parser.
type FallbackParser func(sql string) (stmt sqlparser.Statement, ok bool, err error)

// trigger is a registered row-level trigger.
type trigger struct {
	name    string
	events  map[TriggerEvent]bool
	handler TriggerFunc
}

// DB is an embedded database instance. A DB is safe for concurrent use by
// multiple sessions: per-connection execution state (transactions, trigger
// suppression, execution pragmas, cancellation) lives in Session, while
// the DB holds only shared state — catalog, triggers, hooks, the schema
// epoch and the plan caches — each behind its own lock. The DB's own
// Exec/Query/... methods delegate to a built-in default session, so
// single-connection callers keep the historical API.
type DB struct {
	Name    string
	dialect Dialect

	mu  sync.Mutex
	cat *catalog.Catalog

	// pragmas are the engine-global defaults; sessions overlay
	// batch_size/workers locally (see Session.SetPragma).
	pragmas map[string]string

	fallbacks []FallbackParser
	hooks     []StatementHook

	// ivmStats is the IVM extension's stats snapshot callback (nil until
	// an extension installs one via SetIVMStatsSource).
	ivmStats func() IVMStats

	// trigMu guards the trigger registry: CREATE MATERIALIZED VIEW installs
	// capture triggers at runtime while concurrent sessions' DML reads the
	// registry to fire them.
	trigMu       sync.RWMutex
	triggers     map[string][]*trigger // table -> triggers
	trigHandlers map[string]TriggerFunc

	// def is the built-in default session the DB's legacy single-connection
	// API (Exec, Query, WithoutTriggers, ...) delegates to.
	def *Session

	// Prepared-statement plan cache. PrepareScript marks its statements'
	// SELECT bodies; PlanSelect then caches their bound+optimized plans so
	// hot prepared scripts (IVM propagation re-runs the same generated
	// statements on every refresh) skip binding and optimization entirely.
	// schemaEpoch invalidates the cache on anything that could change a
	// plan: DDL (tables, views, indexes, triggers) and pragma writes
	// (batch_size/workers become plan.Hint nodes). Plans holding lazily
	// cached query results (scalar/IN subqueries) are never cached — see
	// expr.Reusable. Unprepare releases markers and entries when a prepared
	// script is discarded (materialized-view drop), so churning through
	// many prepared scripts cannot permanently exhaust the marker cap.
	schemaEpoch int64
	prepared    map[*sqlparser.SelectStmt]bool
	planCache   map[*sqlparser.SelectStmt]cachedPlan

	// stmts is the general SQL-text keyed plan cache shared across
	// sessions: LRU-bounded, schema-epoch invalidated, keyed by (text,
	// batch_size, workers) so sessions with different execution knobs never
	// share a Hint. Only plans safe for concurrent re-execution enter it —
	// see planShareable.
	stmts *stmtCache

	// sessMu guards sessions, the token registry of live sessions. The
	// wire protocol's out-of-band cancel op resolves its token here to
	// interrupt another connection's in-flight statement; entries are
	// removed on Session.Close.
	sessMu   sync.Mutex
	sessions map[string]*Session

	// backend is the storage backend (storage.MemBackend unless
	// AttachBackend installed a durable one). logging flips on once
	// AttachBackend finishes recovery: from then on committed DML and
	// DDL produce redo records. backendMu guards the pointer itself —
	// normally set once during instance setup, but a degraded re-attach
	// (see robustness.go) swaps it while stats readers are live; read it
	// through db.be().
	backendMu sync.RWMutex
	backend   storage.Backend
	logging   atomic.Bool

	// ckptMu serializes checkpoint attempts (NeedCheckpoint can trip in
	// several sessions at once).
	ckptMu sync.Mutex

	// degr is the read-only degraded-mode state (see robustness.go);
	// panicsRecovered counts statement panics converted to XX000 errors.
	degr            degradedState
	panicsRecovered atomic.Int64
}

// cachedPlan is one plan-cache entry, valid while the schema epoch holds
// and only for a session whose execution knobs match the Hint baked into
// the plan (batchSize/workers record the knob values at plan time, so a
// session with a different session-local PRAGMA overlay re-plans instead
// of inheriting another session's parallelism).
type cachedPlan struct {
	node      plan.Node
	epoch     int64
	batchSize int
	workers   int
}

// preparedMarkerCap bounds the prepared-statement marker set (and with it
// the plan cache, which only ever holds marked statements): beyond it,
// PrepareScript stops marking new statements rather than grow without
// limit under a caller that re-prepares the same script per request.
// Unmarked statements still execute correctly — they just re-plan.
const preparedMarkerCap = 4096

// Open creates a fresh in-memory database with the given dialect.
func Open(name string, dialect Dialect) *DB {
	db := &DB{
		Name:         name,
		dialect:      dialect,
		cat:          catalog.New(),
		pragmas:      map[string]string{},
		triggers:     map[string][]*trigger{},
		trigHandlers: map[string]TriggerFunc{},
		prepared:     map[*sqlparser.SelectStmt]bool{},
		planCache:    map[*sqlparser.SelectStmt]cachedPlan{},
		stmts:        newStmtCache(stmtCacheSize),
		sessions:     map[string]*Session{},
		backend:      storage.MemBackend{},
	}
	db.def = db.NewSession()
	return db
}

// bumpSchemaEpoch invalidates every cached prepared-statement plan. The
// cache map is cleared outright: invalidated entries could never hit
// again (their epoch can't recur), so dropping them frees the dead plan
// trees instead of retaining them for the life of the DB. The prepared
// marker set survives — prepared scripts outlive unrelated DDL and
// re-enter the cache on their next execution.
func (db *DB) bumpSchemaEpoch() {
	db.mu.Lock()
	db.schemaEpoch++
	clear(db.planCache)
	db.mu.Unlock()
	db.stmts.clear()
}

// epoch returns the current schema epoch.
func (db *DB) epoch() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.schemaEpoch
}

// Unprepare releases the prepared-statement markers (and any cached
// plans) of a previously prepared script. The IVM extension calls it when
// a materialized view is dropped, so its propagation scripts stop holding
// marker slots — without this, a process churning through many prepared
// scripts would hit the marker cap and new scripts would run uncached
// forever.
func (db *DB) Unprepare(stmts []sqlparser.Statement) {
	db.mu.Lock()
	defer db.mu.Unlock()
	drop := func(sel *sqlparser.SelectStmt) {
		delete(db.prepared, sel)
		delete(db.planCache, sel)
	}
	for _, st := range stmts {
		switch x := st.(type) {
		case *sqlparser.SelectStmt:
			drop(x)
		case *sqlparser.InsertStmt:
			if x.Select != nil {
				drop(x.Select)
			}
		}
	}
}

// PreparedCount returns the number of marked prepared statements (tests
// and monitoring).
func (db *DB) PreparedCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.prepared)
}

// registerSession enters a session into the token registry.
func (db *DB) registerSession(s *Session) {
	db.sessMu.Lock()
	db.sessions[s.token] = s
	db.sessMu.Unlock()
}

// dropSession removes a session from the token registry (idempotent).
func (db *DB) dropSession(s *Session) {
	db.sessMu.Lock()
	delete(db.sessions, s.token)
	db.sessMu.Unlock()
}

// SessionByToken resolves a session token to its live session — the
// lookup behind the wire protocol's out-of-band cancel op. Returns false
// for unknown (or already closed) tokens.
func (db *DB) SessionByToken(token string) (*Session, bool) {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	s, ok := db.sessions[token]
	return s, ok
}

// Catalog exposes the catalog (used by the IVM compiler and tests).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// TxnStats returns the MVCC transaction-layer counters: active
// transactions, commit/conflict totals, reclaimed versions and the age of
// the oldest pinned snapshot.
func (db *DB) TxnStats() mvcc.Stats { return db.cat.MVCC().Stats() }

// IVMStats is the engine-level snapshot of the IVM refresh scheduler's
// counters, populated by the extension through SetIVMStatsSource. All
// zeros when no IVM extension is installed.
type IVMStats struct {
	// Refreshes counts completed propagations (refresh groups applied).
	Refreshes int64
	// ParallelRefreshes counts propagations that overlapped in time with
	// at least one other in-flight propagation.
	ParallelRefreshes int64
	// GenerationsSealed counts delta-table generations sealed (drained
	// from the open ΔT into its sealed twin).
	GenerationsSealed int64
	// GenerationsPending is a gauge: delta tables currently holding
	// unconsumed rows (open or sealed).
	GenerationsPending int64
	// CaptureStallNanos is the cumulative time writers spent waiting on
	// the capture append lock — bounded by generation seal, never by a
	// whole propagation.
	CaptureStallNanos int64
	// DeltaRowsCaptured counts rows appended to delta tables by capture.
	DeltaRowsCaptured int64
}

// SetIVMStatsSource installs the callback IVMStats snapshots come from.
// Called once by the IVM extension at install time, before any stats
// reader can run.
func (db *DB) SetIVMStatsSource(fn func() IVMStats) { db.ivmStats = fn }

// IVMStats snapshots the IVM scheduler counters (zero without an
// installed source).
func (db *DB) IVMStats() IVMStats {
	if db.ivmStats == nil {
		return IVMStats{}
	}
	return db.ivmStats()
}

// Vacuum synchronously reclaims row versions dead behind the oldest
// active snapshot, returning how many were removed (maintenance and
// test hook; the background sweeper does this incrementally).
func (db *DB) Vacuum() int { return db.cat.MVCC().Vacuum() }

// IsSerializationError reports whether err is an MVCC write-write
// conflict (first-committer-wins). The losing transaction has been
// rolled back; clients should retry it from BEGIN.
func IsSerializationError(err error) bool { return mvcc.IsSerialization(err) }

// Code returns the SQLSTATE class carried by err ("" when
// unclassified): 40001 serialization conflict, 23505 duplicate key,
// 42P01 undefined table, XX001 recovery corruption. It is the single
// classification point shared by the engine, the wire server's
// Response.Code, and streaming trailers.
func Code(err error) string { return enginerr.CodeOf(err) }

// Dialect returns the database's SQL dialect.
func (db *DB) Dialect() Dialect { return db.dialect }

// Pragma returns a pragma value ("" when unset).
func (db *DB) Pragma(name string) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pragmas[strings.ToLower(name)]
}

// SetPragma sets an engine-global pragma programmatically (session-local
// overlays go through Session.SetPragma).
func (db *DB) SetPragma(name, value string) {
	db.mu.Lock()
	db.pragmas[strings.ToLower(name)] = value
	// Pragmas flow into plans (batch_size/workers as Hint nodes), so any
	// change invalidates cached prepared-statement plans (cleared like
	// bumpSchemaEpoch — dead entries would never hit again).
	db.schemaEpoch++
	clear(db.planCache)
	db.mu.Unlock()
	db.stmts.clear()
}

// RegisterFallbackParser appends a parser tried when the main parse fails.
func (db *DB) RegisterFallbackParser(p FallbackParser) { db.fallbacks = append(db.fallbacks, p) }

// RegisterStatementHook appends a pre-execution statement hook.
func (db *DB) RegisterStatementHook(h StatementHook) { db.hooks = append(db.hooks, h) }

// RegisterTriggerHandler names a trigger implementation so CREATE TRIGGER
// ... EXECUTE 'name' can reference it.
func (db *DB) RegisterTriggerHandler(name string, fn TriggerFunc) {
	db.trigHandlers[strings.ToLower(name)] = fn
}

// AddTrigger registers a row-level trigger programmatically.
func (db *DB) AddTrigger(table, name string, events []TriggerEvent, fn TriggerFunc) {
	tr := &trigger{name: name, events: map[TriggerEvent]bool{}, handler: fn}
	for _, e := range events {
		tr.events[e] = true
	}
	key := strings.ToLower(table)
	db.trigMu.Lock()
	db.triggers[key] = append(db.triggers[key], tr)
	db.trigMu.Unlock()
}

// RemoveTrigger deregisters a trigger by table and name (the IVM
// extension removes a base table's delta-capture trigger when the last
// view fed by it is dropped). Unknown names are a no-op.
func (db *DB) RemoveTrigger(table, name string) {
	key := strings.ToLower(table)
	db.trigMu.Lock()
	defer db.trigMu.Unlock()
	trs := db.triggers[key]
	for i, tr := range trs {
		if strings.EqualFold(tr.name, name) {
			// Copy-on-write removal: sessions iterating a previously read
			// slice header keep a consistent view.
			next := make([]*trigger, 0, len(trs)-1)
			next = append(next, trs[:i]...)
			next = append(next, trs[i+1:]...)
			if len(next) == 0 {
				delete(db.triggers, key)
			} else {
				db.triggers[key] = next
			}
			return
		}
	}
}

// triggersFor returns the current trigger list for a table; the returned
// slice is immutable (registration replaces the slice header under
// trigMu), so callers may iterate it lock-free.
func (db *DB) triggersFor(table string) []*trigger {
	db.trigMu.RLock()
	defer db.trigMu.RUnlock()
	return db.triggers[strings.ToLower(table)]
}

// WithoutTriggers runs fn on the default session with trigger firing
// suppressed (see Session.WithoutTriggers). Suppression is per session:
// one session's internal writes never disable another session's delta
// capture.
func (db *DB) WithoutTriggers(fn func() error) error {
	return db.def.WithoutTriggers(fn)
}

// wantsTriggerRows reports whether any trigger would currently fire for
// the event in this session — i.e. whether DML must snapshot affected
// rows it otherwise would not need.
func (s *Session) wantsTriggerRows(table string, ev TriggerEvent) bool {
	if s.trigOff.Load() > 0 {
		return false
	}
	for _, tr := range s.db.triggersFor(table) {
		if tr.events[ev] {
			return true
		}
	}
	return false
}

// fire invokes the table's triggers for the event unless this session has
// suppressed them.
func (s *Session) fire(table string, ev TriggerEvent, oldRows, newRows []sqltypes.Row) error {
	if s.trigOff.Load() > 0 {
		return nil
	}
	return s.fireForce(table, ev, oldRows, newRows)
}

// fireForce is fire without the suppression check — COMMIT-deferred
// events use it so delivery mirrors the suppression state captured at
// DML time even when it has changed since (see fireTxn).
func (s *Session) fireForce(table string, ev TriggerEvent, oldRows, newRows []sqltypes.Row) error {
	if len(oldRows)+len(newRows) == 0 {
		return nil
	}
	for _, tr := range s.db.triggersFor(table) {
		if tr.events[ev] {
			if err := tr.handler(s.db, table, ev, oldRows, newRows); err != nil {
				return fmt.Errorf("trigger %s: %w", tr.name, err)
			}
		}
	}
	return nil
}

// Parse parses one statement, consulting fallback parsers on failure.
func (db *DB) Parse(sql string) (sqlparser.Statement, error) {
	stmt, err := sqlparser.Parse(sql)
	if err == nil {
		return stmt, nil
	}
	for _, fp := range db.fallbacks {
		if st, ok, ferr := fp(sql); ok {
			return st, ferr
		}
	}
	return nil, err
}

// Exec parses and executes a single statement on the default session.
//
// Deprecated: the default session is shared process-wide state (one
// transaction, one pragma scope). Use NewSession and Session.Exec so
// each caller owns its transaction and settings.
func (db *DB) Exec(sql string) (*Result, error) { return db.def.Exec(sql) }

// ExecScript executes a semicolon-separated script on the default
// session, returning the last statement's result.
//
// Deprecated: use NewSession and Session.ExecScript.
func (db *DB) ExecScript(sql string) (*Result, error) { return db.def.ExecScript(sql) }

// PrepareScript parses a script into its statements once, consulting
// fallback parsers per statement when the main parser rejects the whole
// script. Hot paths (IVM propagation re-runs the same generated script on
// every refresh) cache the result and execute via ExecStmts, skipping the
// per-refresh parse.
func (db *DB) PrepareScript(sql string) ([]sqlparser.Statement, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		stmts = nil
		for _, piece := range SplitStatements(sql) {
			st, perr := db.Parse(piece)
			if perr != nil {
				return nil, perr
			}
			stmts = append(stmts, st)
		}
	}
	// Mark the SELECT bodies so PlanSelect caches their plans across
	// executions. Because cached plans carry per-node evaluation scratch,
	// one prepared statement list must not be executed from multiple
	// goroutines at once (the IVM refresh path serializes on refreshMu).
	db.mu.Lock()
	// The marker set is expected to stay small (one entry per prepared
	// script statement — the IVM extension prepares each propagation
	// script once). A caller that re-prepares per request would grow it
	// without bound, so past a generous cap newly prepared statements
	// simply run uncached (they re-plan per execution, which is the
	// pre-cache behavior); statements already marked keep their caching.
	mark := func(sel *sqlparser.SelectStmt) {
		if len(db.prepared) < preparedMarkerCap {
			db.prepared[sel] = true
		}
	}
	for _, st := range stmts {
		switch x := st.(type) {
		case *sqlparser.SelectStmt:
			mark(x)
		case *sqlparser.InsertStmt:
			if x.Select != nil {
				mark(x.Select)
			}
		}
	}
	db.mu.Unlock()
	return stmts, nil
}

// ExecStmts executes pre-parsed statements on the default session.
//
// Deprecated: use NewSession and Session.ExecStmts.
func (db *DB) ExecStmts(stmts []sqlparser.Statement) (*Result, error) {
	return db.def.ExecStmts(stmts)
}

// SplitStatements splits a script on semicolons outside quotes.
func SplitStatements(sql string) []string {
	var out []string
	depth := 0
	var sb strings.Builder
	inStr := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case inStr:
			sb.WriteByte(c)
			if c == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					sb.WriteByte(sql[i+1])
					i++
				} else {
					inStr = false
				}
			}
		case c == '\'':
			inStr = true
			sb.WriteByte(c)
		case c == '(':
			depth++
			sb.WriteByte(c)
		case c == ')':
			depth--
			sb.WriteByte(c)
		case c == ';' && depth == 0:
			if s := strings.TrimSpace(sb.String()); s != "" {
				out = append(out, s)
			}
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(sb.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// Query is Exec restricted to row-returning statements (for readability at
// call sites).
//
// Deprecated: use NewSession and Session.Query.
func (db *DB) Query(sql string) (*Result, error) { return db.Exec(sql) }

// ExecStmt executes a parsed statement on the default session.
//
// Deprecated: use NewSession and Session.ExecStmt.
func (db *DB) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	return db.def.ExecStmt(stmt)
}

// ApplyDeltaRow replays one captured delta row on the default session.
//
// Deprecated: use NewSession and Session.ApplyDeltaRow.
func (db *DB) ApplyDeltaRow(table string, row sqltypes.Row, mult bool) error {
	return db.def.ApplyDeltaRow(table, row, mult)
}

// PlanSelect binds and optimizes a SELECT on the default session (exposed
// for the IVM compiler, which rewrites view plans).
func (db *DB) PlanSelect(sel *sqlparser.SelectStmt) (plan.Node, error) {
	return db.def.PlanSelect(sel)
}

// execStmtInner runs the hook pass and dispatches a parsed statement.
// ctx cancels any query execution the statement performs. Callers go
// through execStmt (robustness.go), which layers the degraded-mode
// write rejection and panic isolation on top.
func (s *Session) execStmtInner(ctx context.Context, stmt sqlparser.Statement) (*Result, error) {
	// Statement hooks first (IVM interception etc.). A hook-handled
	// schema change (materialized-view create/drop) is logged here —
	// the engine's own DDL cases below never see it.
	for _, h := range s.db.hooks {
		handled, res, err := h(s, stmt)
		if err != nil {
			return nil, err
		}
		if handled {
			if lerr := s.logHookDDL(stmt); lerr != nil {
				return res, lerr
			}
			return res, nil
		}
	}

	switch st := stmt.(type) {
	case *sqlparser.SelectStmt:
		return s.execSelect(ctx, st)
	case *sqlparser.CreateTableStmt:
		return s.execCreateTable(ctx, st)
	case *sqlparser.CreateIndexStmt:
		return s.execCreateIndex(st)
	case *sqlparser.CreateViewStmt:
		if st.Materialized {
			return nil, fmt.Errorf("engine: CREATE MATERIALIZED VIEW requires the IVM extension (openivm/internal/ivmext)")
		}
		if err := s.db.cat.CreateView(st.Name, st.SourceSQL); err != nil {
			return nil, err
		}
		s.db.bumpSchemaEpoch() // after the mutation; see execCreateTable
		if s.walLogging() {
			if err := s.appendDDL(&storage.DDLRecord{Kind: storage.DDLCreateView, Name: st.Name, SQL: st.SourceSQL}); err != nil {
				return nil, err
			}
		}
		return &Result{}, nil
	case *sqlparser.DropStmt:
		return s.execDrop(st)
	case *sqlparser.InsertStmt:
		return s.execInsert(ctx, st)
	case *sqlparser.UpdateStmt:
		return s.execUpdate(ctx, st)
	case *sqlparser.DeleteStmt:
		return s.execDelete(ctx, st)
	case *sqlparser.TruncateStmt:
		return s.execTruncate(st)
	case *sqlparser.BeginStmt:
		return s.execBegin()
	case *sqlparser.CommitStmt:
		return s.execCommit()
	case *sqlparser.RollbackStmt:
		return s.execRollback()
	case *sqlparser.PragmaStmt:
		if err := s.setPragmaChecked(st.Name, st.Value); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.ExplainStmt:
		return s.execExplain(st)
	case *sqlparser.CreateTriggerStmt:
		return s.execCreateTrigger(st)
	case *sqlparser.RefreshStmt:
		return nil, fmt.Errorf("engine: REFRESH MATERIALIZED VIEW requires the IVM extension")
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// newBinder builds a binder with scalar-subquery support and the $N
// parameter binding wired to this session (subqueries execute with the
// session's options and context; Param nodes read the session's values at
// Eval time, so prepared plans re-execute against freshly bound params).
func (s *Session) newBinder() *plan.Binder {
	b := plan.NewBinder(s.db.cat)
	b.Params = &s.params
	b.SubqueryFn = func(sel *sqlparser.SelectStmt) (expr.Expr, error) {
		return newLazySubquery(s, sel), nil
	}
	b.SubqueryRowsFn = func(sel *sqlparser.SelectStmt) (func() ([]sqltypes.Value, error), error) {
		var cached []sqltypes.Value
		done := false
		return func() ([]sqltypes.Value, error) {
			if done {
				return cached, nil
			}
			n, err := s.PlanSelect(sel)
			if err != nil {
				return nil, err
			}
			rows, err := exec.RunOpts(n, s.execOptsTxn(s.ctx, s.currentTxn()))
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if len(r) != 1 {
					return nil, fmt.Errorf("engine: IN subquery must return one column")
				}
				cached = append(cached, r[0])
			}
			done = true
			return cached, nil
		}, nil
	}
	return b
}

// PlanSelect binds and optimizes a SELECT, returning the logical plan.
// Exposed for the IVM compiler, which rewrites view plans. When PRAGMA
// batch_size or PRAGMA workers is set (session overlay or global), the
// root is wrapped in a plan.Hint so the executor runs the whole tree with
// the requested knobs.
func (s *Session) PlanSelect(sel *sqlparser.SelectStmt) (plan.Node, error) {
	db := s.db
	bs, w := s.batchSize(), s.workers()
	db.mu.Lock()
	if cp, ok := db.planCache[sel]; ok && cp.epoch == db.schemaEpoch &&
		cp.batchSize == bs && cp.workers == w {
		db.mu.Unlock()
		return cp.node, nil
	}
	cacheWanted := db.prepared[sel]
	epoch := db.schemaEpoch
	db.mu.Unlock()

	n, err := s.newBinder().BindSelect(sel)
	if err != nil {
		return nil, err
	}
	n = optimizer.Optimize(n)
	if bs > 0 || w > 0 {
		n = &plan.Hint{Input: n, BatchSize: bs, Workers: w}
	}
	if cacheWanted && planCacheable(n) {
		db.mu.Lock()
		if db.schemaEpoch == epoch { // schema unchanged while planning
			db.planCache[sel] = cachedPlan{node: n, epoch: epoch, batchSize: bs, workers: w}
		}
		db.mu.Unlock()
	}
	return n, nil
}

// planCacheable reports whether a bound plan may be re-executed verbatim
// (sequentially) on later executions: every expression in every node must
// be expr.Reusable (no lazily cached subquery results — see the field
// comment on DB.planCache). planShareable layers the concurrent-execution
// requirement on top for the shared statement cache.
func planCacheable(n plan.Node) bool {
	return planExprsOK(n, expr.Reusable)
}

// planExprsOK walks a plan and applies one predicate to every expression
// in every known node kind — the single walker behind planCacheable and
// planShareable, so the two cache gates can never drift apart on node
// coverage. Unknown node kinds refuse, keeping the default conservative
// if new plan nodes appear.
func planExprsOK(n plan.Node, pred func(expr.Expr) bool) bool {
	ok := true
	plan.Walk(n, func(nd plan.Node) bool {
		switch x := nd.(type) {
		case *plan.Scan:
			ok = ok && pred(x.Filter)
		case *plan.Filter:
			ok = ok && pred(x.Pred)
		case *plan.Project:
			for _, e := range x.Exprs {
				ok = ok && pred(e)
			}
		case *plan.Aggregate:
			for _, g := range x.GroupBy {
				ok = ok && pred(g)
			}
			for _, a := range x.Aggs {
				ok = ok && pred(a.Arg)
			}
		case *plan.Join:
			ok = ok && pred(x.On)
		case *plan.Sort:
			for _, k := range x.Keys {
				ok = ok && pred(k.Expr)
			}
		case *plan.Values:
			for _, row := range x.Rows {
				for _, e := range row {
					ok = ok && pred(e)
				}
			}
		case *plan.Distinct, *plan.Limit, *plan.SetOp, *plan.Hint:
		default:
			ok = false
		}
		return ok
	})
	return ok
}

func (s *Session) execSelect(ctx context.Context, sel *sqlparser.SelectStmt) (*Result, error) {
	n, err := s.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	return s.runPlan(ctx, n)
}

// runPlan executes a planned SELECT with the session's options and builds
// the result. The statement reads under the session's transaction
// snapshot, or a statement snapshot registered for the duration of the
// run in autocommit.
func (s *Session) runPlan(ctx context.Context, n plan.Node) (*Result, error) {
	opts := s.execOpts(ctx)
	release := s.bindSnap(&opts)
	rows, err := exec.RunOpts(n, opts)
	release()
	if err != nil {
		return nil, err
	}
	res := &Result{Rows: rows}
	for _, c := range n.Schema() {
		res.Columns = append(res.Columns, c.Name)
	}
	return res, nil
}

func (s *Session) execExplain(st *sqlparser.ExplainStmt) (*Result, error) {
	sel, ok := st.Stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
	}
	n, err := s.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan.Explain(n), "\n"), "\n") {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewString(line)})
	}
	return res, nil
}

func (s *Session) execCreateTable(ctx context.Context, st *sqlparser.CreateTableStmt) (*Result, error) {
	// The epoch moves only after the catalog mutation is visible (a
	// concurrently-planning prepared statement could otherwise cache a
	// pre-DDL plan under the post-DDL epoch and never be invalidated), and
	// only when a mutation actually happened: CREATE TABLE IF NOT EXISTS
	// on an existing table — the idempotent init-script pattern — must not
	// flush every session's cached plans.
	created := !s.db.cat.HasTable(st.Name)
	bump := func() {
		if created {
			s.db.bumpSchemaEpoch()
		}
	}
	if st.AsSelect != nil {
		n, err := s.PlanSelect(st.AsSelect)
		if err != nil {
			return nil, err
		}
		rows, err := exec.RunOpts(n, s.execOpts(ctx))
		if err != nil {
			return nil, err
		}
		var cols []catalog.Column
		for _, c := range n.Schema() {
			t := c.Type
			if t == sqltypes.TypeAny || t == sqltypes.TypeNull {
				t = sqltypes.TypeString
			}
			cols = append(cols, catalog.Column{Name: c.Name, Type: t})
		}
		tbl, err := s.db.cat.CreateTable(st.Name, cols, nil, st.IfNotExists)
		if err != nil {
			return nil, err
		}
		bump()
		for _, r := range rows {
			if err := tbl.Insert(r); err != nil {
				return nil, err
			}
		}
		if created {
			if err := s.logCreateTable(tbl, rows); err != nil {
				return nil, err
			}
		}
		return &Result{RowsAffected: len(rows)}, nil
	}
	var cols []catalog.Column
	for _, cd := range st.Columns {
		col := catalog.Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull}
		if cd.Default != nil {
			b := s.newBinder()
			e, err := b.BindExprNoInput(cd.Default)
			if err != nil {
				return nil, fmt.Errorf("engine: DEFAULT for %s: %w", cd.Name, err)
			}
			v, err := e.Eval(nil)
			if err != nil {
				return nil, err
			}
			col.Default = v
			col.HasDef = true
		}
		cols = append(cols, col)
	}
	tbl, err := s.db.cat.CreateTable(st.Name, cols, st.PrimaryKey, st.IfNotExists)
	if err != nil {
		return nil, err
	}
	bump()
	if created {
		if err := s.logCreateTable(tbl, nil); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

func (s *Session) execCreateIndex(st *sqlparser.CreateIndexStmt) (*Result, error) {
	tbl, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	_, existed := tbl.Index(st.Name)
	if _, err := tbl.CreateIndex(st.Name, st.Columns, st.Unique, st.IfNotExists); err != nil {
		return nil, err
	}
	if !existed {
		s.db.bumpSchemaEpoch() // after the mutation; see execCreateTable
		if s.walLogging() && !tbl.Unlogged() {
			rec := &storage.DDLRecord{Kind: storage.DDLCreateIndex, Name: st.Name, Table: st.Table, IdxColumns: st.Columns, Unique: st.Unique}
			if err := s.appendDDL(rec); err != nil {
				return nil, err
			}
		}
	}
	return &Result{}, nil
}

func (s *Session) execDrop(st *sqlparser.DropStmt) (*Result, error) {
	logDrop := func(objectKind string) error {
		if !s.walLogging() {
			return nil
		}
		return s.appendDDL(&storage.DDLRecord{Kind: storage.DDLDrop, Name: st.Name, ObjectKind: objectKind})
	}
	switch st.Kind {
	case "TABLE":
		dropped, err := s.db.cat.DropTable(st.Name, st.IfExists)
		if err != nil {
			return nil, err
		}
		if dropped {
			s.db.bumpSchemaEpoch() // after the mutation; see execCreateTable
			if err := logDrop("TABLE"); err != nil {
				return nil, err
			}
		}
	case "VIEW":
		// Materialized views are stored as tables + metadata (+ an exposed
		// plain view under AVG decomposition). The IVM extension's drop hook
		// normally intercepts these before this point and performs the full
		// cleanup (delta tables, triggers, prepared scripts); this branch
		// remains for engines without the extension installed.
		if m, ok := s.db.cat.IVM(st.Name); ok {
			s.db.cat.DropIVM(st.Name)
			s.db.cat.DropView(st.Name, true)
			store := m.StorageTable
			if store == "" {
				store = st.Name
			}
			_, err := s.db.cat.DropTable(store, true)
			s.db.bumpSchemaEpoch()
			if err == nil {
				err = logDrop("VIEW")
			}
			return &Result{}, err
		}
		dropped, err := s.db.cat.DropView(st.Name, st.IfExists)
		if err != nil {
			return nil, err
		}
		if dropped {
			s.db.bumpSchemaEpoch()
			if err := logDrop("VIEW"); err != nil {
				return nil, err
			}
		}
	case "INDEX":
		return nil, fmt.Errorf("engine: DROP INDEX not supported")
	}
	return &Result{}, nil
}

func (s *Session) execCreateTrigger(st *sqlparser.CreateTriggerStmt) (*Result, error) {
	fn, ok := s.db.trigHandlers[strings.ToLower(st.Handler)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown trigger handler %q", st.Handler)
	}
	defer s.db.bumpSchemaEpoch() // after the mutation; see execCreateTable
	var events []TriggerEvent
	for _, e := range st.Events {
		events = append(events, TriggerEvent(e))
	}
	s.db.AddTrigger(st.Table, st.Name, events, fn)
	return &Result{}, nil
}
