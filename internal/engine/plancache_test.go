package engine

import (
	"testing"
)

// TestPreparedPlanCacheHit: executing a prepared SELECT twice must bind
// and plan once — the second execution reuses the cached plan and still
// sees current table contents (plans snapshot rows at open, not at plan).
func TestPreparedPlanCacheHit(t *testing.T) {
	db := Open("pc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20)")

	stmts, err := db.PrepareScript("SELECT k, v FROM t WHERE v > 5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecStmts(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("first execution returned %d rows, want 2", len(res.Rows))
	}
	db.mu.Lock()
	cached := len(db.planCache)
	db.mu.Unlock()
	if cached != 1 {
		t.Fatalf("plan cache holds %d entries after prepared exec, want 1", cached)
	}

	// A cached plan must observe rows inserted after it was planned.
	mustExec(t, db, "INSERT INTO t VALUES (3, 30)")
	res, err = db.ExecStmts(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("cached plan returned %d rows after insert, want 3", len(res.Rows))
	}
}

// TestPreparedPlanCacheInvalidation: DDL and pragma writes must force a
// re-plan — a table recreated under the same name or a changed workers
// hint would otherwise execute against stale plan state.
func TestPreparedPlanCacheInvalidation(t *testing.T) {
	db := Open("pc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	stmts, err := db.PrepareScript("SELECT k FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}

	// Recreate the table: the cached plan holds the old *catalog.Table,
	// whose snapshot would silently show the dropped data.
	mustExec(t, db, "DROP TABLE t")
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (7), (8)")
	res, err := db.ExecStmts(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 7 {
		t.Fatalf("prepared select after table recreation returned %v", res.Rows)
	}

	// A pragma write must invalidate too (batch_size/workers are baked
	// into the plan as Hint nodes).
	db.mu.Lock()
	before := db.schemaEpoch
	db.mu.Unlock()
	mustExec(t, db, "PRAGMA workers = 2")
	db.mu.Lock()
	after := db.schemaEpoch
	db.mu.Unlock()
	if after == before {
		t.Fatal("PRAGMA write did not bump the schema epoch")
	}
}

// TestPreparedPlanCacheRefusesSubqueries: plans with lazily cached
// subquery results must never be cached — a second execution would replay
// the first execution's rows.
func TestPreparedPlanCacheRefusesSubqueries(t *testing.T) {
	db := Open("pc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE a (k INTEGER)")
	mustExec(t, db, "CREATE TABLE b (k INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")

	stmts, err := db.PrepareScript("SELECT k FROM a WHERE k IN (SELECT k FROM b)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecStmts(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("first execution: %d rows, want 1", len(res.Rows))
	}
	db.mu.Lock()
	cached := len(db.planCache)
	db.mu.Unlock()
	if cached != 0 {
		t.Fatalf("subquery plan was cached (%d entries)", cached)
	}
	// The subquery must re-evaluate against current b contents.
	mustExec(t, db, "INSERT INTO b VALUES (2)")
	res, err = db.ExecStmts(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("re-execution after b changed: %d rows, want 2", len(res.Rows))
	}
}

// TestAdHocSelectsNotCached: only statements marked by PrepareScript enter
// the cache — ad-hoc statements are parsed fresh each time and caching
// them would only grow the map without hits.
func TestAdHocSelectsNotCached(t *testing.T) {
	db := Open("pc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	for i := 0; i < 5; i++ {
		mustExec(t, db, "SELECT k FROM t")
	}
	db.mu.Lock()
	cached := len(db.planCache)
	db.mu.Unlock()
	if cached != 0 {
		t.Fatalf("ad-hoc selects populated the plan cache (%d entries)", cached)
	}
}

// TestIdentityInsertAdoptsRows: INSERT ... SELECT with the full column
// list (the IVM propagation shape) must not clone source rows, and must
// still coerce and reject through table validation.
func TestIdentityInsertAdoptsRows(t *testing.T) {
	db := Open("pc", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE src (k INTEGER, v INTEGER)")
	mustExec(t, db, "CREATE TABLE dst (k INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO src VALUES (1, 10), (2, 20)")
	mustExec(t, db, "INSERT INTO dst (k, v) SELECT k, v FROM src")
	res := mustExec(t, db, "SELECT k, v FROM dst")
	if len(res.Rows) != 2 {
		t.Fatalf("identity insert landed %d rows, want 2", len(res.Rows))
	}
	// Column-subset inserts still go through the rebuild path with
	// defaults for unnamed columns.
	mustExec(t, db, "INSERT INTO dst (v) SELECT v FROM src")
	res = mustExec(t, db, "SELECT COUNT(*) FROM dst WHERE k IS NULL")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("subset insert defaults: %v", res.Rows)
	}
	// NOT NULL validation still applies to adopted rows.
	mustExec(t, db, "CREATE TABLE strict (k INTEGER NOT NULL)")
	mustExec(t, db, "CREATE TABLE holes (k INTEGER)")
	mustExec(t, db, "INSERT INTO holes VALUES (NULL)")
	if _, err := db.Exec("INSERT INTO strict (k) SELECT k FROM holes"); err == nil {
		t.Fatal("NOT NULL violation slipped through the adoption fast path")
	}
}
