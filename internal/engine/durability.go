// Durability: redo capture on the DML/DDL paths, checkpoint assembly,
// and recovery replay — the engine side of the storage.Backend
// contract.
//
// Redo records are derived from the MVCC undo log at commit time: the
// transaction's CommitHook (running inside the commit critical section,
// so records enter the log in commit-timestamp order) walks the write
// log, resolves each op's slot to its committed row payload, and stages
// one CommitRecord. The statement then group-commits: WaitDurable
// batches concurrent committers behind a single fsync.
//
// Recovery replays the newest checkpoint plus the log tail through
// legacy instant writes (immediately visible, no triggers), then
// re-executes every CREATE MATERIALIZED VIEW — rebuilding view storage,
// delta tables and capture triggers from recovered base state in one
// stroke. IVM-derived tables are unlogged; internal extension sessions
// carry a WAL bypass.
package engine

import (
	"fmt"
	"strings"

	"openivm/internal/catalog"
	"openivm/internal/enginerr"
	"openivm/internal/mvcc"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
	"openivm/internal/storage"
)

// walLogging reports whether this session's statements produce redo
// records: a durable backend finished recovery and the session is not
// an extension-internal bypass session.
func (s *Session) walLogging() bool { return s.db.logging.Load() && !s.walBypass }

// walPending tracks one transaction's staged redo record: the LSN to
// group-commit on, any append error (surfaced at commit completion —
// the MVCC commit has already published by the time the hook runs), and
// extra redo ops for effects the write log doesn't carry (the quiescent
// truncate fast path physically resets the table without logging ops).
type walPending struct {
	extra []storage.RedoOp
	lsn   uint64
	err   error
}

// truncate records a quiescent-truncate redo op.
func (wp *walPending) truncate(tbl *catalog.Table) {
	if wp == nil || tbl.Unlogged() {
		return
	}
	wp.extra = append(wp.extra, storage.RedoOp{Table: tbl.Name, Kind: storage.OpTruncate})
}

// wait completes group commit after a successful MVCC commit: block
// until the staged record's fsync, then take a checkpoint if the log
// has grown past the threshold. Safe on a nil receiver (logging off).
// Any I/O-classified failure on this path degrades the engine to
// read-only (see robustness.go): the backend's sticky flushErr would
// refuse every later commit anyway, so the engine fails fast instead.
func (wp *walPending) wait(db *DB) error {
	if wp == nil {
		return nil
	}
	if wp.err != nil {
		return db.noteStorageErr(wp.err)
	}
	if wp.lsn == 0 {
		return nil // read-only or unlogged-only transaction
	}
	be := db.be()
	if err := be.WaitDurable(wp.lsn); err != nil {
		return db.noteStorageErr(err)
	}
	if be.NeedCheckpoint() {
		return db.Checkpoint()
	}
	return nil
}

// walArm attaches redo capture to tx. The returned walPending is nil
// when the session does not log. The hook runs under the commit mutex:
// it must only read the write log and stage the record — the fsync
// happens later, in walPending.wait, outside the critical section.
func (s *Session) walArm(tx *mvcc.Txn) *walPending {
	if !s.walLogging() {
		return nil
	}
	wp := &walPending{}
	tx.CommitHook = func(ts uint64) {
		rec := storage.CommitRecord{CommitTS: ts, Ops: wp.extra}
		tx.Writes(func(store mvcc.Store, ops []mvcc.Op) {
			tbl, ok := store.(storage.Table)
			if !ok || tbl.Unlogged() {
				return
			}
			name := tbl.TableName()
			for _, op := range ops {
				switch op.Kind {
				case mvcc.OpInsert:
					rec.Ops = append(rec.Ops, storage.RedoOp{Table: name, Kind: storage.OpInsert, Row: tbl.RowAt(op.Slot)})
				case mvcc.OpDelete:
					rec.Ops = append(rec.Ops, storage.RedoOp{Table: name, Kind: storage.OpDelete, Row: tbl.RowAt(op.Slot)})
				case mvcc.OpReplace:
					rec.Ops = append(rec.Ops, storage.RedoOp{Table: name, Kind: storage.OpUpsert, Row: tbl.RowAt(op.Slot)})
				}
			}
		})
		if len(rec.Ops) == 0 {
			return
		}
		wp.lsn, wp.err = s.db.be().AppendCommit(&rec)
	}
	return wp
}

// be reads the backend pointer under its lock (a degraded re-attach
// swaps it while stats readers may be live).
func (db *DB) be() storage.Backend {
	db.backendMu.RLock()
	b := db.backend
	db.backendMu.RUnlock()
	return b
}

// setBackend swaps the backend pointer (instance setup and degraded
// re-attach only).
func (db *DB) setBackend(b storage.Backend) {
	db.backendMu.Lock()
	db.backend = b
	db.backendMu.Unlock()
}

// appendDDL stages and syncs one DDL record, degrading the engine on an
// I/O-classified failure (DDL pays its own fsync, so the failure is
// observed here, not at group commit).
func (s *Session) appendDDL(rec *storage.DDLRecord) error {
	return s.db.noteStorageErr(s.db.be().AppendDDL(rec))
}

// Backend returns the storage backend (storage.MemBackend unless a
// durable one was attached).
func (db *DB) Backend() storage.Backend { return db.be() }

// StorageStats returns the backend's counter snapshot.
func (db *DB) StorageStats() storage.Stats { return db.be().Stats() }

// Durable reports whether a durable backend is attached and armed.
func (db *DB) Durable() bool { return db.logging.Load() }

// Close flushes and releases the storage backend. The DB must not be
// used afterwards.
func (db *DB) Close() error {
	db.logging.Store(false)
	return db.be().Close()
}

// AttachBackend installs a durable storage backend: it replays the
// backend's checkpoint and log into the catalog (restoring committed
// state to a prefix-consistent point), re-executes every CREATE
// MATERIALIZED VIEW so view storage, delta tables and capture triggers
// are rebuilt against recovered base state, and then arms redo logging.
//
// Call it during instance setup — after extensions are installed (the
// IVM extension must be present to rebuild materialized views) and
// before the DB serves sessions concurrently.
func (db *DB) AttachBackend(b storage.Backend) error {
	if db.degr.flag.Load() {
		return db.reattachDegraded(b)
	}
	if db.logging.Load() {
		return fmt.Errorf("engine: a durable backend is already attached")
	}
	db.setBackend(b)
	if !b.Durable() {
		return nil
	}
	rec := &recoverer{db: db, mv: map[string]string{}}
	if err := b.Recover(rec); err != nil {
		return err
	}
	if len(rec.mvOrder) > 0 {
		s := db.NewSession()
		s.SetWALBypass(true)
		defer s.Close()
		for _, name := range rec.mvOrder {
			sql, ok := rec.mv[name]
			if !ok {
				continue // dropped later in the log
			}
			stmt := "CREATE MATERIALIZED VIEW " + name + " AS " + sql
			if _, err := s.ExecScript(stmt); err != nil {
				return enginerr.Wrap(enginerr.CodeRecoveryCorruption,
					fmt.Errorf("engine: rebuilding materialized view %s: %w", name, err))
			}
		}
	}
	db.bumpSchemaEpoch()
	db.logging.Store(true)
	return nil
}

// recoverer applies the durable history to the catalog. Base-table
// state is written through legacy instant writes (immediately visible,
// bypassing triggers and the MVCC write path entirely); materialized
// views are collected and rebuilt by re-execution after replay, so
// their DDL records carry only name and defining SQL.
type recoverer struct {
	db      *DB
	mvOrder []string          // creation order
	mv      map[string]string // lower(name) -> defining SQL; deleted on drop
}

func (r *recoverer) addMatView(name, sql string) {
	key := strings.ToLower(name)
	if _, ok := r.mv[key]; !ok {
		r.mvOrder = append(r.mvOrder, key)
	}
	r.mv[key] = sql
}

// dropMatView removes a pending rebuild, reporting whether one existed.
func (r *recoverer) dropMatView(name string) bool {
	key := strings.ToLower(name)
	if _, ok := r.mv[key]; ok {
		delete(r.mv, key)
		return true
	}
	return false
}

// Checkpoint restores a full snapshot: tables with their indexes and
// rows, plain views, and the deferred materialized-view rebuild list.
func (r *recoverer) Checkpoint(snap *storage.CheckpointData) error {
	cat := r.db.cat
	for _, ts := range snap.Tables {
		cols := make([]catalog.Column, len(ts.Columns))
		for i, c := range ts.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, Default: c.Default, HasDef: c.HasDefault}
		}
		tbl, err := cat.CreateTable(ts.Name, cols, ts.PrimaryKey, false)
		if err != nil {
			return err
		}
		for _, ix := range ts.Indexes {
			if _, err := tbl.CreateIndex(ix.Name, ix.Columns, ix.Unique, false); err != nil {
				return err
			}
		}
		if len(ts.Rows) > 0 {
			if _, err := tbl.InsertBatch(ts.Rows); err != nil {
				return err
			}
		}
	}
	for _, v := range snap.Views {
		if err := cat.CreateView(v.Name, v.SQL); err != nil {
			return err
		}
	}
	for _, mv := range snap.MatViews {
		r.addMatView(mv.Name, mv.SQL)
	}
	return nil
}

// Commit replays one committed transaction's (or instant write's)
// logical redo ops. A delete whose row is already absent is ignored —
// Z-set semantics, and the tolerance instant-write interleavings need.
func (r *recoverer) Commit(rec *storage.CommitRecord) error {
	for _, op := range rec.Ops {
		tbl, err := r.db.cat.Table(op.Table)
		if err != nil {
			return enginerr.Wrap(enginerr.CodeRecoveryCorruption,
				fmt.Errorf("engine: redo for unknown table %q: %w", op.Table, err))
		}
		switch op.Kind {
		case storage.OpInsert:
			err = tbl.Insert(op.Row)
		case storage.OpUpsert:
			err = tbl.Upsert(op.Row)
		case storage.OpDelete:
			tbl.DeleteOne(op.Row)
		case storage.OpTruncate:
			tbl.Truncate()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// DDL replays one schema change. Creates are skipped when the object
// already exists: a crash can land between a DDL's catalog mutation
// entering a checkpoint and its record being appended after it, so the
// record may trail the snapshot that already contains its effect.
func (r *recoverer) DDL(rec *storage.DDLRecord) error {
	cat := r.db.cat
	switch rec.Kind {
	case storage.DDLCreateTable:
		if cat.HasTable(rec.Name) {
			return nil
		}
		cols := make([]catalog.Column, len(rec.Columns))
		for i, c := range rec.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, Default: c.Default, HasDef: c.HasDefault}
		}
		tbl, err := cat.CreateTable(rec.Name, cols, rec.PrimaryKey, false)
		if err != nil {
			return err
		}
		if len(rec.Rows) > 0 { // CREATE TABLE AS SELECT population
			if _, err := tbl.InsertBatch(rec.Rows); err != nil {
				return err
			}
		}
	case storage.DDLCreateIndex:
		tbl, err := cat.Table(rec.Table)
		if err != nil {
			return enginerr.Wrap(enginerr.CodeRecoveryCorruption,
				fmt.Errorf("engine: index DDL for unknown table %q: %w", rec.Table, err))
		}
		if _, err := tbl.CreateIndex(rec.Name, rec.IdxColumns, rec.Unique, true); err != nil {
			return err
		}
	case storage.DDLCreateView:
		if _, ok := cat.View(rec.Name); ok {
			return nil
		}
		return cat.CreateView(rec.Name, rec.SQL)
	case storage.DDLCreateMatView:
		r.addMatView(rec.Name, rec.SQL)
	case storage.DDLDrop:
		switch rec.ObjectKind {
		case "TABLE":
			_, err := cat.DropTable(rec.Name, true)
			return err
		case "VIEW":
			if r.dropMatView(rec.Name) {
				return nil // rebuild was pending; cancel it
			}
			_, err := cat.DropView(rec.Name, true)
			return err
		}
	}
	return nil
}

// Checkpoint writes a full columnar snapshot of the logged catalog
// state and truncates the log behind it. The dump runs with both the
// MVCC commit lock and the backend's append lock held, so no commit can
// land between publishing its writes and appending its record — every
// log record is either covered by the snapshot or ordered after it.
func (db *DB) Checkpoint() error {
	if !db.logging.Load() {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	var cerr error
	be := db.be()
	db.cat.MVCC().WithCommitLock(func() {
		lastLSN, err := be.BeginCheckpoint()
		if err != nil {
			cerr = err
			return
		}
		snap, err := db.assembleCheckpoint(lastLSN)
		if err != nil {
			be.EndCheckpoint()
			cerr = err
			return
		}
		cerr = be.Checkpoint(snap)
	})
	return db.noteStorageErr(cerr)
}

// assembleCheckpoint dumps every logged table, plain view and
// materialized-view definition. IVM-owned auxiliary objects (the view
// entries the extension registers for matviews and their delta views)
// are excluded: the matview's CREATE is re-executed on recovery and
// recreates them.
func (db *DB) assembleCheckpoint(lastLSN uint64) (*storage.CheckpointData, error) {
	cat := db.cat
	snap := &storage.CheckpointData{LastLSN: lastLSN, LastTS: cat.MVCC().Current().ReadTS}

	ivmOwned := map[string]bool{}
	for _, m := range cat.IVMViews() {
		ivmOwned[strings.ToLower(m.ViewName)] = true
		if m.DeltaView != "" {
			ivmOwned[strings.ToLower(m.DeltaView)] = true
		}
		snap.MatViews = append(snap.MatViews, storage.ViewSnap{Name: m.ViewName, SQL: m.SourceSQL})
	}

	for _, name := range cat.TableNames() {
		tbl, err := cat.Table(name)
		if err != nil {
			continue // dropped concurrently with assembly
		}
		if tbl.Unlogged() {
			continue
		}
		ts := storage.TableSnap{
			Name:       tbl.Name,
			PrimaryKey: tbl.PrimaryKeyColumnNames(),
			Rows:       tbl.Rows(),
		}
		ts.Columns = make([]storage.ColumnDef, len(tbl.Columns))
		for i, c := range tbl.Columns {
			ts.Columns[i] = storage.ColumnDef{Name: c.Name, Type: c.Type, NotNull: c.NotNull, HasDefault: c.HasDef, Default: c.Default}
		}
		for _, ix := range tbl.Indexes() {
			def := storage.IndexDef{Name: ix.Name, Unique: ix.Unique}
			for _, pos := range ix.Columns {
				def.Columns = append(def.Columns, tbl.Columns[pos].Name)
			}
			ts.Indexes = append(ts.Indexes, def)
		}
		snap.Tables = append(snap.Tables, ts)
	}

	for _, v := range cat.Views() {
		if ivmOwned[strings.ToLower(v.Name)] {
			continue
		}
		snap.Views = append(snap.Views, storage.ViewSnap{Name: v.Name, SQL: v.SourceSQL})
	}
	return snap, nil
}

// logCreateTable logs a CREATE TABLE. rows carries the CREATE TABLE AS
// SELECT population — those inserts bypass transactional DML, so they
// ride in the DDL record instead of a commit record.
func (s *Session) logCreateTable(tbl *catalog.Table, rows []sqltypes.Row) error {
	if !s.walLogging() || tbl.Unlogged() {
		return nil
	}
	rec := &storage.DDLRecord{
		Kind:       storage.DDLCreateTable,
		Name:       tbl.Name,
		PrimaryKey: tbl.PrimaryKeyColumnNames(),
		Rows:       rows,
	}
	rec.Columns = make([]storage.ColumnDef, len(tbl.Columns))
	for i, c := range tbl.Columns {
		rec.Columns[i] = storage.ColumnDef{Name: c.Name, Type: c.Type, NotNull: c.NotNull, HasDefault: c.HasDef, Default: c.Default}
	}
	return s.appendDDL(rec)
}

// logHookDDL logs schema changes that a statement hook handled before
// the engine's own dispatch saw them: materialized-view creation (the
// record carries only name and defining SQL — recovery re-executes the
// CREATE) and the extension's view/table drops. Runs after the hook
// succeeded, so the record reflects an applied change.
func (s *Session) logHookDDL(stmt sqlparser.Statement) error {
	if !s.walLogging() {
		return nil
	}
	switch st := stmt.(type) {
	case *sqlparser.CreateViewStmt:
		if st.Materialized {
			if _, ok := s.db.cat.IVM(st.Name); ok {
				return s.appendDDL(&storage.DDLRecord{
					Kind: storage.DDLCreateMatView, Name: st.Name, SQL: st.SourceSQL,
				})
			}
		}
	case *sqlparser.DropStmt:
		switch st.Kind {
		case "VIEW":
			return s.appendDDL(&storage.DDLRecord{
				Kind: storage.DDLDrop, Name: st.Name, ObjectKind: "VIEW",
			})
		case "TABLE":
			if !s.db.cat.HasTable(st.Name) {
				return s.appendDDL(&storage.DDLRecord{
					Kind: storage.DDLDrop, Name: st.Name, ObjectKind: "TABLE",
				})
			}
		}
	}
	return nil
}

// walInstant logs one legacy instant write (ApplyDeltaRow) before it is
// applied: append-then-apply means a crash between the two replays the
// record (redo is idempotent for these single-op records), while
// apply-then-append could let a checkpoint snapshot the effect and then
// replay the trailing record again.
func (s *Session) walInstant(tbl *catalog.Table, kind storage.OpKind, row sqltypes.Row) error {
	if !s.walLogging() || tbl.Unlogged() {
		return nil
	}
	return s.db.noteStorageErr(s.db.be().AppendInstant(&storage.CommitRecord{
		Ops: []storage.RedoOp{{Table: tbl.Name, Kind: kind, Row: row}},
	}))
}
