package engine

import (
	"fmt"
	"strings"
	"testing"
)

// TestPragmaWorkers covers the PRAGMA workers plumbing: validation,
// round-trip, the Hint node in EXPLAIN, and result equivalence between
// serial and parallel settings on a table large enough to actually fan
// out.
func TestPragmaWorkers(t *testing.T) {
	db := Open("w", DialectDuckDB)
	if _, err := db.Exec("CREATE TABLE nums (a INTEGER, b INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO nums VALUES ")
	for i := 0; i < 12000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i%53)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{"PRAGMA workers = -2", "PRAGMA workers = 'many'"} {
		if _, err := db.Exec(bad); err == nil {
			t.Fatalf("%s was accepted", bad)
		}
	}
	// 0 is legal: reset to the per-CPU executor default.
	if _, err := db.Exec("PRAGMA workers = 0"); err != nil {
		t.Fatalf("PRAGMA workers = 0 (reset) rejected: %v", err)
	}

	if _, err := db.Exec("PRAGMA workers = 1"); err != nil {
		t.Fatal(err)
	}
	serial, err := db.Exec("SELECT a + b FROM nums WHERE b % 3 = 0")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := db.Exec("PRAGMA workers = 4"); err != nil {
		t.Fatal(err)
	}
	if got := db.Pragma("workers"); got != "4" {
		t.Fatalf("pragma round-trip = %q", got)
	}
	res, err := db.Exec("EXPLAIN SELECT a FROM nums WHERE b = 1")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r.String())
	}
	if !strings.Contains(strings.Join(lines, "\n"), "workers=4") {
		t.Fatalf("EXPLAIN does not show the workers hint:\n%s", strings.Join(lines, "\n"))
	}

	parallel, err := db.Exec("SELECT a + b FROM nums WHERE b % 3 = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel.Rows) != len(serial.Rows) {
		t.Fatalf("workers=4 returned %d rows, workers=1 returned %d", len(parallel.Rows), len(serial.Rows))
	}
	for i := range parallel.Rows {
		if parallel.Rows[i].String() != serial.Rows[i].String() {
			t.Fatalf("row %d differs: %v (workers=4) vs %v (workers=1)", i, parallel.Rows[i], serial.Rows[i])
		}
	}

	// Aggregation goes through the thread-local + combine path.
	agg := func() []string {
		res, err := db.Exec("SELECT b, SUM(a), COUNT(*) FROM nums GROUP BY b")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r.String()
		}
		return out
	}
	par := agg()
	if _, err := db.Exec("PRAGMA workers = 1"); err != nil {
		t.Fatal(err)
	}
	ser := agg()
	if strings.Join(par, "\n") != strings.Join(ser, "\n") {
		t.Fatalf("grouped aggregate differs between workers settings:\n%s\nvs\n%s",
			strings.Join(par, "\n"), strings.Join(ser, "\n"))
	}
}
