package engine

import (
	"fmt"
	"strings"
	"testing"
)

// TestInsertSelectColumnarSink: INSERT ... SELECT over a fused (columnar)
// source pipeline must produce exactly the rows the row path would, for
// identity and non-identity column mappings, with coercion and NOT NULL
// validation intact.
func TestInsertSelectColumnarSink(t *testing.T) {
	db := Open("vs", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE src (k INTEGER, v DOUBLE, s TEXT)")
	var b strings.Builder
	b.WriteString("INSERT INTO src VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d.5, 's%d')", i, i, i%7)
	}
	mustExec(t, db, b.String())

	// Identity mapping over a projection pipeline: the fused scan emits
	// columnar batches that sink through InsertVecs.
	mustExec(t, db, "CREATE TABLE dst (k INTEGER, v DOUBLE)")
	mustExec(t, db, "INSERT INTO dst SELECT k + 1, v * 2 FROM src WHERE k % 3 = 0")
	want := mustExec(t, db, "SELECT COUNT(*), SUM(k + 1), SUM(v * 2) FROM src WHERE k % 3 = 0").Rows[0]
	got := mustExec(t, db, "SELECT COUNT(*), SUM(k), SUM(v) FROM dst").Rows[0]
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("columnar sink diverged: got %v, want %v", got, want)
		}
	}

	// Type coercion across the sink: float source values into an INTEGER
	// column must coerce exactly like the row path.
	mustExec(t, db, "CREATE TABLE di (k INTEGER)")
	mustExec(t, db, "INSERT INTO di SELECT v FROM src WHERE k < 10")
	if n := mustExec(t, db, "SELECT COUNT(*) FROM di").Rows[0][0].I; n != 10 {
		t.Fatalf("coerced insert landed %d rows, want 10", n)
	}

	// NOT NULL violations stop the statement like InsertBatch.
	mustExec(t, db, "CREATE TABLE strict (k INTEGER NOT NULL)")
	mustExec(t, db, "CREATE TABLE holes (k INTEGER)")
	mustExec(t, db, "INSERT INTO holes VALUES (1), (NULL), (2)")
	if _, err := db.Exec("INSERT INTO strict SELECT k FROM holes WHERE k IS NULL OR k > 0"); err == nil {
		t.Fatal("NOT NULL violation slipped through the columnar sink")
	}
}

// TestInsertSelectColumnarPKDuplicate: a duplicate primary key stops the
// streamed insert with the prefix in place, mirroring InsertBatch.
func TestInsertSelectColumnarPKDuplicate(t *testing.T) {
	db := Open("vs", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE src (k INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO src VALUES (1, 10), (2, 20), (2, 21), (3, 30)")
	mustExec(t, db, "CREATE TABLE pkd (k INTEGER, v INTEGER, PRIMARY KEY (k))")
	if _, err := db.Exec("INSERT INTO pkd SELECT k, v FROM src WHERE v >= 0"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	res := mustExec(t, db, "SELECT k FROM pkd ORDER BY k")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 2 {
		t.Fatalf("prefix rows = %v, want [1 2]", res.Rows)
	}
}

// TestInsertSelectColumnarRollback: the streamed sink's per-batch undo
// entries must fully revert under ROLLBACK, compensating triggers
// included.
func TestInsertSelectColumnarRollback(t *testing.T) {
	db := Open("vs", DialectDuckDB)
	mustExec(t, db, "CREATE TABLE src (k INTEGER)")
	var b strings.Builder
	b.WriteString("INSERT INTO src VALUES (0)")
	for i := 1; i < 3000; i++ {
		fmt.Fprintf(&b, ", (%d)", i)
	}
	mustExec(t, db, b.String())
	mustExec(t, db, "CREATE TABLE dst (k INTEGER)")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO dst SELECT k + 100 FROM src WHERE k % 2 = 0")
	mustExec(t, db, "ROLLBACK")
	if n := mustExec(t, db, "SELECT COUNT(*) FROM dst").Rows[0][0].I; n != 0 {
		t.Fatalf("rollback left %d rows in dst", n)
	}
}
