package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"openivm/internal/engine"
	"openivm/internal/ivmext"
	"openivm/internal/storage"
	"openivm/internal/txntest"
)

// recoverySeed returns the torture-test seed: RECOVERY_SEED when set
// (replayable CI runs), otherwise clock-derived and printed on failure.
func recoverySeed() (int64, bool) {
	if v := os.Getenv("RECOVERY_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n, true
		}
	}
	return time.Now().UnixNano(), false
}

// openDurable opens a durable engine over dir: extension first (recovery
// re-executes CREATE MATERIALIZED VIEW through its statement hook), then
// the disk backend.
func openDurable(t *testing.T, dir string) *engine.DB {
	t.Helper()
	db := engine.Open("recovery", engine.DialectDuckDB)
	ivmext.Install(db)
	b, err := storage.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachBackend(b); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("%s\n-> %v", sql, err)
	}
	return res
}

// kvState renders the kv table as a canonical string, or "NOTABLE" when
// the table does not exist (recovery cut before its CREATE record).
func kvState(s *engine.Session) string {
	res, err := s.Exec("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		return "NOTABLE"
	}
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%d=%d;", r[0].I, r[1].I)
	}
	return sb.String()
}

func modelState(m map[int64]int64) string {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%d=%d;", k, m[k])
	}
	return sb.String()
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryTorture runs a randomized committed workload against a
// durable engine, then simulates crashes by truncating the on-disk log
// at random byte offsets and reopening. Every recovered image must be
// exactly the state after some prefix of the committed transactions —
// never a partial transaction, never an interleaving — and the reopened
// engine must accept new work. RECOVERY_SEED replays a failing run.
func TestRecoveryTorture(t *testing.T) {
	seed, fromEnv := recoverySeed()
	rnd := rand.New(rand.NewSource(seed))
	fail := func(format string, args ...any) {
		t.Fatalf("RECOVERY_SEED=%d (from env: %v): %s", seed, fromEnv, fmt.Sprintf(format, args...))
	}

	dir := t.TempDir()
	db := openDurable(t, dir)
	s := db.NewSession()

	// states[j] is the expected kv image after the j-th durable point.
	states := []string{"NOTABLE"}
	model := map[int64]int64{}
	record := func() { states = append(states, modelState(model)) }

	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
	record() // DDL is its own record; table exists but is empty
	// Seed values are nonzero: the matview below runs under the paper's
	// default sum_zero empty-group detection, which (faithfully but
	// unsoundly) drops groups whose SUM is 0 on refresh — zero seeds
	// would make the consistency check below fail for IVM reasons that
	// have nothing to do with recovery.
	for k := int64(0); k < 6; k++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", k, k+1))
		model[k] = k + 1
		record()
	}
	// A materialized view rides along: its derived tables are unlogged,
	// so only the CREATE record itself enters the log.
	mustExec(t, s, "CREATE MATERIALIZED VIEW kv_sum AS SELECT k, SUM(v) AS total FROM kv GROUP BY k")
	record()

	nextKey := int64(100)
	commits := 60
	if testing.Short() {
		commits = 25
	}
	val := int64(1)
	for i := 0; i < commits; i++ {
		switch p := rnd.Intn(100); {
		case p < 35: // autocommit update
			keys := make([]int64, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			if len(keys) == 0 {
				continue
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			k := keys[rnd.Intn(len(keys))]
			mustExec(t, s, fmt.Sprintf("UPDATE kv SET v = %d WHERE k = %d", val, k))
			model[k] = val
			val++
			record()
		case p < 55: // autocommit insert of a fresh key
			mustExec(t, s, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", nextKey, val))
			model[nextKey] = val
			nextKey++
			val++
			record()
		case p < 70: // autocommit delete
			keys := make([]int64, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			if len(keys) == 0 {
				continue
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			k := keys[rnd.Intn(len(keys))]
			mustExec(t, s, fmt.Sprintf("DELETE FROM kv WHERE k = %d", k))
			delete(model, k)
			record()
		case p < 95: // explicit multi-statement transaction
			mustExec(t, s, "BEGIN")
			staged := map[int64]int64{}
			n := 2 + rnd.Intn(3)
			for j := 0; j < n; j++ {
				mustExec(t, s, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", nextKey, val))
				staged[nextKey] = val
				nextKey++
				val++
			}
			if rnd.Intn(4) == 0 {
				mustExec(t, s, "ROLLBACK") // no record, no state change
			} else {
				mustExec(t, s, "COMMIT")
				for k, v := range staged {
					model[k] = v
				}
				record()
			}
		default: // rare truncate
			mustExec(t, s, "TRUNCATE TABLE kv")
			model = map[int64]int64{}
			record()
		}
	}
	finalState := modelState(model)
	s.Close()
	if err := db.Close(); err != nil {
		fail("close: %v", err)
	}

	stateIdx := map[string]int{}
	for j, st := range states {
		if _, ok := stateIdx[st]; !ok {
			stateIdx[st] = j
		}
	}

	// Trial 0 keeps every byte: a clean close must recover the exact
	// final state (every acked commit survives). Later trials truncate.
	trials := 24
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		tdir := t.TempDir()
		copyDir(t, dir, tdir)

		var segs []string
		ents, err := os.ReadDir(tdir)
		if err != nil {
			fail("trial %d: %v", trial, err)
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".owl") {
				segs = append(segs, e.Name())
			}
		}
		sort.Strings(segs)
		if trial > 0 && len(segs) > 0 {
			// Crash simulation: choose a point in the log, drop
			// everything after it. Only the chosen segment keeps a
			// (possibly torn) prefix; later segments vanish entirely.
			idx := rnd.Intn(len(segs))
			path := filepath.Join(tdir, segs[idx])
			fi, err := os.Stat(path)
			if err != nil {
				fail("trial %d: %v", trial, err)
			}
			off := rnd.Int63n(fi.Size() + 1)
			if err := os.Truncate(path, off); err != nil {
				fail("trial %d: %v", trial, err)
			}
			for _, later := range segs[idx+1:] {
				os.Remove(filepath.Join(tdir, later))
			}
		}

		db2 := openDurable(t, tdir)
		s2 := db2.NewSession()
		got := kvState(s2)
		j, ok := stateIdx[got]
		if !ok {
			fail("trial %d: recovered state is not any committed prefix:\n got %q", trial, got)
		}
		if trial == 0 && got != finalState {
			fail("clean close lost commits: recovered prefix %d, want final state\n got  %q\n want %q", j, got, finalState)
		}

		// The recovered engine accepts new durable work.
		if got != "NOTABLE" {
			mustExec(t, s2, fmt.Sprintf("INSERT INTO kv VALUES (%d, 424242)", 90000+int64(trial)))
			res := mustExec(t, s2, fmt.Sprintf("SELECT v FROM kv WHERE k = %d", 90000+int64(trial)))
			if len(res.Rows) != 1 || res.Rows[0][0].I != 424242 {
				fail("trial %d: post-recovery insert not visible: %v", trial, res.Rows)
			}
			// If the matview's CREATE record survived, it was rebuilt
			// and must refresh consistently with the base table.
			if _, err := s2.Exec("SELECT k, total FROM kv_sum ORDER BY k"); err == nil {
				mustExec(t, s2, "REFRESH MATERIALIZED VIEW kv_sum")
				mv := mustExec(t, s2, "SELECT k, total FROM kv_sum ORDER BY k")
				base := mustExec(t, s2, "SELECT k, SUM(v) FROM kv GROUP BY k ORDER BY k")
				if len(mv.Rows) != len(base.Rows) {
					fail("trial %d: rebuilt matview diverges: %d vs %d groups\nstate %q\nmv   %v\nbase %v", trial, len(mv.Rows), len(base.Rows), got, mv.Rows, base.Rows)
				}
				for r := range mv.Rows {
					if mv.Rows[r][0].I != base.Rows[r][0].I || mv.Rows[r][1].I != base.Rows[r][1].I {
						fail("trial %d: rebuilt matview row %d diverges: %v vs %v", trial, r, mv.Rows[r], base.Rows[r])
					}
				}
			}
		}
		s2.Close()
		if err := db2.Close(); err != nil {
			fail("trial %d: close: %v", trial, err)
		}
	}
}

// TestRecoveryTortureWithCheckpoints is the same crash simulation with
// checkpoints forced mid-workload: recovery must stitch the newest
// checkpoint image together with the log records behind it.
func TestRecoveryTortureWithCheckpoints(t *testing.T) {
	seed, fromEnv := recoverySeed()
	rnd := rand.New(rand.NewSource(seed + 1))
	fail := func(format string, args ...any) {
		t.Fatalf("RECOVERY_SEED=%d (from env: %v): %s", seed, fromEnv, fmt.Sprintf(format, args...))
	}

	dir := t.TempDir()
	db := openDurable(t, dir)
	s := db.NewSession()
	states := []string{"NOTABLE"}
	model := map[int64]int64{}
	record := func() { states = append(states, modelState(model)) }

	mustExec(t, s, "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
	record()
	ckptFloor := 0 // index of the newest state guaranteed by a checkpoint
	for i := int64(0); i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*7))
		model[i] = i * 7
		record()
		if i%13 == 12 {
			if err := db.Checkpoint(); err != nil {
				fail("checkpoint: %v", err)
			}
			ckptFloor = len(states) - 1
		}
	}
	s.Close()
	if err := db.Close(); err != nil {
		fail("close: %v", err)
	}

	stateIdx := map[string]int{}
	for j, st := range states {
		if _, ok := stateIdx[st]; !ok {
			stateIdx[st] = j
		}
	}
	for trial := 0; trial < 12; trial++ {
		tdir := t.TempDir()
		copyDir(t, dir, tdir)
		ents, _ := os.ReadDir(tdir)
		var segs []string
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".owl") {
				segs = append(segs, e.Name())
			}
		}
		sort.Strings(segs)
		if trial > 0 && len(segs) > 0 {
			idx := rnd.Intn(len(segs))
			path := filepath.Join(tdir, segs[idx])
			fi, err := os.Stat(path)
			if err != nil {
				fail("trial %d: %v", trial, err)
			}
			if err := os.Truncate(path, rnd.Int63n(fi.Size()+1)); err != nil {
				fail("trial %d: %v", trial, err)
			}
			for _, later := range segs[idx+1:] {
				os.Remove(filepath.Join(tdir, later))
			}
		}
		db2 := openDurable(t, tdir)
		s2 := db2.NewSession()
		got := kvState(s2)
		j, ok := stateIdx[got]
		if !ok {
			fail("trial %d: recovered state is not a committed prefix: %q", trial, got)
		}
		// Checkpointed work can never be lost: the log behind the newest
		// checkpoint was only deleted after the snapshot was durable.
		if j < ckptFloor {
			fail("trial %d: recovered prefix %d is older than the checkpoint floor %d", trial, j, ckptFloor)
		}
		if trial == 0 && j != len(states)-1 {
			fail("clean close lost commits: prefix %d of %d", j, len(states)-1)
		}
		s2.Close()
		db2.Close()
	}
}

// TestRecoveredEngineSnapshotIsolation reopens a recovered database and
// runs randomized transaction histories against it, checked by the exact
// snapshot-isolation oracle: recovery must hand back an engine with
// undamaged transactional semantics.
func TestRecoveredEngineSnapshotIsolation(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	s := db.NewSession()
	o := txntest.Options{Sessions: 3, Keys: 4, Ops: 40}
	for _, stmt := range txntest.SetupSQL(o) {
		mustExec(t, s, stmt)
	}
	mustExec(t, s, "UPDATE kv SET v = 0 WHERE k = 0") // touch the log
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	seed, fromEnv := txntest.Seed()
	histories := 40
	if testing.Short() {
		histories = 10
	}
	for i := 0; i < histories; i++ {
		h := txntest.Generate(rand.New(rand.NewSource(seed+int64(i))), o)
		// Reset the table to the oracle's seeded image between histories.
		rs := db2.NewSession()
		mustExec(t, rs, "TRUNCATE TABLE kv")
		for k := 0; k < o.Keys; k++ {
			mustExec(t, rs, fmt.Sprintf("INSERT INTO kv VALUES (%d, 0)", k))
		}
		rs.Close()
		open := func() (txntest.Conn, error) { return recoveredConn{db2.NewSession()}, nil }
		v, err := txntest.RunSequential(open, h, engine.IsSerializationError, o)
		if err != nil {
			t.Fatalf("TXNTEST_SEED=%d (history %d, from env: %v): harness error: %v", seed, i, fromEnv, err)
		}
		if v != nil {
			t.Fatalf("TXNTEST_SEED=%d (history %d): SI violation on recovered engine: %v\n%s",
				seed, i, v, txntest.Format(h))
		}
	}
}

type recoveredConn struct{ s *engine.Session }

func (c recoveredConn) Exec(sql string) ([][]int64, error) {
	res, err := c.s.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		row := make([]int64, len(r))
		for i, v := range r {
			row[i] = v.I
		}
		out = append(out, row)
	}
	return out, nil
}

func (c recoveredConn) Close() error { return c.s.Close() }

// TestRecoveryDDLSurface: every DDL object class round-trips through
// close/reopen — tables with PKs and defaults, secondary indexes, plain
// views, and dropped objects staying dropped.
func TestRecoveryDDLSurface(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE a (id INTEGER PRIMARY KEY, name TEXT NOT NULL, n INTEGER)")
	mustExec(t, s, "CREATE INDEX a_n ON a (n)")
	mustExec(t, s, "CREATE TABLE doomed (x INTEGER)")
	mustExec(t, s, "CREATE VIEW big_a AS SELECT id, name FROM a WHERE n > 10")
	mustExec(t, s, "INSERT INTO a VALUES (1, 'one', 5), (2, 'two', 50)")
	mustExec(t, s, "DROP TABLE doomed")
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	s2 := db2.NewSession()
	defer s2.Close()
	res := mustExec(t, s2, "SELECT id, name FROM big_a")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "two" {
		t.Fatalf("plain view after recovery = %v", res.Rows)
	}
	if _, err := s2.Exec("SELECT * FROM doomed"); err == nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	// The PK constraint survived (unique index rebuilt).
	if _, err := s2.Exec("INSERT INTO a VALUES (1, 'dup', 0)"); err == nil {
		t.Fatal("primary key not enforced after recovery")
	}
	tbl, err := db2.Catalog().Table("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Index("a_n"); !ok {
		t.Fatal("secondary index a_n lost in recovery")
	}
}

// TestRecoveryUnloggedDerivedState: IVM propagation traffic must not
// grow the log — only base-table commits and the CREATE record appear.
func TestRecoveryUnloggedDerivedState(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	defer db.Close()
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE ev (g TEXT, n INTEGER)")
	mustExec(t, s, "CREATE MATERIALIZED VIEW ev_sum AS SELECT g, SUM(n) AS total FROM ev GROUP BY g")
	mustExec(t, s, "INSERT INTO ev VALUES ('a', 1), ('b', 2)")
	before := db.StorageStats().WALRecords
	mustExec(t, s, "REFRESH MATERIALIZED VIEW ev_sum")
	mustExec(t, s, "SELECT g, total FROM ev_sum ORDER BY g")
	if after := db.StorageStats().WALRecords; after != before {
		t.Fatalf("refresh/select grew the log: %d -> %d records", before, after)
	}
}
