// Package art implements an Adaptive Radix Tree (Leis et al., ICDE 2013) —
// the index structure DuckDB uses for primary keys and upserts, and which
// the paper builds on materialized aggregate tables (keyed by the GROUP BY
// columns) so that INSERT OR REPLACE can locate groups quickly.
//
// The tree stores arbitrary []byte keys in sorted order with four adaptive
// node sizes (4, 16, 48, 256 children), path compression (each inner node
// carries a prefix) and single-value leaves. Values are opaque interface{}.
//
// Arbitrary keys are supported: internally every key is escaped into a
// prefix-free, order-preserving form (0x00 -> 0x00 0xFF, terminated by
// 0x00 0x00), so no key can be a proper prefix of another.
package art

import "bytes"

// escape converts key to the internal prefix-free representation.
func escape(key []byte) []byte {
	return escapeAppend(make([]byte, 0, len(key)+2), key)
}

// escapeAppend appends the escaped form of key to dst. Read-only callers
// (Get, Delete) pass a stack buffer so point lookups stay allocation-free
// for typical key lengths.
func escapeAppend(dst, key []byte) []byte {
	for _, b := range key {
		dst = append(dst, b)
		if b == 0x00 {
			dst = append(dst, 0xFF)
		}
	}
	return append(dst, 0x00, 0x00)
}

// unescape inverts escape.
func unescape(ek []byte) []byte {
	ek = ek[:len(ek)-2] // strip terminator
	out := make([]byte, 0, len(ek))
	for i := 0; i < len(ek); i++ {
		out = append(out, ek[i])
		if ek[i] == 0x00 {
			i++ // skip 0xFF
		}
	}
	return out
}

// KV is a key/value pair, used by bulk-build helpers.
type KV struct {
	Key []byte
	Val any
}

// Tree is an adaptive radix tree mapping []byte keys to values.
type Tree struct {
	root node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

type node interface {
	// child returns the child for byte b, or nil.
	child(b byte) node
	// setChild inserts/overwrites the child for byte b; reports whether the
	// node had room (false means the caller must grow it first).
	setChild(b byte, n node) bool
	// removeChild deletes the child for byte b.
	removeChild(b byte)
	// numChildren returns the current child count.
	numChildren() int
	// prefix returns the compressed path for this inner node.
	getPrefix() []byte
	setPrefix(p []byte)
	// walk iterates children in byte order.
	walk(fn func(b byte, n node) bool) bool
	// minChild returns the smallest-byte child.
	minChild() node
}

// leaf holds a full key copy plus its value.
type leaf struct {
	key []byte
	val any
}

func (l *leaf) child(byte) node                 { return nil }
func (l *leaf) setChild(byte, node) bool        { return true }
func (l *leaf) removeChild(byte)                {}
func (l *leaf) numChildren() int                { return 0 }
func (l *leaf) getPrefix() []byte               { return nil }
func (l *leaf) setPrefix([]byte)                {}
func (l *leaf) walk(func(byte, node) bool) bool { return true }
func (l *leaf) minChild() node                  { return nil }

// node4: up to 4 children, sorted key bytes.
type node4 struct {
	prefix   []byte
	keys     [4]byte
	children [4]node
	n        int
}

func (nd *node4) child(b byte) node {
	for i := 0; i < nd.n; i++ {
		if nd.keys[i] == b {
			return nd.children[i]
		}
	}
	return nil
}

func (nd *node4) setChild(b byte, c node) bool {
	for i := 0; i < nd.n; i++ {
		if nd.keys[i] == b {
			nd.children[i] = c
			return true
		}
	}
	if nd.n == 4 {
		return false
	}
	i := nd.n
	for i > 0 && nd.keys[i-1] > b {
		nd.keys[i] = nd.keys[i-1]
		nd.children[i] = nd.children[i-1]
		i--
	}
	nd.keys[i] = b
	nd.children[i] = c
	nd.n++
	return true
}

func (nd *node4) removeChild(b byte) {
	for i := 0; i < nd.n; i++ {
		if nd.keys[i] == b {
			copy(nd.keys[i:], nd.keys[i+1:nd.n])
			copy(nd.children[i:], nd.children[i+1:nd.n])
			nd.n--
			nd.children[nd.n] = nil
			return
		}
	}
}

func (nd *node4) numChildren() int   { return nd.n }
func (nd *node4) getPrefix() []byte  { return nd.prefix }
func (nd *node4) setPrefix(p []byte) { nd.prefix = p }

func (nd *node4) walk(fn func(byte, node) bool) bool {
	for i := 0; i < nd.n; i++ {
		if !fn(nd.keys[i], nd.children[i]) {
			return false
		}
	}
	return true
}

func (nd *node4) minChild() node {
	if nd.n == 0 {
		return nil
	}
	return nd.children[0]
}

// node16: up to 16 children, sorted key bytes (binary search).
type node16 struct {
	prefix   []byte
	keys     [16]byte
	children [16]node
	n        int
}

func (nd *node16) find(b byte) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (nd *node16) child(b byte) node {
	i := nd.find(b)
	if i < nd.n && nd.keys[i] == b {
		return nd.children[i]
	}
	return nil
}

func (nd *node16) setChild(b byte, c node) bool {
	i := nd.find(b)
	if i < nd.n && nd.keys[i] == b {
		nd.children[i] = c
		return true
	}
	if nd.n == 16 {
		return false
	}
	copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
	copy(nd.children[i+1:nd.n+1], nd.children[i:nd.n])
	nd.keys[i] = b
	nd.children[i] = c
	nd.n++
	return true
}

func (nd *node16) removeChild(b byte) {
	i := nd.find(b)
	if i < nd.n && nd.keys[i] == b {
		copy(nd.keys[i:], nd.keys[i+1:nd.n])
		copy(nd.children[i:], nd.children[i+1:nd.n])
		nd.n--
		nd.children[nd.n] = nil
	}
}

func (nd *node16) numChildren() int   { return nd.n }
func (nd *node16) getPrefix() []byte  { return nd.prefix }
func (nd *node16) setPrefix(p []byte) { nd.prefix = p }

func (nd *node16) walk(fn func(byte, node) bool) bool {
	for i := 0; i < nd.n; i++ {
		if !fn(nd.keys[i], nd.children[i]) {
			return false
		}
	}
	return true
}

func (nd *node16) minChild() node {
	if nd.n == 0 {
		return nil
	}
	return nd.children[0]
}

// node48: 256-entry indirection table into up to 48 children.
type node48 struct {
	prefix   []byte
	index    [256]int8 // -1 = absent
	children [48]node
	n        int
}

func newNode48() *node48 {
	nd := &node48{}
	for i := range nd.index {
		nd.index[i] = -1
	}
	return nd
}

func (nd *node48) child(b byte) node {
	if i := nd.index[b]; i >= 0 {
		return nd.children[i]
	}
	return nil
}

func (nd *node48) setChild(b byte, c node) bool {
	if i := nd.index[b]; i >= 0 {
		nd.children[i] = c
		return true
	}
	if nd.n == 48 {
		return false
	}
	nd.index[b] = int8(nd.n)
	nd.children[nd.n] = c
	nd.n++
	return true
}

func (nd *node48) removeChild(b byte) {
	i := nd.index[b]
	if i < 0 {
		return
	}
	// Move the last child into the vacated slot to keep the array dense.
	last := int8(nd.n - 1)
	nd.children[i] = nd.children[last]
	for bb := 0; bb < 256; bb++ {
		if nd.index[bb] == last {
			nd.index[bb] = i
			break
		}
	}
	nd.children[last] = nil
	nd.index[b] = -1
	nd.n--
}

func (nd *node48) numChildren() int   { return nd.n }
func (nd *node48) getPrefix() []byte  { return nd.prefix }
func (nd *node48) setPrefix(p []byte) { nd.prefix = p }

func (nd *node48) walk(fn func(byte, node) bool) bool {
	for b := 0; b < 256; b++ {
		if i := nd.index[b]; i >= 0 {
			if !fn(byte(b), nd.children[i]) {
				return false
			}
		}
	}
	return true
}

func (nd *node48) minChild() node {
	for b := 0; b < 256; b++ {
		if i := nd.index[b]; i >= 0 {
			return nd.children[i]
		}
	}
	return nil
}

// node256: direct array of children.
type node256 struct {
	prefix   []byte
	children [256]node
	n        int
}

func (nd *node256) child(b byte) node { return nd.children[b] }

func (nd *node256) setChild(b byte, c node) bool {
	if nd.children[b] == nil {
		nd.n++
	}
	nd.children[b] = c
	return true
}

func (nd *node256) removeChild(b byte) {
	if nd.children[b] != nil {
		nd.children[b] = nil
		nd.n--
	}
}

func (nd *node256) numChildren() int   { return nd.n }
func (nd *node256) getPrefix() []byte  { return nd.prefix }
func (nd *node256) setPrefix(p []byte) { nd.prefix = p }

func (nd *node256) walk(fn func(byte, node) bool) bool {
	for b := 0; b < 256; b++ {
		if c := nd.children[b]; c != nil {
			if !fn(byte(b), c) {
				return false
			}
		}
	}
	return true
}

func (nd *node256) minChild() node {
	for b := 0; b < 256; b++ {
		if c := nd.children[b]; c != nil {
			return c
		}
	}
	return nil
}

// grow returns a larger copy of nd.
func grow(nd node) node {
	switch old := nd.(type) {
	case *node4:
		nn := &node16{prefix: old.prefix}
		for i := 0; i < old.n; i++ {
			nn.setChild(old.keys[i], old.children[i])
		}
		return nn
	case *node16:
		nn := newNode48()
		nn.prefix = old.prefix
		for i := 0; i < old.n; i++ {
			nn.setChild(old.keys[i], old.children[i])
		}
		return nn
	case *node48:
		nn := &node256{prefix: old.prefix}
		old.walk(func(b byte, c node) bool {
			nn.setChild(b, c)
			return true
		})
		return nn
	}
	return nd
}

// shrink returns a smaller copy of nd when underfull, or nd itself.
func shrink(nd node) node {
	switch old := nd.(type) {
	case *node16:
		if old.n > 3 {
			return nd
		}
		nn := &node4{prefix: old.prefix}
		for i := 0; i < old.n; i++ {
			nn.setChild(old.keys[i], old.children[i])
		}
		return nn
	case *node48:
		if old.n > 12 {
			return nd
		}
		nn := &node16{prefix: old.prefix}
		old.walk(func(b byte, c node) bool {
			nn.setChild(b, c)
			return true
		})
		return nn
	case *node256:
		if old.n > 40 {
			return nd
		}
		nn := newNode48()
		nn.prefix = old.prefix
		old.walk(func(b byte, c node) bool {
			nn.setChild(b, c)
			return true
		})
		return nn
	}
	return nd
}

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (any, bool) {
	var buf [64]byte
	return t.get(escapeAppend(buf[:0], key))
}

func (t *Tree) get(key []byte) (any, bool) {
	n := t.root
	depth := 0
	for n != nil {
		if l, ok := n.(*leaf); ok {
			if bytes.Equal(l.key, key) {
				return l.val, true
			}
			return nil, false
		}
		p := n.getPrefix()
		if len(p) > 0 {
			if depth+len(p) > len(key) || !bytes.Equal(key[depth:depth+len(p)], p) {
				return nil, false
			}
			depth += len(p)
		}
		if depth >= len(key) {
			// Keys are self-delimiting (prefix-free); a key that ends at an
			// inner node is absent.
			return nil, false
		}
		n = n.child(key[depth])
		depth++
	}
	return nil, false
}

// Put inserts or overwrites key.
func (t *Tree) Put(key []byte, val any) {
	k := escape(key)
	if t.root == nil {
		t.root = &leaf{key: k, val: val}
		t.size++
		return
	}
	if t.put(&t.root, k, val, 0) {
		t.size++
	}
}

// put inserts into *ref at depth; reports whether a new key was added.
func (t *Tree) put(ref *node, key []byte, val any, depth int) bool {
	n := *ref
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			l.val = val
			return false
		}
		// Split: create a node4 with the common prefix of the two keys.
		pl := commonPrefixLen(l.key[depth:], key[depth:])
		nn := &node4{prefix: append([]byte(nil), key[depth:depth+pl]...)}
		// Self-delimiting keys guarantee both continue past depth+pl.
		nn.setChild(l.key[depth+pl], l)
		nn.setChild(key[depth+pl], &leaf{key: key, val: val})
		*ref = nn
		return true
	}

	p := n.getPrefix()
	pl := commonPrefixLen(p, key[depth:])
	if pl < len(p) {
		// Prefix mismatch: split the prefix.
		nn := &node4{prefix: append([]byte(nil), p[:pl]...)}
		n.setPrefix(append([]byte(nil), p[pl+1:]...))
		nn.setChild(p[pl], n)
		nn.setChild(key[depth+pl], &leaf{key: key, val: val})
		*ref = nn
		return true
	}
	depth += len(p)
	b := key[depth]
	child := n.child(b)
	if child == nil {
		lf := &leaf{key: key, val: val}
		if !n.setChild(b, lf) {
			n = grow(n)
			n.setChild(b, lf)
			*ref = n
		}
		return true
	}
	// Descend; need addressable child reference.
	added := t.put(&child, key, val, depth+1)
	n.setChild(b, child)
	return added
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) bool {
	var buf [64]byte
	key = escapeAppend(buf[:0], key)
	if t.root == nil {
		return false
	}
	if l, ok := t.root.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			t.root = nil
			t.size--
			return true
		}
		return false
	}
	if t.del(&t.root, key, 0) {
		t.size--
		return true
	}
	return false
}

func (t *Tree) del(ref *node, key []byte, depth int) bool {
	n := *ref
	p := n.getPrefix()
	if len(p) > 0 {
		if depth+len(p) > len(key) || !bytes.Equal(key[depth:depth+len(p)], p) {
			return false
		}
		depth += len(p)
	}
	if depth >= len(key) {
		return false
	}
	b := key[depth]
	child := n.child(b)
	if child == nil {
		return false
	}
	if l, ok := child.(*leaf); ok {
		if !bytes.Equal(l.key, key) {
			return false
		}
		n.removeChild(b)
		// Collapse single-child node4 into its child (path compression).
		if n4, ok := n.(*node4); ok && n4.n == 1 {
			only := n4.children[0]
			if _, isLeaf := only.(*leaf); !isLeaf {
				np := append(append(append([]byte(nil), n4.prefix...), n4.keys[0]), only.getPrefix()...)
				only.setPrefix(np)
				*ref = only
			} else if n4.n == 1 {
				*ref = only
			}
		} else {
			*ref = shrink(n)
		}
		return true
	}
	ok := t.del(&child, key, depth+1)
	if ok {
		n.setChild(b, child)
	}
	return ok
}

// Ascend iterates all key/value pairs in ascending key order; fn returning
// false stops iteration. Keys passed to fn are the original (unescaped) keys.
func (t *Tree) Ascend(fn func(key []byte, val any) bool) {
	ascend(t.root, fn)
}

func ascend(n node, fn func([]byte, any) bool) bool {
	if n == nil {
		return true
	}
	if l, ok := n.(*leaf); ok {
		return fn(unescape(l.key), l.val)
	}
	return n.walk(func(_ byte, c node) bool {
		return ascend(c, fn)
	})
}

// AscendPrefix iterates pairs whose key starts with prefix, ascending.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key []byte, val any) bool) {
	t.Ascend(func(k []byte, v any) bool {
		if len(k) < len(prefix) {
			if bytes.Compare(k, prefix) > 0 {
				return false
			}
			return true
		}
		c := bytes.Compare(k[:len(prefix)], prefix)
		if c > 0 {
			return false
		}
		if c < 0 {
			return true
		}
		return fn(k, v)
	})
}

// Min returns the smallest key and its value.
func (t *Tree) Min() ([]byte, any, bool) {
	n := t.root
	for n != nil {
		if l, ok := n.(*leaf); ok {
			return unescape(l.key), l.val, true
		}
		n = n.minChild()
	}
	return nil, nil, false
}

// BulkInsert inserts a batch of pairs. Sorting the batch first improves
// locality (the chunk-and-merge strategy the paper describes for building
// the materialized-aggregate ART after population).
func (t *Tree) BulkInsert(pairs []KV) {
	for _, kv := range pairs {
		t.Put(kv.Key, kv.Val)
	}
}
