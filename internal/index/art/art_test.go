package art

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree len != 0")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Error("Get on empty tree")
	}
	if tr.Delete([]byte("x")) {
		t.Error("Delete on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := New()
	tr.Put([]byte("hello"), 1)
	v, ok := tr.Get([]byte("hello"))
	if !ok || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := tr.Get([]byte("hell")); ok {
		t.Error("prefix key should be absent")
	}
	if _, ok := tr.Get([]byte("hello!")); ok {
		t.Error("extension key should be absent")
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), 1)
	tr.Put([]byte("k"), 2)
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
	v, _ := tr.Get([]byte("k"))
	if v.(int) != 2 {
		t.Errorf("v = %v", v)
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys where one is a prefix of another must coexist.
	tr := New()
	keys := []string{"a", "ab", "abc", "abcd", "", "b"}
	for i, k := range keys {
		tr.Put([]byte(k), i)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || v.(int) != i {
			t.Errorf("Get(%q) = %v, %v; want %d", k, v, ok, i)
		}
	}
}

func TestZeroBytes(t *testing.T) {
	tr := New()
	keys := [][]byte{{0}, {0, 0}, {0, 1}, {1, 0}, {0xFF}, {0, 0xFF}}
	for i, k := range keys {
		tr.Put(k, i)
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v.(int) != i {
			t.Errorf("Get(%v) = %v, %v; want %d", k, v, ok, i)
		}
	}
}

func TestNodeGrowth(t *testing.T) {
	// Insert 256 distinct first-bytes to force node4 -> 16 -> 48 -> 256.
	tr := New()
	for i := 0; i < 256; i++ {
		tr.Put([]byte{byte(i), 'x'}, i)
	}
	if tr.Len() != 256 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 256; i++ {
		v, ok := tr.Get([]byte{byte(i), 'x'})
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
}

func TestNodeShrink(t *testing.T) {
	tr := New()
	for i := 0; i < 256; i++ {
		tr.Put([]byte{byte(i)}, i)
	}
	// Delete most, verify remaining survive shrink transitions.
	for i := 0; i < 250; i++ {
		if !tr.Delete([]byte{byte(i)}) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 6 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 250; i < 256; i++ {
		if _, ok := tr.Get([]byte{byte(i)}); !ok {
			t.Errorf("key %d lost after shrink", i)
		}
	}
}

func TestDeleteRestores(t *testing.T) {
	tr := New()
	tr.Put([]byte("shared-prefix-a"), 1)
	tr.Put([]byte("shared-prefix-b"), 2)
	tr.Put([]byte("shared-prefix-c"), 3)
	if !tr.Delete([]byte("shared-prefix-b")) {
		t.Fatal("delete failed")
	}
	if _, ok := tr.Get([]byte("shared-prefix-b")); ok {
		t.Error("deleted key still present")
	}
	for _, k := range []string{"shared-prefix-a", "shared-prefix-c"} {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Errorf("%q lost", k)
		}
	}
	if tr.Delete([]byte("shared-prefix-b")) {
		t.Error("double delete reported true")
	}
}

func TestAscendSorted(t *testing.T) {
	tr := New()
	keys := []string{"banana", "apple", "cherry", "date", "apricot", "a", "b", ""}
	for _, k := range keys {
		tr.Put([]byte(k), k)
	}
	var got []string
	tr.Ascend(func(k []byte, v any) bool {
		got = append(got, string(k))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ascend[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("%03d", i)), i)
	}
	n := 0
	tr.Ascend(func(k []byte, v any) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("visited %d", n)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	for _, k := range []string{"aa1", "aa2", "ab1", "b", "aa"} {
		tr.Put([]byte(k), k)
	}
	var got []string
	tr.AscendPrefix([]byte("aa"), func(k []byte, v any) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"aa", "aa1", "aa2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v want %v", got, want)
		}
	}
}

func TestMin(t *testing.T) {
	tr := New()
	tr.Put([]byte("m"), 1)
	tr.Put([]byte("a"), 2)
	tr.Put([]byte("z"), 3)
	k, v, ok := tr.Min()
	if !ok || string(k) != "a" || v.(int) != 2 {
		t.Errorf("Min = %q, %v, %v", k, v, ok)
	}
}

func TestBulkInsert(t *testing.T) {
	tr := New()
	var pairs []KV
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, KV{Key: []byte(fmt.Sprintf("key-%04d", i)), Val: i})
	}
	tr.BulkInsert(pairs)
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	v, ok := tr.Get([]byte("key-0500"))
	if !ok || v.(int) != 500 {
		t.Errorf("Get = %v, %v", v, ok)
	}
}

// TestAgainstMapRandom compares the tree with a reference map under a long
// random workload of puts, gets and deletes.
func TestAgainstMapRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	ref := map[string]int{}
	randKey := func() []byte {
		n := rng.Intn(12)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte(rng.Intn(8)) // few distinct bytes -> deep shared prefixes
		}
		return k
	}
	for op := 0; op < 50000; op++ {
		k := randKey()
		switch rng.Intn(3) {
		case 0:
			tr.Put(k, op)
			ref[string(k)] = op
		case 1:
			got, ok := tr.Get(k)
			want, wok := ref[string(k)]
			if ok != wok || (ok && got.(int) != want) {
				t.Fatalf("op %d: Get(%v) = %v,%v want %v,%v", op, k, got, ok, want, wok)
			}
		case 2:
			got := tr.Delete(k)
			_, wok := ref[string(k)]
			if got != wok {
				t.Fatalf("op %d: Delete(%v) = %v want %v", op, k, got, wok)
			}
			delete(ref, string(k))
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", op, tr.Len(), len(ref))
		}
	}
	// Final: ascend order must equal sorted ref keys.
	var keys []string
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Ascend(func(k []byte, v any) bool {
		if i >= len(keys) || string(k) != keys[i] {
			t.Fatalf("ascend[%d] = %q, want %q", i, k, keys[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("ascend visited %d, want %d", i, len(keys))
	}
}

func TestQuickPutGet(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New()
		ref := map[string]int{}
		for i, k := range keys {
			tr.Put(k, i)
			ref[string(k)] = i
		}
		for k, want := range ref {
			v, ok := tr.Get([]byte(k))
			if !ok || v.(int) != want {
				return false
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAscendSorted(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New()
		for i, k := range keys {
			tr.Put(k, i)
		}
		var prev []byte
		first := true
		okAll := true
		tr.Ascend(func(k []byte, v any) bool {
			if !first && bytes.Compare(prev, k) >= 0 {
				okAll = false
				return false
			}
			prev = append(prev[:0], k...)
			first = false
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEscapeRoundtrip(t *testing.T) {
	f := func(k []byte) bool {
		return bytes.Equal(unescape(escape(k)), k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapeOrderPreserving(t *testing.T) {
	f := func(a, b []byte) bool {
		ea, eb := escape(a), escape(b)
		c1, c2 := bytes.Compare(a, b), bytes.Compare(ea, eb)
		return (c1 < 0) == (c2 < 0) && (c1 == 0) == (c2 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapePrefixFree(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		ea, eb := escape(a), escape(b)
		return !bytes.HasPrefix(eb, ea) && !bytes.HasPrefix(ea, eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkARTPut(b *testing.B) {
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("group-%06d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		for _, k := range keys {
			tr.Put(k, i)
		}
	}
}

func BenchmarkARTGet(b *testing.B) {
	tr := New()
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("group-%06d", i))
		tr.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}
