package htap

import (
	"sort"
	"strings"
	"testing"

	"openivm/internal/oltp"
	"openivm/internal/sqltypes"
	"openivm/internal/wire"
)

// startPipeline spins up an OLTP store, serves it over TCP, and connects a
// pipeline — the full Figure 3 architecture in-process.
func startPipeline(t *testing.T) (*oltp.Store, *Pipeline) {
	t.Helper()
	store := oltp.New("pg")
	srv := wire.NewServer(store.DB)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return store, New(cl)
}

func mustRemote(t *testing.T, p *Pipeline, sql string) {
	t.Helper()
	if _, err := p.OLTP.Exec(sql); err != nil {
		t.Fatalf("remote %q: %v", sql, err)
	}
}

// crossCheck compares the OLAP-side materialized view against recomputing
// the query on the OLTP side.
func crossCheck(t *testing.T, p *Pipeline, viewCols, view, remoteQuery string) {
	t.Helper()
	res, err := p.Query("SELECT " + viewCols + " FROM " + view)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := p.RecomputeRemote(remoteQuery)
	if err != nil {
		t.Fatal(err)
	}
	var g, w []string
	for _, r := range res.Rows {
		g = append(g, r.String())
	}
	for _, r := range remote.Rows {
		w = append(w, sqltypes.Row(r).String())
	}
	sort.Strings(g)
	sort.Strings(w)
	if strings.Join(g, ";") != strings.Join(w, ";") {
		t.Fatalf("cross-system divergence\n olap: %v\n oltp: %v", g, w)
	}
}

func TestCrossSystemAggregate(t *testing.T) {
	_, p := startPipeline(t)
	mustRemote(t, p, "CREATE TABLE sales (region TEXT, amount INTEGER)")
	mustRemote(t, p, "INSERT INTO sales VALUES ('eu', 10), ('us', 20), ('eu', 5)")

	if err := p.CreateMaterializedView(`CREATE MATERIALIZED VIEW region_totals AS
		SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM sales GROUP BY region`); err != nil {
		t.Fatal(err)
	}
	remoteQ := "SELECT region, SUM(amount), COUNT(*) FROM sales GROUP BY region"
	crossCheck(t, p, "region, total, n", "region_totals", remoteQ)

	// OLTP-side writes propagate across systems.
	mustRemote(t, p, "INSERT INTO sales VALUES ('ap', 7), ('eu', 3)")
	crossCheck(t, p, "region, total, n", "region_totals", remoteQ)

	mustRemote(t, p, "DELETE FROM sales WHERE region = 'us'")
	crossCheck(t, p, "region, total, n", "region_totals", remoteQ)

	mustRemote(t, p, "UPDATE sales SET amount = amount + 100 WHERE region = 'eu'")
	crossCheck(t, p, "region, total, n", "region_totals", remoteQ)

	if p.Stats.DeltasPulled == 0 || p.Stats.Syncs == 0 {
		t.Errorf("stats not recorded: %+v", p.Stats)
	}
}

func TestCrossSystemJoinView(t *testing.T) {
	_, p := startPipeline(t)
	mustRemote(t, p, "CREATE TABLE customers (cid INTEGER, region TEXT)")
	mustRemote(t, p, "CREATE TABLE orders (oid INTEGER, cid INTEGER, amount INTEGER)")
	mustRemote(t, p, "INSERT INTO customers VALUES (1, 'eu'), (2, 'us')")
	mustRemote(t, p, "INSERT INTO orders VALUES (100, 1, 10), (101, 2, 20)")

	if err := p.CreateMaterializedView(`CREATE MATERIALIZED VIEW rs AS
		SELECT c.region, SUM(o.amount) AS total, COUNT(*) AS n
		FROM orders AS o JOIN customers AS c ON o.cid = c.cid GROUP BY c.region`); err != nil {
		t.Fatal(err)
	}
	remoteQ := `SELECT c.region, SUM(o.amount), COUNT(*) FROM orders AS o
		JOIN customers AS c ON o.cid = c.cid GROUP BY c.region`
	crossCheck(t, p, "region, total, n", "rs", remoteQ)

	mustRemote(t, p, "INSERT INTO orders VALUES (102, 1, 30)")
	mustRemote(t, p, "INSERT INTO customers VALUES (3, 'ap')")
	mustRemote(t, p, "INSERT INTO orders VALUES (103, 3, 40)")
	crossCheck(t, p, "region, total, n", "rs", remoteQ)

	mustRemote(t, p, "DELETE FROM orders WHERE oid = 100")
	crossCheck(t, p, "region, total, n", "rs", remoteQ)
}

func TestMirrorIdempotent(t *testing.T) {
	_, p := startPipeline(t)
	mustRemote(t, p, "CREATE TABLE t (a INTEGER)")
	if err := p.Mirror("t"); err != nil {
		t.Fatal(err)
	}
	if err := p.Mirror("t"); err != nil {
		t.Fatalf("second mirror should be a no-op: %v", err)
	}
}

func TestSyncWithoutChangesIsCheap(t *testing.T) {
	_, p := startPipeline(t)
	mustRemote(t, p, "CREATE TABLE t (a INTEGER)")
	if err := p.Mirror("t"); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if p.Stats.DeltasPulled != 0 {
		t.Errorf("no deltas expected, got %d", p.Stats.DeltasPulled)
	}
}

func TestRemoteDeltasClearedAfterSync(t *testing.T) {
	store, p := startPipeline(t)
	mustRemote(t, p, "CREATE TABLE t (a INTEGER)")
	if err := p.CreateMaterializedView(
		"CREATE MATERIALIZED VIEW vt AS SELECT a, COUNT(*) AS n FROM t GROUP BY a"); err != nil {
		t.Fatal(err)
	}
	mustRemote(t, p, "INSERT INTO t VALUES (1), (2)")
	if store.PendingDeltas("t") != 2 {
		t.Fatalf("remote deltas = %d", store.PendingDeltas("t"))
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if store.PendingDeltas("t") != 0 {
		t.Error("remote deltas not cleared")
	}
}

func TestInitialDataMirrored(t *testing.T) {
	_, p := startPipeline(t)
	mustRemote(t, p, "CREATE TABLE t (a INTEGER)")
	mustRemote(t, p, "INSERT INTO t VALUES (1), (2), (3)")
	if err := p.Mirror("t"); err != nil {
		t.Fatal(err)
	}
	res, err := p.OLAP.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Fatalf("mirrored %v rows", res.Rows)
	}
	if p.Stats.RowsMirrored != 3 {
		t.Errorf("stats.RowsMirrored = %d", p.Stats.RowsMirrored)
	}
}
