// Package htap implements the paper's cross-system IVM pipeline (Figure
// 3): a PostgreSQL-style OLTP system receives the transactional workload
// and captures deltas by trigger; a DuckDB-style OLAP system hosts the
// materialized views; this orchestrator bridges the two over the wire
// protocol — mirroring base tables, replaying captured deltas, and
// driving the locally-compiled propagation scripts.
package htap

import (
	"fmt"
	"strings"

	"openivm/internal/engine"
	"openivm/internal/ivm"
	"openivm/internal/ivmext"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
	"openivm/internal/wire"
)

// Pipeline connects one OLTP server (via wire) to one local OLAP engine.
type Pipeline struct {
	OLTP *wire.Client
	OLAP *engine.DB
	Ext  *ivmext.Extension

	// mirrored tracks base tables mirrored into the OLAP engine.
	mirrored map[string]bool

	// Stats for the demo/benchmarks.
	Stats struct {
		Syncs        int
		DeltasPulled int
		RowsMirrored int
	}
}

// New builds a pipeline over an established client connection. The OLAP
// engine is created fresh with the IVM extension installed.
func New(client *wire.Client) *Pipeline {
	db := engine.Open("olap", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	return &Pipeline{OLTP: client, OLAP: db, Ext: ext, mirrored: map[string]bool{}}
}

// Mirror replicates a remote base table into the OLAP engine: schema plus
// a full initial copy (the postgres_scanner-style scan), and asks the
// remote side to enable delta capture for it.
func (p *Pipeline) Mirror(table string) error {
	if p.mirrored[strings.ToLower(table)] {
		return nil
	}
	schema, err := p.OLTP.Schema(table)
	if err != nil {
		return err
	}
	var cols []string
	for _, c := range schema {
		col := c.Name + " " + c.Type
		if c.NotNull {
			col += " NOT NULL"
		}
		cols = append(cols, col)
	}
	if _, err := p.OLAP.Exec(fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s (%s)", table, strings.Join(cols, ", "))); err != nil {
		return err
	}

	// Initial scan.
	resp, err := p.OLTP.Exec("SELECT * FROM " + table)
	if err != nil {
		return err
	}
	tbl, err := p.OLAP.Catalog().Table(table)
	if err != nil {
		return err
	}
	if err := p.OLAP.WithoutTriggers(func() error {
		for _, r := range resp.Rows {
			if err := tbl.Insert(sqltypes.Row(r)); err != nil {
				return err
			}
			p.Stats.RowsMirrored++
		}
		return nil
	}); err != nil {
		return err
	}

	// Remote delta capture: delta table + trigger, exactly the manual
	// PostgreSQL configuration the paper describes.
	deltaCols := append(append([]string{}, cols...), ivm.MultiplicityColumn+" BOOLEAN")
	if _, err := p.OLTP.Exec(fmt.Sprintf("CREATE TABLE IF NOT EXISTS delta_%s (%s)", table, strings.Join(deltaCols, ", "))); err != nil {
		return err
	}
	if _, err := p.OLTP.Exec(fmt.Sprintf(
		"CREATE TRIGGER ivm_capture_%s AFTER INSERT OR DELETE OR UPDATE ON %s FOR EACH ROW EXECUTE 'ivm_capture'",
		table, table)); err != nil {
		return err
	}
	p.mirrored[strings.ToLower(table)] = true
	return nil
}

// CreateMaterializedView mirrors every base table the view needs and then
// creates the view locally through the IVM extension (which compiles the
// propagation scripts and registers local delta capture on the mirrors).
func (p *Pipeline) CreateMaterializedView(sql string) error {
	stmt, err := p.OLAP.Parse(sql)
	if err != nil {
		return err
	}
	for _, tbl := range baseTablesOf(stmt) {
		if err := p.Mirror(tbl); err != nil {
			return err
		}
	}
	_, err = p.OLAP.ExecStmt(stmt)
	return err
}

// Sync pulls buffered deltas for every mirrored table from the OLTP side
// and replays them against the local mirrors. Replay fires the local
// capture triggers, so the compiled propagation scripts then maintain the
// views; with PRAGMA ivm_mode='lazy' the actual fold happens on the next
// view query, with 'eager' it happens during replay.
func (p *Pipeline) Sync() error {
	p.Stats.Syncs++
	for table := range p.mirrored {
		resp, err := p.OLTP.Exec("SELECT * FROM delta_" + table)
		if err != nil {
			return err
		}
		if len(resp.Rows) == 0 {
			continue
		}
		for _, r := range resp.Rows {
			row := sqltypes.Row(r)
			mult := row[len(row)-1].IsTrue()
			if err := p.OLAP.ApplyDeltaRow(table, row[:len(row)-1], mult); err != nil {
				return fmt.Errorf("htap: replaying delta for %s: %w", table, err)
			}
			p.Stats.DeltasPulled++
		}
		if _, err := p.OLTP.Exec("DELETE FROM delta_" + table); err != nil {
			return err
		}
	}
	return nil
}

// Query synchronizes pending deltas and then runs an analytical query on
// the OLAP engine (the materialized views refresh lazily underneath).
func (p *Pipeline) Query(sql string) (*engine.Result, error) {
	if err := p.Sync(); err != nil {
		return nil, err
	}
	return p.OLAP.Exec(sql)
}

// RecomputeRemote runs the analytical query directly against the OLTP
// system — the "pure PostgreSQL" configuration of the demo's comparison.
func (p *Pipeline) RecomputeRemote(sql string) (*wire.Response, error) {
	return p.OLTP.Exec(sql)
}

// baseTablesOf extracts the base-table names from a CREATE MATERIALIZED
// VIEW statement's FROM clause.
func baseTablesOf(stmt sqlparser.Statement) []string {
	cv, ok := stmt.(*sqlparser.CreateViewStmt)
	if !ok || cv.Select == nil || cv.Select.From == nil {
		return nil
	}
	var out []string
	var walk func(tr sqlparser.TableRef)
	walk = func(tr sqlparser.TableRef) {
		switch t := tr.(type) {
		case *sqlparser.NamedTable:
			out = append(out, t.Name)
		case *sqlparser.JoinTable:
			walk(t.Left)
			walk(t.Right)
		}
	}
	walk(cv.Select.From)
	return out
}
