package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTablePrint(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Note = "a note"
	tb.Add("row1", 1, "x")
	tb.Add("row2", time.Millisecond*3, 2.5)
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a note", "row1", "3.00ms", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		2500 * time.Nanosecond:  "2.5µs",
		3 * time.Millisecond:    "3.00ms",
		1500 * time.Millisecond: "1.500s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Millisecond, 2*time.Millisecond); got != "5.0x" {
		t.Errorf("got %q", got)
	}
	if got := Speedup(time.Millisecond, 0); got != "inf" {
		t.Errorf("got %q", got)
	}
}

func TestSortRows(t *testing.T) {
	tb := NewTable("t", "c")
	tb.Add("b", 1)
	tb.Add("a", 2)
	tb.SortRows()
	if tb.Rows[0].Label != "a" {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestTimeHelpers(t *testing.T) {
	d, err := Time(func() error { return nil })
	if err != nil || d < 0 {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTime should panic on error")
		}
	}()
	MustTime(func() error { return errTest })
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "boom" }

// --- experiment smoke tests: every experiment runs end-to-end at small
// scale and produces a well-formed table.

func TestE1(t *testing.T) {
	tb, sql, err := E1Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, want := range []string{"CREATE TABLE IF NOT EXISTS delta_groups", "INSERT OR REPLACE INTO query_groups"} {
		if !strings.Contains(sql, want) {
			t.Errorf("emitted SQL missing %q", want)
		}
	}
}

func TestE2(t *testing.T) {
	tb, err := E2IncrementalVsRecompute(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE3(t *testing.T) {
	tb, err := E3CrossSystem(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d (want the 4-way comparison)", len(tb.Rows))
	}
	labels := map[string]bool{}
	for _, r := range tb.Rows {
		labels[r.Label] = true
	}
	for _, want := range []string{"pure OLAP (recompute)", "pure OLTP (recompute)", "cross-system + IVM", "cross-system no IVM"} {
		if !labels[want] {
			t.Errorf("missing case %q", want)
		}
	}
}

func TestE4(t *testing.T) {
	tb, err := E4IndexOverhead(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestE5(t *testing.T) {
	tb, err := E5Strategies(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 || len(tb.Rows[0].Cells) != 4 {
		t.Fatalf("table malformed: %+v", tb.Rows)
	}
}

func TestE6(t *testing.T) {
	tb, err := E6Batching(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE7(t *testing.T) {
	tb, err := E7JoinIVM(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestE8(t *testing.T) {
	tb, err := E8AutoStrategy(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tb.Rows {
		choice := r.Cells[len(r.Cells)-1]
		if choice != "upsert_left_join" && choice != "union_regroup" {
			t.Errorf("auto choice not recorded: %v", r)
		}
	}
}
