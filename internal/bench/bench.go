// Package bench is the measurement harness behind cmd/benchivm and the
// testing.B benchmarks: wall-clock timers, derived ratios, and a fixed-
// width table printer that renders each experiment the way the paper's
// demo reports them.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Timer measures one labelled phase.
type Timer struct {
	start time.Time
}

// Start begins timing.
func Start() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the elapsed duration.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Time runs fn and returns its duration.
func Time(fn func() error) (time.Duration, error) {
	t := Start()
	err := fn()
	return t.Elapsed(), err
}

// MustTime runs fn and panics on error (experiment code paths are
// pre-validated by the test suite; a failure here is a harness bug).
func MustTime(fn func() error) time.Duration {
	d, err := Time(fn)
	if err != nil {
		panic(fmt.Sprintf("bench: measured operation failed: %v", err))
	}
	return d
}

// Row is one result row: label plus column values.
type Row struct {
	Label string
	Cells []string
}

// Table accumulates experiment results for printing.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    []Row
}

// NewTable builds a table with the given title and column headers (the
// first column is the row label).
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row.
func (t *Table) Add(label string, cells ...any) {
	row := Row{Label: label}
	for _, c := range cells {
		row.Cells = append(row.Cells, formatCell(c))
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case time.Duration:
		return FormatDuration(v)
	case float64:
		if v == float64(int64(v)) && v < 1e12 {
			return fmt.Sprintf("%.0f", v)
		}
		return fmt.Sprintf("%.2f", v)
	case string:
		return v
	default:
		return fmt.Sprint(v)
	}
}

// FormatDuration renders durations with benchmark-friendly precision.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Speedup formats a ratio as "N.Nx"; ratios below 1 render as "0.NNx".
func Speedup(baseline, measured time.Duration) string {
	if measured <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(baseline)/float64(measured))
}

// Print renders the table to w.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("case")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) && len(r.Cells[i]) > widths[i+1] {
				widths[i+1] = len(r.Cells[i])
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(append([]string{"case"}, t.Columns...))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		line(append([]string{r.Label}, r.Cells...))
	}
}

// SortRows orders rows by label (useful when cases run out of order).
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Label < t.Rows[j].Label })
}
