package bench

import (
	"fmt"
	"time"

	"openivm/internal/engine"
	"openivm/internal/ivmext"
	"openivm/internal/oltp"
	"openivm/internal/wire"
	"openivm/internal/workload"

	"openivm/internal/htap"
)

// Scale controls experiment sizes so the same code drives quick test runs
// and the full benchmark binary.
type Scale struct {
	// Mult scales row counts (1 = paper-ish laptop scale).
	Rows   []int // base table sizes for sweeps
	Deltas []float64
	Groups []int
	Stream int // update-stream length
	Batch  []int
}

// SmallScale keeps every experiment under ~1s for tests.
func SmallScale() Scale {
	return Scale{
		Rows:   []int{2000},
		Deltas: []float64{0.001, 0.01, 0.1},
		Groups: []int{16, 256},
		Stream: 200,
		Batch:  []int{1, 10, 100},
	}
}

// FullScale is the configuration cmd/benchivm runs.
func FullScale() Scale {
	return Scale{
		Rows:   []int{10000, 100000, 1000000},
		Deltas: []float64{0.0001, 0.001, 0.01, 0.1},
		Groups: []int{10, 1000, 100000},
		Stream: 2000,
		Batch:  []int{1, 10, 100, 1000, 10000},
	}
}

const listing1View = `CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
	SUM(group_value) AS total_value FROM groups GROUP BY group_index`

// newIVMDB builds a DuckDB-dialect engine with the extension installed and
// the groups workload loaded.
func newIVMDB(rows, groups int, pragmas ...string) (*engine.DB, *ivmext.Extension, error) {
	db := engine.Open("bench", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	for _, p := range pragmas {
		if _, err := db.Exec(p); err != nil {
			return nil, nil, err
		}
	}
	w := workload.Groups{Rows: rows, NumGroups: groups, Seed: 42}
	if err := w.Load(db); err != nil {
		return nil, nil, err
	}
	return db, ext, nil
}

// E1Compile regenerates the paper's Listings 1-2: it compiles the example
// view and returns the emitted scripts as a table of statement counts plus
// the SQL itself via the note.
func E1Compile() (*Table, string, error) {
	db := engine.Open("e1", engine.DialectDuckDB)
	ext := ivmext.Install(db)
	if _, err := db.Exec("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"); err != nil {
		return nil, "", err
	}
	if _, err := db.Exec(listing1View); err != nil {
		return nil, "", err
	}
	setup, prop, err := ext.Scripts("query_groups")
	if err != nil {
		return nil, "", err
	}
	t := NewTable("E1: Listing 1 compilation (paper Listings 1-2)",
		"statements", "bytes")
	t.Add("setup DDL", countStmts(setup), len(setup))
	t.Add("propagation", countStmts(prop), len(prop))
	full := "-- setup --\n" + setup + "\n-- propagation --\n" + prop
	return t, full, nil
}

func countStmts(script string) int {
	return len(engine.SplitStatements(script))
}

// E2IncrementalVsRecompute measures IVM refresh cost against full
// recomputation across base sizes and delta fractions — the core claim of
// the demo ("incremental computation … more efficient than recalculating
// V each time it is queried").
func E2IncrementalVsRecompute(s Scale) (*Table, error) {
	t := NewTable("E2: IVM refresh vs full recomputation (groups, SUM group-by)",
		"base_rows", "delta_rows", "ivm_refresh", "recompute", "speedup")
	t.Note = "speedup >1x means IVM wins; expect crossover as delta fraction grows"
	for _, rows := range s.Rows {
		for _, frac := range s.Deltas {
			deltaRows := int(float64(rows) * frac)
			if deltaRows < 1 {
				deltaRows = 1
			}
			groups := s.Groups[len(s.Groups)-1]
			if groups > rows {
				groups = rows
			}
			db, _, err := newIVMDB(rows, groups)
			if err != nil {
				return nil, err
			}
			if _, err := db.Exec(listing1View); err != nil {
				return nil, err
			}
			w := workload.Groups{Rows: rows, NumGroups: groups}
			if _, err := db.Exec(w.InsertBatch(deltaRows, 7)); err != nil {
				return nil, err
			}
			ivmTime := MustTime(func() error {
				_, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups")
				return err
			})
			recomputeTime := MustTime(func() error {
				_, err := db.Exec("SELECT group_index, SUM(group_value) FROM groups GROUP BY group_index")
				return err
			})
			t.Add(fmt.Sprintf("%dx%s", rows, workload.Fraction(frac)),
				rows, deltaRows, ivmTime, recomputeTime, Speedup(recomputeTime, ivmTime))
		}
	}
	return t, nil
}

// E3CrossSystem reproduces the demo's four-way comparison: pure OLAP
// (DuckDB-style), pure OLTP (PostgreSQL-style), cross-system with IVM, and
// cross-system recomputation without IVM.
func E3CrossSystem(s Scale) (*Table, error) {
	// Use the mid-range base size: recompute cost grows with the base
	// while IVM sync cost grows only with the delta stream, so the base
	// must dwarf the stream for the paper's shape to be visible.
	rows := s.Rows[(len(s.Rows)-1+1)/2]
	streamLen := s.Stream
	sales := workload.Sales{Customers: rows / 10, Orders: rows, Regions: 16, Seed: 1}
	query := "SELECT region, SUM(amount) AS total FROM orders JOIN customers ON orders.cid = customers.cid GROUP BY region"
	viewSQL := `CREATE MATERIALIZED VIEW region_totals AS
		SELECT customers.region, SUM(orders.amount) AS total
		FROM orders JOIN customers ON orders.cid = customers.cid
		GROUP BY customers.region`

	t := NewTable("E3: cross-system HTAP comparison (query latency after a delta batch)",
		"apply_stream", "analytic_query", "total")
	t.Note = fmt.Sprintf("%d base orders, %d-statement update stream over TCP", rows, streamLen)

	// (a) pure OLAP: everything in the analytical engine, view recomputed.
	{
		db := engine.Open("olap", engine.DialectDuckDB)
		if err := sales.Load(db, true); err != nil {
			return nil, err
		}
		stream := sales.OrderStream(streamLen, 3)
		apply := MustTime(func() error {
			for _, u := range stream {
				if _, err := db.Exec(u.SQL); err != nil {
					return err
				}
			}
			return nil
		})
		q := MustTime(func() error { _, err := db.Exec(query); return err })
		t.Add("pure OLAP (recompute)", apply, q, apply+q)
	}

	// (b) pure OLTP: the same, in the row-store engine.
	{
		store := oltp.New("pg")
		if err := sales.Load(store.DB, true); err != nil {
			return nil, err
		}
		stream := sales.OrderStream(streamLen, 3)
		apply := MustTime(func() error {
			for _, u := range stream {
				if _, err := store.DB.Exec(u.SQL); err != nil {
					return err
				}
			}
			return nil
		})
		q := MustTime(func() error { _, err := store.DB.Exec(query); return err })
		t.Add("pure OLTP (recompute)", apply, q, apply+q)
	}

	// (c) cross-system with IVM and (d) without (full re-pull + recompute).
	for _, withIVM := range []bool{true, false} {
		store := oltp.New("pg")
		if err := sales.Load(store.DB, true); err != nil {
			return nil, err
		}
		srv := wire.NewServer(store.DB)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		cl, err := wire.Dial(addr)
		if err != nil {
			srv.Close()
			return nil, err
		}
		p := htap.New(cl)
		if withIVM {
			if err := p.CreateMaterializedView(viewSQL); err != nil {
				return nil, err
			}
		}
		stream := sales.OrderStream(streamLen, 3)
		apply := MustTime(func() error {
			for _, u := range stream {
				if _, err := cl.Exec(u.SQL); err != nil {
					return err
				}
			}
			return nil
		})
		var q time.Duration
		if withIVM {
			q = MustTime(func() error {
				_, err := p.Query("SELECT region, total FROM region_totals")
				return err
			})
			t.Add("cross-system + IVM", apply, q, apply+q)
		} else {
			q = MustTime(func() error {
				_, err := p.RecomputeRemote(query)
				return err
			})
			t.Add("cross-system no IVM", apply, q, apply+q)
		}
		cl.Close()
		srv.Close()
	}
	return t, nil
}

// E4IndexOverhead measures the ART (group-key index) build cost at view
// creation against the upsert speedup it buys during refresh — the paper's
// "creation only adds significant overhead the first time".
func E4IndexOverhead(s Scale) (*Table, error) {
	t := NewTable("E4: ART index build overhead vs refresh benefit",
		"groups", "create_with_index", "create_no_index", "refresh_upsert", "refresh_union")
	rows := s.Rows[0] * 10
	for _, groups := range s.Groups {
		if groups > rows {
			continue
		}
		var createIdx, createNoIdx, refreshUpsert, refreshUnion time.Duration
		// With index (upsert strategy needs it).
		{
			db, _, err := newIVMDB(rows, groups)
			if err != nil {
				return nil, err
			}
			createIdx = MustTime(func() error { _, err := db.Exec(listing1View); return err })
			w := workload.Groups{Rows: rows, NumGroups: groups}
			db.Exec(w.InsertBatch(rows/100+1, 9))
			refreshUpsert = MustTime(func() error {
				_, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups")
				return err
			})
		}
		// Without index (union_regroup does not need one).
		{
			db, _, err := newIVMDB(rows, groups, "PRAGMA ivm_strategy='union_regroup'")
			if err != nil {
				return nil, err
			}
			createNoIdx = MustTime(func() error { _, err := db.Exec(listing1View); return err })
			w := workload.Groups{Rows: rows, NumGroups: groups}
			db.Exec(w.InsertBatch(rows/100+1, 9))
			refreshUnion = MustTime(func() error {
				_, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups")
				return err
			})
		}
		t.Add(fmt.Sprintf("|G|=%d", groups), groups, createIdx, createNoIdx, refreshUpsert, refreshUnion)
	}
	return t, nil
}

// E5Strategies ablates the three combine strategies across group counts.
func E5Strategies(s Scale) (*Table, error) {
	t := NewTable("E5: combine-strategy ablation (refresh latency)",
		"groups", "upsert_left_join", "union_regroup", "full_outer_join")
	rows := s.Rows[0] * 10
	for _, groups := range s.Groups {
		if groups > rows {
			continue
		}
		var cells []any
		cells = append(cells, groups)
		for _, strat := range []string{"upsert_left_join", "union_regroup", "full_outer_join"} {
			db, _, err := newIVMDB(rows, groups, "PRAGMA ivm_strategy='"+strat+"'")
			if err != nil {
				return nil, err
			}
			if _, err := db.Exec(listing1View); err != nil {
				return nil, err
			}
			w := workload.Groups{Rows: rows, NumGroups: groups}
			db.Exec(w.InsertBatch(rows/100+1, 11))
			d := MustTime(func() error {
				_, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups")
				return err
			})
			cells = append(cells, d)
		}
		t.Add(fmt.Sprintf("|G|=%d", groups), cells...)
	}
	return t, nil
}

// E6Batching sweeps propagation batch size: eager per-statement refresh vs
// increasingly batched lazy refresh, reporting throughput and worst-case
// staleness (the recency trade-off of §1).
func E6Batching(s Scale) (*Table, error) {
	t := NewTable("E6: batch size vs throughput and staleness",
		"batch", "total_time", "stmts_per_sec", "max_stale_stmts")
	rows := s.Rows[0]
	groups := s.Groups[0]
	for _, batch := range s.Batch {
		db, _, err := newIVMDB(rows, groups)
		if err != nil {
			return nil, err
		}
		mode := "lazy"
		if batch == 1 {
			mode = "eager"
		}
		db.Exec("PRAGMA ivm_mode='" + mode + "'")
		if _, err := db.Exec(listing1View); err != nil {
			return nil, err
		}
		w := workload.Groups{Rows: rows, NumGroups: groups}
		stream := w.UpdateStream(s.Stream, 0.8, 0.1, 13)
		total := MustTime(func() error {
			for i, u := range stream {
				if _, err := db.Exec(u.SQL); err != nil {
					return err
				}
				if mode == "lazy" && (i+1)%batch == 0 {
					if _, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups"); err != nil {
						return err
					}
				}
			}
			if mode == "lazy" {
				_, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups")
				return err
			}
			return nil
		})
		rate := float64(len(stream)) / total.Seconds()
		t.Add(fmt.Sprintf("batch=%d(%s)", batch, mode), batch, total, rate, batch)
	}
	return t, nil
}

// E8AutoStrategy compares the fixed combine strategies against the
// runtime cost-based choice (PRAGMA ivm_strategy='auto') across workloads
// where different strategies win — the paper's future-work direction,
// implemented.
func E8AutoStrategy(s Scale) (*Table, error) {
	t := NewTable("E8: cost-based strategy selection (beyond-paper extension)",
		"groups", "delta", "upsert", "regroup", "auto", "auto_choice")
	rows := s.Rows[0] * 10
	cases := []struct {
		groups, delta int
	}{
		{s.Groups[0], rows / 4},                    // small view, big delta -> regroup should win
		{s.Groups[len(s.Groups)-1], rows/1000 + 1}, // big view, small delta -> upsert should win
	}
	for _, cse := range cases {
		if cse.groups > rows {
			continue
		}
		var cells []any
		cells = append(cells, cse.groups, cse.delta)
		var choice string
		for _, strat := range []string{"upsert_left_join", "union_regroup", "auto"} {
			db, ext, err := newIVMDB(rows, cse.groups, "PRAGMA ivm_strategy='"+strat+"'")
			if err != nil {
				return nil, err
			}
			if _, err := db.Exec(listing1View); err != nil {
				return nil, err
			}
			w := workload.Groups{Rows: rows, NumGroups: cse.groups}
			if _, err := db.Exec(w.InsertBatch(cse.delta, 21)); err != nil {
				return nil, err
			}
			d := MustTime(func() error {
				_, err := db.Exec("REFRESH MATERIALIZED VIEW query_groups")
				return err
			})
			cells = append(cells, d)
			if strat == "auto" {
				for name, n := range ext.Stats.AutoChoices {
					if n > 0 {
						choice = name
					}
				}
			}
		}
		cells = append(cells, choice)
		t.Add(fmt.Sprintf("|G|=%d,delta=%d", cse.groups, cse.delta), cells...)
	}
	return t, nil
}

// E7JoinIVM measures incremental join maintenance against join recompute
// across build-side cardinalities (paper: joins benefit "especially when
// the joined part has just a few unique keys").
func E7JoinIVM(s Scale) (*Table, error) {
	t := NewTable("E7: incremental join maintenance vs recompute",
		"customers", "orders", "ivm_refresh", "recompute", "speedup")
	orders := s.Rows[0] * 5
	for _, customers := range s.Groups {
		if customers > orders {
			continue
		}
		db := engine.Open("e7", engine.DialectDuckDB)
		ivmext.Install(db)
		sales := workload.Sales{Customers: customers, Orders: orders, Regions: 8, Seed: 5}
		if err := sales.Load(db, true); err != nil {
			return nil, err
		}
		if _, err := db.Exec(`CREATE MATERIALIZED VIEW region_totals AS
			SELECT customers.region, SUM(orders.amount) AS total, COUNT(*) AS n
			FROM orders JOIN customers ON orders.cid = customers.cid
			GROUP BY customers.region`); err != nil {
			return nil, err
		}
		for _, u := range sales.OrderStream(orders/100+1, 15) {
			if _, err := db.Exec(u.SQL); err != nil {
				return nil, err
			}
		}
		ivmTime := MustTime(func() error {
			_, err := db.Exec("REFRESH MATERIALIZED VIEW region_totals")
			return err
		})
		recompute := MustTime(func() error {
			_, err := db.Exec(`SELECT customers.region, SUM(orders.amount), COUNT(*)
				FROM orders JOIN customers ON orders.cid = customers.cid
				GROUP BY customers.region`)
			return err
		})
		t.Add(fmt.Sprintf("|C|=%d", customers), customers, orders, ivmTime, recompute,
			Speedup(recompute, ivmTime))
	}
	return t, nil
}
