// Package ivm implements the paper's primary contribution: the OpenIVM
// SQL-to-SQL compiler. Given a database schema and a materialized-view
// definition, it emits
//
//  1. DDL creating the delta tables ΔT (base columns plus a boolean
//     multiplicity column), the table materializing the view V, the
//     delta-view table ΔV, any intermediate tables (for join views) and
//     the index structures aggregate maintenance needs;
//  2. a propagation script — plain SQL implementing the DBSP-style
//     incremental form of the view query, in four post-processing steps:
//     (1) insert Q*(ΔT) into ΔV, (2) fold ΔV into V, (3) delete
//     invalidated rows from V, (4) truncate ΔV and ΔT.
//
// All SQL is built as a DuckAST operator tree and rendered in the dialect
// selected by a compiler flag, so the same compilation drives both the
// DuckDB-style engine and the PostgreSQL-style engine (cross-system IVM).
//
// The compiler links the embedded engine (internal/engine) the way OpenIVM
// links DuckDB: it uses the engine's parser, binder and planner to
// validate and type the view definition before rewriting it.
package ivm

import (
	"fmt"
	"strings"

	"openivm/internal/duckast"
	"openivm/internal/engine"
	"openivm/internal/expr"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// MultiplicityColumn is the boolean Z-set weight column appended to every
// delta table: TRUE marks an insertion, FALSE a deletion. The name follows
// the paper's generated SQL.
const MultiplicityColumn = "_duckdb_ivm_multiplicity"

// HiddenCountColumn is the hidden per-group cardinality column maintained
// under EmptyHiddenCount empty-group detection.
const HiddenCountColumn = "_duckdb_ivm_count"

// Strategy selects how ΔV is folded into V (paper §2: "replacing the
// materialized table with a UNION and regrouping, or through a
// full-outer-join, or maintaining it with a left-join with an UPSERT").
type Strategy int

// Combine strategies.
const (
	// StrategyUpsertLeftJoin is the paper's Listing 2 plan: LEFT JOIN the
	// (pre-aggregated) ΔV against V and INSERT OR REPLACE the combined
	// rows. Requires an index (primary key) on the group columns.
	StrategyUpsertLeftJoin Strategy = iota
	// StrategyUnionRegroup recomputes the view as V ∪ ΔV regrouped —
	// no index required, cost proportional to |V|.
	StrategyUnionRegroup
	// StrategyFullOuterJoin folds via V FULL OUTER JOIN ΔV, rebuilding the
	// table from the join result.
	StrategyFullOuterJoin
)

// ParseStrategy maps a flag string to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "", "upsert", "upsert_left_join", "left_join":
		return StrategyUpsertLeftJoin, nil
	case "union", "union_regroup", "regroup":
		return StrategyUnionRegroup, nil
	case "full_outer_join", "outer_join", "foj":
		return StrategyFullOuterJoin, nil
	}
	return StrategyUpsertLeftJoin, fmt.Errorf("ivm: unknown strategy %q", s)
}

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyUnionRegroup:
		return "union_regroup"
	case StrategyFullOuterJoin:
		return "full_outer_join"
	}
	return "upsert_left_join"
}

// EmptyDetection selects how step 3 recognizes groups that became empty.
type EmptyDetection int

// Empty-group detection modes.
const (
	// EmptySumZero is the paper's Listing 2 behaviour: delete rows whose
	// COUNT aggregate is 0, or — lacking a COUNT — whose SUM is 0. Faithful
	// to the paper but unsound for views whose SUM legitimately reaches 0;
	// see EmptyHiddenCount.
	EmptySumZero EmptyDetection = iota
	// EmptyHiddenCount appends a hidden COUNT(*) column to the view table
	// and deletes rows where it reaches 0 — sound for all inputs.
	EmptyHiddenCount
)

// ParseEmptyDetection maps a flag string.
func ParseEmptyDetection(s string) (EmptyDetection, error) {
	switch strings.ToLower(s) {
	case "", "sum_zero", "paper":
		return EmptySumZero, nil
	case "hidden_count", "count":
		return EmptyHiddenCount, nil
	}
	return EmptySumZero, fmt.Errorf("ivm: unknown empty-group detection %q", s)
}

// Options are the compiler switches (paper Figure 1: "users can specify
// the expected optimization strategies through flags").
type Options struct {
	// Dialect selects the SQL dialect of the emitted scripts.
	Dialect duckast.Dialect
	// Strategy selects the ΔV→V combine plan for aggregate views.
	Strategy Strategy
	// Empty selects empty-group detection for step 3.
	Empty EmptyDetection
	// CreateIndex controls whether the setup script creates the ART-backed
	// index (primary key on group columns) that upsert maintenance needs.
	// Disabled automatically for strategies that do not upsert.
	CreateIndex bool
	// DeltaPrefix prefixes generated delta-table names (default "delta_").
	DeltaPrefix string
}

// DefaultOptions returns the paper-faithful defaults.
func DefaultOptions() Options {
	return Options{
		Dialect:     duckast.DialectDuckDB,
		Strategy:    StrategyUpsertLeftJoin,
		Empty:       EmptySumZero,
		CreateIndex: true,
		DeltaPrefix: "delta_",
	}
}

// QueryClass classifies a view definition into the compiler's supported
// incremental forms.
type QueryClass int

// Query classes.
const (
	// ClassProjection is a single-table SELECT of scalar expressions with
	// an optional WHERE (σ/π: incremental form identical to the query).
	ClassProjection QueryClass = iota
	// ClassAggregate is a single-table GROUP BY with SUM/COUNT/MIN/MAX.
	ClassAggregate
	// ClassJoin is a two-table equi-join of scalar expressions (DBSP
	// product rule: ΔV = ΔA⋈B' + A'⋈ΔB − ΔA⋈ΔB).
	ClassJoin
	// ClassJoinAggregate composes ClassJoin with ClassAggregate through an
	// intermediate join-delta table.
	ClassJoinAggregate
)

// String names the class the way the metadata tables store it.
func (c QueryClass) String() string {
	switch c {
	case ClassProjection:
		return "projection"
	case ClassAggregate:
		return "aggregate"
	case ClassJoin:
		return "join"
	case ClassJoinAggregate:
		return "join_aggregate"
	}
	return "unknown"
}

// ViewColumn describes one output column of the compiled view.
type ViewColumn struct {
	Name       string
	Type       sqltypes.Type
	IsGroupKey bool
	// Agg is set for aggregate result columns.
	Agg expr.AggKind
	// HasAgg distinguishes Agg's zero value from "no aggregate".
	HasAgg bool
	// SourceSQL is the defining expression rendered as SQL (projection of
	// the base/delta table columns).
	SourceSQL string
	// ArgIdx is the column's index within the view's aggregate columns
	// (used to name intermediate aggregate-argument columns consistently).
	ArgIdx int
}

// BaseTable captures one base table referenced by the view.
type BaseTable struct {
	Name  string
	Alias string // binding alias inside the view query
	Delta string // generated delta table name (the open generation)
	// Sealed is the twin table holding sealed delta generations: the
	// runtime drains ΔT into ΔT_sealed atomically before propagating, so
	// writers keep appending to ΔT while the propagation consumes the
	// sealed rows. The paper-faithful standalone script ignores it.
	Sealed  string
	Columns []duckast.ColumnDef
}

// Compilation is the full compiler output for one materialized view.
type Compilation struct {
	ViewName string
	Class    QueryClass
	Options  Options

	Bases     []BaseTable
	DeltaView string // delta table of the view itself
	// JoinDelta is the intermediate join-delta table (join classes only).
	JoinDelta string
	// Storage is the table that physically materializes the view. It
	// equals ViewName except when AVG decomposition is in play, in which
	// case a hidden storage table holds the decomposed SUM/COUNT columns
	// and ViewName becomes a plain SQL view over it.
	Storage string

	Columns []ViewColumn
	// storageCols caches the physical column layout (AVG columns expanded
	// into their SUM and COUNT parts).
	storageCols []ViewColumn

	// Setup holds the DDL script; Propagate the 4-step maintenance script.
	Setup     *duckast.Script
	Propagate *duckast.Script
	// AltCombine holds the step-2 combine script compiled under each
	// alternative strategy, enabling the runtime's cost-based choice (the
	// paper's envisioned cost-based optimization over the IVM plan space).
	// Keys are the Strategy values; the script replaces PropagateBody's
	// combine statements when selected.
	AltBodies map[Strategy]*duckast.Script
	// PropagateBody is steps 1–3 plus ΔV truncation, without the base
	// delta truncation — the runtime uses it to coordinate several views
	// that share base tables (the base ΔT is truncated once, after every
	// dependent view has consumed it). Propagate = PropagateBody +
	// TruncateBase and remains the paper-faithful standalone script.
	PropagateBody *duckast.Script
	// TruncateBase clears the base delta tables (step 4's ΔT part).
	TruncateBase *duckast.Script
	// SealedBody / SealedAltBodies / SealedTruncate are the
	// generation-aware variants of PropagateBody / AltBodies /
	// TruncateBase: identical scripts except that every read of a base
	// delta table ΔT goes to its sealed twin ΔT_sealed, and the final
	// truncation clears the sealed twins. The runtime seals the open
	// generation (drains ΔT → ΔT_sealed) before running these, so capture
	// into ΔT never waits out a propagation.
	SealedBody      *duckast.Script
	SealedAltBodies map[Strategy]*duckast.Script
	SealedTruncate  *duckast.Script
	// PopulateSQL fills V from the current base-table contents (initial
	// materialization).
	Populate *duckast.Script

	// Select is the parsed view definition.
	Select *sqlparser.SelectStmt
	// SourceSQL is the original view definition text.
	SourceSQL string
}

// SetupSQL renders the DDL script in the compilation's dialect.
func (c *Compilation) SetupSQL() string { return c.Setup.SQL(c.Options.Dialect) }

// PropagateSQL renders the propagation script in the compilation's dialect.
func (c *Compilation) PropagateSQL() string { return c.Propagate.SQL(c.Options.Dialect) }

// PopulateSQLText renders the initial-materialization script.
func (c *Compilation) PopulateSQLText() string { return c.Populate.SQL(c.Options.Dialect) }

// BaseTableNames lists the referenced base tables.
func (c *Compilation) BaseTableNames() []string {
	out := make([]string, len(c.Bases))
	for i, b := range c.Bases {
		out[i] = b.Name
	}
	return out
}

// DeltaFor returns the delta-table name for a base table ("" if the table
// is not referenced).
func (c *Compilation) DeltaFor(base string) string {
	for _, b := range c.Bases {
		if strings.EqualFold(b.Name, base) {
			return b.Delta
		}
	}
	return ""
}

// GroupColumns returns the group-key view columns.
func (c *Compilation) GroupColumns() []ViewColumn {
	var out []ViewColumn
	for _, col := range c.Columns {
		if col.IsGroupKey {
			out = append(out, col)
		}
	}
	return out
}

// AggColumns returns the aggregate view columns.
func (c *Compilation) AggColumns() []ViewColumn {
	var out []ViewColumn
	for _, col := range c.Columns {
		if col.HasAgg {
			out = append(out, col)
		}
	}
	return out
}

// HasAvg reports whether any view column is an AVG (decomposed into hidden
// SUM and COUNT storage columns).
func (c *Compilation) HasAvg() bool {
	for _, col := range c.Columns {
		if col.HasAgg && col.Agg == expr.AggAvg {
			return true
		}
	}
	return false
}

// StorageColumns returns the physical layout of the storage table: the
// view columns with every AVG expanded into a SUM part and a COUNT part.
func (c *Compilation) StorageColumns() []ViewColumn {
	if c.storageCols != nil {
		return c.storageCols
	}
	for _, col := range c.Columns {
		if col.HasAgg && col.Agg == expr.AggAvg {
			c.storageCols = append(c.storageCols,
				ViewColumn{Name: col.Name + "_ivm_sum", Type: sqltypes.TypeFloat,
					Agg: expr.AggSum, HasAgg: true, SourceSQL: col.SourceSQL, ArgIdx: col.ArgIdx},
				ViewColumn{Name: col.Name + "_ivm_cnt", Type: sqltypes.TypeInt,
					Agg: expr.AggCount, HasAgg: true, SourceSQL: col.SourceSQL, ArgIdx: col.ArgIdx})
			continue
		}
		c.storageCols = append(c.storageCols, col)
	}
	return c.storageCols
}

// ExposedViewSQL returns the CREATE VIEW statement exposing the declared
// view columns over the storage table, or "" when the storage table *is*
// the view (no AVG decomposition).
func (c *Compilation) ExposedViewSQL() string {
	if !c.HasAvg() {
		return ""
	}
	var items []string
	for _, col := range c.Columns {
		if col.HasAgg && col.Agg == expr.AggAvg {
			items = append(items, fmt.Sprintf(
				"CAST(%s_ivm_sum AS DOUBLE) / %s_ivm_cnt AS %s", col.Name, col.Name, col.Name))
			continue
		}
		items = append(items, col.Name)
	}
	return fmt.Sprintf("CREATE VIEW %s AS SELECT %s FROM %s",
		c.ViewName, strings.Join(items, ", "), c.Storage)
}

// Compiler compiles view definitions against a schema held by an embedded
// engine instance (the "DuckDB inside OpenIVM" of Figure 1).
type Compiler struct {
	DB   *engine.DB
	Opts Options
}

// NewCompiler returns a compiler over db with the given options.
func NewCompiler(db *engine.DB, opts Options) *Compiler {
	if opts.DeltaPrefix == "" {
		opts.DeltaPrefix = "delta_"
	}
	return &Compiler{DB: db, Opts: opts}
}

// CompileSQL parses a CREATE MATERIALIZED VIEW statement and compiles it.
func (c *Compiler) CompileSQL(sql string) (*Compilation, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	cv, ok := stmt.(*sqlparser.CreateViewStmt)
	if !ok {
		return nil, fmt.Errorf("ivm: expected CREATE MATERIALIZED VIEW, got %T", stmt)
	}
	if !cv.Materialized {
		return nil, fmt.Errorf("ivm: view %q is not MATERIALIZED", cv.Name)
	}
	return c.Compile(cv.Name, cv.Select, cv.SourceSQL)
}
