package ivm

import (
	"fmt"
	"strings"

	"openivm/internal/duckast"
	"openivm/internal/expr"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
)

// Compile classifies the view query, validates it against the schema using
// the embedded engine's planner, and generates the setup DDL, initial
// population script and propagation script.
func (c *Compiler) Compile(viewName string, sel *sqlparser.SelectStmt, sourceSQL string) (*Compilation, error) {
	if err := checkViewShape(sel); err != nil {
		return nil, fmt.Errorf("ivm: view %q: %w", viewName, err)
	}

	// Validate and type the query with the engine's planner ("DuckDB
	// inside OpenIVM"): binding errors surface here, and the plan's output
	// schema supplies the view column types.
	node, err := c.DB.PlanSelect(sel)
	if err != nil {
		return nil, fmt.Errorf("ivm: view %q: %w", viewName, err)
	}
	outSchema := node.Schema()

	comp := &Compilation{
		ViewName:  viewName,
		Options:   c.Opts,
		Select:    sel,
		SourceSQL: sourceSQL,
		DeltaView: c.Opts.DeltaPrefix + viewName,
	}

	// Base tables.
	if err := c.resolveBases(comp, sel.From); err != nil {
		return nil, fmt.Errorf("ivm: view %q: %w", viewName, err)
	}

	// Classify and extract view columns.
	if err := c.classify(comp, sel, outSchema); err != nil {
		return nil, fmt.Errorf("ivm: view %q: %w", viewName, err)
	}

	// AVG decomposition: maintain hidden SUM/COUNT columns in a storage
	// table and expose the declared columns through a plain SQL view.
	comp.Storage = comp.ViewName
	if comp.HasAvg() {
		comp.Storage = comp.ViewName + "_ivm_storage"
	}

	// Generate scripts.
	c.genSetup(comp)
	c.genPopulate(comp)
	if err := c.genPropagate(comp); err != nil {
		return nil, fmt.Errorf("ivm: view %q: %w", viewName, err)
	}
	return comp, nil
}

// checkViewShape rejects constructs outside the compiler's supported class.
func checkViewShape(sel *sqlparser.SelectStmt) error {
	switch {
	case sel.Values != nil:
		return fmt.Errorf("VALUES cannot be materialized incrementally")
	case len(sel.CTEs) > 0:
		return fmt.Errorf("WITH clauses are not supported in materialized views")
	case sel.Next != nil:
		return fmt.Errorf("set operations are not supported in materialized views")
	case sel.Distinct:
		return fmt.Errorf("DISTINCT is not supported in materialized views")
	case sel.Having != nil:
		return fmt.Errorf("HAVING is not supported (groups could enter and leave the result non-incrementally)")
	case len(sel.OrderBy) > 0 || sel.Limit != nil || sel.Offset != nil:
		return fmt.Errorf("ORDER BY/LIMIT are not supported in materialized views")
	case sel.From == nil:
		return fmt.Errorf("materialized views require a FROM clause")
	}
	return nil
}

// resolveBases fills comp.Bases from the FROM clause: one named table, or
// an inner equi-join of exactly two named tables.
func (c *Compiler) resolveBases(comp *Compilation, from sqlparser.TableRef) error {
	add := func(nt *sqlparser.NamedTable) error {
		tbl, err := c.DB.Catalog().Table(nt.Name)
		if err != nil {
			return err
		}
		alias := nt.Alias
		if alias == "" {
			alias = nt.Name
		}
		delta := c.Opts.DeltaPrefix + tbl.Name
		bt := BaseTable{Name: tbl.Name, Alias: alias, Delta: delta, Sealed: delta + "_sealed"}
		for _, col := range tbl.Columns {
			bt.Columns = append(bt.Columns, duckast.ColumnDef{Name: col.Name, Type: col.Type.String()})
		}
		comp.Bases = append(comp.Bases, bt)
		return nil
	}
	switch f := from.(type) {
	case *sqlparser.NamedTable:
		return add(f)
	case *sqlparser.JoinTable:
		if f.Kind != sqlparser.JoinInner {
			return fmt.Errorf("only INNER equi-joins are supported in materialized views (got %s)", f.Kind)
		}
		lt, lok := f.Left.(*sqlparser.NamedTable)
		rt, rok := f.Right.(*sqlparser.NamedTable)
		if !lok || !rok {
			return fmt.Errorf("joins of more than two tables are not yet supported in materialized views")
		}
		if f.On == nil && len(f.Using) == 0 {
			return fmt.Errorf("join views require an ON or USING clause")
		}
		if err := add(lt); err != nil {
			return err
		}
		return add(rt)
	case *sqlparser.SubqueryTable:
		return fmt.Errorf("derived tables are not supported in materialized views")
	}
	return fmt.Errorf("unsupported FROM clause")
}

// classify determines the query class and extracts the view columns.
func (c *Compiler) classify(comp *Compilation, sel *sqlparser.SelectStmt, outSchema []plan.ColumnInfo) error {
	hasAgg := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if f, ok := it.Expr.(*sqlparser.FuncExpr); ok && expr.IsAggregateName(f.Name) {
			hasAgg = true
		}
	}
	isJoin := len(comp.Bases) == 2

	switch {
	case hasAgg && isJoin:
		comp.Class = ClassJoinAggregate
		comp.JoinDelta = c.Opts.DeltaPrefix + "join_" + comp.ViewName
	case hasAgg:
		comp.Class = ClassAggregate
	case isJoin:
		comp.Class = ClassJoin
	default:
		comp.Class = ClassProjection
	}

	if !hasAgg {
		for i, it := range sel.Items {
			comp.Columns = append(comp.Columns, ViewColumn{
				Name:      outSchema[i].Name,
				Type:      outSchema[i].Type,
				SourceSQL: sqlparser.ExprString(it.Expr),
			})
		}
		return nil
	}

	// Aggregate classes: every select item is either a group key (matching
	// a GROUP BY expression) or a supported aggregate call.
	groupKeys := map[string]bool{}
	for _, g := range sel.GroupBy {
		if _, ok := g.(*sqlparser.ColumnRef); !ok {
			return fmt.Errorf("GROUP BY expressions must be plain columns (got %s)", sqlparser.ExprString(g))
		}
		groupKeys[strings.ToLower(sqlparser.ExprString(g))] = true
	}
	seenGroups := 0
	for i, it := range sel.Items {
		key := strings.ToLower(sqlparser.ExprString(it.Expr))
		if groupKeys[key] {
			comp.Columns = append(comp.Columns, ViewColumn{
				Name:       outSchema[i].Name,
				Type:       outSchema[i].Type,
				IsGroupKey: true,
				SourceSQL:  sqlparser.ExprString(it.Expr),
			})
			seenGroups++
			continue
		}
		f, ok := it.Expr.(*sqlparser.FuncExpr)
		if !ok || !expr.IsAggregateName(f.Name) {
			return fmt.Errorf("select item %q must be a GROUP BY column or an aggregate", sqlparser.ExprString(it.Expr))
		}
		if f.Distinct {
			return fmt.Errorf("DISTINCT aggregates are not supported in materialized views")
		}
		if f.Star && f.Name != "COUNT" {
			return fmt.Errorf("%s(*) is not valid", f.Name)
		}
		// AVG is not directly maintainable (as the paper notes); it is
		// decomposed into hidden SUM and COUNT storage columns and exposed
		// through a plain view — see Compilation.StorageColumns.
		kind, _ := expr.ParseAggKind(f.Name, f.Star)
		vc := ViewColumn{
			Name:   outSchema[i].Name,
			Type:   outSchema[i].Type,
			Agg:    kind,
			HasAgg: true,
			ArgIdx: len(comp.AggColumns()),
		}
		if !f.Star {
			if containsAgg(f.Args[0]) {
				return fmt.Errorf("nested aggregates are not supported")
			}
			vc.SourceSQL = sqlparser.ExprString(f.Args[0])
		}
		comp.Columns = append(comp.Columns, vc)
	}
	if seenGroups != len(sel.GroupBy) {
		return fmt.Errorf("every GROUP BY column must appear in the select list (found %d of %d)", seenGroups, len(sel.GroupBy))
	}
	if len(comp.AggColumns()) == 0 {
		return fmt.Errorf("aggregate views require at least one aggregate column")
	}
	return nil
}

func containsAgg(e sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if f, ok := x.(*sqlparser.FuncExpr); ok && expr.IsAggregateName(f.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// needsIndex reports whether the compiled view requires the ART-backed
// group-key index (DuckDB needs an index to apply upserts — paper §2).
func (c *Compilation) needsIndex() bool {
	return (c.Class == ClassAggregate || c.Class == ClassJoinAggregate) &&
		c.Options.Strategy == StrategyUpsertLeftJoin
}

// usesHiddenCount reports whether the hidden COUNT(*) column is maintained.
func (c *Compilation) usesHiddenCount() bool {
	return (c.Class == ClassAggregate || c.Class == ClassJoinAggregate) &&
		c.Options.Empty == EmptyHiddenCount
}

// hasMinMax reports whether any aggregate column is MIN or MAX.
func (c *Compilation) hasMinMax() bool {
	for _, col := range c.AggColumns() {
		if col.Agg == expr.AggMin || col.Agg == expr.AggMax {
			return true
		}
	}
	return false
}

// genSetup builds the DDL script: ΔT per base table, V, ΔV, the
// intermediate join-delta table when needed, and the group-key index.
func (c *Compiler) genSetup(comp *Compilation) {
	s := &duckast.Script{}

	// Delta tables for the base tables, each with a sealed twin of the
	// same shape (the runtime drains ΔT into ΔT_sealed at generation
	// seal; propagation reads only the sealed twin).
	for _, b := range comp.Bases {
		cols := append([]duckast.ColumnDef{}, b.Columns...)
		cols = append(cols, duckast.ColumnDef{Name: MultiplicityColumn, Type: "BOOLEAN"})
		s.Add(&duckast.CreateTable{Name: b.Delta, IfNotExists: true, Columns: cols})
		s.Add(&duckast.CreateTable{Name: b.Sealed, IfNotExists: true, Columns: cols})
	}

	// The table materializing the view (the storage table when AVG
	// decomposition applies).
	var viewCols []duckast.ColumnDef
	for _, col := range comp.StorageColumns() {
		viewCols = append(viewCols, duckast.ColumnDef{Name: col.Name, Type: col.Type.String()})
	}
	if comp.usesHiddenCount() {
		viewCols = append(viewCols, duckast.ColumnDef{Name: HiddenCountColumn, Type: "INTEGER"})
	}
	vt := &duckast.CreateTable{Name: comp.Storage, IfNotExists: true, Columns: viewCols}
	if comp.needsIndex() && comp.Options.CreateIndex {
		// The ART index on the group columns, realized as the table's
		// primary key (our engine's INSERT OR REPLACE resolves conflicts
		// through the primary-key ART, exactly like DuckDB).
		for _, g := range comp.GroupColumns() {
			vt.PrimaryKey = append(vt.PrimaryKey, g.Name)
		}
	}
	s.Add(vt)

	// The delta-view table ΔV.
	dvCols := append([]duckast.ColumnDef{}, viewCols...)
	dvCols = append(dvCols, duckast.ColumnDef{Name: MultiplicityColumn, Type: "BOOLEAN"})
	s.Add(&duckast.CreateTable{Name: comp.DeltaView, IfNotExists: true, Columns: dvCols})

	// Intermediate join-delta table for join+aggregate views: the join's
	// pre-aggregation projection (group keys and aggregate arguments).
	if comp.Class == ClassJoinAggregate {
		var jd []duckast.ColumnDef
		for _, col := range comp.Columns {
			if col.IsGroupKey {
				jd = append(jd, duckast.ColumnDef{Name: col.Name, Type: col.Type.String()})
			}
		}
		for _, col := range comp.AggColumns() {
			if col.SourceSQL == "" { // COUNT(*)
				continue
			}
			jd = append(jd, duckast.ColumnDef{Name: fmt.Sprintf("ivm_arg_%d", col.ArgIdx), Type: col.Type.String()})
		}
		jd = append(jd, duckast.ColumnDef{Name: MultiplicityColumn, Type: "BOOLEAN"})
		s.Add(&duckast.CreateTable{Name: comp.JoinDelta, IfNotExists: true, Columns: jd})
	}

	comp.Setup = s
}

// fromSQL reconstructs the view's FROM clause (with aliases) as SQL.
func fromSQL(comp *Compilation, sel *sqlparser.SelectStmt) string {
	if len(comp.Bases) == 1 {
		b := comp.Bases[0]
		if b.Alias != b.Name {
			return b.Name + " AS " + b.Alias
		}
		return b.Name
	}
	jt := sel.From.(*sqlparser.JoinTable)
	l, r := comp.Bases[0], comp.Bases[1]
	ls, rs := l.Name, r.Name
	if l.Alias != l.Name {
		ls += " AS " + l.Alias
	}
	if r.Alias != r.Name {
		rs += " AS " + r.Alias
	}
	on := joinOnSQL(jt, l.Alias, r.Alias)
	return ls + " JOIN " + rs + " ON " + on
}

// joinOnSQL renders the join predicate (expanding USING).
func joinOnSQL(jt *sqlparser.JoinTable, lAlias, rAlias string) string {
	if len(jt.Using) > 0 {
		parts := make([]string, len(jt.Using))
		for i, col := range jt.Using {
			parts[i] = fmt.Sprintf("%s.%s = %s.%s", lAlias, col, rAlias, col)
		}
		return strings.Join(parts, " AND ")
	}
	return sqlparser.ExprString(jt.On)
}

// genPopulate builds the initial-materialization script: V := Q(T).
func (c *Compiler) genPopulate(comp *Compilation) {
	s := &duckast.Script{}
	sel := &duckast.Select{From: &duckast.Raw{Text: fromSQL(comp, comp.Select)}}
	for _, col := range comp.StorageColumns() {
		switch {
		case col.HasAgg:
			sel.Items = append(sel.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: aggCallSQL(col.Agg, col.SourceSQL)}, Alias: col.Name})
		default:
			sel.Items = append(sel.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: col.Name})
		}
	}
	if comp.usesHiddenCount() {
		sel.Items = append(sel.Items, duckast.SelectItem{
			Expr: &duckast.Raw{Text: "COUNT(*)"}, Alias: HiddenCountColumn})
	}
	if comp.Select.Where != nil {
		sel.Where = &duckast.Raw{Text: sqlparser.ExprString(comp.Select.Where)}
	}
	for _, g := range comp.GroupColumns() {
		sel.GroupBy = append(sel.GroupBy, &duckast.Raw{Text: g.SourceSQL})
	}
	s.Add(&duckast.Insert{Table: comp.Storage, Select: sel})
	comp.Populate = s
}

// aggCallSQL renders an aggregate call over a source expression.
func aggCallSQL(kind expr.AggKind, src string) string {
	if kind == expr.AggCountStar {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", kind, src)
}
