package ivm

import (
	"strings"
	"testing"

	"openivm/internal/duckast"
	"openivm/internal/engine"
)

// newDB builds an engine preloaded with the paper's Listing 1 schema.
func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.Open("compile", engine.DialectDuckDB)
	if _, err := db.Exec("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func compile(t *testing.T, db *engine.DB, opts Options, sql string) *Compilation {
	t.Helper()
	comp, err := NewCompiler(db, opts).CompileSQL(sql)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return comp
}

const listing1View = `CREATE MATERIALIZED VIEW query_groups AS SELECT group_index,
	SUM(group_value) AS total_value FROM groups GROUP BY group_index`

// TestListing2Golden pins the compiler output for the paper's Listing 1
// input. The shape follows Listing 2: delta fill grouped by (key,
// multiplicity); INSERT OR REPLACE via a signed CTE LEFT-JOINed to the
// view; deletion of zeroed rows; delta truncation. (Where Listing 2 as
// printed selects and groups by the view-side key — NULL for new groups —
// we emit the delta-side key; see DESIGN.md.)
func TestListing2Golden(t *testing.T) {
	db := newDB(t)
	comp := compile(t, db, DefaultOptions(), listing1View)

	wantSetup := strings.TrimSpace(`
CREATE TABLE IF NOT EXISTS delta_groups (group_index VARCHAR, group_value INTEGER, _duckdb_ivm_multiplicity BOOLEAN);
CREATE TABLE IF NOT EXISTS delta_groups_sealed (group_index VARCHAR, group_value INTEGER, _duckdb_ivm_multiplicity BOOLEAN);
CREATE TABLE IF NOT EXISTS query_groups (group_index VARCHAR, total_value INTEGER, PRIMARY KEY (group_index));
CREATE TABLE IF NOT EXISTS delta_query_groups (group_index VARCHAR, total_value INTEGER, _duckdb_ivm_multiplicity BOOLEAN);
`)
	if got := strings.TrimSpace(comp.SetupSQL()); got != wantSetup {
		t.Errorf("setup SQL:\n got:\n%s\nwant:\n%s", got, wantSetup)
	}

	wantProp := strings.TrimSpace(`
INSERT INTO delta_query_groups SELECT group_index AS group_index, SUM(group_value) AS total_value, _duckdb_ivm_multiplicity FROM delta_groups GROUP BY group_index, _duckdb_ivm_multiplicity;
INSERT OR REPLACE INTO query_groups (group_index, total_value) WITH ivm_cte AS (SELECT group_index, SUM(CASE WHEN _duckdb_ivm_multiplicity = FALSE THEN -total_value ELSE total_value END) AS total_value FROM delta_query_groups GROUP BY group_index) SELECT ivm_delta.group_index, COALESCE(query_groups.total_value, 0) + COALESCE(ivm_delta.total_value, 0) AS total_value FROM ivm_cte AS ivm_delta LEFT JOIN query_groups ON query_groups.group_index = ivm_delta.group_index;
DELETE FROM query_groups WHERE total_value = 0;
DELETE FROM delta_query_groups;
DELETE FROM delta_groups;
`)
	if got := strings.TrimSpace(comp.PropagateSQL()); got != wantProp {
		t.Errorf("propagate SQL:\n got:\n%s\nwant:\n%s", got, wantProp)
	}

	wantPopulate := strings.TrimSpace(`
INSERT INTO query_groups SELECT group_index AS group_index, SUM(group_value) AS total_value FROM groups GROUP BY group_index;
`)
	if got := strings.TrimSpace(comp.PopulateSQLText()); got != wantPopulate {
		t.Errorf("populate SQL:\n got:\n%s\nwant:\n%s", got, wantPopulate)
	}
}

func TestListing2PostgresDialect(t *testing.T) {
	db := newDB(t)
	opts := DefaultOptions()
	opts.Dialect = duckast.DialectPostgres
	comp := compile(t, db, opts, listing1View)
	prop := comp.PropagateSQL()
	if !strings.Contains(prop, "ON CONFLICT (group_index) DO UPDATE SET total_value = EXCLUDED.total_value") {
		t.Errorf("postgres upsert missing:\n%s", prop)
	}
	if strings.Contains(prop, "INSERT OR REPLACE") {
		t.Errorf("postgres dialect leaked DuckDB syntax:\n%s", prop)
	}
	setup := comp.SetupSQL()
	if !strings.Contains(setup, "group_index TEXT") {
		t.Errorf("postgres type mapping missing:\n%s", setup)
	}
}

func TestClassification(t *testing.T) {
	db := engine.Open("cls", engine.DialectDuckDB)
	for _, ddl := range []string{
		"CREATE TABLE t (a VARCHAR, b INTEGER)",
		"CREATE TABLE u (a VARCHAR, c INTEGER)",
	} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		sql  string
		want QueryClass
	}{
		{"CREATE MATERIALIZED VIEW v1 AS SELECT a, b FROM t", ClassProjection},
		{"CREATE MATERIALIZED VIEW v2 AS SELECT a FROM t WHERE b > 0", ClassProjection},
		{"CREATE MATERIALIZED VIEW v3 AS SELECT a, SUM(b) AS s FROM t GROUP BY a", ClassAggregate},
		{"CREATE MATERIALIZED VIEW v4 AS SELECT t.a, t.b, u.c FROM t JOIN u ON t.a = u.a", ClassJoin},
		{"CREATE MATERIALIZED VIEW v5 AS SELECT t.a, SUM(u.c) AS s FROM t JOIN u ON t.a = u.a GROUP BY t.a", ClassJoinAggregate},
	}
	for _, c := range cases {
		comp, err := NewCompiler(db, DefaultOptions()).CompileSQL(c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		if comp.Class != c.want {
			t.Errorf("%q: class = %v, want %v", c.sql, comp.Class, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassProjection.String() != "projection" || ClassJoinAggregate.String() != "join_aggregate" {
		t.Error("class names")
	}
}

func TestStrategyFlags(t *testing.T) {
	for in, want := range map[string]Strategy{
		"":                 StrategyUpsertLeftJoin,
		"upsert_left_join": StrategyUpsertLeftJoin,
		"union_regroup":    StrategyUnionRegroup,
		"foj":              StrategyFullOuterJoin,
	} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy should fail")
	}
}

func TestEmptyDetectionFlags(t *testing.T) {
	if d, _ := ParseEmptyDetection("hidden_count"); d != EmptyHiddenCount {
		t.Error("hidden_count")
	}
	if d, _ := ParseEmptyDetection(""); d != EmptySumZero {
		t.Error("default")
	}
	if _, err := ParseEmptyDetection("zzz"); err == nil {
		t.Error("bad value should fail")
	}
}

func TestNoIndexOption(t *testing.T) {
	db := newDB(t)
	opts := DefaultOptions()
	opts.CreateIndex = false
	comp := compile(t, db, opts, listing1View)
	if strings.Contains(comp.SetupSQL(), "PRIMARY KEY") {
		t.Errorf("index disabled but PK emitted:\n%s", comp.SetupSQL())
	}
}

func TestUnionRegroupNoIndexNeeded(t *testing.T) {
	db := newDB(t)
	opts := DefaultOptions()
	opts.Strategy = StrategyUnionRegroup
	comp := compile(t, db, opts, listing1View)
	if strings.Contains(comp.SetupSQL(), "PRIMARY KEY") {
		t.Errorf("union_regroup needs no index:\n%s", comp.SetupSQL())
	}
	if !strings.Contains(comp.PropagateSQL(), "UNION ALL") {
		t.Errorf("union_regroup should emit UNION ALL:\n%s", comp.PropagateSQL())
	}
}

func TestFullOuterJoinStrategySQL(t *testing.T) {
	db := newDB(t)
	opts := DefaultOptions()
	opts.Strategy = StrategyFullOuterJoin
	comp := compile(t, db, opts, listing1View)
	if !strings.Contains(comp.PropagateSQL(), "FULL OUTER JOIN") {
		t.Errorf("missing FULL OUTER JOIN:\n%s", comp.PropagateSQL())
	}
}

func TestHiddenCountSetup(t *testing.T) {
	db := newDB(t)
	opts := DefaultOptions()
	opts.Empty = EmptyHiddenCount
	comp := compile(t, db, opts, listing1View)
	if !strings.Contains(comp.SetupSQL(), HiddenCountColumn+" INTEGER") {
		t.Errorf("hidden count column missing:\n%s", comp.SetupSQL())
	}
	if !strings.Contains(comp.PropagateSQL(), "DELETE FROM query_groups WHERE "+HiddenCountColumn+" = 0") {
		t.Errorf("hidden count delete missing:\n%s", comp.PropagateSQL())
	}
}

func TestMinMaxRepairSQL(t *testing.T) {
	db := newDB(t)
	comp := compile(t, db, DefaultOptions(), `CREATE MATERIALIZED VIEW mm AS
		SELECT group_index, MIN(group_value) AS lo FROM groups GROUP BY group_index`)
	prop := comp.PropagateSQL()
	for _, want := range []string{
		"MIN(CASE WHEN _duckdb_ivm_multiplicity = TRUE THEN lo END)",
		"LEAST(COALESCE(",
		"SELECT DISTINCT group_index FROM delta_mm WHERE _duckdb_ivm_multiplicity = FALSE",
		"NOT IN (SELECT group_index FROM groups)",
	} {
		if !strings.Contains(prop, want) {
			t.Errorf("min/max repair missing %q:\n%s", want, prop)
		}
	}
}

func TestJoinCompilationSQL(t *testing.T) {
	db := engine.Open("j", engine.DialectDuckDB)
	db.Exec("CREATE TABLE a (x VARCHAR, v INTEGER)")
	db.Exec("CREATE TABLE b (x VARCHAR, w INTEGER)")
	comp := compile(t, db, DefaultOptions(), `CREATE MATERIALIZED VIEW jv AS
		SELECT a.x, a.v, b.w FROM a JOIN b ON a.x = b.x`)
	prop := comp.PropagateSQL()
	// The three DBSP product-rule terms.
	for _, want := range []string{
		"FROM delta_a AS a JOIN b ON",
		"FROM a JOIN delta_b AS b ON",
		"FROM delta_a AS a JOIN delta_b AS b ON",
		"a._duckdb_ivm_multiplicity <> b._duckdb_ivm_multiplicity",
	} {
		if !strings.Contains(prop, want) {
			t.Errorf("join propagation missing %q:\n%s", want, prop)
		}
	}
}

func TestJoinAggregateIntermediateTable(t *testing.T) {
	db := engine.Open("j", engine.DialectDuckDB)
	db.Exec("CREATE TABLE a (x VARCHAR, v INTEGER)")
	db.Exec("CREATE TABLE b (x VARCHAR, w INTEGER)")
	comp := compile(t, db, DefaultOptions(), `CREATE MATERIALIZED VIEW ja AS
		SELECT a.x, SUM(b.w) AS s FROM a JOIN b ON a.x = b.x GROUP BY a.x`)
	if comp.JoinDelta == "" {
		t.Fatal("join aggregate should declare an intermediate table")
	}
	if !strings.Contains(comp.SetupSQL(), "CREATE TABLE IF NOT EXISTS "+comp.JoinDelta) {
		t.Errorf("intermediate table DDL missing:\n%s", comp.SetupSQL())
	}
	if !strings.Contains(comp.PropagateSQL(), "INSERT INTO "+comp.JoinDelta) {
		t.Errorf("intermediate fill missing:\n%s", comp.PropagateSQL())
	}
}

func TestCompilationAccessors(t *testing.T) {
	db := newDB(t)
	comp := compile(t, db, DefaultOptions(), listing1View)
	if comp.DeltaFor("groups") != "delta_groups" {
		t.Errorf("DeltaFor = %q", comp.DeltaFor("groups"))
	}
	if comp.DeltaFor("zzz") != "" {
		t.Error("DeltaFor on unknown table")
	}
	if len(comp.GroupColumns()) != 1 || len(comp.AggColumns()) != 1 {
		t.Errorf("columns = %+v", comp.Columns)
	}
	if got := comp.BaseTableNames(); len(got) != 1 || got[0] != "groups" {
		t.Errorf("bases = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	db := newDB(t)
	c := NewCompiler(db, DefaultOptions())
	for _, bad := range []string{
		"CREATE VIEW v AS SELECT 1", // not materialized
		"SELECT 1",                  // not a view at all
		"CREATE MATERIALIZED VIEW v AS SELECT group_index FROM missing",                                                                   // unknown table
		"CREATE MATERIALIZED VIEW v AS SELECT SUM(group_value) + 1 AS x FROM groups GROUP BY group_index",                                 // agg expr item
		"CREATE MATERIALIZED VIEW v AS SELECT group_index, SUM(group_value) AS s FROM groups GROUP BY group_index, group_value",           // group col not selected
		"CREATE MATERIALIZED VIEW v AS SELECT group_value FROM (SELECT * FROM groups) AS s",                                               // derived table
		"CREATE MATERIALIZED VIEW v AS SELECT g1.group_index FROM groups AS g1 LEFT JOIN groups AS g2 ON g1.group_index = g2.group_index", // outer join
	} {
		if _, err := c.CompileSQL(bad); err == nil {
			t.Errorf("CompileSQL(%q) should fail", bad)
		}
	}
}

// TestCompiledScriptsReparse guarantees the emitted SQL round-trips through
// our own parser — the essence of a SQL-to-SQL compiler.
func TestCompiledScriptsReparse(t *testing.T) {
	db := engine.Open("rt", engine.DialectDuckDB)
	db.Exec("CREATE TABLE a (x VARCHAR, v INTEGER)")
	db.Exec("CREATE TABLE b (x VARCHAR, w INTEGER)")
	views := []string{
		"CREATE MATERIALIZED VIEW m1 AS SELECT x, v FROM a WHERE v > 0",
		"CREATE MATERIALIZED VIEW m2 AS SELECT x, SUM(v) AS s, COUNT(*) AS n FROM a GROUP BY x",
		"CREATE MATERIALIZED VIEW m3 AS SELECT x, MIN(v) AS lo, MAX(v) AS hi FROM a GROUP BY x",
		"CREATE MATERIALIZED VIEW m4 AS SELECT a.x, a.v, b.w FROM a JOIN b ON a.x = b.x",
		"CREATE MATERIALIZED VIEW m5 AS SELECT a.x, SUM(b.w) AS s FROM a JOIN b ON a.x = b.x GROUP BY a.x",
	}
	for _, strat := range []Strategy{StrategyUpsertLeftJoin, StrategyUnionRegroup, StrategyFullOuterJoin} {
		for _, v := range views {
			opts := DefaultOptions()
			opts.Strategy = strat
			comp, err := NewCompiler(db, opts).CompileSQL(v)
			if err != nil {
				t.Fatalf("[%v] %q: %v", strat, v, err)
			}
			for name, script := range map[string]string{
				"setup":     comp.SetupSQL(),
				"populate":  comp.PopulateSQLText(),
				"propagate": comp.PropagateSQL(),
			} {
				for _, stmt := range engine.SplitStatements(script) {
					if _, err := db.Parse(stmt); err != nil {
						t.Errorf("[%v] %s of %q does not re-parse: %v\nSQL: %s",
							strat, name, v, err, stmt)
					}
				}
			}
		}
	}
}
