package ivm

import (
	"fmt"
	"strings"

	"openivm/internal/duckast"
	"openivm/internal/expr"
	"openivm/internal/sqlparser"
)

// genPropagate builds the 4-step propagation script for the compiled view.
//
// Step 1  insert Q*(ΔT) into ΔV (the DBSP-rewritten query over the deltas);
// Step 2  fold ΔV into V using the selected combine strategy;
// Step 3  delete invalidated rows from V (empty groups / deleted tuples);
// Step 4  truncate ΔV and every ΔT.
func (c *Compiler) genPropagate(comp *Compilation) error {
	s, err := c.buildBody(comp, comp.Options.Strategy, false)
	if err != nil {
		return err
	}
	comp.PropagateBody = s
	if comp.SealedBody, err = c.buildBody(comp, comp.Options.Strategy, true); err != nil {
		return err
	}

	// Alternative combine plans for the runtime's cost-based choice.
	// The upsert plan is only valid when the setup created the group-key
	// index (primary key); the rebuild plans work either way.
	if comp.Class == ClassAggregate || comp.Class == ClassJoinAggregate {
		comp.AltBodies = map[Strategy]*duckast.Script{}
		comp.SealedAltBodies = map[Strategy]*duckast.Script{}
		for _, strat := range []Strategy{StrategyUpsertLeftJoin, StrategyUnionRegroup, StrategyFullOuterJoin} {
			if strat == StrategyUpsertLeftJoin && !(comp.needsIndex() && comp.Options.CreateIndex) {
				continue
			}
			alt, err := c.buildBody(comp, strat, false)
			if err != nil {
				return err
			}
			comp.AltBodies[strat] = alt
			if comp.SealedAltBodies[strat], err = c.buildBody(comp, strat, true); err != nil {
				return err
			}
		}
	}

	// Step 4b: truncate the base delta tables (and, for the
	// generation-aware variant, the sealed twins the runtime reads).
	trunc := &duckast.Script{}
	sealedTrunc := &duckast.Script{}
	for _, b := range comp.Bases {
		trunc.Add(&duckast.Delete{Table: b.Delta})
		sealedTrunc.Add(&duckast.Delete{Table: b.Sealed})
	}
	comp.TruncateBase = trunc
	comp.SealedTruncate = sealedTrunc

	// The standalone paper-faithful script is body followed by truncation.
	full := &duckast.Script{}
	full.Add(s.Stmts...)
	full.Add(trunc.Stmts...)
	comp.Propagate = full
	return nil
}

// buildBody assembles steps 1–3 plus view-local delta truncation under the
// given combine strategy. With sealed set, every read of a base delta table
// targets its sealed twin instead (the generation-aware runtime variant);
// the sealed scripts also omit the trailing scratch truncation — the
// scheduler clears ΔV/join-delta through the catalog after each body, so
// the script's last statements are the writes into V and a mid-script
// failure never leaves scratch state the retry would double-read.
func (c *Compiler) buildBody(comp *Compilation, strat Strategy, sealed bool) (*duckast.Script, error) {
	s := &duckast.Script{}
	var err error
	switch comp.Class {
	case ClassProjection:
		err = c.propProjection(comp, s, sealed)
	case ClassAggregate:
		err = c.propAggregate(comp, s, strat, sealed)
	case ClassJoin:
		err = c.propJoin(comp, s, sealed)
	case ClassJoinAggregate:
		err = c.propJoinAggregate(comp, s, strat, sealed)
	default:
		err = fmt.Errorf("unsupported query class %v", comp.Class)
	}
	if err != nil {
		return nil, err
	}
	if sealed {
		return s, nil
	}
	// Step 4a: truncate the view-local delta tables.
	s.Add(&duckast.Delete{Table: comp.DeltaView})
	if comp.JoinDelta != "" {
		s.Add(&duckast.Delete{Table: comp.JoinDelta})
	}
	return s, nil
}

// mcol returns the multiplicity column reference, optionally qualified.
func mcol(qual string) string {
	if qual == "" {
		return MultiplicityColumn
	}
	return qual + "." + MultiplicityColumn
}

// keyExpr builds a row-identity expression over the given column names,
// optionally qualified: a single column stays bare; multiple columns are
// concatenated with a separator (the portable-SQL trick for row-valued IN).
func keyExpr(qual string, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		if qual != "" {
			parts[i] = qual + "." + c
		} else {
			parts[i] = c
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return strings.Join(parts, " || '|' || ")
}

func viewColNames(cols []ViewColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func groupSrcSQL(cols []ViewColumn) []string {
	var out []string
	for _, c := range cols {
		if c.IsGroupKey {
			out = append(out, c.SourceSQL)
		}
	}
	return out
}

// whereSQL renders the view's WHERE predicate ("" when absent).
func whereSQL(comp *Compilation) string {
	if comp.Select.Where == nil {
		return ""
	}
	return sqlparser.ExprString(comp.Select.Where)
}

// deltaTable names the delta table to read: the open ΔT for the
// paper-faithful scripts, its sealed twin for the generation-aware ones.
func deltaTable(b BaseTable, sealed bool) string {
	if sealed {
		return b.Sealed
	}
	return b.Delta
}

// deltaSourceSQL returns the single-table FROM clause with the base table
// replaced by its delta, keeping the original alias so that the view's
// expressions still resolve. The delta table always carries an alias when
// reading the sealed twin, since the view expressions name ΔT's columns
// through the base alias.
func deltaSourceSQL(b BaseTable, sealed bool) string {
	d := deltaTable(b, sealed)
	if b.Alias != b.Name || sealed {
		return d + " AS " + b.Alias
	}
	return d
}

// --- projection / filter views -------------------------------------------

// propProjection emits the σ/π incremental form: identical query over ΔT,
// multiplicity carried through (DBSP: σ* = σ, π* = π).
func (c *Compiler) propProjection(comp *Compilation, s *duckast.Script, sealed bool) error {
	b := comp.Bases[0]

	// Step 1: ΔV := π(σ(ΔT)).
	sel := &duckast.Select{From: &duckast.Raw{Text: deltaSourceSQL(b, sealed)}}
	for _, col := range comp.Columns {
		sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: col.Name})
	}
	sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: MultiplicityColumn}})
	if w := whereSQL(comp); w != "" {
		sel.Where = &duckast.Raw{Text: w}
	}
	s.Add(&duckast.Insert{Table: comp.DeltaView, Select: sel})

	// Step 2: insert the insertions (multiplicity TRUE), dropping the
	// multiplicity column.
	names := viewColNames(comp.Columns)
	ins := &duckast.Select{From: &duckast.Raw{Text: comp.DeltaView}, Where: &duckast.Raw{Text: mcol("") + " = TRUE"}}
	for _, n := range names {
		ins.Items = append(ins.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: n}})
	}
	s.Add(&duckast.Insert{Table: comp.ViewName, Select: ins})

	// Step 3: delete rows invalidated by FALSE multiplicity.
	key := keyExpr("", names)
	s.Add(&duckast.Delete{
		Table: comp.ViewName,
		Where: &duckast.Raw{Text: fmt.Sprintf("%s IN (SELECT %s FROM %s WHERE %s = FALSE)",
			key, key, comp.DeltaView, MultiplicityColumn)},
	})
	return nil
}

// --- aggregate views -------------------------------------------------------

// signedDeltaSQL renders the per-group signed combination of one ΔV column
// inside the ivm_cte (paper Listing 2 line 8): additive aggregates negate
// under FALSE multiplicity; MIN/MAX keep only insertions (deletions are
// handled by the rescan-repair steps).
func signedDeltaSQL(col ViewColumn) string {
	switch col.Agg {
	case expr.AggMin:
		return fmt.Sprintf("MIN(CASE WHEN %s = TRUE THEN %s END)", MultiplicityColumn, col.Name)
	case expr.AggMax:
		return fmt.Sprintf("MAX(CASE WHEN %s = TRUE THEN %s END)", MultiplicityColumn, col.Name)
	default: // SUM, COUNT, COUNT(*), hidden count
		return fmt.Sprintf("SUM(CASE WHEN %s = FALSE THEN -%s ELSE %s END)",
			MultiplicityColumn, col.Name, col.Name)
	}
}

// combineSQL renders the V ⊕ ΔV combination for one aggregate column,
// given the view alias v and delta alias d.
func combineSQL(col ViewColumn, v, d string) string {
	vc := v + "." + col.Name
	dc := d + "." + col.Name
	switch col.Agg {
	case expr.AggMin:
		return fmt.Sprintf("LEAST(COALESCE(%s, %s), COALESCE(%s, %s))", vc, dc, dc, vc)
	case expr.AggMax:
		return fmt.Sprintf("GREATEST(COALESCE(%s, %s), COALESCE(%s, %s))", vc, dc, dc, vc)
	default:
		return fmt.Sprintf("COALESCE(%s, 0) + COALESCE(%s, 0)", vc, dc)
	}
}

// aggDeltaColumns returns the ΔV columns in table order: view columns,
// then the hidden count when enabled.
func aggDeltaColumns(comp *Compilation) []ViewColumn {
	cols := append([]ViewColumn{}, comp.StorageColumns()...)
	if comp.usesHiddenCount() {
		cols = append(cols, ViewColumn{
			Name: HiddenCountColumn, Agg: expr.AggCountStar, HasAgg: true,
		})
	}
	return cols
}

// propAggregate emits the GROUP BY incremental form (paper Listing 2).
func (c *Compiler) propAggregate(comp *Compilation, s *duckast.Script, strat Strategy, sealed bool) error {
	b := comp.Bases[0]

	// Step 1: ΔV := γ(ΔT) grouped by (keys, multiplicity).
	step1 := &duckast.Select{From: &duckast.Raw{Text: deltaSourceSQL(b, sealed)}}
	for _, col := range aggDeltaColumns(comp) {
		switch {
		case col.IsGroupKey:
			step1.Items = append(step1.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: col.Name})
		case col.Name == HiddenCountColumn:
			step1.Items = append(step1.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: "COUNT(*)"}, Alias: HiddenCountColumn})
		default:
			step1.Items = append(step1.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: aggCallSQL(col.Agg, col.SourceSQL)}, Alias: col.Name})
		}
	}
	step1.Items = append(step1.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: MultiplicityColumn}})
	if w := whereSQL(comp); w != "" {
		step1.Where = &duckast.Raw{Text: w}
	}
	for _, g := range groupSrcSQL(comp.Columns) {
		step1.GroupBy = append(step1.GroupBy, &duckast.Raw{Text: g})
	}
	step1.GroupBy = append(step1.GroupBy, &duckast.Raw{Text: MultiplicityColumn})
	s.Add(&duckast.Insert{Table: comp.DeltaView, Select: step1})

	// Step 2: combine ΔV into V under the selected strategy.
	c.emitCombine(comp, s, comp.DeltaView, strat)

	// Steps 2b/2c: MIN/MAX deletions cannot be combined incrementally —
	// rescan-repair the affected groups from the base table.
	if comp.hasMinMax() {
		c.emitMinMaxRepair(comp, s, fromSQL(comp, comp.Select))
	}

	// Step 3: delete invalidated rows.
	c.emitEmptyGroupDelete(comp, s)
	return nil
}

// emitCombine emits the strategy-selected step 2, reading ΔV from dvName.
func (c *Compiler) emitCombine(comp *Compilation, s *duckast.Script, dvName string, strat Strategy) {
	groups := comp.GroupColumns()
	dAlias := "ivm_delta"
	vName := comp.Storage

	// The shared CTE: per-group signed aggregation of ΔV (Listing 2 lines 6-10).
	cte := &duckast.Select{From: &duckast.Raw{Text: dvName}}
	for _, g := range groups {
		cte.Items = append(cte.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: g.Name}})
		cte.GroupBy = append(cte.GroupBy, &duckast.Raw{Text: g.Name})
	}
	for _, col := range aggDeltaColumns(comp) {
		if col.IsGroupKey {
			continue
		}
		cte.Items = append(cte.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: signedDeltaSQL(col)}, Alias: col.Name})
	}

	allCols := viewColNames(aggDeltaColumns(comp))
	groupNames := viewColNames(groups)

	switch strat {
	case StrategyUpsertLeftJoin:
		// Listing 2: INSERT OR REPLACE ... ivm_cte LEFT JOIN view.
		var onParts []string
		for _, g := range groupNames {
			onParts = append(onParts, fmt.Sprintf("%s.%s = %s.%s", vName, g, dAlias, g))
		}
		sel := &duckast.Select{
			CTEs: []duckast.CTE{{Name: "ivm_cte", Select: cte}},
			From: &duckast.Raw{Text: fmt.Sprintf("ivm_cte AS %s LEFT JOIN %s ON %s",
				dAlias, vName, strings.Join(onParts, " AND "))},
		}
		for _, g := range groupNames {
			sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Col{Table: dAlias, Name: g}})
		}
		for _, col := range aggDeltaColumns(comp) {
			if col.IsGroupKey {
				continue
			}
			sel.Items = append(sel.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: combineSQL(col, vName, dAlias)}, Alias: col.Name})
		}
		s.Add(&duckast.Insert{
			Table: vName, Columns: allCols, Select: sel,
			Upsert: true, KeyColumns: groupNames,
		})

	case StrategyUnionRegroup:
		// V_new := γ(V ∪ signed ΔV); rebuild the table.
		union := &duckast.Select{From: &duckast.Raw{Text: vName}}
		for _, col := range aggDeltaColumns(comp) {
			union.Items = append(union.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.Name}})
		}
		deltaPart := &duckast.Select{From: &duckast.Raw{Text: dvName}}
		for _, col := range aggDeltaColumns(comp) {
			switch {
			case col.IsGroupKey:
				deltaPart.Items = append(deltaPart.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.Name}})
			case col.Agg == expr.AggMin || col.Agg == expr.AggMax:
				deltaPart.Items = append(deltaPart.Items, duckast.SelectItem{
					Expr: &duckast.Raw{Text: fmt.Sprintf("CASE WHEN %s = TRUE THEN %s END", MultiplicityColumn, col.Name)}})
			default:
				deltaPart.Items = append(deltaPart.Items, duckast.SelectItem{
					Expr: &duckast.Raw{Text: fmt.Sprintf("CASE WHEN %s = FALSE THEN -%s ELSE %s END",
						MultiplicityColumn, col.Name, col.Name)}})
			}
		}
		union.SetOp = "UNION ALL"
		union.Next = deltaPart

		regroup := &duckast.Select{From: &duckast.SubSelect{Select: union, Alias: "ivm_union"}}
		for _, g := range groupNames {
			regroup.Items = append(regroup.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: g}})
			regroup.GroupBy = append(regroup.GroupBy, &duckast.Raw{Text: g})
		}
		for _, col := range aggDeltaColumns(comp) {
			if col.IsGroupKey {
				continue
			}
			fn := "SUM"
			if col.Agg == expr.AggMin {
				fn = "MIN"
			} else if col.Agg == expr.AggMax {
				fn = "MAX"
			}
			regroup.Items = append(regroup.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: fmt.Sprintf("%s(%s)", fn, col.Name)}, Alias: col.Name})
		}
		tmp := vName + "_ivm_new"
		s.Add(&duckast.CreateTableAs{Name: tmp, Select: regroup})
		s.Add(&duckast.Delete{Table: vName})
		refill := &duckast.Select{From: &duckast.Raw{Text: tmp}}
		for _, n := range allCols {
			refill.Items = append(refill.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: n}})
		}
		s.Add(&duckast.Insert{Table: vName, Columns: allCols, Select: refill})
		s.Add(&duckast.DropTable{Name: tmp})

	case StrategyFullOuterJoin:
		// V_new := V ⟗ ivm_cte on the group keys.
		var onParts []string
		for _, g := range groupNames {
			onParts = append(onParts, fmt.Sprintf("ivm_v.%s = %s.%s", g, dAlias, g))
		}
		sel := &duckast.Select{
			CTEs: []duckast.CTE{{Name: "ivm_cte", Select: cte}},
			From: &duckast.Raw{Text: fmt.Sprintf("%s AS ivm_v FULL OUTER JOIN ivm_cte AS %s ON %s",
				vName, dAlias, strings.Join(onParts, " AND "))},
		}
		for _, g := range groupNames {
			sel.Items = append(sel.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: fmt.Sprintf("COALESCE(ivm_v.%s, %s.%s)", g, dAlias, g)}, Alias: g})
		}
		for _, col := range aggDeltaColumns(comp) {
			if col.IsGroupKey {
				continue
			}
			var e string
			switch col.Agg {
			case expr.AggMin:
				e = fmt.Sprintf("LEAST(COALESCE(ivm_v.%s, %s.%s), COALESCE(%s.%s, ivm_v.%s))",
					col.Name, dAlias, col.Name, dAlias, col.Name, col.Name)
			case expr.AggMax:
				e = fmt.Sprintf("GREATEST(COALESCE(ivm_v.%s, %s.%s), COALESCE(%s.%s, ivm_v.%s))",
					col.Name, dAlias, col.Name, dAlias, col.Name, col.Name)
			default:
				e = fmt.Sprintf("COALESCE(ivm_v.%s, 0) + COALESCE(%s.%s, 0)", col.Name, dAlias, col.Name)
			}
			sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: e}, Alias: col.Name})
		}
		tmp := vName + "_ivm_new"
		s.Add(&duckast.CreateTableAs{Name: tmp, Select: sel})
		s.Add(&duckast.Delete{Table: vName})
		refill := &duckast.Select{From: &duckast.Raw{Text: tmp}}
		for _, n := range allCols {
			refill.Items = append(refill.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: n}})
		}
		s.Add(&duckast.Insert{Table: vName, Columns: allCols, Select: refill})
		s.Add(&duckast.DropTable{Name: tmp})
	}
}

// emitMinMaxRepair emits the rescan-repair for MIN/MAX deletions: groups
// touched by a deletion are recomputed from the base relation, and groups
// that vanished entirely are removed.
func (c *Compiler) emitMinMaxRepair(comp *Compilation, s *duckast.Script, from string) {
	groups := comp.GroupColumns()
	groupNames := viewColNames(groups)
	srcKey := keyExpr("", groupSrcSQL(comp.Columns))
	dvKey := keyExpr("", groupNames)
	allCols := viewColNames(aggDeltaColumns(comp))

	deletedGroups := fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE %s = FALSE",
		dvKey, comp.DeltaView, MultiplicityColumn)

	// Recompute affected groups from the base relation.
	recompute := &duckast.Select{From: &duckast.Raw{Text: from}}
	for _, col := range aggDeltaColumns(comp) {
		switch {
		case col.IsGroupKey:
			recompute.Items = append(recompute.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: col.Name})
		case col.Name == HiddenCountColumn:
			recompute.Items = append(recompute.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: "COUNT(*)"}, Alias: col.Name})
		default:
			recompute.Items = append(recompute.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: aggCallSQL(col.Agg, col.SourceSQL)}, Alias: col.Name})
		}
	}
	cond := fmt.Sprintf("%s IN (%s)", srcKey, deletedGroups)
	if w := whereSQL(comp); w != "" {
		cond = "(" + w + ") AND " + cond
	}
	recompute.Where = &duckast.Raw{Text: cond}
	for _, g := range groupSrcSQL(comp.Columns) {
		recompute.GroupBy = append(recompute.GroupBy, &duckast.Raw{Text: g})
	}
	s.Add(&duckast.Insert{
		Table: comp.Storage, Columns: allCols, Select: recompute,
		Upsert: true, KeyColumns: groupNames,
	})

	// Remove groups whose last row was deleted.
	baseKeys := fmt.Sprintf("SELECT %s FROM %s", srcKey, from)
	if w := whereSQL(comp); w != "" {
		baseKeys += " WHERE " + w
	}
	s.Add(&duckast.Delete{
		Table: comp.Storage,
		Where: &duckast.Raw{Text: fmt.Sprintf("%s IN (%s) AND %s NOT IN (%s)",
			dvKey, deletedGroups, dvKey, baseKeys)},
	})
}

// emitEmptyGroupDelete emits step 3 under the configured detection mode.
func (c *Compiler) emitEmptyGroupDelete(comp *Compilation, s *duckast.Script) {
	if comp.usesHiddenCount() {
		s.Add(&duckast.Delete{Table: comp.Storage,
			Where: &duckast.Raw{Text: HiddenCountColumn + " = 0"}})
		return
	}
	// Paper behaviour: prefer a COUNT column, else a SUM column — over the
	// physical storage layout, so AVG's decomposed COUNT part qualifies.
	// Views with only MIN/MAX aggregates are fully handled by the repair
	// steps.
	var col string
	for _, a := range comp.StorageColumns() {
		if a.HasAgg && (a.Agg == expr.AggCount || a.Agg == expr.AggCountStar) {
			col = a.Name
			break
		}
	}
	if col == "" {
		for _, a := range comp.StorageColumns() {
			if a.HasAgg && a.Agg == expr.AggSum {
				col = a.Name
				break
			}
		}
	}
	if col != "" {
		s.Add(&duckast.Delete{Table: comp.Storage,
			Where: &duckast.Raw{Text: col + " = 0"}})
	}
}

// --- join views -------------------------------------------------------------

// joinDeltaTerms emits the DBSP product-rule terms as three SELECTs over
// (ΔA ⋈ B'), (A' ⋈ ΔB) and (ΔA ⋈ ΔB), with multiplicity expressions
// ΔA.m, ΔB.m and (ΔA.m <> ΔB.m) respectively — the last term compensates
// for the deltas already being applied to the (post-state) base tables.
// items(selector) produces the projection for each term.
func joinDeltaTerms(comp *Compilation, sealed bool, items func(sel *duckast.Select)) []*duckast.Select {
	jt := comp.Select.From.(*sqlparser.JoinTable)
	a, b := comp.Bases[0], comp.Bases[1]
	on := joinOnSQL(jt, a.Alias, b.Alias)
	w := whereSQL(comp)

	mk := func(left, right, multExpr string) *duckast.Select {
		sel := &duckast.Select{From: &duckast.Raw{Text: left + " JOIN " + right + " ON " + on}}
		items(sel)
		sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: multExpr}, Alias: MultiplicityColumn})
		if w != "" {
			sel.Where = &duckast.Raw{Text: w}
		}
		return sel
	}
	aliased := func(table, alias string) string {
		if alias != table {
			return table + " AS " + alias
		}
		return table
	}
	da, db := deltaTable(a, sealed), deltaTable(b, sealed)
	return []*duckast.Select{
		mk(da+" AS "+a.Alias, aliased(b.Name, b.Alias), mcol(a.Alias)),
		mk(aliased(a.Name, a.Alias), db+" AS "+b.Alias, mcol(b.Alias)),
		mk(da+" AS "+a.Alias, db+" AS "+b.Alias,
			fmt.Sprintf("%s <> %s", mcol(a.Alias), mcol(b.Alias))),
	}
}

// propJoin emits the incremental form of a two-table equi-join view.
func (c *Compiler) propJoin(comp *Compilation, s *duckast.Script, sealed bool) error {
	// Step 1: the three product-rule terms feed ΔV.
	terms := joinDeltaTerms(comp, sealed, func(sel *duckast.Select) {
		for _, col := range comp.Columns {
			sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: col.Name})
		}
	})
	for _, t := range terms {
		s.Add(&duckast.Insert{Table: comp.DeltaView, Select: t})
	}

	// Step 2: net ΔV per row (the compensation term produces cancelling
	// pairs even for insert-only workloads) and apply insertions.
	names := viewColNames(comp.Columns)
	signed := fmt.Sprintf("SUM(CASE WHEN %s = TRUE THEN 1 ELSE -1 END)", MultiplicityColumn)
	ins := &duckast.Select{From: &duckast.Raw{Text: comp.DeltaView},
		Having: &duckast.Raw{Text: signed + " > 0"}}
	for _, n := range names {
		ins.Items = append(ins.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: n}})
		ins.GroupBy = append(ins.GroupBy, &duckast.Raw{Text: n})
	}
	s.Add(&duckast.Insert{Table: comp.ViewName, Select: ins})

	// Step 3: apply net deletions.
	key := keyExpr("", names)
	var groupKey []string
	for _, n := range names {
		groupKey = append(groupKey, n)
	}
	s.Add(&duckast.Delete{
		Table: comp.ViewName,
		Where: &duckast.Raw{Text: fmt.Sprintf(
			"%s IN (SELECT %s FROM %s GROUP BY %s HAVING %s < 0)",
			key, key, comp.DeltaView, strings.Join(groupKey, ", "), signed)},
	})
	return nil
}

// propJoinAggregate composes the join product rule with aggregation through
// the intermediate join-delta table.
func (c *Compiler) propJoinAggregate(comp *Compilation, s *duckast.Script, strat Strategy, sealed bool) error {
	// Step 1a-c: fill the join-delta intermediate.
	aggCols := comp.AggColumns()
	terms := joinDeltaTerms(comp, sealed, func(sel *duckast.Select) {
		for _, col := range comp.Columns {
			if col.IsGroupKey {
				sel.Items = append(sel.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: col.Name})
			}
		}
		for _, col := range aggCols {
			if col.SourceSQL == "" {
				continue // COUNT(*) needs no argument column
			}
			sel.Items = append(sel.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: col.SourceSQL}, Alias: fmt.Sprintf("ivm_arg_%d", col.ArgIdx)})
		}
	})
	for _, t := range terms {
		s.Add(&duckast.Insert{Table: comp.JoinDelta, Select: t})
	}

	// Step 1d: aggregate the join-delta into ΔV, grouped by (keys, m).
	// Aggregate argument columns are named ivm_arg_<i> where i indexes the
	// view's aggregate columns (matching joinDeltaTerms and genSetup).
	step1 := &duckast.Select{From: &duckast.Raw{Text: comp.JoinDelta}}
	for _, col := range aggDeltaColumns(comp) {
		switch {
		case col.IsGroupKey:
			step1.Items = append(step1.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: col.Name}})
			step1.GroupBy = append(step1.GroupBy, &duckast.Raw{Text: col.Name})
		case col.Name == HiddenCountColumn, col.Agg == expr.AggCountStar:
			step1.Items = append(step1.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: "COUNT(*)"}, Alias: col.Name})
		default:
			step1.Items = append(step1.Items, duckast.SelectItem{
				Expr: &duckast.Raw{Text: aggCallSQL(col.Agg, fmt.Sprintf("ivm_arg_%d", col.ArgIdx))}, Alias: col.Name})
		}
	}
	step1.Items = append(step1.Items, duckast.SelectItem{Expr: &duckast.Raw{Text: MultiplicityColumn}})
	step1.GroupBy = append(step1.GroupBy, &duckast.Raw{Text: MultiplicityColumn})
	s.Add(&duckast.Insert{Table: comp.DeltaView, Select: step1})

	// Step 2: combine, with MIN/MAX repair recomputing from the full join.
	c.emitCombine(comp, s, comp.DeltaView, strat)
	if comp.hasMinMax() {
		c.emitMinMaxRepair(comp, s, fromSQL(comp, comp.Select))
	}
	c.emitEmptyGroupDelete(comp, s)
	return nil
}
