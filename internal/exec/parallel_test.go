package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"openivm/internal/catalog"
	"openivm/internal/expr"
	"openivm/internal/plan"
	"openivm/internal/sqltypes"
)

// parallelCatalog builds a table large enough to clear the parallel
// thresholds, with NULLs sprinkled through both the group and value
// columns. Values stay small integers so float aggregates (AVG) are exact
// regardless of combine order.
func parallelCatalog(t testing.TB, rows int) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	tbl, err := c.CreateTable("p", []catalog.Column{
		{Name: "g", Type: sqltypes.TypeString},
		{Name: "v", Type: sqltypes.TypeInt},
		{Name: "f", Type: sqltypes.TypeFloat},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	batch := make([]sqltypes.Row, 0, rows)
	for i := 0; i < rows; i++ {
		g := sqltypes.Value(sqltypes.NewString(fmt.Sprint("g", rng.Intn(97))))
		if rng.Intn(20) == 0 {
			g = sqltypes.Null
		}
		v := sqltypes.Value(sqltypes.NewInt(int64(rng.Intn(1000))))
		if rng.Intn(15) == 0 {
			v = sqltypes.Null
		}
		batch = append(batch, sqltypes.Row{g, v, sqltypes.NewFloat(float64(rng.Intn(64)) / 4)})
	}
	if _, err := tbl.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	return c
}

func rowsToStrings(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestParallelScanMatchesSerial runs scan pipelines (fused and classic
// fallbacks) at several worker counts and requires row-for-row equality —
// order included — with the serial plan: the partition-order merge must
// reproduce the exact serial stream.
func TestParallelScanMatchesSerial(t *testing.T) {
	c := parallelCatalog(t, 20000)
	queries := []string{
		// fused: kernels compile, row-reference output
		"SELECT g, v, f FROM p WHERE v % 7 = 0",
		// fused: projection kernels + late materialization
		"SELECT v + 1, f * 2 FROM p WHERE v < 500 AND g IS NOT NULL",
		// fused since PR 4: searched CASE compiles to a kernel
		"SELECT CASE WHEN v > 500 THEN 1 ELSE 0 END FROM p WHERE v IS NOT NULL",
		// classic fallback: BETWEEN does not compile to a kernel but is
		// ParallelSafe, so the classic chain runs over the morsel queue
		"SELECT g, v FROM p WHERE v BETWEEN 100 AND 700",
		// bare scan (no filter, no projection)
		"SELECT g, v, f FROM p",
	}
	for _, sql := range queries {
		want, err := RunOpts(bindSQL(t, c, sql), Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", sql, err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := RunOpts(bindSQL(t, c, sql), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sql, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d rows, serial %d", sql, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].String() != want[i].String() {
					t.Fatalf("%s workers=%d row %d: %v, serial %v", sql, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelScanUsed pins that the queries above actually take the
// parallel operator (a threshold change silently reverting everything to
// serial must fail loudly).
func TestParallelScanUsed(t *testing.T) {
	c := parallelCatalog(t, 20000)
	n := bindSQL(t, c, "SELECT g, v, f FROM p WHERE v % 7 = 0")
	it, err := OpenBatch(n, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*parallelScan); !ok {
		t.Fatalf("expected *parallelScan, got %T", it)
	}
	// The binder tops aggregates with a Project; open the Aggregate node
	// itself to observe the operator choice.
	var aggNode *plan.Aggregate
	plan.Walk(bindSQL(t, c, "SELECT g, SUM(v) FROM p GROUP BY g"), func(n plan.Node) bool {
		if a, ok := n.(*plan.Aggregate); ok {
			aggNode = a
		}
		return true
	})
	if aggNode == nil {
		t.Fatal("no Aggregate node in plan")
	}
	it, err = OpenBatch(aggNode, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*parallelAgg); !ok {
		t.Fatalf("expected *parallelAgg, got %T", it)
	}
	// Small snapshots stay serial even with workers requested.
	small := parallelCatalog(t, 512)
	it, err = OpenBatch(bindSQL(t, small, "SELECT g FROM p WHERE v > 3"), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*parallelScan); ok {
		t.Fatal("512-row scan went parallel; threshold not applied")
	}
}

// TestParallelAggMatchesSerial covers every mergeable aggregate kind over
// NULL-heavy groups, with and without filters, at several worker counts.
// Output must match the serial operator exactly, group order included
// (partition-order combine preserves first-seen order).
func TestParallelAggMatchesSerial(t *testing.T) {
	c := parallelCatalog(t, 20000)
	queries := []string{
		"SELECT g, SUM(v), COUNT(*), COUNT(v), MIN(v), MAX(v), AVG(v) FROM p GROUP BY g",
		"SELECT g, SUM(f), AVG(f) FROM p WHERE v IS NOT NULL GROUP BY g",
		// global aggregate, one combined row
		"SELECT SUM(v), COUNT(*), MIN(f), MAX(f) FROM p",
		// global aggregate over an empty filter result: default row
		"SELECT SUM(v), COUNT(*) FROM p WHERE v > 100000",
	}
	for _, sql := range queries {
		want, err := RunOpts(bindSQL(t, c, sql), Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", sql, err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := RunOpts(bindSQL(t, c, sql), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sql, workers, err)
			}
			g, w := rowsToStrings(got), rowsToStrings(want)
			if strings.Join(g, "\n") != strings.Join(w, "\n") {
				t.Fatalf("%s workers=%d:\ngot:\n%s\nwant:\n%s", sql, workers,
					strings.Join(g, "\n"), strings.Join(w, "\n"))
			}
		}
	}
}

// TestParallelAggDistinctStaysSerial: DISTINCT aggregate states cannot
// merge, so the planner-level check must refuse the parallel operator and
// the query still answers correctly through the serial path.
func TestParallelAggDistinctStaysSerial(t *testing.T) {
	c := parallelCatalog(t, 20000)
	sql := "SELECT g, COUNT(DISTINCT v) FROM p GROUP BY g"
	it, err := OpenBatch(bindSQL(t, c, sql), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*parallelAgg); ok {
		t.Fatal("DISTINCT aggregate went parallel")
	}
	want, err := RunOpts(bindSQL(t, c, sql), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOpts(bindSQL(t, c, sql), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsToStrings(got), "\n") != strings.Join(rowsToStrings(want), "\n") {
		t.Fatal("DISTINCT aggregate results differ between worker settings")
	}
}

// TestParallelScanEarlyAbandon: a LIMIT directly over a scan pipeline
// stops pulling after a few rows, so the executor keeps that subtree
// serial (parallel workers would scan their whole partitions for
// nothing). Results must match the serial plan either way, and an
// abandoned parallelScan — exercised directly — must not deadlock.
func TestParallelScanEarlyAbandon(t *testing.T) {
	c := parallelCatalog(t, 20000)
	sql := "SELECT g, v FROM p WHERE v >= 0 LIMIT 5"
	want, err := RunOpts(bindSQL(t, c, sql), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOpts(bindSQL(t, c, sql), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsToStrings(got), "\n") != strings.Join(rowsToStrings(want), "\n") {
		t.Fatalf("LIMIT over parallel scan differs: %v vs %v", got, want)
	}

	// The serialization guard must see through chains of streaming
	// operators: DISTINCT under LIMIT still stops early, so its scan must
	// not fan out either.
	dl := bindSQL(t, c, "SELECT DISTINCT g FROM p WHERE v >= 0 LIMIT 3")
	it, err := OpenBatch(dl, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lim, isLim := it.(*batchLimit); isLim {
		if dist, isDist := lim.in.(*batchDistinct); isDist {
			if _, isPar := dist.in.(*parallelScan); isPar {
				t.Fatal("LIMIT over DISTINCT fanned out the scan")
			}
		}
	}
	wantD, err := RunOpts(bindSQL(t, c, "SELECT DISTINCT g FROM p WHERE v >= 0 LIMIT 3"), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotD, err := RunOpts(dl, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsToStrings(gotD), "\n") != strings.Join(rowsToStrings(wantD), "\n") {
		t.Fatalf("DISTINCT+LIMIT differs: %v vs %v", gotD, wantD)
	}

	// Abandon a parallel scan mid-stream: Close must cancel the morsel
	// queue, wake workers parked on the bounded channel, and return only
	// after every worker exited — no deadlock, no goroutine left behind.
	scan, filters, proj, ok := plan.ScanPipeline(bindSQL(t, c, "SELECT g, v FROM p WHERE v >= 0"))
	if !ok {
		t.Fatal("not a pipeline")
	}
	ps, ok := newParallelScan(scan, filters, proj, Options{BatchSize: 64, Workers: 4})
	if !ok {
		t.Fatal("parallel scan refused")
	}
	if b, err := ps.NextBatch(); err != nil || b == nil || b.Len() == 0 {
		t.Fatalf("first batch = (%v, %v)", b, err)
	}
	ps.Close() // most of the stream unread; Close is the leak barrier
	ps.Close() // idempotent
}

// TestParallelScanErrorPropagates: a worker hitting an evaluation error
// must surface it through the merge stage.
func TestParallelScanErrorPropagates(t *testing.T) {
	c := parallelCatalog(t, 20000)
	tbl, err := c.Table("p")
	if err != nil {
		t.Fatal(err)
	}
	scan := plan.NewScan(tbl, "")
	// A column reference past the row width errors at Eval time; it cannot
	// compile to a kernel, so the classic partitioned chain runs it.
	bad := &plan.Filter{Input: scan, Pred: &expr.Column{Idx: 99, Typ: sqltypes.TypeBool}}
	if _, err := RunOpts(bad, Options{Workers: 4}); err == nil {
		t.Fatal("worker evaluation error was swallowed")
	}
}

// TestParallelSafeRefusesStatefulExprs pins the expression-safety gate the
// classic partitioned chain depends on.
func TestParallelSafeRefusesStatefulExprs(t *testing.T) {
	if !expr.ParallelSafe(&expr.Binary{Op: "+", Left: &expr.Column{Idx: 0}, Right: &expr.Literal{Val: sqltypes.NewInt(1)}}) {
		t.Fatal("pure arithmetic reported unsafe")
	}
	// ScalarFunc hands its argument scratch between evaluators by atomic
	// swap, so COALESCE/ABS trees are admitted (the plan-cache breadth
	// fix); the scratch inside must not taint the tree.
	sf := &expr.ScalarFunc{Name: "COALESCE", Args: []expr.Expr{&expr.Column{Idx: 0}}}
	if !expr.ParallelSafe(sf) {
		t.Fatal("ScalarFunc (atomic scratch hand-off) reported unsafe")
	}
	if !expr.ParallelSafe(&expr.Binary{Op: "AND", Left: sf, Right: &expr.Column{Idx: 1}}) {
		t.Fatal("tree containing ScalarFunc reported unsafe")
	}
	// A ScalarFunc whose ARGUMENT is stateful still refuses.
	inq := &expr.InQuery{Operand: &expr.Column{Idx: 0}}
	if expr.ParallelSafe(&expr.ScalarFunc{Name: "ABS", Args: []expr.Expr{inq}}) {
		t.Fatal("ScalarFunc over InQuery reported parallel-safe")
	}
	if expr.ParallelSafe(inq) {
		t.Fatal("InQuery (lazy cache) reported parallel-safe")
	}
	// Statement parameters read a session-mutable binding: reusable across
	// sequential executions, never shareable across goroutines.
	p := &expr.Param{Index: 1, Binding: &expr.ParamBinding{}}
	if expr.ParallelSafe(p) {
		t.Fatal("Param (session value binding) reported parallel-safe")
	}
	if !expr.Reusable(p) {
		t.Fatal("Param must stay reusable (prepared-statement contract)")
	}
}
