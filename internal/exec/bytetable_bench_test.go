package exec

import (
	"fmt"
	"testing"

	"openivm/internal/sqltypes"
)

func benchKeys() [][]byte {
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = sqltypes.EncodeKey(nil, sqltypes.NewString(fmt.Sprint("g", i)))
	}
	return keys
}

func BenchmarkByteTableProbe(b *testing.B) {
	keys := benchKeys()
	tab := newByteTable(2500)
	for _, k := range keys {
		tab.getOrInsert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.getOrInsert(keys[i&255])
	}
}

func BenchmarkMapProbe(b *testing.B) {
	keys := benchKeys()
	m := make(map[string]int32, 2500)
	for i, k := range keys {
		m[string(k)] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[string(keys[i&255])]
	}
}
