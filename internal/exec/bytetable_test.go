package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"openivm/internal/catalog"
	"openivm/internal/sqltypes"
)

// randKeyRow produces a random row for key encoding, NULL-heavy on
// purpose: the encoded forms of NULL, numbers and strings exercise every
// tag branch of EncodeKey, and duplicate keys are frequent enough to hit
// both byteTable outcomes.
func randKeyRow(rng *rand.Rand) sqltypes.Row {
	r := make(sqltypes.Row, 2)
	for i := range r {
		switch rng.Intn(4) {
		case 0:
			r[i] = sqltypes.Null
		case 1:
			r[i] = sqltypes.NewInt(int64(rng.Intn(50)))
		case 2:
			r[i] = sqltypes.NewFloat(float64(rng.Intn(40)) / 8)
		default:
			r[i] = sqltypes.NewString(fmt.Sprintf("k%d", rng.Intn(60)))
		}
	}
	return r
}

// TestByteTableMatchesMap is the property test against the map-backed
// directory the byteTable replaced: over tens of thousands of NULL-heavy
// random keys — enough inserts to cross several grow/rehash boundaries
// starting from the minimum capacity — every getOrInsert and get must
// agree with a map[string]int32 assigning the same dense indexes.
func TestByteTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, hint := range []int{0, 3, 1024} {
		tab := newByteTable(hint)
		ref := make(map[string]int32)
		var buf []byte
		for i := 0; i < 30000; i++ {
			row := randKeyRow(rng)
			buf = sqltypes.EncodeKey(buf[:0], row...)

			wantIdx, wantPresent := ref[string(buf)]
			if !wantPresent {
				wantIdx = int32(len(ref))
				ref[string(buf)] = wantIdx
			}

			gotIdx, inserted := tab.getOrInsert(buf)
			if inserted == wantPresent {
				t.Fatalf("insert %d: inserted=%v, map says present=%v", i, inserted, wantPresent)
			}
			if gotIdx != wantIdx {
				t.Fatalf("insert %d: index %d, map says %d", i, gotIdx, wantIdx)
			}
			if idx, ok := tab.get(buf); !ok || idx != wantIdx {
				t.Fatalf("get after insert %d: (%d, %v), want (%d, true)", i, idx, ok, wantIdx)
			}
			if string(tab.keyAt(wantIdx)) != string(buf) {
				t.Fatalf("keyAt(%d) does not round-trip the key bytes", wantIdx)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("hint %d: table has %d entries, map has %d", hint, tab.len(), len(ref))
		}
		// Absent keys must miss.
		for i := 0; i < 100; i++ {
			buf = sqltypes.EncodeKey(buf[:0], sqltypes.NewString(fmt.Sprintf("absent-%d", i)))
			if _, ok := tab.get(buf); ok {
				t.Fatalf("absent key %d reported present", i)
			}
		}
	}
}

// TestByteTableZeroValue pins that the zero value is a working empty
// table (operators embed it without calling the constructor).
func TestByteTableZeroValue(t *testing.T) {
	var tab byteTable
	if _, ok := tab.get([]byte("x")); ok {
		t.Fatal("zero-value get reported a hit")
	}
	if idx, inserted := tab.getOrInsert([]byte("x")); !inserted || idx != 0 {
		t.Fatalf("zero-value insert = (%d, %v)", idx, inserted)
	}
	if idx, inserted := tab.getOrInsert([]byte("x")); inserted || idx != 0 {
		t.Fatalf("zero-value re-insert = (%d, %v)", idx, inserted)
	}
	// The empty key (a zero-column group) is a legal distinct key.
	if idx, inserted := tab.getOrInsert(nil); !inserted || idx != 1 {
		t.Fatalf("empty-key insert = (%d, %v)", idx, inserted)
	}
}

// TestByteTableSteadyStateAllocs: once a key is resident, probing it —
// hit-path getOrInsert included — allocates nothing. This is the property
// the map[string] directories could not give the insert path: with the
// byteTable, even first-time inserts amortize to slab appends.
func TestByteTableSteadyStateAllocs(t *testing.T) {
	tab := newByteTable(0)
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = sqltypes.EncodeKey(nil, sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprint("g", i)))
		tab.getOrInsert(keys[i])
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			if _, inserted := tab.getOrInsert(k); inserted {
				t.Fatal("resident key re-inserted")
			}
			if _, ok := tab.get(k); !ok {
				t.Fatal("resident key missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state probes allocate: %v allocs/run, want 0", allocs)
	}
}

// TestAggregateZeroMapAllocsPerGroup is the per-group allocation guard for
// hash aggregation after the open-addressing switch: aggregating input
// with many distinct groups must not pay a per-group directory entry. The
// budget of 0.25 allocs per group covers only the amortized doubling of
// the key slab, state blocks and group arrays — a map-backed directory
// (>= 1 key-string allocation per group) fails it immediately.
func TestAggregateZeroMapAllocsPerGroup(t *testing.T) {
	const rows, groups = 4096, 2048
	c := catalog.New()
	tbl, err := c.CreateTable("big", []catalog.Column{
		{Name: "k", Type: sqltypes.TypeString},
		{Name: "v", Type: sqltypes.TypeInt},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tbl.Insert(sqltypes.Row{
			sqltypes.NewString(fmt.Sprint("g", i%groups)),
			sqltypes.NewInt(int64(i)),
		})
	}
	n := bindSQL(t, c, "SELECT k, SUM(v), COUNT(*) FROM big GROUP BY k")
	var runErr error
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := RunOpts(n, Options{Workers: 1}); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if perGroup := allocs / groups; perGroup > 0.25 {
		t.Fatalf("aggregate allocs per group = %.3f (total %.0f), want <= 0.25", perGroup, allocs)
	}
}
