package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"openivm/internal/plan"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base (plus slack for runtime background goroutines), failing after a
// generous deadline. Polling is required: Close is a barrier for the
// workers' user code, but the runtime needs a moment to retire them.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines did not return to baseline: %d > %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelScanCloseReleasesWorkers is the leak test the Close protocol
// is measured by: open a parallel scan, pull one batch, Close mid-stream,
// and require the goroutine count to return to its pre-query baseline.
func TestParallelScanCloseReleasesWorkers(t *testing.T) {
	c := parallelCatalog(t, 40000)
	n := bindSQL(t, c, "SELECT g, v FROM p WHERE v >= 0")
	base := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		it, err := OpenBatch(n, Options{Workers: 4, BatchSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := it.(*parallelScan); !ok {
			t.Fatalf("expected *parallelScan, got %T", it)
		}
		if b, err := it.NextBatch(); err != nil || b == nil {
			t.Fatalf("first batch = (%v, %v)", b, err)
		}
		it.Close()
	}
	waitGoroutines(t, base)
}

// TestLimitEarlyCloseNoLeak drives a full LIMIT plan through RunOpts —
// the engine path — and asserts no worker goroutine survives the query.
// The plan forces parallel execution below the limit via an Aggregate
// (a pipeline breaker, so the scan fans out even under LIMIT).
func TestLimitEarlyCloseNoLeak(t *testing.T) {
	c := parallelCatalog(t, 40000)
	base := runtime.NumGoroutine()
	rows, err := RunOpts(bindSQL(t, c, "SELECT g, SUM(v) FROM p GROUP BY g LIMIT 3"), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(rows))
	}
	waitGoroutines(t, base)
}

// TestParallelScanChannelBounded pins the acceptance criterion that the
// parallel scan's output channel holds O(workers) morsels — each of at
// most a morsel's surviving row headers — rather than one slot for every
// morsel of the snapshot (the old full-materialization sizing).
func TestParallelScanChannelBounded(t *testing.T) {
	c := parallelCatalog(t, 40000)
	scan, filters, proj, ok := plan.ScanPipeline(bindSQL(t, c, "SELECT g, v FROM p WHERE v >= 0"))
	if !ok {
		t.Fatal("not a pipeline")
	}
	it, ok := newParallelScan(scan, filters, proj, Options{BatchSize: DefaultBatchSize, Workers: 4})
	if !ok {
		t.Fatal("parallel scan refused")
	}
	ps := it.(*parallelScan)
	defer ps.Close()
	if _, err := ps.NextBatch(); err != nil {
		t.Fatal(err)
	}
	if got, want := cap(ps.ch), ps.workers; got != want {
		t.Fatalf("channel capacity = %d morsels, want O(workers) = %d", got, want)
	}
	if morsels := ps.queue.count(); cap(ps.ch) >= morsels {
		t.Fatalf("channel capacity %d not smaller than morsel count %d — no backpressure", cap(ps.ch), morsels)
	}
	// Drain fully: the claim window must have kept the reorder buffer
	// within O(workers) morsels the whole way, regardless of skew.
	for {
		b, err := ps.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
	}
	if ps.maxBuf > ps.window {
		t.Fatalf("reorder buffer reached %d morsels, claim window is %d", ps.maxBuf, ps.window)
	}
}

// TestContextCancelStopsQuery: a context cancelled mid-stream must surface
// ctx.Err() from serial and parallel plans alike, and leave no workers.
func TestContextCancelStopsQuery(t *testing.T) {
	c := parallelCatalog(t, 40000)
	base := runtime.NumGoroutine()

	// Pre-cancelled context: even the first batch must refuse.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := RunOpts(bindSQL(t, c, "SELECT g, SUM(v) FROM p GROUP BY g"), Options{Workers: workers, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: cancelled context returned %v, want context.Canceled", workers, err)
		}
	}

	// Cancel after the first batch: the parallel workers must stop claiming
	// morsels and the error must surface.
	ctx2, cancel2 := context.WithCancel(context.Background())
	it, err := OpenBatch(bindSQL(t, c, "SELECT g, v FROM p WHERE v >= 0"), Options{Workers: 4, BatchSize: 64, Ctx: ctx2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.NextBatch(); err != nil {
		t.Fatal(err)
	}
	cancel2()
	for {
		b, err := it.NextBatch()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-stream cancel surfaced %v", err)
			}
			break
		}
		if b == nil {
			t.Fatal("cancelled query drained cleanly without surfacing ctx.Err()")
		}
	}
	it.Close()
	waitGoroutines(t, base)
}

// TestCloseIdempotentAcrossOperators closes whole operator trees twice at
// several shapes (join, set op, sort, distinct) — double-close must be a
// no-op everywhere and half-drained children must be released.
func TestCloseIdempotentAcrossOperators(t *testing.T) {
	c := parallelCatalog(t, 20000)
	base := runtime.NumGoroutine()
	queries := []string{
		"SELECT a.g, b.v FROM p AS a JOIN p AS b ON a.g = b.g LIMIT 1",
		"SELECT g FROM p WHERE v > 10 UNION SELECT g FROM p WHERE v < 5",
		"SELECT DISTINCT g FROM p ORDER BY g",
	}
	for _, sql := range queries {
		it, err := OpenBatch(bindSQL(t, c, sql), Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.NextBatch(); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		it.Close()
		it.Close()
	}
	waitGoroutines(t, base)
}
