package exec

import (
	"bytes"
	"encoding/binary"
)

// byteTable is an open-addressing hash table keyed by raw []byte, the
// directory behind every hash operator (aggregate groups, join buckets,
// distinct/set-op seen-sets). Each distinct key is assigned a dense entry
// index in insertion order (0, 1, 2, …); callers use that index to address
// flat side arrays — group key rows, accumulator states, join buckets,
// multiset counts. Compared to the map[string]T directories it replaces,
// inserting a key costs its bytes appended to one shared slab instead of a
// heap-allocated key string plus a map bucket entry, and lookups probe a
// flat slot array instead of runtime map buckets — the hot path allocates
// nothing and touches no pointers.
//
// Layout: slots is a power-of-two array of 8-byte (hash32, entry-index)
// pairs probed linearly; keyData holds every key's bytes back to back with
// keyOffs fencing entry i at keyData[keyOffs[i]:keyOffs[i+1]]. The slot
// array is deliberately small — 8 bytes per slot, grown from the actual
// entry count rather than an optimistic estimate — because the probing
// loop's slot load is the operation's memory touch: under the streaming
// cache pressure of a scan, a compact table stays cache-resident where a
// hint-oversized one would take a memory stall per probe. A probe compares
// the cached hash before touching key bytes, so chains rarely dereference
// the slab. The zero value is a valid empty table.
type byteTable struct {
	slots   []byteSlot
	mask    uint32
	n       int // entries
	growAt  int // resize threshold (3/4 load)
	keyData []byte
	keyOffs []uint32 // len n+1 once the first entry lands
}

type byteSlot struct {
	hash uint32
	idx  int32 // dense entry index; negative = empty
}

const byteTableMinCap = 16

// newByteTable returns a table pre-sized so hint entries fit without
// rehashing. Pass an exact or near-exact count (a hash join's drained
// build side); for guessy cardinality estimates prefer hint 0 — growing
// costs log2(n) cheap slot-array rehashes (key bytes are never touched),
// while over-sizing makes every probe of the sparse slot array a cache
// miss under scan traffic.
func newByteTable(hint int) byteTable {
	c := byteTableMinCap
	for c*3/4 < hint && c < maxPresize*2 {
		c <<= 1
	}
	var t byteTable
	t.init(c)
	return t
}

func (t *byteTable) init(c int) {
	t.slots = make([]byteSlot, c)
	for i := range t.slots {
		t.slots[i].idx = -1
	}
	t.mask = uint32(c - 1)
	t.growAt = c * 3 / 4
	if t.keyOffs == nil {
		t.keyOffs = append(make([]uint32, 0, byteTableMinCap+1), 0)
	}
}

// hashBytes mixes 8-byte words FNV-style, folded to 32 bits (tables are
// far below 2^32 slots); collisions only cost extra probes — keys are
// compared byte-wise on hash match — so speed over short encoded keys
// matters more than avalanche quality.
func hashBytes(b []byte) uint32 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * prime
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return uint32(h ^ h>>32)
}

// len returns the number of distinct keys inserted.
func (t *byteTable) len() int { return t.n }

// keyAt returns entry i's key bytes (valid until the table is discarded;
// inserts never move the slab's committed prefix).
func (t *byteTable) keyAt(i int32) []byte {
	return t.keyData[t.keyOffs[i]:t.keyOffs[i+1]]
}

// get returns the entry index for key, or ok=false when absent.
func (t *byteTable) get(key []byte) (int32, bool) {
	return t.getHashed(key, hashBytes(key))
}

// getHashed is get with the key's hash computed by the caller — the
// radix-partitioned join build hashes each key once to route it to a
// partition table, then probes with the same hash.
func (t *byteTable) getHashed(key []byte, h uint32) (int32, bool) {
	if t.n == 0 {
		return -1, false
	}
	for pos := h & t.mask; ; pos = (pos + 1) & t.mask {
		s := t.slots[pos]
		if s.idx < 0 {
			return -1, false
		}
		if s.hash == h && bytes.Equal(t.keyAt(s.idx), key) {
			return s.idx, true
		}
	}
}

// getOrInsert returns key's entry index, inserting it (appending the key
// bytes to the slab) when absent. inserted reports which happened; a fresh
// entry's index is always t.len()-1, preserving first-seen dense order.
func (t *byteTable) getOrInsert(key []byte) (idx int32, inserted bool) {
	return t.getOrInsertHashed(key, hashBytes(key))
}

// getOrInsertHashed is getOrInsert with a caller-computed hash.
func (t *byteTable) getOrInsertHashed(key []byte, h uint32) (idx int32, inserted bool) {
	if t.n >= t.growAt {
		t.grow()
	}
	for pos := h & t.mask; ; pos = (pos + 1) & t.mask {
		s := &t.slots[pos]
		if s.idx < 0 {
			// keyOffs fences are uint32: past 4 GiB of key bytes the
			// offsets would wrap into silent wrong-group corruption, so
			// fail loudly instead (far beyond any in-memory workload here).
			if uint64(len(t.keyData))+uint64(len(key)) > uint64(^uint32(0)) {
				panic("exec: byteTable key slab exceeds 4GiB")
			}
			idx = int32(t.n)
			s.hash, s.idx = h, idx
			t.keyData = append(t.keyData, key...)
			t.keyOffs = append(t.keyOffs, uint32(len(t.keyData)))
			t.n++
			return idx, true
		}
		if s.hash == h && bytes.Equal(t.keyAt(s.idx), key) {
			return s.idx, false
		}
	}
}

// grow doubles the slot array and redistributes entries from their cached
// hashes — key bytes are neither touched nor re-hashed.
func (t *byteTable) grow() {
	old := t.slots
	c := len(old) * 2
	if c < byteTableMinCap {
		c = byteTableMinCap
	}
	t.init(c)
	for _, s := range old {
		if s.idx < 0 {
			continue
		}
		pos := s.hash & t.mask
		for t.slots[pos].idx >= 0 {
			pos = (pos + 1) & t.mask
		}
		t.slots[pos] = s
	}
}
