package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"openivm/internal/catalog"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// nullHeavyCatalog builds a table whose columns are ~40% NULL across every
// vectorizable type, exercising the kernels' validity-bitmap paths.
func nullHeavyCatalog(t *testing.T, rows int) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	tbl, err := c.CreateTable("nh", []catalog.Column{
		{Name: "i", Type: sqltypes.TypeInt},
		{Name: "f", Type: sqltypes.TypeFloat},
		{Name: "s", Type: sqltypes.TypeString},
		{Name: "b", Type: sqltypes.TypeBool},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	maybe := func(v sqltypes.Value) sqltypes.Value {
		if rng.Intn(5) < 2 {
			return sqltypes.Null
		}
		return v
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(sqltypes.Row{
			maybe(sqltypes.NewInt(int64(rng.Intn(20) - 10))),
			maybe(sqltypes.NewFloat(float64(rng.Intn(100)) / 4)),
			maybe(sqltypes.NewString(fmt.Sprintf("s%d", rng.Intn(6)))),
			maybe(sqltypes.NewBool(rng.Intn(2) == 0)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// runClassic executes the plan with the fused fast path disabled, by
// rebuilding the matched pipeline from the classic operators.
func runClassic(t *testing.T, n plan.Node, opts Options) []sqltypes.Row {
	t.Helper()
	scan, filters, proj, ok := plan.ScanPipeline(n)
	if !ok {
		t.Fatalf("plan is not a fusible pipeline:\n%s", plan.Explain(n))
	}
	var it BatchIterator = newBatchScan(scan, opts)
	for _, f := range filters {
		it = &batchFilter{in: it, pred: f}
	}
	if proj != nil {
		it = newBatchProject(it, proj, opts)
	}
	rows, err := drain(it, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// runFused executes the plan insisting on the fused operator.
func runFused(t *testing.T, n plan.Node, opts Options) []sqltypes.Row {
	t.Helper()
	scan, filters, proj, ok := plan.ScanPipeline(n)
	if !ok {
		t.Fatalf("plan is not a fusible pipeline:\n%s", plan.Explain(n))
	}
	fs, compiled := newFusedScan(scan, filters, proj, opts)
	if !compiled {
		t.Fatalf("pipeline did not compile to kernels:\n%s", plan.Explain(n))
	}
	rows, err := drain(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func bindSelect(t *testing.T, c *catalog.Catalog, sql string) plan.Node {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.NewBinder(c).BindSelect(stmt.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFusedMatchesClassic drives NULL-heavy batches through the vector
// kernels and requires cell-for-cell agreement with the boxed row
// evaluator, across every supported operator class.
func TestFusedMatchesClassic(t *testing.T) {
	c := nullHeavyCatalog(t, 3000)
	queries := []string{
		// comparisons + AND/OR three-valued logic
		"SELECT i, f FROM nh WHERE i > 0 AND f < 20.0",
		"SELECT i FROM nh WHERE i > 2 OR b",
		"SELECT i FROM nh WHERE NOT (i >= 0)",
		// IS NULL / IS NOT NULL see the validity bitmap directly
		"SELECT i, s FROM nh WHERE s IS NULL",
		"SELECT i, s FROM nh WHERE i IS NOT NULL AND s IS NOT NULL",
		// arithmetic projections, including division by zero -> NULL
		"SELECT i + 1, i * 2, -i FROM nh WHERE i <> 3",
		"SELECT i / (i - 1), i % 2 FROM nh WHERE i IS NOT NULL",
		// int/float promotion both in filters and projections
		"SELECT i + f, f / 2 FROM nh WHERE i < f",
		// string comparisons and LIKE
		"SELECT s FROM nh WHERE s >= 's2'",
		"SELECT s FROM nh WHERE s LIKE 's%'",
		// bool column compared against literal
		"SELECT i FROM nh WHERE b = TRUE",
		// searched CASE (the IVM multiplicity shape), incl. missing ELSE
		"SELECT CASE WHEN b = FALSE THEN -i ELSE i END FROM nh WHERE i <> 0",
		"SELECT CASE WHEN i > 2 THEN f END FROM nh WHERE f IS NOT NULL",
		// simple CASE (with operand) rewrites to searched form: equality
		// matching incl. NULL operands (match nothing) and promotion
		"SELECT CASE i WHEN 1 THEN 10 WHEN 2 THEN 20 ELSE 0 END FROM nh WHERE i <> 0",
		"SELECT CASE s WHEN 's1' THEN i END FROM nh WHERE i IS NOT NULL",
		"SELECT CASE i WHEN f THEN 1 ELSE 0 END FROM nh WHERE b IS NOT NULL",
		// same-typed COALESCE and numeric CAST
		"SELECT COALESCE(i, 0) + 1 FROM nh WHERE i <> 1",
		"SELECT CAST(i AS DOUBLE) / 2, CAST(f AS INTEGER) FROM nh WHERE i IS NOT NULL",
		// filter-only pipeline (row-reference output, no projection)
		"SELECT i, f, s, b FROM nh WHERE i > 0",
	}
	for _, sql := range queries {
		for _, bs := range []int{7, 256, DefaultBatchSize} {
			opts := Options{BatchSize: bs}
			n := bindSelect(t, c, sql)
			got := runFused(t, n, opts)
			want := runClassic(t, bindSelect(t, c, sql), opts)
			if len(got) != len(want) {
				t.Fatalf("%s (bs=%d): fused %d rows, classic %d rows", sql, bs, len(got), len(want))
			}
			for i := range got {
				if got[i].String() != want[i].String() {
					t.Fatalf("%s (bs=%d) row %d: fused %v, classic %v", sql, bs, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFusedFallback verifies that pipelines outside the kernel compiler's
// reach still execute (through the classic chain) with identical results.
func TestFusedFallback(t *testing.T) {
	c := nullHeavyCatalog(t, 500)
	queries := []string{
		// Simple CASE whose rewritten arms mix result types stays boxed.
		"SELECT CASE i WHEN 1 THEN 10 ELSE 0.5 END FROM nh WHERE i <> 0",
		// Mixed-type COALESCE keeps the boxed first-non-NULL semantics.
		"SELECT COALESCE(f, 0) FROM nh WHERE f > 1.0",
		// Other scalar functions stay boxed.
		"SELECT ABS(i) FROM nh WHERE i <> 0",
		// BETWEEN keeps the boxed evaluator's NULL quirks
		"SELECT i FROM nh WHERE i BETWEEN 0 AND 5",
	}
	for _, sql := range queries {
		n := bindSelect(t, c, sql)
		scan, filters, proj, ok := plan.ScanPipeline(n)
		if !ok {
			t.Fatalf("plan shape changed for %s:\n%s", sql, plan.Explain(n))
		}
		if _, compiled := newFusedScan(scan, filters, proj, Options{BatchSize: 64}); compiled {
			t.Fatalf("expected kernel fallback for %s", sql)
		}
		// The public entry point must run the query either way.
		rows, err := Run(bindSelect(t, c, sql))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("no rows for %s", sql)
		}
	}
}

// TestFusedNonBooleanPredicate pins the fallback for WHERE clauses that
// are not boolean-typed: the kernel compiler must refuse them (reading a
// numeric vector as booleans would panic), and the classic path gives SQL
// its usual answer — a non-TRUE predicate keeps nothing.
func TestFusedNonBooleanPredicate(t *testing.T) {
	c := nullHeavyCatalog(t, 50)
	for _, sql := range []string{
		"SELECT i FROM nh WHERE i + 1",
		"SELECT i FROM nh WHERE i",
		"SELECT i FROM nh WHERE 1",
	} {
		n := bindSelect(t, c, sql)
		if scan, filters, proj, ok := plan.ScanPipeline(n); ok {
			if _, compiled := newFusedScan(scan, filters, proj, Options{BatchSize: 8}); compiled {
				t.Fatalf("non-boolean predicate compiled to a fused pipeline: %s", sql)
			}
		}
		rows, err := Run(bindSelect(t, c, sql))
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(rows) != 0 {
			t.Fatalf("%s: non-boolean WHERE kept %d rows", sql, len(rows))
		}
	}
}

// TestFusedScanAllocs is the allocation guard for the fused
// Scan→Filter→Project loop: after the operator's fixed setup, producing
// more batches must not allocate — doubling the row count may not change
// the allocation count of a full drain. This is what "no intermediate
// batches" means operationally: the loop reuses its vectors, selection
// buffer and output batch for the whole scan.
func TestFusedScanAllocs(t *testing.T) {
	build := func(rows int) *catalog.Catalog {
		c := catalog.New()
		tbl, _ := c.CreateTable("big", []catalog.Column{
			{Name: "a", Type: sqltypes.TypeInt},
			{Name: "b", Type: sqltypes.TypeInt},
		}, nil, false)
		batch := make([]sqltypes.Row, 0, rows)
		for i := 0; i < rows; i++ {
			batch = append(batch, sqltypes.Row{
				sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 10)),
			})
		}
		if _, err := tbl.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		return c
	}
	const sql = "SELECT a + b, a * 2 FROM big WHERE b < 5"
	measure := func(c *catalog.Catalog) float64 {
		n := bindSelect(t, c, sql)
		scan, filters, proj, ok := plan.ScanPipeline(n)
		if !ok {
			t.Fatal("not a pipeline")
		}
		return testing.AllocsPerRun(10, func() {
			fs, compiled := newFusedScan(scan, filters, proj, Options{BatchSize: 256})
			if !compiled {
				t.Fatal("did not compile")
			}
			total := 0
			for {
				b, err := fs.NextBatch()
				if err != nil {
					t.Fatal(err)
				}
				if b == nil {
					break
				}
				// Consume columns directly; RowView would charge the
				// caller's materialization to the pipeline.
				total += b.Len()
			}
			if total == 0 {
				t.Fatal("no rows")
			}
		})
	}
	small, large := measure(build(2048)), measure(build(8192))
	if large > small {
		t.Fatalf("fused pipeline allocates per batch: %v allocs at 2048 rows vs %v at 8192", small, large)
	}
}

// TestJoinBuildSideSelection checks every join kind against a brute-force
// nested loop when the cost model picks either build side.
func TestJoinBuildSideSelection(t *testing.T) {
	c := catalog.New()
	small, _ := c.CreateTable("small", []catalog.Column{{Name: "x", Type: sqltypes.TypeInt}}, nil, false)
	big, _ := c.CreateTable("big", []catalog.Column{{Name: "y", Type: sqltypes.TypeInt}}, nil, false)
	for i := 0; i < 3; i++ {
		small.Insert(sqltypes.Row{sqltypes.NewInt(int64(i * 2))}) // 0 2 4
	}
	small.Insert(sqltypes.Row{sqltypes.Null})
	for i := 0; i < 40; i++ {
		big.Insert(sqltypes.Row{sqltypes.NewInt(int64(i % 6))})
	}
	big.Insert(sqltypes.Row{sqltypes.Null})

	cases := []string{
		// small on the left: cost model builds left, probes right
		"SELECT small.x, big.y FROM small JOIN big ON small.x = big.y",
		"SELECT small.x, big.y FROM small LEFT JOIN big ON small.x = big.y",
		"SELECT small.x, big.y FROM small RIGHT JOIN big ON small.x = big.y",
		"SELECT small.x, big.y FROM small FULL OUTER JOIN big ON small.x = big.y",
		// small on the right: classic right-side build
		"SELECT big.y, small.x FROM big JOIN small ON big.y = small.x",
		"SELECT big.y, small.x FROM big LEFT JOIN small ON big.y = small.x",
		"SELECT big.y, small.x FROM big RIGHT JOIN small ON big.y = small.x",
		"SELECT big.y, small.x FROM big FULL OUTER JOIN small ON big.y = small.x",
	}
	for _, sql := range cases {
		got := sortedStrings(t, runSQL(t, c, sql))
		// Reference: the same join with the equi key obscured, forcing the
		// nested-loop path (no hash table, no build-side choice).
		ref := sortedStrings(t, runSQL(t, c, replaceEquals(sql)))
		if len(got) != len(ref) {
			t.Fatalf("%s: %d rows vs nested-loop %d", sql, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s row %d: %q vs %q", sql, i, got[i], ref[i])
			}
		}
	}
}

func sortedStrings(t *testing.T, rows []sqltypes.Row) []string {
	t.Helper()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// replaceEquals rewrites "a = b" into "a + 0 = b" in the ON clause so the
// planner cannot extract equi keys (same trick as the existing hash-vs-loop
// test), keeping NULL semantics identical.
func replaceEquals(sql string) string {
	const on = " ON "
	for i := 0; i+len(on) <= len(sql); i++ {
		if sql[i:i+len(on)] == on {
			head, cond := sql[:i+len(on)], sql[i+len(on):]
			for j := 0; j+3 <= len(cond); j++ {
				if cond[j:j+3] == " = " {
					return head + cond[:j] + " + 0 = " + cond[j+3:]
				}
			}
		}
	}
	return sql
}
