package exec

import (
	"fmt"
	"sort"
	"testing"

	"openivm/internal/catalog"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	tbl, err := c.CreateTable("nums", []catalog.Column{
		{Name: "k", Type: sqltypes.TypeString},
		{Name: "v", Type: sqltypes.TypeInt},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		tbl.Insert(sqltypes.Row{
			sqltypes.NewString(fmt.Sprint("k", i%3)),
			sqltypes.NewInt(int64(i)),
		})
	}
	return c
}

func runSQL(t *testing.T, c *catalog.Catalog, sql string) []sqltypes.Row {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.NewBinder(c).BindSelect(stmt.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestScanAll(t *testing.T) {
	c := testCatalog(t)
	rows := runSQL(t, c, "SELECT k, v FROM nums")
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFilterEval(t *testing.T) {
	c := testCatalog(t)
	rows := runSQL(t, c, "SELECT v FROM nums WHERE v % 2 = 0")
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestHashAggDeterministicFirstSeenOrder(t *testing.T) {
	c := testCatalog(t)
	rows := runSQL(t, c, "SELECT k, SUM(v) FROM nums GROUP BY k")
	// k0 inserted first, so it must come out first (first-seen order).
	if rows[0][0].S != "k0" || rows[1][0].S != "k1" || rows[2][0].S != "k2" {
		t.Fatalf("order = %v", rows)
	}
	// k0: 0+3+6+9=18
	if rows[0][1].I != 18 {
		t.Fatalf("sum = %v", rows[0])
	}
}

func TestAggOnNullGroup(t *testing.T) {
	c := testCatalog(t)
	tbl, _ := c.Table("nums")
	tbl.Insert(sqltypes.Row{sqltypes.Null, sqltypes.NewInt(100)})
	tbl.Insert(sqltypes.Row{sqltypes.Null, sqltypes.NewInt(200)})
	rows := runSQL(t, c, "SELECT k, SUM(v) FROM nums GROUP BY k")
	// NULL keys form one group (SQL GROUP BY semantics).
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	found := false
	for _, r := range rows {
		if r[0].IsNull() && r[1].I == 300 {
			found = true
		}
	}
	if !found {
		t.Fatalf("NULL group missing: %v", rows)
	}
}

func TestSortStability(t *testing.T) {
	c := testCatalog(t)
	rows := runSQL(t, c, "SELECT k, v FROM nums ORDER BY k")
	// Within equal keys, input order must be preserved (stable sort).
	var k0 []int64
	for _, r := range rows {
		if r[0].S == "k0" {
			k0 = append(k0, r[1].I)
		}
	}
	if !sort.SliceIsSorted(k0, func(i, j int) bool { return k0[i] < k0[j] }) {
		t.Fatalf("stable order violated: %v", k0)
	}
}

func TestSortNullsFirst(t *testing.T) {
	c := testCatalog(t)
	tbl, _ := c.Table("nums")
	tbl.Insert(sqltypes.Row{sqltypes.Null, sqltypes.NewInt(999)})
	rows := runSQL(t, c, "SELECT k FROM nums ORDER BY k")
	if !rows[0][0].IsNull() {
		t.Fatalf("NULL should sort first ASC: %v", rows[0])
	}
	rows = runSQL(t, c, "SELECT k FROM nums ORDER BY k DESC")
	if !rows[len(rows)-1][0].IsNull() {
		t.Fatalf("NULL should sort last DESC")
	}
}

func TestLimitOffsetEdge(t *testing.T) {
	c := testCatalog(t)
	if rows := runSQL(t, c, "SELECT v FROM nums LIMIT 0"); len(rows) != 0 {
		t.Fatalf("LIMIT 0 rows = %d", len(rows))
	}
	if rows := runSQL(t, c, "SELECT v FROM nums LIMIT 5 OFFSET 10"); len(rows) != 2 {
		t.Fatalf("offset tail rows = %d", len(rows))
	}
	if rows := runSQL(t, c, "SELECT v FROM nums OFFSET 100"); len(rows) != 0 {
		t.Fatalf("past-end offset rows = %d", len(rows))
	}
}

func TestExceptAllMultiset(t *testing.T) {
	c := catalog.New()
	tbl, _ := c.CreateTable("m", []catalog.Column{{Name: "x", Type: sqltypes.TypeInt}}, nil, false)
	for _, v := range []int64{1, 1, 1, 2} {
		tbl.Insert(sqltypes.Row{sqltypes.NewInt(v)})
	}
	// {1,1,1,2} EXCEPT ALL {1} = {1,1,2}
	rows := runSQL(t, c, "SELECT x FROM m EXCEPT ALL SELECT 1")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// {1,1,1,2} EXCEPT {1} = {2}
	rows = runSQL(t, c, "SELECT x FROM m EXCEPT SELECT 1")
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIntersectDedup(t *testing.T) {
	c := catalog.New()
	tbl, _ := c.CreateTable("m", []catalog.Column{{Name: "x", Type: sqltypes.TypeInt}}, nil, false)
	for _, v := range []int64{1, 1, 2, 3} {
		tbl.Insert(sqltypes.Row{sqltypes.NewInt(v)})
	}
	rows := runSQL(t, c, "SELECT x FROM m INTERSECT SELECT x FROM m")
	if len(rows) != 3 {
		t.Fatalf("INTERSECT must dedup: %v", rows)
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// Property: the hash path (equi keys) and the nested-loop path
	// (residual ON) must agree on random inputs.
	c := catalog.New()
	a, _ := c.CreateTable("a", []catalog.Column{{Name: "x", Type: sqltypes.TypeInt}}, nil, false)
	b, _ := c.CreateTable("b", []catalog.Column{{Name: "y", Type: sqltypes.TypeInt}}, nil, false)
	for i := 0; i < 30; i++ {
		a.Insert(sqltypes.Row{sqltypes.NewInt(int64(i % 7))})
		b.Insert(sqltypes.Row{sqltypes.NewInt(int64(i % 5))})
	}
	hash := runSQL(t, c, "SELECT a.x, b.y FROM a JOIN b ON a.x = b.y")
	// Force nested loop by obscuring the equality from key extraction.
	loop := runSQL(t, c, "SELECT a.x, b.y FROM a JOIN b ON a.x + 0 = b.y")
	if len(hash) != len(loop) {
		t.Fatalf("hash %d rows vs loop %d rows", len(hash), len(loop))
	}
	key := func(rows []sqltypes.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}
	h, l := key(hash), key(loop)
	for i := range h {
		if h[i] != l[i] {
			t.Fatalf("row %d: %q vs %q", i, h[i], l[i])
		}
	}
}

func TestFullOuterBothUnmatched(t *testing.T) {
	c := catalog.New()
	a, _ := c.CreateTable("a", []catalog.Column{{Name: "x", Type: sqltypes.TypeInt}}, nil, false)
	b, _ := c.CreateTable("b", []catalog.Column{{Name: "y", Type: sqltypes.TypeInt}}, nil, false)
	a.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	b.Insert(sqltypes.Row{sqltypes.NewInt(2)})
	rows := runSQL(t, c, "SELECT a.x, b.y FROM a FULL OUTER JOIN b ON a.x = b.y")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	var nullRight, nullLeft bool
	for _, r := range rows {
		if r[1].IsNull() {
			nullRight = true
		}
		if r[0].IsNull() {
			nullLeft = true
		}
	}
	if !nullRight || !nullLeft {
		t.Fatalf("unmatched sides missing: %v", rows)
	}
}

func TestEmptyInputs(t *testing.T) {
	c := catalog.New()
	c.CreateTable("e", []catalog.Column{{Name: "x", Type: sqltypes.TypeInt}}, nil, false)
	if rows := runSQL(t, c, "SELECT x FROM e"); len(rows) != 0 {
		t.Fatal("empty scan")
	}
	if rows := runSQL(t, c, "SELECT e.x FROM e JOIN e AS e2 ON e.x = e2.x"); len(rows) != 0 {
		t.Fatal("empty join")
	}
	if rows := runSQL(t, c, "SELECT SUM(x) FROM e GROUP BY x"); len(rows) != 0 {
		t.Fatal("empty grouped agg must produce no rows")
	}
	if rows := runSQL(t, c, "SELECT SUM(x), COUNT(*) FROM e"); len(rows) != 1 {
		t.Fatal("empty global agg must produce one row")
	}
}

func TestDistinctOnExpressions(t *testing.T) {
	c := testCatalog(t)
	rows := runSQL(t, c, "SELECT DISTINCT v % 2 FROM nums")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestErrorPropagation(t *testing.T) {
	c := testCatalog(t)
	stmt, _ := sqlparser.Parse("SELECT v FROM nums WHERE k * 2 = 4")
	n, err := plan.NewBinder(c).BindSelect(stmt.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(n); err == nil {
		t.Fatal("string arithmetic must surface as execution error")
	}
}
