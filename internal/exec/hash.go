package exec

import (
	"fmt"
	"sync"

	"openivm/internal/expr"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// maxPresize caps hash-table pre-sizing from cardinality hints so a wild
// estimate cannot allocate an absurd table up front.
const maxPresize = 1 << 16

func presize(hint int) int {
	if hint < 0 {
		return 0
	}
	if hint > maxPresize {
		return maxPresize
	}
	return hint
}

// rowKeySet is a seen-set over encoded row keys, backed by the
// open-addressing byteTable: adding a row costs its encoded bytes in the
// shared key slab, never a key-string allocation. It is the one
// key-encoding helper shared by distinct, UNION and INTERSECT (formerly
// three hand-rolled map[string] variants).
type rowKeySet struct {
	t   byteTable
	buf []byte
}

// keyTableHint caps pre-sizing for tables built from cardinality
// estimates: the estimate is routinely 10x high (distinct counts, filter
// selectivity), and an oversized sparse slot array costs a cache miss per
// probe. Beyond the cap the table grows itself — slot-array rehashes are
// cheap and never touch key bytes.
func keyTableHint(hint int) int {
	const maxEstimatePresize = 1024
	if hint > maxEstimatePresize {
		return maxEstimatePresize
	}
	return presize(hint)
}

func newRowKeySet(hint int) rowKeySet {
	return rowKeySet{t: newByteTable(keyTableHint(hint))}
}

// add inserts the row's key, reporting whether it was absent.
func (s *rowKeySet) add(r sqltypes.Row) bool {
	s.buf = sqltypes.EncodeKey(s.buf[:0], r...)
	_, inserted := s.t.getOrInsert(s.buf)
	return inserted
}

// rowKeyCounter is a multiset over encoded row keys (EXCEPT/INTERSECT
// bookkeeping). Counts live in a flat slice addressed by the byteTable's
// dense entry index, so existing keys are updated in place.
type rowKeyCounter struct {
	t      byteTable
	counts []int
	buf    []byte
}

func newRowKeyCounter(hint int) rowKeyCounter {
	return rowKeyCounter{t: newByteTable(keyTableHint(hint))}
}

func (c *rowKeyCounter) add(r sqltypes.Row) {
	c.buf = sqltypes.EncodeKey(c.buf[:0], r...)
	idx, inserted := c.t.getOrInsert(c.buf)
	if inserted {
		c.counts = append(c.counts, 1)
		return
	}
	c.counts[idx]++
}

func (c *rowKeyCounter) count(r sqltypes.Row) int {
	c.buf = sqltypes.EncodeKey(c.buf[:0], r...)
	if idx, ok := c.t.get(c.buf); ok {
		return c.counts[idx]
	}
	return 0
}

// take decrements the row's count if positive, reporting whether it did.
func (c *rowKeyCounter) take(r sqltypes.Row) bool {
	c.buf = sqltypes.EncodeKey(c.buf[:0], r...)
	if idx, ok := c.t.get(c.buf); ok && c.counts[idx] > 0 {
		c.counts[idx]--
		return true
	}
	return false
}

// --- hash aggregate ---

// statePool hands out accumulators for one aggregate in progressively
// doubling blocks (expr.Aggregate.FillStates), so a grouped aggregate pays
// O(1) allocations per block of groups instead of one per group.
type statePool struct {
	agg   *expr.Aggregate
	block []expr.AggState
	pos   int
	next  int
}

func (p *statePool) get() expr.AggState {
	if p.pos == len(p.block) {
		if p.next == 0 {
			p.next = 8
		}
		p.block = make([]expr.AggState, p.next)
		p.agg.FillStates(p.block)
		p.pos = 0
		if p.next < 512 {
			p.next *= 2
		}
	}
	s := p.block[p.pos]
	p.pos++
	return s
}

// batchAgg is the hash aggregation operator. Groups live in index-addressed
// flat arrays (group key rows from a value slab, accumulator states in one
// flat slice, the open-addressing byteTable mapping encoded key -> group
// index), so the per-group allocation cost is amortized block growth only —
// no map entry and no key-string allocation. The parallel aggregation
// wrapper (parallelAgg) runs one batchAgg per snapshot partition as the
// thread-local table and merges them through the retained table field.
type batchAgg struct {
	in   BatchIterator
	node *plan.Aggregate
	size int
	est  int

	built   bool
	table   byteTable       // encoded group key -> dense group index
	groups  []sqltypes.Row  // group key values, first-seen order
	states  []expr.AggState // len(node.Aggs) accumulators per group, flat
	pools   []statePool     // one per aggregate
	keySlab valueSlab
	defRow  sqltypes.Row // pre-rendered row for the empty global aggregate
	pos     int
	out     Batch
	slab    valueSlab

	col colAgg // columnar input path (see colagg.go)

	// First-seen tags, tracked only when the input is a morsel source
	// (dynamic work assignment): tags[g] orders group g by where its first
	// row sits in the serial stream, so the parallel combine can restore
	// the serial operator's first-seen group order. emitOrder, when set,
	// remaps output position -> group index.
	tags      []int64
	batchBase int64 // tag of the current batch's first row (-1 = untagged)
	emitOrder []int32
}

// taggedSource is implemented by inputs that can order their batches
// globally (the morsel source); batchTag returns the serial-stream tag of
// the current batch's first row.
type taggedSource interface {
	batchTag() int64
}

// noteGroup registers a fresh group: its key row, one accumulator per
// aggregate, and — under a tagged input — its first-seen tag.
func (it *batchAgg) noteGroup(kv sqltypes.Row, rowInBatch int64) {
	it.groups = append(it.groups, kv)
	for i := range it.pools {
		it.states = append(it.states, it.pools[i].get())
	}
	if it.batchBase >= 0 {
		it.tags = append(it.tags, it.batchBase+rowInBatch)
	}
}

func newBatchAgg(in BatchIterator, node *plan.Aggregate, opts Options) *batchAgg {
	it := &batchAgg{
		in:      in,
		node:    node,
		size:    opts.BatchSize,
		est:     plan.EstimateRows(node.Input),
		keySlab: newValueSlab(len(node.GroupBy), opts.BatchSize),
		slab:    newValueSlab(len(node.GroupBy)+len(node.Aggs), opts.BatchSize),
		pools:   make([]statePool, len(node.Aggs)),
	}
	for i, a := range node.Aggs {
		it.pools[i].agg = a
	}
	return it
}

func (it *batchAgg) build() error {
	// Group counts are bounded by input cardinality but usually far below
	// it; start from the estimate-capped size and let the table grow.
	it.table = newByteTable(keyTableHint(it.est / 8))
	keyScratch := make(sqltypes.Row, len(it.node.GroupBy))
	var keyBuf []byte
	nAggs := len(it.node.Aggs)
	tagSrc, _ := it.in.(taggedSource)
	it.batchBase = -1

	for {
		b, err := it.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if tagSrc != nil {
			it.batchBase = tagSrc.batchTag()
		}
		// Columnar fast path: kernel-evaluated keys and arguments (see
		// colagg.go); falls through to the row loop when unavailable.
		if handled, err := it.accumulateColumnar(b); handled || err != nil {
			if err != nil {
				return err
			}
			continue
		}
		for ri, r := range b.RowView() {
			for i, g := range it.node.GroupBy {
				v, err := g.Eval(r)
				if err != nil {
					return err
				}
				keyScratch[i] = v
			}
			keyBuf = sqltypes.EncodeKey(keyBuf[:0], keyScratch...)
			gi, inserted := it.table.getOrInsert(keyBuf)
			if inserted { // gi == len(it.groups): dense first-seen order
				kv := it.keySlab.newRow()
				copy(kv, keyScratch)
				it.noteGroup(kv, int64(ri))
			}
			for _, st := range it.states[int(gi)*nAggs : int(gi)*nAggs+nAggs] {
				if err := st.Add(r); err != nil {
					return err
				}
			}
		}
	}

	// Global aggregate with no groups and no input: one row of defaults.
	if len(it.node.GroupBy) == 0 && len(it.groups) == 0 {
		row := it.slab.newRow()
		for i, a := range it.node.Aggs {
			row[i] = a.NewState().Result()
		}
		it.defRow = row
	}
	return nil
}

// NextBatch implements BatchIterator.
func (it *batchAgg) NextBatch() (*Batch, error) {
	if !it.built {
		if err := it.build(); err != nil {
			return nil, err
		}
		it.built = true
	}
	if it.defRow != nil {
		it.out.reset()
		it.out.Rows = append(it.out.Rows, it.defRow)
		it.defRow = nil
		return &it.out, nil
	}
	if it.pos >= len(it.groups) {
		return nil, nil
	}
	it.out.reset()
	nAggs := len(it.node.Aggs)
	for it.pos < len(it.groups) && len(it.out.Rows) < it.size {
		gi := it.pos
		if it.emitOrder != nil {
			gi = int(it.emitOrder[it.pos])
		}
		kv := it.groups[gi]
		row := it.slab.newRow()
		n := copy(row, kv)
		for i, st := range it.states[gi*nAggs : gi*nAggs+nAggs] {
			row[n+i] = st.Result()
		}
		it.pos++
		it.out.Rows = append(it.out.Rows, row)
	}
	return &it.out, nil
}

// Close implements BatchIterator.
func (it *batchAgg) Close() { it.in.Close() }

// --- hash join ---

// joinBucket holds the build-side row indexes for one key. The first index
// is stored inline so the dominant foreign-key shape — exactly one build
// row per key — costs no per-bucket slice allocation; duplicates spill
// into rest.
type joinBucket struct {
	first int
	rest  []int
}

// joinPart is one radix partition of the build-side hash table: the key
// directory plus its dense-index-addressed buckets. A serial build is the
// degenerate single-partition case.
type joinPart struct {
	table   byteTable
	buckets []joinBucket
}

// batchJoin is the hash-join operator. The build side is materialized into
// a hash table keyed by the equi-join columns; the probe side streams
// through it batch by batch. Which child becomes the build side is a
// cost-based choice (plan.BuildOnLeft): the smaller estimated input is
// built, the larger probed — the IVM delta-join terms build on a
// handful-of-rows delta table while the base table streams.
type batchJoin struct {
	node  *plan.Join
	probe BatchIterator
	size  int

	// buildLeft records which child was drained into the hash table; emit
	// always produces left-then-right column order regardless.
	buildLeft bool

	buildRows []sqltypes.Row
	hashed    bool // equi-key build table present (false = cross/theta)
	// parts is the build-side hash directory, split by the high bits of the
	// key hash (hash >> radixShift selects the partition). A single
	// partition with radixShift 32 is the serial build; the parallel radix
	// build produces one partition per worker (see buildHashTable).
	parts        []joinPart
	radixShift   uint
	cand         []int // reusable candidate scratch
	allBuild     []int // cached candidate list for cross/theta joins
	keyBuf       []byte
	keyScratch   sqltypes.Row
	buildMatched []bool

	// probePreserve/buildPreserve say whether unmatched rows of that side
	// appear in the output padded with NULLs (LEFT/RIGHT/FULL semantics
	// translated through the build-side choice).
	probePreserve bool
	buildPreserve bool

	buildKeys, probeKeys []int // equi-key positions in each side's schema

	leftWidth int

	prows []sqltypes.Row // current probe-side batch (row view)
	pi    int

	out  Batch
	slab valueSlab

	probeDone   bool
	emittedTail bool
}

func newBatchJoin(j *plan.Join, opts Options) (BatchIterator, error) {
	buildLeft := plan.BuildOnLeft(j)
	buildNode, probeNode := j.Right, j.Left
	buildKeys, probeKeys := j.EquiRight, j.EquiLeft
	if buildLeft {
		buildNode, probeNode = j.Left, j.Right
		buildKeys, probeKeys = j.EquiLeft, j.EquiRight
	}
	bi, err := openBatch(buildNode, opts)
	if err != nil {
		return nil, err
	}
	buildRows, err := drain(bi, plan.EstimateRows(buildNode))
	bi.Close()
	if err != nil {
		return nil, err
	}
	lw, rw := len(j.Left.Schema()), len(j.Right.Schema())
	it := &batchJoin{
		node:         j,
		size:         opts.BatchSize,
		buildLeft:    buildLeft,
		buildRows:    buildRows,
		buildMatched: make([]bool, len(buildRows)),
		buildKeys:    buildKeys,
		probeKeys:    probeKeys,
		leftWidth:    lw,
		slab:         newValueSlab(lw+rw, opts.BatchSize),
	}
	switch j.Kind {
	case sqlparser.JoinLeft:
		it.probePreserve = !buildLeft
		it.buildPreserve = buildLeft
	case sqlparser.JoinRight:
		it.probePreserve = buildLeft
		it.buildPreserve = !buildLeft
	case sqlparser.JoinFull:
		it.probePreserve = true
		it.buildPreserve = true
	}
	// Empty build side: unless the probe side must be preserved, the join
	// can produce no rows at all, so skip opening (and scanning) the probe
	// side entirely. This is the common shape of IVM join-delta terms
	// where one delta table is empty.
	if len(buildRows) == 0 && !it.probePreserve {
		it.probeDone = true
		it.emittedTail = true
		return it, nil
	}
	it.probe, err = openBatch(probeNode, opts)
	if err != nil {
		return nil, err
	}
	if len(j.EquiLeft) > 0 {
		it.hashed = true
		it.keyScratch = make(sqltypes.Row, len(buildKeys))
		it.buildHashTable(opts)
	} else {
		it.allBuild = make([]int, len(buildRows))
		for i := range it.allBuild {
			it.allBuild[i] = i
		}
	}
	return it, nil
}

// buildHashTable builds the equi-key directory over it.buildRows. Small
// build sides are built serially into one partition. Past the parallel
// threshold, the build runs two phases across worker goroutines, the
// parallel sibling of parallelAgg's thread-local tables: (A) contiguous
// row chunks are key-encoded and hashed concurrently; (B) each worker owns
// one radix partition — the high radixShift bits of the hash — and builds
// that partition's byteTable from every chunk's pre-hashed keys. Because a
// key's hash pins it to exactly one partition, no two workers ever touch
// the same bucket (no locks, no cross-worker merge), and because each
// partition scans the chunks in order, bucket contents stay in ascending
// build-row order — probe output is row-for-row identical to the serial
// build.
func (it *batchJoin) buildHashTable(opts Options) {
	rows := it.buildRows
	nparts := 1
	if chunks := partitionCount(len(rows), opts.Workers); chunks > 1 {
		for nparts < chunks {
			nparts <<= 1
		}
		// Round DOWN to a power of two: rounding up would exceed the
		// workers knob and drop partitions below the minPartitionRows
		// floor partitionCount just enforced.
		if nparts > chunks {
			nparts >>= 1
		}
	}
	if nparts == 1 {
		it.radixShift = 32 // hash>>32 == 0: everything routes to partition 0
		it.parts = make([]joinPart, 1)
		p := &it.parts[0]
		p.table = newByteTable(presize(len(rows)))
		// One bucket per distinct key, addressed by the table's dense entry
		// index — no per-key allocation, no key string.
		p.buckets = make([]joinBucket, 0, len(rows))
		for i, r := range rows {
			for k, c := range it.buildKeys {
				it.keyScratch[k] = r[c]
			}
			it.keyBuf = sqltypes.EncodeKey(it.keyBuf[:0], it.keyScratch...)
			// SQL equality: NULL keys never match; they stay in the table
			// only via buildMatched for outer-tail emission.
			if bi, inserted := p.table.getOrInsert(it.keyBuf); inserted {
				p.buckets = append(p.buckets, joinBucket{first: i})
			} else {
				p.buckets[bi].rest = append(p.buckets[bi].rest, i)
			}
		}
		return
	}

	shift := uint(32)
	for n := nparts; n > 1; n >>= 1 {
		shift--
	}
	it.radixShift = shift

	// Phase A: encode and hash every build key, one goroutine per
	// contiguous chunk. Each chunk owns its key slab; partition tables copy
	// the bytes they keep into their own slabs during phase B.
	type keyedChunk struct {
		base   int // global row index of the chunk's first row
		hashes []uint32
		offs   []uint32
		keys   []byte
	}
	rowChunks := sqltypes.PartitionRows(rows, nparts)
	keyed := make([]keyedChunk, len(rowChunks))
	var wg sync.WaitGroup
	var pc panicCapture
	base := 0
	for ci, ch := range rowChunks {
		kc := &keyed[ci]
		kc.base = base
		base += len(ch)
		wg.Add(1)
		go func(ch []sqltypes.Row, kc *keyedChunk) {
			defer wg.Done()
			defer pc.capture()
			scratch := make(sqltypes.Row, len(it.buildKeys))
			kc.hashes = make([]uint32, len(ch))
			kc.offs = make([]uint32, len(ch)+1)
			for i, r := range ch {
				for k, c := range it.buildKeys {
					scratch[k] = r[c]
				}
				kc.keys = sqltypes.EncodeKey(kc.keys, scratch...)
				kc.offs[i+1] = uint32(len(kc.keys))
				kc.hashes[i] = hashBytes(kc.keys[kc.offs[i]:])
			}
		}(ch, kc)
	}
	wg.Wait()
	pc.rethrow()

	// Phase B: one goroutine per radix partition inserts its share of every
	// chunk, in chunk (= global row) order.
	it.parts = make([]joinPart, nparts)
	for pi := range it.parts {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			defer pc.capture()
			part := &it.parts[pi]
			part.table = newByteTable(presize(len(rows) / nparts))
			part.buckets = make([]joinBucket, 0, len(rows)/nparts)
			want := uint32(pi)
			for ci := range keyed {
				kc := &keyed[ci]
				for i, h := range kc.hashes {
					if h>>shift != want {
						continue
					}
					key := kc.keys[kc.offs[i]:kc.offs[i+1]]
					if bi, inserted := part.table.getOrInsertHashed(key, h); inserted {
						part.buckets = append(part.buckets, joinBucket{first: kc.base + i})
					} else {
						part.buckets[bi].rest = append(part.buckets[bi].rest, kc.base+i)
					}
				}
			}
		}(pi)
	}
	wg.Wait()
	pc.rethrow()
}

// panicCapture routes a worker panic to the coordinator goroutine: the
// workers here have no error channel, and a panic escaping one of them
// would kill the process instead of reaching the statement-level
// recovery boundary. Workers `defer pc.capture()`; the coordinator
// calls rethrow after wg.Wait, re-raising the first captured value on a
// goroutine the engine's recover covers.
type panicCapture struct {
	mu sync.Mutex
	v  any
}

func (p *panicCapture) capture() {
	if r := recover(); r != nil {
		p.mu.Lock()
		if p.v == nil {
			p.v = r
		}
		p.mu.Unlock()
	}
}

func (p *panicCapture) rethrow() {
	if p.v != nil {
		panic(p.v)
	}
}

// matchBuild returns candidate build-row indexes for the probe row (valid
// until the next call).
func (it *batchJoin) matchBuild(p sqltypes.Row) []int {
	if it.hashed {
		if hasNullKey(p, it.probeKeys) {
			return nil
		}
		for k, c := range it.probeKeys {
			it.keyScratch[k] = p[c]
		}
		it.keyBuf = sqltypes.EncodeKey(it.keyBuf[:0], it.keyScratch...)
		h := hashBytes(it.keyBuf)
		part := &it.parts[h>>it.radixShift]
		bi, ok := part.table.getHashed(it.keyBuf, h)
		if !ok {
			return nil
		}
		b := &part.buckets[bi]
		if len(b.rest) == 0 {
			it.cand = append(it.cand[:0], b.first)
		} else {
			it.cand = append(append(it.cand[:0], b.first), b.rest...)
		}
		return it.cand
	}
	return it.allBuild
}

func hasNullKey(r sqltypes.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// emit appends the combined (l, r) row; nil sides pad with NULLs (slab
// rows start zeroed, and zero Values are NULL).
func (it *batchJoin) emit(l, r sqltypes.Row) {
	out := it.slab.newRow()
	if l != nil {
		copy(out, l)
	}
	if r != nil {
		copy(out[it.leftWidth:], r)
	}
	it.out.Rows = append(it.out.Rows, out)
}

// probeOne joins one probe row against the build side, appending matches.
func (it *batchJoin) probeOne(p sqltypes.Row) error {
	matched := false
	for _, bi := range it.matchBuild(p) {
		b := it.buildRows[bi]
		l, r := p, b
		if it.buildLeft {
			l, r = b, p
		}
		// Equi keys matched via hash; re-check them in the no-hash
		// (cross/theta) path, plus the residual predicate.
		if !it.hashed && len(it.node.EquiLeft) > 0 {
			eq := true
			for k := range it.node.EquiLeft {
				c, ok := sqltypes.CompareSQL(l[it.node.EquiLeft[k]], r[it.node.EquiRight[k]])
				if !ok || c != 0 {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
		}
		if it.node.On != nil {
			it.emit(l, r)
			combined := it.out.Rows[len(it.out.Rows)-1]
			v, err := it.node.On.Eval(combined)
			if err != nil {
				return err
			}
			if !v.IsTrue() {
				// Residual rejected: retract the speculative row. The slab
				// slot is abandoned (never reused), keeping emitted rows
				// durable.
				it.out.Rows = it.out.Rows[:len(it.out.Rows)-1]
				continue
			}
		} else {
			it.emit(l, r)
		}
		matched = true
		it.buildMatched[bi] = true
	}
	if !matched && it.probePreserve {
		if it.buildLeft {
			it.emit(nil, p)
		} else {
			it.emit(p, nil)
		}
	}
	return nil
}

// NextBatch implements BatchIterator.
func (it *batchJoin) NextBatch() (*Batch, error) {
	it.out.reset()
	for len(it.out.Rows) < it.size {
		if it.pi < len(it.prows) {
			p := it.prows[it.pi]
			it.pi++
			if err := it.probeOne(p); err != nil {
				return nil, err
			}
			continue
		}
		if !it.probeDone {
			b, err := it.probe.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				it.probeDone = true
				it.prows = nil
				continue
			}
			it.prows, it.pi = b.RowView(), 0
			continue
		}
		// Tail: unmatched build rows for the build-preserving kinds.
		if !it.emittedTail {
			it.emittedTail = true
			if it.buildPreserve {
				for bi, m := range it.buildMatched {
					if !m {
						if it.buildLeft {
							it.emit(it.buildRows[bi], nil)
						} else {
							it.emit(nil, it.buildRows[bi])
						}
					}
				}
			}
			continue
		}
		break
	}
	if len(it.out.Rows) == 0 {
		return nil, nil
	}
	return &it.out, nil
}

// Close implements BatchIterator. The probe side may be half-drained (a
// consumer abandoning the join early) or never opened at all (the
// empty-build short-circuit); the build side was drained and closed during
// construction.
func (it *batchJoin) Close() {
	if it.probe != nil {
		it.probe.Close()
	}
}

// --- distinct ---

type batchDistinct struct {
	in  BatchIterator
	set rowKeySet
}

// NextBatch implements BatchIterator.
func (it *batchDistinct) NextBatch() (*Batch, error) {
	for {
		b, err := it.in.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		rows := b.RowView()
		kept := rows[:0]
		for _, r := range rows {
			if it.set.add(r) {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			b.Rows, b.Cols = kept, nil
			return b, nil
		}
	}
}

// Close implements BatchIterator.
func (it *batchDistinct) Close() { it.in.Close() }

// --- set operations ---

// batchConcat streams its sources back to back (UNION ALL).
type batchConcat struct {
	srcs []BatchIterator
	pos  int
}

// NextBatch implements BatchIterator.
func (it *batchConcat) NextBatch() (*Batch, error) {
	for it.pos < len(it.srcs) {
		b, err := it.srcs[it.pos].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		it.pos++
	}
	return nil, nil
}

// Close implements BatchIterator: every source closes, drained or not.
func (it *batchConcat) Close() {
	for _, src := range it.srcs {
		src.Close()
	}
}

// batchKeep streams its input, keeping rows the keep func accepts (the
// EXCEPT/INTERSECT left-side pass; state lives in the closure).
type batchKeep struct {
	in   BatchIterator
	keep func(sqltypes.Row) bool
}

// NextBatch implements BatchIterator.
func (it *batchKeep) NextBatch() (*Batch, error) {
	for {
		b, err := it.in.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		rows := b.RowView()
		kept := rows[:0]
		for _, r := range rows {
			if it.keep(r) {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			b.Rows, b.Cols = kept, nil
			return b, nil
		}
	}
}

// Close implements BatchIterator.
func (it *batchKeep) Close() { it.in.Close() }

func newBatchSetOp(s *plan.SetOp, opts Options) (BatchIterator, error) {
	left, err := openBatch(s.Left, opts)
	if err != nil {
		return nil, err
	}
	right, err := openBatch(s.Right, opts)
	if err != nil {
		left.Close()
		return nil, err
	}
	switch s.Op {
	case sqlparser.SetUnionAll:
		return &batchConcat{srcs: []BatchIterator{left, right}}, nil
	case sqlparser.SetUnion:
		set := newRowKeySet(plan.EstimateRows(s.Left) + plan.EstimateRows(s.Right))
		return &batchDistinct{in: &batchConcat{srcs: []BatchIterator{left, right}}, set: set}, nil
	case sqlparser.SetExcept, sqlparser.SetExceptAll:
		counts, err := drainCounts(right, plan.EstimateRows(s.Right))
		right.Close()
		if err != nil {
			left.Close()
			return nil, err
		}
		if s.Op == sqlparser.SetExcept {
			seen := newRowKeySet(plan.EstimateRows(s.Left))
			return &batchKeep{in: left, keep: func(r sqltypes.Row) bool {
				return counts.count(r) == 0 && seen.add(r)
			}}, nil
		}
		return &batchKeep{in: left, keep: func(r sqltypes.Row) bool {
			return !counts.take(r)
		}}, nil
	case sqlparser.SetIntersect:
		counts, err := drainCounts(right, plan.EstimateRows(s.Right))
		right.Close()
		if err != nil {
			left.Close()
			return nil, err
		}
		seen := newRowKeySet(plan.EstimateRows(s.Left))
		return &batchKeep{in: left, keep: func(r sqltypes.Row) bool {
			return counts.count(r) > 0 && seen.add(r)
		}}, nil
	}
	left.Close()
	right.Close()
	return nil, fmt.Errorf("exec: unsupported set operation")
}

// drainCounts consumes a subtree into a key-count multiset.
func drainCounts(in BatchIterator, hint int) (*rowKeyCounter, error) {
	c := newRowKeyCounter(hint)
	for {
		b, err := in.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return &c, nil
		}
		for _, r := range b.RowView() {
			c.add(r)
		}
	}
}
