package exec

import (
	"fmt"

	"openivm/internal/expr"
	"openivm/internal/plan"
	"openivm/internal/sqlparser"
	"openivm/internal/sqltypes"
)

// maxPresize caps hash-table pre-sizing from cardinality hints so a wild
// estimate cannot allocate an absurd table up front.
const maxPresize = 1 << 16

func presize(hint int) int {
	if hint < 0 {
		return 0
	}
	if hint > maxPresize {
		return maxPresize
	}
	return hint
}

// rowKeySet is a seen-set over encoded row keys. All lookups run through a
// reusable scratch buffer; a key string is allocated only when a row is
// first added. It is the one key-encoding helper shared by distinct,
// UNION and INTERSECT (formerly three hand-rolled map[string] variants).
type rowKeySet struct {
	m   map[string]struct{}
	buf []byte
}

func newRowKeySet(hint int) rowKeySet {
	return rowKeySet{m: make(map[string]struct{}, presize(hint))}
}

// add inserts the row's key, reporting whether it was absent.
func (s *rowKeySet) add(r sqltypes.Row) bool {
	s.buf = sqltypes.EncodeKey(s.buf[:0], r...)
	if _, ok := s.m[string(s.buf)]; ok {
		return false
	}
	s.m[string(s.buf)] = struct{}{}
	return true
}

// rowKeyCounter is a multiset over encoded row keys (EXCEPT/INTERSECT
// bookkeeping). Counts are boxed so existing keys are updated without
// re-materializing the key string.
type rowKeyCounter struct {
	m   map[string]*int
	buf []byte
}

func newRowKeyCounter(hint int) rowKeyCounter {
	return rowKeyCounter{m: make(map[string]*int, presize(hint))}
}

func (c *rowKeyCounter) add(r sqltypes.Row) {
	c.buf = sqltypes.EncodeKey(c.buf[:0], r...)
	if p, ok := c.m[string(c.buf)]; ok {
		*p++
		return
	}
	n := 1
	c.m[string(c.buf)] = &n
}

func (c *rowKeyCounter) count(r sqltypes.Row) int {
	c.buf = sqltypes.EncodeKey(c.buf[:0], r...)
	if p, ok := c.m[string(c.buf)]; ok {
		return *p
	}
	return 0
}

// take decrements the row's count if positive, reporting whether it did.
func (c *rowKeyCounter) take(r sqltypes.Row) bool {
	c.buf = sqltypes.EncodeKey(c.buf[:0], r...)
	if p, ok := c.m[string(c.buf)]; ok && *p > 0 {
		*p--
		return true
	}
	return false
}

// --- hash aggregate ---

type aggGroup struct {
	keyVals sqltypes.Row
	states  []expr.AggState
}

type batchAgg struct {
	in   BatchIterator
	node *plan.Aggregate
	size int
	est  int

	built  bool
	groups []*aggGroup // first-seen order (deterministic output)
	pos    int
	out    Batch
	slab   valueSlab
}

func newBatchAgg(in BatchIterator, node *plan.Aggregate, opts Options) *batchAgg {
	return &batchAgg{
		in:   in,
		node: node,
		size: opts.BatchSize,
		est:  plan.EstimateRows(node.Input),
		slab: newValueSlab(len(node.GroupBy)+len(node.Aggs), opts.BatchSize),
	}
}

func (it *batchAgg) build() error {
	// Group count is bounded by input cardinality; assume moderate
	// grouping when pre-sizing.
	table := make(map[string]*aggGroup, presize(it.est/8))
	keyScratch := make(sqltypes.Row, len(it.node.GroupBy))
	var keyBuf []byte

	for {
		b, err := it.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, r := range b.Rows {
			for i, g := range it.node.GroupBy {
				v, err := g.Eval(r)
				if err != nil {
					return err
				}
				keyScratch[i] = v
			}
			keyBuf = sqltypes.EncodeKey(keyBuf[:0], keyScratch...)
			gs := table[string(keyBuf)] // no-copy lookup
			if gs == nil {
				gs = &aggGroup{keyVals: keyScratch.Clone(), states: make([]expr.AggState, len(it.node.Aggs))}
				for i, a := range it.node.Aggs {
					gs.states[i] = a.NewState()
				}
				table[string(keyBuf)] = gs // key string allocated once per group
				it.groups = append(it.groups, gs)
			}
			for _, st := range gs.states {
				if err := st.Add(r); err != nil {
					return err
				}
			}
		}
	}

	// Global aggregate with no groups and no input: one row of defaults.
	if len(it.node.GroupBy) == 0 && len(it.groups) == 0 {
		it.groups = append(it.groups, &aggGroup{states: make([]expr.AggState, 0)})
		row := it.slab.newRow()
		for i, a := range it.node.Aggs {
			row[i] = a.NewState().Result()
		}
		it.groups[0].keyVals = row
		it.groups[0].states = nil // pre-rendered row: emit keyVals as-is
	}
	return nil
}

func (it *batchAgg) NextBatch() (*Batch, error) {
	if !it.built {
		if err := it.build(); err != nil {
			return nil, err
		}
		it.built = true
	}
	if it.pos >= len(it.groups) {
		return nil, nil
	}
	it.out.reset()
	for it.pos < len(it.groups) && len(it.out.Rows) < it.size {
		gs := it.groups[it.pos]
		it.pos++
		if gs.states == nil {
			// Pre-rendered default row (empty global aggregate).
			it.out.Rows = append(it.out.Rows, gs.keyVals)
			continue
		}
		row := it.slab.newRow()
		n := copy(row, gs.keyVals)
		for i, st := range gs.states {
			row[n+i] = st.Result()
		}
		it.out.Rows = append(it.out.Rows, row)
	}
	return &it.out, nil
}

// --- hash join ---

// joinBucket boxes the build-side row indexes for one key so appending to
// an existing bucket never rewrites the map key.
type joinBucket struct{ idxs []int }

type batchJoin struct {
	node *plan.Join
	left BatchIterator
	size int

	rightRows    []sqltypes.Row
	hash         map[string]*joinBucket // equi-key build table (nil = cross/theta)
	allRight     []int                  // cached candidate list for cross/theta joins
	keyBuf       []byte
	keyScratch   sqltypes.Row
	rightMatched []bool

	leftWidth, rightWidth int

	lb *Batch // current probe-side batch
	li int

	out  Batch
	slab valueSlab

	leftDone    bool
	emittedTail bool
}

func newBatchJoin(j *plan.Join, opts Options) (BatchIterator, error) {
	ri, err := openBatch(j.Right, opts)
	if err != nil {
		return nil, err
	}
	rightRows, err := drain(ri, plan.EstimateRows(j.Right))
	if err != nil {
		return nil, err
	}
	lw, rw := len(j.Left.Schema()), len(j.Right.Schema())
	it := &batchJoin{
		node:         j,
		size:         opts.BatchSize,
		rightRows:    rightRows,
		rightMatched: make([]bool, len(rightRows)),
		leftWidth:    lw,
		rightWidth:   rw,
		slab:         newValueSlab(lw+rw, opts.BatchSize),
	}
	// Empty build side: inner and right joins can produce no rows at all,
	// so skip opening (and scanning) the probe side entirely. This is the
	// common shape of IVM join-delta terms where one delta table is empty.
	if len(rightRows) == 0 && (j.Kind == sqlparser.JoinInner || j.Kind == sqlparser.JoinRight) {
		it.leftDone = true
		it.emittedTail = true
		return it, nil
	}
	it.left, err = openBatch(j.Left, opts)
	if err != nil {
		return nil, err
	}
	if len(j.EquiLeft) > 0 {
		it.hash = make(map[string]*joinBucket, presize(len(rightRows)))
		it.keyScratch = make(sqltypes.Row, len(j.EquiRight))
		for i, r := range rightRows {
			for k, p := range j.EquiRight {
				it.keyScratch[k] = r[p]
			}
			it.keyBuf = sqltypes.EncodeKey(it.keyBuf[:0], it.keyScratch...)
			// SQL equality: NULL keys never match; they stay in the table
			// only via rightMatched for RIGHT/FULL tail emission.
			if b := it.hash[string(it.keyBuf)]; b != nil {
				b.idxs = append(b.idxs, i)
			} else {
				it.hash[string(it.keyBuf)] = &joinBucket{idxs: []int{i}}
			}
		}
	} else {
		it.allRight = make([]int, len(rightRows))
		for i := range it.allRight {
			it.allRight[i] = i
		}
	}
	return it, nil
}

// matchRight returns candidate build-row indexes for the probe row.
func (it *batchJoin) matchRight(l sqltypes.Row) []int {
	if it.hash != nil {
		if hasNullKey(l, it.node.EquiLeft) {
			return nil
		}
		for k, p := range it.node.EquiLeft {
			it.keyScratch[k] = l[p]
		}
		it.keyBuf = sqltypes.EncodeKey(it.keyBuf[:0], it.keyScratch...)
		if b := it.hash[string(it.keyBuf)]; b != nil {
			return b.idxs
		}
		return nil
	}
	return it.allRight
}

func hasNullKey(r sqltypes.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// emit appends the combined (l, r) row; nil sides pad with NULLs (slab
// rows start zeroed, and zero Values are NULL).
func (it *batchJoin) emit(l, r sqltypes.Row) {
	out := it.slab.newRow()
	if l != nil {
		copy(out, l)
	}
	if r != nil {
		copy(out[it.leftWidth:], r)
	}
	it.out.Rows = append(it.out.Rows, out)
}

// probe joins one left row against the build side, appending matches.
func (it *batchJoin) probe(l sqltypes.Row) error {
	matched := false
	for _, ri := range it.matchRight(l) {
		r := it.rightRows[ri]
		// Equi keys matched via hash; re-check them in the no-hash
		// (cross/theta) path, plus the residual predicate.
		if it.hash == nil && len(it.node.EquiLeft) > 0 {
			eq := true
			for k := range it.node.EquiLeft {
				c, ok := sqltypes.CompareSQL(l[it.node.EquiLeft[k]], r[it.node.EquiRight[k]])
				if !ok || c != 0 {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
		}
		if it.node.On != nil {
			it.emit(l, r)
			combined := it.out.Rows[len(it.out.Rows)-1]
			v, err := it.node.On.Eval(combined)
			if err != nil {
				return err
			}
			if !v.IsTrue() {
				// Residual rejected: retract the speculative row. The slab
				// slot is abandoned (never reused), keeping emitted rows
				// durable.
				it.out.Rows = it.out.Rows[:len(it.out.Rows)-1]
				continue
			}
		} else {
			it.emit(l, r)
		}
		matched = true
		it.rightMatched[ri] = true
	}
	if !matched && (it.node.Kind == sqlparser.JoinLeft || it.node.Kind == sqlparser.JoinFull) {
		it.emit(l, nil)
	}
	return nil
}

func (it *batchJoin) NextBatch() (*Batch, error) {
	it.out.reset()
	for len(it.out.Rows) < it.size {
		if it.lb != nil && it.li < len(it.lb.Rows) {
			l := it.lb.Rows[it.li]
			it.li++
			if err := it.probe(l); err != nil {
				return nil, err
			}
			continue
		}
		if !it.leftDone {
			b, err := it.left.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				it.leftDone = true
				it.lb = nil
				continue
			}
			it.lb, it.li = b, 0
			continue
		}
		// Tail: unmatched build rows for RIGHT/FULL.
		if !it.emittedTail {
			it.emittedTail = true
			if it.node.Kind == sqlparser.JoinRight || it.node.Kind == sqlparser.JoinFull {
				for ri, m := range it.rightMatched {
					if !m {
						it.emit(nil, it.rightRows[ri])
					}
				}
			}
			continue
		}
		break
	}
	if len(it.out.Rows) == 0 {
		return nil, nil
	}
	return &it.out, nil
}

// --- distinct ---

type batchDistinct struct {
	in  BatchIterator
	set rowKeySet
}

func (it *batchDistinct) NextBatch() (*Batch, error) {
	for {
		b, err := it.in.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		kept := b.Rows[:0]
		for _, r := range b.Rows {
			if it.set.add(r) {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			b.Rows = kept
			return b, nil
		}
	}
}

// --- set operations ---

// batchConcat streams its sources back to back (UNION ALL).
type batchConcat struct {
	srcs []BatchIterator
	pos  int
}

func (it *batchConcat) NextBatch() (*Batch, error) {
	for it.pos < len(it.srcs) {
		b, err := it.srcs[it.pos].NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		it.pos++
	}
	return nil, nil
}

// batchKeep streams its input, keeping rows the keep func accepts (the
// EXCEPT/INTERSECT left-side pass; state lives in the closure).
type batchKeep struct {
	in   BatchIterator
	keep func(sqltypes.Row) bool
}

func (it *batchKeep) NextBatch() (*Batch, error) {
	for {
		b, err := it.in.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		kept := b.Rows[:0]
		for _, r := range b.Rows {
			if it.keep(r) {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			b.Rows = kept
			return b, nil
		}
	}
}

func newBatchSetOp(s *plan.SetOp, opts Options) (BatchIterator, error) {
	left, err := openBatch(s.Left, opts)
	if err != nil {
		return nil, err
	}
	right, err := openBatch(s.Right, opts)
	if err != nil {
		return nil, err
	}
	switch s.Op {
	case sqlparser.SetUnionAll:
		return &batchConcat{srcs: []BatchIterator{left, right}}, nil
	case sqlparser.SetUnion:
		set := newRowKeySet(plan.EstimateRows(s.Left) + plan.EstimateRows(s.Right))
		return &batchDistinct{in: &batchConcat{srcs: []BatchIterator{left, right}}, set: set}, nil
	case sqlparser.SetExcept, sqlparser.SetExceptAll:
		counts, err := drainCounts(right, plan.EstimateRows(s.Right))
		if err != nil {
			return nil, err
		}
		if s.Op == sqlparser.SetExcept {
			seen := newRowKeySet(plan.EstimateRows(s.Left))
			return &batchKeep{in: left, keep: func(r sqltypes.Row) bool {
				return counts.count(r) == 0 && seen.add(r)
			}}, nil
		}
		return &batchKeep{in: left, keep: func(r sqltypes.Row) bool {
			return !counts.take(r)
		}}, nil
	case sqlparser.SetIntersect:
		counts, err := drainCounts(right, plan.EstimateRows(s.Right))
		if err != nil {
			return nil, err
		}
		seen := newRowKeySet(plan.EstimateRows(s.Left))
		return &batchKeep{in: left, keep: func(r sqltypes.Row) bool {
			return counts.count(r) > 0 && seen.add(r)
		}}, nil
	}
	return nil, fmt.Errorf("exec: unsupported set operation")
}

// drainCounts consumes a subtree into a key-count multiset.
func drainCounts(in BatchIterator, hint int) (*rowKeyCounter, error) {
	c := newRowKeyCounter(hint)
	for {
		b, err := in.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return &c, nil
		}
		for _, r := range b.Rows {
			c.add(r)
		}
	}
}
