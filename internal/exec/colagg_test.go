package exec

import (
	"strings"
	"testing"

	"openivm/internal/plan"
	"openivm/internal/sqltypes"
)

// aggNodeFor digs the Aggregate node out of a bound plan (the binder tops
// aggregates with a Project).
func aggNodeFor(t *testing.T, n plan.Node) *plan.Aggregate {
	t.Helper()
	var agg *plan.Aggregate
	plan.Walk(n, func(n plan.Node) bool {
		if a, ok := n.(*plan.Aggregate); ok {
			agg = a
		}
		return true
	})
	if agg == nil {
		t.Fatal("no Aggregate node in plan")
	}
	return agg
}

// runAggRowPath executes the aggregate with the columnar path disabled, so
// tests can compare the two implementations row for row.
func runAggRowPath(n plan.Node, opts Options) ([]sqltypes.Row, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	opts.Workers = 1
	agg, ok := n.(*plan.Aggregate)
	if !ok {
		return RunOpts(n, opts)
	}
	in, err := openBatch(agg.Input, opts)
	if err != nil {
		return nil, err
	}
	it := newBatchAgg(in, agg, opts)
	it.col.state = colAggRefused
	return drain(it, 0)
}

// TestColumnarAggMatchesRowAgg is the row-path vs column-path equality
// property test: NULL-heavy input, every mergeable aggregate kind, CASE /
// COALESCE / arithmetic arguments, filtered and unfiltered pipelines, and
// a group count high enough to cross several byteTable grow boundaries.
// Output must match exactly — values and first-seen group order.
func TestColumnarAggMatchesRowAgg(t *testing.T) {
	c := parallelCatalog(t, 12000)
	queries := []string{
		"SELECT g, SUM(v), COUNT(*), COUNT(v), MIN(v), MAX(v), AVG(v) FROM p GROUP BY g",
		"SELECT g, SUM(f), AVG(f) FROM p GROUP BY g",
		// kernel-evaluated aggregate arguments (the IVM multiplicity shape)
		"SELECT g, SUM(CASE WHEN v > 500 THEN -v ELSE v END) FROM p GROUP BY g",
		"SELECT g, SUM(COALESCE(v, 0)) FROM p GROUP BY g",
		// columnar batches from a fused filter pipeline
		"SELECT g, SUM(v), COUNT(*) FROM p WHERE v IS NOT NULL GROUP BY g",
		"SELECT g, AVG(f) FROM p WHERE v < 800 GROUP BY g",
		// computed group key
		"SELECT v % 10, COUNT(*) FROM p GROUP BY v % 10",
		// global aggregate (empty key)
		"SELECT SUM(v), COUNT(*), MIN(f), MAX(f) FROM p",
		// DISTINCT aggregates dedup identically on both paths
		"SELECT g, COUNT(DISTINCT v) FROM p GROUP BY g",
	}
	for _, sql := range queries {
		for _, bs := range []int{64, DefaultBatchSize} {
			opts := Options{BatchSize: bs, Workers: 1}
			agg := aggNodeFor(t, bindSQL(t, c, sql))
			got, err := RunOpts(agg, opts)
			if err != nil {
				t.Fatalf("%s (bs=%d) columnar: %v", sql, bs, err)
			}
			want, err := runAggRowPath(agg, opts)
			if err != nil {
				t.Fatalf("%s (bs=%d) row path: %v", sql, bs, err)
			}
			if strings.Join(rowsToStrings(got), "\n") != strings.Join(rowsToStrings(want), "\n") {
				t.Fatalf("%s (bs=%d):\ncolumnar:\n%s\nrow path:\n%s", sql, bs,
					strings.Join(rowsToStrings(got), "\n"), strings.Join(rowsToStrings(want), "\n"))
			}
		}
	}
}

// TestColumnarAggMixedTypeCellsFallBack is the regression test for the
// row-lift type check: a derived column whose runtime cell types diverge
// from its declared type (a CASE whose branches mix INT and FLOAT —
// Expr.Type reports the first branch) must NOT be lifted into a typed
// vector, where the mismatched cells would silently degrade to NULL. The
// operator has to fall back to the boxed row path and keep the values.
func TestColumnarAggMixedTypeCellsFallBack(t *testing.T) {
	c := parallelCatalog(t, 100)
	// x is declared INT (first CASE branch) but carries FLOAT 0.5 cells.
	sql := "SELECT x, COUNT(*) FROM (SELECT CASE WHEN v > 500 THEN 1 ELSE 0.5 END AS x FROM p WHERE v IS NOT NULL) AS s GROUP BY x"
	agg := aggNodeFor(t, bindSQL(t, c, sql))
	got, err := RunOpts(agg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runAggRowPath(agg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsToStrings(got), "\n") != strings.Join(rowsToStrings(want), "\n") {
		t.Fatalf("mixed-type group keys diverged:\ncolumnar: %v\nrow path: %v", got, want)
	}
	sawFloat := false
	for _, r := range got {
		if r[0].T == sqltypes.TypeFloat {
			sawFloat = true
		}
		if r[0].IsNull() {
			t.Fatalf("mixed-type cell degraded to NULL group key: %v", got)
		}
	}
	if !sawFloat {
		t.Fatalf("fixture lost its FLOAT group key: %v", got)
	}
}

// TestColumnarAggUsed pins that representative aggregate plans actually
// compile the columnar path (a silent fallback to the row loop must fail
// loudly), and that expressions outside the kernel compiler refuse it.
func TestColumnarAggUsed(t *testing.T) {
	c := parallelCatalog(t, 6000)
	build := func(sql string) *batchAgg {
		agg := aggNodeFor(t, bindSQL(t, c, sql))
		in, err := openBatch(agg.Input, Options{BatchSize: DefaultBatchSize, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		it := newBatchAgg(in, agg, Options{BatchSize: DefaultBatchSize, Workers: 1})
		if err := it.build(); err != nil {
			t.Fatal(err)
		}
		it.built = true
		return it
	}
	for _, sql := range []string{
		"SELECT g, SUM(v) FROM p GROUP BY g",
		"SELECT g, SUM(CASE WHEN v > 0 THEN v ELSE -v END), COUNT(*) FROM p GROUP BY g",
		"SELECT g, SUM(v) FROM p WHERE v IS NOT NULL GROUP BY g",
	} {
		if it := build(sql); it.col.state != colAggReady {
			t.Fatalf("%s: columnar agg path not taken (state %d)", sql, it.col.state)
		}
	}
	// ABS stays boxed, so the operator must refuse and fall back.
	if it := build("SELECT g, SUM(ABS(v)) FROM p GROUP BY g"); it.col.state != colAggRefused {
		t.Fatalf("ABS argument compiled unexpectedly (state %d)", it.col.state)
	}
}

// TestColumnarAggSteadyStateAllocs guards the columnar accumulation loop:
// once every group exists, folding another batch must not allocate.
func TestColumnarAggSteadyStateAllocs(t *testing.T) {
	c := parallelCatalog(t, 6000)
	agg := aggNodeFor(t, bindSQL(t, c, "SELECT g, SUM(v), COUNT(*), AVG(f) FROM p GROUP BY g"))
	in, err := openBatch(agg.Input, Options{BatchSize: DefaultBatchSize, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	it := newBatchAgg(in, agg, Options{BatchSize: DefaultBatchSize, Workers: 1})
	it.batchBase = -1

	// One warm-up batch creates the groups and the kernel state.
	b, err := in.NextBatch()
	if err != nil || b == nil {
		t.Fatalf("no input batch (%v)", err)
	}
	it.table = newByteTable(0)
	if handled, err := it.accumulateColumnar(b); !handled || err != nil {
		t.Fatalf("columnar path unavailable (handled=%v err=%v)", handled, err)
	}

	allocs := testing.AllocsPerRun(50, func() {
		if handled, err := it.accumulateColumnar(b); !handled || err != nil {
			t.Fatalf("columnar accumulate failed (handled=%v err=%v)", handled, err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("columnar agg loop allocates %.2f per batch in steady state, want 0", allocs)
	}
}

// TestEncodeCellMatchesEncodeKey pins the byte-level equivalence the
// columnar group-key path relies on, across every vector type and NULLs.
func TestEncodeCellMatchesEncodeKey(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.NewInt(-3), sqltypes.NewInt(0), sqltypes.NewInt(12345),
		sqltypes.NewFloat(-2.5), sqltypes.NewFloat(0), sqltypes.NewFloat(7.25),
		sqltypes.NewBool(true), sqltypes.NewBool(false),
		sqltypes.NewString(""), sqltypes.NewString("a\x00b"), sqltypes.NewString("group9"),
		sqltypes.Null,
	}
	for _, typ := range []sqltypes.Type{sqltypes.TypeInt, sqltypes.TypeFloat, sqltypes.TypeBool, sqltypes.TypeString} {
		v := sqltypes.NewVector(typ, len(vals))
		for _, val := range vals {
			v.AppendValue(val)
		}
		for i := 0; i < v.Len(); i++ {
			got := v.EncodeCell(nil, i)
			want := sqltypes.EncodeKey(nil, v.ValueAt(i))
			if string(got) != string(want) {
				t.Fatalf("%v cell %d: EncodeCell %x, EncodeKey %x", typ, i, got, want)
			}
		}
	}
}
